package snaple

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func facadeGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := GenerateCommunity(CommunityGraph{N: 400, Communities: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPredictFacade(t *testing.T) {
	g := facadeGraph(t)
	preds, err := Predict(g, Options{Score: "linearSum", KLocal: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, ps := range preds {
		nonEmpty += len(ps)
	}
	if nonEmpty == 0 {
		t.Fatal("no predictions")
	}
}

func TestPredictForFacade(t *testing.T) {
	g := facadeGraph(t)
	opts := Options{Score: "linearSum", KLocal: 10, Seed: 1}
	full, err := Predict(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	sources := []VertexID{3, 77, 201, 399}
	scoped, err := PredictFor(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != len(full) {
		t.Fatalf("scoped has %d rows, full %d", len(scoped), len(full))
	}
	isSource := map[VertexID]bool{}
	for _, s := range sources {
		isSource[s] = true
	}
	for u := range scoped {
		v := VertexID(u)
		if isSource[v] {
			if !reflect.DeepEqual(scoped[u], full[u]) {
				t.Fatalf("source %d: scoped %v != full %v", v, scoped[u], full[u])
			}
		} else if scoped[u] != nil {
			t.Fatalf("non-source %d has predictions", v)
		}
	}
	if _, err := PredictFor(g, []VertexID{VertexID(len(full))}, opts); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestQueryScopedDoesLessWork is the serving refactor's acceptance gate: on
// a ≥1M-edge graph, a 10k-source query must do measurably less work than a
// full pass — asserted on the engine's deterministic work counters
// (ScoredVertices, FrontierVertices, allocation volume) with wall time as a
// generous sanity bound, and produce bit-identical rows for the sources.
func TestQueryScopedDoesLessWork(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a ~1.4M-edge graph")
	}
	g, err := Dataset("livejournal", 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 1_000_000 {
		t.Fatalf("graph too small for the acceptance bound: %v", g)
	}
	opts := Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42, Engine: "local"}
	full, fullStats, err := PredictStats(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// 10k distinct sources, deterministically scattered.
	n := g.NumVertices()
	sources := make([]VertexID, 0, 10_000)
	seen := make(map[VertexID]bool, 10_000)
	for i := 0; len(sources) < cap(sources); i++ {
		v := VertexID(uint32(i*2654435761) % uint32(n))
		if !seen[v] {
			seen[v] = true
			sources = append(sources, v)
		}
	}
	opts.Sources = sources
	scoped, scopedStats, err := PredictStats(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range sources {
		if !reflect.DeepEqual(scoped[s], full[s]) {
			t.Fatalf("source %d: scoped %v != full %v", s, scoped[s], full[s])
		}
	}
	if fullStats.ScoredVertices != n || fullStats.FrontierVertices != 0 {
		t.Fatalf("full stats: %+v", fullStats)
	}
	if scopedStats.ScoredVertices != len(sources) {
		t.Fatalf("scoped ScoredVertices = %d, want %d", scopedStats.ScoredVertices, len(sources))
	}
	if scopedStats.FrontierVertices <= 0 || scopedStats.FrontierVertices >= n {
		t.Fatalf("scoped FrontierVertices = %d (n=%d)", scopedStats.FrontierVertices, n)
	}
	// Measured locally at ~0.24 of the full pass each; 0.6 leaves room for
	// CI noise while still proving the pass did a fraction of the work.
	if ratio := float64(scopedStats.AllocBytes) / float64(fullStats.AllocBytes); ratio > 0.6 {
		t.Errorf("scoped run allocated %.2fx of the full pass (%d vs %d bytes)",
			ratio, scopedStats.AllocBytes, fullStats.AllocBytes)
	}
	if ratio := scopedStats.WallSeconds / fullStats.WallSeconds; ratio > 0.8 {
		t.Errorf("scoped run took %.2fx of the full pass (%.3fs vs %.3fs)",
			ratio, scopedStats.WallSeconds, fullStats.WallSeconds)
	}
}

func TestPredictDefaultsAndErrors(t *testing.T) {
	g := facadeGraph(t)
	if _, err := Predict(g, Options{}); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	if _, err := Predict(g, Options{Score: "bogus"}); err == nil {
		t.Error("bogus score accepted")
	}
	if _, err := Predict(g, Options{Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := PredictDistributed(g, Options{}, ClusterOptions{NodeType: "bogus"}); err == nil {
		t.Error("bogus node type accepted")
	}
	if _, err := PredictDistributed(g, Options{}, ClusterOptions{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestDistributedMatchesSerialViaFacade(t *testing.T) {
	g := facadeGraph(t)
	opts := Options{Score: "linearSum", KLocal: 8, ThrGamma: 50, Seed: 3}
	want, err := Predict(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"hash-edge", "greedy"} {
		res, err := PredictDistributed(g, opts, ClusterOptions{
			Nodes: 2, NodeType: "type-I", Strategy: strategy, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Predictions, want) {
			t.Fatalf("distributed (%s) differs from serial", strategy)
		}
		if res.ReplicationFactor < 1 {
			t.Errorf("RF = %v", res.ReplicationFactor)
		}
		if res.CrossBytes == 0 {
			t.Error("expected cross-node traffic on 2 nodes")
		}
	}
}

func TestBaselineFacadeAndExhaustion(t *testing.T) {
	g := facadeGraph(t)
	res, err := PredictBaseline(g, 5, ClusterOptions{Nodes: 2, NodeType: "type-II"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) == 0 {
		t.Fatal("baseline produced nothing")
	}
	_, err = PredictBaseline(g, 5, ClusterOptions{Nodes: 2, MemBudgetBytes: 1024})
	if !errors.Is(err, ErrMemoryExhausted) {
		t.Fatalf("want ErrMemoryExhausted, got %v", err)
	}
}

func TestWalksFacade(t *testing.T) {
	g := facadeGraph(t)
	preds, err := PredictWalks(g, 20, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, ps := range preds {
		if len(ps) > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("walks produced nothing")
	}
}

func TestEndToEndRecall(t *testing.T) {
	g, err := Dataset("gowalla", 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewSplit(g, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := Predict(split.Train, Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recall(preds, split)
	if rec <= 0.05 || rec > 1 {
		t.Errorf("recall = %v, want a plausible positive value", rec)
	}
}

func TestDatasetRegistryFacade(t *testing.T) {
	if len(DatasetNames()) != 5 {
		t.Error("expected 5 dataset analogs")
	}
	if len(ScoreNames()) != 11 {
		t.Error("expected 11 Table 3 scores")
	}
	if _, err := Dataset("unknown", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEdgeListRoundTripFacade(t *testing.T) {
	g := facadeGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}
