package snaple

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func facadeGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := GenerateCommunity(CommunityGraph{N: 400, Communities: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPredictFacade(t *testing.T) {
	g := facadeGraph(t)
	preds, err := Predict(g, Options{Score: "linearSum", KLocal: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, ps := range preds {
		nonEmpty += len(ps)
	}
	if nonEmpty == 0 {
		t.Fatal("no predictions")
	}
}

func TestPredictDefaultsAndErrors(t *testing.T) {
	g := facadeGraph(t)
	if _, err := Predict(g, Options{}); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	if _, err := Predict(g, Options{Score: "bogus"}); err == nil {
		t.Error("bogus score accepted")
	}
	if _, err := Predict(g, Options{Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := PredictDistributed(g, Options{}, ClusterOptions{NodeType: "bogus"}); err == nil {
		t.Error("bogus node type accepted")
	}
	if _, err := PredictDistributed(g, Options{}, ClusterOptions{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestDistributedMatchesSerialViaFacade(t *testing.T) {
	g := facadeGraph(t)
	opts := Options{Score: "linearSum", KLocal: 8, ThrGamma: 50, Seed: 3}
	want, err := Predict(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"hash-edge", "greedy"} {
		res, err := PredictDistributed(g, opts, ClusterOptions{
			Nodes: 2, NodeType: "type-I", Strategy: strategy, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Predictions, want) {
			t.Fatalf("distributed (%s) differs from serial", strategy)
		}
		if res.ReplicationFactor < 1 {
			t.Errorf("RF = %v", res.ReplicationFactor)
		}
		if res.CrossBytes == 0 {
			t.Error("expected cross-node traffic on 2 nodes")
		}
	}
}

func TestBaselineFacadeAndExhaustion(t *testing.T) {
	g := facadeGraph(t)
	res, err := PredictBaseline(g, 5, ClusterOptions{Nodes: 2, NodeType: "type-II"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) == 0 {
		t.Fatal("baseline produced nothing")
	}
	_, err = PredictBaseline(g, 5, ClusterOptions{Nodes: 2, MemBudgetBytes: 1024})
	if !errors.Is(err, ErrMemoryExhausted) {
		t.Fatalf("want ErrMemoryExhausted, got %v", err)
	}
}

func TestWalksFacade(t *testing.T) {
	g := facadeGraph(t)
	preds, err := PredictWalks(g, 20, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, ps := range preds {
		if len(ps) > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("walks produced nothing")
	}
}

func TestEndToEndRecall(t *testing.T) {
	g, err := Dataset("gowalla", 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewSplit(g, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := Predict(split.Train, Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recall(preds, split)
	if rec <= 0.05 || rec > 1 {
		t.Errorf("recall = %v, want a plausible positive value", rec)
	}
}

func TestDatasetRegistryFacade(t *testing.T) {
	if len(DatasetNames()) != 5 {
		t.Error("expected 5 dataset analogs")
	}
	if len(ScoreNames()) != 11 {
		t.Error("expected 11 Table 3 scores")
	}
	if _, err := Dataset("unknown", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEdgeListRoundTripFacade(t *testing.T) {
	g := facadeGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}
