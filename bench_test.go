// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5) at a reduced dataset scale, plus micro-benchmarks of the
// engine primitives. The EXPERIMENTS.md runs use cmd/snaple-bench at
// scale 1.0; these benches keep `go test -bench=.` tractable on a laptop.
//
// Custom metrics: recall (quality), simsec (simulated cluster seconds),
// crossMB (cross-node traffic). Benchmark wall time measures the host cost
// of the whole experiment.
package snaple

import (
	"fmt"
	"testing"

	"snaple/internal/eval"
)

// benchOpts shrinks datasets; seeds stay fixed for comparability.
func benchOpts(scale float64) eval.Options {
	return eval.Options{Scale: scale, Seed: 42}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t5, err := eval.RunTable5(benchOpts(0.2))
		if err != nil {
			b.Fatal(err)
		}
		// Report the headline cells: baseline vs best SNAPLE recall on
		// livejournal.
		var base, best, bestSpeedup float64
		for _, r := range t5.Rows {
			if r.Dataset != "livejournal" {
				continue
			}
			if r.System == "BASELINE" {
				base = r.Recall
			} else if r.Recall > best {
				best = r.Recall
			}
			if r.Speedup > bestSpeedup {
				bestSpeedup = r.Speedup
			}
		}
		b.ReportMetric(base, "recall-baseline")
		b.ReportMetric(best, "recall-snaple")
		b.ReportMetric(bestSpeedup, "best-speedup")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure5(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		// Scaling headline: time on the largest graph at min vs max cores.
		var t64, t256 float64
		for _, p := range f.Points {
			if p.Dataset == "twitter-rv" && p.KLocal == 40 && p.NodeType == "type-I" {
				switch p.Cores {
				case 64:
					t64 = p.Seconds
				case 256:
					t256 = p.Seconds
				}
			}
		}
		b.ReportMetric(t64, "twitter-simsec-64cores")
		b.ReportMetric(t256, "twitter-simsec-256cores")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure6(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		var maxImprove float64
		for _, r := range f.Rows {
			if r.ImprovementPct > maxImprove {
				maxImprove = r.ImprovementPct
			}
		}
		b.ReportMetric(maxImprove, "max-recall-improve-pct")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure7(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		// Γmax advantage over Γmin at klocal=5, averaged over scores.
		var max5, min5 float64
		for _, r := range f.Rows {
			if r.KLocal != 5 {
				continue
			}
			switch r.Policy {
			case "max":
				max5 += r.Recall
			case "min":
				min5 += r.Recall
			}
		}
		b.ReportMetric(max5/3, "recall-gmax-k5")
		b.ReportMetric(min5/3, "recall-gmin-k5")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure8(benchOpts(0.1))
		if err != nil {
			b.Fatal(err)
		}
		if best, ok := f.BestRecall("livejournal"); ok {
			b.ReportMetric(best.Recall, "best-recall-lj")
			b.ReportMetric(float64(best.KLocal), "best-klocal-lj")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure9(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		var rec5, rec20 float64
		for _, r := range f.Rows {
			if r.Dataset == "livejournal" && r.Score == "linearSum" {
				switch r.K {
				case 5:
					rec5 = r.Recall
				case 20:
					rec20 = r.Recall
				}
			}
		}
		b.ReportMetric(rec5, "recall-k5")
		b.ReportMetric(rec20, "recall-k20")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.RunFigure10(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		var rem1, rem5 float64
		for _, r := range f.Rows {
			if r.Dataset == "livejournal" && r.Score == "linearSum" {
				switch r.Removed {
				case 1:
					rem1 = r.Recall
				case 5:
					rem5 = r.Recall
				}
			}
		}
		b.ReportMetric(rem1, "recall-removed1")
		b.ReportMetric(rem5, "recall-removed5")
	}
}

func BenchmarkFigure11AndTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f11, err := eval.RunFigure11(benchOpts(0.15))
		if err != nil {
			b.Fatal(err)
		}
		t6, err := eval.RunTable6(benchOpts(0.15), f11)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t6.Rows {
			if r.Dataset == "livejournal" {
				b.ReportMetric(r.Speedup, "snaple-speedup-lj")
				b.ReportMetric(r.SnapleRecall, "snaple-recall-lj")
				b.ReportMetric(r.CassovaryRecall, "cassovary-recall-lj")
			}
		}
	}
}

func BenchmarkExhaustion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ex, err := eval.RunExhaustion(benchOpts(0.5))
		if err != nil {
			b.Fatal(err)
		}
		baselineFailures, snapleFailures := 0, 0
		for _, r := range ex.Rows {
			if !r.Completed {
				if r.System == "BASELINE" {
					baselineFailures++
				} else {
					snapleFailures++
				}
			}
		}
		b.ReportMetric(float64(baselineFailures), "baseline-failures")
		b.ReportMetric(float64(snapleFailures), "snaple-failures")
	}
}

// ---- micro-benchmarks of the moving parts ----

func BenchmarkSnapleSerial(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42, Engine: "serial"}
	b.ReportMetric(float64(g.NumEdges()), "edges")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictLocal tracks the parallel shared-memory backend's speedup
// trajectory over the serial reference (BenchmarkSnapleSerial) on the same
// graph and configuration. workers=1 isolates the backend's constant
// overheads; higher counts measure scaling.
func BenchmarkPredictLocal(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Options{
				Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42,
				Engine: "local", Workers: workers,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Predict(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictFor tracks the serving shape: a query-scoped run for a
// fixed 200-vertex source set on the same graph and configuration as
// BenchmarkPredictLocal — the per-tick cost of cmd/snaple-serve's
// micro-batches. Compare against workers=1 of PredictLocal to see the
// frontier restriction's work reduction.
func BenchmarkPredictFor(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	sources := make([]VertexID, 200)
	for i := range sources {
		sources[i] = VertexID((i * 2654435761) % g.NumVertices())
	}
	opts := Options{
		Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42,
		Engine: "local", Workers: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PredictFor(g, sources, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapleDistributed(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42}
	cl := ClusterOptions{Nodes: 4, NodeType: "type-II", Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := PredictDistributed(g, opts, cl)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.SimSeconds, "simsec")
		b.ReportMetric(float64(last.CrossBytes)/(1<<20), "crossMB")
	}
}

func BenchmarkBaselineDistributed(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	cl := ClusterOptions{Nodes: 4, NodeType: "type-II", Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := PredictBaseline(g, 5, cl)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.SimSeconds, "simsec")
		b.ReportMetric(float64(last.CrossBytes)/(1<<20), "crossMB")
	}
}

func BenchmarkWalkEngine(b *testing.B) {
	g, err := Dataset("livejournal", 0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PredictWalks(g, 10, 3, 5, 42); err != nil {
			b.Fatal(err)
		}
	}
}
