package snaple

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snaple/internal/engine"
	"snaple/internal/graph"
	"snaple/internal/wire"
)

// TestClusterResident drives the persistent API end to end on an in-process
// resident fleet: open once, answer many scoped queries bit-identically to
// the one-shot facade, accumulate stats, close idempotently.
func TestClusterResident(t *testing.T) {
	g := facadeGraph(t)
	opts := Options{Score: "linearSum", KLocal: 10, Seed: 1, Engine: "dist"}
	full, err := Predict(g, Options{Score: "linearSum", KLocal: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, err := OpenCluster(ClusterOptions{Graph: g, Options: opts, Workers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Predictions, full) {
		t.Fatal("resident full run differs from the local backend")
	}
	if res.Engine != "fleet" {
		t.Errorf("engine = %q", res.Engine)
	}

	for _, sources := range [][]VertexID{{3}, {77, 201}, {399, 399, 0}} {
		res, err := c.PredictFor(sources)
		if err != nil {
			t.Fatal(err)
		}
		for v, row := range res.Predictions {
			isSource := false
			for _, s := range sources {
				if int(s) == v {
					isSource = true
				}
			}
			if isSource && !reflect.DeepEqual(row, full[v]) {
				t.Fatalf("source %d differs from the full run", v)
			}
			if !isSource && row != nil {
				t.Fatalf("non-source %d has predictions", v)
			}
		}
	}

	if st := c.Stats(); st.Engine != "fleet" || st.Workers != 3 {
		t.Errorf("cluster stats = %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := c.Predict(); err == nil {
		t.Error("predict on a closed cluster succeeded")
	}
}

// TestClusterManifest exercises the packed-fleet path through the facade:
// shards packed to disk, resident workers pinning them, a Cluster opened
// with the manifest path — and the typed mismatch when the graph disagrees.
func TestClusterManifest(t *testing.T) {
	g := facadeGraph(t)
	strat, err := ClusterOptions{Seed: 11}.strategy()
	if err != nil {
		t.Fatal(err)
	}
	files, man, err := engine.PackShards(g, strat, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var addrs []string
	for i, sf := range files {
		p := filepath.Join(dir, "g.sgr."+string(rune('0'+i)))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteShard(f, sf); err != nil {
			t.Fatal(err)
		}
		f.Close()
		man.Files[i] = filepath.Base(p)

		// A resident worker per shard, as snaple-worker -shard would serve it.
		rf, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := graph.ReadShard(rf)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() { _ = wire.ServeWith(l, nil, wire.ServeOptions{Resident: wire.ResidentFromShard(loaded)}) }()
		addrs = append(addrs, l.Addr().String())
	}
	manPath := filepath.Join(dir, "g.sgr.manifest")
	mf, err := os.Create(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteManifest(mf, man); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	opts := Options{Score: "linearSum", KLocal: 10, Seed: 1, Engine: "dist"}
	c, err := OpenCluster(ClusterOptions{Graph: g, Options: opts, Manifest: manPath, WorkerAddrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	full, err := Predict(g, Options{Score: "linearSum", KLocal: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PredictFor([]VertexID{3, 77})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Predictions[3], full[3]) || !reflect.DeepEqual(res.Predictions[77], full[77]) {
		t.Fatal("manifest fleet differs from the local backend")
	}

	// The same manifest against a different graph must be refused with the
	// typed error before any superstep runs.
	g2, err := GenerateCommunity(CommunityGraph{N: 400, Communities: 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenCluster(ClusterOptions{Graph: g2, Options: opts, Manifest: manPath, WorkerAddrs: addrs})
	if !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("err = %v, want ErrManifestMismatch", err)
	}
}

func TestOpenClusterErrors(t *testing.T) {
	g := facadeGraph(t)
	cases := map[string]ClusterOptions{
		"nil-graph":      {Options: Options{Engine: "dist"}},
		"bogus-engine":   {Graph: g, Options: Options{Engine: "serial"}},
		"bogus-score":    {Graph: g, Options: Options{Score: "bogus"}},
		"bogus-nodetype": {Graph: g, NodeType: "bogus"},
		"bogus-strategy": {Graph: g, Options: Options{Engine: "dist"}, Strategy: "bogus"},
		"bad-manifest":   {Graph: g, Options: Options{Engine: "dist"}, Manifest: "/nonexistent/path.manifest"},
	}
	for name, cl := range cases {
		if _, err := OpenCluster(cl); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
