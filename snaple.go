// Package snaple is a Go implementation of SNAPLE (Kermarrec, Taïani,
// Tirado: "Scaling Out Link Prediction with SNAPLE: 1 Billion Edges and
// Beyond", MIDDLEWARE 2015 / Inria RR-454): a link-prediction framework for
// gather-apply-scatter (GAS) graph engines that scores candidate edges by
// combining and aggregating raw similarities along 2-hop paths instead of
// shipping neighbourhoods across the cluster.
//
// The package is a facade over the repository's internals:
//
//   - the SNAPLE scoring framework: Algorithm 2 decomposed into reusable
//     per-vertex step primitives, plus the naive BASELINE comparison system
//     (internal/core),
//   - a pluggable execution layer (internal/engine) with four backends
//     behind one interface: "local", a parallel shared-memory engine that
//     shards vertex ranges over goroutines; "serial", the single-threaded
//     reference loop; "sim", the paper's GAS engine over a simulated
//     cluster with vertex-cut placement, master/mirror replication and cost
//     accounting (internal/gas, internal/partition, internal/cluster); and
//     "dist", the same supersteps across real worker processes over TCP
//     (internal/wire, cmd/snaple-worker) with traffic measured on the wire,
//   - a Cassovary-style random-walk comparator (internal/walk),
//   - synthetic dataset analogs and the paper's evaluation protocol
//     (internal/gen, internal/eval),
//   - a graph I/O subsystem (internal/graph): streaming parallel
//     edge-list ingestion with no O(E) intermediate, plus versioned,
//     checksummed binary CSR snapshots (.sgr) that load with zero
//     per-edge work — pack once with `snaple pack`, start every later
//     run at disk speed,
//   - an online serving layer (internal/serve, cmd/snaple-serve): every
//     backend accepts a query frontier (Options.Sources, PredictFor) and
//     computes only the ≤2-hop closure the sources' scores depend on, and
//     the server batches concurrent HTTP requests into one frontier run
//     per tick with an LRU result cache in front.
//
// All four backends produce bit-identical predictions for the same
// Options; they differ only in speed and in which costs they report.
//
// Quick start:
//
//	g, _ := snaple.Dataset("livejournal", 0.2, 42)
//	split, _ := snaple.NewSplit(g, 1, 42)
//	preds, _ := snaple.Predict(split.Train, snaple.Options{Score: "linearSum", KLocal: 20})
//	fmt.Printf("recall@5 = %.3f\n", snaple.Recall(preds, split))
package snaple

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/engine"
	"snaple/internal/eval"
	"snaple/internal/gen"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/walk"
)

// Re-exported fundamental types. The aliases point at internal packages so
// the whole repository shares one set of types.
type (
	// Graph is a compact immutable directed graph (CSR).
	Graph = graph.Digraph
	// GraphView is read-only adjacency access over either a frozen Graph
	// or a live mutating one (Delta/Live): every Predict entry point
	// accepts it.
	GraphView = graph.View
	// Delta is an immutable mutation overlay over a Graph: a consistent
	// point-in-time view of a live graph (see Live.View).
	Delta = graph.Delta
	// Live owns a mutating graph: Apply batches edge mutations
	// copy-on-write under an epoch counter, View returns consistent
	// snapshots, Compact folds the overlay back into a fresh CSR.
	Live = graph.Live
	// VertexID identifies a vertex (dense, 0-based).
	VertexID = graph.VertexID
	// Edge is a directed edge.
	Edge = graph.Edge
	// Prediction is one recommended edge target with its score.
	Prediction = core.Prediction
	// Predictions holds per-vertex prediction lists indexed by vertex.
	Predictions = core.Predictions
	// Split is a train/test split under the paper's protocol.
	Split = eval.Split
)

// Options configures a SNAPLE prediction (Algorithm 2's inputs).
type Options struct {
	// Score names a Table 3 configuration (default "linearSum"):
	// linearSum, euclSum, geomSum, PPR, counter, linearMean, euclMean,
	// geomMean, linearGeom, euclGeom, geomGeom.
	Score string
	// Alpha parameterises the linear combinator (default 0.9).
	Alpha float64
	// K is the number of predictions per vertex (default 5).
	K int
	// KLocal bounds the per-vertex relay sample (0 = unlimited).
	KLocal int
	// ThrGamma is the neighbourhood truncation threshold (0 = unlimited;
	// the paper defaults to 200).
	ThrGamma int
	// Policy selects relays: "max" (default), "min" or "rnd" (Section 5.6).
	Policy string
	// Paths is the maximum explored path length: 2 (default, the paper's
	// setting) or 3 (the footnote-2 extension).
	Paths int
	// Seed drives truncation and the rnd policy.
	Seed uint64
	// Engine selects the execution backend used by Predict: "local" (the
	// default: parallel shared-memory), "serial" (the single-threaded
	// reference), "sim" (the GAS engine on a default single-node simulated
	// cluster) or "dist" (real worker processes over TCP, served in-process
	// on loopback by default; use PredictDistributed to configure either
	// deployment). All backends return bit-identical predictions.
	Engine string
	// Workers bounds the goroutines of the chosen backend (0 = GOMAXPROCS).
	// For "dist" it is the worker count (0 = 2 loopback workers).
	Workers int
	// Sources optionally scopes the run to a query frontier: when
	// non-empty, only these vertices receive predictions and every backend
	// restricts its work to the exact closure their predictions depend on
	// (2 hops out; 3 for Paths=3). The results are bit-identical to the
	// full run's, filtered to the sources. This is the online per-user
	// shape — see PredictFor and cmd/snaple-serve.
	Sources []VertexID
}

func (o Options) toCore() (core.Config, error) {
	if o.Score == "" {
		o.Score = "linearSum"
	}
	if o.Alpha == 0 {
		o.Alpha = 0.9
	}
	spec, err := core.ScoreByName(o.Score, o.Alpha)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Score:    spec,
		K:        o.K,
		KLocal:   o.KLocal,
		ThrGamma: o.ThrGamma,
		Paths:    o.Paths,
		Seed:     o.Seed,
		Sources:  o.Sources,
	}
	cfg.Policy, err = core.PolicyByName(o.Policy)
	if err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// ScoreNames lists the Table 3 scoring configurations.
func ScoreNames() []string { return core.ScoreNames() }

// EngineNames lists the execution backends accepted by Options.Engine.
func EngineNames() []string { return engine.Names() }

// Predict runs SNAPLE in-process on the backend selected by opts.Engine
// (parallel shared-memory by default). Predictions are bit-identical across
// backends and worker counts.
func Predict(g GraphView, opts Options) (Predictions, error) {
	preds, _, err := PredictStats(g, opts)
	return preds, err
}

// PredictFor answers the online question — "top-k for these vertices" —
// without a full-graph pass: it runs a query-scoped prediction for sources
// on the backend selected by opts.Engine, computing only the ≤2-hop closure
// the sources' scores depend on. The returned Predictions are indexed by
// vertex like Predict's, with non-source rows nil, and are bit-identical to
// the full run's rows for the same Options. It is the one-shot form of what
// cmd/snaple-serve serves continuously.
func PredictFor(g GraphView, sources []VertexID, opts Options) (Predictions, error) {
	opts.Sources = sources
	return Predict(g, opts)
}

// PredictForContext is PredictFor under a context deadline or cancellation.
// On the dist backend a cancelled context closes every worker connection, so
// a blocked superstep exchange fails promptly with ctx.Err() and the
// resident workers stay reusable; the in-memory backends finish their steps
// in microseconds and simply ignore ctx.
func PredictForContext(ctx context.Context, g GraphView, sources []VertexID, opts Options) (Predictions, error) {
	opts.Sources = sources
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	be, err := engine.New(opts.Engine, opts.Workers, opts.Seed)
	if err != nil {
		return nil, err
	}
	preds, _, err := engine.PredictWithContext(ctx, be, g, cfg)
	return preds, err
}

// EngineStats reports what a prediction run cost: wall-clock time, ingest
// throughput (EdgesPerSec), heap churn (AllocBytes/AllocObjects, local and
// serial backends) and the simulated-cluster costs (sim backend only).
type EngineStats = engine.Stats

// PredictStats is Predict with the backend's cost report, for callers that
// track the performance trajectory (cmd/snaple, cmd/snaple-bench).
func PredictStats(g GraphView, opts Options) (Predictions, EngineStats, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, EngineStats{}, err
	}
	be, err := engine.New(opts.Engine, opts.Workers, opts.Seed)
	if err != nil {
		return nil, EngineStats{}, err
	}
	return be.Predict(g, cfg)
}

// ClusterOptions describes the deployment for distributed runs: the
// simulated cluster of the "sim" backend (Nodes/NodeType/Partitions/
// MemBudgetBytes) or the real worker fleet of the "dist" backend
// (WorkerAddrs/SpawnWorkers/Workers). Strategy and Seed apply to both.
type ClusterOptions struct {
	// Graph is the graph the cluster serves. Required for OpenCluster;
	// PredictDistributed fills it from its own argument. Resident fleets
	// (Manifest, or bare "dist") require a frozen *Graph — compact a live
	// view before opening one; sim and non-resident dist deployments
	// accept any view.
	Graph GraphView
	// Options is the base prediction configuration every query of an open
	// cluster runs under; Cluster.PredictFor overrides only the sources.
	Options Options
	// Manifest is the path of a fleet manifest written by `snaple pack
	// -shards`. When set (with Options.Engine "dist"), OpenCluster attaches
	// to resident snaple-worker processes — started with -shard, each
	// holding one packed partition — at WorkerAddrs (shard-major when
	// Replicas > 1) instead of shipping partitions: attaching is a
	// fingerprint handshake, and a worker resident for a different pack is
	// refused with ErrManifestMismatch.
	Manifest string
	// Nodes is the number of simulated cluster nodes (default 1; sim only).
	Nodes int
	// NodeType is "type-I" (8 cores, 32 GB, GbE) or "type-II" (20 cores,
	// 128 GB, 10GbE; the default) — the paper's two machine classes (sim
	// only).
	NodeType string
	// Partitions overrides the partition count (default one per core; sim
	// only — the dist backend always uses one partition per worker).
	Partitions int
	// Strategy selects the vertex-cut: "hash-edge" (default), "hash-source"
	// or "greedy".
	Strategy string
	// MemBudgetBytes optionally caps per-node memory (0 = the node spec's
	// capacity). Exceeding it aborts with an error wrapping
	// ErrMemoryExhausted (sim only).
	MemBudgetBytes int64
	// Seed drives partitioning and master election.
	Seed uint64
	// Workers bounds the host goroutines processing partitions
	// (0 = GOMAXPROCS). It never affects results or simulated costs. For
	// the dist backend it is the loopback worker count used when neither
	// WorkerAddrs nor SpawnWorkers is given.
	Workers int
	// WorkerAddrs connects the dist backend to running snaple-worker
	// processes ("host:port" each); one partition is shipped to each.
	WorkerAddrs []string
	// SpawnWorkers makes the dist backend fork this many snaple-worker
	// processes on loopback for the duration of the run (requires the
	// binary; see WorkerBin). Ignored when WorkerAddrs is set.
	SpawnWorkers int
	// WorkerBin locates the worker binary for SpawnWorkers (default
	// "snaple-worker" resolved through PATH).
	WorkerBin string
	// WireProto pins the dist backend's wire protocol: 0 negotiates (v3
	// with automatic fallback to the legacy gob protocol for old workers),
	// 2 forces gob, 3 requires v3 and fails clearly against legacy workers.
	WireProto int
	// WireCompress enables per-frame flate compression on v3 connections
	// (trades coordinator/worker CPU for cross-node bytes; ignored on gob
	// connections).
	WireCompress bool
	// Replicas ships every partition to this many dist workers (0 or 1 = no
	// replication). With R > 1 the fleet divides into groups of R replicas
	// computing identically, so a worker death mid-run fails over to a
	// survivor and the run completes with bit-identical predictions; only
	// when all R replicas of a partition die does the run fail, with
	// ErrPartitionLost (dist only).
	Replicas int
	// StepTimeout bounds each dist superstep exchange phase (and the final
	// collect): a wedged or blackholed worker is declared dead at the
	// deadline instead of hanging the run. 0 = the 10-minute default;
	// negative disables the bound (dist only).
	StepTimeout time.Duration
	// DialAttempts bounds connect/spawn attempts per dist worker during
	// fleet setup; transient failures are retried with exponential backoff
	// and jitter (0 = 3 attempts).
	DialAttempts int
	// DialBackoff is the initial retry backoff for DialAttempts, doubled
	// after each failed attempt with jitter (0 = 150ms; dist only).
	DialBackoff time.Duration
}

// ErrMemoryExhausted is returned (wrapped) when a simulated node exceeds its
// memory budget.
var ErrMemoryExhausted = cluster.ErrMemoryExhausted

// ErrPartitionLost is returned (wrapped) by dist runs when every replica of
// some partition has died — the one fleet state failover cannot mask. With
// ClusterOptions.Replicas = 1 any single worker death reports it; with
// R > 1 it takes R deaths in the same replica group.
var ErrPartitionLost = engine.ErrPartitionLost

// Result reports a distributed run: the predictions plus the engine costs.
type Result struct {
	Predictions Predictions
	// Engine is the backend that produced the result: "sim", "dist", or
	// "fleet" for a resident-fleet run (a Cluster, or bare-dist
	// PredictDistributed, which serves in-process resident workers).
	Engine string
	// WallSeconds is host wall-clock time of the supersteps.
	WallSeconds float64
	// SimSeconds is the simulated cluster latency (compute makespan over
	// the configured cores plus network transfer time; sim only — the dist
	// backend's latency IS WallSeconds).
	SimSeconds float64
	// CrossBytes / CrossMsgs count cross-node traffic: simulated from the
	// paper's cost model on "sim", measured on real sockets on "dist".
	CrossBytes, CrossMsgs int64
	// MemPeakBytes is the highest per-node memory footprint (simulated on
	// "sim", the largest worker-reported live heap on "dist").
	MemPeakBytes int64
	// ReplicationFactor is the average replicas per vertex of the
	// vertex-cut.
	ReplicationFactor float64
	// FrontierVertices is the query closure's vertex count when the run was
	// scoped (Options.Sources non-empty); 0 on a full run.
	FrontierVertices int
	// ScoredVertices is how many vertices the final combine step visited:
	// the source count on a scoped run, NumVertices on a full run.
	ScoredVertices int
	// Replicas is the dist replica factor the run used (1 = no
	// replication; 0 on sim).
	Replicas int
	// WorkersDead counts dist workers declared dead during the run (conn
	// errors and missed phase deadlines), each masked by a failover.
	WorkersDead int
	// Failovers counts mid-run primary promotions: a partition whose
	// serving replica died and a survivor took over (dist only).
	Failovers int
	// DialRetries counts redialed connect/spawn attempts during dist fleet
	// setup (see ClusterOptions.DialAttempts).
	DialRetries int
}

// strategy maps the string-typed vertex-cut selection onto internal/partition.
func (c ClusterOptions) strategy() (partition.Strategy, error) {
	switch c.Strategy {
	case "", "hash-edge":
		return partition.HashEdge{Seed: c.Seed}, nil
	case "hash-source":
		return partition.HashSource{Seed: c.Seed}, nil
	case "greedy":
		return partition.Greedy{}, nil
	default:
		return nil, fmt.Errorf("snaple: unknown strategy %q (hash-edge|hash-source|greedy)", c.Strategy)
	}
}

// toSim maps the string-typed deployment description onto the engine
// layer's Sim backend.
func (c ClusterOptions) toSim() (engine.Sim, error) {
	var spec cluster.NodeSpec
	switch c.NodeType {
	case "", "type-II":
		spec = cluster.TypeII()
	case "type-I":
		spec = cluster.TypeI()
	default:
		return engine.Sim{}, fmt.Errorf("snaple: unknown node type %q (type-I|type-II)", c.NodeType)
	}
	strat, err := c.strategy()
	if err != nil {
		return engine.Sim{}, err
	}
	return engine.Sim{
		Nodes:          c.Nodes,
		Spec:           spec,
		Partitions:     c.Partitions,
		Strategy:       strat,
		MemBudgetBytes: c.MemBudgetBytes,
		Seed:           c.Seed,
		Workers:        c.Workers,
	}, nil
}

func toResult(preds Predictions, st engine.Stats) *Result {
	return &Result{
		Predictions:       preds,
		Engine:            st.Engine,
		WallSeconds:       st.WallSeconds,
		SimSeconds:        st.SimSeconds,
		CrossBytes:        st.CrossBytes,
		CrossMsgs:         st.CrossMsgs,
		MemPeakBytes:      st.MemPeakBytes,
		ReplicationFactor: st.ReplicationFactor,
		FrontierVertices:  st.FrontierVertices,
		ScoredVertices:    st.ScoredVertices,
		Replicas:          st.Replicas,
		WorkersDead:       st.WorkersDead,
		Failovers:         st.Failovers,
		DialRetries:       st.DialRetries,
	}
}

// toDist maps the deployment description onto the engine layer's Dist
// backend (real worker processes over TCP).
func (c ClusterOptions) toDist() (engine.Dist, error) {
	strat, err := c.strategy()
	if err != nil {
		return engine.Dist{}, err
	}
	return engine.Dist{
		Addrs:        c.WorkerAddrs,
		Spawn:        c.SpawnWorkers,
		WorkerBin:    c.WorkerBin,
		InProc:       c.Workers,
		Strategy:     strat,
		Seed:         c.Seed,
		Proto:        c.WireProto,
		Compress:     c.WireCompress,
		Replicas:     c.Replicas,
		StepTimeout:  c.StepTimeout,
		DialAttempts: c.DialAttempts,
		DialBackoff:  c.DialBackoff,
	}, nil
}

// ErrManifestMismatch is returned (wrapped) when a fleet manifest does not
// describe the graph being served, or when a resident snaple-worker turns
// out to hold a partition packed from a different (graph, cut) than the
// coordinator's — the fingerprint handshake that replaces partition shipping
// caught the disagreement before any superstep ran.
var ErrManifestMismatch = engine.ErrManifestMismatch

// Cluster is a standing deployment opened once and queried many times: the
// persistent form of PredictDistributed. For the "dist" engine the expensive
// setup — vertex-cut partitioning, connecting the worker fleet and (for
// non-resident workers) shipping partitions — happens at OpenCluster, and
// every PredictFor afterwards only routes its query: against resident
// workers a scoped query ships nothing but a fingerprint handshake and the
// sparse closure roles, and only contacts the replica groups whose
// partitions intersect the query's closure. Multiple servers (or
// snaple-serve front-ends) can share one standing worker fleet.
//
// A Cluster is safe for concurrent use; queries are serialized over the
// standing connections. Close releases the connections (and any in-process
// workers); the resident worker processes themselves keep running for the
// next coordinator.
type Cluster struct {
	g    GraphView
	opts Options

	fleet *engine.Fleet // resident mode ("dist" with a manifest, or in-process)
	dist  *engine.Dist  // per-call mode ("dist" with non-resident workers)
	sim   *engine.Sim   // per-call mode ("" / "sim")
	simW  int           // host worker bound for the sim backend

	mu     sync.Mutex
	last   EngineStats
	closed bool
}

// OpenCluster validates o eagerly — a bogus score, policy, node type,
// strategy or a manifest that does not match the graph all fail here, never
// on the first query — and brings the deployment up:
//
//   - Options.Engine "" or "sim": the simulated cluster; each query runs the
//     paper's cost model (nothing stays resident, so Open only validates).
//   - "dist" with Manifest: attach to resident workers at WorkerAddrs.
//   - "dist" with WorkerAddrs or SpawnWorkers (no manifest): classic
//     non-resident workers; each query ships partitions.
//   - "dist" bare: an in-process resident fleet of Workers loopback workers
//     (default 2), pinned once and reused by every query.
func OpenCluster(o ClusterOptions) (*Cluster, error) {
	if o.Graph == nil {
		return nil, fmt.Errorf("snaple: OpenCluster: nil graph")
	}
	if _, err := o.Options.toCore(); err != nil {
		return nil, err
	}
	c := &Cluster{g: o.Graph, opts: o.Options}
	switch eng := o.Options.Engine; eng {
	case "", "sim":
		sim, err := o.toSim()
		if err != nil {
			return nil, err
		}
		c.sim, c.simW = &sim, o.Workers
	case "dist":
		strat, err := o.strategy()
		if err != nil {
			return nil, err
		}
		fo := engine.FleetOptions{
			Addrs: o.WorkerAddrs, Replicas: o.Replicas, Strategy: strat,
			Seed: o.Seed, StepTimeout: o.StepTimeout,
			DialAttempts: o.DialAttempts, DialBackoff: o.DialBackoff,
			Proto: o.WireProto, Compress: o.WireCompress,
		}
		switch {
		case o.Manifest != "":
			f, err := os.Open(o.Manifest)
			if err != nil {
				return nil, fmt.Errorf("snaple: OpenCluster: %w", err)
			}
			fo.Manifest, err = graph.ReadManifest(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			csr, ok := graph.AsCSR(o.Graph)
			if !ok {
				return nil, fmt.Errorf("snaple: OpenCluster: resident fleets serve a frozen graph; compact the live view first")
			}
			c.fleet, err = engine.OpenFleet(csr, fo)
			if err != nil {
				return nil, err
			}
		case len(o.WorkerAddrs) > 0 || o.SpawnWorkers > 0:
			d, err := o.toDist()
			if err != nil {
				return nil, err
			}
			c.dist = &d
		default:
			fo.Addrs, fo.InProc = nil, o.Workers
			if fo.InProc == 0 {
				fo.InProc = 2 // the dist backend's loopback default
			}
			csr, ok := graph.AsCSR(o.Graph)
			if !ok {
				// The in-process fleet packs its shards from this very view,
				// so a static overlay (an evaluation split, a held live
				// snapshot) can fold into the frozen CSR it serves —
				// bit-identical by the delta/compaction oracle. External
				// fleets (manifest above) stay strict: their pack predates
				// the overlay.
				d, isDelta := o.Graph.(*graph.Delta)
				if !isDelta {
					return nil, fmt.Errorf("snaple: OpenCluster: resident fleets serve a frozen graph; compact the live view first")
				}
				csr = d.Materialize()
				c.g = csr
			}
			var err error
			c.fleet, err = engine.OpenFleet(csr, fo)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("snaple: OpenCluster: engine %q has no cluster deployment (sim|dist)", eng)
	}
	return c, nil
}

// PredictFor answers "top-k for these vertices" against the standing
// deployment: a query-scoped run whose results are bit-identical to the full
// run's rows for the sources. On a resident fleet only the replica groups
// whose partitions intersect the sources' closure are contacted at all.
// Passing nil sources runs the full graph.
func (c *Cluster) PredictFor(sources []VertexID) (*Result, error) {
	return c.PredictForContext(context.Background(), sources)
}

// PredictForContext is PredictFor under a context: cancelling it closes the
// query's worker connections so a blocked superstep fails promptly — the
// resident workers stay up, and the cluster redials on the next query.
func (c *Cluster) PredictForContext(ctx context.Context, sources []VertexID) (*Result, error) {
	opts := c.opts
	opts.Sources = sources
	return c.predict(ctx, opts)
}

// Predict runs the cluster's base Options as-is (a full-graph pass unless
// Options.Sources scopes it).
func (c *Cluster) Predict() (*Result, error) {
	return c.predict(context.Background(), c.opts)
}

func (c *Cluster) predict(ctx context.Context, opts Options) (*Result, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("snaple: cluster is closed")
	}
	switch {
	case c.fleet != nil:
		preds, st, err := c.fleet.PredictCtx(ctx, c.g, cfg)
		if err != nil {
			return nil, err
		}
		c.setLast(st)
		return toResult(preds, st), nil
	case c.dist != nil:
		preds, st, err := c.dist.PredictCtx(ctx, c.g, cfg)
		if err != nil {
			return nil, err
		}
		c.setLast(st)
		return toResult(preds, st), nil
	default:
		res, err := c.sim.PredictResult(c.g, cfg)
		if res == nil {
			return nil, err // failed before any superstep ran: nothing to report
		}
		st := engine.StatsFromResult(res, c.simW)
		c.setLast(st)
		return toResult(res.Pred, st), err
	}
}

func (c *Cluster) setLast(st EngineStats) {
	c.mu.Lock()
	c.last = st
	c.mu.Unlock()
}

// Stats reports the deployment's cost counters: cumulative over the
// cluster's lifetime for a resident fleet (worker deaths, failovers, dial
// retries survive across queries), the last query's report otherwise.
func (c *Cluster) Stats() EngineStats {
	if c.fleet != nil {
		return c.fleet.Stats()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Close releases the cluster's standing connections and in-process workers.
// Resident worker processes keep running for the next coordinator. Close is
// idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.fleet != nil {
		return c.fleet.Close()
	}
	return nil
}

// PredictDistributed runs SNAPLE's Algorithm 2 on a configured deployment:
// by default the GAS engine over a simulated cluster (the engine layer's
// "sim" backend, with the paper's cost model), or — when opts.Engine is
// "dist" — across real worker processes over TCP, with the traffic fields
// measured on the wire. Results are bit-identical to Predict for the same
// Options, independent of the deployment.
//
// It is the one-shot convenience path: OpenCluster, one prediction, Close.
// Callers issuing more than one query should hold the *Cluster open instead,
// so the fleet setup (partitioning, connecting, any shipping) is paid once.
func PredictDistributed(g GraphView, opts Options, cl ClusterOptions) (*Result, error) {
	cl.Graph, cl.Options = g, opts
	c, err := OpenCluster(cl)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Predict()
}

// PredictBaseline runs the paper's BASELINE (a direct 2-hop Jaccard
// implementation of Algorithm 1 on the GAS engine). On large graphs with
// bounded budgets it fails with ErrMemoryExhausted — by design.
func PredictBaseline(g GraphView, k int, cl ClusterOptions) (*Result, error) {
	sim, err := cl.toSim()
	if err != nil {
		return nil, err
	}
	assign, clu, err := sim.Deploy(g)
	if err != nil {
		return nil, err
	}
	res, err := core.PredictBaselineGASWorkers(g, assign, clu, k, cl.Workers)
	if res == nil {
		return nil, err
	}
	return toResult(res.Pred, engine.StatsFromResult(res, cl.Workers)), err
}

// PredictWalks runs the Cassovary-style single-machine comparator: w random
// walks of depth d per vertex, recommending the k most-visited strangers.
func PredictWalks(g GraphView, walks, depth, k int, seed uint64) (Predictions, error) {
	return walk.Predict(g, walk.Config{Walks: walks, Depth: depth, K: k, Seed: seed})
}

// Dataset generates one of the paper's dataset analogs: gowalla, pokec,
// livejournal, orkut or twitter-rv, at the given scale (1.0 = harness
// default size).
func Dataset(name string, scale float64, seed uint64) (*Graph, error) {
	ds, err := eval.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	return ds.Generate(scale, seed)
}

// DatasetNames lists the available analogs in Table 4 order.
func DatasetNames() []string { return eval.DatasetNames() }

// CommunityGraph generates a graph from the homophily model directly.
type CommunityGraph = gen.CommunityConfig

// GenerateCommunity builds a synthetic community graph.
func GenerateCommunity(cfg CommunityGraph, seed uint64) (*Graph, error) {
	return gen.Community(cfg, seed)
}

// NewSplit hides perVertex outgoing edges of every vertex with degree > 3
// (the paper's protocol) and returns the training graph plus the hidden
// edges.
func NewSplit(g *Graph, perVertex int, seed uint64) (*Split, error) {
	return eval.MakeSplit(g, perVertex, seed)
}

// Recall is the fraction of hidden edges recovered by pred.
func Recall(pred Predictions, s *Split) float64 { return eval.Recall(pred, s) }

// FromEdges builds a graph from an explicit edge list (duplicates and
// self-loops removed). Vertex IDs must lie in [0, numVertices).
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// ReadEdgeList parses a SNAP-style edge list ("src dst" per line, '#'
// comments). Set symmetrize for undirected inputs. Regular files are
// parsed with the streaming parallel ingester, whose peak memory is the
// CSR being built plus per-shard counters — no edge-list intermediate.
func ReadEdgeList(r io.Reader, symmetrize bool) (*Graph, error) {
	return graph.ReadEdgeList(r, graph.ReadOptions{Symmetrize: symmetrize})
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string, symmetrize bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snaple: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadEdgeList(f, symmetrize)
}

// WriteEdgeList writes g as a SNAP-style edge list, including the
// machine-readable "# vertices: N" header that makes save/load round trips
// preserve isolated vertices.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// GraphReadOptions configures the graph loaders (see the fields' docs in
// internal/graph).
type GraphReadOptions = graph.ReadOptions

// ReadGraphFile loads a graph from path in either supported on-disk
// format, auto-detected by magic bytes: a binary CSR snapshot (.sgr, see
// WriteSnapshot) or a SNAP-style text edge list.
func ReadGraphFile(path string, opts GraphReadOptions) (*Graph, error) {
	return graph.ReadGraphFile(path, opts)
}

// LoadGraphFile is ReadGraphFile with the CLI's defaults: just the
// undirected-input switch, which only applies to text inputs (snapshots
// bake the edge direction in when packed).
func LoadGraphFile(path string, symmetrize bool) (*Graph, error) {
	return graph.ReadGraphFile(path, graph.ReadOptions{Symmetrize: symmetrize})
}

// NewLive starts a live, mutable graph over a frozen base. Live.Apply
// publishes epoch-stamped Delta views copy-on-write (readers keep whatever
// view they hold, consistently), Live.Compact folds the overlay back into
// a fresh CSR, and every Predict entry point accepts the views directly.
// Resident fleets (OpenCluster) are the exception: they serve a frozen
// pack, so compact before handing them a live graph's view.
func NewLive(base *Graph) *Live { return graph.NewLive(base) }

// LoadInfo describes how OpenGraphFile loaded a graph: the detected
// format, the snapshot version, and whether the mmap and packed-adjacency
// paths were taken.
type LoadInfo = graph.LoadInfo

// Packed is a read-only graph view whose adjacency stays delta-varint
// compressed in memory, decoding rows on demand — how packed .sgr
// snapshots serve queries without materialising the CSR.
type Packed = graph.Packed

// OpenGraphFile loads a graph from path preserving its storage
// representation: format-v2 snapshots arrive with their columns aliasing a
// read-only mmap of the file (zero per-edge work, O(1) heap allocation),
// packed-adjacency snapshots stay compressed as a *Packed view, and text
// edge lists parse as usual. See GraphReadOptions.NoMap and Verify for the
// heap and full-validation switches.
func OpenGraphFile(path string, opts GraphReadOptions) (GraphView, LoadInfo, error) {
	return graph.OpenGraphFile(path, opts)
}

// MapSnapshot opens a format-v2 plain .sgr snapshot with its CSR columns
// mmap'd in place; see OpenGraphFile for the general loader.
func MapSnapshot(path string) (*Graph, error) { return graph.MapSnapshot(path) }

// SnapshotOptions configures WriteSnapshotOpts (the packed-adjacency
// switch).
type SnapshotOptions = graph.SnapshotOptions

// WriteSnapshot writes g as a versioned, checksummed binary CSR snapshot.
// Loading one materialises the graph with zero per-edge allocation — no
// parsing, no remap, no re-sort — and format v2 goes further: its sections
// are 8-aligned so loaders view the file in place, mmap'd, with load cost
// independent of edge count. `snaple pack` converts big edge lists once
// and every later run starts at page-cache speed.
func WriteSnapshot(w io.Writer, g *Graph) error { return graph.WriteSnapshot(w, g) }

// WriteSnapshotOpts is WriteSnapshot with explicit encoding options, e.g.
// delta-varint packed adjacency.
func WriteSnapshotOpts(w io.Writer, g *Graph, o SnapshotOptions) error {
	return graph.WriteSnapshotOpts(w, g, o)
}

// ReadSnapshot loads a binary CSR snapshot written by WriteSnapshot (any
// format version), verifying its checksums and structural invariants.
func ReadSnapshot(r io.Reader) (*Graph, error) { return graph.ReadSnapshot(r) }
