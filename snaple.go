// Package snaple is a Go implementation of SNAPLE (Kermarrec, Taïani,
// Tirado: "Scaling Out Link Prediction with SNAPLE: 1 Billion Edges and
// Beyond", MIDDLEWARE 2015 / Inria RR-454): a link-prediction framework for
// gather-apply-scatter (GAS) graph engines that scores candidate edges by
// combining and aggregating raw similarities along 2-hop paths instead of
// shipping neighbourhoods across the cluster.
//
// The package is a facade over the repository's internals:
//
//   - a GAS engine with vertex-cut placement, master/mirror replication and
//     cluster cost accounting (internal/gas, internal/partition,
//     internal/cluster),
//   - the SNAPLE scoring framework and its Algorithm 2 GAS program plus the
//     naive BASELINE comparison system (internal/core),
//   - a Cassovary-style random-walk comparator (internal/walk),
//   - synthetic dataset analogs and the paper's evaluation protocol
//     (internal/gen, internal/eval).
//
// Quick start:
//
//	g, _ := snaple.Dataset("livejournal", 0.2, 42)
//	split, _ := snaple.NewSplit(g, 1, 42)
//	preds, _ := snaple.Predict(split.Train, snaple.Options{Score: "linearSum", KLocal: 20})
//	fmt.Printf("recall@5 = %.3f\n", snaple.Recall(preds, split))
package snaple

import (
	"fmt"
	"io"
	"os"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/eval"
	"snaple/internal/gen"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/walk"
)

// Re-exported fundamental types. The aliases point at internal packages so
// the whole repository shares one set of types.
type (
	// Graph is a compact immutable directed graph (CSR).
	Graph = graph.Digraph
	// VertexID identifies a vertex (dense, 0-based).
	VertexID = graph.VertexID
	// Edge is a directed edge.
	Edge = graph.Edge
	// Prediction is one recommended edge target with its score.
	Prediction = core.Prediction
	// Predictions holds per-vertex prediction lists indexed by vertex.
	Predictions = core.Predictions
	// Split is a train/test split under the paper's protocol.
	Split = eval.Split
)

// Options configures a SNAPLE prediction (Algorithm 2's inputs).
type Options struct {
	// Score names a Table 3 configuration (default "linearSum"):
	// linearSum, euclSum, geomSum, PPR, counter, linearMean, euclMean,
	// geomMean, linearGeom, euclGeom, geomGeom.
	Score string
	// Alpha parameterises the linear combinator (default 0.9).
	Alpha float64
	// K is the number of predictions per vertex (default 5).
	K int
	// KLocal bounds the per-vertex relay sample (0 = unlimited).
	KLocal int
	// ThrGamma is the neighbourhood truncation threshold (0 = unlimited;
	// the paper defaults to 200).
	ThrGamma int
	// Policy selects relays: "max" (default), "min" or "rnd" (Section 5.6).
	Policy string
	// Paths is the maximum explored path length: 2 (default, the paper's
	// setting) or 3 (the footnote-2 extension).
	Paths int
	// Seed drives truncation and the rnd policy.
	Seed uint64
}

func (o Options) toCore() (core.Config, error) {
	if o.Score == "" {
		o.Score = "linearSum"
	}
	if o.Alpha == 0 {
		o.Alpha = 0.9
	}
	spec, err := core.ScoreByName(o.Score, o.Alpha)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Score:    spec,
		K:        o.K,
		KLocal:   o.KLocal,
		ThrGamma: o.ThrGamma,
		Paths:    o.Paths,
		Seed:     o.Seed,
	}
	switch o.Policy {
	case "", "max":
		cfg.Policy = core.SelectMax
	case "min":
		cfg.Policy = core.SelectMin
	case "rnd":
		cfg.Policy = core.SelectRnd
	default:
		return core.Config{}, fmt.Errorf("snaple: unknown policy %q (max|min|rnd)", o.Policy)
	}
	return cfg, nil
}

// ScoreNames lists the Table 3 scoring configurations.
func ScoreNames() []string { return core.ScoreNames() }

// Predict runs SNAPLE serially in-process (the single-machine reference
// implementation, bit-identical to the distributed engine).
func Predict(g *Graph, opts Options) (Predictions, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	return core.ReferenceSnaple(g, cfg)
}

// ClusterOptions describes the simulated deployment for distributed runs.
type ClusterOptions struct {
	// Nodes is the number of cluster nodes (default 1).
	Nodes int
	// NodeType is "type-I" (8 cores, 32 GB, GbE) or "type-II" (20 cores,
	// 128 GB, 10GbE; the default) — the paper's two machine classes.
	NodeType string
	// Partitions overrides the partition count (default one per core).
	Partitions int
	// Strategy selects the vertex-cut: "hash-edge" (default), "hash-source"
	// or "greedy".
	Strategy string
	// MemBudgetBytes optionally caps per-node memory (0 = the node spec's
	// capacity). Exceeding it aborts with an error wrapping
	// ErrMemoryExhausted.
	MemBudgetBytes int64
	// Seed drives partitioning and master election.
	Seed uint64
}

// ErrMemoryExhausted is returned (wrapped) when a simulated node exceeds its
// memory budget.
var ErrMemoryExhausted = cluster.ErrMemoryExhausted

// Result reports a distributed run: the predictions plus the engine costs.
type Result struct {
	Predictions Predictions
	// WallSeconds is host wall-clock time of the three supersteps.
	WallSeconds float64
	// SimSeconds is the simulated cluster latency (compute makespan over
	// the configured cores plus network transfer time).
	SimSeconds float64
	// CrossBytes / CrossMsgs count cross-node traffic.
	CrossBytes, CrossMsgs int64
	// MemPeakBytes is the highest per-node memory footprint.
	MemPeakBytes int64
	// ReplicationFactor is the average replicas per vertex of the
	// vertex-cut.
	ReplicationFactor float64
}

func (c ClusterOptions) build(g *Graph) (partition.Assignment, *cluster.Cluster, error) {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	var spec cluster.NodeSpec
	switch c.NodeType {
	case "", "type-II":
		spec = cluster.TypeII()
	case "type-I":
		spec = cluster.TypeI()
	default:
		return partition.Assignment{}, nil, fmt.Errorf("snaple: unknown node type %q (type-I|type-II)", c.NodeType)
	}
	parts := c.Partitions
	if parts == 0 {
		parts = c.Nodes * spec.Cores
	}
	var strat partition.Strategy
	switch c.Strategy {
	case "", "hash-edge":
		strat = partition.HashEdge{Seed: c.Seed}
	case "hash-source":
		strat = partition.HashSource{Seed: c.Seed}
	case "greedy":
		strat = partition.Greedy{}
	default:
		return partition.Assignment{}, nil, fmt.Errorf("snaple: unknown strategy %q (hash-edge|hash-source|greedy)", c.Strategy)
	}
	assign, err := strat.Partition(g, parts)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	cl, err := cluster.New(cluster.Config{Nodes: c.Nodes, Spec: spec, MemBudgetBytes: c.MemBudgetBytes}, parts)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	return assign, cl, nil
}

func toResult(r *core.Result) *Result {
	if r == nil {
		return nil
	}
	return &Result{
		Predictions:       r.Pred,
		WallSeconds:       r.Total.WallSeconds,
		SimSeconds:        r.Total.SimSeconds(),
		CrossBytes:        r.Total.CrossBytes,
		CrossMsgs:         r.Total.CrossMsgs,
		MemPeakBytes:      r.Total.MemPeakBytes,
		ReplicationFactor: r.ReplicationFactor,
	}
}

// PredictDistributed runs SNAPLE's Algorithm 2 on the GAS engine over a
// simulated cluster. Results are bit-identical to Predict for the same
// Options, independent of the deployment.
func PredictDistributed(g *Graph, opts Options, cl ClusterOptions) (*Result, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	assign, clu, err := cl.build(g)
	if err != nil {
		return nil, err
	}
	res, err := core.PredictGAS(g, assign, clu, cfg)
	return toResult(res), err
}

// PredictBaseline runs the paper's BASELINE (a direct 2-hop Jaccard
// implementation of Algorithm 1 on the GAS engine). On large graphs with
// bounded budgets it fails with ErrMemoryExhausted — by design.
func PredictBaseline(g *Graph, k int, cl ClusterOptions) (*Result, error) {
	assign, clu, err := cl.build(g)
	if err != nil {
		return nil, err
	}
	res, err := core.PredictBaselineGAS(g, assign, clu, k)
	return toResult(res), err
}

// PredictWalks runs the Cassovary-style single-machine comparator: w random
// walks of depth d per vertex, recommending the k most-visited strangers.
func PredictWalks(g *Graph, walks, depth, k int, seed uint64) (Predictions, error) {
	return walk.Predict(g, walk.Config{Walks: walks, Depth: depth, K: k, Seed: seed})
}

// Dataset generates one of the paper's dataset analogs: gowalla, pokec,
// livejournal, orkut or twitter-rv, at the given scale (1.0 = harness
// default size).
func Dataset(name string, scale float64, seed uint64) (*Graph, error) {
	ds, err := eval.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	return ds.Generate(scale, seed)
}

// DatasetNames lists the available analogs in Table 4 order.
func DatasetNames() []string { return eval.DatasetNames() }

// CommunityGraph generates a graph from the homophily model directly.
type CommunityGraph = gen.CommunityConfig

// GenerateCommunity builds a synthetic community graph.
func GenerateCommunity(cfg CommunityGraph, seed uint64) (*Graph, error) {
	return gen.Community(cfg, seed)
}

// NewSplit hides perVertex outgoing edges of every vertex with degree > 3
// (the paper's protocol) and returns the training graph plus the hidden
// edges.
func NewSplit(g *Graph, perVertex int, seed uint64) (*Split, error) {
	return eval.MakeSplit(g, perVertex, seed)
}

// Recall is the fraction of hidden edges recovered by pred.
func Recall(pred Predictions, s *Split) float64 { return eval.Recall(pred, s) }

// FromEdges builds a graph from an explicit edge list (duplicates and
// self-loops removed). Vertex IDs must lie in [0, numVertices).
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// ReadEdgeList parses a SNAP-style edge list ("src dst" per line, '#'
// comments). Set symmetrize for undirected inputs.
func ReadEdgeList(r io.Reader, symmetrize bool) (*Graph, error) {
	return graph.ReadEdgeList(r, graph.ReadOptions{Symmetrize: symmetrize})
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string, symmetrize bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snaple: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadEdgeList(f, symmetrize)
}

// WriteEdgeList writes g as a SNAP-style edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }
