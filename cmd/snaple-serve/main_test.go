package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunErrors pins the startup validation: every bad flag combination
// must fail before the server binds (the happy path is covered over real
// HTTP by internal/serve's tests and scripts/serve_smoke.sh).
func TestRunErrors(t *testing.T) {
	file := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(file, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := serveArgs{
		in: file, listen: "127.0.0.1:0",
		score: "linearSum", alpha: 0.9, kmax: 5, klocal: 4, thr: 10,
		policy: "max", paths: 2, seed: 1, engine: "local",
	}
	for _, tc := range []struct {
		name   string
		mutate func(*serveArgs)
	}{
		{"missing in", func(a *serveArgs) { a.in = "" }},
		{"absent file", func(a *serveArgs) { a.in = filepath.Join(t.TempDir(), "nope.txt") }},
		{"bad score", func(a *serveArgs) { a.score = "nope" }},
		{"bad policy", func(a *serveArgs) { a.policy = "nope" }},
		{"bad engine", func(a *serveArgs) { a.engine = "nope" }},
		{"bad paths", func(a *serveArgs) { a.paths = 5 }},
		{"bad kmax", func(a *serveArgs) { a.kmax = -1 }},
		{"unbindable listen", func(a *serveArgs) { a.listen = "256.0.0.1:99999" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := base
			tc.mutate(&args)
			if err := run(args); err == nil {
				t.Fatal("want error")
			}
		})
	}
}
