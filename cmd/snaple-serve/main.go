// Command snaple-serve is the online face of the repository: a long-lived
// HTTP server that loads a graph once — ideally a binary CSR snapshot
// (.sgr), which loads at disk speed — and answers per-user top-k link
// prediction queries from it using the query-scoped engine layer.
//
// Concurrent requests are micro-batched into one frontier run per tick and
// per-vertex results are kept in an LRU cache, so a hot vertex costs one
// scoped prediction ever, and a burst of N distinct users costs one closure
// computation, not N (see internal/serve).
//
// Usage:
//
//	snaple pack -in graph.txt -out graph.sgr
//	snaple-serve -in graph.sgr -listen :8080 -kmax 20 -klocal 20
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/predict -d '{"ids":[1,2,3],"k":5}'
//	curl -s localhost:8080/v1/info
//	curl -s localhost:8080/statsz
//
// With -mutable the served graph is live: POST /v1/edges applies an edge
// batch as a delta overlay (no CSR rebuild; cached rows inside the mutated
// frontier are invalidated, everything else keeps serving from cache), and
// the overlay is folded back into a fresh CSR on POST /v1/compact or
// automatically at -compact-at dirty rows, optionally persisting the
// compacted snapshot with -compact-out:
//
//	snaple-serve -in graph.sgr -mutable -compact-at 10000 -compact-out graph.sgr
//	curl -s -X POST localhost:8080/v1/edges -d '{"add":[[1,2],[3,4]],"remove":[[5,6]]}'
//	curl -s -X POST localhost:8080/v1/compact
//
// With -manifest the server fronts a standing resident fleet instead of
// computing locally: `snaple pack -shards N` packs the partitions once,
// `snaple-worker -shard graph.sgr.i` pins them, and any number of serve
// front-ends attach to the same workers by fingerprint handshake:
//
//	snaple pack -in graph.txt -out graph.sgr -shards 3
//	snaple-worker -shard graph.sgr.0 & snaple-worker -shard graph.sgr.1 & ...
//	snaple-serve -in graph.sgr -manifest graph.sgr.manifest -addrs h0:7777,h1:7777,h2:7777
//
// On startup the server prints "serving <addr>" to stdout once the listener
// is bound (with -listen :0 the kernel picks the port), which is the
// machine-readable handshake scripts/serve_smoke.sh waits for.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snaple"
	"snaple/internal/core"
	"snaple/internal/engine"
	"snaple/internal/graph"
	"snaple/internal/serve"
)

func main() {
	var (
		in        = flag.String("in", "", "graph file to serve (.sgr snapshot or text edge list, auto-detected)")
		symmetric = flag.Bool("symmetric", false, "treat a text input as undirected")
		listen    = flag.String("listen", ":8080", "HTTP listen address (use :0 for an ephemeral port)")

		score  = flag.String("score", "linearSum", "SNAPLE score (see snaple -scores)")
		alpha  = flag.Float64("alpha", 0.9, "linear combinator alpha")
		kmax   = flag.Int("kmax", 20, "maximum servable predictions per vertex (requests may ask for any k up to this)")
		klocal = flag.Int("klocal", 20, "relay sample size (0 = unlimited)")
		thr    = flag.Int("thr", 200, "truncation threshold thrGamma (0 = unlimited)")
		policy = flag.String("policy", "max", "relay selection policy: max|min|rnd")
		paths  = flag.Int("paths", 2, "maximum path length: 2 or 3")
		seed   = flag.Uint64("seed", 42, "run seed")

		engineF = flag.String("engine", "local", "execution backend: "+strings.Join(snaple.EngineNames(), "|"))
		workers = flag.Int("workers", 0, "worker goroutines for the backend (0 = GOMAXPROCS)")

		manifest     = flag.String("manifest", "", "fleet manifest written by `snaple pack -shards`: attach to the resident workers at -addrs (shard-major when -replicas > 1) by fingerprint handshake instead of shipping partitions; implies -engine dist")
		addrs        = flag.String("addrs", "", "comma-separated snaple-worker addresses for -engine dist")
		spawn        = flag.Int("spawn", 0, "auto-spawn this many local snaple-worker processes for -engine dist")
		workerBin    = flag.String("worker-bin", "", "snaple-worker binary for -spawn (default: found on PATH)")
		replicas     = flag.Int("replicas", 0, "ship every partition to this many dist workers; worker deaths fail over to survivors (0 or 1 = no replication)")
		stepTimeout  = flag.Duration("step-timeout", 0, "per-phase deadline on dist superstep exchanges (0 = 10m default, negative = unbounded)")
		dialAttempts = flag.Int("dial-attempts", 0, "connect/spawn attempts per dist worker, retried with backoff (0 = 3)")
		runTimeout   = flag.Duration("run-timeout", 0, "deadline on each batch's backend run; on dist a wedged fleet fails the batch instead of the server (0 = unbounded)")

		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch collection window")
		batchMax    = flag.Int("batch-max", 4096, "max distinct uncached vertices per batch run (also the per-request id limit)")
		cacheSize   = flag.Int("cache", 65536, "LRU result cache capacity (vertices)")

		verify     = flag.Bool("verify", false, "fully re-verify snapshot checksums and row invariants on load (mapped loads default to the cheap structural checks)")
		mutable    = flag.Bool("mutable", false, "serve a live graph: accept POST /v1/edges mutation batches; loads on the heap, never mmap'd (incompatible with -manifest)")
		compactAt  = flag.Int("compact-at", 0, "auto-compact the mutation overlay once this many vertices have pending edits (0 = only on POST /v1/compact)")
		compactOut = flag.String("compact-out", "", "persist each compaction as a fresh .sgr snapshot at this path (atomic rename)")
	)
	flag.Parse()
	if err := run(serveArgs{
		in: *in, symmetric: *symmetric, listen: *listen,
		score: *score, alpha: *alpha, kmax: *kmax, klocal: *klocal,
		thr: *thr, policy: *policy, paths: *paths, seed: *seed,
		engine: *engineF, workers: *workers,
		manifest: *manifest, addrs: *addrs, spawn: *spawn, workerBin: *workerBin,
		replicas: *replicas, stepTimeout: *stepTimeout,
		dialAttempts: *dialAttempts, runTimeout: *runTimeout,
		batchWindow: *batchWindow, batchMax: *batchMax, cacheSize: *cacheSize,
		mutable: *mutable, compactAt: *compactAt, compactOut: *compactOut,
		verify: *verify,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-serve:", err)
		os.Exit(1)
	}
}

type serveArgs struct {
	in           string
	symmetric    bool
	listen       string
	score        string
	alpha        float64
	kmax         int
	klocal       int
	thr          int
	policy       string
	paths        int
	seed         uint64
	engine       string
	workers      int
	manifest     string
	addrs        string
	spawn        int
	workerBin    string
	replicas     int
	stepTimeout  time.Duration
	dialAttempts int
	runTimeout   time.Duration
	batchWindow  time.Duration
	batchMax     int
	cacheSize    int
	mutable      bool
	compactAt    int
	compactOut   string
	verify       bool
}

// heapCSR unwraps v to the compact heap-shaped CSR the fleet and mutable
// paths require: pass-through for plain CSRs (mmap'd included), a one-time
// decode for packed-adjacency views.
func heapCSR(v snaple.GraphView) (*graph.Digraph, error) {
	if g, ok := graph.AsCSR(v); ok {
		return g, nil
	}
	if p, ok := v.(*graph.Packed); ok {
		return p.Decode()
	}
	return nil, fmt.Errorf("cannot materialise %s as a CSR", v)
}

func run(a serveArgs) error {
	if a.in == "" {
		return fmt.Errorf("need -in FILE (tip: pack big edge lists once with `snaple pack`)")
	}
	start := time.Now()
	// Frozen servers take the zero-copy path when the file allows it (v2
	// snapshot, mmap-capable platform); -mutable pins the heap path because
	// a live graph's base must be ordinarily-allocated memory.
	g, info, err := snaple.OpenGraphFile(a.in, snaple.GraphReadOptions{
		Symmetrize: a.symmetric, NoMap: a.mutable, Verify: a.verify,
	})
	if err != nil {
		return err
	}
	how := "parsed text"
	if info.Version > 0 {
		how = "heap"
		if info.Mapped {
			how = "mmap"
		}
		how = fmt.Sprintf("snapshot v%d, %s", info.Version, how)
		if info.Packed {
			how += ", packed adjacency"
		}
	}
	fmt.Fprintf(os.Stderr, "loaded %s in %.2fs (%s): %s\n", a.in, time.Since(start).Seconds(), how, g)

	spec, err := core.ScoreByName(a.score, a.alpha)
	if err != nil {
		return err
	}
	pol, err := core.PolicyByName(a.policy)
	if err != nil {
		return err
	}
	var be engine.Backend
	if a.manifest != "" {
		// Resident fleet: the workers already hold the packed partitions, so
		// bring-up is a fingerprint handshake per connection and the fleet
		// stays attached for the server's lifetime. Several serve front-ends
		// can share the same standing fleet.
		if a.engine != "dist" && a.engine != "" && a.engine != "local" {
			return fmt.Errorf("-manifest requires -engine dist (got %q)", a.engine)
		}
		mf, err := os.Open(a.manifest)
		if err != nil {
			return err
		}
		man, err := graph.ReadManifest(mf)
		mf.Close()
		if err != nil {
			return err
		}
		var fleetAddrs []string
		if a.addrs != "" {
			fleetAddrs = strings.Split(a.addrs, ",")
		}
		csr, err := heapCSR(g)
		if err != nil {
			return err
		}
		fleet, err := engine.OpenFleet(csr, engine.FleetOptions{
			Addrs: fleetAddrs, Manifest: man, Replicas: a.replicas,
			StepTimeout: a.stepTimeout, DialAttempts: a.dialAttempts,
		})
		if err != nil {
			return err
		}
		defer fleet.Close()
		fi := fleet.FleetInfo()
		fmt.Fprintf(os.Stderr, "attached resident fleet: %d shards x %d replicas (fingerprint %016x)\n",
			fi.Shards, fi.Replicas, fi.Fingerprint)
		be = fleet
	} else if a.engine == "dist" {
		// The dist backend gets its deployment described directly: a resident
		// worker fleet (or spawned one), optionally replicated so worker
		// deaths between and during batches fail over instead of failing
		// queries (see /statsz fleet counters and /healthz degradation).
		d := engine.Dist{
			Spawn: a.spawn, WorkerBin: a.workerBin, InProc: a.workers,
			Seed: a.seed, Replicas: a.replicas, StepTimeout: a.stepTimeout,
			DialAttempts: a.dialAttempts,
		}
		if a.addrs != "" {
			d.Addrs = strings.Split(a.addrs, ",")
		}
		be = d
	} else {
		be, err = engine.New(a.engine, a.workers, a.seed)
		if err != nil {
			return err
		}
	}
	if a.mutable {
		// Live graphs mutate over a compact CSR base: decode a packed view
		// once up front rather than erroring deeper in serve.New.
		csr, err := heapCSR(g)
		if err != nil {
			return err
		}
		g = csr
	}
	srv, err := serve.New(serve.Options{
		Graph:   g,
		Backend: be,
		Config: core.Config{
			Score: spec, K: a.kmax, KLocal: a.klocal, ThrGamma: a.thr,
			Policy: pol, Paths: a.paths, Seed: a.seed,
		},
		BatchWindow: a.batchWindow,
		BatchMax:    a.batchMax,
		CacheSize:   a.cacheSize,
		RunTimeout:  a.runTimeout,
		Mutable:     a.mutable,
		CompactAt:   a.compactAt,
		CompactPath: a.compactOut,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	l, err := net.Listen("tcp", a.listen)
	if err != nil {
		return err
	}
	// The machine-readable handshake (same shape as snaple-worker's
	// "listening <addr>"): scripts wait for this line before curling.
	fmt.Printf("serving %s\n", l.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
