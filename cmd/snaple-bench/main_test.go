package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snaple/internal/eval"
)

func TestMatches(t *testing.T) {
	tests := []struct {
		requested, id string
		want          bool
	}{
		{"all", "table5", true},
		{"all", "perf", false}, // side-effect experiment: explicit only
		{"perf", "perf", true},
		{"table5", "table5", true},
		{"fig11", "fig11+table6", true},
		{"table6", "fig11+table6", true},
		{"fig5", "table5", false},
		{"nope", "table5", false},
	}
	for _, tt := range tests {
		e := experiment{id: tt.id, explicitOnly: tt.id == "perf"}
		if got := matches(tt.requested, e); got != tt.want {
			t.Errorf("matches(%q,%q) = %v, want %v", tt.requested, tt.id, got, tt.want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run("bogus", eval.Options{Scale: 0.1, Seed: 1}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	if err := run("table5", eval.Options{Scale: 0.1, Seed: 1}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "BASELINE") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestExperimentIDsCoverPaper(t *testing.T) {
	// Every table/figure of the evaluation must have a runner.
	want := []string{"table5", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11+table6", "exhaustion", "supervised", "perf", "scale", "ablations"}
	got := experiments()
	if len(got) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.id != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.id, want[i])
		}
	}
}

func TestRunPerfWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	old := perfOutPath
	perfOutPath = filepath.Join(t.TempDir(), "BENCH.json")
	defer func() { perfOutPath = old }()
	var sb strings.Builder
	if err := run("perf", eval.Options{Scale: 0.05, Seed: 1}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(perfOutPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep eval.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, data)
	}
	wantRows := append(append([]string{}, perfEngines...), "ingest-text", "ingest-sgr", "ingest-sgr-map", "query-latency", "wire-codec", "mutate", "compact")
	if rep.Edges <= 0 || len(rep.Rows) != len(wantRows) {
		t.Fatalf("implausible report: %+v", rep)
	}
	for i, row := range rep.Rows {
		if row.Engine != wantRows[i] || row.WallSeconds <= 0 {
			t.Errorf("implausible row: %+v", row)
		}
		switch row.Engine {
		// Scoped queries deliberately do not touch every edge, so the query
		// row reports latency percentiles instead of edge throughput.
		case "query-latency":
			if row.EdgesPerSec != 0 || row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
				t.Errorf("implausible query row: %+v", row)
			}
		// The codec row measures frame throughput, not graph traversal.
		case "wire-codec":
			if row.EdgesPerSec != 0 || row.MBPerSec <= 0 || row.CrossBytes <= 0 {
				t.Errorf("implausible codec row: %+v", row)
			}
		default:
			if row.EdgesPerSec <= 0 {
				t.Errorf("implausible row: %+v", row)
			}
		}
	}
	// The dist row's traffic is measured on real sockets; it cannot be zero.
	if dist, ok := rep.Row("dist"); !ok || dist.CrossBytes == 0 || dist.CrossMsgs == 0 {
		t.Errorf("dist row missing measured traffic: %+v", rep.Rows)
	}
	// The ingest rows measure load throughput and peak live memory.
	for _, engine := range []string{"ingest-text", "ingest-sgr"} {
		row, ok := rep.Row(engine)
		if !ok || row.MBPerSec <= 0 || row.PeakBytes <= 0 {
			t.Errorf("%s row missing load metrics: %+v", engine, row)
		}
	}
	if !strings.Contains(sb.String(), "edges/s") {
		t.Errorf("missing summary line:\n%s", sb.String())
	}
}
