package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"encoding/json"

	"snaple"
	"snaple/internal/eval"
	"snaple/internal/gen"
	"snaple/internal/randx"
)

// The scale experiment (`snaple-bench -exp scale`) walks one generated
// power-law graph through the whole big-graph lifecycle — streamed ingest,
// snapshot pack (plain and packed adjacency), the three load paths (heap
// decode, zero-copy mmap, packed view) and the scoped serving query on the
// mapped and packed representations — and records every stage as a tracked
// BENCH row, so cmd/benchcheck can gate each stage independently.
//
// -scale-edges sets the raw edge-draw count. The default is 10^8, which a
// single large dev box handles comfortably; the paper-scale figure is 10^9
// (see README "Billion edges on one box" — same command, one flag), and
// CI's scale-smoke job runs 5×10^6 so the gate exercises every stage in
// seconds. Vertices are edges/10, giving a mean degree near the paper's
// datasets. Unlike the perf experiment's allocator-only metrics, every row
// carries rss_bytes — the OS-level peak resident set, which is what sees
// mmap'd pages and is monotone across the stages (stage order is fixed, so
// per-row baselines stay comparable).
var (
	scaleEdges   int64 = 100_000_000
	scaleOutPath       = "BENCH_scale.json"
)

func runScale(o eval.Options, w io.Writer) error {
	edges := scaleEdges
	if edges < 100 {
		return fmt.Errorf("scale: -scale-edges %d too small to measure", edges)
	}
	n := int(edges / 10)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s, err := gen.NewPowerLawStream(n, edges, 2, o.Seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "snaple-bench-scale-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Stage 1: streamed ingest. The generator yields edges straight into
	// the two-pass CSR builder — no edge list is ever materialised, which
	// is the property that lets edge counts climb to 10^9 on one box.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	g, err := s.Build(workers)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	rep := eval.PerfReport{
		Dataset: "powerlaw-stream", Scale: float64(edges), Seed: o.Seed,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
	}
	rep.Rows = append(rep.Rows, eval.PerfRow{
		Engine: "scale-ingest", Workers: workers, WallSeconds: wall,
		EdgesPerSec:  float64(edges) / wall,
		AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
		AllocObjects: int64(m1.Mallocs - m0.Mallocs),
		RSSBytes:     eval.PeakRSSBytes(),
	})
	fmt.Fprintf(w, "scale-ingest: %d draws -> %s in %.1fs, %.0f edges/s, rss %.0f MiB\n",
		edges, g, wall, float64(edges)/wall, float64(eval.PeakRSSBytes())/(1<<20))

	// Stage 2: pack both snapshot encodings.
	pack := func(name, path string, packed bool) error {
		start := time.Now()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := snaple.WriteSnapshotOpts(f, g, snaple.SnapshotOptions{Packed: packed}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, eval.PerfRow{
			Engine: name, Workers: 1, WallSeconds: wall,
			EdgesPerSec: float64(g.NumEdges()) / wall,
			MBPerSec:    float64(fi.Size()) / wall / 1e6,
			RSSBytes:    eval.PeakRSSBytes(),
		})
		fmt.Fprintf(w, "%s: %d bytes (%.1f MiB) in %.1fs, %.0f edges/s\n",
			name, fi.Size(), float64(fi.Size())/(1<<20), wall, float64(g.NumEdges())/wall)
		return nil
	}
	plainPath := filepath.Join(dir, "scale.sgr")
	packedPath := filepath.Join(dir, "scale-packed.sgr")
	if err := pack("scale-pack", plainPath, false); err != nil {
		return err
	}
	if err := pack("scale-pack-packed", packedPath, true); err != nil {
		return err
	}

	// Stage 3: the three load paths. Wall time is the best of a few runs;
	// the allocator columns come from one instrumented run — for the mapped
	// and packed paths they pin the O(1)-allocation claim (no per-edge
	// work), so throughput columns are only recorded where the load really
	// is O(E) (the heap decode).
	load := func(name, path string, opts snaple.GraphReadOptions, throughput bool) (snaple.GraphView, error) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		first := time.Now()
		v, info, err := snaple.OpenGraphFile(path, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		best := time.Since(first)
		runtime.ReadMemStats(&m1)
		const minIters = 3
		for i := 1; i < minIters; i++ {
			start := time.Now()
			if _, _, err := snaple.OpenGraphFile(path, opts); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			best = min(best, time.Since(start))
		}
		wall := best.Seconds()
		row := eval.PerfRow{
			Engine: name, Workers: 1, WallSeconds: wall,
			AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
			AllocObjects: int64(m1.Mallocs - m0.Mallocs),
			RSSBytes:     eval.PeakRSSBytes(),
		}
		if throughput {
			row.EdgesPerSec = float64(v.NumEdges()) / wall
			row.MBPerSec = float64(info.Bytes) / wall / 1e6
		}
		rep.Rows = append(rep.Rows, row)
		how := "heap"
		if info.Mapped {
			how = "mmap"
		}
		fmt.Fprintf(w, "%s: %.3fs (%s), %.1f MiB / %d objects allocated\n",
			name, wall, how, float64(row.AllocBytes)/(1<<20), row.AllocObjects)
		return v, nil
	}
	vHeap, err := load("scale-load-heap", plainPath, snaple.GraphReadOptions{NoMap: true}, true)
	if err != nil {
		return err
	}
	vMap, err := load("scale-load-mmap", plainPath, snaple.GraphReadOptions{}, false)
	if err != nil {
		return err
	}
	vPacked, err := load("scale-load-packed", packedPath, snaple.GraphReadOptions{}, false)
	if err != nil {
		return err
	}

	// The three representations must be interchangeable, not just fast:
	// one scoped prediction batch has to come out bit-identical before any
	// of their numbers mean anything.
	sources := make([]snaple.VertexID, 64)
	for i := range sources {
		sources[i] = snaple.VertexID(randx.Uint64n(uint64(g.NumVertices()), o.Seed, uint64(i)))
	}
	qopts := snaple.Options{
		Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: o.Seed,
		Engine: "local", Workers: workers, Sources: sources,
	}
	want, _, err := snaple.PredictStats(vHeap, qopts)
	if err != nil {
		return err
	}
	for name, v := range map[string]snaple.GraphView{"mmap": vMap, "packed": vPacked} {
		got, _, err := snaple.PredictStats(v, qopts)
		if err != nil {
			return fmt.Errorf("scale: %s query: %w", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("scale: %s view predictions diverge from the heap CSR's", name)
		}
	}
	vHeap = nil // release the redundant heap copy before the query stages
	_ = vHeap

	// Stage 4: the serving query shape on the two representations a server
	// would actually hold at this scale.
	for _, q := range []struct {
		name string
		v    snaple.GraphView
	}{{"scale-query", vMap}, {"scale-query-packed", vPacked}} {
		row, err := queryPerf(q.name, q.v, workers, o.Seed, w)
		if err != nil {
			return fmt.Errorf("%s: %w", q.name, err)
		}
		row.RSSBytes = eval.PeakRSSBytes()
		rep.Rows = append(rep.Rows, row)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(scaleOutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", scaleOutPath)
	return nil
}
