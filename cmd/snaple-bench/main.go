// Command snaple-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	snaple-bench -exp table5
//	snaple-bench -exp all -scale 0.5 -v
//
// Experiments: table5, fig5, fig6, fig7, fig8, fig9, fig10, fig11, table6,
// exhaustion, perf, all.
//
// The perf experiment additionally writes a machine-readable report
// (default BENCH.json, see -perf-out) with one row per perf-tracked backend
// — the local hot path and the dist TCP engine — covering wall seconds,
// edges/sec, allocation counts and (for dist) measured wire traffic, so the
// performance trajectory can be compared across commits; CI's
// benchmark-regression gate diffs it against the committed
// BENCH_baseline.json with cmd/benchcheck. Because of that file side effect
// it only runs when requested explicitly — "all" skips it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"snaple"
	"snaple/internal/eval"
)

// perfOutPath is where the perf experiment writes its JSON report
// (overridden by -perf-out).
var perfOutPath = "BENCH.json"

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table5|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table6|exhaustion|ablations|perf|all)")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed    = flag.Uint64("seed", 42, "run seed")
		engine  = flag.String("engine", "sim", "SNAPLE execution backend: "+strings.Join(snaple.EngineNames(), "|")+" (non-sim backends zero the simulated cost columns)")
		workers = flag.Int("workers", 0, "worker goroutines per backend run (0 = GOMAXPROCS)")
		perfOut = flag.String("perf-out", perfOutPath, "output path for the perf experiment's machine-readable report")
		verbose = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()
	perfOutPath = *perfOut

	opts := eval.Options{Scale: *scale, Seed: *seed, Engine: *engine, Workers: *workers}
	if *verbose {
		opts.Log = os.Stderr
	}
	if err := run(*exp, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-bench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id  string
	run func(eval.Options, io.Writer) error
	// explicitOnly experiments have side effects (e.g. writing files) and
	// run only when requested by id — never as part of "all".
	explicitOnly bool
}

func experiments() []experiment {
	return []experiment{
		{id: "table5", run: func(o eval.Options, w io.Writer) error {
			t, err := eval.RunTable5(o)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{id: "fig5", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure5(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig6", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure6(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig7", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure7(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig8", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure8(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig9", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure9(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig10", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure10(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig11+table6", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure11(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			fmt.Fprintln(w)
			t, err := eval.RunTable6(o, f)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{id: "exhaustion", run: func(o eval.Options, w io.Writer) error {
			e, err := eval.RunExhaustion(o)
			if err != nil {
				return err
			}
			e.Fprint(w)
			return nil
		}},
		{id: "supervised", run: func(o eval.Options, w io.Writer) error {
			s, err := eval.RunSupervised(o)
			if err != nil {
				return err
			}
			s.Fprint(w)
			return nil
		}},
		{id: "perf", run: runPerf, explicitOnly: true},
		{id: "ablations", run: func(o eval.Options, w io.Writer) error {
			a, err := eval.RunAlphaSweep(o)
			if err != nil {
				return err
			}
			a.Fprint(w)
			fmt.Fprintln(w)
			p, err := eval.RunPartitionAblation(o)
			if err != nil {
				return err
			}
			p.Fprint(w)
			fmt.Fprintln(w)
			k, err := eval.RunKHopAblation(o)
			if err != nil {
				return err
			}
			k.Fprint(w)
			return nil
		}},
	}
}

// perfEngines lists the perf-tracked backends: the shared-memory hot path
// and the multi-process TCP engine (served in-process on loopback here, so
// the bench needs no external worker fleet — the wire costs are still real).
var perfEngines = []string{"local", "dist"}

// runPerf benchmarks the perf-tracked backends on the livejournal analog at
// the run scale and writes the machine-readable report to perfOutPath.
func runPerf(o eval.Options, w io.Writer) error {
	const dataset = "livejournal"
	g, err := snaple.Dataset(dataset, o.Scale, o.Seed)
	if err != nil {
		return err
	}
	rep := eval.PerfReport{
		Dataset: dataset, Scale: o.Scale, Seed: o.Seed,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
	}
	for _, engine := range perfEngines {
		opts := snaple.Options{
			Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: o.Seed,
			Engine: engine, Workers: o.Workers,
		}
		_, st, err := snaple.PredictStats(g, opts)
		if err != nil {
			return fmt.Errorf("%s backend: %w", engine, err)
		}
		rep.Rows = append(rep.Rows, eval.PerfRow{
			Engine: st.Engine, Workers: st.Workers,
			WallSeconds: st.WallSeconds, EdgesPerSec: st.EdgesPerSec,
			AllocBytes: st.AllocBytes, AllocObjects: st.AllocObjects,
			CrossBytes: st.CrossBytes, CrossMsgs: st.CrossMsgs,
		})
		fmt.Fprintf(w, "%s backend on %s (scale %.2f): %.2fs, %.0f edges/s, %.1f MiB / %d objects allocated",
			engine, dataset, o.Scale, st.WallSeconds, st.EdgesPerSec,
			float64(st.AllocBytes)/(1<<20), st.AllocObjects)
		if st.CrossBytes > 0 {
			fmt.Fprintf(w, ", %.1f MiB / %d msgs on the wire", float64(st.CrossBytes)/(1<<20), st.CrossMsgs)
		}
		fmt.Fprintln(w)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(perfOutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", perfOutPath)
	return nil
}

func run(id string, opts eval.Options, w io.Writer) error {
	matched := false
	for _, e := range experiments() {
		if !matches(id, e) {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Fprintf(w, "==> %s (scale=%.2f seed=%d)\n", e.id, opts.Scale, opts.Seed)
		if err := e.run(opts, w); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(w, "<== %s done in %.1fs\n\n", e.id, time.Since(start).Seconds())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func matches(requested string, e experiment) bool {
	if e.explicitOnly && requested != e.id {
		return false // side effects (file writes): never part of "all"
	}
	if requested == "all" || requested == e.id {
		return true
	}
	// fig11 and table6 share a runner.
	return e.id == "fig11+table6" && (requested == "fig11" || requested == "table6")
}
