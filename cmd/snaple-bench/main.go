// Command snaple-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	snaple-bench -exp table5
//	snaple-bench -exp all -scale 0.5 -v
//
// Experiments: table5, fig5, fig6, fig7, fig8, fig9, fig10, fig11, table6,
// exhaustion, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"snaple/internal/eval"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table5|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table6|exhaustion|ablations|all)")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed    = flag.Uint64("seed", 42, "run seed")
		engine  = flag.String("engine", "sim", "SNAPLE execution backend: sim|local|serial (non-sim backends zero the simulated cost columns)")
		workers = flag.Int("workers", 0, "worker goroutines per backend run (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	opts := eval.Options{Scale: *scale, Seed: *seed, Engine: *engine, Workers: *workers}
	if *verbose {
		opts.Log = os.Stderr
	}
	if err := run(*exp, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-bench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id  string
	run func(eval.Options, io.Writer) error
}

func experiments() []experiment {
	return []experiment{
		{"table5", func(o eval.Options, w io.Writer) error {
			t, err := eval.RunTable5(o)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"fig5", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure5(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig6", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure6(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig7", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure7(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig8", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure8(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig9", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure9(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig10", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure10(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{"fig11+table6", func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure11(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			fmt.Fprintln(w)
			t, err := eval.RunTable6(o, f)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"exhaustion", func(o eval.Options, w io.Writer) error {
			e, err := eval.RunExhaustion(o)
			if err != nil {
				return err
			}
			e.Fprint(w)
			return nil
		}},
		{"supervised", func(o eval.Options, w io.Writer) error {
			s, err := eval.RunSupervised(o)
			if err != nil {
				return err
			}
			s.Fprint(w)
			return nil
		}},
		{"ablations", func(o eval.Options, w io.Writer) error {
			a, err := eval.RunAlphaSweep(o)
			if err != nil {
				return err
			}
			a.Fprint(w)
			fmt.Fprintln(w)
			p, err := eval.RunPartitionAblation(o)
			if err != nil {
				return err
			}
			p.Fprint(w)
			fmt.Fprintln(w)
			k, err := eval.RunKHopAblation(o)
			if err != nil {
				return err
			}
			k.Fprint(w)
			return nil
		}},
	}
}

func run(id string, opts eval.Options, w io.Writer) error {
	matched := false
	for _, e := range experiments() {
		if !matches(id, e.id) {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Fprintf(w, "==> %s (scale=%.2f seed=%d)\n", e.id, opts.Scale, opts.Seed)
		if err := e.run(opts, w); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(w, "<== %s done in %.1fs\n\n", e.id, time.Since(start).Seconds())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func matches(requested, id string) bool {
	if requested == "all" {
		return true
	}
	if requested == id {
		return true
	}
	// fig11 and table6 share a runner.
	return id == "fig11+table6" && (requested == "fig11" || requested == "table6")
}
