// Command snaple-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	snaple-bench -exp table5
//	snaple-bench -exp all -scale 0.5 -v
//
// Experiments: table5, fig5, fig6, fig7, fig8, fig9, fig10, fig11, table6,
// exhaustion, perf, scale, all.
//
// The perf experiment additionally writes a machine-readable report
// (default BENCH.json, see -perf-out) with one row per perf-tracked backend
// — the local hot path and the dist TCP engine — covering wall seconds,
// edges/sec, allocation counts and (for dist) measured wire traffic, plus
// rows for the two graph-ingestion paths, the serving query shape, the wire
// codec, and the live-graph mutation path (Live.Apply throughput and the
// compaction fold), so the performance trajectory can be compared across
// commits; CI's benchmark-regression gate diffs it against the committed
// BENCH_baseline.json with cmd/benchcheck. Because of that file side effect
// it only runs when requested explicitly — "all" skips it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"snaple"
	"snaple/internal/core"
	distengine "snaple/internal/engine"
	"snaple/internal/eval"
	"snaple/internal/graph"
	"snaple/internal/randx"
	"snaple/internal/wire"
)

// perfOutPath is where the perf experiment writes its JSON report
// (overridden by -perf-out).
var perfOutPath = "BENCH.json"

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table5|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table6|exhaustion|ablations|perf|scale|all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed     = flag.Uint64("seed", 42, "run seed")
		engine   = flag.String("engine", "sim", "SNAPLE execution backend: "+strings.Join(snaple.EngineNames(), "|")+" (non-sim backends zero the simulated cost columns)")
		workers  = flag.Int("workers", 0, "worker goroutines per backend run (0 = GOMAXPROCS)")
		perfOut  = flag.String("perf-out", perfOutPath, "output path for the perf experiment's machine-readable report")
		scaleE   = flag.Int64("scale-edges", scaleEdges, "edge draws for the scale experiment (10^9 reproduces the title figure; CI smokes 5x10^6)")
		scaleOut = flag.String("scale-out", scaleOutPath, "output path for the scale experiment's machine-readable report")
		verbose  = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()
	perfOutPath = *perfOut
	scaleEdges = *scaleE
	scaleOutPath = *scaleOut

	opts := eval.Options{Scale: *scale, Seed: *seed, Engine: *engine, Workers: *workers}
	if *verbose {
		opts.Log = os.Stderr
	}
	if err := run(*exp, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-bench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id  string
	run func(eval.Options, io.Writer) error
	// explicitOnly experiments have side effects (e.g. writing files) and
	// run only when requested by id — never as part of "all".
	explicitOnly bool
}

func experiments() []experiment {
	return []experiment{
		{id: "table5", run: func(o eval.Options, w io.Writer) error {
			t, err := eval.RunTable5(o)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{id: "fig5", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure5(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig6", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure6(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig7", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure7(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig8", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure8(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig9", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure9(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig10", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure10(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			return nil
		}},
		{id: "fig11+table6", run: func(o eval.Options, w io.Writer) error {
			f, err := eval.RunFigure11(o)
			if err != nil {
				return err
			}
			f.Fprint(w)
			fmt.Fprintln(w)
			t, err := eval.RunTable6(o, f)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{id: "exhaustion", run: func(o eval.Options, w io.Writer) error {
			e, err := eval.RunExhaustion(o)
			if err != nil {
				return err
			}
			e.Fprint(w)
			return nil
		}},
		{id: "supervised", run: func(o eval.Options, w io.Writer) error {
			s, err := eval.RunSupervised(o)
			if err != nil {
				return err
			}
			s.Fprint(w)
			return nil
		}},
		{id: "perf", run: runPerf, explicitOnly: true},
		{id: "scale", run: runScale, explicitOnly: true},
		{id: "ablations", run: func(o eval.Options, w io.Writer) error {
			a, err := eval.RunAlphaSweep(o)
			if err != nil {
				return err
			}
			a.Fprint(w)
			fmt.Fprintln(w)
			p, err := eval.RunPartitionAblation(o)
			if err != nil {
				return err
			}
			p.Fprint(w)
			fmt.Fprintln(w)
			k, err := eval.RunKHopAblation(o)
			if err != nil {
				return err
			}
			k.Fprint(w)
			return nil
		}},
	}
}

// perfEngines lists the perf-tracked backends: the shared-memory hot path
// and the multi-process TCP engine (served in-process on loopback here, so
// the bench needs no external worker fleet — the wire costs are still real).
var perfEngines = []string{"local", "dist"}

// runPerf benchmarks the perf-tracked backends on the livejournal analog at
// the run scale, measures both graph-ingestion paths (text parse and binary
// snapshot load) on the same graph, and writes the machine-readable report
// to perfOutPath.
func runPerf(o eval.Options, w io.Writer) error {
	const dataset = "livejournal"
	g, err := snaple.Dataset(dataset, o.Scale, o.Seed)
	if err != nil {
		return err
	}
	rep := eval.PerfReport{
		Dataset: dataset, Scale: o.Scale, Seed: o.Seed,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
	}
	for _, engineName := range perfEngines {
		opts := snaple.Options{
			Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: o.Seed,
			Engine: engineName, Workers: o.Workers,
		}
		_, st, err := distPerfStats(g, opts)
		if err != nil {
			return fmt.Errorf("%s backend: %w", engineName, err)
		}
		rep.Rows = append(rep.Rows, eval.PerfRow{
			Engine: st.Engine, Workers: st.Workers,
			WallSeconds: st.WallSeconds, EdgesPerSec: st.EdgesPerSec,
			AllocBytes: st.AllocBytes, AllocObjects: st.AllocObjects,
			CrossBytes: st.CrossBytes, CrossMsgs: st.CrossMsgs,
		})
		fmt.Fprintf(w, "%s backend on %s (scale %.2f): %.2fs, %.0f edges/s, %.1f MiB / %d objects allocated",
			engineName, dataset, o.Scale, st.WallSeconds, st.EdgesPerSec,
			float64(st.AllocBytes)/(1<<20), st.AllocObjects)
		if st.CrossBytes > 0 {
			fmt.Fprintf(w, ", %.1f MiB / %d msgs on the wire", float64(st.CrossBytes)/(1<<20), st.CrossMsgs)
		}
		fmt.Fprintln(w)
	}
	ingestRows, err := ingestPerf(g, o.Workers, w)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	rep.Rows = append(rep.Rows, ingestRows...)
	queryRow, err := queryPerf("query-latency", g, o.Workers, o.Seed, w)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	rep.Rows = append(rep.Rows, queryRow)
	codecRow, err := codecPerf(w)
	if err != nil {
		return fmt.Errorf("wire-codec: %w", err)
	}
	rep.Rows = append(rep.Rows, codecRow)
	mutRows, err := mutatePerf(g, o.Seed, w)
	if err != nil {
		return fmt.Errorf("mutate: %w", err)
	}
	rep.Rows = append(rep.Rows, mutRows...)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(perfOutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", perfOutPath)
	return nil
}

// distPerfStats runs one perf-tracked backend. The dist backend is
// constructed directly so the bench measures it with wire compression on —
// the configuration whose cross_bytes the baseline pins (the cross-rack
// shape, matching the CLI's -wire-compress); every other engine goes through
// the public API unchanged.
func distPerfStats(g *snaple.Graph, opts snaple.Options) (snaple.Predictions, snaple.EngineStats, error) {
	if opts.Engine != "dist" {
		return snaple.PredictStats(g, opts)
	}
	spec, err := core.ScoreByName(opts.Score, 0.9)
	if err != nil {
		return nil, snaple.EngineStats{}, err
	}
	pol, err := core.PolicyByName(opts.Policy)
	if err != nil {
		return nil, snaple.EngineStats{}, err
	}
	cfg := core.Config{
		Score: spec, Policy: pol,
		KLocal: opts.KLocal, ThrGamma: opts.ThrGamma, Seed: opts.Seed,
	}
	d := distengine.Dist{InProc: opts.Workers, Seed: opts.Seed, Compress: true}
	return d.Predict(g, cfg)
}

// ingestPerf measures the two graph-loading paths on the perf graph: the
// streaming parallel text parser and the binary CSR snapshot. The graph is
// written to a temp dir in both formats, loaded back through the
// auto-detecting reader, and each load reports wall time, edges/s, input
// MB/s, allocation deltas and the sampled peak live heap — the metric that
// would catch an O(E) loading intermediate creeping back in.
func ingestPerf(g *snaple.Graph, workers int, w io.Writer) ([]eval.PerfRow, error) {
	dir, err := os.MkdirTemp("", "snaple-bench-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	write := func(name string, write func(io.Writer, *snaple.Graph) error) (string, int64, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", 0, err
		}
		if err := write(f, g); err != nil {
			f.Close()
			return "", 0, err
		}
		if err := f.Close(); err != nil {
			return "", 0, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return "", 0, err
		}
		return path, fi.Size(), nil
	}
	textPath, textSize, err := write("g.txt", snaple.WriteEdgeList)
	if err != nil {
		return nil, err
	}
	sgrPath, sgrSize, err := write("g.sgr", snaple.WriteSnapshot)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []eval.PerfRow
	for _, tc := range []struct {
		engine string
		path   string
		size   int64
		opts   snaple.GraphReadOptions
	}{
		// PreserveIDs matches the pack workflow for already-dense files and
		// keeps the text row's memory profile map-free and deterministic.
		// The sgr row pins the heap decode path (NoMap) so its alloc columns
		// keep meaning per-edge copy cost; the sgr-map row is the zero-copy
		// default, whose alloc columns pin the O(1)-allocation claim instead.
		{"ingest-text", textPath, textSize, snaple.GraphReadOptions{PreserveIDs: true, Workers: workers}},
		{"ingest-sgr", sgrPath, sgrSize, snaple.GraphReadOptions{NoMap: true}},
		{"ingest-sgr-map", sgrPath, sgrSize, snaple.GraphReadOptions{}},
	} {
		row, got, err := measureIngest(tc.engine, tc.path, tc.size, workers, tc.opts)
		if err != nil {
			return nil, err
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return nil, fmt.Errorf("%s loaded %s, want %s", tc.engine, got, g)
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%s: %.0f edges/s, %.1f MB/s, peak %.1f MiB live, %.1f MiB / %d objects allocated\n",
			tc.engine, row.EdgesPerSec, row.MBPerSec,
			float64(row.PeakBytes)/(1<<20), float64(row.AllocBytes)/(1<<20), row.AllocObjects)
	}
	return rows, nil
}

// measureIngest profiles one graph-loading path twice over: a single
// instrumented run for the memory metrics (allocation deltas and the
// live-heap peak, sampled every millisecond and floored by the post-load
// pre-GC heap, which covers loads faster than the sampler), then repeated
// loads until enough wall time accumulates for a stable best-run
// throughput — a single load of a small bench graph is far too short to
// gate on.
func measureIngest(engine, path string, size int64, workers int, opts snaple.GraphReadOptions) (eval.PerfRow, *snaple.Graph, error) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	peak := m0.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				peak = max(peak, m.HeapAlloc)
			}
		}
	}()
	g, err := snaple.ReadGraphFile(path, opts)
	close(stop)
	<-done
	if err != nil {
		return eval.PerfRow{}, nil, err
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	peak = max(peak, m1.HeapAlloc)

	const (
		minIters = 3
		minTotal = 100 * time.Millisecond
	)
	best := time.Duration(1<<62 - 1)
	var total time.Duration
	for iters := 0; iters < minIters || total < minTotal; iters++ {
		start := time.Now()
		if _, err := snaple.ReadGraphFile(path, opts); err != nil {
			return eval.PerfRow{}, nil, err
		}
		d := time.Since(start)
		best = min(best, d)
		total += d
	}
	wall := best.Seconds()
	return eval.PerfRow{
		Engine: engine, Workers: workers, WallSeconds: wall,
		EdgesPerSec:  float64(g.NumEdges()) / wall,
		MBPerSec:     float64(size) / wall / 1e6,
		AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
		AllocObjects: int64(m1.Mallocs - m0.Mallocs),
		PeakBytes:    int64(peak - m0.HeapAlloc),
	}, g, nil
}

// queryPerf measures the serving shape on a graph view: repeated
// query-scoped predictions of 200 sources each (a "top-k for these users"
// request, the workload cmd/snaple-serve answers) on the local backend.
// Per-query latencies are collected over several rounds and the best
// round's percentiles reported — the tail of the best round is what the
// code is capable of; worse rounds on a shared runner are scheduler noise,
// which the regression gate must not alert on. The view may be any storage
// representation (heap CSR, mmap'd columns, packed rows): the row name
// keys the gate, so each representation gets its own baseline.
func queryPerf(name string, g snaple.GraphView, workers int, seed uint64, w io.Writer) (eval.PerfRow, error) {
	const (
		sourcesPerQuery = 200
		queriesPerRound = 40
		rounds          = 3
	)
	n := uint64(g.NumVertices())
	opts := snaple.Options{
		Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: seed,
		Engine: "local", Workers: workers,
	}
	best := eval.PerfRow{Engine: name}
	for round := 0; round < rounds; round++ {
		lats := make([]float64, 0, queriesPerRound)
		var wall float64
		var alloc, objects int64
		for q := 0; q < queriesPerRound; q++ {
			sources := make([]snaple.VertexID, sourcesPerQuery)
			for i := range sources {
				// Deterministic per (seed, query, slot): every run measures
				// the same query stream, so rows are comparable across
				// commits.
				sources[i] = snaple.VertexID(randx.Uint64n(n, seed, uint64(q), uint64(i)))
			}
			opts.Sources = sources
			start := time.Now()
			_, st, err := snaple.PredictStats(g, opts)
			if err != nil {
				return eval.PerfRow{}, err
			}
			d := time.Since(start).Seconds()
			lats = append(lats, d*1000)
			wall += d
			alloc += st.AllocBytes
			objects += st.AllocObjects
			best.Workers = st.Workers
		}
		sort.Float64s(lats)
		p50 := lats[len(lats)/2]
		p99 := lats[(len(lats)-1)*99/100]
		if best.P99Ms == 0 || p99 < best.P99Ms {
			best.P50Ms, best.P99Ms = p50, p99
			best.WallSeconds = wall / queriesPerRound
			best.AllocBytes = alloc / queriesPerRound
			best.AllocObjects = objects / queriesPerRound
		}
	}
	fmt.Fprintf(w, "%s: %d sources/query, p50 %.2fms, p99 %.2fms, %.1f MiB / %d objects allocated per query\n",
		name, sourcesPerQuery, best.P50Ms, best.P99Ms,
		float64(best.AllocBytes)/(1<<20), best.AllocObjects)
	return best, nil
}

// codecConn adapts a byte buffer to the wire transport interface, so the
// codec row measures pure encode+decode with no sockets in the way.
type codecConn struct{ bytes.Buffer }

func (*codecConn) Close() error { return nil }

// codecPerf measures the v3 wire codec in isolation on one superstep's
// representative traffic: a partials batch up and a state-refresh batch
// down. MBPerSec is frame bytes pushed through the codec per second (each
// byte encoded once and decoded once); the allocation columns are the
// steady-state per-iteration deltas — where a codec regression (a dropped
// scratch reuse, per-record boxing creeping back) shows first. CrossBytes
// pins the encoded size of the fixed message mix, which is deterministic per
// code version, so the regression gate's cross_bytes ceiling also guards
// frame-format bloat.
func codecPerf(w io.Writer) (eval.PerfRow, error) {
	const (
		nPartials = 2000
		nStates   = 600
		idSpace   = 50000
	)
	partials := make([]core.DistPartial, nPartials)
	for i := range partials {
		p := core.DistPartial{V: graph.VertexID(i)}
		for j := 0; j < 4; j++ {
			p.Nbrs = append(p.Nbrs, graph.VertexID((i*7+j*13)%idSpace))
			p.Sims = append(p.Sims, core.VertexSim{V: graph.VertexID((i*5 + j*17) % idSpace), Sim: 1 / float64(j+1)})
		}
		for j := 0; j < 6; j++ {
			p.Cands = append(p.Cands, core.PathCand{Z: graph.VertexID((i*11 + j) % idSpace), S: float64(i%17) * 0.125})
		}
		partials[i] = p
	}
	states := make([]wire.VertexState, nStates)
	for i := range states {
		s := wire.VertexState{V: graph.VertexID(i)}
		for j := 0; j < 6; j++ {
			s.Data.Nbrs = append(s.Data.Nbrs, graph.VertexID((i*3+j*7)%idSpace))
			s.Data.Sims = append(s.Data.Sims, core.VertexSim{V: graph.VertexID((i*13 + j) % idSpace), Sim: 1 / float64(j+2)})
		}
		for j := 0; j < 3; j++ {
			s.Data.TwoHop = append(s.Data.TwoHop, core.PathCand{Z: graph.VertexID((i*19 + j) % idSpace), S: float64(j) * 0.5})
			s.Data.Pred = append(s.Data.Pred, core.Prediction{Vertex: graph.VertexID((i*23 + j) % idSpace), Score: float64(i%29) * 0.25})
		}
		states[i] = s
	}
	msgs := []*wire.Msg{
		{Kind: wire.KindPartials, Step: core.DistCombine, Partials: partials},
		{Kind: wire.KindRefresh, Step: core.DistRelays, States: states, Final: true},
	}
	c := wire.NewConn(&codecConn{})
	iter := func() error {
		for _, m := range msgs {
			if err := c.Send(m); err != nil {
				return err
			}
		}
		for range msgs {
			if _, err := c.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm-up puts the connection's reusable buffers at steady-state size and
	// records the deterministic wire footprint of the mix.
	if err := iter(); err != nil {
		return eval.PerfRow{}, err
	}
	bytesPerIter := c.Counters().BytesOut

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := iter(); err != nil {
		return eval.PerfRow{}, err
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	const (
		minIters = 3
		minTotal = 100 * time.Millisecond
	)
	best := time.Duration(1<<62 - 1)
	var total time.Duration
	for iters := 0; iters < minIters || total < minTotal; iters++ {
		start := time.Now()
		if err := iter(); err != nil {
			return eval.PerfRow{}, err
		}
		d := time.Since(start)
		best = min(best, d)
		total += d
	}
	wall := best.Seconds()
	row := eval.PerfRow{
		Engine: "wire-codec", Workers: 1, WallSeconds: wall,
		MBPerSec:     float64(bytesPerIter) / wall / 1e6,
		AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
		AllocObjects: int64(m1.Mallocs - m0.Mallocs),
		CrossBytes:   bytesPerIter,
		CrossMsgs:    int64(len(msgs)),
	}
	fmt.Fprintf(w, "wire-codec: %.1f MB/s encode+decode, %.1f KiB frames/iter, %.1f KiB / %d objects allocated per iter\n",
		row.MBPerSec, float64(bytesPerIter)/(1<<10),
		float64(row.AllocBytes)/(1<<10), row.AllocObjects)
	return row, nil
}

// mutatePerf measures the live-graph serving path on the perf graph. The
// "mutate" row is Live.Apply throughput over a deterministic stream of edge
// batches — the POST /v1/edges shape: copy-on-write overlay updates with the
// reverse-adjacency mirror maintained, since mutable serving requires it —
// and the "compact" row is the fold of the accumulated overlay back into a
// fresh CSR (Delta.Materialize, the POST /v1/compact shape). EdgesPerSec is
// mutation edges applied (resp. edges folded) per second; the allocation
// columns are one full apply stream's (resp. one fold's) deltas — where a
// dropped row-sharing optimisation or an O(V) copy per batch would show
// first. Runs last: EnsureInEdges grows the base in place.
func mutatePerf(g *snaple.Graph, seed uint64, w io.Writer) ([]eval.PerfRow, error) {
	const (
		batches         = 32
		addsPerBatch    = 192
		removesPerBatch = 64
	)
	g.EnsureInEdges()
	n := uint64(g.NumVertices())
	adds := make([][]graph.Edge, batches)
	removes := make([][]graph.Edge, batches)
	mutEdges := 0
	for b := 0; b < batches; b++ {
		for i := 0; i < addsPerBatch; i++ {
			// Deterministic per (seed, batch, slot): every run applies the
			// same mutation stream, so rows are comparable across commits.
			adds[b] = append(adds[b], graph.Edge{
				Src: graph.VertexID(randx.Uint64n(n, seed, uint64(b), uint64(i), 0)),
				Dst: graph.VertexID(randx.Uint64n(n, seed, uint64(b), uint64(i), 1)),
			})
		}
		if b > 0 {
			// Removals target edges the previous batch added, so they always
			// hit a live overlay row rather than no-oping on absent edges.
			removes[b] = adds[b-1][:removesPerBatch]
		}
		mutEdges += len(adds[b]) + len(removes[b])
	}
	stream := func() (*snaple.Delta, error) {
		l := snaple.NewLive(g)
		for b := range adds {
			if _, err := l.Apply(adds[b], removes[b]); err != nil {
				return nil, err
			}
		}
		return l.View(), nil
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d, err := stream()
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&m1)

	const (
		minIters = 3
		minTotal = 100 * time.Millisecond
	)
	best := time.Duration(1<<62 - 1)
	var total time.Duration
	for iters := 0; iters < minIters || total < minTotal; iters++ {
		start := time.Now()
		if _, err := stream(); err != nil {
			return nil, err
		}
		dur := time.Since(start)
		best = min(best, dur)
		total += dur
	}
	wall := best.Seconds()
	mutateRow := eval.PerfRow{
		Engine: "mutate", Workers: 1, WallSeconds: wall,
		EdgesPerSec:  float64(mutEdges) / wall,
		AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
		AllocObjects: int64(m1.Mallocs - m0.Mallocs),
	}
	fmt.Fprintf(w, "mutate: %d batches / %d edge mutations per stream, %.0f edges/s applied, %.1f MiB / %d objects allocated\n",
		batches, mutEdges, mutateRow.EdgesPerSec,
		float64(mutateRow.AllocBytes)/(1<<20), mutateRow.AllocObjects)

	runtime.GC()
	runtime.ReadMemStats(&m0)
	csr := d.Materialize()
	runtime.ReadMemStats(&m1)
	if csr.NumEdges() != d.NumEdges() {
		return nil, fmt.Errorf("compaction folded %d edges, overlay has %d", csr.NumEdges(), d.NumEdges())
	}
	best = time.Duration(1<<62 - 1)
	total = 0
	for iters := 0; iters < minIters || total < minTotal; iters++ {
		start := time.Now()
		d.Materialize()
		dur := time.Since(start)
		best = min(best, dur)
		total += dur
	}
	wall = best.Seconds()
	compactRow := eval.PerfRow{
		Engine: "compact", Workers: 1, WallSeconds: wall,
		EdgesPerSec:  float64(csr.NumEdges()) / wall,
		AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
		AllocObjects: int64(m1.Mallocs - m0.Mallocs),
	}
	fmt.Fprintf(w, "compact: %d overlay rows folded into %d edges, %.0f edges/s, %.1f MiB / %d objects allocated\n",
		d.OverlayRows(), csr.NumEdges(), compactRow.EdgesPerSec,
		float64(compactRow.AllocBytes)/(1<<20), compactRow.AllocObjects)
	return []eval.PerfRow{mutateRow, compactRow}, nil
}

func run(id string, opts eval.Options, w io.Writer) error {
	matched := false
	for _, e := range experiments() {
		if !matches(id, e) {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Fprintf(w, "==> %s (scale=%.2f seed=%d)\n", e.id, opts.Scale, opts.Seed)
		if err := e.run(opts, w); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(w, "<== %s done in %.1fs\n\n", e.id, time.Since(start).Seconds())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func matches(requested string, e experiment) bool {
	if e.explicitOnly && requested != e.id {
		return false // side effects (file writes): never part of "all"
	}
	if requested == "all" || requested == e.id {
		return true
	}
	// fig11 and table6 share a runner.
	return e.id == "fig11+table6" && (requested == "fig11" || requested == "table6")
}
