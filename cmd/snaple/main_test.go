package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snaple"
)

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(file, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		args    runArgs
		wantErr bool
	}{
		{"from file", runArgs{in: file}, false},
		{"from dataset", runArgs{dataset: "gowalla", scale: 0.1, seed: 1}, false},
		{"both", runArgs{in: file, dataset: "gowalla"}, true},
		{"neither", runArgs{}, true},
		{"missing file", runArgs{in: filepath.Join(dir, "absent.txt")}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := load(tt.args)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() == 0 {
				t.Error("empty graph loaded")
			}
		})
	}
}

// TestEngineListIsShared guards the one-source-of-truth rule: every backend
// the engine layer knows, including dist, must be accepted by the CLI and
// enumerated in its error message for a bogus engine.
func TestEngineListIsShared(t *testing.T) {
	args := runArgs{
		dataset: "gowalla", scale: 0.1, seed: 1, system: "walks",
		walks: 2, depth: 2, k: 1, engine: "nope", engineSet: true,
	}
	err := run(args)
	if err == nil {
		t.Fatal("bogus engine accepted")
	}
	for _, name := range snaple.EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate backend %q", err, name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := runArgs{
		dataset: "gowalla", scale: 0.1, seed: 1,
		system: "snaple", score: "linearSum", k: 5, klocal: 10, thr: 50,
		policy: "max", alpha: 0.9, nodes: 2, nodeType: "type-I",
		strategy: "hash-edge", doEval: true, vertex: 3,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*runArgs)
		ok     bool
	}{
		{"snaple distributed", func(*runArgs) {}, true},
		{"snaple serial", func(a *runArgs) { a.serial = true }, true},
		{"snaple dist loopback", func(a *runArgs) { a.engine = "dist"; a.engineSet = true; a.workers = 2 }, true},
		{"baseline", func(a *runArgs) { a.system = "baseline" }, true},
		{"walks", func(a *runArgs) { a.system = "walks"; a.walks = 10; a.depth = 3 }, true},
		{"bad system", func(a *runArgs) { a.system = "nope" }, false},
		{"bad score", func(a *runArgs) { a.score = "nope" }, false},
		{"bad engine", func(a *runArgs) { a.engine = "nope"; a.engineSet = true }, false},
		{"exhaustion reported not fatal", func(a *runArgs) { a.system = "baseline"; a.budget = 1024 }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := base
			tc.mutate(&args)
			err := run(args)
			if tc.ok && err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}
