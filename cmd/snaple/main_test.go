package main

import (
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"snaple"
)

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(file, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		args    runArgs
		wantErr bool
	}{
		{"from file", runArgs{in: file}, false},
		{"from dataset", runArgs{dataset: "gowalla", scale: 0.1, seed: 1}, false},
		{"both", runArgs{in: file, dataset: "gowalla"}, true},
		{"neither", runArgs{}, true},
		{"missing file", runArgs{in: filepath.Join(dir, "absent.txt")}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := load(tt.args)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() == 0 {
				t.Error("empty graph loaded")
			}
		})
	}
}

// TestPack covers the pack subcommand: text -> snapshot conversion, the
// default output path, option pass-through, re-packing a snapshot, the
// packed file loading back through the auto-detecting -in path, and the
// error cases.
func TestPack(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "g.txt")
	// Vertex 5 exists only via the header: pack must preserve it.
	if err := os.WriteFile(text, []byte("# vertices: 6\n0 1\n1 2\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runPack([]string{"-in", text, "-preserve-ids", "-in-edges"}, &out); err != nil {
		t.Fatal(err)
	}
	sgr := filepath.Join(dir, "g.sgr") // default: input path with .sgr extension
	g, err := load(runArgs{in: sgr})
	if err != nil {
		t.Fatalf("load packed: %v", err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 3 {
		t.Fatalf("packed graph is %s, want V=6 E=3", g)
	}
	if !g.HasInEdges() {
		t.Error("-in-edges not packed")
	}
	if !strings.Contains(out.String(), "packed") {
		t.Errorf("no pack summary printed: %q", out.String())
	}

	// Re-pack the snapshot to an explicit path.
	repacked := filepath.Join(dir, "g2.sgr")
	if err := runPack([]string{"-in", sgr, "-out", repacked}, &out); err != nil {
		t.Fatalf("re-pack: %v", err)
	}
	g2, err := load(runArgs{in: repacked})
	if err != nil || g2.NumEdges() != 3 {
		t.Fatalf("re-packed graph: %s err=%v", g2, err)
	}

	if err := runPack(nil, &out); err == nil {
		t.Error("pack without -in: want error")
	}
	// Re-packing in place would truncate (and on failure delete) the input.
	if err := runPack([]string{"-in", sgr}, &out); err == nil || !strings.Contains(err.Error(), "overwrite") {
		t.Errorf("pack onto the input path: want overwrite error, got %v", err)
	}
	if err := runPack([]string{"-in", text, "-out", text}, &out); err == nil {
		t.Error("pack -out equal to -in: want error")
	}
	// A differently-spelled path to the same file must be caught too.
	link := filepath.Join(dir, "alias.sgr")
	if err := os.Symlink(sgr, link); err == nil {
		if err := runPack([]string{"-in", sgr, "-out", link}, &out); err == nil {
			t.Error("pack -out symlinked to -in: want error")
		}
	}
	if err := runPack([]string{"-in", filepath.Join(dir, "absent.txt")}, &out); err == nil {
		t.Error("pack of missing file: want error")
	}
}

// TestLoadAutoDetect: -in accepts both formats interchangeably.
func TestLoadAutoDetect(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(text, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gText, err := load(runArgs{in: text})
	if err != nil {
		t.Fatal(err)
	}
	if err := runPack([]string{"-in", text}, io.Discard); err != nil {
		t.Fatal(err)
	}
	gSnap, err := load(runArgs{in: filepath.Join(dir, "g.sgr")})
	if err != nil {
		t.Fatal(err)
	}
	if gText.NumVertices() != gSnap.NumVertices() || gText.NumEdges() != gSnap.NumEdges() {
		t.Fatalf("text load %s != snapshot load %s", gText, gSnap)
	}
}

// TestEngineListIsShared guards the one-source-of-truth rule: every backend
// the engine layer knows, including dist, must be accepted by the CLI and
// enumerated in its error message for a bogus engine.
func TestEngineListIsShared(t *testing.T) {
	args := runArgs{
		dataset: "gowalla", scale: 0.1, seed: 1, system: "walks",
		walks: 2, depth: 2, k: 1, engine: "nope", engineSet: true,
	}
	err := run(args)
	if err == nil {
		t.Fatal("bogus engine accepted")
	}
	for _, name := range snaple.EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate backend %q", err, name)
		}
	}
}

// TestParseSources covers the -sources flag's two spellings: an inline
// comma list and an @file of whitespace-separated IDs with comments.
func TestParseSources(t *testing.T) {
	if got, err := parseSources(""); err != nil || got != nil {
		t.Fatalf("empty = (%v, %v)", got, err)
	}
	got, err := parseSources("3, 1,4")
	if err != nil {
		t.Fatal(err)
	}
	if want := []snaple.VertexID{3, 1, 4}; !slices.Equal(got, want) {
		t.Fatalf("inline = %v, want %v", got, want)
	}

	file := filepath.Join(t.TempDir(), "ids.txt")
	if err := os.WriteFile(file, []byte("# cohort A\n10 11\n12 # trailing comment\n\n13\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = parseSources("@" + file)
	if err != nil {
		t.Fatal(err)
	}
	if want := []snaple.VertexID{10, 11, 12, 13}; !slices.Equal(got, want) {
		t.Fatalf("file = %v, want %v", got, want)
	}

	for _, bad := range []string{"1,x", "-3", ",", "@" + filepath.Join(t.TempDir(), "absent"), "@" + file + "x"} {
		if _, err := parseSources(bad); err == nil {
			t.Errorf("parseSources(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := runArgs{
		dataset: "gowalla", scale: 0.1, seed: 1,
		system: "snaple", score: "linearSum", k: 5, klocal: 10, thr: 50,
		policy: "max", alpha: 0.9, nodes: 2, nodeType: "type-I",
		strategy: "hash-edge", doEval: true, vertex: 3,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*runArgs)
		ok     bool
	}{
		{"snaple distributed", func(*runArgs) {}, true},
		{"snaple serial", func(a *runArgs) { a.serial = true }, true},
		{"snaple dist loopback", func(a *runArgs) { a.engine = "dist"; a.engineSet = true; a.workers = 2 }, true},
		{"baseline", func(a *runArgs) { a.system = "baseline" }, true},
		{"walks", func(a *runArgs) { a.system = "walks"; a.walks = 10; a.depth = 3 }, true},
		{"bad system", func(a *runArgs) { a.system = "nope" }, false},
		{"bad score", func(a *runArgs) { a.score = "nope" }, false},
		{"bad engine", func(a *runArgs) { a.engine = "nope"; a.engineSet = true }, false},
		{"exhaustion reported not fatal", func(a *runArgs) { a.system = "baseline"; a.budget = 1024 }, true},
		{"scoped local", func(a *runArgs) { a.engine = "local"; a.engineSet = true; a.sources = "3,5,9"; a.doEval = false }, true},
		{"scoped sim", func(a *runArgs) { a.sources = "0,1"; a.doEval = false }, true},
		{"scoped dist", func(a *runArgs) {
			a.engine = "dist"
			a.engineSet = true
			a.workers = 2
			a.sources = "3"
			a.doEval = false
		}, true},
		{"sources bad id", func(a *runArgs) { a.sources = "3,x" }, false},
		{"sources out of range", func(a *runArgs) { a.engine = "local"; a.engineSet = true; a.sources = "99999999"; a.doEval = false }, false},
		{"sources wrong system", func(a *runArgs) { a.system = "walks"; a.sources = "1"; a.doEval = false }, false},
		{"sources with eval rejected", func(a *runArgs) { a.engine = "local"; a.engineSet = true; a.sources = "1" }, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := base
			tc.mutate(&args)
			err := run(args)
			if tc.ok && err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}
