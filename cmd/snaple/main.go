// Command snaple runs link prediction on a graph: SNAPLE on one of the
// pluggable execution backends (parallel shared-memory "local", serial
// reference, the simulated distributed GAS engine "sim", or the real
// multi-process TCP engine "dist"), the naive BASELINE, or the random-walk
// comparator. Graph inputs may be SNAP-style text edge lists or binary CSR
// snapshots (.sgr); the format is auto-detected by magic bytes, and the
// `pack` subcommand converts an edge list into a snapshot once so every
// later run skips parsing entirely.
//
// Usage:
//
//	snaple -dataset livejournal -scale 0.25 -score linearSum -klocal 20 -eval
//	snaple -dataset livejournal -engine local -workers 8 -eval
//	snaple -in graph.txt -score PPR -k 10 -vertex 42
//	snaple -in graph.sgr -engine local -sources 17,42,99 -vertex 42
//	snaple -in graph.sgr -engine local -sources @user-ids.txt
//	snaple pack -in graph.txt -out graph.sgr
//	snaple pack -in old.sgr -out new.sgr -packed
//	snaple -in graph.sgr -engine local -eval
//	snaple -dataset pokec -system walks -walks 100 -depth 3 -eval
//	snaple -dataset gowalla -system baseline -nodes 4 -eval
//	snaple -dataset gowalla -engine dist -spawn 3 -eval
//	snaple -dataset gowalla -engine dist -addrs host1:7777,host2:7777 -eval
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"time"

	"snaple"
	"snaple/internal/engine"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "pack" {
		if err := runPack(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "snaple: pack:", err)
			os.Exit(1)
		}
		return
	}
	var (
		in        = flag.String("in", "", "input edge-list file (SNAP format)")
		symmetric = flag.Bool("symmetric", false, "treat the input as undirected")
		dataset   = flag.String("dataset", "", "generate a dataset analog instead of reading a file")
		scale     = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed      = flag.Uint64("seed", 42, "run seed")

		system = flag.String("system", "snaple", "predictor: snaple|baseline|walks")
		score  = flag.String("score", "linearSum", "SNAPLE score (see -scores)")
		scores = flag.Bool("scores", false, "list available scores and exit")
		k      = flag.Int("k", 5, "predictions per vertex")
		klocal = flag.Int("klocal", 20, "relay sample size (0 = unlimited)")
		thr    = flag.Int("thr", 200, "truncation threshold thrGamma (0 = unlimited)")
		policy = flag.String("policy", "max", "relay selection policy: max|min|rnd")
		alpha  = flag.Float64("alpha", 0.9, "linear combinator alpha")

		// The backend set comes from the engine layer's single source of
		// truth, so this help text can never silently miss a backend.
		engineF  = flag.String("engine", "sim", "execution backend for -system snaple: "+strings.Join(snaple.EngineNames(), "|"))
		workers  = flag.Int("workers", 0, "worker goroutines for the chosen backend (0 = GOMAXPROCS; for -engine dist: loopback worker count, 0 = 2)")
		serial   = flag.Bool("serial", false, "deprecated: same as -engine serial")
		nodes    = flag.Int("nodes", 1, "simulated cluster nodes")
		nodeType = flag.String("nodetype", "type-II", "node type: type-I|type-II")
		strategy = flag.String("strategy", "hash-edge", "vertex-cut strategy: hash-edge|hash-source|greedy")
		budget   = flag.Int64("budget", 0, "per-node memory budget in bytes (0 = node capacity)")

		addrs        = flag.String("addrs", "", "comma-separated snaple-worker addresses for -engine dist")
		spawn        = flag.Int("spawn", 0, "auto-spawn this many local snaple-worker processes for -engine dist")
		workerBin    = flag.String("worker-bin", "", "snaple-worker binary for -spawn (default: found on PATH)")
		wireProto    = flag.Int("wire-proto", 0, "pin the dist wire protocol: 0 = negotiate (v3, gob fallback), 2 = force legacy gob, 3 = require v3")
		wireCompress = flag.Bool("wire-compress", false, "compress dist wire frames (flate; v3 connections only)")
		replicas     = flag.Int("replicas", 0, "ship every partition to this many dist workers; a worker death then fails over to a survivor with bit-identical results (0 or 1 = no replication)")
		stepTimeout  = flag.Duration("step-timeout", 0, "per-phase deadline on dist superstep exchanges; a wedged worker is declared dead at the deadline (0 = 10m default, negative = unbounded)")
		dialAttempts = flag.Int("dial-attempts", 0, "connect/spawn attempts per dist worker, retried with exponential backoff (0 = 3)")
		dump         = flag.String("dump", "", "write predictions to FILE as 'vertex<TAB>target<TAB>hexfloat' lines (byte-stable across runs; for scripted equivalence checks)")

		sources = flag.String("sources", "", "scope the prediction to these source vertices: comma-separated IDs, or @FILE with whitespace-separated IDs ('#' comments); empty = all vertices")

		walks = flag.Int("walks", 100, "walks per vertex (system=walks)")
		depth = flag.Int("depth", 3, "walk depth (system=walks)")

		doEval = flag.Bool("eval", false, "hide one edge per vertex and report recall")
		vertex = flag.Int("vertex", -1, "print predictions for this vertex")
		verify = flag.Bool("verify", false, "fully re-verify snapshot checksums and row invariants on load (mapped loads default to the cheap structural checks)")
	)
	flag.Parse()

	if *scores {
		for _, s := range snaple.ScoreNames() {
			fmt.Println(s)
		}
		return
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if err := run(runArgs{
		in: *in, symmetric: *symmetric, dataset: *dataset, scale: *scale, seed: *seed,
		system: *system, score: *score, k: *k, klocal: *klocal, thr: *thr,
		policy: *policy, alpha: *alpha, engine: *engineF, engineSet: engineSet,
		workers: *workers, serial: *serial,
		nodes: *nodes, nodeType: *nodeType, strategy: *strategy, budget: *budget,
		addrs: *addrs, spawn: *spawn, workerBin: *workerBin,
		wireProto: *wireProto, wireCompress: *wireCompress, sources: *sources,
		replicas: *replicas, stepTimeout: *stepTimeout, dialAttempts: *dialAttempts,
		dump:  *dump,
		walks: *walks, depth: *depth, doEval: *doEval, vertex: *vertex,
		verify: *verify,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "snaple:", err)
		os.Exit(1)
	}
}

type runArgs struct {
	in           string
	symmetric    bool
	dataset      string
	scale        float64
	seed         uint64
	system       string
	score        string
	k, klocal    int
	thr          int
	policy       string
	alpha        float64
	engine       string
	engineSet    bool
	workers      int
	serial       bool
	nodes        int
	nodeType     string
	strategy     string
	budget       int64
	addrs        string
	spawn        int
	workerBin    string
	wireProto    int
	wireCompress bool
	sources      string
	replicas     int
	stepTimeout  time.Duration
	dialAttempts int
	dump         string
	walks        int
	depth        int
	doEval       bool
	vertex       int
	verify       bool
}

// parseSources parses the -sources flag: a comma-separated ID list, or
// "@path" naming a file of whitespace-separated IDs where '#' starts a
// line comment — the shape a batch of user IDs arrives in.
func parseSources(s string) ([]snaple.VertexID, error) {
	if s == "" {
		return nil, nil
	}
	var fields []string
	if strings.HasPrefix(s, "@") {
		data, err := os.ReadFile(s[1:])
		if err != nil {
			return nil, fmt.Errorf("-sources: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			fields = append(fields, strings.Fields(line)...)
		}
	} else {
		fields = strings.Split(s, ",")
	}
	out := make([]snaple.VertexID, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("-sources: bad vertex id %q: %w", f, err)
		}
		out = append(out, snaple.VertexID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sources: no vertex ids in %q", s)
	}
	return out, nil
}

func run(a runArgs) error {
	// gv is the view predictions run over: the loaded CSR (possibly mmap'd
	// or packed), or the split's remove-only overlay when evaluating.
	gv, err := load(a)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", gv)

	var split *snaple.Split
	if a.doEval {
		// The split hides edges behind an overlay built from a heap-shaped
		// CSR, so packed views decode once here; mapped plain CSRs pass
		// through (the overlay never mutates its base).
		g, err := heapGraph(gv)
		if err != nil {
			return err
		}
		split, err = snaple.NewSplit(g, 1, a.seed)
		if err != nil {
			return err
		}
		fmt.Printf("protocol: hid %d edges (1 per vertex with degree > 3)\n", split.NumRemoved)
		gv = split.Train
	}

	eng := a.engine
	if a.serial {
		// Back-compat: -serial predates -engine. Honour it only when -engine
		// was not given explicitly; a contradictory combination is an error.
		if a.engineSet && a.engine != "serial" {
			return fmt.Errorf("-serial conflicts with -engine %s", a.engine)
		}
		eng = "serial"
	}
	if eng == "" {
		eng = "sim" // zero-value runArgs (direct run() callers): the flag default
	}
	// Validate up front so a typo'd -engine errors for every -system, not
	// just snaple (the only system the backend choice applies to).
	if !slices.Contains(snaple.EngineNames(), eng) {
		return fmt.Errorf("unknown engine %q (%s)", eng, strings.Join(snaple.EngineNames(), "|"))
	}
	srcs, err := parseSources(a.sources)
	if err != nil {
		return err
	}
	if srcs != nil && a.system != "snaple" {
		return fmt.Errorf("-sources only applies to -system snaple")
	}
	if srcs != nil && a.doEval {
		// Recall's denominator is every vertex's hidden edge; a scoped run
		// only predicts for the sources, so the figure would be silently
		// deflated to near zero. Refuse rather than mislead.
		return fmt.Errorf("-sources cannot be combined with -eval: recall is defined over all vertices, a scoped run predicts only for the sources")
	}
	opts := snaple.Options{
		Score: a.score, Alpha: a.alpha, K: a.k, KLocal: a.klocal,
		ThrGamma: a.thr, Policy: a.policy, Seed: a.seed,
		Engine: eng, Workers: a.workers, Sources: srcs,
	}
	cl := snaple.ClusterOptions{
		Nodes: a.nodes, NodeType: a.nodeType, Strategy: a.strategy,
		MemBudgetBytes: a.budget, Seed: a.seed, Workers: a.workers,
		SpawnWorkers: a.spawn, WorkerBin: a.workerBin,
		WireProto: a.wireProto, WireCompress: a.wireCompress,
		Replicas: a.replicas, StepTimeout: a.stepTimeout,
		DialAttempts: a.dialAttempts,
	}
	if a.addrs != "" {
		cl.WorkerAddrs = strings.Split(a.addrs, ",")
	}

	var preds snaple.Predictions
	start := time.Now()
	switch a.system {
	case "snaple":
		if eng == "sim" || eng == "dist" {
			// Both deployment-aware backends go through PredictDistributed,
			// which reports cluster costs: simulated for sim, measured on
			// the wire for dist.
			var res *snaple.Result
			res, err = snaple.PredictDistributed(gv, opts, cl)
			if res != nil {
				preds = res.Predictions
				printStats(res)
			}
		} else {
			var st snaple.EngineStats
			preds, st, err = snaple.PredictStats(gv, opts)
			if err == nil {
				fmt.Printf("engine: %s workers=%d %.2fs %.0f edges/s alloc=%.1fMiB (%d objects)\n",
					st.Engine, st.Workers, st.WallSeconds, st.EdgesPerSec,
					float64(st.AllocBytes)/(1<<20), st.AllocObjects)
				if st.FrontierVertices > 0 {
					fmt.Printf("frontier: %d sources -> %d-vertex closure (of %d)\n",
						st.ScoredVertices, st.FrontierVertices, gv.NumVertices())
				}
			}
		}
	case "baseline":
		var res *snaple.Result
		res, err = snaple.PredictBaseline(gv, a.k, cl)
		if res != nil {
			preds = res.Predictions
			printStats(res)
		}
	case "walks":
		preds, err = snaple.PredictWalks(gv, a.walks, a.depth, a.k, a.seed)
	default:
		return fmt.Errorf("unknown system %q (snaple|baseline|walks)", a.system)
	}
	if err != nil {
		if errors.Is(err, snaple.ErrMemoryExhausted) {
			fmt.Printf("RESOURCE EXHAUSTION: %v\n", err)
			return nil
		}
		return err
	}
	fmt.Printf("predicted in %.2fs (host wall)\n", time.Since(start).Seconds())

	if a.vertex >= 0 {
		if a.vertex >= len(preds) || len(preds[a.vertex]) == 0 {
			fmt.Printf("vertex %d: no predictions\n", a.vertex)
		} else {
			fmt.Printf("vertex %d predictions:\n", a.vertex)
			for i, p := range preds[a.vertex] {
				fmt.Printf("  %d. vertex %d (score %.4f)\n", i+1, p.Vertex, p.Score)
			}
		}
	}
	total := 0
	for _, ps := range preds {
		total += len(ps)
	}
	fmt.Printf("predictions: %d across %d vertices\n", total, len(preds))
	if split != nil {
		fmt.Printf("recall@%d: %.4f\n", a.k, snaple.Recall(preds, split))
	}
	if a.dump != "" {
		if err := writeDump(a.dump, preds); err != nil {
			return err
		}
		fmt.Printf("dumped %d predictions to %s\n", total, a.dump)
	}
	return nil
}

// writeDump writes predictions as "vertex\ttarget\thexfloat" lines. Scores
// are printed as exact hexadecimal floats ('x' format), so two runs agree on
// this file byte-for-byte iff their predictions are bit-identical — the
// property the chaos smoke leg asserts with a plain cmp(1) after killing a
// worker mid-run.
func writeDump(path string, preds snaple.Predictions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for v, ps := range preds {
		for _, p := range ps {
			fmt.Fprintf(w, "%d\t%d\t%x\n", v, p.Vertex, p.Score)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func load(a runArgs) (snaple.GraphView, error) {
	switch {
	case a.in != "" && a.dataset != "":
		return nil, fmt.Errorf("use either -in or -dataset, not both")
	case a.in != "":
		// Format (text edge list vs binary snapshot) is detected by magic
		// bytes, so packed and plain graphs are interchangeable here.
		// Format-v2 snapshots arrive zero-copy: mmap'd when the platform
		// allows, aliased from one aligned read otherwise.
		start := time.Now()
		v, info, err := snaple.OpenGraphFile(a.in, snaple.GraphReadOptions{
			Symmetrize: a.symmetric, Verify: a.verify,
		})
		if err != nil {
			return nil, err
		}
		el := time.Since(start).Seconds()
		how := "parsed text"
		if info.Version > 0 {
			how = "heap"
			if info.Mapped {
				how = "mmap"
			}
			how = fmt.Sprintf("snapshot v%d, %s", info.Version, how)
			if info.Packed {
				how += ", packed adjacency"
			}
		}
		fmt.Printf("loaded %s in %.3fs: %.1f MiB at %.0f MB/s (%s)\n",
			a.in, el, float64(info.Bytes)/(1<<20),
			float64(info.Bytes)/1e6/max(el, 1e-9), how)
		return v, nil
	case a.dataset != "":
		return snaple.Dataset(a.dataset, a.scale, a.seed)
	default:
		return nil, fmt.Errorf("need -in FILE or -dataset NAME")
	}
}

// heapGraph unwraps gv to the heap-shaped CSR some paths require: a
// pass-through for plain CSRs (including mmap'd ones) and a one-time
// decode for packed-adjacency views.
func heapGraph(gv snaple.GraphView) (*snaple.Graph, error) {
	if g, ok := graph.AsCSR(gv); ok {
		return g, nil
	}
	if p, ok := gv.(*graph.Packed); ok {
		return p.Decode()
	}
	return nil, fmt.Errorf("cannot materialise %s as a CSR", gv)
}

// runPack implements `snaple pack`: one-time conversion of a graph file
// into a binary CSR snapshot, after which loads skip parsing, remapping
// and sorting entirely. A snapshot is also a valid input, which is how
// existing files upgrade in place: format v1 -> v2, plain -> packed
// adjacency (-packed) or back, or adding the reverse adjacency
// (-in-edges). With -shards N it additionally computes the vertex
// cut once and writes each partition as its own resident shard file
// (<out>.0 .. <out>.N-1) plus a fleet manifest (<out>.manifest): workers
// started with `snaple-worker -shard <out>.i` then pin their partition
// across sessions, and coordinators pointed at the manifest attach with a
// fingerprint handshake instead of shipping partitions per run.
func runPack(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("snaple pack", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input graph file (text edge list or snapshot)")
		out       = fs.String("out", "", "output snapshot path (default: input path with .sgr extension)")
		symmetric = fs.Bool("symmetric", false, "treat a text input as undirected (duplicate every edge both ways)")
		preserve  = fs.Bool("preserve-ids", false, "keep raw vertex IDs (honors the '# vertices:' header) instead of remapping densely")
		inEdges   = fs.Bool("in-edges", false, "also pack the reverse adjacency")
		packed    = fs.Bool("packed", false, "delta-varint compress the adjacency rows (smaller file; rows decode on demand at query time)")
		workers   = fs.Int("workers", 0, "parser shard fan-out (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "also write a resident shard set for a standing worker fleet: <out>.0..N-1 plus <out>.manifest (0 = snapshot only)")
		strategy  = fs.String("strategy", "hash-edge", "vertex-cut strategy for -shards: hash-edge|hash-source|greedy")
		seed      = fs.Uint64("seed", 42, "vertex-cut seed for -shards")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("need -in FILE")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d: need >= 0", *shards)
	}
	outPath := *out
	if outPath == "" {
		outPath = strings.TrimSuffix(*in, filepath.Ext(*in)) + ".sgr"
	}
	// Never truncate the input in place (os.Create would, and a failed
	// write would then delete the only copy): re-packing a .sgr needs an
	// explicit distinct -out. os.SameFile catches what string comparison
	// misses — relative vs absolute spellings, symlinks, hard links.
	if filepath.Clean(outPath) == filepath.Clean(*in) {
		return fmt.Errorf("output %s would overwrite the input; pass a different -out", outPath)
	}
	if inInfo, err := os.Stat(*in); err == nil {
		if outInfo, err := os.Stat(outPath); err == nil && os.SameFile(inInfo, outInfo) {
			return fmt.Errorf("output %s is the input file; pass a different -out", outPath)
		}
	}
	// Check every output path up front, so a refusal can never leave a
	// half-written shard set behind.
	outputs := []string{outPath}
	for i := 0; i < *shards; i++ {
		outputs = append(outputs, fmt.Sprintf("%s.%d", outPath, i))
	}
	if *shards > 0 {
		outputs = append(outputs, outPath+".manifest")
	}
	for _, p := range outputs {
		if err := refuseForeignOverwrite(p); err != nil {
			return err
		}
	}
	start := time.Now()
	g, err := snaple.ReadGraphFile(*in, snaple.GraphReadOptions{
		Symmetrize: *symmetric, PreserveIDs: *preserve,
		WithInEdges: *inEdges, Workers: *workers,
	})
	if err != nil {
		return err
	}
	loaded := time.Since(start)
	if err := writeOutput(outPath, func(f io.Writer) error {
		return snaple.WriteSnapshotOpts(f, g, snaple.SnapshotOptions{Packed: *packed})
	}); err != nil {
		return err
	}
	fi, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	enc := "plain"
	if *packed {
		enc = "packed"
	}
	wrote := time.Since(start).Seconds() - loaded.Seconds()
	fmt.Fprintf(w, "packed %s -> %s: %s, %d bytes (%.1f MiB, %s) in %.2fs read + %.2fs write, %.0f edges/s\n",
		*in, outPath, g, fi.Size(), float64(fi.Size())/(1<<20), enc,
		loaded.Seconds(), wrote, float64(g.NumEdges())/max(wrote, 1e-9))
	if *shards > 0 {
		if err := packShards(g, outPath, *shards, *strategy, *seed, w); err != nil {
			return err
		}
	}
	return nil
}

// packShards computes the vertex cut once and writes the resident shard set
// next to the snapshot.
func packShards(g *snaple.Graph, outPath string, shards int, strategy string, seed uint64, w io.Writer) error {
	strat, err := partition.ByName(strategy, seed)
	if err != nil {
		return err
	}
	start := time.Now()
	files, man, err := engine.PackShards(g, strat, seed, shards)
	if err != nil {
		return err
	}
	var total int64
	for i, sf := range files {
		p := fmt.Sprintf("%s.%d", outPath, i)
		if err := writeOutput(p, func(f io.Writer) error { return graph.WriteShard(f, sf) }); err != nil {
			return err
		}
		// Manifest paths are relative to the manifest's own directory, so a
		// packed set can be moved or mounted wholesale.
		man.Files[i] = filepath.Base(p)
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	manPath := outPath + ".manifest"
	if err := writeOutput(manPath, func(f io.Writer) error { return graph.WriteManifest(f, man) }); err != nil {
		return err
	}
	fmt.Fprintf(w, "packed %d resident shards (%s, seed %d) -> %s.{0..%d} + %s: %.1f MiB, fingerprint %016x (%.2fs)\n",
		shards, man.Strategy, seed, outPath, shards-1, filepath.Base(manPath),
		float64(total)/(1<<20), man.Fingerprint, time.Since(start).Seconds())
	return nil
}

// refuseForeignOverwrite refuses to clobber an existing file this tool did
// not write: re-packing over a previous snapshot, shard or manifest is fine,
// but a typo'd -out must not destroy unrelated data.
func refuseForeignOverwrite(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	if n > 0 && !graph.KnownMagic(magic[:n]) {
		return fmt.Errorf("%s exists and is not a snaple snapshot, shard or manifest; refusing to overwrite it (pass a different -out or remove it first)", path)
	}
	return nil
}

// writeOutput creates path, streams the payload and removes the file again
// on a failed write, so an error never leaves a truncated output behind.
func writeOutput(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

func printStats(r *snaple.Result) {
	if r.FrontierVertices > 0 {
		fmt.Printf("frontier: %d sources -> %d-vertex closure\n", r.ScoredVertices, r.FrontierVertices)
	}
	if r.Engine == "dist" || r.Engine == "fleet" {
		// Everything here is measured, not simulated: real sockets, real
		// heap. The raw byte count rides along so scripts (cluster_smoke.sh's
		// compression check) can compare runs without MiB rounding.
		fmt.Printf("engine: %s wall=%.3fs cross=%.1fMiB (%d B) msgs=%d (measured) peak=%.1fMiB/worker rf=%.2f\n",
			r.Engine, r.WallSeconds, float64(r.CrossBytes)/(1<<20), r.CrossBytes, r.CrossMsgs,
			float64(r.MemPeakBytes)/(1<<20), r.ReplicationFactor)
		fmt.Printf("fleet: replicas=%d dead=%d failovers=%d dial-retries=%d\n",
			r.Replicas, r.WorkersDead, r.Failovers, r.DialRetries)
		return
	}
	fmt.Printf("engine: sim=%.3fs cross=%.1fMiB msgs=%d peak=%.1fMiB/node rf=%.2f\n",
		r.SimSeconds, float64(r.CrossBytes)/(1<<20), r.CrossMsgs,
		float64(r.MemPeakBytes)/(1<<20), r.ReplicationFactor)
}
