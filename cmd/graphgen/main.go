// Command graphgen emits synthetic graphs — either one of the paper's
// dataset analogs or a raw generator model — as SNAP-style edge lists or,
// when the output path ends in .sgr (or -format sgr is given), as binary
// CSR snapshots that snaple/snaple-bench load without any parsing.
//
// Usage:
//
//	graphgen -dataset livejournal -scale 0.5 -out lj.txt
//	graphgen -dataset twitter-rv -scale 2 -o tw.sgr
//	graphgen -model ba -n 10000 -m 4 -out ba.txt
//	graphgen -model community -n 5000 -communities 25 -out comm.txt
//	graphgen -model powerlaw -n 100000000 -edges 1000000000 -o big.sgr
//
// The powerlaw model is the scale workhorse: -edges is an absolute edge
// count (no -scale arithmetic) and generation streams straight to the sink
// in shards — text output writes each draw as it is produced and .sgr
// output counts and scatters the stream through the two-pass CSR builder —
// so no in-memory edge list ever exists at any size.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"snaple"
	"snaple/internal/gen"
	"snaple/internal/graph"
)

func main() {
	var (
		dataset     = flag.String("dataset", "", "dataset analog to generate (gowalla|pokec|livejournal|orkut|twitter-rv)")
		model       = flag.String("model", "", "raw model instead of a dataset (er|ba|ws|rmat|community)")
		scale       = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed        = flag.Uint64("seed", 42, "generator seed")
		out         = flag.String("out", "-", "output path ('-' = stdout)")
		format      = flag.String("format", "auto", "output format: auto|text|sgr (auto: sgr when the path ends in .sgr, else text)")
		n           = flag.Int("n", 1000, "vertices (raw models)")
		m           = flag.Int("m", 4, "edges per vertex (ba) / total edges (er)")
		k           = flag.Int("k", 4, "ring degree (ws)")
		beta        = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		rmatScale   = flag.Int("rmat-scale", 12, "log2 vertices (rmat)")
		edgeFactor  = flag.Int("edge-factor", 8, "edges per vertex (rmat)")
		communities = flag.Int("communities", 10, "communities (community model)")
		symmetric   = flag.Bool("symmetric", false, "duplicate edges in both directions (community model)")
		edges       = flag.Int64("edges", 10_000_000, "absolute edge-draw count (powerlaw model; streams, never buffered)")
		skew        = flag.Float64("skew", 2, "degree skew exponent >= 1 (powerlaw model)")
		workers     = flag.Int("workers", 0, "builder goroutines for streamed .sgr output (0 = GOMAXPROCS)")
	)
	flag.StringVar(out, "o", *out, "alias for -out")
	flag.Parse()

	if *model == "powerlaw" {
		if *dataset != "" {
			fmt.Fprintln(os.Stderr, "graphgen: use either -dataset or -model, not both")
			os.Exit(1)
		}
		if err := runPowerLaw(*n, *edges, *skew, *seed, *out, *format, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		return
	}

	g, err := generate(*dataset, *model, *scale, *seed, rawParams{
		n: *n, m: *m, k: *k, beta: *beta,
		rmatScale: *rmatScale, edgeFactor: *edgeFactor,
		communities: *communities, symmetric: *symmetric,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := writeGraph(w, g, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "graphgen: wrote %s\n", st)
}

// runPowerLaw generates the streaming skewed model: text sinks receive the
// raw edge draws as they are produced (duplicates and self-loops included —
// every loader drops them, same as any other SNAP file), .sgr sinks run the
// stream through the bufferless two-pass CSR builder. Either way no edge
// list is ever held in memory.
func runPowerLaw(n int, edges int64, skew float64, seed uint64, out, format string, workers int) error {
	s, err := gen.NewPowerLawStream(n, edges, skew, seed)
	if err != nil {
		return err
	}
	sgr := false
	switch format {
	case "auto":
		sgr = strings.HasSuffix(out, ".sgr")
	case "text":
	case "sgr":
		sgr = true
	default:
		return fmt.Errorf("unknown format %q (auto|text|sgr)", format)
	}
	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if sgr {
		g, err := s.Build(workers)
		if err != nil {
			return err
		}
		if err := snaple.WriteSnapshot(w, g); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote %s\n", graph.ComputeStats(g))
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d vertices, %d edge draws\n# vertices: %d\n", n, edges, n); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	werr := error(nil)
	s.ForEachShard(0, 1, func(u, v graph.VertexID) {
		if werr != nil {
			return
		}
		buf = strconv.AppendUint(buf[:0], uint64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, '\n')
		_, werr = bw.Write(buf)
	})
	if werr != nil {
		return werr
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %d edge draws over %d vertices\n", edges, n)
	return nil
}

// writeGraph emits g in the requested format; "auto" keys off the output
// path's extension (stdout defaults to text).
func writeGraph(w io.Writer, g *snaple.Graph, format, outPath string) error {
	switch format {
	case "auto":
		if strings.HasSuffix(outPath, ".sgr") {
			return snaple.WriteSnapshot(w, g)
		}
		return snaple.WriteEdgeList(w, g)
	case "text":
		return snaple.WriteEdgeList(w, g)
	case "sgr":
		return snaple.WriteSnapshot(w, g)
	default:
		return fmt.Errorf("unknown format %q (auto|text|sgr)", format)
	}
}

type rawParams struct {
	n, m, k               int
	beta                  float64
	rmatScale, edgeFactor int
	communities           int
	symmetric             bool
}

func generate(dataset, model string, scale float64, seed uint64, p rawParams) (*snaple.Graph, error) {
	switch {
	case dataset != "" && model != "":
		return nil, fmt.Errorf("use either -dataset or -model, not both")
	case dataset != "":
		return snaple.Dataset(dataset, scale, seed)
	case model == "er":
		return gen.ErdosRenyi(p.n, p.m, seed)
	case model == "ba":
		return gen.BarabasiAlbert(p.n, p.m, seed)
	case model == "ws":
		return gen.WattsStrogatz(p.n, p.k, p.beta, seed)
	case model == "rmat":
		return gen.RMAT(p.rmatScale, p.edgeFactor, 0.57, 0.19, 0.19, seed)
	case model == "community":
		return gen.Community(gen.CommunityConfig{
			N: p.n, Communities: p.communities, Symmetric: p.symmetric,
		}, seed)
	default:
		return nil, fmt.Errorf("need -dataset or -model (er|ba|ws|rmat|community)")
	}
}
