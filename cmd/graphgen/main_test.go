package main

import "testing"

func TestGenerate(t *testing.T) {
	defaults := rawParams{n: 100, m: 3, k: 4, beta: 0.1, rmatScale: 6, edgeFactor: 4, communities: 5}
	tests := []struct {
		name    string
		dataset string
		model   string
		wantErr bool
	}{
		{"dataset", "gowalla", "", false},
		{"model er", "", "er", false},
		{"model ba", "", "ba", false},
		{"model ws", "", "ws", false},
		{"model rmat", "", "rmat", false},
		{"model community", "", "community", false},
		{"both set", "gowalla", "ba", true},
		{"neither set", "", "", true},
		{"unknown model", "", "nope", true},
		{"unknown dataset", "nope", "", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := generate(tt.dataset, tt.model, 0.1, 7, defaults)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 {
				t.Error("empty graph")
			}
		})
	}
}
