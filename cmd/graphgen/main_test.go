package main

import (
	"bytes"
	"strings"
	"testing"

	"snaple"
)

func TestGenerate(t *testing.T) {
	defaults := rawParams{n: 100, m: 3, k: 4, beta: 0.1, rmatScale: 6, edgeFactor: 4, communities: 5}
	tests := []struct {
		name    string
		dataset string
		model   string
		wantErr bool
	}{
		{"dataset", "gowalla", "", false},
		{"model er", "", "er", false},
		{"model ba", "", "ba", false},
		{"model ws", "", "ws", false},
		{"model rmat", "", "rmat", false},
		{"model community", "", "community", false},
		{"both set", "gowalla", "ba", true},
		{"neither set", "", "", true},
		{"unknown model", "", "nope", true},
		{"unknown dataset", "nope", "", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := generate(tt.dataset, tt.model, 0.1, 7, defaults)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 {
				t.Error("empty graph")
			}
		})
	}
}

// TestWriteGraph covers the format switch: explicit text/sgr, extension
// auto-detection, and rejection of unknown formats. Snapshot output must
// load back identically through the auto-detecting reader.
func TestWriteGraph(t *testing.T) {
	g, err := generate("", "ba", 0.1, 7, rawParams{n: 100, m: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, format, out string
		wantSnap          bool
		wantErr           bool
	}{
		{"explicit text", "text", "g.sgr", false, false}, // explicit beats extension
		{"explicit sgr", "sgr", "g.txt", true, false},
		{"auto text", "auto", "g.txt", false, false},
		{"auto stdout", "auto", "-", false, false},
		{"auto sgr", "auto", "g.sgr", true, false},
		{"unknown", "nope", "g.txt", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := writeGraph(&buf, g, tc.format, tc.out)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			isSnap := bytes.HasPrefix(buf.Bytes(), []byte("SNAPLSGR"))
			if isSnap != tc.wantSnap {
				t.Fatalf("snapshot output = %v, want %v", isSnap, tc.wantSnap)
			}
			var g2 *snaple.Graph
			if tc.wantSnap {
				g2, err = snaple.ReadSnapshot(bytes.NewReader(buf.Bytes()))
			} else {
				g2, err = snaple.ReadEdgeList(strings.NewReader(buf.String()), false)
			}
			if err != nil {
				t.Fatal(err)
			}
			if g2.NumEdges() != g.NumEdges() {
				t.Fatalf("round trip lost edges: %d -> %d", g.NumEdges(), g2.NumEdges())
			}
		})
	}
}
