package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snaple"
)

func TestGenerate(t *testing.T) {
	defaults := rawParams{n: 100, m: 3, k: 4, beta: 0.1, rmatScale: 6, edgeFactor: 4, communities: 5}
	tests := []struct {
		name    string
		dataset string
		model   string
		wantErr bool
	}{
		{"dataset", "gowalla", "", false},
		{"model er", "", "er", false},
		{"model ba", "", "ba", false},
		{"model ws", "", "ws", false},
		{"model rmat", "", "rmat", false},
		{"model community", "", "community", false},
		{"both set", "gowalla", "ba", true},
		{"neither set", "", "", true},
		{"unknown model", "", "nope", true},
		{"unknown dataset", "nope", "", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := generate(tt.dataset, tt.model, 0.1, 7, defaults)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 {
				t.Error("empty graph")
			}
		})
	}
}

// TestWriteGraph covers the format switch: explicit text/sgr, extension
// auto-detection, and rejection of unknown formats. Snapshot output must
// load back identically through the auto-detecting reader.
func TestWriteGraph(t *testing.T) {
	g, err := generate("", "ba", 0.1, 7, rawParams{n: 100, m: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, format, out string
		wantSnap          bool
		wantErr           bool
	}{
		{"explicit text", "text", "g.sgr", false, false}, // explicit beats extension
		{"explicit sgr", "sgr", "g.txt", true, false},
		{"auto text", "auto", "g.txt", false, false},
		{"auto stdout", "auto", "-", false, false},
		{"auto sgr", "auto", "g.sgr", true, false},
		{"unknown", "nope", "g.txt", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := writeGraph(&buf, g, tc.format, tc.out)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			isSnap := bytes.HasPrefix(buf.Bytes(), []byte("SNAPLSGR"))
			if isSnap != tc.wantSnap {
				t.Fatalf("snapshot output = %v, want %v", isSnap, tc.wantSnap)
			}
			var g2 *snaple.Graph
			if tc.wantSnap {
				g2, err = snaple.ReadSnapshot(bytes.NewReader(buf.Bytes()))
			} else {
				g2, err = snaple.ReadEdgeList(strings.NewReader(buf.String()), false)
			}
			if err != nil {
				t.Fatal(err)
			}
			if g2.NumEdges() != g.NumEdges() {
				t.Fatalf("round trip lost edges: %d -> %d", g.NumEdges(), g2.NumEdges())
			}
		})
	}
}

// TestRunPowerLaw drives the streaming generator end to end through both
// sinks: the text stream must carry exactly the requested draw count and
// re-ingest to the same graph the sgr sink builds directly.
func TestRunPowerLaw(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "p.txt")
	sgr := filepath.Join(dir, "p.sgr")
	const n, edges = 200, 5000
	if err := runPowerLaw(n, edges, 2, 9, txt, "auto", 2); err != nil {
		t.Fatal(err)
	}
	if err := runPowerLaw(n, edges, 2, 9, sgr, "auto", 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	drawn := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			drawn++
		}
	}
	if drawn != edges {
		t.Fatalf("text sink wrote %d draws, want %d", drawn, edges)
	}
	fromText, _, err := snaple.OpenGraphFile(txt, snaple.GraphReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, info, err := snaple.OpenGraphFile(sgr, snaple.GraphReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version < 2 {
		t.Fatalf("sgr sink wrote snapshot v%d, want v2", info.Version)
	}
	if fromText.NumVertices() != fromSnap.NumVertices() || fromText.NumEdges() != fromSnap.NumEdges() {
		t.Fatalf("text sink re-ingests to %d/%d, sgr sink to %d/%d",
			fromText.NumVertices(), fromText.NumEdges(), fromSnap.NumVertices(), fromSnap.NumEdges())
	}
	if runPowerLaw(n, edges, 2, 9, filepath.Join(dir, "x"), "nope", 1) == nil {
		t.Fatal("unknown format accepted")
	}
}
