package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"snaple"
	"snaple/internal/core"
	"snaple/internal/engine"
)

// TestWorkerProcessEndToEnd builds the real binary, spawns two worker
// processes, and checks a dist prediction against the serial oracle —
// the same zero-to-cluster path a user walks, in miniature.
func TestWorkerProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real processes")
	}
	bin := filepath.Join(t.TempDir(), "snaple-worker")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		cmd := exec.Command(bin, "-quiet")
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			t.Fatal("worker never announced its address")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || fields[0] != "listening" {
			t.Fatalf("announcement = %q", sc.Text())
		}
		addrs = append(addrs, fields[1])
	}

	g, err := snaple.Dataset("gowalla", 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := snaple.Options{Score: "linearSum", KLocal: 10, ThrGamma: 50, Seed: 42}

	opts.Engine = "serial"
	want, err := snaple.Predict(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := core.ScoreByName("linearSum", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Score: spec, K: 5, KLocal: 10, ThrGamma: 50, Seed: 42}
	got, st, err := engine.Dist{Addrs: addrs, Seed: 42}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("worker processes disagree with the serial oracle")
	}
	if st.CrossBytes == 0 {
		t.Errorf("no measured traffic: %+v", st)
	}

	// Workers serve jobs sequentially: a second session on the same fleet
	// must work (fresh partition state per connection).
	got2, _, err := engine.Dist{Addrs: addrs, Seed: 42}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("second session on the same workers diverged")
	}
}
