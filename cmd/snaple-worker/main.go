// Command snaple-worker serves SNAPLE partitions over TCP for the dist
// execution backend: a coordinator (snaple -engine dist, or any program
// using snaple.Predict with Engine "dist") vertex-cuts the graph, ships one
// partition to each worker, and drives Algorithm 2's supersteps through the
// internal/wire protocol. Workers hold only their partition — the full graph
// never has to fit on one machine.
//
// Usage:
//
//	snaple-worker                          # ephemeral loopback port
//	snaple-worker -listen 0.0.0.0:7777     # fixed port, reachable remotely
//	snaple-worker -shard graph.sgr.2       # resident: pin one packed shard
//
// The first stdout line announces the bound address as "listening <addr>",
// which is how spawning coordinators and the CI cluster-smoke script learn
// ephemeral ports. Without -shard, jobs are served sequentially, one TCP
// connection each, and every job ships its partition. With -shard the worker
// loads one partition packed by `snaple pack -shards` at startup and stays
// resident: coordinators attach with a fingerprint handshake instead of
// shipping, connections are served concurrently so several front-ends can
// share the worker, and an attach for a different pack is refused. Either
// way the worker keeps serving until killed (SIGINT/SIGTERM exit cleanly).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"snaple/internal/graph"
	"snaple/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to listen on ('host:0' picks an ephemeral port)")
		quiet    = flag.Bool("quiet", false, "suppress per-session logging on stderr")
		maxProto = flag.Int("max-proto", wire.ProtocolV3, "highest wire protocol to accept: 3 (binary frames, default) or 2 (legacy gob only — emulates an old worker)")
		shard    = flag.String("shard", "", "stay resident for this packed shard file (written by `snaple pack -shards`); coordinators attach by fingerprint instead of shipping partitions")
	)
	flag.Parse()

	if *maxProto != wire.ProtocolV2 && *maxProto != wire.ProtocolV3 {
		fmt.Fprintf(os.Stderr, "snaple-worker: -max-proto must be %d or %d\n", wire.ProtocolV2, wire.ProtocolV3)
		os.Exit(1)
	}
	if err := run(*listen, *quiet, *maxProto, *shard); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-worker:", err)
		os.Exit(1)
	}
}

func loadShard(path string) (*wire.ResidentShard, bool, error) {
	// The numeric partition columns alias a read-only mmap of the shard
	// file when the platform allows, so pinning a multi-gigabyte partition
	// costs no per-edge work; heap loading is the automatic fallback.
	sf, mapped, err := graph.MapShardFile(path)
	if err != nil {
		return nil, false, err
	}
	return wire.ResidentFromShard(sf), mapped, nil
}

func run(listen string, quiet bool, maxProto int, shard string) error {
	var resident *wire.ResidentShard
	var shardMapped bool
	if shard != "" {
		var err error
		if resident, shardMapped, err = loadShard(shard); err != nil {
			return err
		}
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// The announcement contract: exactly "listening <addr>" as the first
	// stdout line (engine.Dist's spawner and scripts/cluster_smoke.sh parse
	// it).
	fmt.Printf("listening %s\n", l.Addr())

	logf := func(string, ...any) {}
	if !quiet {
		logger := log.New(os.Stderr, "snaple-worker: ", log.LstdFlags)
		logf = logger.Printf
		if resident != nil {
			how := "heap"
			if shardMapped {
				how = "mmap"
			}
			logf("resident for shard %d of %d (fingerprint %016x, %s)",
				resident.Part.Part, resident.Shards, resident.Fingerprint, how)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		l.Close() // Serve returns nil on a closed listener
	}()
	return wire.ServeWith(l, logf, wire.ServeOptions{MaxProto: maxProto, Resident: resident})
}
