// Command snaple-worker serves SNAPLE partitions over TCP for the dist
// execution backend: a coordinator (snaple -engine dist, or any program
// using snaple.Predict with Engine "dist") vertex-cuts the graph, ships one
// partition to each worker, and drives Algorithm 2's supersteps through the
// internal/wire protocol. Workers hold only their partition — the full graph
// never has to fit on one machine.
//
// Usage:
//
//	snaple-worker                          # ephemeral loopback port
//	snaple-worker -listen 0.0.0.0:7777     # fixed port, reachable remotely
//
// The first stdout line announces the bound address as "listening <addr>",
// which is how spawning coordinators and the CI cluster-smoke script learn
// ephemeral ports. Jobs are served sequentially, one TCP connection each;
// the worker keeps serving until killed (SIGINT/SIGTERM exit cleanly).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"snaple/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to listen on ('host:0' picks an ephemeral port)")
		quiet    = flag.Bool("quiet", false, "suppress per-session logging on stderr")
		maxProto = flag.Int("max-proto", wire.ProtocolV3, "highest wire protocol to accept: 3 (binary frames, default) or 2 (legacy gob only — emulates an old worker)")
	)
	flag.Parse()

	if *maxProto != wire.ProtocolV2 && *maxProto != wire.ProtocolV3 {
		fmt.Fprintf(os.Stderr, "snaple-worker: -max-proto must be %d or %d\n", wire.ProtocolV2, wire.ProtocolV3)
		os.Exit(1)
	}
	if err := run(*listen, *quiet, *maxProto); err != nil {
		fmt.Fprintln(os.Stderr, "snaple-worker:", err)
		os.Exit(1)
	}
}

func run(listen string, quiet bool, maxProto int) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// The announcement contract: exactly "listening <addr>" as the first
	// stdout line (engine.Dist's spawner and scripts/cluster_smoke.sh parse
	// it).
	fmt.Printf("listening %s\n", l.Addr())

	logf := func(string, ...any) {}
	if !quiet {
		logger := log.New(os.Stderr, "snaple-worker: ", log.LstdFlags)
		logf = logger.Printf
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		l.Close() // Serve returns nil on a closed listener
	}()
	return wire.ServeWith(l, logf, wire.ServeOptions{MaxProto: maxProto})
}
