// Command benchcheck is CI's benchmark-regression gate: it compares a fresh
// `snaple-bench -exp perf` report against the committed baseline and fails
// (exit 1) only on hard regressions — a throughput cliff, an allocation
// blow-up, or dist-protocol wire bloat — using a deliberately generous
// relative tolerance so noisy CI runners do not flap the build.
//
// Usage:
//
//	snaple-bench -exp perf -scale 0.5 -perf-out BENCH_ci.json
//	benchcheck -baseline BENCH_baseline.json -current BENCH_ci.json -tol 0.35
//
// The comparison rules live in eval.ComparePerf, next to the report schema,
// so the writer and the gate cannot drift apart. To re-baseline after an
// intentional performance change, regenerate BENCH_baseline.json with the
// same snaple-bench invocation CI uses and commit it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"snaple/internal/eval"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
		current  = flag.String("current", "BENCH.json", "freshly measured report")
		tol      = flag.Float64("tol", 0.35, "relative tolerance (0.35 = ±35%)")
	)
	flag.Parse()
	if err := run(*baseline, *current, *tol, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, tol float64, w io.Writer) error {
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s scale=%v seed=%d (V=%d E=%d), tolerance ±%d%%\n",
		base.Dataset, base.Scale, base.Seed, base.Vertices, base.Edges, int(tol*100))
	for _, b := range base.Rows {
		c, ok := cur.Row(b.Engine)
		if !ok {
			continue // reported by ComparePerf below
		}
		fmt.Fprintf(w, "%-7s %12.0f -> %12.0f edges/s   %9d -> %9d objects\n",
			b.Engine, b.EdgesPerSec, c.EdgesPerSec, b.AllocObjects, c.AllocObjects)
	}
	failures := eval.ComparePerf(base, cur, tol)
	if len(failures) == 0 {
		fmt.Fprintln(w, "PASS: no hard regressions")
		return nil
	}
	for _, f := range failures {
		fmt.Fprintln(w, "FAIL:", f)
	}
	return fmt.Errorf("%d hard regression(s) against %s", len(failures), baselinePath)
}

func load(path string) (eval.PerfReport, error) {
	var rep eval.PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Rows) == 0 {
		return rep, fmt.Errorf("%s: no benchmark rows", path)
	}
	return rep, nil
}
