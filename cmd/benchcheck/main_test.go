package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snaple/internal/eval"
)

func writeReport(t *testing.T, dir, name string, rep eval.PerfReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleReport() eval.PerfReport {
	return eval.PerfReport{
		Dataset: "livejournal", Scale: 0.5, Seed: 42, Vertices: 100, Edges: 4000,
		Rows: []eval.PerfRow{
			{Engine: "local", Workers: 2, WallSeconds: 1, EdgesPerSec: 4000, AllocBytes: 1000, AllocObjects: 100},
			{Engine: "dist", Workers: 2, WallSeconds: 2, EdgesPerSec: 2000, AllocBytes: 9000, AllocObjects: 9000, CrossBytes: 5000, CrossMsgs: 40},
		},
	}
}

func TestRunPassAndFail(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", sampleReport())

	var out strings.Builder
	if err := run(base, base, 0.35, &out); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS line:\n%s", out.String())
	}

	bad := sampleReport()
	bad.Rows[0].EdgesPerSec /= 10
	cur := writeReport(t, dir, "cur.json", bad)
	out.Reset()
	if err := run(base, cur, 0.35, &out); err == nil {
		t.Fatalf("10x throughput cliff passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", sampleReport())
	var out strings.Builder
	if err := run(filepath.Join(dir, "absent.json"), good, 0.35, &out); err == nil {
		t.Error("missing baseline accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(good, garbage, 0.35, &out); err == nil {
		t.Error("garbage current accepted")
	}
	empty := writeReport(t, dir, "empty.json", eval.PerfReport{Dataset: "x"})
	if err := run(empty, good, 0.35, &out); err == nil {
		t.Error("rowless baseline accepted")
	}
}
