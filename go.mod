module snaple

go 1.24
