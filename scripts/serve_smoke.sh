#!/usr/bin/env bash
# serve_smoke.sh — CI's serve-smoke gate for the online serving path.
#
# Builds cmd/graphgen and cmd/snaple-serve, packs a generated graph into a
# binary snapshot, starts the server (mutable) on an ephemeral loopback
# port, and exercises the full HTTP surface: /healthz, /v1/predict (twice,
# so the second round is answered from the LRU), /statsz (asserting the
# cache hits actually registered), malformed requests (must be clean 400s,
# not crashes), then the live-graph leg: /v1/edges mutations (asserting the
# mutated vertex is recomputed while the rest of the cache survives) and
# /v1/compact (asserting the epoch bump and the persisted snapshot). The
# trap tears the server down even when a step fails.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [ $status -ne 0 ]; then
    echo "--- server log ---" >&2
    cat "$workdir/serve.err" 2>/dev/null >&2 || true
  fi
  rm -rf "$workdir"
  exit $status
}
trap cleanup EXIT INT TERM

echo "==> building graphgen and snaple-serve"
go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/snaple-serve" ./cmd/snaple-serve

echo "==> generating a packed graph"
"$workdir/graphgen" -dataset gowalla -scale 0.3 -seed 7 -o "$workdir/g.sgr"

echo "==> starting the server (mutable) on an ephemeral port"
"$workdir/snaple-serve" -in "$workdir/g.sgr" -listen 127.0.0.1:0 -kmax 10 \
  -mutable -compact-out "$workdir/compacted.sgr" \
  >"$workdir/serve.out" 2>"$workdir/serve.err" &
pids+=($!)
addr=""
for _ in $(seq 1 100); do
  line="$(head -n1 "$workdir/serve.out" 2>/dev/null || true)"
  case "$line" in
    "serving "*) addr="${line#serving }"; break ;;
  esac
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "server never announced its address" >&2
  exit 1
fi
echo "    serving on $addr"

echo "==> /healthz"
health="$(curl -sf "http://$addr/healthz")"
echo "    $health"
echo "$health" | grep -q '"status":"ok"'
echo "$health" | grep -q '"vertices":'
echo "$health" | grep -q '"edges":'

echo "==> POST /v1/predict"
resp="$(curl -sf -X POST "http://$addr/v1/predict" -d '{"ids":[1,2,3],"k":5}')"
echo "    $resp"
echo "$resp" | grep -q '"results":\['
echo "$resp" | grep -q '"id":1'
echo "$resp" | grep -q '"predictions":'

echo "==> POST /v1/predict again (must be served from the cache)"
curl -sf -X POST "http://$addr/v1/predict" -d '{"ids":[1,2,3],"k":5}' >/dev/null

echo "==> /statsz reflects both requests and the cache hits"
stats="$(curl -sf "http://$addr/statsz")"
echo "    $stats"
echo "$stats" | grep -q '"requests":2'
echo "$stats" | grep -q '"cache_hits":3'
echo "$stats" | grep -q '"p99_ms":'

echo "==> malformed requests fail cleanly"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/predict" -d '{"ids":[]}')"
[ "$code" = "400" ] || { echo "empty ids returned $code, want 400" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/predict" -d '{"ids":[99999999]}')"
[ "$code" = "400" ] || { echo "out-of-range id returned $code, want 400" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz")"
[ "$code" = "200" ] || { echo "server unhealthy after bad requests ($code)" >&2; exit 1; }

echo "==> POST /v1/edges: two mutation batches, monotone epochs"
resp="$(curl -sf -X POST "http://$addr/v1/edges" -d '{"add":[[1,7]]}')"
echo "    $resp"
echo "$resp" | grep -q '"epoch":1'
resp="$(curl -sf -X POST "http://$addr/v1/edges" -d '{"remove":[[1,7]]}')"
echo "    $resp"
echo "$resp" | grep -q '"epoch":2'
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/edges" -d '{"add":[[1,99999999]]}')"
[ "$code" = "400" ] || { echo "out-of-range mutation returned $code, want 400" >&2; exit 1; }

echo "==> the mutated vertex recomputes, then caches again"
# Vertex 1 is a mutated source, so its cached row was invalidated: the next
# query is a miss (recomputed against the live view), the one after a hit.
curl -sf -X POST "http://$addr/v1/predict" -d '{"ids":[1]}' >/dev/null
curl -sf -X POST "http://$addr/v1/predict" -d '{"ids":[1]}' >/dev/null
stats="$(curl -sf "http://$addr/statsz")"
echo "    $stats"
echo "$stats" | grep -q '"mutations":2'
echo "$stats" | grep -q '"edges_added":1'
echo "$stats" | grep -q '"edges_removed":1'
echo "$stats" | grep -q '"epoch":2'
echo "$stats" | grep -q '"cache_misses":4'
echo "$stats" | grep -q '"cache_hits":4'

echo "==> POST /v1/compact persists an atomic snapshot"
resp="$(curl -sf -X POST "http://$addr/v1/compact")"
echo "    $resp"
echo "$resp" | grep -q '"epoch":3'
[ -s "$workdir/compacted.sgr" ] || { echo "compaction wrote no snapshot" >&2; exit 1; }
# Compaction is bit-identical: the cache survives it (one more hit).
curl -sf -X POST "http://$addr/v1/predict" -d '{"ids":[1]}' >/dev/null
curl -sf "http://$addr/statsz" | grep -q '"cache_hits":5'
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz")"
[ "$code" = "200" ] || { echo "server unhealthy after mutation leg ($code)" >&2; exit 1; }

echo "==> serve smoke OK"
