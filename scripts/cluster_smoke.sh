#!/usr/bin/env bash
# cluster_smoke.sh — CI's cluster-smoke gate for the dist backend.
#
# Builds cmd/snaple-worker, spawns a 3-process worker fleet on loopback,
# runs the dist-vs-serial equivalence tests under the race detector against
# that fleet (SNAPLE_WORKER_ADDRS points the tests at it), then exercises
# both CLI paths: -addrs against the running fleet and -spawn, where the CLI
# forks its own workers. The trap tears every worker down even when a step
# fails.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [ $status -ne 0 ]; then
    echo "--- worker logs ---" >&2
    cat "$workdir"/worker*.err 2>/dev/null >&2 || true
  fi
  rm -rf "$workdir"
  exit $status
}
trap cleanup EXIT INT TERM

echo "==> building worker and CLI"
go build -o "$workdir/snaple-worker" ./cmd/snaple-worker
go build -o "$workdir/snaple" ./cmd/snaple

echo "==> spawning 3 workers on loopback"
addrs=()
for i in 1 2 3; do
  "$workdir/snaple-worker" -listen 127.0.0.1:0 \
    >"$workdir/worker$i.out" 2>"$workdir/worker$i.err" &
  pids+=($!)
done
for i in 1 2 3; do
  line=""
  for _ in $(seq 1 100); do
    line="$(head -n1 "$workdir/worker$i.out" 2>/dev/null || true)"
    [ -n "$line" ] && break
    sleep 0.1
  done
  case "$line" in
    "listening "*) addrs+=("${line#listening }") ;;
    *) echo "worker $i never announced its address (got: '$line')" >&2; exit 1 ;;
  esac
done
addr_list="$(IFS=,; echo "${addrs[*]}")"
echo "    fleet: $addr_list"

echo "==> dist-vs-serial equivalence under -race against the external fleet"
SNAPLE_WORKER_ADDRS="$addr_list" \
  go test -race -count=1 -run 'TestDistMatchesReference|TestDistStrategies|TestDistMeasuredStats' \
  ./internal/engine/

echo "==> CLI end-to-end against the running fleet (-addrs)"
plain_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -addrs "$addr_list" -eval)"
echo "$plain_out"

echo "==> CLI auto-spawn path (-spawn forks its own workers)"
PATH="$workdir:$PATH" "$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -spawn 2 -eval

echo "==> mixed-version fleet: a 4th worker that speaks only the legacy gob protocol"
"$workdir/snaple-worker" -listen 127.0.0.1:0 -max-proto 2 \
  >"$workdir/worker4.out" 2>"$workdir/worker4.err" &
pids+=($!)
legacy_addr=""
for _ in $(seq 1 100); do
  line="$(head -n1 "$workdir/worker4.out" 2>/dev/null || true)"
  case "$line" in
    "listening "*) legacy_addr="${line#listening }"; break ;;
  esac
  sleep 0.1
done
if [ -z "$legacy_addr" ]; then
  echo "legacy worker never announced its address" >&2
  exit 1
fi
"$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
  -addrs "$addr_list,$legacy_addr" -eval

echo "==> pinning -wire-proto 3 against the legacy worker must fail clearly"
if v3_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
    -addrs "$legacy_addr" -wire-proto 3 -eval 2>&1)"; then
  echo "required-v3 run against a legacy worker unexpectedly succeeded" >&2
  exit 1
fi
case "$v3_out" in
  *"legacy gob protocol"*) ;;
  *) echo "required-v3 failure lacks a clear diagnosis: $v3_out" >&2; exit 1 ;;
esac

echo "==> -wire-compress shrinks the measured cross-node traffic"
zip_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
  -addrs "$addr_list" -wire-compress -eval)"
echo "$zip_out"
# The dist stats line carries the raw byte count for exactly this check:
# "engine: dist wall=...s cross=1.2MiB (1234567 B) msgs=...".
cross_bytes() { sed -n 's/.*cross=[^(]*(\([0-9][0-9]*\) B).*/\1/p' <<<"$1"; }
plain_bytes="$(cross_bytes "$plain_out")"
zip_bytes="$(cross_bytes "$zip_out")"
if [ -z "$plain_bytes" ] || [ -z "$zip_bytes" ]; then
  echo "could not parse measured cross_bytes from the CLI output" >&2
  exit 1
fi
if [ "$zip_bytes" -ge "$plain_bytes" ]; then
  echo "compression did not shrink traffic: $plain_bytes B plain vs $zip_bytes B compressed" >&2
  exit 1
fi
echo "    cross-node traffic: $plain_bytes B plain -> $zip_bytes B compressed"

echo "==> cluster smoke OK"
