#!/usr/bin/env bash
# cluster_smoke.sh — CI's cluster-smoke gate for the dist backend.
#
# Builds cmd/snaple-worker, spawns a 3-process worker fleet on loopback,
# runs the dist-vs-serial equivalence tests under the race detector against
# that fleet (SNAPLE_WORKER_ADDRS points the tests at it), then exercises
# both CLI paths: -addrs against the running fleet and -spawn, where the CLI
# forks its own workers. The chaos legs run the in-process fault suite under
# -race and SIGKILL a replicated worker mid-run, asserting the failover
# output is byte-identical to the healthy run's. The final resident leg
# packs a 3-shard set, pins it on a 2x-replicated standing fleet, fronts it
# with two snaple-serve processes sharing the same workers, and SIGKILLs a
# resident worker mid-traffic: requests must keep answering 200 and /statsz
# must record the death. The trap tears every worker down even when a step
# fails, and asserts no stragglers survived the sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  # Leak sweep: every worker this script started — directly or via a -spawn
  # run that resolved the binary from $workdir — must be gone by now. A
  # straggler means some teardown path (coordinator reap, trap kill) broke.
  if pgrep -f "$workdir/snaple-worker" >/dev/null 2>&1; then
    echo "straggler snaple-worker processes survived teardown:" >&2
    pgrep -af "$workdir/snaple-worker" >&2 || true
    pkill -9 -f "$workdir/snaple-worker" 2>/dev/null || true
    [ $status -eq 0 ] && status=1
  fi
  if [ $status -ne 0 ]; then
    echo "--- worker logs ---" >&2
    cat "$workdir"/worker*.err 2>/dev/null >&2 || true
  fi
  rm -rf "$workdir"
  exit $status
}
trap cleanup EXIT INT TERM

echo "==> building worker and CLI"
go build -o "$workdir/snaple-worker" ./cmd/snaple-worker
go build -o "$workdir/snaple" ./cmd/snaple

echo "==> spawning 3 workers on loopback"
addrs=()
for i in 1 2 3; do
  "$workdir/snaple-worker" -listen 127.0.0.1:0 \
    >"$workdir/worker$i.out" 2>"$workdir/worker$i.err" &
  pids+=($!)
done
for i in 1 2 3; do
  line=""
  for _ in $(seq 1 100); do
    line="$(head -n1 "$workdir/worker$i.out" 2>/dev/null || true)"
    [ -n "$line" ] && break
    sleep 0.1
  done
  case "$line" in
    "listening "*) addrs+=("${line#listening }") ;;
    *) echo "worker $i never announced its address (got: '$line')" >&2; exit 1 ;;
  esac
done
addr_list="$(IFS=,; echo "${addrs[*]}")"
echo "    fleet: $addr_list"

echo "==> dist-vs-serial equivalence under -race against the external fleet"
SNAPLE_WORKER_ADDRS="$addr_list" \
  go test -race -count=1 -run 'TestDistMatchesReference|TestDistStrategies|TestDistMeasuredStats' \
  ./internal/engine/

echo "==> CLI end-to-end against the running fleet (-addrs)"
plain_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -addrs "$addr_list" -eval)"
echo "$plain_out"

echo "==> CLI auto-spawn path (-spawn forks its own workers)"
PATH="$workdir:$PATH" "$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -spawn 2 -eval

echo "==> mixed-version fleet: a 4th worker that speaks only the legacy gob protocol"
"$workdir/snaple-worker" -listen 127.0.0.1:0 -max-proto 2 \
  >"$workdir/worker4.out" 2>"$workdir/worker4.err" &
pids+=($!)
legacy_addr=""
for _ in $(seq 1 100); do
  line="$(head -n1 "$workdir/worker4.out" 2>/dev/null || true)"
  case "$line" in
    "listening "*) legacy_addr="${line#listening }"; break ;;
  esac
  sleep 0.1
done
if [ -z "$legacy_addr" ]; then
  echo "legacy worker never announced its address" >&2
  exit 1
fi
"$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
  -addrs "$addr_list,$legacy_addr" -eval

echo "==> pinning -wire-proto 3 against the legacy worker must fail clearly"
if v3_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
    -addrs "$legacy_addr" -wire-proto 3 -eval 2>&1)"; then
  echo "required-v3 run against a legacy worker unexpectedly succeeded" >&2
  exit 1
fi
case "$v3_out" in
  *"legacy gob protocol"*) ;;
  *) echo "required-v3 failure lacks a clear diagnosis: $v3_out" >&2; exit 1 ;;
esac

echo "==> -wire-compress shrinks the measured cross-node traffic"
zip_out="$("$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist \
  -addrs "$addr_list" -wire-compress -eval)"
echo "$zip_out"
# The dist stats line carries the raw byte count for exactly this check:
# "engine: dist wall=...s cross=1.2MiB (1234567 B) msgs=...".
cross_bytes() { sed -n 's/.*cross=[^(]*(\([0-9][0-9]*\) B).*/\1/p' <<<"$1"; }
plain_bytes="$(cross_bytes "$plain_out")"
zip_bytes="$(cross_bytes "$zip_out")"
if [ -z "$plain_bytes" ] || [ -z "$zip_bytes" ]; then
  echo "could not parse measured cross_bytes from the CLI output" >&2
  exit 1
fi
if [ "$zip_bytes" -ge "$plain_bytes" ]; then
  echo "compression did not shrink traffic: $plain_bytes B plain vs $zip_bytes B compressed" >&2
  exit 1
fi
echo "    cross-node traffic: $plain_bytes B plain -> $zip_bytes B compressed"

echo "==> in-process chaos suite under -race (failover equivalence, partition loss, cancellation)"
go test -race -count=1 \
  -run 'TestDistChaos|TestDistPartitionLost|TestDistCancel|TestDistReplicas' \
  ./internal/engine/

echo "==> chaos: SIGKILL a replicated worker mid-run, output must be byte-identical"
"$workdir/snaple-worker" -listen 127.0.0.1:0 \
  >"$workdir/worker5.out" 2>"$workdir/worker5.err" &
pids+=($!)
extra_addr=""
for _ in $(seq 1 100); do
  line="$(head -n1 "$workdir/worker5.out" 2>/dev/null || true)"
  case "$line" in
    "listening "*) extra_addr="${line#listening }"; break ;;
  esac
  sleep 0.1
done
if [ -z "$extra_addr" ]; then
  echo "4th v3 worker never announced its address" >&2
  exit 1
fi
fleet4="$addr_list,$extra_addr"
# With -replicas 2 the 4 workers form 2 replica groups; -dump writes every
# prediction as an exact hex float, so cmp(1) is a bit-identity check.
"$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -addrs "$fleet4" \
  -replicas 2 -step-timeout 30s -dump "$workdir/healthy.tsv" >/dev/null
# Kill worker 1 the instant the chaos run launches: the SIGKILL lands while
# the coordinator is still generating, dialing, shipping or stepping — every
# landing point must end the same way, with the death recorded (dead=1) and
# the surviving replica producing byte-identical output.
"$workdir/snaple" -dataset gowalla -scale 0.3 -engine dist -addrs "$fleet4" \
  -replicas 2 -step-timeout 30s -dump "$workdir/chaos.tsv" \
  >"$workdir/chaos.out" &
run_pid=$!
kill -9 "${pids[0]}" 2>/dev/null || true
wait "$run_pid"
cat "$workdir/chaos.out"
grep -q "fleet: replicas=2 dead=1" "$workdir/chaos.out"
cmp "$workdir/healthy.tsv" "$workdir/chaos.tsv"
echo "    failover output byte-identical ($(wc -l <"$workdir/healthy.tsv") prediction lines)"

echo "==> resident fleet: pack 3 shards, pin them on 6 workers (2 replicas each)"
go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/snaple-serve" ./cmd/snaple-serve
"$workdir/graphgen" -dataset gowalla -scale 0.3 -seed 7 -o "$workdir/g0.sgr"
"$workdir/snaple" pack -in "$workdir/g0.sgr" -out "$workdir/g.sgr" -shards 3 -seed 7
res_pids=()
res_addrs=()
n=0
for s in 0 1 2; do
  for _ in 1 2; do
    n=$((n + 1))
    "$workdir/snaple-worker" -shard "$workdir/g.sgr.$s" -listen 127.0.0.1:0 \
      >"$workdir/resident$n.out" 2>"$workdir/resident$n.err" &
    pids+=($!)
    res_pids+=($!)
  done
done
for i in $(seq 1 $n); do
  line=""
  for _ in $(seq 1 100); do
    line="$(head -n1 "$workdir/resident$i.out" 2>/dev/null || true)"
    [ -n "$line" ] && break
    sleep 0.1
  done
  case "$line" in
    "listening "*) res_addrs+=("${line#listening }") ;;
    *) echo "resident worker $i never announced its address (got: '$line')" >&2; exit 1 ;;
  esac
done
# Shard-major ordering: addrs[s*replicas + r] are the replicas of shard s.
res_list="$(IFS=,; echo "${res_addrs[*]}")"
echo "    resident fleet: $res_list"

echo "==> two serve front-ends attach to the same standing fleet"
serve_addrs=()
for s in 1 2; do
  "$workdir/snaple-serve" -in "$workdir/g0.sgr" -manifest "$workdir/g.sgr.manifest" \
    -addrs "$res_list" -replicas 2 -step-timeout 30s -listen 127.0.0.1:0 \
    >"$workdir/resserve$s.out" 2>"$workdir/resserve$s.err" &
  pids+=($!)
done
for s in 1 2; do
  line=""
  for _ in $(seq 1 100); do
    line="$(head -n1 "$workdir/resserve$s.out" 2>/dev/null || true)"
    [ -n "$line" ] && break
    sleep 0.1
  done
  case "$line" in
    "serving "*) serve_addrs+=("${line#serving }") ;;
    *) echo "serve front-end $s never announced its address (got: '$line')" >&2
       cat "$workdir/resserve$s.err" >&2 || true
       exit 1 ;;
  esac
done

echo "==> both front-ends report the same fleet topology in /v1/info"
info1="$(curl -sf "http://${serve_addrs[0]}/v1/info")"
info2="$(curl -sf "http://${serve_addrs[1]}/v1/info")"
echo "    $info1"
echo "$info1" | grep -q '"shards":3'
echo "$info1" | grep -q '"replicas":2'
echo "$info1" | grep -q '"workers":6'
fleet_fp() { sed -n 's/.*"fleet":{[^}]*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$1"; }
fp1="$(fleet_fp "$info1")"
fp2="$(fleet_fp "$info2")"
if [ -z "$fp1" ] || [ "$fp1" != "$fp2" ]; then
  echo "front-ends disagree on the fleet fingerprint: '$fp1' vs '$fp2'" >&2
  exit 1
fi

echo "==> scoped queries through both front-ends"
curl -sf -X POST "http://${serve_addrs[0]}/v1/predict" -d '{"ids":[1,2,3],"k":5}' \
  | grep -q '"predictions":'
curl -sf -X POST "http://${serve_addrs[1]}/v1/predict" -d '{"ids":[4,5],"k":5}' \
  | grep -q '"predictions":'

echo "==> SIGKILL one resident worker mid-traffic; 200s must continue"
kill -9 "${res_pids[0]}" 2>/dev/null || true
# Distinct uncached ids so every request after the kill is a real fleet run,
# not an LRU hit.
for id in 10 11 12 13; do
  code="$(curl -s -o /dev/null -w '%{http_code}' \
    -X POST "http://${serve_addrs[0]}/v1/predict" -d "{\"ids\":[$id],\"k\":5}")"
  if [ "$code" != "200" ]; then
    echo "front-end 1 returned $code after the worker death" >&2
    cat "$workdir/resserve1.err" >&2 || true
    exit 1
  fi
done
curl -sf -X POST "http://${serve_addrs[1]}/v1/predict" -d '{"ids":[20,21],"k":5}' >/dev/null

echo "==> /statsz on both front-ends records the dead worker"
for s in 1 2; do
  res_stats="$(curl -sf "http://${serve_addrs[$((s - 1))]}/statsz")"
  echo "    front-end $s: $res_stats"
  grep -Eq '"workers_dead":[1-9]' <<<"$res_stats" || {
    echo "front-end $s /statsz shows no dead worker after the SIGKILL" >&2
    exit 1
  }
  grep -q '"workers_total":6' <<<"$res_stats"
done

echo "==> cluster smoke OK"
