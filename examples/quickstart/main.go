// Quickstart: generate a small social graph, hide one edge per user, ask
// SNAPLE to predict missing links, and measure how many hidden edges it
// recovers.
package main

import (
	"fmt"
	"log"

	"snaple"
)

func main() {
	// A 2,000-user social graph with 20 interest communities.
	g, err := snaple.GenerateCommunity(snaple.CommunityGraph{
		N:           2000,
		Communities: 20,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %v\n", g)

	// The paper's protocol: hide one outgoing edge of every vertex with
	// more than three neighbours, then try to recover it.
	split, err := snaple.NewSplit(g, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden edges: %d\n", split.NumRemoved)

	// Predict with the paper's default configuration: Jaccard similarity,
	// linear combinator (alpha = 0.9), Sum aggregator, k_local = 20 relays.
	preds, err := snaple.Predict(split.Train, snaple.Options{
		Score:    "linearSum",
		K:        5,
		KLocal:   20,
		ThrGamma: 200,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recall@5: %.3f\n", snaple.Recall(preds, split))

	// Show the recommendations for one user.
	const user = 17
	fmt.Printf("recommendations for user %d (current friends: %v):\n",
		user, split.Train.OutNeighbors(user))
	for i, p := range preds[user] {
		hidden := ""
		for _, h := range split.Removed[user] {
			if h == p.Vertex {
				hidden = "  <- this edge was hidden!"
			}
		}
		fmt.Printf("  %d. user %d (score %.4f)%s\n", i+1, p.Vertex, p.Score, hidden)
	}
}
