// Item recommendation: the paper's introduction motivates link prediction
// for recommending "new items (bipartite graph)". This example builds a
// user–item bipartite graph (users occupy IDs [0, U), items [U, U+I)),
// hides one purchase per active user, and uses SNAPLE to recommend items.
//
// On a bipartite graph every 2-hop path from a user leads to another *user*
// (user → item → user), so item candidates appear at 3 hops
// (user → item → user → item) — this example therefore exercises the
// Paths=3 extension, and shows why the paper's K=2 default needs the
// co-purchase direction: we also add item→item "bought-together" edges,
// which put items back in 2-hop range.
package main

import (
	"fmt"
	"log"

	"snaple"
	"snaple/internal/randx"
)

const (
	users       = 1500
	items       = 300
	categories  = 15 // items cluster into categories; users favour a few
	perUser     = 8  // purchases per user
	coPurchases = 2  // item->item edges per item
)

func main() {
	g, err := buildBipartite(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-item graph: %v (%d users, %d items)\n", g, users, items)

	split, err := snaple.NewSplit(g, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Only user vertices lose edges in this graph shape that matter for
	// "which item next"; count those.
	hiddenPurchases := 0
	for u := range split.Removed {
		if int(u) < users {
			hiddenPurchases++
		}
	}
	fmt.Printf("hidden purchases: %d\n\n", hiddenPurchases)

	for _, cfg := range []struct {
		label string
		opts  snaple.Options
	}{
		{"2-hop (via co-purchase edges)", snaple.Options{Score: "linearSum", K: 5, KLocal: 15, Seed: 42}},
		{"3-hop (user-item-user-item)", snaple.Options{Score: "linearSum", K: 5, KLocal: 8, Paths: 3, Seed: 42}},
	} {
		preds, err := snaple.Predict(split.Train, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		// Recall on user->item predictions only.
		hits, total := 0, 0
		itemRecs := 0
		for u, hidden := range split.Removed {
			if int(u) >= users {
				continue
			}
			total += len(hidden)
			for _, p := range preds[u] {
				if int(p.Vertex) >= users {
					itemRecs++
					for _, h := range hidden {
						if h == p.Vertex {
							hits++
						}
					}
				}
			}
		}
		fmt.Printf("%-32s item recommendations: %5d, purchase recall: %.3f\n",
			cfg.label, itemRecs, float64(hits)/float64(total))
	}

	// Show one user's basket and recommendations.
	preds, err := snaple.Predict(split.Train, snaple.Options{Score: "linearSum", K: 5, KLocal: 15, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	const shopper = 3
	fmt.Printf("\nuser %d bought items %v\n", shopper, split.Train.OutNeighbors(shopper))
	fmt.Println("recommended next:")
	for i, p := range preds[shopper] {
		kind := "item"
		if int(p.Vertex) < users {
			kind = "user" // co-shopper suggestions can appear too
		}
		fmt.Printf("  %d. %s %d (score %.4f)\n", i+1, kind, p.Vertex, p.Score)
	}
}

// buildBipartite wires users to items of their favourite categories, plus
// item->item co-purchase edges inside categories.
func buildBipartite(seed uint64) (*snaple.Graph, error) {
	rng := randx.NewRand(seed, 0xB1)
	edges := make([]snaple.Edge, 0, users*perUser+items*coPurchases)
	itemsPerCat := items / categories
	itemID := func(cat, idx int) snaple.VertexID {
		return snaple.VertexID(users + cat*itemsPerCat + idx%itemsPerCat)
	}
	for u := 0; u < users; u++ {
		favA, favB := u%categories, (u+7)%categories
		for p := 0; p < perUser; p++ {
			cat := favA
			switch {
			case rng.Float64() < 0.15: // exploration outside favourites
				cat = rng.Intn(categories)
			case p%2 == 1:
				cat = favB
			}
			edges = append(edges, snaple.Edge{
				Src: snaple.VertexID(u),
				Dst: itemID(cat, rng.Intn(itemsPerCat)),
			})
		}
	}
	// Bought-together edges keep items 2-hop reachable from users.
	for cat := 0; cat < categories; cat++ {
		for i := 0; i < itemsPerCat; i++ {
			for c := 0; c < coPurchases; c++ {
				edges = append(edges, snaple.Edge{
					Src: itemID(cat, i),
					Dst: itemID(cat, rng.Intn(itemsPerCat)),
				})
			}
		}
	}
	return snaple.FromEdges(users+items, edges)
}
