// Scaling: distribute the same prediction job over growing simulated
// clusters and watch the engine's cost model — compute makespan shrinks
// with more cores while replication and network traffic grow, the
// fundamental trade-off of vertex-cut graph engines (paper Figure 5 and
// Section 2.4).
package main

import (
	"fmt"
	"log"

	"snaple"
)

func main() {
	g, err := snaple.Dataset("livejournal", 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	split, err := snaple.NewSplit(g, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v (hidden edges: %d)\n\n", split.Train, split.NumRemoved)

	opts := snaple.Options{Score: "linearSum", K: 5, KLocal: 40, ThrGamma: 200, Seed: 42}

	fmt.Printf("%-10s %-26s %8s %10s %10s %8s %8s\n",
		"nodes", "deployment", "sim(s)", "cross MiB", "msgs", "RF", "recall")
	var recall0 float64
	for _, tc := range []struct {
		nodes    int
		nodeType string
	}{
		{1, "type-I"}, {2, "type-I"}, {4, "type-I"}, {8, "type-I"},
		{16, "type-I"}, {32, "type-I"}, {4, "type-II"}, {8, "type-II"},
	} {
		res, err := snaple.PredictDistributed(split.Train, opts, snaple.ClusterOptions{
			Nodes:    tc.nodes,
			NodeType: tc.nodeType,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec := snaple.Recall(res.Predictions, split)
		if recall0 == 0 {
			recall0 = rec
		}
		cores := tc.nodes * 8
		if tc.nodeType == "type-II" {
			cores = tc.nodes * 20
		}
		fmt.Printf("%-10d %-26s %8.3f %10.2f %10d %8.2f %8.3f\n",
			tc.nodes, fmt.Sprintf("%d cores (%s)", cores, tc.nodeType),
			res.SimSeconds, float64(res.CrossBytes)/(1<<20), res.CrossMsgs,
			res.ReplicationFactor, rec)
		// Distribution must never change the answer.
		if rec != recall0 {
			log.Fatalf("recall changed across deployments: %v vs %v", rec, recall0)
		}
	}
	fmt.Println("\nnote: recall is identical everywhere — the engine is deterministic,")
	fmt.Println("distribution only trades compute time against network traffic.")
}
