// Baselines: the paper's three-way comparison on one graph — SNAPLE on the
// GAS engine, the naive BASELINE (direct 2-hop Jaccard, shipping
// neighbourhoods), and Cassovary-style random walks — including the
// resource-exhaustion failure of BASELINE under a bounded memory budget
// (Section 5.3).
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"snaple"
)

func main() {
	g, err := snaple.Dataset("pokec", 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	split, err := snaple.NewSplit(g, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v (hidden edges: %d)\n\n", split.Train, split.NumRemoved)
	cl := snaple.ClusterOptions{Nodes: 4, NodeType: "type-II", Seed: 1}

	fmt.Printf("%-26s %8s %10s %10s %12s\n", "system", "recall", "wall(s)", "sim(s)", "peak MiB/node")

	// SNAPLE.
	start := time.Now()
	sres, err := snaple.PredictDistributed(split.Train,
		snaple.Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42}, cl)
	if err != nil {
		log.Fatal(err)
	}
	report("SNAPLE (linearSum)", snaple.Recall(sres.Predictions, split),
		time.Since(start).Seconds(), sres.SimSeconds, sres.MemPeakBytes)

	// BASELINE.
	start = time.Now()
	bres, err := snaple.PredictBaseline(split.Train, 5, cl)
	if err != nil {
		log.Fatal(err)
	}
	report("BASELINE (2-hop Jaccard)", snaple.Recall(bres.Predictions, split),
		time.Since(start).Seconds(), bres.SimSeconds, bres.MemPeakBytes)

	// Random walks (single machine, so no sim/peak columns).
	start = time.Now()
	wpred, err := snaple.PredictWalks(split.Train, 100, 3, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	report("walks (w=100, d=3)", snaple.Recall(wpred, split),
		time.Since(start).Seconds(), 0, 0)

	// Now rerun BASELINE with a node memory budget sized between the two
	// systems' peaks: it must die of resource exhaustion while SNAPLE
	// sails through — the paper's Section 5.3 result.
	budget := (sres.MemPeakBytes + bres.MemPeakBytes) / 2
	fmt.Printf("\nwith a %.1f MiB/node budget:\n", float64(budget)/(1<<20))
	tight := cl
	tight.MemBudgetBytes = budget

	if _, err := snaple.PredictBaseline(split.Train, 5, tight); errors.Is(err, snaple.ErrMemoryExhausted) {
		fmt.Printf("  BASELINE: %v\n", err)
	} else {
		log.Fatalf("expected baseline exhaustion, got %v", err)
	}
	if res, err := snaple.PredictDistributed(split.Train,
		snaple.Options{Score: "linearSum", KLocal: 20, ThrGamma: 200, Seed: 42}, tight); err == nil {
		fmt.Printf("  SNAPLE: completed fine (recall %.3f)\n", snaple.Recall(res.Predictions, split))
	} else {
		log.Fatalf("SNAPLE should have fit: %v", err)
	}
}

func report(name string, recall, wall, sim float64, peak int64) {
	simCol, peakCol := "-", "-"
	if sim > 0 {
		simCol = fmt.Sprintf("%.3f", sim)
	}
	if peak > 0 {
		peakCol = fmt.Sprintf("%.1f", float64(peak)/(1<<20))
	}
	fmt.Printf("%-26s %8.3f %10.2f %10s %12s\n", name, recall, wall, simCol, peakCol)
}
