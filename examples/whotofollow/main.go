// Who-to-follow: the scenario that motivates the paper (Twitter's WTF
// service, Section 1). A directed follower graph with interest communities
// is generated; we compare what different SNAPLE scoring configurations
// recommend to the same user, and check that recommendations respect the
// user's community (homophily).
package main

import (
	"fmt"
	"log"

	"snaple"
	"snaple/internal/gen"
)

const communities = 12

func main() {
	// Directed follower graph: 5,000 users in 12 interest communities.
	g, err := snaple.GenerateCommunity(snaple.CommunityGraph{
		N:           5000,
		Communities: communities,
		MinDeg:      3,
		MaxDeg:      300,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %v\n", g)

	// Pick a reasonably active user.
	var user snaple.VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if g.OutDegree(snaple.VertexID(u)) >= 8 {
			user = snaple.VertexID(u)
			break
		}
	}
	fmt.Printf("user %d follows %d accounts, interest community #%d\n\n",
		user, g.OutDegree(user), gen.CommunityOf(user, communities))

	for _, score := range []string{"linearSum", "counter", "PPR", "linearMean"} {
		preds, err := snaple.Predict(g, snaple.Options{
			Score:    score,
			K:        5,
			KLocal:   20,
			ThrGamma: 200,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("who to follow according to %s:\n", score)
		if len(preds[user]) == 0 {
			fmt.Println("  (no recommendations)")
			continue
		}
		for i, p := range preds[user] {
			fmt.Printf("  %d. user %-6d score %.4f  community #%d\n",
				i+1, p.Vertex, p.Score, gen.CommunityOf(p.Vertex, communities))
		}
		fmt.Println()
	}

	// Homophily check across all users: how often do recommendations stay
	// in the recommender's community? Random guessing would give ~1/12.
	preds, err := snaple.Predict(g, snaple.Options{Score: "linearSum", KLocal: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	same, total := 0, 0
	for u, ps := range preds {
		cu := gen.CommunityOf(snaple.VertexID(u), communities)
		for _, p := range ps {
			total++
			if gen.CommunityOf(p.Vertex, communities) == cu {
				same++
			}
		}
	}
	fmt.Printf("recommendations inside the user's community: %.1f%% (random would be %.1f%%)\n",
		100*float64(same)/float64(total), 100.0/communities)
}
