// Package partition assigns graph edges to partitions (vertex-cut
// placement, as in PowerGraph/GraphLab).
//
// In the GAS engines the paper targets, edges — not vertices — are the unit
// of placement: a vertex whose edges land on several partitions is
// replicated there (one master, several mirrors), and the replication factor
// determines the synchronisation traffic the engine pays per superstep.
// This package provides hash-based and greedy strategies plus the statistics
// (replication factor, balance) used by the ablation benches.
package partition

import (
	"fmt"
	mathbits "math/bits"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// Assignment maps each edge (in the graph's CSR iteration order) to a
// partition in [0, Parts).
type Assignment struct {
	Parts  int
	EdgeTo []int32
}

// Strategy computes an Assignment for a graph.
type Strategy interface {
	// Name identifies the strategy in reports and bench labels.
	Name() string
	// Partition assigns every edge of g to one of parts partitions.
	Partition(g graph.View, parts int) (Assignment, error)
}

// ByName returns the strategy a name from Name() denotes, seeding the
// hash-based ones — the inverse mapping a fleet manifest (which records the
// cut by name and seed) is decoded with. "" means the default, hash-edge.
func ByName(name string, seed uint64) (Strategy, error) {
	switch name {
	case "", "hash-edge":
		return HashEdge{Seed: seed}, nil
	case "hash-source":
		return HashSource{Seed: seed}, nil
	case "greedy":
		return Greedy{}, nil
	default:
		return nil, fmt.Errorf("partition: unknown strategy %q (hash-edge|hash-source|greedy)", name)
	}
}

func validate(g graph.View, parts int) error {
	if g == nil {
		return fmt.Errorf("partition: nil graph")
	}
	if parts < 1 {
		return fmt.Errorf("partition: parts=%d, need >= 1", parts)
	}
	return nil
}

// HashEdge places each edge by a hash of both endpoints — the "random
// vertex-cut" placement, GraphLab's default. Replication grows with degree
// but load balance is near perfect.
type HashEdge struct {
	Seed uint64
}

// Name implements Strategy.
func (HashEdge) Name() string { return "hash-edge" }

// Partition implements Strategy.
func (s HashEdge) Partition(g graph.View, parts int) (Assignment, error) {
	if err := validate(g, parts); err != nil {
		return Assignment{}, err
	}
	a := Assignment{Parts: parts, EdgeTo: make([]int32, g.NumEdges())}
	i := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		a.EdgeTo[i] = int32(randx.Uint64n(uint64(parts), s.Seed, uint64(u), uint64(v)))
		i++
	})
	return a, nil
}

// HashSource places each edge by a hash of its source vertex, so a vertex's
// whole out-neighbourhood lives on one partition (1D edge partitioning).
// Gather over out-edges then needs no cross-partition partial sums for the
// source, at the cost of load skew on high-degree vertices.
type HashSource struct {
	Seed uint64
}

// Name implements Strategy.
func (HashSource) Name() string { return "hash-source" }

// Partition implements Strategy.
func (s HashSource) Partition(g graph.View, parts int) (Assignment, error) {
	if err := validate(g, parts); err != nil {
		return Assignment{}, err
	}
	a := Assignment{Parts: parts, EdgeTo: make([]int32, g.NumEdges())}
	i := 0
	g.ForEachEdge(func(u, _ graph.VertexID) {
		a.EdgeTo[i] = int32(randx.Uint64n(uint64(parts), s.Seed, uint64(u)))
		i++
	})
	return a, nil
}

// Greedy implements the PowerGraph greedy vertex-cut heuristic: each edge is
// placed to minimise new vertex replicas, breaking ties towards the least
// loaded partition. It is sequential and deterministic.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// replicaSet tracks, per vertex, the bitset of partitions holding a replica
// (words-per-vertex flat layout, any partition count).
type replicaSet struct {
	words int
	bits  []uint64
}

func newReplicaSet(vertices, parts int) *replicaSet {
	words := (parts + 63) / 64
	return &replicaSet{words: words, bits: make([]uint64, vertices*words)}
}

func (r *replicaSet) of(v graph.VertexID) []uint64 {
	return r.bits[int(v)*r.words : (int(v)+1)*r.words]
}

func (r *replicaSet) set(v graph.VertexID, p int32) {
	r.of(v)[p/64] |= 1 << uint(p%64)
}

// Partition implements Strategy.
func (Greedy) Partition(g graph.View, parts int) (Assignment, error) {
	if err := validate(g, parts); err != nil {
		return Assignment{}, err
	}
	a := Assignment{Parts: parts, EdgeTo: make([]int32, g.NumEdges())}
	replicas := newReplicaSet(g.NumVertices(), parts)
	load := make([]int64, parts)
	words := replicas.words
	scratch := make([]uint64, words)

	// leastLoaded returns the least-loaded partition among the set bits of
	// mask, or among all partitions if mask is entirely zero.
	leastLoaded := func(mask []uint64) int32 {
		best, bestLoad := int32(-1), int64(1)<<62
		any := false
		for w, bits := range mask {
			for bits != 0 {
				bit := bits & (-bits)
				p := int32(w*64) + int32(mathbits.TrailingZeros64(bit))
				bits ^= bit
				if int(p) >= parts {
					break
				}
				any = true
				if load[p] < bestLoad {
					best, bestLoad = p, load[p]
				}
			}
		}
		if !any {
			for p := 0; p < parts; p++ {
				if load[p] < bestLoad {
					best, bestLoad = int32(p), load[p]
				}
			}
		}
		return best
	}

	anySet := func(m []uint64) bool {
		for _, w := range m {
			if w != 0 {
				return true
			}
		}
		return false
	}

	i := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		ru, rv := replicas.of(u), replicas.of(v)
		hasU, hasV := anySet(ru), anySet(rv)
		for w := 0; w < words; w++ {
			scratch[w] = ru[w] & rv[w]
		}
		var p int32
		switch {
		case anySet(scratch): // rule 1: a partition already has both
			p = leastLoaded(scratch)
		case hasU && hasV: // rule 2: both replicated somewhere, pick either side
			for w := 0; w < words; w++ {
				scratch[w] = ru[w] | rv[w]
			}
			p = leastLoaded(scratch)
		case hasU: // rule 3: only one endpoint placed
			p = leastLoaded(ru)
		case hasV:
			p = leastLoaded(rv)
		default: // rule 4: neither placed -> least loaded overall
			for w := 0; w < words; w++ {
				scratch[w] = 0
			}
			p = leastLoaded(scratch)
		}
		a.EdgeTo[i] = p
		replicas.set(u, p)
		replicas.set(v, p)
		load[p]++
		i++
	})
	return a, nil
}

// Stats describes the quality of an assignment.
type Stats struct {
	Parts int
	// ReplicationFactor is the average number of partitions hosting each
	// non-isolated vertex; 1.0 is the (unreachable) ideal.
	ReplicationFactor float64
	// Balance is max partition load over mean partition load; 1.0 is perfect.
	Balance float64
	// MaxLoad is the largest number of edges on one partition.
	MaxLoad int64
}

// ComputeStats evaluates an assignment against its graph.
func ComputeStats(g graph.View, a Assignment) Stats {
	load := make([]int64, a.Parts)
	seen := make(map[int64]struct{}) // (vertex<<20 | part) pairs; parts < 2^20
	record := func(v graph.VertexID, p int32) {
		seen[int64(v)<<20|int64(p)] = struct{}{}
	}
	i := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		p := a.EdgeTo[i]
		load[p]++
		record(u, p)
		record(v, p)
		i++
	})
	touched := make(map[graph.VertexID]struct{})
	g.ForEachEdge(func(u, v graph.VertexID) {
		touched[u] = struct{}{}
		touched[v] = struct{}{}
	})
	st := Stats{Parts: a.Parts}
	if len(touched) > 0 {
		st.ReplicationFactor = float64(len(seen)) / float64(len(touched))
	}
	var sum, max int64
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	st.MaxLoad = max
	if sum > 0 {
		st.Balance = float64(max) * float64(a.Parts) / float64(sum)
	}
	return st
}
