package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snaple/internal/gen"
	"snaple/internal/graph"
)

func randomGraph(t testing.TB, n, m int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := gen.ErdosRenyi(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func strategies() []Strategy {
	return []Strategy{HashEdge{Seed: 1}, HashSource{Seed: 1}, Greedy{}}
}

// TestEveryEdgeAssignedExactlyOnce: the assignment covers each edge index
// once with an in-range partition — the fundamental vertex-cut invariant.
func TestEveryEdgeAssignedExactlyOnce(t *testing.T) {
	g := randomGraph(t, 200, 2000, 3)
	for _, s := range strategies() {
		t.Run(s.Name(), func(t *testing.T) {
			for _, parts := range []int{1, 2, 5, 16} {
				a, err := s.Partition(g, parts)
				if err != nil {
					t.Fatal(err)
				}
				if a.Parts != parts || len(a.EdgeTo) != g.NumEdges() {
					t.Fatalf("assignment shape: parts=%d len=%d", a.Parts, len(a.EdgeTo))
				}
				for i, p := range a.EdgeTo {
					if p < 0 || int(p) >= parts {
						t.Fatalf("edge %d assigned to %d of %d", i, p, parts)
					}
				}
			}
		})
	}
}

func TestValidation(t *testing.T) {
	g := randomGraph(t, 10, 20, 1)
	for _, s := range strategies() {
		if _, err := s.Partition(g, 0); err == nil {
			t.Errorf("%s accepted parts=0", s.Name())
		}
		if _, err := s.Partition(nil, 2); err == nil {
			t.Errorf("%s accepted nil graph", s.Name())
		}
	}
}

func TestHashSourceKeepsSourceTogether(t *testing.T) {
	g := randomGraph(t, 100, 1500, 2)
	a, err := HashSource{Seed: 9}.Partition(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make(map[graph.VertexID]int32)
	i := 0
	g.ForEachEdge(func(u, _ graph.VertexID) {
		if p, ok := partOf[u]; ok && p != a.EdgeTo[i] {
			t.Fatalf("source %d split across partitions %d and %d", u, p, a.EdgeTo[i])
		}
		partOf[u] = a.EdgeTo[i]
		i++
	})
}

func TestGreedyBeatsHashOnReplication(t *testing.T) {
	// On a clustered graph the greedy heuristic should cut fewer vertices
	// than random edge hashing.
	g, err := gen.Community(gen.CommunityConfig{N: 1000, Communities: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 8
	ah, err := HashEdge{Seed: 1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Greedy{}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	sh, sg := ComputeStats(g, ah), ComputeStats(g, ag)
	if sg.ReplicationFactor >= sh.ReplicationFactor {
		t.Errorf("greedy RF %.2f not below hash RF %.2f", sg.ReplicationFactor, sh.ReplicationFactor)
	}
	if sg.ReplicationFactor < 1 || sh.ReplicationFactor < 1 {
		t.Errorf("replication factors below 1: greedy %.2f hash %.2f", sg.ReplicationFactor, sh.ReplicationFactor)
	}
}

// TestReplicationFactorProperties: RF >= 1 and RF <= min(parts, ...) for any
// random graph and partition count; balance >= 1.
func TestReplicationFactorProperties(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := int(partsRaw%15) + 1
		n := rng.Intn(60) + 10
		m := rng.Intn(300) + 10
		g, err := gen.ErdosRenyi(n, m, uint64(seed)+1)
		if err != nil || g.NumEdges() == 0 {
			return true // degenerate, skip
		}
		for _, s := range strategies() {
			a, err := s.Partition(g, parts)
			if err != nil {
				return false
			}
			st := ComputeStats(g, a)
			if st.ReplicationFactor < 1 || st.ReplicationFactor > float64(parts) {
				return false
			}
			if st.Balance < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSinglePartitionReplicationIsOne(t *testing.T) {
	g := randomGraph(t, 50, 400, 6)
	for _, s := range strategies() {
		a, err := s.Partition(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := ComputeStats(g, a)
		if st.ReplicationFactor != 1 {
			t.Errorf("%s: RF on 1 partition = %v, want 1", s.Name(), st.ReplicationFactor)
		}
		if st.Balance != 1 {
			t.Errorf("%s: balance on 1 partition = %v, want 1", s.Name(), st.Balance)
		}
	}
}

func TestGreedyBeyond64Parts(t *testing.T) {
	// The bitset implementation supports arbitrary partition counts; the
	// heuristic must still beat random hashing at 100 parts.
	g, err := gen.Community(gen.CommunityConfig{N: 800, Communities: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Greedy{}.Partition(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Parts != 100 || len(ag.EdgeTo) != g.NumEdges() {
		t.Fatal("assignment malformed")
	}
	ah, err := HashEdge{Seed: 1}.Partition(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	sg, sh := ComputeStats(g, ag), ComputeStats(g, ah)
	if sg.ReplicationFactor >= sh.ReplicationFactor {
		t.Errorf("greedy RF %.2f not below hash RF %.2f at 100 parts",
			sg.ReplicationFactor, sh.ReplicationFactor)
	}
}

func TestDeterminism(t *testing.T) {
	g := randomGraph(t, 120, 900, 8)
	for _, s := range strategies() {
		a1, err := s.Partition(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := s.Partition(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.EdgeTo {
			if a1.EdgeTo[i] != a2.EdgeTo[i] {
				t.Fatalf("%s not deterministic at edge %d", s.Name(), i)
			}
		}
	}
}
