package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedRef is the oracle: full sort by (score desc, id asc), first k.
func sortedRef(k int, items []Item) []Item {
	cp := make([]Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return less(cp[j], cp[i]) })
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

func itemsEqual(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectTableCases(t *testing.T) {
	tests := []struct {
		name  string
		k     int
		items []Item
		want  []Item
	}{
		{"empty", 3, nil, nil},
		{"k zero", 0, []Item{{1, 1}}, nil},
		{"fewer than k", 5, []Item{{2, 0.5}, {1, 0.9}}, []Item{{1, 0.9}, {2, 0.5}}},
		{"exact k", 2, []Item{{3, 0.1}, {2, 0.5}, {1, 0.9}}, []Item{{1, 0.9}, {2, 0.5}}},
		{
			"ties broken by id ascending",
			3,
			[]Item{{9, 0.5}, {4, 0.5}, {7, 0.5}, {1, 0.1}},
			[]Item{{4, 0.5}, {7, 0.5}, {9, 0.5}},
		},
		{
			"negative scores",
			2,
			[]Item{{1, -3}, {2, -1}, {3, -2}},
			[]Item{{2, -1}, {3, -2}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Select(tt.k, tt.items)
			if !itemsEqual(got, tt.want) {
				t.Errorf("Select(%d) = %v, want %v", tt.k, got, tt.want)
			}
		})
	}
}

func TestSelectMatchesSortOracle(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%20) + 1
		n := int(nRaw)
		items := make([]Item, n)
		for i := range items {
			// Small ID and score spaces force frequent ties.
			items[i] = Item{ID: uint32(rng.Intn(30)), Score: float64(rng.Intn(5))}
		}
		return itemsEqual(Select(k, items), sortedRef(k, items))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectOrderIndependence(t *testing.T) {
	items := []Item{{5, 0.2}, {1, 0.9}, {7, 0.2}, {3, 0.9}, {2, 0.4}}
	want := Select(3, items)
	perm := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		shuffled := make([]Item, len(items))
		copy(shuffled, items)
		perm.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := Select(3, shuffled); !itemsEqual(got, want) {
			t.Fatalf("Select depends on input order: got %v want %v", got, want)
		}
	}
}

func TestCollectorIncremental(t *testing.T) {
	c := New(2)
	if c.Len() != 0 || c.K() != 2 {
		t.Fatal("fresh collector has wrong shape")
	}
	c.Push(1, 0.5)
	got := c.Result()
	if !itemsEqual(got, []Item{{1, 0.5}}) {
		t.Fatalf("after one push: %v", got)
	}
	c.Push(2, 0.9)
	c.Push(3, 0.1) // should be rejected once full of better items
	got = c.Result()
	if !itemsEqual(got, []Item{{2, 0.9}, {1, 0.5}}) {
		t.Fatalf("after three pushes: %v", got)
	}
	// Result must not consume: pushing still works.
	c.Push(4, 1.5)
	got = c.Result()
	if !itemsEqual(got, []Item{{4, 1.5}, {2, 0.9}}) {
		t.Fatalf("after fourth push: %v", got)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not empty collector")
	}
}

func TestBottom(t *testing.T) {
	items := []Item{{1, 0.9}, {2, 0.1}, {3, 0.5}, {4, 0.1}}
	got := Bottom(2, items)
	// Worst first; ties on 0.1 broken by id ascending.
	want := []Item{{2, 0.1}, {4, 0.1}}
	if !itemsEqual(got, want) {
		t.Fatalf("Bottom = %v, want %v", got, want)
	}
	if Bottom(0, items) != nil || Bottom(3, nil) != nil {
		t.Fatal("Bottom edge cases should return nil")
	}
}

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func BenchmarkCollectorPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	c := New(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Push(uint32(i), scores[i%len(scores)])
	}
}
