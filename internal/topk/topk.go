// Package topk implements bounded top-k selection with deterministic
// tie-breaking.
//
// It backs every argtopk operator in the paper: the final prediction list
// (Algorithm 1, line 2 and Algorithm 2, line 20), the k_local neighbour
// sampling (Algorithm 2, line 11), and the visit-count ranking of the
// random-walk comparator. Ordering is by score descending, ties broken by
// ascending identifier, so results never depend on insertion order.
package topk

import "slices"

// Item is a scored candidate.
type Item struct {
	ID    uint32
	Score float64
}

// less reports whether a ranks strictly below b in the top-k order
// (lower score, or equal score with a higher ID).
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Collector keeps the k best items seen so far using a bounded min-heap.
// The zero value is unusable; construct with New. A Collector is not safe
// for concurrent use.
type Collector struct {
	k    int
	heap []Item // min-heap: heap[0] is the current worst of the best
}

// New returns a Collector retaining the k highest-scored items.
// k must be positive.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	capHint := k
	if capHint > 1024 {
		capHint = 1024 // very large k: let the heap grow on demand
	}
	return &Collector{k: k, heap: make([]Item, 0, capHint)}
}

// K returns the collector's capacity.
func (c *Collector) K() int { return c.k }

// Len returns the number of items currently retained.
func (c *Collector) Len() int { return len(c.heap) }

// Push offers an item to the collector.
func (c *Collector) Push(id uint32, score float64) {
	it := Item{ID: id, Score: score}
	if len(c.heap) < c.k {
		c.heap = append(c.heap, it)
		c.up(len(c.heap) - 1)
		return
	}
	if !less(c.heap[0], it) {
		return // not better than the current worst
	}
	c.heap[0] = it
	c.down(0)
}

// Result returns the retained items ordered best-first and resets nothing:
// the collector can keep receiving items afterwards.
func (c *Collector) Result() []Item {
	return c.AppendResult(make([]Item, 0, len(c.heap)))
}

// AppendResult appends the retained items to dst ordered best-first and
// returns the extended slice, leaving the collector unchanged. It allocates
// nothing when dst has spare capacity, which makes it the extraction path of
// the engines' per-vertex hot loops (Result allocates a fresh slice per
// call).
func (c *Collector) AppendResult(dst []Item) []Item {
	start := len(dst)
	dst = append(dst, c.heap...)
	out := dst[start:]
	slices.SortFunc(out, func(a, b Item) int {
		if less(b, a) {
			return -1
		}
		if less(a, b) {
			return 1
		}
		return 0
	})
	return dst
}

// Reset empties the collector, retaining capacity.
func (c *Collector) Reset() { c.heap = c.heap[:0] }

func (c *Collector) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(c.heap[i], c.heap[parent]) {
			return
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

func (c *Collector) down(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(c.heap[l], c.heap[smallest]) {
			smallest = l
		}
		if r < n && less(c.heap[r], c.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.heap[i], c.heap[smallest] = c.heap[smallest], c.heap[i]
		i = smallest
	}
}

// Select returns the k highest-scored items of items, best-first, with the
// package's deterministic tie order. items is not modified.
func Select(k int, items []Item) []Item {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	c := New(k)
	for _, it := range items {
		c.Push(it.ID, it.Score)
	}
	return c.Result()
}

// Bottom returns the k lowest-scored items, worst-first (the mirror of
// Select). It backs the Γmin neighbour-selection policy of Section 5.6.
func Bottom(k int, items []Item) []Item {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	neg := make([]Item, len(items))
	for i, it := range items {
		neg[i] = Item{ID: it.ID, Score: -it.Score}
	}
	out := Select(k, neg)
	for i := range out {
		out[i].Score = -out[i].Score
	}
	return out
}
