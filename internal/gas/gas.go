// Package gas implements a Gather-Apply-Scatter graph-computation engine in
// the style of GraphLab/PowerGraph (Gonzalez et al., OSDI'12), the platform
// the paper builds SNAPLE on.
//
// Within this repository, gas is the substrate behind the "sim" execution
// backend (internal/engine): its partitioning, replication and cost
// accounting exist to reproduce the paper's distributed behaviour and cost
// model faithfully. When only the predictions matter, prefer the "local"
// backend, which runs the same algorithm over shared memory without any of
// this machinery — the two are bit-identical by construction.
//
// Edges are placed on partitions by a vertex-cut (internal/partition); a
// vertex whose edges span several partitions is replicated, with one replica
// designated master. A superstep (RunStep) then executes the three GAS
// phases with bulk-synchronous semantics:
//
//	gather  — every partition folds the user's Gather over its local edges,
//	          producing one partial sum per local vertex (Σ of eq. 3);
//	sum+apply — each master collects the partial sums of its vertex from the
//	          hosting partitions (cross-node transfers are charged to the
//	          cluster accountant) and runs Apply (eq. 4);
//	scatter — optionally, the new vertex data updates local edge state
//	          (eq. 5); then masters broadcast the fresh vertex data to all
//	          mirrors (also charged).
//
// The engine is generic over the vertex data V, edge data E and the gather
// type G, so one distributed graph can run a pipeline of steps with
// different gather types — exactly what SNAPLE's Algorithm 2 needs.
//
// Contracts programs must follow (all SNAPLE/BASELINE programs do):
//
//   - Sum(a, b) may mutate and return a, and may consume b; partial sums are
//     discarded after the step.
//   - Apply must *replace* reference-typed fields of V rather than mutating
//     their backing storage in place, because mirrors share that storage
//     until the next broadcast.
//   - Gather must treat both vertex arguments as read-only.
package gas

import (
	"errors"
	"fmt"

	"snaple/internal/graph"
)

// Direction selects which edges a program gathers over.
type Direction int

const (
	// Out gathers at each vertex u over its outgoing edges (u,v) — the
	// direction used by every program in the paper (eq. 3).
	Out Direction = iota
	// In gathers at each vertex v over its incoming edges (u,v).
	In
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Program is one GAS superstep specification. V is the vertex state, E the
// edge state, G the gather/partial-sum type.
type Program[V, E, G any] interface {
	// Direction reports which adjacency the gather phase walks.
	Direction() Direction
	// Gather produces the contribution of one edge to the gather sum of the
	// gathering endpoint (src for Out, dst for In). Returning false means
	// "no contribution" (the paper's empty-set returns).
	Gather(src, dst graph.VertexID, srcData, dstData *V, edge *E) (G, bool)
	// Sum folds two gather values (the user-defined generalized sum ⊕pre /
	// union of eq. 3). It may mutate and return a; b may be consumed.
	Sum(a, b G) G
	// Apply updates the vertex state from the completed gather sum. has is
	// false when no edge contributed (sum is then the zero G).
	Apply(u graph.VertexID, data *V, sum G, has bool)
	// VertexBytes estimates the serialized size of a vertex state; it prices
	// master->mirror synchronisation and the per-node memory footprint.
	VertexBytes(*V) int64
	// GatherBytes estimates the serialized size of a partial sum; it prices
	// mirror->master collection traffic.
	GatherBytes(G) int64
}

// Scatterer is an optional Program extension running the scatter phase
// (eq. 5): after apply, every local edge in the program's direction sees the
// refreshed data of its gathering endpoint and may update its edge state.
type Scatterer[V, E, G any] interface {
	Scatter(src, dst graph.VertexID, srcData *V, edge *E)
}

// Errors returned by the engine.
var (
	// ErrMismatchedParts reports an assignment whose partition count differs
	// from the cluster's.
	ErrMismatchedParts = errors.New("gas: assignment and cluster disagree on partition count")
	// ErrNeedInEdges reports an In-direction program on a graph built
	// without reverse adjacency. (The engine itself derives everything from
	// edge placement, so this currently cannot happen, but the sentinel is
	// kept for API stability of future in-gather optimisations.)
	ErrNeedInEdges = errors.New("gas: program gathers over in-edges but graph lacks them")
)
