package gas_test

import (
	"fmt"

	"snaple/internal/cluster"
	"snaple/internal/gas"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// pageRank is a classic GAS program (the PowerGraph paper's running
// example), included to document that the engine is not specific to link
// prediction: rank(v) = 0.15 + 0.85 * Σ_{u→v} rank(u)/outdeg(u),
// gathered over in-edges.
type pageRank struct {
	outDeg []int
}

func (pageRank) Direction() gas.Direction { return gas.In }

func (p pageRank) Gather(src, _ graph.VertexID, srcData, _ *float64, _ *struct{}) (float64, bool) {
	if p.outDeg[src] == 0 {
		return 0, false
	}
	return *srcData / float64(p.outDeg[src]), true
}

func (pageRank) Sum(a, b float64) float64 { return a + b }

func (pageRank) Apply(_ graph.VertexID, rank *float64, sum float64, _ bool) {
	*rank = 0.15 + 0.85*sum
}

func (pageRank) VertexBytes(*float64) int64 { return 8 }
func (pageRank) GatherBytes(float64) int64  { return 8 }

// ExampleRunStep runs thirty PageRank supersteps on a small graph distributed
// over two simulated nodes and prints the highest-ranked vertex.
func ExampleRunStep() {
	// A star pointing at vertex 0, plus a 2-cycle between 0 and 1.
	g := graph.MustFromEdges(5, []graph.Edge{
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}, {Src: 4, Dst: 0},
		{Src: 0, Dst: 1},
	})
	assign, err := partition.HashEdge{Seed: 1}.Partition(g, 4)
	if err != nil {
		panic(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeI()}, 4)
	if err != nil {
		panic(err)
	}
	dg, err := gas.Distribute[float64, struct{}](g, assign, cl, gas.Options{})
	if err != nil {
		panic(err)
	}
	dg.InitVertices(func(graph.VertexID) float64 { return 1 })

	prog := pageRank{outDeg: g.OutDegrees()}
	for i := 0; i < 30; i++ {
		if _, err := gas.RunStep[float64, struct{}, float64](dg, prog); err != nil {
			panic(err)
		}
	}

	best, bestRank := graph.VertexID(0), 0.0
	dg.ForEachMaster(func(v graph.VertexID, rank *float64) {
		if *rank > bestRank {
			best, bestRank = v, *rank
		}
	})
	fmt.Printf("vertex %d has the highest rank (%.2f)\n", best, bestRank)
	// Output: vertex 0 has the highest rank (2.37)
}
