package gas

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snaple/internal/cluster"
)

// StepStats reports one superstep's cost.
type StepStats struct {
	// WallSeconds is host wall-clock time for the step.
	WallSeconds float64
	// BusySeconds is the per-partition busy time (all phases).
	BusySeconds []float64
	// SimComputeSeconds estimates the step's compute makespan on the
	// simulated cluster (per-phase LPT bound over the configured cores).
	SimComputeSeconds float64
	// SimNetSeconds estimates the network drain time of the step's
	// cross-node traffic at the configured bandwidth.
	SimNetSeconds float64
	// CrossBytes/CrossMsgs/LocalBytes are the traffic deltas of this step.
	CrossBytes, CrossMsgs, LocalBytes int64
	// MemPeakBytes is the cluster-wide peak node memory observed so far.
	MemPeakBytes int64
}

// SimSeconds returns the simulated step latency (compute plus network).
func (s StepStats) SimSeconds() float64 { return s.SimComputeSeconds + s.SimNetSeconds }

// Add accumulates o into s (for multi-step programs).
func (s *StepStats) Add(o StepStats) {
	s.WallSeconds += o.WallSeconds
	if len(s.BusySeconds) < len(o.BusySeconds) {
		s.BusySeconds = append(s.BusySeconds, make([]float64, len(o.BusySeconds)-len(s.BusySeconds))...)
	}
	for i, b := range o.BusySeconds {
		s.BusySeconds[i] += b
	}
	s.SimComputeSeconds += o.SimComputeSeconds
	s.SimNetSeconds += o.SimNetSeconds
	s.CrossBytes += o.CrossBytes
	s.CrossMsgs += o.CrossMsgs
	s.LocalBytes += o.LocalBytes
	if o.MemPeakBytes > s.MemPeakBytes {
		s.MemPeakBytes = o.MemPeakBytes
	}
}

// runParallel executes fn(0..n-1) on up to workers goroutines.
func runParallel(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// chargedVertexBytes tracks how much vertex-state memory each partition has
// already charged to the cluster, so successive steps charge only deltas.
// It lives on the DistGraph but is engine-private.
type memLedger struct {
	chargedVert []int64
}

func (dg *DistGraph[V, E]) ledger() *memLedger {
	if dg.mem == nil {
		dg.mem = &memLedger{chargedVert: make([]int64, len(dg.parts))}
	}
	return dg.mem
}

// RunStep executes one GAS superstep of prog over dg. On memory exhaustion
// it returns the stats so far and an error wrapping
// cluster.ErrMemoryExhausted; the distributed state is then unusable for
// further steps.
func RunStep[V, E, G any](dg *DistGraph[V, E], prog Program[V, E, G]) (StepStats, error) {
	start := time.Now()
	cl := dg.cl
	nparts := len(dg.parts)
	dir := prog.Direction()
	led := dg.ledger()

	snap0 := cl.Snapshot()
	busy := make([]float64, nparts)
	busyA := make([]float64, nparts)
	busyB := make([]float64, nparts)
	busyC := make([]float64, nparts)

	// ---- Phase A: local partial gathers. ----
	//
	// Gather state is charged to the node budgets *incrementally* (in
	// flushChunk batches) and a budget overrun aborts every partition's
	// loop via a shared flag. BASELINE's neighbourhood shipping blows up
	// right here — where GraphLab ran out of memory too — and the early
	// abort keeps the simulated failure from exhausting the host for real.
	const flushChunk = 64 << 10
	partials := make([][]G, nparts)
	has := make([][]bool, nparts)
	gatherCharged := make([]int64, nparts)
	gatherErrs := make([]error, nparts)
	var aborted atomic.Bool
	runParallel(dg.workers, nparts, func(p int) {
		t0 := time.Now()
		pt := dg.parts[p]
		partial := make([]G, len(pt.globals))
		hs := make([]bool, len(pt.globals))
		var pending int64
		flush := func() bool {
			if pending == 0 {
				return true
			}
			err := cl.StoreMem(p, pending)
			gatherCharged[p] += pending
			pending = 0
			if err != nil {
				gatherErrs[p] = err
				aborted.Store(true)
				return false
			}
			return true
		}
		for i := range pt.edgeSrc {
			if aborted.Load() {
				break
			}
			si, di := pt.edgeSrc[i], pt.edgeDst[i]
			gi := si
			if dir == In {
				gi = di
			}
			gval, ok := prog.Gather(pt.globals[si], pt.globals[di], &pt.data[si], &pt.data[di], &pt.edges[i])
			if !ok {
				continue
			}
			pending += prog.GatherBytes(gval)
			if !hs[gi] {
				partial[gi], hs[gi] = gval, true
			} else {
				partial[gi] = prog.Sum(partial[gi], gval)
			}
			if pending >= flushChunk && !flush() {
				break
			}
		}
		flush()
		partials[p], has[p] = partial, hs
		busyA[p] = time.Since(t0).Seconds()
	})
	if aborted.Load() {
		st := dg.finishStats(start, snap0, busy, busyA, busyB, busyC)
		// Release the partially charged gather state before reporting.
		for p := 0; p < nparts; p++ {
			if gatherCharged[p] > 0 {
				_ = clStoreRelease(cl, p, gatherCharged[p])
			}
		}
		for p := 0; p < nparts; p++ {
			if gatherErrs[p] != nil {
				return st, fmt.Errorf("gather phase: %w", gatherErrs[p])
			}
		}
		return st, fmt.Errorf("gather phase: aborted without recorded cause")
	}

	// ---- Phase B: masters collect partials, sum, apply. ----
	runParallel(dg.workers, nparts, func(p int) {
		t0 := time.Now()
		pt := dg.parts[p]
		for li, isM := range pt.isMaster {
			if !isM {
				continue
			}
			sources := pt.gatherOut[li]
			if dir == In {
				sources = pt.gatherIn[li]
			}
			var acc G
			have := false
			for _, r := range sources {
				if !has[r.part][r.idx] {
					continue
				}
				contrib := partials[r.part][r.idx]
				if int(r.part) != p {
					cl.Transfer(int(r.part), p, prog.GatherBytes(contrib))
				}
				if !have {
					acc, have = contrib, true
				} else {
					acc = prog.Sum(acc, contrib)
				}
			}
			prog.Apply(pt.globals[li], &pt.data[li], acc, have)
		}
		busyB[p] = time.Since(t0).Seconds()
	})
	snapB := cl.Snapshot()

	// ---- Phase C: mirrors pull refreshed vertex data; then scatter. ----
	//
	// The refreshed vertex state (masters' apply output plus every mirror
	// copy) is re-charged incrementally as it is accounted, so replication
	// blow-ups — BASELINE's 2-hop state times the replication factor — trip
	// the budget close to its limit instead of after full materialisation.
	// The stale charge is released up front; the budget headroom freed is
	// transient and the recorded peak only ever grows.
	for p := 0; p < nparts; p++ {
		_ = clStoreRelease(cl, p, led.chargedVert[p])
		led.chargedVert[p] = 0
	}
	scatterer, hasScatter := any(prog).(Scatterer[V, E, G])
	vertErrs := make([]error, nparts)
	aborted.Store(false)
	runParallel(dg.workers, nparts, func(p int) {
		t0 := time.Now()
		pt := dg.parts[p]
		var pending int64
		flush := func() bool {
			if pending == 0 {
				return true
			}
			err := cl.StoreMem(p, pending)
			led.chargedVert[p] += pending
			pending = 0
			if err != nil {
				vertErrs[p] = err
				aborted.Store(true)
				return false
			}
			return true
		}
		for li := range pt.globals {
			if aborted.Load() {
				break
			}
			m := pt.master[li]
			if int(m.part) != p {
				src := &dg.parts[m.part].data[m.idx]
				cl.Transfer(int(m.part), p, prog.VertexBytes(src))
				pt.data[li] = *src
			}
			pending += prog.VertexBytes(&pt.data[li])
			if pending >= flushChunk && !flush() {
				break
			}
		}
		flush()
		if hasScatter && !aborted.Load() {
			for i := range pt.edgeSrc {
				si, di := pt.edgeSrc[i], pt.edgeDst[i]
				scatterer.Scatter(pt.globals[si], pt.globals[di], &pt.data[si], &pt.edges[i])
			}
		}
		busyC[p] = time.Since(t0).Seconds()
	})

	// Release the gather state (exactly what phase A charged) and surface
	// any broadcast-phase exhaustion.
	var memErr error
	for p := 0; p < nparts; p++ {
		if err := clStoreRelease(cl, p, gatherCharged[p]); err != nil && memErr == nil {
			memErr = err
		}
		if vertErrs[p] != nil && memErr == nil {
			memErr = fmt.Errorf("apply/broadcast phase: %w", vertErrs[p])
		}
	}

	st := dg.finishStats(start, snap0, busy, busyA, busyB, busyC)
	// Split simulated compute per phase: phases are barriers.
	st.SimComputeSeconds = cl.ComputeSeconds(busyA) + cl.ComputeSeconds(busyB) + cl.ComputeSeconds(busyC)
	st.SimNetSeconds = cl.NetSeconds(snap0, snapB) + cl.NetSeconds(snapB, cl.Snapshot())
	return st, memErr
}

// clStoreRelease releases n previously charged bytes from partition p's
// node. Releasing cannot newly exceed a budget, so any returned error is
// from a concurrent overrun and safe to surface.
func clStoreRelease(cl *cluster.Cluster, p int, n int64) error {
	if n == 0 {
		return nil
	}
	return cl.StoreMem(p, -n)
}

// finishStats assembles the common part of StepStats.
func (dg *DistGraph[V, E]) finishStats(start time.Time, snap0 cluster.Traffic, busy, busyA, busyB, busyC []float64) StepStats {
	after := dg.cl.Snapshot()
	for p := range busy {
		busy[p] = busyA[p] + busyB[p] + busyC[p]
	}
	return StepStats{
		WallSeconds:  time.Since(start).Seconds(),
		BusySeconds:  busy,
		CrossBytes:   after.CrossBytes - snap0.CrossBytes,
		CrossMsgs:    after.CrossMsgs - snap0.CrossMsgs,
		LocalBytes:   after.LocalBytes - snap0.LocalBytes,
		MemPeakBytes: after.MaxMemPeak(),
	}
}
