package gas

import (
	"fmt"
	"runtime"
	"sort"

	"snaple/internal/cluster"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/randx"
)

// gref points at the copy of a vertex inside a specific partition.
type gref struct {
	part int32
	idx  int32
}

// part is one partition's share of the distributed graph.
type part[V, E any] struct {
	id      int
	globals []graph.VertexID         // sorted global IDs of local vertices
	index   map[graph.VertexID]int32 // global -> local
	data    []V                      // vertex state, one per local vertex
	edges   []E                      // edge state, aligned with edgeSrc/edgeDst
	edgeSrc []int32                  // local source index per local edge
	edgeDst []int32                  // local target index per local edge

	master   []gref // per local vertex: location of its master copy
	isMaster []bool // per local vertex: this partition holds the master copy
	// Master-side collection lists, per local vertex (nil unless master):
	// the partitions that may produce gather partials for it, in ascending
	// partition order, and the mirrors to refresh after apply.
	gatherOut [][]gref
	gatherIn  [][]gref
	mirrors   [][]int32 // partition IDs holding replicas (excluding self)
}

// DistGraph is a graph distributed over a simulated cluster, ready to run
// GAS supersteps. Build one with Distribute.
type DistGraph[V, E any] struct {
	g       graph.View
	cl      *cluster.Cluster
	parts   []*part[V, E]
	workers int
	seed    uint64
	mem     *memLedger
}

// Options configures Distribute.
type Options struct {
	// Workers bounds the number of partitions processed concurrently.
	// Zero means GOMAXPROCS.
	Workers int
	// Seed drives the deterministic master selection among replicas.
	Seed uint64
}

// Distribute places g's edges on cl's partitions according to assign and
// builds the replica/master structures. The V and E states start as zero
// values; use InitVertices to set initial vertex state.
func Distribute[V, E any](g graph.View, assign partition.Assignment, cl *cluster.Cluster, opts Options) (*DistGraph[V, E], error) {
	if g == nil {
		return nil, fmt.Errorf("gas: nil graph")
	}
	if len(assign.EdgeTo) != g.NumEdges() {
		return nil, fmt.Errorf("gas: assignment covers %d edges, graph has %d", len(assign.EdgeTo), g.NumEdges())
	}
	if cl.Parts() != assign.Parts {
		return nil, fmt.Errorf("%w: assignment %d, cluster %d", ErrMismatchedParts, assign.Parts, cl.Parts())
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nparts := assign.Parts
	dg := &DistGraph[V, E]{g: g, cl: cl, workers: workers, seed: opts.Seed}
	dg.parts = make([]*part[V, E], nparts)
	for p := range dg.parts {
		dg.parts[p] = &part[V, E]{id: p}
	}

	// Pass 1: raw per-partition edge lists in global IDs.
	type rawEdge struct{ u, v graph.VertexID }
	rawEdges := make([][]rawEdge, nparts)
	{
		i := 0
		g.ForEachEdge(func(u, v graph.VertexID) {
			p := assign.EdgeTo[i]
			rawEdges[p] = append(rawEdges[p], rawEdge{u, v})
			i++
		})
	}

	// Pass 2: per-partition vertex tables and localized edges.
	for p, pt := range dg.parts {
		seen := make(map[graph.VertexID]struct{}, len(rawEdges[p]))
		for _, e := range rawEdges[p] {
			seen[e.u] = struct{}{}
			seen[e.v] = struct{}{}
		}
		pt.globals = make([]graph.VertexID, 0, len(seen))
		for v := range seen {
			pt.globals = append(pt.globals, v)
		}
		sort.Slice(pt.globals, func(i, j int) bool { return pt.globals[i] < pt.globals[j] })
		pt.index = make(map[graph.VertexID]int32, len(pt.globals))
		for i, v := range pt.globals {
			pt.index[v] = int32(i)
		}
		pt.data = make([]V, len(pt.globals))
		pt.edges = make([]E, len(rawEdges[p]))
		pt.edgeSrc = make([]int32, len(rawEdges[p]))
		pt.edgeDst = make([]int32, len(rawEdges[p]))
		// CSR order within the partition: edges arrive sorted by (u,v)
		// because ForEachEdge walks the global CSR.
		for i, e := range rawEdges[p] {
			pt.edgeSrc[i] = pt.index[e.u]
			pt.edgeDst[i] = pt.index[e.v]
		}
		pt.master = make([]gref, len(pt.globals))
		pt.isMaster = make([]bool, len(pt.globals))
	}

	// Pass 3: replica lists per vertex -> master election + mirror lists +
	// gather-source lists. Build (vertex, part) pairs sorted by vertex.
	type vp struct {
		v graph.VertexID
		p int32
	}
	pairs := make([]vp, 0)
	for p, pt := range dg.parts {
		for _, v := range pt.globals {
			pairs = append(pairs, vp{v, int32(p)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].p < pairs[j].p
	})

	// hasOut/hasIn: whether a vertex has gatherable edges in a partition.
	hasDir := func(pt *part[V, E]) (out, in []bool) {
		out = make([]bool, len(pt.globals))
		in = make([]bool, len(pt.globals))
		for i := range pt.edgeSrc {
			out[pt.edgeSrc[i]] = true
			in[pt.edgeDst[i]] = true
		}
		return out, in
	}
	outFlags := make([][]bool, nparts)
	inFlags := make([][]bool, nparts)
	for p, pt := range dg.parts {
		outFlags[p], inFlags[p] = hasDir(pt)
	}

	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].v == pairs[i].v {
			j++
		}
		v := pairs[i].v
		replicas := pairs[i:j] // ascending partition order
		masterPos := int(randx.Uint64n(uint64(len(replicas)), opts.Seed, uint64(v), 0xA5))
		mp := replicas[masterPos].p
		mpt := dg.parts[mp]
		mIdx := mpt.index[v]
		mpt.isMaster[mIdx] = true
		if mpt.gatherOut == nil {
			mpt.gatherOut = make([][]gref, len(mpt.globals))
			mpt.gatherIn = make([][]gref, len(mpt.globals))
			mpt.mirrors = make([][]int32, len(mpt.globals))
		}
		for _, r := range replicas {
			rpt := dg.parts[r.p]
			li := rpt.index[v]
			rpt.master[li] = gref{part: mp, idx: mIdx}
			if outFlags[r.p][li] {
				mpt.gatherOut[mIdx] = append(mpt.gatherOut[mIdx], gref{part: r.p, idx: li})
			}
			if inFlags[r.p][li] {
				mpt.gatherIn[mIdx] = append(mpt.gatherIn[mIdx], gref{part: r.p, idx: li})
			}
			if r.p != mp {
				mpt.mirrors[mIdx] = append(mpt.mirrors[mIdx], r.p)
			}
		}
		i = j
	}
	// Partitions that master no vertex still need non-nil master-side
	// slices for uniform access.
	for _, pt := range dg.parts {
		if pt.gatherOut == nil {
			pt.gatherOut = make([][]gref, len(pt.globals))
			pt.gatherIn = make([][]gref, len(pt.globals))
			pt.mirrors = make([][]int32, len(pt.globals))
		}
	}
	return dg, nil
}

// Graph returns the underlying topology.
func (dg *DistGraph[V, E]) Graph() graph.View { return dg.g }

// Cluster returns the cluster the graph is distributed over.
func (dg *DistGraph[V, E]) Cluster() *cluster.Cluster { return dg.cl }

// Parts returns the number of partitions.
func (dg *DistGraph[V, E]) Parts() int { return len(dg.parts) }

// ReplicationFactor returns the average number of replicas per non-isolated
// vertex, the key traffic driver of vertex-cut engines.
func (dg *DistGraph[V, E]) ReplicationFactor() float64 {
	replicas, vertices := 0, 0
	for _, pt := range dg.parts {
		replicas += len(pt.globals)
		for _, m := range pt.isMaster {
			if m {
				vertices++
			}
		}
	}
	if vertices == 0 {
		return 0
	}
	return float64(replicas) / float64(vertices)
}

// InitVertices sets the state of every replica of every vertex to fn(id).
// fn must be deterministic; it is invoked once per replica. No traffic is
// charged (this models the initial graph-load, which the paper's timings
// exclude).
func (dg *DistGraph[V, E]) InitVertices(fn func(graph.VertexID) V) {
	for _, pt := range dg.parts {
		for i, v := range pt.globals {
			pt.data[i] = fn(v)
		}
	}
}

// InitEdges sets every edge state to fn(u, v). fn must be deterministic.
func (dg *DistGraph[V, E]) InitEdges(fn func(u, v graph.VertexID) E) {
	for _, pt := range dg.parts {
		for i := range pt.edges {
			pt.edges[i] = fn(pt.globals[pt.edgeSrc[i]], pt.globals[pt.edgeDst[i]])
		}
	}
}

// ForEachMaster visits the authoritative copy of every vertex present in the
// distributed graph (vertices with no edges are absent), in ascending vertex
// order within each partition and ascending partition order across
// partitions. The pointer is valid only during the call.
func (dg *DistGraph[V, E]) ForEachMaster(fn func(graph.VertexID, *V)) {
	for _, pt := range dg.parts {
		for i, isM := range pt.isMaster {
			if isM {
				fn(pt.globals[i], &pt.data[i])
			}
		}
	}
}

// ForEachEdgeState visits every edge's state alongside its endpoints, in
// partition order. The pointer is valid only during the call.
func (dg *DistGraph[V, E]) ForEachEdgeState(fn func(u, v graph.VertexID, e *E)) {
	for _, pt := range dg.parts {
		for i := range pt.edges {
			fn(pt.globals[pt.edgeSrc[i]], pt.globals[pt.edgeDst[i]], &pt.edges[i])
		}
	}
}

// MasterData returns a pointer to the master copy of v's state, or nil if v
// is not present (no edges). Intended for tests and result extraction.
func (dg *DistGraph[V, E]) MasterData(v graph.VertexID) *V {
	for _, pt := range dg.parts {
		if li, ok := pt.index[v]; ok {
			m := pt.master[li]
			return &dg.parts[m.part].data[m.idx]
		}
	}
	return nil
}
