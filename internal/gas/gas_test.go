package gas

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"snaple/internal/cluster"
	"snaple/internal/gen"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// ---- test programs ----

// degProg counts the gathered edges of each vertex: G = int, V = int.
type degProg struct{ dir Direction }

func (p degProg) Direction() Direction { return p.dir }
func (degProg) Gather(_, _ graph.VertexID, _, _ *int, _ *struct{}) (int, bool) {
	return 1, true
}
func (degProg) Sum(a, b int) int                                { return a + b }
func (degProg) Apply(_ graph.VertexID, d *int, sum int, _ bool) { *d = sum }
func (degProg) VertexBytes(*int) int64                          { return 8 }
func (degProg) GatherBytes(int) int64                           { return 8 }

// nbrProg collects sorted out-neighbour lists: V = []graph.VertexID.
type nbrProg struct{}

func (nbrProg) Direction() Direction { return Out }
func (nbrProg) Gather(_, dst graph.VertexID, _, _ *[]graph.VertexID, _ *struct{}) ([]graph.VertexID, bool) {
	return []graph.VertexID{dst}, true
}
func (nbrProg) Sum(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) }
func (nbrProg) Apply(_ graph.VertexID, d *[]graph.VertexID, sum []graph.VertexID, has bool) {
	if !has {
		*d = nil
		return
	}
	out := append([]graph.VertexID(nil), sum...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	*d = out
}
func (nbrProg) VertexBytes(v *[]graph.VertexID) int64 { return 24 + 4*int64(len(*v)) }
func (nbrProg) GatherBytes(g []graph.VertexID) int64  { return 4 * int64(len(g)) }

// scatterProg counts out-degrees like degProg but over int edge state, and
// writes the refreshed source degree onto each edge in the scatter phase.
type scatterProg struct{}

func (scatterProg) Direction() Direction { return Out }
func (scatterProg) Gather(_, _ graph.VertexID, _, _ *int, _ *int) (int, bool) {
	return 1, true
}
func (scatterProg) Sum(a, b int) int                                  { return a + b }
func (scatterProg) Apply(_ graph.VertexID, d *int, sum int, _ bool)   { *d = sum }
func (scatterProg) VertexBytes(*int) int64                            { return 8 }
func (scatterProg) GatherBytes(int) int64                             { return 8 }
func (scatterProg) Scatter(_, _ graph.VertexID, srcData *int, e *int) { *e = *srcData }

var (
	_ Program[int, struct{}, int]                           = degProg{}
	_ Program[[]graph.VertexID, struct{}, []graph.VertexID] = nbrProg{}
	_ Program[int, int, int]                                = scatterProg{}
	_ Scatterer[int, int, int]                              = scatterProg{}
)

// ---- helpers ----

func testGraph(t testing.TB, n, m int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := gen.ErdosRenyi(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func distribute[V, E any](t testing.TB, g *graph.Digraph, parts, nodes int, budget int64) *DistGraph[V, E] {
	t.Helper()
	assign, err := partition.HashEdge{Seed: 1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, Spec: cluster.TypeI(), MemBudgetBytes: budget}, parts)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute[V, E](g, assign, cl, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

// ---- tests ----

func TestOutDegreeAcrossPartitionCounts(t *testing.T) {
	g := testGraph(t, 150, 1200, 2)
	for _, parts := range []int{1, 2, 3, 8} {
		dg := distribute[int, struct{}](t, g, parts, 2, 0)
		if _, err := RunStep[int, struct{}, int](dg, degProg{dir: Out}); err != nil {
			t.Fatal(err)
		}
		count := 0
		dg.ForEachMaster(func(v graph.VertexID, d *int) {
			if *d != g.OutDegree(v) {
				t.Fatalf("parts=%d: degree(%d) = %d, want %d", parts, v, *d, g.OutDegree(v))
			}
			count++
		})
		if count == 0 {
			t.Fatal("no masters visited")
		}
	}
}

func TestInDegree(t *testing.T) {
	g, err := graph.NewBuilder(4).WithInEdges(true).Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	g2 := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 3, Dst: 1}, {Src: 1, Dst: 0}})
	dg := distribute[int, struct{}](t, g2, 3, 2, 0)
	if _, err := RunStep[int, struct{}, int](dg, degProg{dir: In}); err != nil {
		t.Fatal(err)
	}
	wantIn := map[graph.VertexID]int{0: 1, 1: 3, 2: 0, 3: 0}
	dg.ForEachMaster(func(v graph.VertexID, d *int) {
		if *d != wantIn[v] {
			t.Errorf("in-degree(%d) = %d, want %d", v, *d, wantIn[v])
		}
	})
}

func TestNeighborCollection(t *testing.T) {
	g := testGraph(t, 80, 600, 5)
	dg := distribute[[]graph.VertexID, struct{}](t, g, 4, 2, 0)
	if _, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, nbrProg{}); err != nil {
		t.Fatal(err)
	}
	dg.ForEachMaster(func(v graph.VertexID, d *[]graph.VertexID) {
		want := g.OutNeighbors(v)
		if len(want) == 0 && len(*d) == 0 {
			return
		}
		if !reflect.DeepEqual(*d, append([]graph.VertexID(nil), want...)) {
			t.Fatalf("neighbours(%d) = %v, want %v", v, *d, want)
		}
	})
}

func TestMirrorsSeeRefreshedData(t *testing.T) {
	// Two chained steps: first collect neighbour lists, then gather the
	// *sizes* of the neighbours' lists. The second step reads Dv produced by
	// the first step on whatever partition the edge lives, so it exercises
	// the master->mirror broadcast.
	g := testGraph(t, 60, 500, 9)
	dg := distribute[[]graph.VertexID, struct{}](t, g, 5, 3, 0)
	if _, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, nbrProg{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, sumNbrSizesProg{}); err != nil {
		t.Fatal(err)
	}
	dg.ForEachMaster(func(v graph.VertexID, d *[]graph.VertexID) {
		var want int
		for _, w := range g.OutNeighbors(v) {
			want += g.OutDegree(w)
		}
		if len(*d) != want {
			t.Fatalf("vertex %d: sum of neighbour degrees = %d, want %d", v, len(*d), want)
		}
	})
}

// sumNbrSizesProg encodes the summed neighbour-list sizes as the length of
// the vertex's slice (reusing V = []graph.VertexID to avoid another type).
type sumNbrSizesProg struct{}

func (sumNbrSizesProg) Direction() Direction { return Out }
func (sumNbrSizesProg) Gather(_, _ graph.VertexID, _, dstData *[]graph.VertexID, _ *struct{}) ([]graph.VertexID, bool) {
	return make([]graph.VertexID, len(*dstData)), true
}
func (sumNbrSizesProg) Sum(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) }
func (sumNbrSizesProg) Apply(_ graph.VertexID, d *[]graph.VertexID, sum []graph.VertexID, _ bool) {
	*d = sum
}
func (sumNbrSizesProg) VertexBytes(v *[]graph.VertexID) int64 { return 24 + 4*int64(len(*v)) }
func (sumNbrSizesProg) GatherBytes(g []graph.VertexID) int64  { return 4 * int64(len(g)) }

func TestScatterUpdatesEdgeState(t *testing.T) {
	g := testGraph(t, 40, 300, 3)
	assign, err := partition.HashEdge{Seed: 2}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeI()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute[int, int](g, assign, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStep[int, int, int](dg, scatterProg{}); err != nil {
		t.Fatal(err)
	}
	dg.ForEachEdgeState(func(u, _ graph.VertexID, e *int) {
		if *e != g.OutDegree(u) {
			t.Fatalf("edge state from %d = %d, want %d", u, *e, g.OutDegree(u))
		}
	})
}

func TestSinglePartitionHasNoCrossTraffic(t *testing.T) {
	g := testGraph(t, 100, 800, 4)
	dg := distribute[int, struct{}](t, g, 1, 1, 0)
	st, err := RunStep[int, struct{}, int](dg, degProg{dir: Out})
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossBytes != 0 || st.CrossMsgs != 0 {
		t.Errorf("cross traffic on one partition: %d bytes %d msgs", st.CrossBytes, st.CrossMsgs)
	}
	if dg.ReplicationFactor() != 1 {
		t.Errorf("RF = %v, want 1", dg.ReplicationFactor())
	}
}

func TestCrossNodeTrafficCharged(t *testing.T) {
	g := testGraph(t, 100, 800, 4)
	dg := distribute[int, struct{}](t, g, 8, 4, 0)
	st, err := RunStep[int, struct{}, int](dg, degProg{dir: Out})
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossBytes == 0 || st.CrossMsgs == 0 {
		t.Error("expected cross-node traffic on 8 partitions over 4 nodes")
	}
	if st.SimNetSeconds <= 0 {
		t.Error("expected positive simulated network time")
	}
	if dg.ReplicationFactor() <= 1 {
		t.Errorf("RF = %v, want > 1", dg.ReplicationFactor())
	}
}

func TestMemoryExhaustion(t *testing.T) {
	g := testGraph(t, 200, 3000, 6)
	dg := distribute[[]graph.VertexID, struct{}](t, g, 4, 2, 64) // 64-byte budget: hopeless
	_, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, nbrProg{})
	if !errors.Is(err, cluster.ErrMemoryExhausted) {
		t.Fatalf("want ErrMemoryExhausted, got %v", err)
	}
}

func TestMemoryAccountingReleasesGatherState(t *testing.T) {
	g := testGraph(t, 100, 700, 8)
	dg := distribute[int, struct{}](t, g, 2, 1, 0)
	// Step 1 establishes the vertex state; step 2 is the first step whose
	// peak includes both resident vertex data and transient gather state.
	for i := 0; i < 2; i++ {
		if _, err := RunStep[int, struct{}, int](dg, degProg{dir: Out}); err != nil {
			t.Fatal(err)
		}
	}
	peakAfterTwo := dg.Cluster().Snapshot().MaxMemPeak()
	for i := 0; i < 3; i++ {
		if _, err := RunStep[int, struct{}, int](dg, degProg{dir: Out}); err != nil {
			t.Fatal(err)
		}
	}
	// Identical steps release their gather state: the peak must not grow.
	if peak := dg.Cluster().Snapshot().MaxMemPeak(); peak != peakAfterTwo {
		t.Errorf("peak grew across identical steps: %d -> %d", peakAfterTwo, peak)
	}
}

func TestResultsIndependentOfPartitioning(t *testing.T) {
	g := testGraph(t, 120, 1000, 10)
	collect := func(parts int, strat partition.Strategy) map[graph.VertexID][]graph.VertexID {
		assign, err := strat.Partition(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeI()}, parts)
		if err != nil {
			t.Fatal(err)
		}
		dg, err := Distribute[[]graph.VertexID, struct{}](g, assign, cl, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, nbrProg{}); err != nil {
			t.Fatal(err)
		}
		out := make(map[graph.VertexID][]graph.VertexID)
		dg.ForEachMaster(func(v graph.VertexID, d *[]graph.VertexID) {
			out[v] = append([]graph.VertexID(nil), *d...)
		})
		return out
	}
	ref := collect(1, partition.HashEdge{Seed: 1})
	for _, parts := range []int{2, 5} {
		for _, strat := range []partition.Strategy{partition.HashEdge{Seed: 9}, partition.Greedy{}, partition.HashSource{Seed: 4}} {
			got := collect(parts, strat)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("results differ for parts=%d strategy=%s", parts, strat.Name())
			}
		}
	}
}

func TestDistributeValidation(t *testing.T) {
	g := testGraph(t, 10, 40, 1)
	assign, err := partition.HashEdge{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	clBad, err := cluster.New(cluster.Config{Nodes: 1, Spec: cluster.TypeI()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distribute[int, struct{}](g, assign, clBad, Options{}); !errors.Is(err, ErrMismatchedParts) {
		t.Errorf("want ErrMismatchedParts, got %v", err)
	}
	if _, err := Distribute[int, struct{}](nil, assign, clBad, Options{}); err == nil {
		t.Error("accepted nil graph")
	}
	short := partition.Assignment{Parts: 3, EdgeTo: make([]int32, 1)}
	if _, err := Distribute[int, struct{}](g, short, clBad, Options{}); err == nil {
		t.Error("accepted truncated assignment")
	}
}

func TestMasterData(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	dg := distribute[int, struct{}](t, g, 2, 1, 0)
	if _, err := RunStep[int, struct{}, int](dg, degProg{dir: Out}); err != nil {
		t.Fatal(err)
	}
	if d := dg.MasterData(0); d == nil || *d != 1 {
		t.Errorf("MasterData(0) = %v", d)
	}
	if d := dg.MasterData(4); d != nil {
		t.Error("MasterData of isolated vertex should be nil")
	}
}

func TestInitVerticesAndEdges(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	assign, err := partition.HashEdge{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: 1, Spec: cluster.TypeI()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute[int, int](g, assign, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dg.InitVertices(func(v graph.VertexID) int { return int(v) * 10 })
	dg.InitEdges(func(u, v graph.VertexID) int { return int(u)*100 + int(v) })
	if d := dg.MasterData(2); d == nil || *d != 20 {
		t.Errorf("init vertex 2 = %v", d)
	}
	found := 0
	dg.ForEachEdgeState(func(u, v graph.VertexID, e *int) {
		if *e != int(u)*100+int(v) {
			t.Errorf("edge (%d,%d) state = %d", u, v, *e)
		}
		found++
	})
	if found != 2 {
		t.Errorf("visited %d edges, want 2", found)
	}
}

func TestStepStatsAdd(t *testing.T) {
	a := StepStats{WallSeconds: 1, BusySeconds: []float64{1}, SimComputeSeconds: 2, SimNetSeconds: 1, CrossBytes: 10, MemPeakBytes: 5}
	b := StepStats{WallSeconds: 2, BusySeconds: []float64{3, 4}, SimComputeSeconds: 1, SimNetSeconds: 0.5, CrossBytes: 7, MemPeakBytes: 3}
	a.Add(b)
	if a.WallSeconds != 3 || a.CrossBytes != 17 || a.MemPeakBytes != 5 {
		t.Errorf("Add result: %+v", a)
	}
	if len(a.BusySeconds) != 2 || a.BusySeconds[0] != 4 || a.BusySeconds[1] != 4 {
		t.Errorf("busy merge: %v", a.BusySeconds)
	}
	if a.SimSeconds() != 4.5 {
		t.Errorf("SimSeconds = %v", a.SimSeconds())
	}
}

func TestDirectionString(t *testing.T) {
	if Out.String() != "out" || In.String() != "in" {
		t.Error("Direction strings wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should still render")
	}
}
