package gas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snaple/internal/cluster"
	"snaple/internal/gen"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// TestDegreeProgramPropertyAcrossRandomDeployments: for arbitrary random
// graphs, partition counts, node counts and strategies, one superstep of the
// degree program must reproduce every out-degree exactly. This is the
// engine's core correctness property (partial gathers + master collection +
// broadcast compose to the full gather of eq. 3).
func TestDegreeProgramPropertyAcrossRandomDeployments(t *testing.T) {
	f := func(seed int64, partsRaw, nodesRaw, stratRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 5
		m := rng.Intn(500) + 5
		g, err := gen.ErdosRenyi(n, m, uint64(seed)+99)
		if err != nil {
			return false
		}
		parts := int(partsRaw%12) + 1
		nodes := int(nodesRaw%4) + 1
		var strat partition.Strategy
		switch stratRaw % 3 {
		case 0:
			strat = partition.HashEdge{Seed: uint64(seed)}
		case 1:
			strat = partition.HashSource{Seed: uint64(seed)}
		default:
			strat = partition.Greedy{}
		}
		assign, err := strat.Partition(g, parts)
		if err != nil {
			return false
		}
		cl, err := cluster.New(cluster.Config{Nodes: nodes, Spec: cluster.TypeI()}, parts)
		if err != nil {
			return false
		}
		dg, err := Distribute[int, struct{}](g, assign, cl, Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		if _, err := RunStep[int, struct{}, int](dg, degProg{dir: Out}); err != nil {
			return false
		}
		ok := true
		covered := 0
		dg.ForEachMaster(func(v graph.VertexID, d *int) {
			if *d != g.OutDegree(v) {
				ok = false
			}
			covered++
		})
		// Every vertex touched by at least one edge must have a master.
		touched := map[graph.VertexID]bool{}
		g.ForEachEdge(func(u, v graph.VertexID) { touched[u] = true; touched[v] = true })
		return ok && covered == len(touched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReplicationFactorMatchesPartitionStats: the engine's replication factor
// must equal the partitioner's own accounting of the same assignment.
func TestReplicationFactorMatchesPartitionStats(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		g, err := gen.ErdosRenyi(60, 400, uint64(seed)+7)
		if err != nil {
			return false
		}
		parts := int(partsRaw%8) + 1
		assign, err := partition.HashEdge{Seed: uint64(seed)}.Partition(g, parts)
		if err != nil {
			return false
		}
		cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeI()}, parts)
		if err != nil {
			return false
		}
		dg, err := Distribute[int, struct{}](g, assign, cl, Options{})
		if err != nil {
			return false
		}
		st := partition.ComputeStats(g, assign)
		diff := dg.ReplicationFactor() - st.ReplicationFactor
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTrafficConservation: bytes received must equal bytes sent, per
// snapshot, under arbitrary step sequences.
func TestTrafficConservation(t *testing.T) {
	g := testGraph(t, 90, 700, 12)
	dg := distribute[[]graph.VertexID, struct{}](t, g, 6, 3, 0)
	for i := 0; i < 3; i++ {
		if _, err := RunStep[[]graph.VertexID, struct{}, []graph.VertexID](dg, nbrProg{}); err != nil {
			t.Fatal(err)
		}
	}
	tr := dg.Cluster().Snapshot()
	var in, out int64
	for n := range tr.NodeIn {
		in += tr.NodeIn[n]
		out += tr.NodeOut[n]
	}
	if in != out {
		t.Errorf("traffic not conserved: in=%d out=%d", in, out)
	}
	if in != tr.CrossBytes {
		t.Errorf("per-node sums (%d) disagree with total cross bytes (%d)", in, tr.CrossBytes)
	}
}
