package eval

import (
	"fmt"
	"io"

	"snaple/internal/graph"
)

// Figure6CDF is one dataset's out-degree CDF (panels a-c of Figure 6).
type Figure6CDF struct {
	Dataset string
	Points  []graph.CDFPoint
}

// Figure6Row is one point of panel d: recall under a truncation threshold,
// normalised to the recall at thrΓ = 10.
type Figure6Row struct {
	Dataset        string
	ThrGamma       int
	Recall         float64
	ImprovementPct float64 // 100 * (recall/recall@10 - 1)
	// FracTruncated is the fraction of vertices whose degree exceeds the
	// threshold (the minority actually affected, Section 5.5).
	FracTruncated float64
}

// Figure6 reproduces Figure 6: degree CDFs of the three large analogs and
// the relative recall improvement as thrΓ grows from 10 to 100 (linearSum,
// klocal = 80).
type Figure6 struct {
	CDFs []Figure6CDF
	Rows []Figure6Row
}

// figure6Thresholds are the thrΓ values the paper sweeps.
func figure6Thresholds() []int { return []int{10, 20, 40, 80, 100} }

// RunFigure6 executes the truncation study.
func RunFigure6(opts Options) (*Figure6, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	fig := &Figure6{}
	cdfAt := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

	for _, name := range []string{"orkut", "livejournal", "twitter-rv"} {
		split, g, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		fig.CDFs = append(fig.CDFs, Figure6CDF{
			Dataset: name,
			Points:  graph.OutDegreeCDF(g, append([]int(nil), cdfAt...)),
		})
		var recallAt10 float64
		for _, thr := range figure6Thresholds() {
			cfg, err := snapleConfig("linearSum", thr, 80, opts.Seed)
			if err != nil {
				return nil, err
			}
			res, err := runSnaple(opts, split.Train, dep, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig6: %s thr=%d: %w", name, thr, err)
			}
			rec := Recall(res.Pred, split)
			if thr == 10 {
				recallAt10 = rec
			}
			row := Figure6Row{
				Dataset:       name,
				ThrGamma:      thr,
				Recall:        rec,
				FracTruncated: graph.FractionTruncated(split.Train, thr),
			}
			if recallAt10 > 0 {
				row.ImprovementPct = 100 * (rec/recallAt10 - 1)
			}
			fig.Rows = append(fig.Rows, row)
			opts.logf("fig6: %s thr=%d recall=%.3f (+%.1f%%) truncated=%.3f",
				name, thr, rec, row.ImprovementPct, row.FracTruncated)
		}
	}
	return fig, nil
}

// Fprint renders the CDF panels and the improvement panel.
func (f *Figure6) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 6a-c: out-degree CDFs")
	for _, c := range f.CDFs {
		fmt.Fprintf(w, "%-14s", c.Dataset)
		for _, p := range c.Points {
			fmt.Fprintf(w, " %d:%.3f", p.Degree, p.Fraction)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nFigure 6d: recall improvement vs thrΓ (baseline thrΓ=10, linearSum, klocal=80)")
	fmt.Fprintf(w, "%-14s %-6s %-8s %-12s %-10s\n", "dataset", "thrΓ", "recall", "improve(%)", "truncated")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-14s %-6d %-8.3f %-12.1f %-10.3f\n",
			r.Dataset, r.ThrGamma, r.Recall, r.ImprovementPct, r.FracTruncated)
	}
}
