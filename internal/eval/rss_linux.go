//go:build linux

package eval

import (
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size (VmHWM from
// /proc/self/status) — the OS's view of memory, which counts faulted-in
// mmap'd pages and every loader copy, unlike the Go allocator's counters.
// It is monotone over the process lifetime and 0 when the probe fails.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
