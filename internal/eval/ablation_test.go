package eval

import (
	"strings"
	"testing"
)

func TestRunAlphaSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, err := RunAlphaSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("want 6 alpha points, got %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.Recall < 0 || r.Recall > 1 {
			t.Errorf("alpha=%v recall=%v out of range", r.Alpha, r.Recall)
		}
	}
	var sb strings.Builder
	a.Fprint(&sb)
	if !strings.Contains(sb.String(), "alpha") {
		t.Error("render missing header")
	}
}

func TestRunPartitionAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p, err := RunPartitionAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(p.Rows))
	}
	byName := map[string]PartitionRow{}
	for _, r := range p.Rows {
		byName[r.Strategy] = r
		if r.ReplicationFactor < 1 {
			t.Errorf("%s: RF %v < 1", r.Strategy, r.ReplicationFactor)
		}
	}
	// The answer must not depend on placement.
	first := p.Rows[0].Recall
	for _, r := range p.Rows {
		if r.Recall != first {
			t.Errorf("recall varies with partitioning: %v vs %v", r.Recall, first)
		}
	}
	// Greedy cuts fewer vertices than random edge hashing on clustered
	// graphs, and lower RF should not move more bytes.
	if byName["greedy"].ReplicationFactor >= byName["hash-edge"].ReplicationFactor {
		t.Errorf("greedy RF %.2f not below hash-edge RF %.2f",
			byName["greedy"].ReplicationFactor, byName["hash-edge"].ReplicationFactor)
	}
}

func TestRunKHopAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	k, err := RunKHopAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(k.Rows))
	}
	// 3-hop costs more than 2-hop at the same klocal.
	cost := map[[2]int]float64{}
	for _, r := range k.Rows {
		cost[[2]int{r.KLocal, r.Paths}] = r.Seconds
	}
	slower := 0
	for _, klocal := range []int{3, 5, 10} {
		if cost[[2]int{klocal, 3}] > cost[[2]int{klocal, 2}] {
			slower++
		}
	}
	if slower < 2 {
		t.Errorf("3-hop was faster than 2-hop at %d of 3 klocal settings", 3-slower)
	}
}
