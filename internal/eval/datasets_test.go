package eval

import (
	"testing"

	"snaple/internal/graph"
)

func TestDatasetRegistry(t *testing.T) {
	names := DatasetNames()
	want := []string{"gowalla", "pokec", "livejournal", "orkut", "twitter-rv"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d datasets, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("dataset %d = %q, want %q (Table 4 order)", i, names[i], n)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDatasetGeneration(t *testing.T) {
	const scale = 0.25
	sizes := make(map[string]int)
	for _, name := range DatasetNames() {
		ds, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ds.Generate(scale, 9)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		sizes[name] = g.NumEdges()
		// Undirected analogs must be symmetric.
		if ds.Symmetric {
			bad := 0
			g.ForEachEdge(func(u, v graph.VertexID) {
				if !g.HasEdge(v, u) {
					bad++
				}
			})
			if bad > 0 {
				t.Errorf("%s: %d asymmetric edges in symmetric analog", name, bad)
			}
		}
	}
	// Edge-count ordering matches Table 4: gowalla < pokec < livejournal <
	// orkut < twitter-rv.
	order := DatasetNames()
	for i := 1; i < len(order); i++ {
		if sizes[order[i]] <= sizes[order[i-1]] {
			t.Errorf("edge ordering violated: %s (%d) <= %s (%d)",
				order[i], sizes[order[i]], order[i-1], sizes[order[i-1]])
		}
	}
}

func TestDatasetScaleValidation(t *testing.T) {
	ds, err := DatasetByName("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Generate(0, 1); err == nil {
		t.Error("scale=0 accepted")
	}
	// Tiny scales clamp to a floor instead of degenerating.
	g, err := ds.Generate(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 200 {
		t.Errorf("tiny scale produced %d vertices, want >= 200", g.NumVertices())
	}
}

func TestDatasetDeterminism(t *testing.T) {
	ds, err := DatasetByName("pokec")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ds.Generate(0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ds.Generate(0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Error("same seed produced different analogs")
	}
	c, err := ds.Generate(0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() == c.NumEdges() && a.NumVertices() == c.NumVertices() {
		// Same shape is possible; compare edges for a stronger check.
		same := true
		ae, ce := a.Edges(), c.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical analogs")
		}
	}
}

func TestDegreeTailsAreHeavy(t *testing.T) {
	// The analogs' raison d'être: heavy-tailed out-degrees like Figure 6a-c.
	for _, name := range []string{"livejournal", "orkut", "twitter-rv"} {
		ds, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ds.Generate(0.25, 13)
		if err != nil {
			t.Fatal(err)
		}
		s := graph.ComputeStats(g)
		if float64(s.MaxOutDegree) < 5*s.AvgOutDegree {
			t.Errorf("%s: max degree %d vs avg %.1f — tail too light",
				name, s.MaxOutDegree, s.AvgOutDegree)
		}
	}
}
