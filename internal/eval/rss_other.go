//go:build !linux

package eval

// PeakRSSBytes reports 0: no peak-RSS probe on this platform. Callers and
// the benchcheck gate treat 0 as "not measured".
func PeakRSSBytes() int64 { return 0 }
