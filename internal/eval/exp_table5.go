package eval

import (
	"fmt"
	"io"
)

// Table5Row is one line of Table 5: a system/configuration evaluated on one
// dataset.
type Table5Row struct {
	Dataset  string
	System   string // "BASELINE" or a Table 3 score name
	ThrGamma int    // 0 = ∞
	KLocal   int    // 0 = ∞
	Recall   float64
	Seconds  float64 // simulated cluster seconds
	// Gain and Speedup compare against the dataset's BASELINE row
	// (1.0 for the baseline itself).
	Gain    float64
	Speedup float64
}

// Table5 reproduces Table 5: BASELINE against 12 SNAPLE configurations on
// gowalla, pokec and livejournal, on the 80-core type-II deployment.
type Table5 struct {
	Deployment Deployment
	Datasets   []string
	Rows       []Table5Row
}

// Table5Configs returns the paper's 12 SNAPLE configurations: the scores
// linearSum, counter and PPR crossed with thrΓ and klocal ∈ {∞, 20}.
func Table5Configs() []struct {
	Score       string
	Thr, KLocal int
} {
	var out []struct {
		Score       string
		Thr, KLocal int
	}
	for _, lim := range [][2]int{{0, 0}, {20, 0}, {0, 20}, {20, 20}} {
		for _, score := range []string{"linearSum", "counter", "PPR"} {
			out = append(out, struct {
				Score       string
				Thr, KLocal int
			}{score, lim[0], lim[1]})
		}
	}
	return out
}

// RunTable5 executes the comparison.
func RunTable5(opts Options) (*Table5, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	t5 := &Table5{Deployment: dep, Datasets: []string{"gowalla", "pokec", "livejournal"}}

	for _, name := range t5.Datasets {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		opts.logf("table5: %s train=%s removed=%d", name, split.Train, split.NumRemoved)

		base, err := runBaseline(opts, split.Train, dep, 5, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("table5: baseline on %s: %w", name, err)
		}
		baseRecall := Recall(base.Pred, split)
		baseSeconds := base.Total.SimSeconds()
		t5.Rows = append(t5.Rows, Table5Row{
			Dataset: name, System: "BASELINE",
			Recall: baseRecall, Seconds: baseSeconds, Gain: 1, Speedup: 1,
		})
		opts.logf("table5: %s BASELINE recall=%.3f sim=%.2fs", name, baseRecall, baseSeconds)

		for _, c := range Table5Configs() {
			cfg, err := snapleConfig(c.Score, c.Thr, c.KLocal, opts.Seed)
			if err != nil {
				return nil, err
			}
			res, err := runSnaple(opts, split.Train, dep, cfg)
			if err != nil {
				return nil, fmt.Errorf("table5: %s %s: %w", name, c.Score, err)
			}
			rec := Recall(res.Pred, split)
			sec := res.Total.SimSeconds()
			row := Table5Row{
				Dataset: name, System: c.Score, ThrGamma: c.Thr, KLocal: c.KLocal,
				Recall: rec, Seconds: sec,
			}
			if baseRecall > 0 {
				row.Gain = rec / baseRecall
			}
			if sec > 0 {
				row.Speedup = baseSeconds / sec
			}
			t5.Rows = append(t5.Rows, row)
			opts.logf("table5: %s %s thr=%s klocal=%s recall=%.3f (%.1fx) sim=%.2fs (%.1fx)",
				name, c.Score, inf(c.Thr), inf(c.KLocal), rec, row.Gain, sec, row.Speedup)
		}
	}
	return t5, nil
}

// Fprint renders the table in the paper's layout (datasets as column
// groups, configurations as rows).
func (t *Table5) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Table 5: SNAPLE vs BASELINE on %s (gains/speedups in brackets)\n", t.Deployment)
	fmt.Fprintf(w, "%-34s", "score(u,z)")
	for _, d := range t.Datasets {
		fmt.Fprintf(w, " | %-22s", d)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-34s", "")
	for range t.Datasets {
		fmt.Fprintf(w, " | %-10s %-11s", "recall", "time(s)")
	}
	fmt.Fprintln(w)

	byKey := make(map[string]Table5Row, len(t.Rows))
	for _, r := range t.Rows {
		byKey[r.Dataset+"/"+r.System+"/"+inf(r.ThrGamma)+"/"+inf(r.KLocal)] = r
	}
	emit := func(label, system string, thr, klocal int) {
		fmt.Fprintf(w, "%-34s", label)
		for _, d := range t.Datasets {
			r, ok := byKey[d+"/"+system+"/"+inf(thr)+"/"+inf(klocal)]
			if !ok {
				fmt.Fprintf(w, " | %-22s", "-")
				continue
			}
			if system == "BASELINE" {
				fmt.Fprintf(w, " | %-10.2f %-11.1f", r.Recall, r.Seconds)
			} else {
				fmt.Fprintf(w, " | %4.2f (%3.1f) %6.1f (%5.1f)", r.Recall, r.Gain, r.Seconds, r.Speedup)
			}
		}
		fmt.Fprintln(w)
	}
	emit("BASELINE", "BASELINE", 0, 0)
	for _, c := range Table5Configs() {
		label := fmt.Sprintf("%s thr=%s klocal=%s", c.Score, inf(c.Thr), inf(c.KLocal))
		emit(label, c.Score, c.Thr, c.KLocal)
	}
}
