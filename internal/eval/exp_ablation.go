package eval

import (
	"fmt"
	"io"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/partition"
)

// Ablations beyond the paper's figures: sensitivity of the design choices
// DESIGN.md calls out. These are extensions, not reproductions.

// AlphaRow is one point of the α sweep for the linear combinator.
type AlphaRow struct {
	Dataset string
	Alpha   float64
	Recall  float64
}

// AlphaSweep measures recall of linearSum as α moves from 0 (path value is
// all sim(v,z)) to 1 (all sim(u,v)). The paper fixes α = 0.9 as "found to
// return the best predictions"; this ablation checks that choice on the
// analogs.
type AlphaSweep struct {
	Rows []AlphaRow
}

// RunAlphaSweep executes the sweep on livejournal.
func RunAlphaSweep(opts Options) (*AlphaSweep, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	out := &AlphaSweep{}
	split, _, err := loadSplit("livejournal", opts, 1)
	if err != nil {
		return nil, err
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		spec, err := core.ScoreByName("linearSum", alpha)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Score: spec, K: 5, KLocal: 20, ThrGamma: 200, Seed: opts.Seed}
		res, err := runSnaple(opts, split.Train, dep, cfg)
		if err != nil {
			return nil, fmt.Errorf("alpha sweep %v: %w", alpha, err)
		}
		rec := Recall(res.Pred, split)
		out.Rows = append(out.Rows, AlphaRow{Dataset: "livejournal", Alpha: alpha, Recall: rec})
		opts.logf("alpha: %.2f recall=%.3f", alpha, rec)
	}
	return out, nil
}

// Fprint renders the sweep.
func (a *AlphaSweep) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Ablation: linear-combinator alpha sweep (linearSum, klocal=20)")
	fmt.Fprintf(w, "%-8s %-8s\n", "alpha", "recall")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-8.2f %-8.3f\n", r.Alpha, r.Recall)
	}
}

// PartitionRow compares one vertex-cut strategy.
type PartitionRow struct {
	Strategy          string
	ReplicationFactor float64
	Balance           float64
	CrossBytes        int64
	SimSeconds        float64
	Recall            float64
}

// PartitionAblation compares the vertex-cut strategies on the same
// prediction job: replication factor drives synchronisation traffic, the
// design trade-off of Section 2.4 / PowerGraph.
type PartitionAblation struct {
	Rows []PartitionRow
}

// RunPartitionAblation executes linearSum on livejournal under each
// strategy.
func RunPartitionAblation(opts Options) (*PartitionAblation, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	out := &PartitionAblation{}
	split, _, err := loadSplit("livejournal", opts, 1)
	if err != nil {
		return nil, err
	}
	cfg, err := snapleConfig("linearSum", 200, 20, opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, strat := range []partition.Strategy{
		partition.HashEdge{Seed: opts.Seed},
		partition.HashSource{Seed: opts.Seed},
		partition.Greedy{},
	} {
		assign, err := strat.Partition(split.Train, dep.Cores())
		if err != nil {
			return nil, err
		}
		stats := partition.ComputeStats(split.Train, assign)
		cl, err := cluster.New(cluster.Config{
			Nodes: dep.Nodes, Spec: dep.Spec, MemBudgetBytes: dep.Budget,
		}, dep.Cores())
		if err != nil {
			return nil, err
		}
		res, err := core.PredictGASWorkers(split.Train, assign, cl, cfg, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("partition ablation %s: %w", strat.Name(), err)
		}
		row := PartitionRow{
			Strategy:          strat.Name(),
			ReplicationFactor: stats.ReplicationFactor,
			Balance:           stats.Balance,
			CrossBytes:        res.Total.CrossBytes,
			SimSeconds:        res.Total.SimSeconds(),
			Recall:            Recall(res.Pred, split),
		}
		out.Rows = append(out.Rows, row)
		opts.logf("partition: %s rf=%.2f cross=%dMiB recall=%.3f",
			strat.Name(), row.ReplicationFactor, row.CrossBytes>>20, row.Recall)
	}
	return out, nil
}

// Fprint renders the comparison.
func (p *PartitionAblation) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Ablation: vertex-cut strategy (linearSum, klocal=20, livejournal)")
	fmt.Fprintf(w, "%-13s %-6s %-9s %-11s %-9s %-8s\n",
		"strategy", "RF", "balance", "cross MiB", "sim(s)", "recall")
	for _, r := range p.Rows {
		fmt.Fprintf(w, "%-13s %-6.2f %-9.2f %-11.1f %-9.3f %-8.3f\n",
			r.Strategy, r.ReplicationFactor, r.Balance,
			float64(r.CrossBytes)/(1<<20), r.SimSeconds, r.Recall)
	}
}

// KHopRow compares path lengths.
type KHopRow struct {
	Dataset string
	Paths   int
	KLocal  int
	Recall  float64
	Seconds float64
}

// KHopAblation compares the paper's 2-hop scoring with the footnote-2
// 3-hop extension at small k_local values.
type KHopAblation struct {
	Rows []KHopRow
}

// RunKHopAblation executes the comparison on livejournal.
func RunKHopAblation(opts Options) (*KHopAblation, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	out := &KHopAblation{}
	split, _, err := loadSplit("livejournal", opts, 1)
	if err != nil {
		return nil, err
	}
	for _, klocal := range []int{3, 5, 10} {
		for _, paths := range []int{2, 3} {
			cfg, err := snapleConfig("linearSum", 200, klocal, opts.Seed)
			if err != nil {
				return nil, err
			}
			cfg.Paths = paths
			res, err := runSnaple(opts, split.Train, dep, cfg)
			if err != nil {
				return nil, fmt.Errorf("khop ablation paths=%d: %w", paths, err)
			}
			row := KHopRow{
				Dataset: "livejournal", Paths: paths, KLocal: klocal,
				Recall: Recall(res.Pred, split), Seconds: res.Total.SimSeconds(),
			}
			out.Rows = append(out.Rows, row)
			opts.logf("khop: paths=%d klocal=%d recall=%.3f sim=%.3fs",
				paths, klocal, row.Recall, row.Seconds)
		}
	}
	return out, nil
}

// Fprint renders the comparison.
func (k *KHopAblation) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Ablation: 2-hop vs 3-hop paths (linearSum, livejournal)")
	fmt.Fprintf(w, "%-7s %-7s %-8s %-8s\n", "klocal", "paths", "recall", "sim(s)")
	for _, r := range k.Rows {
		fmt.Fprintf(w, "%-7d %-7d %-8.3f %-8.3f\n", r.KLocal, r.Paths, r.Recall, r.Seconds)
	}
}
