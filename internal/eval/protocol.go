// Package eval implements the paper's evaluation protocol (Section 5.2) and
// the experiment runners that regenerate every table and figure of the
// evaluation (Section 5), on synthetic analogs of the paper's datasets.
package eval

import (
	"fmt"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/randx"
	"snaple/internal/topk"
)

// Split is a link-prediction train/test split: the training graph with some
// edges hidden, and the hidden edges per vertex.
type Split struct {
	// Train is the training view: the full graph behind a remove-only
	// Delta overlay hiding the sampled edges.
	Train graph.View
	// Removed maps each vertex to its hidden out-edge targets (sorted).
	Removed map[graph.VertexID][]graph.VertexID
	// NumRemoved is the total number of hidden edges.
	NumRemoved int
}

// MakeSplit hides perVertex outgoing edges of every vertex with out-degree
// greater than 3, following the protocol of Section 5.2 (after [35]): if a
// vertex has fewer edges than requested, all but one are removed. The choice
// is a deterministic hash draw keyed by (seed, u, v).
func MakeSplit(g *graph.Digraph, perVertex int, seed uint64) (*Split, error) {
	if perVertex < 1 {
		return nil, fmt.Errorf("eval: perVertex=%d, need >= 1", perVertex)
	}
	s := &Split{Removed: make(map[graph.VertexID][]graph.VertexID)}
	var removedEdges []graph.Edge
	for u := 0; u < g.NumVertices(); u++ {
		uid := graph.VertexID(u)
		deg := g.OutDegree(uid)
		if deg <= 3 {
			continue
		}
		r := perVertex
		if r > deg-1 {
			r = deg - 1 // "we removed all the edges except one"
		}
		nbrs := g.OutNeighbors(uid)
		// Rank neighbours by a per-(u,v) hash and hide the r smallest —
		// a uniform sample without replacement, independent of order.
		items := make([]topk.Item, len(nbrs))
		for i, v := range nbrs {
			items[i] = topk.Item{ID: uint32(v), Score: randx.Float64(seed^0x5EED, uint64(u), uint64(v))}
		}
		chosen := topk.Bottom(r, items)
		hidden := make([]graph.VertexID, 0, len(chosen))
		for _, it := range chosen {
			hidden = append(hidden, graph.VertexID(it.ID))
		}
		sortIDs(hidden)
		s.Removed[uid] = hidden
		for _, v := range hidden {
			removedEdges = append(removedEdges, graph.Edge{Src: uid, Dst: v})
		}
	}
	s.NumRemoved = len(removedEdges)
	s.Train = g.WithoutEdges(removedEdges)
	return s, nil
}

// Recall returns the fraction of hidden edges recovered by pred — the
// paper's quality metric. (Precision is proportional to recall in this
// protocol and therefore not reported; see Section 5.2.)
func Recall(pred core.Predictions, s *Split) float64 {
	if s.NumRemoved == 0 {
		return 0
	}
	hits := 0
	for u, hidden := range s.Removed {
		if int(u) >= len(pred) {
			continue
		}
		for _, p := range pred[u] {
			if containsID(hidden, p.Vertex) {
				hits++
			}
		}
	}
	return float64(hits) / float64(s.NumRemoved)
}

func containsID(sorted []graph.VertexID, v graph.VertexID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

func sortIDs(v []graph.VertexID) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
