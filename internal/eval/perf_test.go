package eval

import (
	"strings"
	"testing"
)

func basePerfReport() PerfReport {
	return PerfReport{
		Dataset: "livejournal", Scale: 0.5, Seed: 42, Vertices: 1000, Edges: 50000,
		Rows: []PerfRow{
			{Engine: "local", Workers: 4, WallSeconds: 1, EdgesPerSec: 100000, AllocBytes: 1 << 20, AllocObjects: 500},
			{Engine: "dist", Workers: 2, WallSeconds: 2, EdgesPerSec: 50000, AllocBytes: 4 << 20, AllocObjects: 90000, CrossBytes: 8 << 20, CrossMsgs: 60},
			{Engine: "ingest-text", Workers: 2, WallSeconds: 0.5, EdgesPerSec: 200000, AllocBytes: 2 << 20, AllocObjects: 900, MBPerSec: 120, PeakBytes: 3 << 20},
			{Engine: "ingest-sgr", Workers: 2, WallSeconds: 0.05, EdgesPerSec: 2000000, AllocBytes: 1 << 20, AllocObjects: 40, MBPerSec: 900, PeakBytes: 2 << 20},
			{Engine: "query-latency", Workers: 2, WallSeconds: 0.002, AllocBytes: 1 << 18, AllocObjects: 120, P50Ms: 1.5, P99Ms: 4},
		},
	}
}

func TestComparePerfPasses(t *testing.T) {
	base := basePerfReport()
	// Identical reports pass.
	if f := ComparePerf(base, base, 0.35); len(f) != 0 {
		t.Fatalf("identical reports fail: %v", f)
	}
	// Noise inside the tolerance passes, in both directions. cross_bytes has
	// its own capped tolerance (crossBytesTol): +8% passes, +20% would not.
	cur := basePerfReport()
	cur.Rows[0].EdgesPerSec *= 0.70
	cur.Rows[0].AllocObjects = int64(float64(cur.Rows[0].AllocObjects) * 1.30)
	cur.Rows[1].CrossBytes = int64(float64(cur.Rows[1].CrossBytes) * 1.08)
	if f := ComparePerf(base, cur, 0.35); len(f) != 0 {
		t.Fatalf("in-tolerance noise fails: %v", f)
	}
	// Improvements never fail, however large.
	cur = basePerfReport()
	cur.Rows[0].EdgesPerSec *= 10
	cur.Rows[0].AllocObjects = 1
	cur.Rows[1].CrossBytes = 1
	if f := ComparePerf(base, cur, 0.35); len(f) != 0 {
		t.Fatalf("improvement fails: %v", f)
	}
}

func TestComparePerfCatchesHardRegressions(t *testing.T) {
	check := func(name string, mutate func(*PerfReport), wantSubstr string) {
		t.Run(name, func(t *testing.T) {
			cur := basePerfReport()
			mutate(&cur)
			f := ComparePerf(basePerfReport(), cur, 0.35)
			if len(f) == 0 {
				t.Fatal("regression passed the gate")
			}
			if !strings.Contains(strings.Join(f, "\n"), wantSubstr) {
				t.Errorf("failures %v do not mention %q", f, wantSubstr)
			}
		})
	}
	check("throughput cliff", func(r *PerfReport) { r.Rows[0].EdgesPerSec /= 2 }, "throughput")
	check("allocation blow-up", func(r *PerfReport) { r.Rows[0].AllocObjects *= 3 }, "alloc_objects")
	check("alloc bytes blow-up", func(r *PerfReport) { r.Rows[1].AllocBytes *= 2 }, "alloc_bytes")
	check("wire bloat", func(r *PerfReport) { r.Rows[1].CrossBytes *= 2 }, "cross_bytes")
	// cross_bytes ignores the generous general tolerance: +15% is inside
	// ±35% but outside the capped ceiling, so it must still fail.
	check("wire creep within general tolerance", func(r *PerfReport) {
		r.Rows[1].CrossBytes = int64(float64(r.Rows[1].CrossBytes) * 1.15)
	}, "cross_bytes")
	check("ingest throughput cliff", func(r *PerfReport) { r.Rows[2].MBPerSec /= 2 }, "ingest throughput")
	check("ingest peak-memory blow-up", func(r *PerfReport) { r.Rows[3].PeakBytes *= 2 }, "peak_bytes")
	check("query p99 regression", func(r *PerfReport) { r.Rows[4].P99Ms *= 2 }, "query p99")
	check("engine row dropped", func(r *PerfReport) { r.Rows = r.Rows[:1] }, "missing")
	check("different graph", func(r *PerfReport) { r.Edges++ }, "different graphs")
	check("different worker count", func(r *PerfReport) { r.Rows[0].Workers++ }, "worker counts")
}

func TestComparePerfZeroBaselineMetricsIgnored(t *testing.T) {
	// A baseline without wire traffic (local-only history) must not fail a
	// current report that has some.
	base := basePerfReport()
	base.Rows[1].CrossBytes = 0
	// Likewise an ingest row from before MB/s and peak tracking existed.
	base.Rows[2].MBPerSec = 0
	base.Rows[2].PeakBytes = 0
	// And a query row from before latency percentiles were recorded.
	base.Rows[4].P50Ms = 0
	base.Rows[4].P99Ms = 0
	cur := basePerfReport()
	cur.Rows[1].CrossBytes = 100 << 20
	cur.Rows[2].MBPerSec = 1
	cur.Rows[2].PeakBytes = 100 << 20
	cur.Rows[4].P99Ms = 100
	if f := ComparePerf(base, cur, 0.35); len(f) != 0 {
		t.Fatalf("zero-baseline metric enforced: %v", f)
	}
}
