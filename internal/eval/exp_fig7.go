package eval

import (
	"fmt"
	"io"

	"snaple/internal/core"
)

// Figure7Row is one point of Figure 7: recall of one neighbour-selection
// policy at one klocal on livejournal.
type Figure7Row struct {
	Score  string
	Policy string // "max", "min", "rnd"
	KLocal int
	Recall float64
}

// Figure7 reproduces Figure 7: Γmax vs Γmin vs Γrnd for
// klocal ∈ {5,10,20,40,80} and the scores counter, linearSum and PPR.
type Figure7 struct {
	Dataset string
	Rows    []Figure7Row
}

// RunFigure7 executes the selection-policy study.
func RunFigure7(opts Options) (*Figure7, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	fig := &Figure7{Dataset: "livejournal"}
	split, _, err := loadSplit(fig.Dataset, opts, 1)
	if err != nil {
		return nil, err
	}
	policies := []core.SelectionPolicy{core.SelectMax, core.SelectMin, core.SelectRnd}
	for _, score := range []string{"counter", "linearSum", "PPR"} {
		for _, klocal := range []int{5, 10, 20, 40, 80} {
			for _, pol := range policies {
				cfg, err := snapleConfig(score, 200, klocal, opts.Seed)
				if err != nil {
					return nil, err
				}
				cfg.Policy = pol
				res, err := runSnaple(opts, split.Train, dep, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig7: %s %s klocal=%d: %w", score, pol, klocal, err)
				}
				rec := Recall(res.Pred, split)
				fig.Rows = append(fig.Rows, Figure7Row{
					Score: score, Policy: pol.String(), KLocal: klocal, Recall: rec,
				})
				opts.logf("fig7: %s policy=%s klocal=%d recall=%.3f", score, pol, klocal, rec)
			}
		}
	}
	return fig, nil
}

// Fprint renders the three panels.
func (f *Figure7) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: recall per selection policy on %s\n", f.Dataset)
	fmt.Fprintf(w, "%-11s %-7s %-8s %-8s %-8s\n", "score", "klocal", "Γmax", "Γmin", "Γrnd")
	type key struct {
		score  string
		klocal int
	}
	cells := make(map[key]map[string]float64)
	var order []key
	for _, r := range f.Rows {
		k := key{r.Score, r.KLocal}
		if cells[k] == nil {
			cells[k] = make(map[string]float64)
			order = append(order, k)
		}
		cells[k][r.Policy] = r.Recall
	}
	for _, k := range order {
		fmt.Fprintf(w, "%-11s %-7d %-8.3f %-8.3f %-8.3f\n",
			k.score, k.klocal, cells[k]["max"], cells[k]["min"], cells[k]["rnd"])
	}
}
