package eval

import (
	"fmt"
	"io"
)

// Figure5Point is one point of the scalability plot: the execution time of
// the linearSum scoring on one dataset/deployment/klocal combination.
type Figure5Point struct {
	Dataset    string
	Edges      int
	Deployment string
	NodeType   string // "type-I" or "type-II"
	Cores      int
	KLocal     int
	Seconds    float64 // simulated cluster seconds
	Recall     float64
}

// Figure5 reproduces Figure 5: SNAPLE's scaling with graph size for several
// core counts on both node types, for klocal ∈ {40, 80}.
type Figure5 struct {
	Points []Figure5Point
}

// RunFigure5 executes the scalability sweep over the livejournal, orkut and
// twitter-rv analogs (the paper's 68M/223M/1.4B-edge series).
func RunFigure5(opts Options) (*Figure5, error) {
	opts = opts.withDefaults()
	deployments := []struct {
		d        Deployment
		nodeType string
	}{
		{TypeIDeployment(8), "type-I"},   // 64 cores
		{TypeIDeployment(16), "type-I"},  // 128 cores
		{TypeIDeployment(32), "type-I"},  // 256 cores
		{TypeIIDeployment(4), "type-II"}, // 80 cores
		{TypeIIDeployment(8), "type-II"}, // 160 cores
	}
	fig := &Figure5{}
	for _, name := range []string{"livejournal", "orkut", "twitter-rv"} {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		for _, klocal := range []int{40, 80} {
			cfg, err := snapleConfig("linearSum", 200, klocal, opts.Seed)
			if err != nil {
				return nil, err
			}
			for _, dep := range deployments {
				res, err := runSnaple(opts, split.Train, dep.d, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig5: %s on %s: %w", name, dep.d, err)
				}
				p := Figure5Point{
					Dataset:    name,
					Edges:      split.Train.NumEdges(),
					Deployment: dep.d.String(),
					NodeType:   dep.nodeType,
					Cores:      dep.d.Cores(),
					KLocal:     klocal,
					Seconds:    res.Total.SimSeconds(),
					Recall:     Recall(res.Pred, split),
				}
				fig.Points = append(fig.Points, p)
				opts.logf("fig5: %s klocal=%d %s sim=%.3fs recall=%.3f",
					name, klocal, dep.d, p.Seconds, p.Recall)
			}
		}
	}
	return fig, nil
}

// Fprint renders the four panels of Figure 5 as series tables.
func (f *Figure5) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: execution time (simulated s) vs graph size")
	for _, klocal := range []int{40, 80} {
		for _, nodeType := range []string{"type-I", "type-II"} {
			fmt.Fprintf(w, "\n(klocal=%d, %s nodes)\n", klocal, nodeType)
			fmt.Fprintf(w, "%-14s %-10s", "dataset", "edges")
			cores := f.coresFor(nodeType)
			for _, c := range cores {
				fmt.Fprintf(w, " %10s", fmt.Sprintf("%d cores", c))
			}
			fmt.Fprintln(w)
			for _, ds := range []string{"livejournal", "orkut", "twitter-rv"} {
				var edges int
				row := make(map[int]float64)
				for _, p := range f.Points {
					if p.Dataset == ds && p.KLocal == klocal && p.NodeType == nodeType {
						row[p.Cores] = p.Seconds
						edges = p.Edges
					}
				}
				if len(row) == 0 {
					continue
				}
				fmt.Fprintf(w, "%-14s %-10d", ds, edges)
				for _, c := range cores {
					if s, ok := row[c]; ok {
						fmt.Fprintf(w, " %10.3f", s)
					} else {
						fmt.Fprintf(w, " %10s", "-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}

func (f *Figure5) coresFor(nodeType string) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range f.Points {
		if p.NodeType == nodeType && !seen[p.Cores] {
			seen[p.Cores] = true
			out = append(out, p.Cores)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
