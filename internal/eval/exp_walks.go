package eval

import (
	"fmt"
	"io"
	"time"

	"snaple/internal/walk"
)

// Figure11Point is one point of Figure 11: the random-walk comparator at one
// (w, d) setting.
type Figure11Point struct {
	Dataset string
	Walks   int
	Depth   int
	Seconds float64 // host wall-clock seconds (single-machine system)
	Recall  float64
}

// Figure11 reproduces Figure 11: recall and computing time of the
// Cassovary-style PPR-by-walks predictor for w ∈ {10,100,1000} and
// d ∈ {3,4,5,10} on livejournal and twitter-rv.
type Figure11 struct {
	Points []Figure11Point
}

// RunFigure11 executes the walk sweep.
func RunFigure11(opts Options) (*Figure11, error) {
	opts = opts.withDefaults()
	fig := &Figure11{}
	for _, name := range []string{"livejournal", "twitter-rv"} {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{10, 100, 1000} {
			for _, d := range []int{3, 4, 5, 10} {
				start := time.Now()
				pred, err := walk.Predict(split.Train, walk.Config{
					Walks: w, Depth: d, K: 5, Seed: opts.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("fig11: %s w=%d d=%d: %w", name, w, d, err)
				}
				p := Figure11Point{
					Dataset: name, Walks: w, Depth: d,
					Seconds: time.Since(start).Seconds(),
					Recall:  Recall(pred, split),
				}
				fig.Points = append(fig.Points, p)
				opts.logf("fig11: %s w=%d d=%d wall=%.2fs recall=%.3f", name, w, d, p.Seconds, p.Recall)
			}
		}
	}
	return fig, nil
}

// Best returns the dataset's best configuration: highest recall, ties broken
// by shortest time (the paper's "best recall in the shortest time").
func (f *Figure11) Best(dataset string) (Figure11Point, bool) {
	var best Figure11Point
	found := false
	for _, p := range f.Points {
		if p.Dataset != dataset {
			continue
		}
		if !found || p.Recall > best.Recall ||
			(p.Recall == best.Recall && p.Seconds < best.Seconds) {
			best = p
			found = true
		}
	}
	return best, found
}

// Fprint renders both panels.
func (f *Figure11) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: random-walk PPR (Cassovary analog), recall vs time")
	fmt.Fprintf(w, "%-13s %-6s %-4s %-10s %-8s\n", "dataset", "w", "d", "time(s)", "recall")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-13s %-6d %-4d %-10.2f %-8.3f\n", p.Dataset, p.Walks, p.Depth, p.Seconds, p.Recall)
	}
}

// Table6Row compares the two single-machine systems on one dataset.
type Table6Row struct {
	Dataset string
	// Cassovary's best configuration and results.
	Walks, Depth     int
	CassovaryRecall  float64
	CassovarySeconds float64
	SnapleRecall     float64
	SnapleSeconds    float64
	Speedup          float64
}

// Table6 reproduces Table 6: SNAPLE on a single type-II node (klocal = 20)
// against the best Cassovary configuration found in Figure 11. Both systems
// run on the host and are compared on host wall-clock time.
type Table6 struct {
	Rows []Table6Row
}

// RunTable6 executes the single-machine comparison. If fig11 is nil the walk
// sweep is run first to find each dataset's best configuration.
func RunTable6(opts Options, fig11 *Figure11) (*Table6, error) {
	opts = opts.withDefaults()
	if fig11 == nil {
		var err error
		fig11, err = RunFigure11(opts)
		if err != nil {
			return nil, err
		}
	}
	dep := OneTypeII()
	t6 := &Table6{}
	for _, name := range []string{"livejournal", "twitter-rv"} {
		best, ok := fig11.Best(name)
		if !ok {
			return nil, fmt.Errorf("table6: no figure-11 points for %s", name)
		}
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		cfg, err := snapleConfig("linearSum", 200, 20, opts.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := runSnaple(opts, split.Train, dep, cfg)
		if err != nil {
			return nil, fmt.Errorf("table6: snaple on %s: %w", name, err)
		}
		wall := time.Since(start).Seconds()
		row := Table6Row{
			Dataset:          name,
			Walks:            best.Walks,
			Depth:            best.Depth,
			CassovaryRecall:  best.Recall,
			CassovarySeconds: best.Seconds,
			SnapleRecall:     Recall(res.Pred, split),
			SnapleSeconds:    wall,
		}
		if wall > 0 {
			row.Speedup = best.Seconds / wall
		}
		t6.Rows = append(t6.Rows, row)
		opts.logf("table6: %s cassovary(w=%d,d=%d)=%.3f/%.2fs snaple=%.3f/%.2fs speedup=%.2f",
			name, best.Walks, best.Depth, best.Recall, best.Seconds,
			row.SnapleRecall, row.SnapleSeconds, row.Speedup)
	}
	return t6, nil
}

// Fprint renders the table.
func (t *Table6) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 6: single-machine comparison (one type-II node, host wall time)")
	fmt.Fprintf(w, "%-13s %-22s %-22s %-8s\n", "dataset", "CASSOVARY (best w,d)", "SNAPLE (klocal=20)", "speedup")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-13s %.3f / %6.2fs (w=%d,d=%d)   %.3f / %6.2fs        %-8.2f\n",
			r.Dataset, r.CassovaryRecall, r.CassovarySeconds, r.Walks, r.Depth,
			r.SnapleRecall, r.SnapleSeconds, r.Speedup)
	}
}
