package eval

import (
	"fmt"
)

// PerfReport is the machine-readable performance record written by
// `snaple-bench -exp perf` and gated in CI by cmd/benchcheck against the
// committed BENCH_baseline.json: one row per perf-tracked backend measured
// on the same generated graph. The schema lives here so the writer and the
// gate cannot drift apart.
type PerfReport struct {
	Dataset  string    `json:"dataset"`
	Scale    float64   `json:"scale"`
	Seed     uint64    `json:"seed"`
	Vertices int       `json:"vertices"`
	Edges    int       `json:"edges"`
	Rows     []PerfRow `json:"rows"`
}

// PerfRow is one backend's measurements. CrossBytes/CrossMsgs are real wire
// traffic (dist backend only; zero for shared-memory backends). The ingest
// rows ("ingest-text", "ingest-sgr") measure graph loading rather than
// prediction: for them MBPerSec is input bytes consumed per second and
// PeakBytes the sampled peak live heap during the load — the metric that
// catches an O(E) ingest intermediate sneaking back in. The "query-latency"
// row measures repeated query-scoped predictions (the snaple-serve shape):
// P50Ms/P99Ms are per-query latency percentiles, WallSeconds the mean
// query, and EdgesPerSec is 0 (a scoped query deliberately avoids touching
// every edge).
type PerfRow struct {
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	AllocBytes   int64   `json:"alloc_bytes"`
	AllocObjects int64   `json:"alloc_objects"`
	CrossBytes   int64   `json:"cross_bytes,omitempty"`
	CrossMsgs    int64   `json:"cross_msgs,omitempty"`
	MBPerSec     float64 `json:"mb_per_sec,omitempty"`
	PeakBytes    int64   `json:"peak_bytes,omitempty"`
	P50Ms        float64 `json:"p50_ms,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
	// RSSBytes is the process's OS-level peak resident set (VmHWM) after the
	// row's work, where the scale experiment records it. Unlike the
	// allocator metrics it sees mmap'd pages and is monotone across a run,
	// so only the run's final row carries a meaningful delta. Zero on
	// platforms without a probe.
	RSSBytes int64 `json:"rss_bytes,omitempty"`
}

// Row returns the report's row for an engine.
func (r PerfReport) Row(engine string) (PerfRow, bool) {
	for _, row := range r.Rows {
		if row.Engine == engine {
			return row, true
		}
	}
	return PerfRow{}, false
}

// ComparePerf diffs current against baseline with a relative tolerance
// (0.35 = ±35%) and returns one message per hard regression; an empty slice
// means the gate passes. The tolerance is deliberately generous: CI runners
// are noisy and heterogeneous, so the gate is meant to catch step-function
// regressions (an accidental O(V) allocation, a 2x throughput cliff), not
// single-digit drift. Checked per engine row:
//
//   - edges_per_sec must not drop below (1−tol) × baseline;
//   - alloc_bytes / alloc_objects must not exceed (1+tol) × baseline
//     (these are near-deterministic per code version, so the same tolerance
//     is comfortably wide);
//   - cross_bytes must not exceed (1+min(tol, 10%)) × baseline when the
//     baseline measured any: wire traffic is measured on real sockets but is
//     near-deterministic per code version (same graph, same partitioning
//     seed), so unlike the timing metrics it gets no noise allowance — the
//     tight ceiling pins the flat-frame protocol's traffic win and stops it
//     eroding back toward gob-era volumes one in-tolerance step at a time;
//   - mb_per_sec must not drop below (1−tol) × baseline when the baseline
//     measured any (ingest rows: parse/load throughput);
//   - peak_bytes must not exceed (1+tol) × baseline when the baseline
//     measured any (ingest rows: an O(E) loading intermediate is exactly
//     the step-function blow-up this gate exists to catch);
//   - p99_ms must not exceed (1+tol) × baseline when the baseline measured
//     any (the query-latency row: a tail-latency regression is a serving
//     regression even when throughput holds);
//   - rss_bytes must not exceed (1+tol) × baseline when the baseline
//     measured any (scale rows: the OS-level peak resident set, which sees
//     the mmap'd pages and loader copies the allocator counters miss).
//
// Improvements never fail. The graphs must be identical (dataset, scale,
// seed, vertex and edge counts) — otherwise the comparison is meaningless
// and that mismatch is itself the failure.
// crossBytesTol caps the cross_bytes tolerance regardless of the caller's
// general tolerance: encoded traffic is a property of the code, not the
// runner, so a ±35% noise allowance would let frame-format bloat through.
const crossBytesTol = 0.10

func ComparePerf(baseline, current PerfReport, tol float64) []string {
	var failures []string
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	if baseline.Dataset != current.Dataset || baseline.Scale != current.Scale ||
		baseline.Seed != current.Seed ||
		baseline.Vertices != current.Vertices || baseline.Edges != current.Edges {
		failf("reports measure different graphs: baseline %s scale=%v seed=%d V=%d E=%d, current %s scale=%v seed=%d V=%d E=%d",
			baseline.Dataset, baseline.Scale, baseline.Seed, baseline.Vertices, baseline.Edges,
			current.Dataset, current.Scale, current.Seed, current.Vertices, current.Edges)
		return failures
	}
	for _, base := range baseline.Rows {
		cur, ok := current.Row(base.Engine)
		if !ok {
			failf("%s: row missing from current report", base.Engine)
			continue
		}
		if base.Workers != cur.Workers {
			// Worker count changes per-worker scratch allocation and
			// parallel throughput; comparing across counts reports phantom
			// regressions (e.g. an unpinned -workers resolving to GOMAXPROCS
			// on a bigger runner). CI pins -workers for exactly this reason.
			failf("%s: measured with different worker counts (baseline %d, current %d): pin -workers to the baseline's invocation",
				base.Engine, base.Workers, cur.Workers)
			continue
		}
		if floor := base.EdgesPerSec * (1 - tol); cur.EdgesPerSec < floor {
			failf("%s: throughput regressed: %.0f edges/s < %.0f (baseline %.0f − %d%%)",
				base.Engine, cur.EdgesPerSec, floor, base.EdgesPerSec, int(tol*100))
		}
		if base.MBPerSec > 0 {
			if floor := base.MBPerSec * (1 - tol); cur.MBPerSec < floor {
				failf("%s: ingest throughput regressed: %.1f MB/s < %.1f (baseline %.1f − %d%%)",
					base.Engine, cur.MBPerSec, floor, base.MBPerSec, int(tol*100))
			}
		}
		checkCeil := func(metric string, base64, cur64 int64, tol float64) {
			if base64 <= 0 {
				return
			}
			if ceil := float64(base64) * (1 + tol); float64(cur64) > ceil {
				failf("%s: %s regressed: %d > %.0f (baseline %d + %d%%)",
					base.Engine, metric, cur64, ceil, base64, int(tol*100))
			}
		}
		checkCeil("alloc_bytes", base.AllocBytes, cur.AllocBytes, tol)
		checkCeil("alloc_objects", base.AllocObjects, cur.AllocObjects, tol)
		checkCeil("cross_bytes", base.CrossBytes, cur.CrossBytes, min(tol, crossBytesTol))
		checkCeil("peak_bytes", base.PeakBytes, cur.PeakBytes, tol)
		checkCeil("rss_bytes", base.RSSBytes, cur.RSSBytes, tol)
		if base.P99Ms > 0 {
			if ceil := base.P99Ms * (1 + tol); cur.P99Ms > ceil {
				failf("%s: query p99 regressed: %.2fms > %.2fms (baseline %.2fms + %d%%)",
					base.Engine, cur.P99Ms, ceil, base.P99Ms, int(tol*100))
			}
		}
	}
	return failures
}
