package eval

import (
	"errors"
	"fmt"
	"io"

	"snaple/internal/cluster"
)

// ExhaustionRow records whether one system survived one dataset under a
// bounded per-node memory budget.
type ExhaustionRow struct {
	Dataset   string
	System    string // "BASELINE" or "SNAPLE"
	Completed bool
	// PeakBytes is the highest per-node memory observed (at abort time for
	// failed runs).
	PeakBytes int64
	Err       string
}

// Exhaustion reproduces the resource-exhaustion result of Section 5.3:
// "orkut and twitter-rv cause BASELINE to fail by exhausting the available
// memory", while SNAPLE completes everywhere. The per-node budget scales the
// type-II node's 128 GB down to the analog scale; at the default budget the
// failure pattern matches the paper's (BASELINE dies exactly on orkut and
// twitter-rv).
type Exhaustion struct {
	BudgetBytes int64
	Rows        []ExhaustionRow
}

// DefaultExhaustionBudget is the per-node budget (128 MiB) calibrated for
// Scale=1 analogs — the scaled-down stand-in for the type-II node's 128 GB.
// Unbudgeted peaks at scale 1: BASELINE needs ~13/61/85 MiB per node on
// gowalla/pokec/livejournal and >1 GiB on orkut/twitter-rv; SNAPLE
// (thrΓ=200, klocal=20) stays below 76 MiB everywhere. 128 MiB therefore
// reproduces the paper's exact failure pattern: BASELINE dies on orkut and
// twitter-rv, everything else completes.
const DefaultExhaustionBudget = int64(128 << 20)

// RunExhaustion executes both systems on all five analogs under the budget.
// The experiment exists to exercise the simulated memory model, so it always
// runs on the sim backend regardless of Options.Engine — any other backend
// enforces no budget and would fabricate the survival column.
func RunExhaustion(opts Options) (*Exhaustion, error) {
	opts = opts.withDefaults()
	opts.Engine = "sim"
	out := &Exhaustion{BudgetBytes: DefaultExhaustionBudget}
	dep := FourTypeII()
	dep.Budget = out.BudgetBytes

	for _, name := range DatasetNames() {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		// BASELINE under budget.
		bres, berr := runBaseline(opts, split.Train, dep, 5, opts.Seed)
		row := ExhaustionRow{Dataset: name, System: "BASELINE", Completed: berr == nil}
		if bres != nil {
			row.PeakBytes = bres.Total.MemPeakBytes
		}
		if berr != nil {
			if !errors.Is(berr, cluster.ErrMemoryExhausted) {
				return nil, fmt.Errorf("exhaustion: baseline on %s failed unexpectedly: %w", name, berr)
			}
			row.Err = "memory exhausted"
		}
		out.Rows = append(out.Rows, row)
		opts.logf("exhaustion: %s BASELINE completed=%v peak=%dMiB", name, row.Completed, row.PeakBytes>>20)

		// SNAPLE under the same budget.
		cfg, err := snapleConfig("linearSum", 200, 20, opts.Seed)
		if err != nil {
			return nil, err
		}
		sres, serr := runSnaple(opts, split.Train, dep, cfg)
		srow := ExhaustionRow{Dataset: name, System: "SNAPLE", Completed: serr == nil}
		if sres != nil {
			srow.PeakBytes = sres.Total.MemPeakBytes
		}
		if serr != nil {
			if !errors.Is(serr, cluster.ErrMemoryExhausted) {
				return nil, fmt.Errorf("exhaustion: snaple on %s failed unexpectedly: %w", name, serr)
			}
			srow.Err = "memory exhausted"
		}
		out.Rows = append(out.Rows, srow)
		opts.logf("exhaustion: %s SNAPLE completed=%v peak=%dMiB", name, srow.Completed, srow.PeakBytes>>20)
	}
	return out, nil
}

// Fprint renders the survival table.
func (e *Exhaustion) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Resource exhaustion under %d MiB/node (Section 5.3)\n", e.BudgetBytes>>20)
	fmt.Fprintf(w, "%-13s %-10s %-10s %-12s %s\n", "dataset", "system", "completed", "peak(MiB)", "error")
	for _, r := range e.Rows {
		fmt.Fprintf(w, "%-13s %-10s %-10v %-12d %s\n",
			r.Dataset, r.System, r.Completed, r.PeakBytes>>20, r.Err)
	}
}
