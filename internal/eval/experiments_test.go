package eval

import (
	"strings"
	"testing"
)

// smallOpts shrinks the analogs so that every experiment smoke-runs in CI
// time. The full-scale runs happen in the bench harness / CLI.
func smallOpts() Options {
	return Options{Scale: 0.12, Seed: 42}
}

func TestRunTable5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t5, err := RunTable5(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x (1 baseline + 12 snaple rows).
	if len(t5.Rows) != 3*13 {
		t.Fatalf("got %d rows, want 39", len(t5.Rows))
	}
	// Core claims of the table: on every dataset, every SNAPLE configuration
	// should at least match BASELINE's recall, and sampled configurations
	// should be faster.
	byDataset := map[string][]Table5Row{}
	for _, r := range t5.Rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for ds, rows := range byDataset {
		var base Table5Row
		for _, r := range rows {
			if r.System == "BASELINE" {
				base = r
			}
		}
		if base.System == "" {
			t.Fatalf("%s: no baseline row", ds)
		}
		better := 0
		for _, r := range rows {
			if r.System == "BASELINE" {
				continue
			}
			if r.Recall >= base.Recall {
				better++
			}
		}
		if better < 9 { // allow a few sampled configs to dip below
			t.Errorf("%s: only %d of 12 SNAPLE configs matched baseline recall %.3f",
				ds, better, base.Recall)
		}
	}
	var sb strings.Builder
	t5.Fprint(&sb)
	if !strings.Contains(sb.String(), "BASELINE") || !strings.Contains(sb.String(), "linearSum") {
		t.Error("rendered table misses expected rows")
	}
}

func TestRunFigure6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := RunFigure6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.CDFs) != 3 {
		t.Fatalf("want 3 CDFs, got %d", len(fig.CDFs))
	}
	for _, c := range fig.CDFs {
		last := -1.0
		for _, p := range c.Points {
			if p.Fraction < last || p.Fraction < 0 || p.Fraction > 1 {
				t.Fatalf("%s: CDF not monotone in [0,1]: %+v", c.Dataset, c.Points)
			}
			last = p.Fraction
		}
		if c.Points[len(c.Points)-1].Fraction < 0.99 {
			t.Errorf("%s: CDF does not reach 1 at degree 1024", c.Dataset)
		}
	}
	if len(fig.Rows) != 3*5 {
		t.Fatalf("want 15 threshold rows, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.ThrGamma == 10 && r.ImprovementPct != 0 {
			t.Errorf("%s: improvement at thr=10 should be 0, got %v", r.Dataset, r.ImprovementPct)
		}
	}
	var sb strings.Builder
	fig.Fprint(&sb)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Error("render header missing")
	}
}

func TestRunFigure7Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := RunFigure7(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3*5*3 {
		t.Fatalf("want 45 rows, got %d", len(fig.Rows))
	}
	// The paper's claim: at small klocal, Γmax beats Γmin distinctly.
	recall := func(score, policy string, klocal int) float64 {
		for _, r := range fig.Rows {
			if r.Score == score && r.Policy == policy && r.KLocal == klocal {
				return r.Recall
			}
		}
		t.Fatalf("missing row %s/%s/%d", score, policy, klocal)
		return 0
	}
	winsMax := 0
	for _, score := range []string{"counter", "linearSum", "PPR"} {
		if recall(score, "max", 5) > recall(score, "min", 5) {
			winsMax++
		}
	}
	if winsMax < 2 {
		t.Errorf("Γmax should beat Γmin at klocal=5 on most scores; won %d of 3", winsMax)
	}
	var sb strings.Builder
	fig.Fprint(&sb)
	if !strings.Contains(sb.String(), "Γmax") {
		t.Error("render missing policy columns")
	}
}

func TestRunFigure9And10Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := smallOpts()
	f9, err := RunFigure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 2*5*4 {
		t.Fatalf("fig9: want 40 rows, got %d", len(f9.Rows))
	}
	// Recall must be non-decreasing in k for each (dataset, score).
	type key struct {
		ds, score string
	}
	prev := map[key]float64{}
	for _, r := range f9.Rows { // rows emitted in ascending k order
		k := key{r.Dataset, r.Score}
		if r.Recall+1e-12 < prev[k] {
			t.Errorf("fig9: recall decreased with k for %v: %v -> %v", k, prev[k], r.Recall)
		}
		prev[k] = r.Recall
	}

	f10, err := RunFigure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 2*5*5 {
		t.Fatalf("fig10: want 50 rows, got %d", len(f10.Rows))
	}
	// Aggregate trend: recall with 5 removed edges per vertex is lower than
	// with 1, per dataset and score family average.
	var rec1, rec5 float64
	for _, r := range f10.Rows {
		switch r.Removed {
		case 1:
			rec1 += r.Recall
		case 5:
			rec5 += r.Recall
		}
	}
	if rec5 >= rec1 {
		t.Errorf("fig10: recall sum with 5 removed (%.3f) not below 1 removed (%.3f)", rec5, rec1)
	}
}

func TestRunFigure11AndTable6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := smallOpts()
	f11, err := RunFigure11(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Points) != 2*3*4 {
		t.Fatalf("fig11: want 24 points, got %d", len(f11.Points))
	}
	best, ok := f11.Best("livejournal")
	if !ok || best.Recall <= 0 {
		t.Fatalf("fig11: no best point (%+v)", best)
	}
	// More walks at fixed depth should not lose recall on average.
	var r10, r1000 float64
	for _, p := range f11.Points {
		if p.Depth != 3 {
			continue
		}
		switch p.Walks {
		case 10:
			r10 += p.Recall
		case 1000:
			r1000 += p.Recall
		}
	}
	if r1000 < r10 {
		t.Errorf("fig11: recall with w=1000 (%.3f) below w=10 (%.3f)", r1000, r10)
	}

	t6, err := RunTable6(opts, f11)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 2 {
		t.Fatalf("table6: want 2 rows, got %d", len(t6.Rows))
	}
	for _, r := range t6.Rows {
		if r.SnapleRecall <= 0 || r.CassovaryRecall <= 0 {
			t.Errorf("table6: zero recall row: %+v", r)
		}
	}
	var sb strings.Builder
	t6.Fprint(&sb)
	if !strings.Contains(sb.String(), "CASSOVARY") {
		t.Error("table6 render missing header")
	}
}

func TestRunExhaustionSmallScaleNote(t *testing.T) {
	// The calibrated exhaustion experiment needs Scale=1 analogs; at tiny
	// scales nothing exhausts. Here we only check that the runner completes
	// and reports consistent rows at a reduced budget on a reduced scale.
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := smallOpts()
	ex, err := RunExhaustion(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rows) != 2*len(DatasetNames()) {
		t.Fatalf("want %d rows, got %d", 2*len(DatasetNames()), len(ex.Rows))
	}
	for _, r := range ex.Rows {
		if r.System == "SNAPLE" && !r.Completed {
			t.Errorf("SNAPLE failed on %s at reduced scale: %s", r.Dataset, r.Err)
		}
		if !r.Completed && r.Err == "" {
			t.Errorf("failed row without error: %+v", r)
		}
	}
}
