package eval

import (
	"fmt"
	"io"

	"snaple/internal/core"
)

// SupervisedRow compares the learned scoring function with the best
// hand-tuned unsupervised configuration on one dataset.
type SupervisedRow struct {
	Dataset          string
	SupervisedRecall float64
	LinearSumRecall  float64
	Improvement      float64 // supervised / linearSum
	Weights          [6]float64
}

// Supervised evaluates the paper's first future-work item: a logistic
// scoring function over SNAPLE's own path features, trained on an internal
// split of the training graph and evaluated on the held-out edges.
type Supervised struct {
	Rows []SupervisedRow
}

// RunSupervised executes the comparison on livejournal and pokec.
func RunSupervised(opts Options) (*Supervised, error) {
	opts = opts.withDefaults()
	out := &Supervised{}
	for _, name := range []string{"livejournal", "pokec"} {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		model, err := core.TrainSupervised(split.Train, core.SupervisedConfig{
			KLocal: 20, ThrGamma: 200, Seed: opts.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("supervised: train on %s: %w", name, err)
		}
		sup, err := model.Predict(split.Train, 5)
		if err != nil {
			return nil, err
		}
		cfg, err := snapleConfig("linearSum", 200, 20, opts.Seed)
		if err != nil {
			return nil, err
		}
		uns, err := core.ReferenceSnaple(split.Train, cfg)
		if err != nil {
			return nil, err
		}
		row := SupervisedRow{
			Dataset:          name,
			SupervisedRecall: Recall(sup, split),
			LinearSumRecall:  Recall(uns, split),
			Weights:          model.Weights,
		}
		if row.LinearSumRecall > 0 {
			row.Improvement = row.SupervisedRecall / row.LinearSumRecall
		}
		out.Rows = append(out.Rows, row)
		opts.logf("supervised: %s recall=%.3f vs linearSum %.3f (%.2fx)",
			name, row.SupervisedRecall, row.LinearSumRecall, row.Improvement)
	}
	return out, nil
}

// Fprint renders the comparison.
func (s *Supervised) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Extension: supervised scoring (logistic model over path features)")
	fmt.Fprintf(w, "%-13s %-12s %-12s %-8s\n", "dataset", "supervised", "linearSum", "improve")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-13s %-12.3f %-12.3f %-8.2fx\n",
			r.Dataset, r.SupervisedRecall, r.LinearSumRecall, r.Improvement)
	}
	fmt.Fprintln(w, "learned weights (linSum, count, invDeg, mean, max, min):")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "  %-13s %+.3f %+.3f %+.3f %+.3f %+.3f %+.3f\n", r.Dataset,
			r.Weights[0], r.Weights[1], r.Weights[2], r.Weights[3], r.Weights[4], r.Weights[5])
	}
}
