package eval

import (
	"strings"
	"testing"
)

func TestRunFigure5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := RunFigure5(Options{Scale: 0.08, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x 5 deployments x 2 klocal values.
	if len(fig.Points) != 30 {
		t.Fatalf("want 30 points, got %d", len(fig.Points))
	}
	for _, p := range fig.Points {
		if p.Seconds <= 0 {
			t.Errorf("%s on %s: non-positive time %v", p.Dataset, p.Deployment, p.Seconds)
		}
		if p.Recall < 0 || p.Recall > 1 {
			t.Errorf("%s: recall %v out of range", p.Dataset, p.Recall)
		}
	}
	// Core scalability shape: on the largest dataset, 256 type-I cores must
	// not be drastically slower than 64. At this tiny scale the simulated
	// makespan is dominated by the longest partition task and host timing
	// noise, so only catastrophic inversions fail here; the clean
	// monotone curves are produced by the scale-1.0 harness run
	// (experiments_scale1.txt).
	var t64, t256 float64
	for _, p := range fig.Points {
		if p.Dataset == "twitter-rv" && p.KLocal == 40 && p.NodeType == "type-I" {
			switch p.Cores {
			case 64:
				t64 = p.Seconds
			case 256:
				t256 = p.Seconds
			}
		}
	}
	if t64 == 0 || t256 == 0 {
		t.Fatal("missing scalability endpoints")
	}
	if t256 > 4*t64 {
		t.Errorf("more cores drastically slower: 64 cores %.3fs vs 256 cores %.3fs", t64, t256)
	}
	// Within one deployment, the 6x-larger twitter analog must not be
	// faster than livejournal by more than noise.
	var lj float64
	for _, p := range fig.Points {
		if p.Dataset == "livejournal" && p.KLocal == 40 && p.Cores == 64 && p.NodeType == "type-I" {
			lj = p.Seconds
		}
	}
	if lj > 1.5*t64 {
		t.Errorf("livejournal (%.3fs) much slower than the 6x-larger twitter analog (%.3fs)", lj, t64)
	}
	var sb strings.Builder
	fig.Fprint(&sb)
	if !strings.Contains(sb.String(), "Figure 5") || !strings.Contains(sb.String(), "256 cores") {
		t.Error("render incomplete")
	}
}
