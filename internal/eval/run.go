package eval

import (
	"fmt"
	"io"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/engine"
	"snaple/internal/gas"
	"snaple/internal/graph"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every dataset's vertex count (default 1.0, sized for
	// a small machine; the paper's graphs are ~100-60000x larger).
	Scale float64
	// Seed drives dataset generation, splits, truncation and walks.
	Seed uint64
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Engine selects the execution backend SNAPLE runs on: "sim" (default)
	// keeps the simulated cluster whose cost columns (seconds, traffic,
	// memory) the paper's tables report; "local" and "serial" run the
	// shared-memory backends and "dist" real TCP worker processes instead —
	// predictions (and therefore recall) are bit-identical, but the
	// simulated cost columns read as zero. Use the shared-memory backends
	// to iterate on quality experiments quickly.
	Engine string
	// Workers bounds each backend's host goroutines (0 = GOMAXPROCS). It
	// never affects results or simulated costs.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// Deployment describes the simulated cluster an experiment runs on. The
// paper's reference deployments are provided as constructors.
type Deployment struct {
	Nodes int
	Spec  cluster.NodeSpec
	// Budget optionally overrides the per-node memory budget.
	Budget int64
}

// Cores returns the deployment's total core count (the unit the paper's
// scalability plots use).
func (d Deployment) Cores() int { return d.Nodes * d.Spec.Cores }

// String renders like the paper: "80 cores (4 type-II nodes)".
func (d Deployment) String() string {
	return fmt.Sprintf("%d cores (%d %s nodes)", d.Cores(), d.Nodes, d.Spec.Name)
}

// FourTypeII is the 80-core deployment of Table 5.
func FourTypeII() Deployment { return Deployment{Nodes: 4, Spec: cluster.TypeII()} }

// OneTypeII is the single-machine deployment of Table 6.
func OneTypeII() Deployment { return Deployment{Nodes: 1, Spec: cluster.TypeII()} }

// TypeIDeployment returns an n-node type-I deployment (8 cores each).
func TypeIDeployment(nodes int) Deployment {
	return Deployment{Nodes: nodes, Spec: cluster.TypeI()}
}

// TypeIIDeployment returns an n-node type-II deployment (20 cores each).
func TypeIIDeployment(nodes int) Deployment {
	return Deployment{Nodes: nodes, Spec: cluster.TypeII()}
}

// sim maps a deployment onto the engine layer's Sim backend with the
// experiment-wide worker bound.
func (o Options) sim(d Deployment, seed uint64) engine.Sim {
	return engine.Sim{
		Nodes: d.Nodes, Spec: d.Spec, MemBudgetBytes: d.Budget,
		Seed: seed, Workers: o.Workers,
	}
}

// backend maps the experiment options onto an engine backend for the given
// deployment (which only the sim backend consults). It delegates name
// resolution to engine.New; only the empty-name default differs — eval
// defaults to "sim" because the paper's tables report simulated costs.
func (o Options) backend(d Deployment, seed uint64) (engine.Backend, error) {
	name := o.Engine
	if name == "" {
		name = "sim"
	}
	be, err := engine.New(name, o.Workers, seed)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	if _, ok := be.(engine.Sim); ok {
		return o.sim(d, seed), nil // replace the default deployment with d's
	}
	return be, nil
}

// runSnaple runs Algorithm 2 over g on the backend selected by opts (the
// simulated cluster d by default). The predictions are identical across
// backends. The sim backend fills the full cost report (per-superstep
// breakdown included); the shared-memory backends report only host wall
// time, leaving the simulated cost fields zero.
func runSnaple(opts Options, g graph.View, d Deployment, cfg core.Config) (*core.Result, error) {
	be, err := opts.backend(d, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if sim, ok := be.(engine.Sim); ok {
		return sim.PredictResult(g, cfg)
	}
	preds, st, err := be.Predict(g, cfg)
	if err != nil {
		return nil, err // match the sim branch's nil-on-error contract
	}
	res := &core.Result{Pred: preds}
	res.Total = gas.StepStats{WallSeconds: st.WallSeconds}
	return res, err
}

// runBaseline distributes g over d and runs the naive BASELINE (always on
// the sim substrate: the experiment's point is its cost blow-up).
func runBaseline(opts Options, g graph.View, d Deployment, k int, seed uint64) (*core.Result, error) {
	assign, cl, err := opts.sim(d, seed).Deploy(g)
	if err != nil {
		return nil, err
	}
	return core.PredictBaselineGASWorkers(g, assign, cl, k, opts.Workers)
}

// snapleConfig assembles a Config from a Table 3 score name with the
// harness-wide defaults (α = 0.9, k = 5).
func snapleConfig(score string, thr, klocal int, seed uint64) (core.Config, error) {
	spec, err := core.ScoreByName(score, 0.9)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Score:    spec,
		K:        5,
		KLocal:   klocal,
		ThrGamma: thr,
		Seed:     seed,
	}, nil
}

// loadSplit generates a dataset analog and its 1-edge-per-vertex split.
func loadSplit(name string, opts Options, removedPerVertex int) (*Split, *graph.Digraph, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, nil, err
	}
	g, err := ds.Generate(opts.Scale, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	split, err := MakeSplit(g, removedPerVertex, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	return split, g, nil
}

// inf renders a sampling parameter the way the paper's tables do.
func inf(v int) string {
	if v == core.Unlimited {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}
