package eval

import (
	"fmt"
	"io"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every dataset's vertex count (default 1.0, sized for
	// a small machine; the paper's graphs are ~100-60000x larger).
	Scale float64
	// Seed drives dataset generation, splits, truncation and walks.
	Seed uint64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// Deployment describes the simulated cluster an experiment runs on. The
// paper's reference deployments are provided as constructors.
type Deployment struct {
	Nodes int
	Spec  cluster.NodeSpec
	// Budget optionally overrides the per-node memory budget.
	Budget int64
}

// Cores returns the deployment's total core count (the unit the paper's
// scalability plots use).
func (d Deployment) Cores() int { return d.Nodes * d.Spec.Cores }

// String renders like the paper: "80 cores (4 type-II nodes)".
func (d Deployment) String() string {
	return fmt.Sprintf("%d cores (%d %s nodes)", d.Cores(), d.Nodes, d.Spec.Name)
}

// FourTypeII is the 80-core deployment of Table 5.
func FourTypeII() Deployment { return Deployment{Nodes: 4, Spec: cluster.TypeII()} }

// OneTypeII is the single-machine deployment of Table 6.
func OneTypeII() Deployment { return Deployment{Nodes: 1, Spec: cluster.TypeII()} }

// TypeIDeployment returns an n-node type-I deployment (8 cores each).
func TypeIDeployment(nodes int) Deployment {
	return Deployment{Nodes: nodes, Spec: cluster.TypeI()}
}

// TypeIIDeployment returns an n-node type-II deployment (20 cores each).
func TypeIIDeployment(nodes int) Deployment {
	return Deployment{Nodes: nodes, Spec: cluster.TypeII()}
}

// deploy partitions g across the deployment, one partition per core, using
// the engine's default random vertex-cut.
func deploy(g *graph.Digraph, d Deployment, seed uint64) (partition.Assignment, *cluster.Cluster, error) {
	parts := d.Cores()
	assign, err := partition.HashEdge{Seed: seed}.Partition(g, parts)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	cl, err := cluster.New(cluster.Config{Nodes: d.Nodes, Spec: d.Spec, MemBudgetBytes: d.Budget}, parts)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	return assign, cl, nil
}

// runSnaple distributes g over d and runs Algorithm 2.
func runSnaple(g *graph.Digraph, d Deployment, cfg core.Config) (*core.Result, error) {
	assign, cl, err := deploy(g, d, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return core.PredictGAS(g, assign, cl, cfg)
}

// runBaseline distributes g over d and runs the naive BASELINE.
func runBaseline(g *graph.Digraph, d Deployment, k int, seed uint64) (*core.Result, error) {
	assign, cl, err := deploy(g, d, seed)
	if err != nil {
		return nil, err
	}
	return core.PredictBaselineGAS(g, assign, cl, k)
}

// snapleConfig assembles a Config from a Table 3 score name with the
// harness-wide defaults (α = 0.9, k = 5).
func snapleConfig(score string, thr, klocal int, seed uint64) (core.Config, error) {
	spec, err := core.ScoreByName(score, 0.9)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Score:    spec,
		K:        5,
		KLocal:   klocal,
		ThrGamma: thr,
		Seed:     seed,
	}, nil
}

// loadSplit generates a dataset analog and its 1-edge-per-vertex split.
func loadSplit(name string, opts Options, removedPerVertex int) (*Split, *graph.Digraph, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, nil, err
	}
	g, err := ds.Generate(opts.Scale, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	split, err := MakeSplit(g, removedPerVertex, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	return split, g, nil
}

// inf renders a sampling parameter the way the paper's tables do.
func inf(v int) string {
	if v == core.Unlimited {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}
