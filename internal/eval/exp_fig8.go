package eval

import (
	"fmt"
	"io"
	"strings"
)

// Figure8Point is one (time, recall) point: a score configuration at one
// klocal on one dataset.
type Figure8Point struct {
	Dataset    string
	Score      string
	Aggregator string // "Sum", "Mean", "Geom"
	KLocal     int
	Seconds    float64 // simulated cluster seconds
	Recall     float64
}

// Figure8 reproduces Figure 8: computing time against recall for every
// Table 3 scoring configuration at klocal ∈ {5,10,20,40,80}, grouped by
// aggregator, on livejournal and twitter-rv.
type Figure8 struct {
	Points []Figure8Point
}

// figure8Scores maps each aggregator panel to its score lineup.
func figure8Scores() map[string][]string {
	return map[string][]string{
		"Sum":  {"counter", "euclSum", "geomSum", "linearSum", "PPR"},
		"Mean": {"euclMean", "geomMean", "linearMean"},
		"Geom": {"euclGeom", "geomGeom", "linearGeom"},
	}
}

// RunFigure8 executes the scoring-configuration sweep.
func RunFigure8(opts Options) (*Figure8, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	fig := &Figure8{}
	for _, name := range []string{"livejournal", "twitter-rv"} {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		for _, agg := range []string{"Sum", "Mean", "Geom"} {
			for _, score := range figure8Scores()[agg] {
				for _, klocal := range []int{5, 10, 20, 40, 80} {
					cfg, err := snapleConfig(score, 200, klocal, opts.Seed)
					if err != nil {
						return nil, err
					}
					res, err := runSnaple(opts, split.Train, dep, cfg)
					if err != nil {
						return nil, fmt.Errorf("fig8: %s %s klocal=%d: %w", name, score, klocal, err)
					}
					p := Figure8Point{
						Dataset: name, Score: score, Aggregator: agg, KLocal: klocal,
						Seconds: res.Total.SimSeconds(), Recall: Recall(res.Pred, split),
					}
					fig.Points = append(fig.Points, p)
					opts.logf("fig8: %s %s klocal=%d sim=%.3fs recall=%.3f",
						name, score, klocal, p.Seconds, p.Recall)
				}
			}
		}
	}
	return fig, nil
}

// Fprint renders the six panels (aggregator x dataset) as tables of
// (klocal, seconds, recall) series per score.
func (f *Figure8) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: computing time vs recall per scoring configuration")
	for _, agg := range []string{"Sum", "Mean", "Geom"} {
		for _, ds := range []string{"livejournal", "twitter-rv"} {
			var rows []Figure8Point
			for _, p := range f.Points {
				if p.Aggregator == agg && p.Dataset == ds {
					rows = append(rows, p)
				}
			}
			if len(rows) == 0 {
				continue
			}
			fmt.Fprintf(w, "\n(%s aggregator, %s)\n", agg, ds)
			fmt.Fprintf(w, "%-12s %-7s %-10s %-8s\n", "score", "klocal", "time(s)", "recall")
			for _, p := range rows {
				fmt.Fprintf(w, "%-12s %-7d %-10.3f %-8.3f\n", p.Score, p.KLocal, p.Seconds, p.Recall)
			}
		}
	}
}

// BestRecall returns the best-recall point for a dataset (used by reports).
func (f *Figure8) BestRecall(dataset string) (Figure8Point, bool) {
	var best Figure8Point
	found := false
	for _, p := range f.Points {
		if p.Dataset != dataset {
			continue
		}
		if !found || p.Recall > best.Recall ||
			(p.Recall == best.Recall && p.Seconds < best.Seconds) {
			best = p
			found = true
		}
	}
	return best, found
}

// String summarises the sweep extent.
func (f *Figure8) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure8{%d points}", len(f.Points))
	return b.String()
}
