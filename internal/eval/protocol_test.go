package eval

import (
	"testing"
	"testing/quick"

	"snaple/internal/core"
	"snaple/internal/gen"
	"snaple/internal/graph"
)

func TestMakeSplitBasics(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 500, Communities: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	split, err := MakeSplit(g, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if split.NumRemoved == 0 {
		t.Fatal("nothing removed")
	}
	if split.Train.NumEdges()+split.NumRemoved != g.NumEdges() {
		t.Fatalf("edges: train %d + removed %d != original %d",
			split.Train.NumEdges(), split.NumRemoved, g.NumEdges())
	}
	for u, hidden := range split.Removed {
		if g.OutDegree(u) <= 3 {
			t.Fatalf("vertex %d with degree %d had edges removed", u, g.OutDegree(u))
		}
		if len(hidden) != 1 {
			t.Fatalf("vertex %d lost %d edges, want 1", u, len(hidden))
		}
		for _, v := range hidden {
			if !g.HasEdge(u, v) {
				t.Fatalf("removed edge (%d,%d) not in original", u, v)
			}
			if split.Train.HasEdge(u, v) {
				t.Fatalf("removed edge (%d,%d) still in train graph", u, v)
			}
		}
	}
	// Deterministic.
	split2, err := MakeSplit(g, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if split2.NumRemoved != split.NumRemoved {
		t.Error("split not deterministic")
	}
}

func TestMakeSplitMultiRemove(t *testing.T) {
	// Vertex 0 has degree 5 (>3): removing 10 edges must leave exactly one.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 0, Dst: 5},
	}
	g := graph.MustFromEdges(6, edges)
	split, err := MakeSplit(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := split.Train.OutDegree(0); got != 1 {
		t.Errorf("train degree of 0 = %d, want 1 (all but one removed)", got)
	}
	if split.NumRemoved != 4 {
		t.Errorf("NumRemoved = %d, want 4", split.NumRemoved)
	}
	if _, err := MakeSplit(g, 0, 1); err == nil {
		t.Error("perVertex=0 accepted")
	}
}

func TestRecallBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.Community(gen.CommunityConfig{N: 300, Communities: 6}, seed%16)
		if err != nil {
			return false
		}
		split, err := MakeSplit(g, 1, seed)
		if err != nil {
			return false
		}
		pred, err := core.ReferenceSnaple(split.Train, core.Config{
			Score: mustSpec("linearSum"), K: 5, KLocal: 10, Seed: seed,
		})
		if err != nil {
			return false
		}
		r := Recall(pred, split)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func mustSpec(name string) core.ScoreSpec {
	s, err := core.ScoreByName(name, 0.9)
	if err != nil {
		panic(err)
	}
	return s
}

func TestRecallExact(t *testing.T) {
	split := &Split{
		NumRemoved: 4,
		Removed: map[graph.VertexID][]graph.VertexID{
			0: {5, 7},
			1: {9},
			2: {3},
		},
	}
	pred := make(core.Predictions, 3)
	pred[0] = []core.Prediction{{Vertex: 5, Score: 1}, {Vertex: 8, Score: 0.5}} // 1 hit
	pred[1] = []core.Prediction{{Vertex: 9, Score: 1}}                          // 1 hit
	pred[2] = []core.Prediction{{Vertex: 4, Score: 1}}                          // miss
	if got := Recall(pred, split); got != 0.5 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
	// RecallAt truncates lists.
	pred[0] = []core.Prediction{{Vertex: 8, Score: 2}, {Vertex: 5, Score: 1}}
	if got := RecallAt(pred, split, 1); got != 0.25 {
		t.Errorf("RecallAt(1) = %v, want 0.25 (only vertex 1 hits in top-1)", got)
	}
	if got := RecallAt(pred, split, 2); got != 0.5 {
		t.Errorf("RecallAt(2) = %v, want 0.5", got)
	}
}

func TestSnapleBeatsRandomGuessing(t *testing.T) {
	// Integration: on a homophilous graph, SNAPLE's recall must be far above
	// the random-guess floor k/(N-1).
	g, err := gen.Community(gen.CommunityConfig{N: 1000, Communities: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	split, err := MakeSplit(g, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.ReferenceSnaple(split.Train, core.Config{
		Score: mustSpec("linearSum"), K: 5, KLocal: 20, ThrGamma: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recall(pred, split)
	floor := 5.0 / float64(g.NumVertices()-1)
	if rec < 10*floor {
		t.Errorf("recall %.4f not clearly above random floor %.4f", rec, floor)
	}
	if rec < 0.05 {
		t.Errorf("recall %.4f implausibly low for a homophilous graph", rec)
	}
}
