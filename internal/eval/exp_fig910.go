package eval

import (
	"fmt"
	"io"

	"snaple/internal/core"
)

// Figure9Row is one point of Figure 9: recall when returning k predictions.
type Figure9Row struct {
	Dataset string
	Score   string
	K       int
	Recall  float64
}

// Figure9 reproduces Figure 9: recall against the number of returned
// predictions k ∈ {5,10,15,20} with klocal = 80, for the Sum-family scores
// on livejournal and pokec.
type Figure9 struct {
	Rows []Figure9Row
}

// RunFigure9 executes the k sweep. Each (dataset, score) pair runs once
// with k = 20; recall at smaller k is evaluated on list prefixes (the lists
// are best-first, so recall@k is exactly the paper's metric).
func RunFigure9(opts Options) (*Figure9, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	fig := &Figure9{}
	ks := []int{5, 10, 15, 20}
	for _, name := range []string{"livejournal", "pokec"} {
		split, _, err := loadSplit(name, opts, 1)
		if err != nil {
			return nil, err
		}
		for _, score := range core.SumFamilyScores() {
			cfg, err := snapleConfig(score, 200, 80, opts.Seed)
			if err != nil {
				return nil, err
			}
			cfg.K = 20
			res, err := runSnaple(opts, split.Train, dep, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig9: %s %s: %w", name, score, err)
			}
			for _, k := range ks {
				rec := RecallAt(res.Pred, split, k)
				fig.Rows = append(fig.Rows, Figure9Row{Dataset: name, Score: score, K: k, Recall: rec})
				opts.logf("fig9: %s %s k=%d recall=%.3f", name, score, k, rec)
			}
		}
	}
	return fig, nil
}

// Fprint renders both panels.
func (f *Figure9) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: recall vs number of recommendations k (klocal=80)")
	fmt.Fprintf(w, "%-13s %-11s %-4s %-8s\n", "dataset", "score", "k", "recall")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-13s %-11s %-4d %-8.3f\n", r.Dataset, r.Score, r.K, r.Recall)
	}
}

// RecallAt computes recall using only the first k predictions per vertex.
func RecallAt(pred core.Predictions, s *Split, k int) float64 {
	if s.NumRemoved == 0 {
		return 0
	}
	hits := 0
	for u, hidden := range s.Removed {
		if int(u) >= len(pred) {
			continue
		}
		ps := pred[u]
		if len(ps) > k {
			ps = ps[:k]
		}
		for _, p := range ps {
			if containsID(hidden, p.Vertex) {
				hits++
			}
		}
	}
	return float64(hits) / float64(s.NumRemoved)
}

// Figure10Row is one point of Figure 10: recall when r edges per vertex are
// hidden.
type Figure10Row struct {
	Dataset string
	Score   string
	Removed int
	Recall  float64
}

// Figure10 reproduces Figure 10: recall against the number of removed edges
// per vertex (1..5) with klocal = 80, Sum-family scores, livejournal and
// pokec.
type Figure10 struct {
	Rows []Figure10Row
}

// RunFigure10 executes the removed-edges sweep.
func RunFigure10(opts Options) (*Figure10, error) {
	opts = opts.withDefaults()
	dep := FourTypeII()
	fig := &Figure10{}
	for _, name := range []string{"livejournal", "pokec"} {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g, err := ds.Generate(opts.Scale, opts.Seed)
		if err != nil {
			return nil, err
		}
		for removed := 1; removed <= 5; removed++ {
			split, err := MakeSplit(g, removed, opts.Seed)
			if err != nil {
				return nil, err
			}
			for _, score := range core.SumFamilyScores() {
				cfg, err := snapleConfig(score, 200, 80, opts.Seed)
				if err != nil {
					return nil, err
				}
				res, err := runSnaple(opts, split.Train, dep, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig10: %s %s removed=%d: %w", name, score, removed, err)
				}
				rec := Recall(res.Pred, split)
				fig.Rows = append(fig.Rows, Figure10Row{
					Dataset: name, Score: score, Removed: removed, Recall: rec,
				})
				opts.logf("fig10: %s %s removed=%d recall=%.3f", name, score, removed, rec)
			}
		}
	}
	return fig, nil
}

// Fprint renders both panels.
func (f *Figure10) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: recall vs removed edges per vertex (klocal=80)")
	fmt.Fprintf(w, "%-13s %-11s %-8s %-8s\n", "dataset", "score", "removed", "recall")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-13s %-11s %-8d %-8.3f\n", r.Dataset, r.Score, r.Removed, r.Recall)
	}
}
