//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load paths; non-unix builds read into
// an aligned heap buffer instead (see mmap_stub.go).
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only. The mapping outlives
// the file descriptor, so callers may close f immediately.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("graph: mmap: empty file")
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("graph: mmap: file of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap: %w", err)
	}
	return data, nil
}

func munmapBytes(b []byte) {
	// Unmapping can only fail on an address-range mistake, which would be
	// a bug in this package, not a runtime condition; there is no caller
	// that could act on the error.
	_ = syscall.Munmap(b)
}
