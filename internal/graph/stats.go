package graph

import (
	"fmt"
	"sort"

	"snaple/internal/randx"
)

// Stats summarises a graph's shape.
type Stats struct {
	Vertices     int
	Edges        int
	AvgOutDegree float64
	MaxOutDegree int
	// Isolated counts vertices with neither in- nor out-edges (computed from
	// the out-CSR alone when no reverse adjacency exists, so it then counts
	// zero-out-degree vertices that also never appear as a target).
	Isolated int
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Digraph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	touched := make([]bool, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		d := g.OutDegree(VertexID(u))
		if d > 0 {
			touched[u] = true
		}
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
	}
	for _, v := range g.outAdj {
		touched[v] = true
	}
	for _, t := range touched {
		if !t {
			s.Isolated++
		}
	}
	if s.Vertices > 0 {
		s.AvgOutDegree = float64(s.Edges) / float64(s.Vertices)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d avgOutDeg=%.2f maxOutDeg=%d isolated=%d",
		s.Vertices, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.Isolated)
}

// CDFPoint is one point of a degree CDF: the fraction of vertices whose
// out-degree is <= Degree.
type CDFPoint struct {
	Degree   int
	Fraction float64
}

// OutDegreeCDF evaluates the cumulative distribution of out-degrees at the
// given degree values (Figure 6a-c of the paper). at is sorted in place.
func OutDegreeCDF(g *Digraph, at []int) []CDFPoint {
	sort.Ints(at)
	degs := g.OutDegrees()
	sort.Ints(degs)
	n := len(degs)
	out := make([]CDFPoint, 0, len(at))
	for _, d := range at {
		// count of degrees <= d
		idx := sort.SearchInts(degs, d+1)
		frac := 0.0
		if n > 0 {
			frac = float64(idx) / float64(n)
		}
		out = append(out, CDFPoint{Degree: d, Fraction: frac})
	}
	return out
}

// FractionTruncated returns the fraction of vertices whose out-degree
// exceeds thr, i.e. the vertices affected by the truncation threshold thrΓ
// (the minority discussed in Section 5.5).
func FractionTruncated(g View, thr int) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	c := 0
	for u := 0; u < g.NumVertices(); u++ {
		if g.OutDegree(VertexID(u)) > thr {
			c++
		}
	}
	return float64(c) / float64(g.NumVertices())
}

// ApproxClustering estimates the global clustering coefficient (fraction of
// closed wedges) by sampling up to samples wedges uniformly from vertices
// with out-degree >= 2. Field graphs' high clustering is the property that
// makes 2-hop link prediction work (Section 2.2), so the dataset analogs are
// validated against this estimate.
func ApproxClustering(g *Digraph, samples int, seed uint64) float64 {
	var eligible []VertexID
	for u := 0; u < g.NumVertices(); u++ {
		if g.OutDegree(VertexID(u)) >= 2 {
			eligible = append(eligible, VertexID(u))
		}
	}
	if len(eligible) == 0 || samples <= 0 {
		return 0
	}
	closed, valid := 0, 0
	for i := 0; i < samples; i++ {
		u := eligible[randx.Uint64n(uint64(len(eligible)), seed, uint64(i), 1)]
		nbrs := g.OutNeighbors(u)
		a := nbrs[randx.Uint64n(uint64(len(nbrs)), seed, uint64(i), 2)]
		b := nbrs[randx.Uint64n(uint64(len(nbrs)), seed, uint64(i), 3)]
		if a == b {
			// Degenerate wedge; resample cheaply by picking adjacent slots.
			b = nbrs[(int(randx.Uint64n(uint64(len(nbrs)), seed, uint64(i), 4))+1)%len(nbrs)]
			if a == b {
				continue
			}
		}
		valid++
		if g.HasEdge(a, b) {
			closed++
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(closed) / float64(valid)
}
