package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the SNAP edge-list format used by the paper's
// datasets: one "src dst" pair per line, '#' comment headers first. The
// second header line, "# vertices: N", is machine-readable: ReadEdgeList
// honors it in PreserveIDs mode, so a write/read round trip preserves the
// vertex count even when the highest-ID vertices are isolated (without it
// the reader can only infer max(ID)+1 from the edges it sees, silently
// shrinking such graphs).
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d vertices, %d edges\n# %s %d\n",
		g.NumVertices(), g.NumEdges(), vertexHeaderTag, g.NumVertices()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var err error
	buf := make([]byte, 0, 32)
	g.ForEachEdge(func(u, v VertexID) {
		if err != nil {
			return
		}
		buf = strconv.AppendUint(buf[:0], uint64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, '\n')
		_, err = bw.Write(buf)
	})
	if err != nil {
		return fmt.Errorf("graph: write edge: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadOptions configures ReadEdgeList.
type ReadOptions struct {
	// Symmetrize duplicates every edge in both directions (for undirected
	// inputs such as gowalla and orkut).
	Symmetrize bool
	// WithInEdges materialises the reverse adjacency.
	WithInEdges bool
	// PreserveIDs keeps raw vertex IDs instead of remapping them densely.
	// The vertex count is taken from the machine-readable "# vertices: N"
	// header when the file carries one (WriteEdgeList emits it), else
	// inferred as max(ID)+1 — which silently loses trailing isolated
	// vertices, the bug the header exists to fix. Only sensible for inputs
	// that are already dense, e.g. files produced by WriteEdgeList.
	PreserveIDs bool
	// Workers bounds the streaming parser's shard fan-out (0 = GOMAXPROCS,
	// capped so small inputs stay serial). The resulting graph is identical
	// for every value.
	Workers int
	// NoMap forces the heap load path for snapshots: the returned view owns
	// private memory with no mmap aliasing. Mutable consumers — live
	// serving, whose compaction rewrites the snapshot file in place — want
	// this; read-only consumers leave it off and share the page cache.
	NoMap bool
	// Verify runs the full structural-and-checksum validation even on the
	// mapped load path, which otherwise defers the O(edges) row checks and
	// validates only the header and offset columns. Streamed and heap
	// loads always verify fully.
	Verify bool
}

// ReadEdgeList parses a SNAP-style edge list: whitespace-separated vertex-ID
// pairs, blank lines and lines starting with '#' or '%' ignored (except the
// "# vertices: N" header, see ReadOptions.PreserveIDs). Fields past the
// second — the weights or timestamps of weighted SNAP lists — are ignored.
// Vertex IDs may be sparse; they are remapped to a dense range in
// first-appearance order. Any ID is accepted up to 2^32-1.
//
// Regular files are parsed in place with the streaming parallel ingester
// (see ReadEdgeListAt), whose peak memory is the CSR being built plus
// per-shard counters — no edge-list intermediate. Other readers are
// buffered in memory first, then parsed the same way.
func ReadEdgeList(r io.Reader, opts ReadOptions) (*Digraph, error) {
	switch src := r.(type) {
	case *os.File:
		if fi, err := src.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := src.Seek(0, io.SeekCurrent); err == nil {
				return readEdgeListAt(src, pos, fi.Size(), opts)
			}
		}
	case *bytes.Reader:
		// Already random-access: parse the unread portion in place.
		return readEdgeListAt(src, src.Size()-int64(src.Len()), src.Size(), opts)
	case *strings.Reader:
		return readEdgeListAt(src, src.Size()-int64(src.Len()), src.Size(), opts)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return readEdgeListAt(bytes.NewReader(data), 0, int64(len(data)), opts)
}

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatEdgeList is the SNAP-style text edge list.
	FormatEdgeList Format = iota
	// FormatSnapshot is the binary CSR snapshot (see WriteSnapshot).
	FormatSnapshot
)

// DetectFormat classifies a file by its leading bytes (8 suffice). Anything
// that does not carry the snapshot magic is treated as a text edge list.
func DetectFormat(prefix []byte) Format {
	if len(prefix) >= len(snapshotMagic) && string(prefix[:len(snapshotMagic)]) == snapshotMagic {
		return FormatSnapshot
	}
	return FormatEdgeList
}

// LoadInfo describes how OpenGraphFile loaded a graph.
type LoadInfo struct {
	// Format is the detected on-disk encoding.
	Format Format
	// Version is the snapshot format version (0 for edge lists).
	Version int
	// Mapped reports that the view's columns alias a read-only mmap of the
	// file rather than heap memory.
	Mapped bool
	// Packed reports that the adjacency stayed delta-varint compressed:
	// the View is a *Packed.
	Packed bool
	// Bytes is the on-disk size.
	Bytes int64
}

// OpenGraphFile loads a graph from path like ReadGraphFile but preserves
// the storage representation instead of forcing a heap CSR: version-2
// snapshots are mmap'd and viewed in place (unless ReadOptions.NoMap or
// the platform lacks mmap, which fall back to one aligned heap read),
// packed-adjacency snapshots come back as a decode-on-demand *Packed, and
// the LoadInfo reports which path was taken. This is the loader behind
// `snaple -in`, snaple-serve and snaple-bench's load rows.
//
// Snapshots bake Symmetrize and the ID space in at pack time, so
// Symmetrize is rejected for them; WithInEdges materialises the reverse
// adjacency when absent for CSR views and is an error for packed views
// without baked-in in-adjacency (decode via ReadGraphFile instead).
func OpenGraphFile(path string, opts ReadOptions) (View, LoadInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadInfo{}, fmt.Errorf("graph: open %s: %w", path, err)
	}
	defer f.Close()
	var magic [len(snapshotMagic)]byte
	n, err := f.ReadAt(magic[:], 0)
	if (err != nil && err != io.EOF) || DetectFormat(magic[:n]) != FormatSnapshot {
		// A text edge list, or unseekable input (pipe, device) that only
		// the text decoder streams.
		g, err := ReadEdgeList(f, opts)
		if err != nil {
			return nil, LoadInfo{}, err
		}
		info := LoadInfo{Format: FormatEdgeList}
		if fi, serr := f.Stat(); serr == nil {
			info.Bytes = fi.Size()
		}
		return g, info, nil
	}
	if opts.Symmetrize {
		return nil, LoadInfo{}, fmt.Errorf("graph: %s: snapshots are packed directed; Symmetrize applies when packing", path)
	}
	return openSnapshotFile(f, path, opts)
}

// openSnapshotFile routes an opened .sgr file to the right load path:
// streaming decode for version-1 layouts, in-place viewing (mmap or one
// aligned heap read) for version 2.
func openSnapshotFile(f *os.File, path string, opts ReadOptions) (View, LoadInfo, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, LoadInfo{}, fmt.Errorf("graph: %s: %w", path, err)
	}
	size := fi.Size()
	info := LoadInfo{Format: FormatSnapshot, Bytes: size}
	var hdr [snapshotHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, info, fmt.Errorf("graph: %s: read header: %w", path, err)
	}
	h, err := parseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, info, fmt.Errorf("graph: %s: %w", path, err)
	}
	info.Version = int(h.version)
	info.Packed = h.packed()
	if h.version == snapshotVersionV1 {
		// No aligned layout to view: stream-decode onto the heap.
		g, err := ReadSnapshot(f)
		if err != nil {
			return nil, info, fmt.Errorf("graph: %s: %w", path, err)
		}
		return finishSnapshotView(g, info, opts, path)
	}
	if !opts.NoMap && mmapSupported {
		if m, merr := mmapFile(f, size); merr == nil {
			v, verr := viewSnapshot(m, opts.Verify)
			if verr != nil {
				munmapBytes(m)
				return nil, info, fmt.Errorf("graph: %s: %w", path, verr)
			}
			// The mapping is pinned for the life of the process. Rows
			// handed out by OutNeighbors/InNeighbors alias it and may
			// outlive the view object, so unmapping on the view's
			// collection could fault a live reader; consumers load a
			// snapshot once and serve from it, so the leak is one
			// bounded mapping per opened file.
			info.Mapped = true
			return finishSnapshotView(v, info, opts, path)
		}
		// Any mmap failure falls back to the aligned heap read below.
	}
	data := alignedBytes(size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, info, fmt.Errorf("graph: %s: read: %w", path, err)
	}
	v, verr := viewSnapshot(data, true)
	if verr != nil {
		return nil, info, fmt.Errorf("graph: %s: %w", path, verr)
	}
	return finishSnapshotView(v, info, opts, path)
}

// finishSnapshotView applies WithInEdges to a freshly loaded snapshot view.
func finishSnapshotView(v View, info LoadInfo, opts ReadOptions, path string) (View, LoadInfo, error) {
	if opts.WithInEdges && !v.HasInEdges() {
		g, ok := v.(*Digraph)
		if !ok {
			return nil, info, fmt.Errorf("graph: %s: packed snapshot carries no in-adjacency; re-pack with in-edges or decode to a heap CSR first", path)
		}
		g.buildInAdjacency()
	}
	return v, info, nil
}

// ReadGraphFile loads a graph from path in either supported on-disk format,
// detected by magic bytes: a binary CSR snapshot or a text edge list. opts
// applies to the text decoder; snapshots bake Symmetrize and the ID space
// in at pack time, so Symmetrize is rejected for them and WithInEdges
// materialises the reverse adjacency only when the file does not already
// carry one. The result is always a plain CSR: version-2 snapshots arrive
// with mmap-aliased columns (honouring NoMap) and packed-adjacency
// snapshots are decoded; use OpenGraphFile to keep those compressed.
func ReadGraphFile(path string, opts ReadOptions) (*Digraph, error) {
	open := opts
	open.WithInEdges = false
	v, _, err := OpenGraphFile(path, open)
	if err != nil {
		return nil, err
	}
	var g *Digraph
	switch t := v.(type) {
	case *Digraph:
		g = t
	case *Packed:
		if g, err = t.Decode(); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", path, err)
		}
	default:
		return nil, fmt.Errorf("graph: %s: unexpected view %T", path, v)
	}
	if opts.WithInEdges && !g.HasInEdges() {
		g.buildInAdjacency()
	}
	return g, nil
}
