package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the SNAP edge-list format used by the paper's
// datasets: one "src dst" pair per line, '#' comment headers first. The
// second header line, "# vertices: N", is machine-readable: ReadEdgeList
// honors it in PreserveIDs mode, so a write/read round trip preserves the
// vertex count even when the highest-ID vertices are isolated (without it
// the reader can only infer max(ID)+1 from the edges it sees, silently
// shrinking such graphs).
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d vertices, %d edges\n# %s %d\n",
		g.NumVertices(), g.NumEdges(), vertexHeaderTag, g.NumVertices()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var err error
	buf := make([]byte, 0, 32)
	g.ForEachEdge(func(u, v VertexID) {
		if err != nil {
			return
		}
		buf = strconv.AppendUint(buf[:0], uint64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, '\n')
		_, err = bw.Write(buf)
	})
	if err != nil {
		return fmt.Errorf("graph: write edge: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadOptions configures ReadEdgeList.
type ReadOptions struct {
	// Symmetrize duplicates every edge in both directions (for undirected
	// inputs such as gowalla and orkut).
	Symmetrize bool
	// WithInEdges materialises the reverse adjacency.
	WithInEdges bool
	// PreserveIDs keeps raw vertex IDs instead of remapping them densely.
	// The vertex count is taken from the machine-readable "# vertices: N"
	// header when the file carries one (WriteEdgeList emits it), else
	// inferred as max(ID)+1 — which silently loses trailing isolated
	// vertices, the bug the header exists to fix. Only sensible for inputs
	// that are already dense, e.g. files produced by WriteEdgeList.
	PreserveIDs bool
	// Workers bounds the streaming parser's shard fan-out (0 = GOMAXPROCS,
	// capped so small inputs stay serial). The resulting graph is identical
	// for every value.
	Workers int
}

// ReadEdgeList parses a SNAP-style edge list: whitespace-separated vertex-ID
// pairs, blank lines and lines starting with '#' or '%' ignored (except the
// "# vertices: N" header, see ReadOptions.PreserveIDs). Fields past the
// second — the weights or timestamps of weighted SNAP lists — are ignored.
// Vertex IDs may be sparse; they are remapped to a dense range in
// first-appearance order. Any ID is accepted up to 2^32-1.
//
// Regular files are parsed in place with the streaming parallel ingester
// (see ReadEdgeListAt), whose peak memory is the CSR being built plus
// per-shard counters — no edge-list intermediate. Other readers are
// buffered in memory first, then parsed the same way.
func ReadEdgeList(r io.Reader, opts ReadOptions) (*Digraph, error) {
	switch src := r.(type) {
	case *os.File:
		if fi, err := src.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := src.Seek(0, io.SeekCurrent); err == nil {
				return readEdgeListAt(src, pos, fi.Size(), opts)
			}
		}
	case *bytes.Reader:
		// Already random-access: parse the unread portion in place.
		return readEdgeListAt(src, src.Size()-int64(src.Len()), src.Size(), opts)
	case *strings.Reader:
		return readEdgeListAt(src, src.Size()-int64(src.Len()), src.Size(), opts)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return readEdgeListAt(bytes.NewReader(data), 0, int64(len(data)), opts)
}

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatEdgeList is the SNAP-style text edge list.
	FormatEdgeList Format = iota
	// FormatSnapshot is the binary CSR snapshot (see WriteSnapshot).
	FormatSnapshot
)

// DetectFormat classifies a file by its leading bytes (8 suffice). Anything
// that does not carry the snapshot magic is treated as a text edge list.
func DetectFormat(prefix []byte) Format {
	if len(prefix) >= len(snapshotMagic) && string(prefix[:len(snapshotMagic)]) == snapshotMagic {
		return FormatSnapshot
	}
	return FormatEdgeList
}

// ReadGraphFile loads a graph from path in either supported on-disk format,
// detected by magic bytes: a binary CSR snapshot or a text edge list. opts
// applies to the text decoder; snapshots bake Symmetrize and the ID space
// in at pack time, so Symmetrize is rejected for them and WithInEdges
// materialises the reverse adjacency only when the file does not already
// carry one.
func ReadGraphFile(path string, opts ReadOptions) (*Digraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: open %s: %w", path, err)
	}
	defer f.Close()
	var magic [len(snapshotMagic)]byte
	n, err := f.ReadAt(magic[:], 0)
	if err != nil && err != io.EOF {
		// Unseekable input (pipe, device): only the text decoder streams it.
		return ReadEdgeList(f, opts)
	}
	if DetectFormat(magic[:n]) == FormatSnapshot {
		if opts.Symmetrize {
			return nil, fmt.Errorf("graph: %s: snapshots are packed directed; Symmetrize applies when packing", path)
		}
		g, err := ReadSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("graph: %s: %w", path, err)
		}
		if opts.WithInEdges && !g.HasInEdges() {
			g.buildInAdjacency()
		}
		return g, nil
	}
	return ReadEdgeList(f, opts)
}
