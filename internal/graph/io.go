package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the SNAP edge-list format used by the paper's
// datasets: one "src dst" pair per line, '#' comment header first.
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var err error
	buf := make([]byte, 0, 32)
	g.ForEachEdge(func(u, v VertexID) {
		if err != nil {
			return
		}
		buf = strconv.AppendUint(buf[:0], uint64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, '\n')
		_, err = bw.Write(buf)
	})
	if err != nil {
		return fmt.Errorf("graph: write edge: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadOptions configures ReadEdgeList.
type ReadOptions struct {
	// Symmetrize duplicates every edge in both directions (for undirected
	// inputs such as gowalla and orkut).
	Symmetrize bool
	// WithInEdges materialises the reverse adjacency.
	WithInEdges bool
	// PreserveIDs keeps raw vertex IDs instead of remapping them densely;
	// the vertex count becomes max(ID)+1. Only sensible for inputs that are
	// already dense, e.g. files produced by WriteEdgeList.
	PreserveIDs bool
}

// ReadEdgeList parses a SNAP-style edge list: whitespace-separated vertex-ID
// pairs, blank lines and lines starting with '#' or '%' ignored. Vertex IDs
// may be sparse; they are remapped to a dense range in first-appearance
// order. The number of vertices is max(seen IDs treated densely); any ID is
// accepted up to 2^32-1.
func ReadEdgeList(r io.Reader, opts ReadOptions) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	remap := make(map[uint64]VertexID)
	maxID := uint64(0)
	intern := func(raw uint64) VertexID {
		if opts.PreserveIDs {
			if raw > maxID {
				maxID = raw
			}
			return VertexID(raw)
		}
		if id, ok := remap[raw]; ok {
			return id
		}
		id := VertexID(len(remap))
		remap[raw] = id
		return id
	}

	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		edges = append(edges, Edge{intern(src), intern(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	numVertices := len(remap)
	if opts.PreserveIDs {
		numVertices = 0
		if len(edges) > 0 {
			numVertices = int(maxID) + 1
		}
	}
	b := NewBuilder(numVertices).
		Symmetrize(opts.Symmetrize).
		WithInEdges(opts.WithInEdges)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}
