package graph

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
)

// Streaming parallel edge-list ingestion.
//
// ReadEdgeList used to buffer every parsed edge in a []Edge plus a full
// remap map before the CSR build even started — an O(E) intermediate that
// dominated peak memory and wall time exactly where billion-edge ingest
// (Section 5's headline scale) hurts most. The ingester below removes the
// intermediate: the input is split into one contiguous byte-range shard
// per worker, aligned to newline boundaries, and parsed in multiple cheap
// passes that feed the counting-sort CSR build directly —
//
//   - PreserveIDs mode (dense inputs, e.g. packed or written by
//     WriteEdgeList): a scan pass finds max ID and the "# vertices:"
//     header; a count pass fills a budget-capped groups×V cursor table; a
//     scatter pass writes destinations straight into the
//     duplicate-inclusive CSR layout. No map, no edge list: peak memory is
//     the CSR being built plus the capped cursor table.
//   - Remap mode (sparse raw IDs): pass 1 additionally records each
//     shard's raw IDs in local first-appearance order with a per-shard
//     map; merging those orders in shard order reproduces the sequential
//     reader's dense remap bit for bit (an ID's global first appearance
//     lies in the earliest shard that saw it, at its first position
//     there). Per-shard maps are inherent to parallel remapping and cost
//     O(distinct IDs) per shard in the worst case — for graphs near
//     memory scale, pack once with PreserveIDs instead.
//
// After scattering, finishCSR sorts, deduplicates and compacts the rows;
// scatter order inside a row is irrelevant because rows are sorted
// afterwards, which is what lets any grouping of shards write without
// synchronisation. Results are bit-identical to a sequential read for any
// worker count.
const (
	// ingestChunkBytes is the per-read granularity of the shard scanners.
	ingestChunkBytes = 512 << 10
	// minShardBytes keeps tiny inputs serial: below this per-shard size the
	// goroutine fan-out costs more than it saves.
	minShardBytes = 256 << 10
	// maxLineBytes bounds a single line (the old bufio.Scanner limit was
	// 1 MiB and surfaced as a bare "token too long" with no context; the
	// chunked scanner raises it 64-fold and reports the line number, but an
	// unbounded carry buffer would let one malformed line exhaust memory).
	maxLineBytes = 64 << 20
	// cursorBudgetBytes caps the groups×vertices count/cursor table, the
	// analog of the builder's histBudgetBytes: with very many vertices the
	// count/scatter fan-out is reduced rather than allocating unboundedly.
	cursorBudgetBytes = 1 << 30
)

// parseError carries the byte offset of the line that failed so the caller
// can report a line number without every shard counting lines it skips.
type parseError struct {
	off int64
	err error
}

func (e *parseError) Error() string { return e.err.Error() }
func (e *parseError) Unwrap() error { return e.err }

// ReadEdgeListAt parses the SNAP-style edge list stored in ra's first size
// bytes with the streaming parallel ingester. ReadEdgeList delegates here
// for files and in-memory buffers; use it directly to parse a random-access
// region without an *os.File.
func ReadEdgeListAt(ra io.ReaderAt, size int64, opts ReadOptions) (*Digraph, error) {
	return readEdgeListAt(ra, 0, size, opts)
}

// ingest carries the state shared by the ingestion passes.
type ingest struct {
	ra         io.ReaderAt
	start, end int64
	opts       ReadOptions
	workers    int
	shards     []ingestShard
}

func (in *ingest) shardLo(w int) int64 {
	return in.start + (in.end-in.start)*int64(w)/int64(in.workers)
}

// scanShard runs fn over shard w's lines through the shard's reusable
// chunk buffer.
func (in *ingest) scanShard(w int, fn func(off int64, line []byte) error) error {
	return forEachLine(in.ra, in.start, in.shardLo(w), in.shardLo(w+1), in.end, &in.shards[w].buf, fn)
}

func readEdgeListAt(ra io.ReaderAt, start, end int64, opts ReadOptions) (*Digraph, error) {
	if end < start {
		end = start
	}
	in := &ingest{
		ra: ra, start: start, end: end, opts: opts,
		workers: ingestShards(end-start, opts),
	}
	in.shards = make([]ingestShard, in.workers)

	// Pass 1. Both modes validate every line and resolve the vertex space;
	// remap mode also records the per-shard first-appearance orders and
	// degree counts (it has to touch a map per edge anyway — fusing the
	// count into the same pass is free, unlike preserve mode where a
	// dedicated count pass lets the counter table be budget-capped).
	errs := make([]error, in.workers)
	forEachWorker(in.workers, func(w int) {
		s := &in.shards[w]
		s.headerV = -1
		if !opts.PreserveIDs {
			s.local = make(map[uint64]uint32)
		}
		errs[w] = in.scanShard(w, s.pass1(opts))
	})
	if err := firstParseError(ra, start, errs); err != nil {
		return nil, err
	}
	n, err := in.resolveVertexSpace()
	if err != nil {
		return nil, err
	}

	// Group shards so the groups×n count/cursor table respects the budget;
	// each group counts and scatters its shards sequentially through one
	// table row, which stays correct because the interleaved prefix sum
	// below hands every group a reserved sub-range of every CSR row it
	// contributes to.
	groups := in.workers
	if n > 0 {
		if maxG := int(cursorBudgetBytes / (8 * int64(n))); groups > maxG {
			groups = max(maxG, 1)
		}
	}
	groupShards := func(g int) (int, int) { return g * in.workers / groups, (g + 1) * in.workers / groups }

	cnt := make([]int64, groups*n)
	if opts.PreserveIDs {
		// Count pass (preserve mode): straight into the capped table.
		cerrs := make([]error, groups)
		forEachWorker(groups, func(g int) {
			row := cnt[g*n : (g+1)*n]
			lo, hi := groupShards(g)
			for w := lo; w < hi; w++ {
				if err := in.scanShard(w, countLine(opts, row)); err != nil {
					cerrs[g] = err
					return
				}
			}
		})
		if err := errors.Join(cerrs...); err != nil {
			return nil, fmt.Errorf("graph: reread: %w", err)
		}
	} else {
		// Remap mode counted during pass 1; translate the per-shard local
		// counts into the grouped table.
		forEachWorker(groups, func(g int) {
			row := cnt[g*n : (g+1)*n]
			lo, hi := groupShards(g)
			for w := lo; w < hi; w++ {
				s := &in.shards[w]
				for l, c := range s.counts {
					row[s.globalOf[l]] += int64(c)
				}
			}
		})
	}

	// Interleaved prefix sum (vertex-major, group-minor): off becomes the
	// duplicate-inclusive row offsets and cnt each group's write cursors.
	off := make([]int64, n+1)
	var total int64
	for u := 0; u < n; u++ {
		off[u] = total
		for g := 0; g < groups; g++ {
			c := cnt[g*n+u]
			cnt[g*n+u] = total
			total += c
		}
	}
	off[n] = total

	// Scatter pass: re-parse and place destinations. Only valid inputs
	// reach this point, so the per-line callbacks skip anything but
	// well-formed edges.
	adj := make([]VertexID, total)
	rerrs := make([]error, groups)
	forEachWorker(groups, func(g int) {
		cur := cnt[g*n : (g+1)*n]
		lo, hi := groupShards(g)
		for w := lo; w < hi; w++ {
			if err := in.scanShard(w, in.shards[w].scatter(opts, cur, adj)); err != nil {
				rerrs[g] = err
				return
			}
		}
	})
	if err := errors.Join(rerrs...); err != nil {
		return nil, fmt.Errorf("graph: reread: %w", err)
	}
	return finishCSR(in.workers, n, off, adj, opts.WithInEdges), nil
}

// resolveVertexSpace merges the shards' pass-1 results into the vertex
// count, honoring the "# vertices:" header in PreserveIDs mode and filling
// the shards' local→global remap tables otherwise.
func (in *ingest) resolveVertexSpace() (int, error) {
	if in.opts.PreserveIDs {
		headerV := int64(-1)
		for i := range in.shards {
			if hv := in.shards[i].headerV; hv >= 0 {
				if headerV >= 0 && headerV != hv {
					return 0, fmt.Errorf("graph: conflicting '# vertices:' headers (%d and %d)", headerV, hv)
				}
				headerV = hv
			}
		}
		var maxRaw uint64
		sawEdge := false
		for i := range in.shards {
			if in.shards[i].sawEdge {
				sawEdge = true
				maxRaw = max(maxRaw, in.shards[i].maxRaw)
			}
		}
		n := 0
		if sawEdge {
			n = int(maxRaw) + 1
		}
		if headerV >= 0 {
			// headerV <= 2^32 is guaranteed by parseVerticesHeader, which
			// treats anything larger as an ordinary comment.
			if sawEdge && int64(maxRaw) >= headerV {
				return 0, fmt.Errorf("graph: vertex id %d out of range for '# vertices: %d' header", maxRaw, headerV)
			}
			n = int(headerV)
		}
		return n, nil
	}
	// Sequential merge of the shards' local first-appearance orders, in
	// shard order, reproduces the sequential reader's dense remap bit for
	// bit (see the package comment above).
	distinct := 0
	for i := range in.shards {
		distinct += len(in.shards[i].order)
	}
	global := make(map[uint64]VertexID, distinct)
	for i := range in.shards {
		s := &in.shards[i]
		s.globalOf = make([]VertexID, len(s.order))
		for l, raw := range s.order {
			id, ok := global[raw]
			if !ok {
				id = VertexID(len(global))
				global[raw] = id
			}
			s.globalOf[l] = id
		}
	}
	return len(global), nil
}

// ingestShards picks the shard fan-out: the configured worker count, or
// GOMAXPROCS capped so every shard gets a meaningful amount of input.
func ingestShards(size int64, opts ReadOptions) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if maxW := int(size/minShardBytes) + 1; w > maxW {
		w = maxW
	}
	return max(w, 1)
}

// ingestShard is one byte-range shard's parse state across the passes.
type ingestShard struct {
	buf []byte // chunk buffer, reused across passes

	// Remap mode: raw IDs interned densely per shard in first-appearance
	// order; counts is the duplicate-inclusive degree contribution per
	// local ID, globalOf the local→global translation filled by the merge.
	local    map[uint64]uint32
	order    []uint64
	counts   []uint32
	globalOf []VertexID

	// PreserveIDs mode.
	maxRaw uint64

	sawEdge bool
	headerV int64 // value of a '# vertices: N' header seen in this shard (-1: none)
}

func (s *ingestShard) intern(raw uint64) uint32 {
	if l, ok := s.local[raw]; ok {
		return l
	}
	l := uint32(len(s.order))
	s.local[raw] = l
	s.order = append(s.order, raw)
	s.counts = append(s.counts, 0)
	return l
}

// pass1 returns the per-line validation callback: max-ID/header tracking
// in preserve mode, interning plus degree counting in remap mode.
func (s *ingestShard) pass1(opts ReadOptions) func(off int64, line []byte) error {
	return func(off int64, line []byte) error {
		src, dst, kind, err := parseEdgeLine(line)
		if err != nil {
			return &parseError{off: off, err: err}
		}
		switch kind {
		case lineSkip:
			return nil
		case lineHeader:
			// The header only means something in PreserveIDs mode; the
			// dense remap ignores it like any other comment (concatenated
			// WriteEdgeList outputs stay valid remap inputs).
			if opts.PreserveIDs {
				v := int64(src)
				if s.headerV >= 0 && s.headerV != v {
					return &parseError{off: off, err: fmt.Errorf("conflicting '# vertices:' headers (%d and %d)", s.headerV, v)}
				}
				s.headerV = v
			}
			return nil
		}
		s.sawEdge = true
		if opts.PreserveIDs {
			s.maxRaw = max(s.maxRaw, src, dst)
			return nil
		}
		ls := s.intern(src)
		ld := s.intern(dst)
		if src == dst {
			return nil // self-loops are dropped, matching the Builder
		}
		if s.counts[ls] == math.MaxUint32 {
			return &parseError{off: off, err: fmt.Errorf("vertex %d: per-shard edge count overflows uint32", src)}
		}
		s.counts[ls]++
		if opts.Symmetrize {
			if s.counts[ld] == math.MaxUint32 {
				return &parseError{off: off, err: fmt.Errorf("vertex %d: per-shard edge count overflows uint32", dst)}
			}
			s.counts[ld]++
		}
		return nil
	}
}

// countLine returns the preserve-mode counting callback writing into one
// group's row of the count table.
func countLine(opts ReadOptions, row []int64) func(off int64, line []byte) error {
	return func(_ int64, line []byte) error {
		src, dst, kind, err := parseEdgeLine(line)
		if err != nil || kind != lineEdge || src == dst {
			return nil // pass 1 already validated; only kept edges count
		}
		row[src]++
		if opts.Symmetrize {
			row[dst]++
		}
		return nil
	}
}

// scatter returns the per-line scatter callback writing through cur.
func (s *ingestShard) scatter(opts ReadOptions, cur []int64, adj []VertexID) func(off int64, line []byte) error {
	return func(_ int64, line []byte) error {
		src, dst, kind, err := parseEdgeLine(line)
		if err != nil || kind != lineEdge || src == dst {
			return nil
		}
		var gs, gd VertexID
		if opts.PreserveIDs {
			gs, gd = VertexID(src), VertexID(dst)
		} else {
			gs = s.globalOf[s.local[src]]
			gd = s.globalOf[s.local[dst]]
		}
		adj[cur[gs]] = gd
		cur[gs]++
		if opts.Symmetrize {
			adj[cur[gd]] = gs
			cur[gd]++
		}
		return nil
	}
}

// firstParseError turns the shards' errors into the sequential reader's
// contract: the failure on the earliest bad line wins, reported with its
// 1-based line number (counted only on the error path).
func firstParseError(ra io.ReaderAt, start int64, errs []error) error {
	var best *parseError
	var other error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var pe *parseError
		if errors.As(e, &pe) {
			if best == nil || pe.off < best.off {
				best = pe
			}
		} else if other == nil {
			other = e
		}
	}
	if best != nil {
		return fmt.Errorf("graph: line %d: %w", lineNumberAt(ra, start, best.off), best.err)
	}
	if other != nil {
		return fmt.Errorf("graph: read: %w", other)
	}
	return nil
}

// lineNumberAt returns the 1-based line number of the line starting at off.
func lineNumberAt(ra io.ReaderAt, start, off int64) int {
	buf := make([]byte, ingestChunkBytes)
	n := 1
	for pos := start; pos < off; {
		m, err := ra.ReadAt(buf[:min(int64(len(buf)), off-pos)], pos)
		if m <= 0 {
			break
		}
		n += bytes.Count(buf[:m], []byte{'\n'})
		pos += int64(m)
		if err != nil {
			break
		}
	}
	return n
}
