package graph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Packed is a read-only View whose adjacency is stored compressed: row u
// occupies out[outOff[u]:outOff[u+1]], encoded as uvarint(degree) followed
// by one uvarint per neighbour holding the gap to the previous neighbour.
// The first gap is taken against an implicit -1, so every gap in a valid
// row is ≥ 1 and a zero gap can never decode into a sorted row — the codec
// has no way to express duplicates or descending rows, which is what makes
// corruption detectable by decoding alone. Power-law rows with clustered
// IDs compress to 1-2 bytes per edge instead of 4.
//
// Rows decode on demand into caller buffers (AppendOutRow is the seam the
// engine layers already amortise); nothing is materialised at load, so a
// packed snapshot serves queries in whatever the blob size is. The trade is
// O(row bytes) sequential decode per access instead of O(1) slicing, and
// HasEdge degrades from binary search to an early-exit linear scan. AsCSR
// deliberately returns false for *Packed, keeping the monomorphic CSR fast
// paths for plain graphs while everything else falls back to the View seam.
type Packed struct {
	numVertices int
	numEdges    int64
	outOff      []int64 // len numVertices+1; byte offsets into out
	out         []byte
	inOff       []int64 // optional reverse adjacency, same encoding
	in          []byte
}

// PackGraph compresses g into a Packed view — the in-memory analogue of
// writing a packed snapshot and reopening it. The reverse adjacency is
// packed too when g carries one.
func PackGraph(g *Digraph) *Packed {
	outOff := g.outOff
	if outOff == nil {
		outOff = []int64{0}
	}
	p := &Packed{numVertices: g.numVertices, numEdges: int64(g.NumEdges())}
	p.outOff, p.out = packColumn(outOff, g.outAdj)
	if g.HasInEdges() {
		p.inOff, p.in = packColumn(g.inOff, g.inAdj)
	}
	return p
}

func packColumn(off []int64, adj []VertexID) ([]int64, []byte) {
	poff := packedOffsets(off, adj)
	blob := make([]byte, 0, poff[len(poff)-1])
	for u := 0; u+1 < len(off); u++ {
		blob = appendPackedRow(blob, adj[off[u]:off[u+1]])
	}
	return poff, blob
}

func (p *Packed) NumVertices() int { return p.numVertices }
func (p *Packed) NumEdges() int    { return int(p.numEdges) }

// String summarises the packed graph for logs.
func (p *Packed) String() string {
	return fmt.Sprintf("packed{V=%d E=%d bytes=%d}", p.numVertices, p.numEdges, len(p.out)+len(p.in))
}

// row returns u's encoded block.
func (p *Packed) row(u VertexID) []byte { return p.out[p.outOff[u]:p.outOff[u+1]] }

// OutDegree decodes the row's degree prefix: O(1), no row scan.
func (p *Packed) OutDegree(u VertexID) int { return packedDegree(p.row(u)) }

// OutNeighbors decodes u's row into a fresh slice. Hot paths should use
// AppendOutRow with a reused buffer instead.
func (p *Packed) OutNeighbors(u VertexID) []VertexID { return p.AppendOutRow(nil, u) }

// AppendOutRow decodes u's row, appending to buf.
func (p *Packed) AppendOutRow(buf []VertexID, u VertexID) []VertexID {
	return appendPackedNeighbors(buf, p.row(u))
}

// HasEdge scans u's row with early exit at the first neighbour ≥ v; rows
// average a handful of bytes, so this stays competitive with the CSR's
// binary search except on hubs.
func (p *Packed) HasEdge(u, v VertexID) bool {
	b := p.row(u)
	deg, k := binary.Uvarint(b)
	if k <= 0 {
		return false
	}
	prev := int64(-1)
	for i := uint64(0); i < deg && k < len(b); i++ {
		d, m := binary.Uvarint(b[k:])
		if m <= 0 {
			return false
		}
		k += m
		prev += int64(d)
		if prev >= int64(v) {
			return prev == int64(v)
		}
	}
	return false
}

// ForEachEdge visits every edge in (src, dst) order, decoding row by row
// through one reused buffer.
func (p *Packed) ForEachEdge(fn func(u, v VertexID)) {
	buf := make([]VertexID, 0, 64)
	for u := 0; u < p.numVertices; u++ {
		buf = p.AppendOutRow(buf[:0], VertexID(u))
		for _, v := range buf {
			fn(VertexID(u), v)
		}
	}
}

// HasInEdges reports whether the packed reverse adjacency is present.
func (p *Packed) HasInEdges() bool { return p.inOff != nil }

func (p *Packed) inRow(u VertexID) []byte { return p.in[p.inOff[u]:p.inOff[u+1]] }

// InDegree decodes the in-row's degree prefix. It panics unless the
// snapshot carried in-adjacency sections.
func (p *Packed) InDegree(u VertexID) int { return packedDegree(p.inRow(u)) }

// InNeighbors decodes u's in-row into a fresh slice.
func (p *Packed) InNeighbors(u VertexID) []VertexID { return p.AppendInRow(nil, u) }

// AppendInRow decodes u's in-row, appending to buf.
func (p *Packed) AppendInRow(buf []VertexID, u VertexID) []VertexID {
	return appendPackedNeighbors(buf, p.inRow(u))
}

// Decode materialises the packed graph as a plain heap CSR, fully
// validating every row on the way (a Packed opened without Verify has only
// had its offset columns checked). Consumers that need *Digraph-only
// machinery — delta overlays, eval splits, fleet packing — decode once and
// keep the CSR.
func (p *Packed) Decode() (*Digraph, error) {
	g := &Digraph{numVertices: p.numVertices}
	var err error
	if g.outOff, g.outAdj, err = decodePackedColumn(p.numVertices, p.outOff, p.out, p.numEdges, "out"); err != nil {
		return nil, err
	}
	if p.HasInEdges() {
		if g.inOff, g.inAdj, err = decodePackedColumn(p.numVertices, p.inOff, p.in, p.numEdges, "in"); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ---- row codec ----

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// packedRowLen returns the encoded size of one row block.
func packedRowLen(row []VertexID) int {
	n := uvarintLen(uint64(len(row)))
	prev := int64(-1)
	for _, v := range row {
		n += uvarintLen(uint64(int64(v) - prev))
		prev = int64(v)
	}
	return n
}

// packedOffsets sizes every row block of a CSR without encoding anything,
// returning the byte-offset column of the packed layout (so packing can
// stream the blob instead of buffering it).
func packedOffsets(off []int64, adj []VertexID) []int64 {
	poff := make([]int64, len(off))
	var total int64
	for u := 0; u+1 < len(off); u++ {
		total += int64(packedRowLen(adj[off[u]:off[u+1]]))
		poff[u+1] = total
	}
	return poff
}

// appendPackedRow encodes one sorted row as a degree prefix plus gap
// varints.
func appendPackedRow(dst []byte, row []VertexID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	prev := int64(-1)
	for _, v := range row {
		dst = binary.AppendUvarint(dst, uint64(int64(v)-prev))
		prev = int64(v)
	}
	return dst
}

// packedDegree reads a row block's degree prefix, clamped to what the
// block's bytes could actually hold so a corrupt prefix (possible only on
// unverified loads) cannot report absurd degrees.
func packedDegree(b []byte) int {
	deg, k := binary.Uvarint(b)
	if k <= 0 {
		return 0
	}
	if rest := uint64(len(b) - k); deg > rest {
		deg = rest // every neighbour costs at least one byte
	}
	return int(deg)
}

// appendPackedNeighbors decodes one row block into buf. Work and
// allocation are bounded by the block's byte length regardless of what the
// degree prefix claims, so a corrupt block yields a short row, never a
// huge allocation or a panic.
func appendPackedNeighbors(buf []VertexID, b []byte) []VertexID {
	deg, k := binary.Uvarint(b)
	if k <= 0 {
		return buf
	}
	if rest := uint64(len(b) - k); deg > rest {
		deg = rest
	}
	if need := len(buf) + int(deg); cap(buf) < need {
		grown := make([]VertexID, len(buf), need)
		copy(grown, buf)
		buf = grown
	}
	prev := int64(-1)
	for i := uint64(0); i < deg && k < len(b); i++ {
		d, m := binary.Uvarint(b[k:])
		if m <= 0 {
			break
		}
		k += m
		prev += int64(d)
		buf = append(buf, VertexID(prev))
	}
	return buf
}

// decodePackedRow strictly decodes one row block into dst (when non-nil,
// it must have room for the declared degree): the degree prefix must match
// the gap count, every gap must be ≥ 1, every neighbour inside [0, n), and
// the block consumed exactly. Returns the decoded degree.
func decodePackedRow(b []byte, n int, dst []VertexID) (int, error) {
	deg, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, fmt.Errorf("bad degree prefix")
	}
	if rest := uint64(len(b) - k); deg > rest {
		return 0, fmt.Errorf("degree %d exceeds the row's %d bytes", deg, rest)
	}
	prev := int64(-1)
	for i := uint64(0); i < deg; i++ {
		d, m := binary.Uvarint(b[k:])
		// A valid gap is in [1, n]: neighbours live in [0, n) and rows
		// ascend, so bounding d here keeps prev from ever overflowing.
		if m <= 0 || d == 0 || d > uint64(n) {
			return 0, fmt.Errorf("bad neighbour gap")
		}
		k += m
		prev += int64(d)
		if prev >= int64(n) {
			return 0, fmt.Errorf("neighbour %d of %d vertices", prev, n)
		}
		if dst != nil {
			dst[i] = VertexID(prev)
		}
	}
	if k != len(b) {
		return 0, fmt.Errorf("%d trailing bytes", len(b)-k)
	}
	return int(deg), nil
}

// validatePackedRows fully decodes every row block in parallel, checking
// the row invariants and that the degrees sum to the header's edge count.
// poff must already have passed validateOffsets.
func validatePackedRows(n int, poff []int64, blob []byte, edges int64, what string) error {
	var mu sync.Mutex
	var vErr error
	var total atomic.Int64
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		var sum int64
		for u := lo; u < hi; u++ {
			deg, err := decodePackedRow(blob[poff[u]:poff[u+1]], n, nil)
			if err != nil {
				mu.Lock()
				if vErr == nil {
					vErr = fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d: %v", what, u, err)
				}
				mu.Unlock()
				return
			}
			sum += int64(deg)
		}
		total.Add(sum)
	})
	if vErr != nil {
		return vErr
	}
	if got := total.Load(); got != edges {
		return fmt.Errorf("graph: snapshot: %s-adjacency degrees sum to %d, header says %d", what, got, edges)
	}
	return nil
}

// decodePackedColumn materialises one packed column as CSR arrays with
// full validation: a cheap parallel degree-prefix pass sizes the offsets,
// then a parallel row decode fills the adjacency (any prefix that lied is
// caught by the strict per-row decode).
func decodePackedColumn(n int, poff []int64, blob []byte, edges int64, what string) ([]int64, []VertexID, error) {
	if err := validateOffsets(n, poff, int64(len(blob)), what); err != nil {
		return nil, nil, err
	}
	off := make([]int64, n+1)
	var mu sync.Mutex
	var vErr error
	record := func(u int, err error) {
		mu.Lock()
		if vErr == nil {
			vErr = fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d: %v", what, u, err)
		}
		mu.Unlock()
	}
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			b := blob[poff[u]:poff[u+1]]
			deg, k := binary.Uvarint(b)
			if k <= 0 || deg > uint64(len(b)-k) {
				record(u, fmt.Errorf("bad degree prefix"))
				return
			}
			off[u+1] = int64(deg)
		}
	})
	if vErr != nil {
		return nil, nil, vErr
	}
	var total int64
	for u := 0; u < n; u++ {
		total += off[u+1]
		off[u+1] = total
	}
	if total != edges {
		return nil, nil, fmt.Errorf("graph: snapshot: %s-adjacency degrees sum to %d, header says %d", what, total, edges)
	}
	adj := make([]VertexID, total)
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if _, err := decodePackedRow(blob[poff[u]:poff[u+1]], n, adj[off[u]:off[u+1]]); err != nil {
				record(u, err)
				return
			}
		}
	})
	if vErr != nil {
		return nil, nil, vErr
	}
	return off, adj, nil
}
