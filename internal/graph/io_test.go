package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment style

10 20
20 30
10	30
`
	g, err := ReadEdgeList(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Dense remap in first-appearance order: 10->0, 20->1, 30->2.
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %s, want V=3 E=3", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Error("remapped edges missing")
	}
}

func TestReadEdgeListPreserveIDs(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("5 2\n2 0\n"), ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if !g.HasEdge(5, 2) || !g.HasEdge(2, 0) {
		t.Error("edges missing under PreserveIDs")
	}
}

func TestReadEdgeListSymmetrize(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"),
		ReadOptions{Symmetrize: true, PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("symmetrize missing reverse edge")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"single field", "42\n"},
		{"non-numeric", "a b\n"},
		{"negative", "-1 2\n"},
		{"too large", "99999999999 1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in), ReadOptions{}); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(64)
	for i := 0; i < 300; i++ {
		b.AddEdge(VertexID(rng.Intn(64)), VertexID(rng.Intn(64)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	// The "# vertices:" header makes the round trip exact, isolated top
	// IDs included.
	if !graphEqual(g, g2) {
		t.Fatalf("round trip changed the graph: %s -> %s", g, g2)
	}
}

// TestRoundTripIsolatedMaxIDVertex is the regression test for the
// round-trip vertex-loss bug: without the "# vertices:" header, a graph
// whose highest-ID vertices are isolated silently shrank from maxID+1
// recomputation on read.
func TestRoundTripIsolatedMaxIDVertex(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}}) // vertices 3..5 isolated
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d after round trip, want 6 (isolated max-ID vertices lost)", g2.NumVertices())
	}
	if !graphEqual(g, g2) {
		t.Fatalf("round trip changed the graph: %s -> %s", g, g2)
	}
	// An all-isolated graph survives too (no edges at all).
	empty := MustFromEdges(4, nil)
	buf.Reset()
	if err := WriteEdgeList(&buf, empty); err != nil {
		t.Fatal(err)
	}
	e2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if e2.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", e2.NumVertices())
	}
}

// TestVerticesHeader pins the header semantics: honored in PreserveIDs
// mode, ignored by the dense remap, conflicts and out-of-range IDs are
// errors, malformed variants are ordinary comments.
func TestVerticesHeader(t *testing.T) {
	read := func(in string, preserve bool) (*Digraph, error) {
		return ReadEdgeList(strings.NewReader(in), ReadOptions{PreserveIDs: preserve, Workers: 2})
	}
	g, err := read("# vertices: 9\n0 1\n", true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 9 {
		t.Errorf("preserve: V = %d, want 9", g.NumVertices())
	}
	if g, err = read("# vertices: 9\n0 1\n", false); err != nil || g.NumVertices() != 2 {
		t.Errorf("remap: V = %d err=%v, want V=2 (header ignored)", g.NumVertices(), err)
	}
	if _, err = read("# vertices: 3\n0 1\n# vertices: 4\n", true); err == nil {
		t.Error("conflicting headers: want error")
	}
	// Remap mode ignores headers entirely, so concatenated WriteEdgeList
	// outputs (each with its own header) stay valid inputs.
	if g, err = read("# vertices: 3\n0 1\n# vertices: 4\n1 2\n", false); err != nil || g.NumVertices() != 3 {
		t.Errorf("remap with conflicting headers: V=%d err=%v, want V=3 (headers ignored)", g.NumVertices(), err)
	}
	if _, err = read("# vertices: 2\n0 5\n", true); err == nil {
		t.Error("edge beyond header count: want error")
	}
	if g, err = read("# vertices: x\n0 1\n", true); err != nil || g.NumVertices() != 2 {
		t.Errorf("malformed header: V = %d err=%v, want plain comment (V=2)", g.NumVertices(), err)
	}
	if g, err = read("# vertices: 99999999999999\n0 1\n", true); err != nil || g.NumVertices() != 2 {
		t.Errorf("oversized header: V = %d err=%v, want plain comment (V=2)", g.NumVertices(), err)
	}
	if g, err = read("# vertices: 5\n", true); err != nil || g.NumVertices() != 5 {
		t.Errorf("header only: V = %d err=%v, want V=5 E=0", g.NumVertices(), err)
	}
}

func TestReadEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"), ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("want empty graph, got %s", g)
	}
}

func TestStatsAndCDF(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	s := ComputeStats(g)
	if s.MaxOutDegree != 3 || s.Edges != 4 || s.Vertices != 5 {
		t.Errorf("stats: %+v", s)
	}
	if s.Isolated != 1 { // vertex 4 untouched
		t.Errorf("Isolated = %d, want 1", s.Isolated)
	}
	cdf := OutDegreeCDF(g, []int{0, 1, 3})
	// degrees: [3,1,0,0,0] -> <=0: 3/5, <=1: 4/5, <=3: 5/5
	want := []CDFPoint{{0, 0.6}, {1, 0.8}, {3, 1.0}}
	if !reflect.DeepEqual(cdf, want) {
		t.Errorf("CDF = %v, want %v", cdf, want)
	}
	if f := FractionTruncated(g, 2); f != 0.2 {
		t.Errorf("FractionTruncated = %v, want 0.2", f)
	}
}

func TestApproxClustering(t *testing.T) {
	// Complete directed graph on 6 vertices: every wedge closes.
	b := NewBuilder(6)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if u != v {
				b.AddEdge(VertexID(u), VertexID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c := ApproxClustering(g, 500, 1); c < 0.99 {
		t.Errorf("clustering of complete graph = %v, want ~1", c)
	}
	// Star graph out of the center: no wedge closes.
	star := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if c := ApproxClustering(star, 500, 1); c > 0.01 {
		t.Errorf("clustering of star = %v, want ~0", c)
	}
}
