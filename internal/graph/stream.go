package graph

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// EdgeStream yields the edges of shard (one of shards contiguous,
// disjoint slices of some fixed underlying edge sequence) to yield, in a
// deterministic order. BuildStream replays the stream twice, so the same
// (shard, shards) must produce the same edges on every call — which is
// exactly what hash-keyed generators (gen.PowerLawStream) and offset-range
// file readers provide for free.
type EdgeStream func(shard, shards int, yield func(u, v VertexID))

// BuildStream assembles a Digraph from a replayable edge stream with the
// same two-pass counting sort as Builder.build, but with no edge-list
// buffer at all: pass one counts per-source degrees straight off the
// stream, pass two scatters destinations through per-worker cursors, and
// the shared finishCSR pass sorts, deduplicates and compacts the rows.
// Peak memory is the CSR being built plus the per-worker histograms —
// 10^9-edge inputs stream through without ever holding 10^9 Edge structs.
//
// Self-loops are dropped and duplicates are removed, matching Builder's
// defaults; out-of-range endpoints are an error. workers ≤ 0 means
// GOMAXPROCS; each worker drives its own shard of the stream, so the
// stream must be safe to run concurrently for distinct shards.
func BuildStream(numVertices, workers int, stream EdgeStream) (*Digraph, error) {
	n := numVertices
	if n < 0 {
		return nil, fmt.Errorf("graph: stream-build with %d vertices", n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxW := int(histBudgetBytes / (8 * int64(n+1))); workers > maxW {
		workers = max(maxW, 1)
	}

	// Pass 1: count edges per source into per-worker histograms.
	hist := make([]int64, workers*n)
	var bad atomic.Uint64
	bad.Store(^uint64(0))
	forEachWorker(workers, func(w int) {
		h := hist[w*n : (w+1)*n]
		stream(w, workers, func(u, v VertexID) {
			if int(u) >= n || int(v) >= n {
				bad.CompareAndSwap(^uint64(0), uint64(u)<<32|uint64(v))
				return
			}
			if u != v {
				h[u]++
			}
		})
	})
	if packed := bad.Load(); packed != ^uint64(0) {
		return nil, fmt.Errorf("graph: edge (%d,%d) with %d vertices: %w",
			uint32(packed>>32), uint32(packed), n, errInvalidVertex)
	}

	// Prefix sum over (vertex, worker): hist[w*n+u] becomes worker w's
	// private write cursor inside row u, as in Builder.build.
	off := make([]int64, n+1)
	var total int64
	for u := 0; u < n; u++ {
		off[u] = total
		for w := 0; w < workers; w++ {
			c := hist[w*n+u]
			hist[w*n+u] = total
			total += c
		}
	}
	off[n] = total

	// Pass 2: replay the stream and scatter destinations.
	adj := make([]VertexID, total)
	forEachWorker(workers, func(w int) {
		h := hist[w*n : (w+1)*n]
		stream(w, workers, func(u, v VertexID) {
			if u == v {
				return
			}
			adj[h[u]] = v
			h[u]++
		})
	})

	return finishCSR(workers, n, off, adj, false), nil
}
