package graph

import (
	"bytes"
	"fmt"
	"io"
	"math"
)

// Chunked, shard-aware line scanning and field parsing for the streaming
// ingester. The scanner replaces the old bufio.Scanner: it has no fixed
// line-length ceiling (a >1 MiB line used to surface as a bare
// "bufio.Scanner: token too long" with no line number), and it can start
// mid-file, which is what lets shards align themselves to newline
// boundaries without coordination.

// forEachLine streams the lines of ra whose first byte lies in [lo, hi) to
// fn, reading in chunks through *bufp (allocated on first use and reused
// across passes). start and end delimit the whole input. A line is owned by
// the shard its first byte falls in and is parsed to its end even when it
// crosses hi, so every line is seen by exactly one shard. fn receives the
// offset of the line's first byte and its content without the trailing
// newline.
func forEachLine(ra io.ReaderAt, start, lo, hi, end int64, bufp *[]byte, fn func(off int64, line []byte) error) error {
	if *bufp == nil {
		*bufp = make([]byte, ingestChunkBytes)
	}
	buf := *bufp
	pos := lo
	if lo > start {
		// The line containing byte lo belongs to this shard only if it
		// starts exactly there, i.e. the previous byte is a newline: scan
		// from lo-1 for the first newline and start just past it.
		scan := lo - 1
		found := false
		for scan < end && !found {
			m := int(min(int64(len(buf)), end-scan))
			if err := readFullAt(ra, buf[:m], scan); err != nil {
				return err
			}
			if i := bytes.IndexByte(buf[:m], '\n'); i >= 0 {
				pos = scan + int64(i) + 1
				found = true
			} else {
				scan += int64(m)
			}
		}
		if !found || pos >= hi {
			return nil // shard is interior to one line, or past its range
		}
	}
	var carry []byte // spill for lines crossing a chunk boundary
	var carryStart int64
	for cur := pos; cur < end; {
		m := int(min(int64(len(buf)), end-cur))
		if err := readFullAt(ra, buf[:m], cur); err != nil {
			return err
		}
		base := 0
		for {
			i := bytes.IndexByte(buf[base:m], '\n')
			if i < 0 {
				break
			}
			lineEnd := base + i
			if len(carry) > 0 {
				carry = append(carry, buf[base:lineEnd]...)
				if len(carry) > maxLineBytes {
					return lineTooLong(carryStart)
				}
				if err := fn(carryStart, carry); err != nil {
					return err
				}
				carry = carry[:0]
			} else if err := fn(cur+int64(base), buf[base:lineEnd]); err != nil {
				return err
			}
			base = lineEnd + 1
			if cur+int64(base) >= hi {
				return nil // the next line starts in another shard
			}
		}
		if base < m {
			if len(carry) == 0 {
				carryStart = cur + int64(base)
			}
			carry = append(carry, buf[base:m]...)
			if len(carry) > maxLineBytes {
				return lineTooLong(carryStart)
			}
		}
		cur += int64(m)
	}
	if len(carry) > 0 {
		return fn(carryStart, carry) // final line without trailing newline
	}
	return nil
}

func lineTooLong(off int64) error {
	return &parseError{off: off, err: fmt.Errorf("line exceeds %d MiB", maxLineBytes>>20)}
}

func readFullAt(ra io.ReaderAt, p []byte, off int64) error {
	n, err := ra.ReadAt(p, off)
	if n == len(p) {
		return nil // ReadAt may pair a full read with io.EOF at the end
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("read at offset %d: %w", off, err)
}

// Line classification for parseEdgeLine.
const (
	lineEdge   = iota // src and dst hold a parsed edge
	lineSkip          // blank line or ordinary comment
	lineHeader        // '# vertices: N' header; src holds N
)

// isHSpace reports horizontal whitespace. The parser is byte-oriented:
// it recognises the ASCII whitespace bytes (space, tab, CR, VT, FF), which
// is what SNAP-style files contain, not the full Unicode space set.
func isHSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f'
}

// parseEdgeLine classifies one line and, for edge lines, parses the two
// leading vertex-ID fields. Blank lines and lines whose first non-space
// byte is '#' or '%' are skipped (except the machine-readable
// "# vertices: N" header, which is surfaced to the caller). Fields past
// the second — the weights or timestamps of weighted SNAP lists — are
// deliberately ignored, whatever they contain: only the first two fields
// of an edge line are interpreted.
func parseEdgeLine(line []byte) (src, dst uint64, kind int, err error) {
	i := 0
	for i < len(line) && isHSpace(line[i]) {
		i++
	}
	if i == len(line) {
		return 0, 0, lineSkip, nil
	}
	if line[i] == '#' || line[i] == '%' {
		if v, ok := parseVerticesHeader(line[i:]); ok {
			return v, 0, lineHeader, nil
		}
		return 0, 0, lineSkip, nil
	}
	src, i, err = parseVertexField(line, i, "source")
	if err != nil {
		return 0, 0, lineEdge, err
	}
	for i < len(line) && isHSpace(line[i]) {
		i++
	}
	if i == len(line) {
		return 0, 0, lineEdge, fmt.Errorf("want 2 fields, got 1")
	}
	dst, _, err = parseVertexField(line, i, "target")
	if err != nil {
		return 0, 0, lineEdge, err
	}
	return src, dst, lineEdge, nil
}

// parseVertexField parses one base-10 vertex ID starting at line[i] and
// returns the value and the index just past the field. The field must be
// all digits and fit in 32 bits, mirroring the strconv.ParseUint(…, 10, 32)
// contract of the sequential reader it replaced.
func parseVertexField(line []byte, i int, what string) (uint64, int, error) {
	fieldStart := i
	var v uint64
	for i < len(line) && !isHSpace(line[i]) {
		c := line[i]
		if c < '0' || c > '9' {
			return 0, i, fmt.Errorf("bad %s %q: want a base-10 vertex id", what, field(line, fieldStart))
		}
		v = v*10 + uint64(c-'0')
		if v > math.MaxUint32 {
			return 0, i, fmt.Errorf("bad %s %q: vertex id exceeds 2^32-1", what, field(line, fieldStart))
		}
		i++
	}
	return v, i, nil
}

// field returns the whitespace-delimited field starting at line[i], for
// error messages.
func field(line []byte, i int) []byte {
	j := i
	for j < len(line) && !isHSpace(line[j]) {
		j++
	}
	return line[i:j]
}

// vertexHeaderTag is the machine-readable comment WriteEdgeList emits so a
// save/load round trip preserves trailing isolated vertices.
const vertexHeaderTag = "vertices:"

// parseVerticesHeader recognises "# vertices: N" (line starts at the
// comment marker; internal and trailing horizontal whitespace is free).
// Malformed variants — non-numeric, trailing junk, or a value beyond the
// 2^32 vertex-count ceiling — are treated as ordinary comments, so the
// returned value always fits the representable vertex space.
func parseVerticesHeader(line []byte) (uint64, bool) {
	i := 1 // past '#' or '%'
	for i < len(line) && isHSpace(line[i]) {
		i++
	}
	if !bytes.HasPrefix(line[i:], []byte(vertexHeaderTag)) {
		return 0, false
	}
	i += len(vertexHeaderTag)
	for i < len(line) && isHSpace(line[i]) {
		i++
	}
	digits := 0
	var v uint64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + uint64(line[i]-'0')
		if v > math.MaxUint32+1 {
			return 0, false // beyond any representable vertex count
		}
		digits++
		i++
	}
	if digits == 0 {
		return 0, false
	}
	for i < len(line) && isHSpace(line[i]) {
		i++
	}
	return v, i == len(line)
}
