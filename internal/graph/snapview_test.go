package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"slices"
	"testing"
)

// viewEqual holds any View to the heap *Digraph oracle on every accessor of
// the View interface: counts, both row accessors per direction, HasEdge on
// every present edge plus probes around each row, and the ForEachEdge
// enumeration order.
func viewEqual(t *testing.T, want *Digraph, got View, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: size %d/%d, want %d/%d", label,
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if got.HasInEdges() != want.HasInEdges() {
		t.Fatalf("%s: HasInEdges %v, want %v", label, got.HasInEdges(), want.HasInEdges())
	}
	n := want.NumVertices()
	buf := make([]VertexID, 0, 8)
	for u := 0; u < n; u++ {
		uid := VertexID(u)
		row := want.OutNeighbors(uid)
		if d := got.OutDegree(uid); d != len(row) {
			t.Fatalf("%s: OutDegree(%d) = %d, want %d", label, u, d, len(row))
		}
		if g := got.OutNeighbors(uid); !slices.Equal(g, row) {
			t.Fatalf("%s: OutNeighbors(%d) = %v, want %v", label, u, g, row)
		}
		// A non-empty prefix proves AppendOutRow appends rather than
		// overwrites.
		buf = append(buf[:0], 7)
		if g := got.AppendOutRow(buf, uid); len(g) < 1 || g[0] != 7 || !slices.Equal(g[1:], row) {
			t.Fatalf("%s: AppendOutRow(%d) = %v, want prefix+%v", label, u, g, row)
		}
		for _, v := range row {
			if !got.HasEdge(uid, v) {
				t.Fatalf("%s: HasEdge(%d,%d) = false for a present edge", label, u, v)
			}
			// Probe the neighbourhood of each present edge for phantoms.
			for _, probe := range []VertexID{v - 1, v + 1} {
				if int(probe) < n && got.HasEdge(uid, probe) != want.HasEdge(uid, probe) {
					t.Fatalf("%s: HasEdge(%d,%d) disagrees with oracle", label, u, probe)
				}
			}
		}
		if len(row) == 0 && n > 0 && got.HasEdge(uid, VertexID(u%n)) {
			t.Fatalf("%s: HasEdge on an empty row", label)
		}
		if want.HasInEdges() {
			in := want.InNeighbors(uid)
			if d := got.InDegree(uid); d != len(in) {
				t.Fatalf("%s: InDegree(%d) = %d, want %d", label, u, d, len(in))
			}
			if g := got.InNeighbors(uid); !slices.Equal(g, in) {
				t.Fatalf("%s: InNeighbors(%d) = %v, want %v", label, u, g, in)
			}
			buf = append(buf[:0], 9)
			if g := got.AppendInRow(buf, uid); len(g) < 1 || g[0] != 9 || !slices.Equal(g[1:], in) {
				t.Fatalf("%s: AppendInRow(%d) = %v, want prefix+%v", label, u, g, in)
			}
		}
	}
	var wantEdges, gotEdges []Edge
	want.ForEachEdge(func(u, v VertexID) { wantEdges = append(wantEdges, Edge{u, v}) })
	got.ForEachEdge(func(u, v VertexID) { gotEdges = append(gotEdges, Edge{u, v}) })
	if !slices.Equal(wantEdges, gotEdges) {
		t.Fatalf("%s: ForEachEdge enumeration diverges from oracle", label)
	}
}

// TestPackedMatchesDigraph holds the packed in-memory representation — both
// PackGraph's direct encoding and the full write/view round trip in cheap
// and verifying modes — to the heap oracle on every accessor.
func TestPackedMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct {
		name   string
		v, e   int
		withIn bool
	}{
		{"small", 16, 40, false},
		{"small with in-edges", 16, 40, true},
		{"hubs and isolated tail", 300, 4000, true},
		{"empty", 5, 0, true},
		{"zero vertices", 0, 0, false},
		{"larger", 2000, 30000, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var g *Digraph
			if tc.e == 0 {
				g = MustFromEdges(tc.v, nil)
				if tc.withIn {
					g.buildInAdjacency()
				}
			} else {
				g = randomGraph(t, rng, tc.v, tc.e, tc.withIn)
			}
			p := PackGraph(g)
			viewEqual(t, g, p, "PackGraph")
			dec, err := p.Decode()
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !graphEqual(g, dec) {
				t.Fatal("Decode round trip changed the graph")
			}

			var buf bytes.Buffer
			if err := WriteSnapshotOpts(&buf, g, SnapshotOptions{Packed: true}); err != nil {
				t.Fatal(err)
			}
			for _, verify := range []bool{false, true} {
				data := alignedBytes(int64(buf.Len()))
				copy(data, buf.Bytes())
				v, err := viewSnapshot(data, verify)
				if err != nil {
					t.Fatalf("viewSnapshot(verify=%v): %v", verify, err)
				}
				if _, ok := v.(*Packed); !ok {
					t.Fatalf("packed snapshot viewed as %T", v)
				}
				viewEqual(t, g, v, fmt.Sprintf("viewed packed (verify=%v)", verify))
			}
			// The streaming reader decodes packed snapshots to a plain CSR.
			rt, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !graphEqual(g, rt) {
				t.Fatal("packed snapshot stream round trip changed the graph")
			}
		})
	}
}

// TestViewedSnapshotMatchesHeap holds the in-place plain-CSR view (the mmap
// representation, exercised here over an aligned buffer and over a real
// file through OpenGraphFile) to the heap oracle.
func TestViewedSnapshotMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dir := t.TempDir()
	for _, withIn := range []bool{false, true} {
		for _, packed := range []bool{false, true} {
			name := fmt.Sprintf("in=%v packed=%v", withIn, packed)
			g := randomGraph(t, rng, 200, 3000, withIn)
			var buf bytes.Buffer
			if err := WriteSnapshotOpts(&buf, g, SnapshotOptions{Packed: packed}); err != nil {
				t.Fatal(err)
			}
			for _, verify := range []bool{false, true} {
				data := alignedBytes(int64(buf.Len()))
				copy(data, buf.Bytes())
				v, err := viewSnapshot(data, verify)
				if err != nil {
					t.Fatalf("%s verify=%v: %v", name, verify, err)
				}
				viewEqual(t, g, v, name)
			}
			path := filepath.Join(dir, fmt.Sprintf("g-%v-%v.sgr", withIn, packed))
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, opts := range []ReadOptions{{}, {Verify: true}, {NoMap: true}} {
				v, info, err := OpenGraphFile(path, opts)
				if err != nil {
					t.Fatalf("%s opts=%+v: %v", name, opts, err)
				}
				if info.Format != FormatSnapshot || info.Version != snapshotVersion || info.Packed != packed {
					t.Fatalf("%s: LoadInfo %+v", name, info)
				}
				if opts.NoMap && info.Mapped {
					t.Fatalf("%s: NoMap load reported mapped", name)
				}
				if !opts.NoMap && mmapSupported && !info.Mapped {
					t.Fatalf("%s: default load did not map", name)
				}
				viewEqual(t, g, v, fmt.Sprintf("%s opts=%+v", name, opts))
			}
		}
	}
}

// writeSnapshotV1 renders g in the retired version-1 layout (no alignment
// padding, plain adjacency only), which readers must keep accepting.
func writeSnapshotV1(t *testing.T, g *Digraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	var hdr [snapshotHeaderLen]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersionV1)
	var flags uint32
	if g.HasInEdges() {
		flags |= snapshotFlagInEdges
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], snapshotCRC))
	buf.Write(hdr[:])
	section := func(payload []byte) {
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
		buf.Write(lenBuf[:])
		buf.Write(payload)
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, snapshotCRC))
		buf.Write(crcBuf[:])
	}
	offBytes := func(off []int64) []byte {
		b := make([]byte, len(off)*8)
		for i, o := range off {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(o))
		}
		return b
	}
	adjBytes := func(adj []VertexID) []byte {
		b := make([]byte, len(adj)*4)
		for i, v := range adj {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
		}
		return b
	}
	section(offBytes(g.outOff))
	section(adjBytes(g.outAdj))
	if g.HasInEdges() {
		section(offBytes(g.inOff))
		section(adjBytes(g.inAdj))
	}
	return buf.Bytes()
}

// TestSnapshotV1Compat: version-1 files keep loading byte-identically via
// both the streaming reader and the auto-detecting file opener (which must
// fall back to the heap path, never claim an in-place view of an unaligned
// layout).
func TestSnapshotV1Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, withIn := range []bool{false, true} {
		g := randomGraph(t, rng, 50, 400, withIn)
		data := writeSnapshotV1(t, g)
		rt, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("v1 stream read: %v", err)
		}
		if !graphEqual(g, rt) {
			t.Fatal("v1 stream read changed the graph")
		}
		path := filepath.Join(t.TempDir(), "v1.sgr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		v, info, err := OpenGraphFile(path, ReadOptions{})
		if err != nil {
			t.Fatalf("v1 open: %v", err)
		}
		if info.Version != snapshotVersionV1 || info.Mapped || info.Packed {
			t.Fatalf("v1 LoadInfo %+v", info)
		}
		if !graphEqual(g, v.(*Digraph)) {
			t.Fatal("v1 open changed the graph")
		}
		if _, err := MapSnapshot(path); err == nil {
			t.Fatal("MapSnapshot accepted a v1 file")
		}
	}
}

// TestMapSnapshotConstantAllocation pins the tentpole claim: opening a
// snapshot through the mapped path costs O(1) heap allocation independent
// of edge count. A 16x bigger graph must not change the allocation count,
// and on mmap platforms the total bytes allocated per open stay far below
// the file size.
func TestMapSnapshotConstantAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	write := func(name string, e int) (string, int64) {
		g := randomGraph(t, rng, e/10+2, e, false)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path, int64(buf.Len())
	}
	smallPath, _ := write("small.sgr", 2000)
	bigPath, bigSize := write("big.sgr", 32000)
	measure := func(path string) float64 {
		return testing.AllocsPerRun(10, func() {
			g, err := MapSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 {
				t.Fatal("empty graph")
			}
		})
	}
	small, big := measure(smallPath), measure(bigPath)
	// The open allocates a fixed handful of objects (file handle, header
	// buffer, struct, cleanup): identical for both sizes, and small in
	// absolute terms so an accidental O(V) slice shows up loudly.
	if big > small {
		t.Errorf("allocations grew with edge count: %.1f at 32k edges vs %.1f at 2k", big, small)
	}
	if big > 64 {
		t.Errorf("mapped open costs %.1f allocations, want a constant handful", big)
	}
	if mmapSupported {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		g, err := MapSnapshot(bigPath)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		if g.NumEdges() != 32000 && g.NumEdges() == 0 {
			t.Fatal("unexpected graph")
		}
		if allocated := int64(m1.TotalAlloc - m0.TotalAlloc); allocated > bigSize/8 {
			t.Errorf("mapped open allocated %d heap bytes for a %d-byte file; columns should alias the mapping", allocated, bigSize)
		}
	}
}

// TestMapShardFile: the mapped shard loader must agree with the streaming
// one and report whether the zero-copy path was taken.
func TestMapShardFile(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	big := testShard()
	big.NumVertices = 5000
	big.Locals = big.Locals[:0]
	for v := 0; v < big.NumVertices; v += 1 + rng.Intn(3) {
		big.Locals = append(big.Locals, VertexID(v))
	}
	nl := len(big.Locals)
	big.Deg, big.IsMaster, big.HasRemote = make([]int32, nl), make([]bool, nl), make([]bool, nl)
	big.EdgeSrc, big.EdgeDst = big.EdgeSrc[:0], big.EdgeDst[:0]
	for i := range big.Locals {
		big.Deg[i] = int32(rng.Intn(9))
		big.IsMaster[i] = rng.Intn(2) == 0
		big.HasRemote[i] = rng.Intn(3) == 0
	}
	for i := 0; i < 4*nl; i++ {
		big.EdgeSrc = append(big.EdgeSrc, int32(rng.Intn(nl)))
		big.EdgeDst = append(big.EdgeDst, int32(rng.Intn(nl)))
	}
	dir := t.TempDir()
	for i, sf := range []*ShardFile{testShard(), big} {
		var buf bytes.Buffer
		if err := WriteShard(&buf, sf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("g.sgr.%d", i))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mappedShard, mapped, err := MapShardFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if mapped != mmapSupported {
			t.Errorf("shard %d: mapped=%v, mmapSupported=%v", i, mapped, mmapSupported)
		}
		streamed, err := ReadShard(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, mappedShard) {
			t.Errorf("shard %d: mapped load diverges from streamed load", i)
		}
	}
}

// TestMapShardFileColumnsSurviveGC pins the lifetime contract of a mapped
// shard: resident workers copy the column slice headers out of the
// ShardFile (wire.ResidentFromShard) and drop the struct, so the mapping
// must stay valid after the ShardFile is collected. A munmap tied to the
// struct's GC would make the reads below fault.
func TestMapShardFileColumnsSurviveGC(t *testing.T) {
	sf := testShard()
	var buf bytes.Buffer
	if err := WriteShard(&buf, sf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.sgr.0")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var locals []VertexID
	var deg, edgeSrc, edgeDst []int32
	func() {
		mapped, _, err := MapShardFile(path)
		if err != nil {
			t.Fatal(err)
		}
		locals, deg = mapped.Locals, mapped.Deg
		edgeSrc, edgeDst = mapped.EdgeSrc, mapped.EdgeDst
	}()
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	var sum int64
	for i := range edgeSrc {
		sum += int64(edgeSrc[i]) + int64(edgeDst[i])
	}
	for i := range locals {
		sum += int64(locals[i]) + int64(deg[i])
	}
	want, err := ReadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var wantSum int64
	for i := range want.EdgeSrc {
		wantSum += int64(want.EdgeSrc[i]) + int64(want.EdgeDst[i])
	}
	for i := range want.Locals {
		wantSum += int64(want.Locals[i]) + int64(want.Deg[i])
	}
	if sum != wantSum {
		t.Fatalf("aliased columns read %d after GC, want %d", sum, wantSum)
	}
}
