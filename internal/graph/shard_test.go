package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func testShard() *ShardFile {
	return &ShardFile{
		Fingerprint: 0xDEADBEEFCAFE,
		Shard:       1,
		Shards:      3,
		NumVertices: 10,
		Locals:      []VertexID{1, 3, 4, 7, 9},
		Deg:         []int32{2, 0, 5, 1, 3},
		EdgeSrc:     []int32{0, 0, 2, 4},
		EdgeDst:     []int32{1, 3, 0, 2},
		IsMaster:    []bool{true, false, true, true, false},
		HasRemote:   []bool{false, true, true, false, true},
	}
}

func testManifest() *Manifest {
	return &Manifest{
		Fingerprint: 0xDEADBEEFCAFE,
		Shards:      3,
		NumVertices: 10,
		NumEdges:    14,
		Seed:        42,
		Strategy:    "hash-edge",
		Files:       []string{"g.sgr.0", "g.sgr.1", "g.sgr.2"},
		Locals:      []int64{5, 5, 4},
		Masters:     []int64{4, 3, 3},
		Edges:       []int64{5, 4, 5},
	}
}

func TestShardRoundTrip(t *testing.T) {
	want := testShard()
	var buf bytes.Buffer
	if err := WriteShard(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := testManifest()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestShardCorruptionDetected flips every single byte of an encoded shard in
// turn; each corruption must surface as a load error, never as a silently
// different partition.
func TestShardCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShard(&buf, testShard()); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := bytes.Clone(orig)
		mut[i] ^= 0x40
		got, err := ReadShard(bytes.NewReader(mut))
		if err == nil && reflect.DeepEqual(got, testShard()) {
			// A flip inside unused padding would be acceptable; there is none,
			// so equality means the flip went undetected.
			t.Fatalf("flipping byte %d of %d went undetected", i, len(orig))
		}
		if err == nil {
			t.Fatalf("flipping byte %d loaded cleanly as a different shard", i)
		}
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, testManifest()); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := bytes.Clone(orig)
		mut[i] ^= 0x40
		if _, err := ReadManifest(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(orig))
		}
	}
}

func TestShardTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShard(&buf, testShard()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, n := range []int{0, 8, shardHeaderLen - 1, shardHeaderLen, len(b) / 2, len(b) - 1} {
		if _, err := ReadShard(bytes.NewReader(b[:n])); err == nil {
			t.Errorf("shard truncated to %d of %d bytes loaded cleanly", n, len(b))
		}
	}
}

func TestShardValidate(t *testing.T) {
	breakages := map[string]func(*ShardFile){
		"shard-out-of-range":  func(s *ShardFile) { s.Shard = 3 },
		"deg-misaligned":      func(s *ShardFile) { s.Deg = s.Deg[:3] },
		"locals-unsorted":     func(s *ShardFile) { s.Locals[2] = s.Locals[1] },
		"locals-out-of-range": func(s *ShardFile) { s.Locals[4] = 10 },
		"edge-out-of-range":   func(s *ShardFile) { s.EdgeDst[0] = 5 },
		"edge-cols-ragged":    func(s *ShardFile) { s.EdgeDst = s.EdgeDst[:3] },
	}
	for name, breakIt := range breakages {
		s := testShard()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if err := WriteShard(&bytes.Buffer{}, s); err == nil {
			t.Errorf("%s: written", name)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	breakages := map[string]func(*Manifest){
		"no-shards":        func(m *Manifest) { m.Shards = 0 },
		"ragged-tables":    func(m *Manifest) { m.Locals = m.Locals[:2] },
		"empty-strategy":   func(m *Manifest) { m.Strategy = "" },
		"empty-file":       func(m *Manifest) { m.Files[1] = "" },
		"newline-in-file":  func(m *Manifest) { m.Files[0] = "a\nb" },
		"files-misaligned": func(m *Manifest) { m.Files = m.Files[:2] },
	}
	for name, breakIt := range breakages {
		m := testManifest()
		breakIt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if err := WriteManifest(&bytes.Buffer{}, m); err == nil {
			t.Errorf("%s: written", name)
		}
	}
}

func TestKnownMagic(t *testing.T) {
	var shard, man bytes.Buffer
	if err := WriteShard(&shard, testShard()); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(&man, testManifest()); err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"shard":    shard.Bytes(),
		"manifest": man.Bytes(),
		"snapshot": []byte(snapshotMagic + "trailing"),
	} {
		if !KnownMagic(b) {
			t.Errorf("%s magic not recognised", name)
		}
	}
	for name, b := range map[string][]byte{
		"empty":   nil,
		"short":   []byte("SNAPL"),
		"foreign": []byte(strings.Repeat("x", 64)),
	} {
		if KnownMagic(b) {
			t.Errorf("%s recognised as ours", name)
		}
	}
}
