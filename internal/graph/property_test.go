package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWithoutEdgesProperty: removing a random edge subset leaves exactly the
// complement, for arbitrary graphs.
func TestWithoutEdgesProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		b := NewBuilder(n)
		for i := 0; i < int(mRaw); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		all := g.Edges()
		if len(all) == 0 {
			return true
		}
		var removed []Edge
		keep := map[Edge]bool{}
		for _, e := range all {
			if rng.Intn(2) == 0 {
				removed = append(removed, e)
			} else {
				keep[e] = true
			}
		}
		ng := g.WithoutEdges(removed)
		if ng.NumEdges() != len(keep) {
			return false
		}
		ok := true
		ng.ForEachEdge(func(u, v VertexID) {
			if !keep[Edge{u, v}] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCDFProperties: any degree CDF is monotone, within [0,1], and reaches 1
// at the max degree.
func TestCDFProperties(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		b := NewBuilder(n)
		for i := 0; i < int(mRaw); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		st := ComputeStats(g)
		pts := OutDegreeCDF(g, []int{0, 1, 2, 4, st.MaxOutDegree})
		last := -1.0
		for _, p := range pts {
			if p.Fraction < last || p.Fraction < 0 || p.Fraction > 1 {
				return false
			}
			last = p.Fraction
		}
		return pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHasEdgeAgainstEdgeList: HasEdge agrees with edge-list membership.
func TestHasEdgeAgainstEdgeList(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		b := NewBuilder(n)
		for i := 0; i < 60; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		present := map[Edge]bool{}
		g.ForEachEdge(func(u, v VertexID) { present[Edge{u, v}] = true })
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.HasEdge(VertexID(u), VertexID(v)) != present[Edge{VertexID(u), VertexID(v)}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
