package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// Resident shards get the same zero-copy treatment as snapshots — without
// a format bump, because the shard-v1 layout is already alignment-friendly:
// the header is 56 bytes and every 4-byte column section is preceded only
// by 4-multiple payloads and 8+4-byte frames, so each u32/i32 payload
// starts 4-aligned in the file. MapShardFile aliases those columns straight
// out of an mmap view; only the two 1-byte role columns are copied (and
// normalised — a mapped bool must be exactly 0 or 1, which a hand-made
// file need not honour).

// MapShardFile opens a resident shard with its numeric columns aliasing a
// read-only mmap of the file, falling back to the streaming heap loader
// (ReadShard) when the platform lacks mmap or the mapping fails. The
// returned bool reports whether the mapped path was taken. Checksums and
// the full structural validation run on both paths; the mapped one just
// skips per-element decode and the big heap copies, which is what lets a
// worker pin a multi-gigabyte partition in milliseconds of allocator time.
//
// The mapping is pinned for the life of the process: the aliased columns
// routinely outlive the ShardFile itself (ResidentFromShard copies the
// slice headers and drops the struct), so tying an unmap to the struct's
// collection would pull pages out from under a live reader. Residents pin
// their shard forever anyway; callers that map many files pay one bounded
// mapping each.
func MapShardFile(path string) (*ShardFile, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("graph: open %s: %w", path, err)
	}
	defer f.Close()
	if mmapSupported {
		if fi, serr := f.Stat(); serr == nil && fi.Mode().IsRegular() {
			if m, merr := mmapFile(f, fi.Size()); merr == nil {
				s, verr := viewShard(m)
				if verr != nil {
					munmapBytes(m)
					return nil, false, fmt.Errorf("graph: %s: %w", path, verr)
				}
				return s, true, nil
			}
		}
	}
	s, err := ReadShard(f)
	if err != nil {
		return nil, false, fmt.Errorf("graph: %s: %w", path, err)
	}
	return s, false, nil
}

// viewShard parses a complete shard image in place; data must hold the
// whole file from byte 0 (mmap'd or otherwise 4-aligned).
func viewShard(data []byte) (*ShardFile, error) {
	if len(data) < shardHeaderLen {
		return nil, fmt.Errorf("graph: shard: truncated header (%d bytes)", len(data))
	}
	hdr := data[:shardHeaderLen]
	if string(hdr[:8]) != shardMagic {
		return nil, fmt.Errorf("graph: shard: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != shardVersion {
		return nil, fmt.Errorf("graph: shard: unsupported version %d (want %d)", v, shardVersion)
	}
	if want, got := crc32.Checksum(hdr[:52], snapshotCRC), binary.LittleEndian.Uint32(hdr[52:]); want != got {
		return nil, fmt.Errorf("graph: shard: header checksum mismatch")
	}
	v64 := binary.LittleEndian.Uint64(hdr[28:])
	l64 := binary.LittleEndian.Uint64(hdr[36:])
	e64 := binary.LittleEndian.Uint64(hdr[44:])
	if v64 > 1<<32 || l64 > v64 {
		return nil, fmt.Errorf("graph: shard: implausible vertex counts (%d locals of %d)", l64, v64)
	}
	if e64 > math.MaxInt64/8 {
		return nil, fmt.Errorf("graph: shard: implausible edge count %d", e64)
	}
	s := &ShardFile{
		Fingerprint: binary.LittleEndian.Uint64(hdr[20:]),
		Shard:       int(binary.LittleEndian.Uint32(hdr[12:])),
		Shards:      int(binary.LittleEndian.Uint32(hdr[16:])),
		NumVertices: int(v64),
	}
	w := &sectionWalker{data: data, pos: shardHeaderLen, align: 1, prefix: "graph: shard", verify: true}
	localsB, err := w.section(int64(l64)*4, "locals")
	if err != nil {
		return nil, err
	}
	s.Locals = viewVertexIDs(localsB)
	cols := []*[]int32{&s.Deg, &s.EdgeSrc, &s.EdgeDst}
	for i, elems := range []int64{int64(l64), int64(e64), int64(e64)} {
		b, err := w.section(elems*4, [...]string{"degree", "edge-source", "edge-target"}[i])
		if err != nil {
			return nil, err
		}
		*cols[i] = viewInt32s(b)
	}
	for _, col := range []*[]bool{&s.IsMaster, &s.HasRemote} {
		b, err := w.section(int64(l64), "role")
		if err != nil {
			return nil, err
		}
		*col = boolsFromBytes(b)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// boolsFromBytes copies and normalises a 1-byte-per-entry column. Bools
// are never aliased from a mapping: a Go bool must be exactly 0 or 1 in
// memory, which an on-disk byte need not be.
func boolsFromBytes(b []byte) []bool {
	out := make([]bool, len(b))
	for i, v := range b {
		out[i] = v != 0
	}
	return out
}
