// Package graph provides a compact directed-graph representation (CSR) and
// the loading, generation-support and statistics routines the rest of the
// repository builds on.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Adjacency is
// stored in compressed sparse row form with per-vertex neighbour lists kept
// sorted, which makes membership tests (HasEdge) logarithmic and set
// operations (Jaccard and friends in internal/core) linear merges.
//
// Graphs are assembled by Builder with a parallel two-pass counting sort
// (count per-source degrees, prefix-sum into offsets, scatter destinations,
// then sort and deduplicate each row in parallel) instead of a global
// comparison sort over the edge list, so ingest scales with cores and with
// edge count rather than E log E — the property that keeps billion-edge
// graph construction (Section 5's headline scale) tractable on one machine.
// Mutation never rewrites the CSR: Delta overlays sorted per-vertex
// add/remove lists on an immutable base and skip-merges them on the fly
// (WithoutEdges is the remove-only case), and the View interface lets every
// consumer run over either representation.
package graph

import (
	"errors"
	"fmt"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Digraph is an immutable directed graph in CSR form. Construct one with a
// Builder or FromEdges; the zero value is an empty graph.
type Digraph struct {
	numVertices int
	outOff      []int64 // len numVertices+1; outAdj[outOff[u]:outOff[u+1]] sorted
	outAdj      []VertexID
	inOff       []int64 // optional reverse adjacency (see Builder.WithInEdges)
	inAdj       []VertexID
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return len(g.outAdj) }

// OutDegree returns |Γ(u)|, the number of outgoing edges of u.
func (g *Digraph) OutDegree(u VertexID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// OutNeighbors returns the sorted out-neighbour list of u. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Digraph) OutNeighbors(u VertexID) []VertexID {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// HasInEdges reports whether the reverse adjacency was materialised.
func (g *Digraph) HasInEdges() bool { return g.inOff != nil }

// InDegree returns |Γ⁻¹(u)|. It panics unless the graph was built with
// in-edges (Builder.WithInEdges).
func (g *Digraph) InDegree(u VertexID) int {
	return int(g.inOff[u+1] - g.inOff[u])
}

// InNeighbors returns the sorted in-neighbour list of u. It panics unless the
// graph was built with in-edges. The returned slice aliases the graph's
// storage and must not be modified.
func (g *Digraph) InNeighbors(u VertexID) []VertexID {
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// HasEdge reports whether the directed edge (u,v) exists. The hand-rolled
// binary search (rather than sort.Search) keeps the per-probe closure out
// of a call that sits on membership-test hot paths.
func (g *Digraph) HasEdge(u, v VertexID) bool {
	lo, hi := g.outOff[u], g.outOff[u+1]
	for lo < hi {
		mid := int64(uint64(lo+hi) >> 1)
		if g.outAdj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < g.outOff[u+1] && g.outAdj[lo] == v
}

// ForEachEdge calls fn for every directed edge in (src, dst) order.
func (g *Digraph) ForEachEdge(fn func(u, v VertexID)) {
	for u := 0; u < g.numVertices; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// Edges materialises the edge list in (src, dst) order.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v VertexID) { out = append(out, Edge{u, v}) })
	return out
}

// OutDegrees returns the out-degree of every vertex.
func (g *Digraph) OutDegrees() []int {
	out := make([]int, g.numVertices)
	for u := range out {
		out[u] = g.OutDegree(VertexID(u))
	}
	return out
}

// String summarises the graph for logs.
func (g *Digraph) String() string {
	return fmt.Sprintf("digraph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}

// WithoutEdges returns a remove-only Delta view of g with the given
// directed edges removed. Edges absent from g (including out-of-range
// endpoints) are ignored, and duplicates in removed are harmless. This
// backs the evaluation protocol of Section 5.2, which hides a sample of
// edges and asks the predictor to recover them — the overlay costs
// O(R log d) instead of an O(E) copy, and it is the same code path live
// mutation uses (see Delta), so eval-time removal and online serving
// exercise one merge implementation.
func (g *Digraph) WithoutEdges(removed []Edge) *Delta {
	d, err := NewDelta(g).Apply(nil, clampEdges(g.numVertices, removed))
	if err != nil {
		panic("graph: WithoutEdges after filtering: " + err.Error())
	}
	return d
}

// clampEdges drops entries with endpoints outside [0, n), returning edges
// itself when nothing needs dropping.
func clampEdges(n int, edges []Edge) []Edge {
	for i, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			// First out-of-range entry: switch to a filtered copy.
			out := append(make([]Edge, 0, len(edges)-1), edges[:i]...)
			for _, e := range edges[i+1:] {
				if int(e.Src) < n && int(e.Dst) < n {
					out = append(out, e)
				}
			}
			return out
		}
	}
	return edges
}

// errInvalidVertex is wrapped by Builder.Build for out-of-range endpoints.
var errInvalidVertex = errors.New("vertex id out of range")
