// Package graph provides a compact directed-graph representation (CSR) and
// the loading, generation-support and statistics routines the rest of the
// repository builds on.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Adjacency is
// stored in compressed sparse row form with per-vertex neighbour lists kept
// sorted, which makes membership tests (HasEdge) logarithmic and set
// operations (Jaccard and friends in internal/core) linear merges.
//
// Graphs are assembled by Builder with a parallel two-pass counting sort
// (count per-source degrees, prefix-sum into offsets, scatter destinations,
// then sort and deduplicate each row in parallel) instead of a global
// comparison sort over the edge list, so ingest scales with cores and with
// edge count rather than E log E — the property that keeps billion-edge
// graph construction (Section 5's headline scale) tractable on one machine.
// Evaluation-time edge removal (WithoutEdges) reuses the CSR layout with a
// sorted skip-merge rather than rebuilding from scratch.
package graph

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Digraph is an immutable directed graph in CSR form. Construct one with a
// Builder or FromEdges; the zero value is an empty graph.
type Digraph struct {
	numVertices int
	outOff      []int64 // len numVertices+1; outAdj[outOff[u]:outOff[u+1]] sorted
	outAdj      []VertexID
	inOff       []int64 // optional reverse adjacency (see Builder.WithInEdges)
	inAdj       []VertexID
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return len(g.outAdj) }

// OutDegree returns |Γ(u)|, the number of outgoing edges of u.
func (g *Digraph) OutDegree(u VertexID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// OutNeighbors returns the sorted out-neighbour list of u. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Digraph) OutNeighbors(u VertexID) []VertexID {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// HasInEdges reports whether the reverse adjacency was materialised.
func (g *Digraph) HasInEdges() bool { return g.inOff != nil }

// InDegree returns |Γ⁻¹(u)|. It panics unless the graph was built with
// in-edges (Builder.WithInEdges).
func (g *Digraph) InDegree(u VertexID) int {
	return int(g.inOff[u+1] - g.inOff[u])
}

// InNeighbors returns the sorted in-neighbour list of u. It panics unless the
// graph was built with in-edges. The returned slice aliases the graph's
// storage and must not be modified.
func (g *Digraph) InNeighbors(u VertexID) []VertexID {
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Digraph) HasEdge(u, v VertexID) bool {
	nbrs := g.OutNeighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// ForEachEdge calls fn for every directed edge in (src, dst) order.
func (g *Digraph) ForEachEdge(fn func(u, v VertexID)) {
	for u := 0; u < g.numVertices; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// Edges materialises the edge list in (src, dst) order.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v VertexID) { out = append(out, Edge{u, v}) })
	return out
}

// OutDegrees returns the out-degree of every vertex.
func (g *Digraph) OutDegrees() []int {
	out := make([]int, g.numVertices)
	for u := range out {
		out[u] = g.OutDegree(VertexID(u))
	}
	return out
}

// String summarises the graph for logs.
func (g *Digraph) String() string {
	return fmt.Sprintf("digraph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}

// WithoutEdges returns a copy of g with the given directed edges removed.
// Edges absent from g (including out-of-range endpoints) are ignored, and
// duplicates in removed are harmless. The reverse adjacency is rebuilt when
// g had one. This backs the evaluation protocol of Section 5.2, which hides
// a sample of edges and asks the predictor to recover them — it runs once
// per evaluation trial, so instead of hashing every edge into a set and
// re-running the full builder it sorts the (small) removal list and
// skip-merges it against the already-sorted CSR rows: one O(E) copy pass,
// no hashing, no re-sort.
func (g *Digraph) WithoutEdges(removed []Edge) *Digraph {
	if len(removed) == 0 {
		return g
	}
	rem := append([]Edge(nil), removed...)
	slices.SortFunc(rem, func(a, b Edge) int {
		if a.Src != b.Src {
			return cmp.Compare(a.Src, b.Src)
		}
		return cmp.Compare(a.Dst, b.Dst)
	})
	n := g.numVertices
	ng := &Digraph{
		numVertices: n,
		outOff:      make([]int64, n+1),
		outAdj:      make([]VertexID, 0, len(g.outAdj)),
	}
	ri := 0
	for u := 0; u < n; u++ {
		row := g.OutNeighbors(VertexID(u))
		for ri < len(rem) && rem[ri].Src < VertexID(u) {
			ri++
		}
		if ri >= len(rem) || rem[ri].Src != VertexID(u) {
			ng.outAdj = append(ng.outAdj, row...)
		} else {
			for _, v := range row {
				for ri < len(rem) && rem[ri].Src == VertexID(u) && rem[ri].Dst < v {
					ri++
				}
				if ri < len(rem) && rem[ri].Src == VertexID(u) && rem[ri].Dst == v {
					continue // dropped; duplicates of (u,v) advance on the next v
				}
				ng.outAdj = append(ng.outAdj, v)
			}
		}
		ng.outOff[u+1] = int64(len(ng.outAdj))
	}
	if g.HasInEdges() {
		ng.buildInAdjacency()
	}
	return ng
}

// errInvalidVertex is wrapped by Builder.Build for out-of-range endpoints.
var errInvalidVertex = errors.New("vertex id out of range")
