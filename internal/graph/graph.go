// Package graph provides a compact directed-graph representation (CSR) and
// the loading, generation-support and statistics routines the rest of the
// repository builds on.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Adjacency is
// stored in compressed sparse row form with per-vertex neighbour lists kept
// sorted, which makes membership tests (HasEdge) logarithmic and set
// operations (Jaccard and friends in internal/core) linear merges.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Digraph is an immutable directed graph in CSR form. Construct one with a
// Builder or FromEdges; the zero value is an empty graph.
type Digraph struct {
	numVertices int
	outOff      []int64 // len numVertices+1; outAdj[outOff[u]:outOff[u+1]] sorted
	outAdj      []VertexID
	inOff       []int64 // optional reverse adjacency (see Builder.WithInEdges)
	inAdj       []VertexID
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return len(g.outAdj) }

// OutDegree returns |Γ(u)|, the number of outgoing edges of u.
func (g *Digraph) OutDegree(u VertexID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// OutNeighbors returns the sorted out-neighbour list of u. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Digraph) OutNeighbors(u VertexID) []VertexID {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// HasInEdges reports whether the reverse adjacency was materialised.
func (g *Digraph) HasInEdges() bool { return g.inOff != nil }

// InDegree returns |Γ⁻¹(u)|. It panics unless the graph was built with
// in-edges (Builder.WithInEdges).
func (g *Digraph) InDegree(u VertexID) int {
	return int(g.inOff[u+1] - g.inOff[u])
}

// InNeighbors returns the sorted in-neighbour list of u. It panics unless the
// graph was built with in-edges. The returned slice aliases the graph's
// storage and must not be modified.
func (g *Digraph) InNeighbors(u VertexID) []VertexID {
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Digraph) HasEdge(u, v VertexID) bool {
	nbrs := g.OutNeighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// ForEachEdge calls fn for every directed edge in (src, dst) order.
func (g *Digraph) ForEachEdge(fn func(u, v VertexID)) {
	for u := 0; u < g.numVertices; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// Edges materialises the edge list in (src, dst) order.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v VertexID) { out = append(out, Edge{u, v}) })
	return out
}

// OutDegrees returns the out-degree of every vertex.
func (g *Digraph) OutDegrees() []int {
	out := make([]int, g.numVertices)
	for u := range out {
		out[u] = g.OutDegree(VertexID(u))
	}
	return out
}

// String summarises the graph for logs.
func (g *Digraph) String() string {
	return fmt.Sprintf("digraph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}

// WithoutEdges returns a copy of g with the given directed edges removed.
// Edges absent from g are ignored. The reverse adjacency is rebuilt when g
// had one. This backs the evaluation protocol of Section 5.2, which hides a
// sample of edges and asks the predictor to recover them.
func (g *Digraph) WithoutEdges(removed []Edge) *Digraph {
	if len(removed) == 0 {
		return g
	}
	drop := make(map[Edge]struct{}, len(removed))
	for _, e := range removed {
		drop[e] = struct{}{}
	}
	b := NewBuilder(g.numVertices)
	b.withInEdges = g.HasInEdges()
	g.ForEachEdge(func(u, v VertexID) {
		if _, gone := drop[Edge{u, v}]; !gone {
			b.AddEdge(u, v)
		}
	})
	// The source adjacency is already sorted and deduplicated.
	ng, err := b.Build()
	if err != nil {
		// Unreachable: removing edges cannot introduce invalid IDs.
		panic(fmt.Sprintf("graph: WithoutEdges rebuild failed: %v", err))
	}
	return ng
}

// errInvalidVertex is wrapped by Builder.Build for out-of-range endpoints.
var errInvalidVertex = errors.New("vertex id out of range")
