package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// In-place snapshot viewing: a version-2 .sgr image — an mmap'd file or a
// whole-file read into one aligned buffer — is parsed by aliasing its
// 8-aligned section payloads as typed columns, so load cost is independent
// of edge count. See the format comment in snapshot.go.

// hostLittleEndian reports the host byte order. In-place column views
// require little-endian (the on-disk order); other hosts transparently get
// decode copies from the view* helpers below.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedBytes returns a zeroed byte slice of length n whose first byte is
// 8-aligned, so a file image read into it can be column-viewed in place
// exactly like an mmap'd region. (Go does not guarantee alignment for
// plain []byte allocations; backing the slice with []uint64 does.)
func alignedBytes(n int64) []byte {
	if n <= 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// viewInt64s interprets an 8-aligned little-endian payload as []int64,
// aliasing it in place when the host allows and decoding a copy otherwise.
func viewInt64s(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return []int64{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&7 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// viewVertexIDs is viewInt64s for the 4-byte adjacency columns.
func viewVertexIDs(b []byte) []VertexID {
	n := len(b) / 4
	if n == 0 {
		return []VertexID{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&3 == 0 {
		return unsafe.Slice((*VertexID)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]VertexID, n)
	for i := range out {
		out[i] = VertexID(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewInt32s is the []int32 variant (shard degree/edge columns).
func viewInt32s(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return []int32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&3 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewSnapshot parses a complete snapshot image in place. data must hold
// the whole file from byte 0 with &data[0] 8-byte aligned (mmap regions
// and alignedBytes buffers both qualify) and must be format version 2 —
// callers route version-1 files to the streaming reader. On little-endian
// hosts the returned view's columns alias data, so the caller owns data's
// lifetime for as long as the view is reachable.
//
// verify=false runs only the O(vertices) structural checks — header CRC,
// section framing, zero padding, offset-column monotonicity — which is
// what keeps mapped loads allocation-free and clear of adjacency page
// faults; verify=true additionally checks every section CRC and the full
// row invariants (validateCSR, or a complete packed-row decode).
func viewSnapshot(data []byte, verify bool) (View, error) {
	if len(data) < snapshotHeaderLen {
		return nil, fmt.Errorf("graph: snapshot: truncated header (%d bytes)", len(data))
	}
	h, err := parseSnapshotHeader(data[:snapshotHeaderLen])
	if err != nil {
		return nil, err
	}
	if h.version < snapshotVersion {
		return nil, fmt.Errorf("graph: snapshot: format v%d predates the in-place layout", h.version)
	}
	w := &sectionWalker{data: data, pos: snapshotHeaderLen, align: snapshotAlign, prefix: "graph: snapshot", verify: verify}
	if h.packed() {
		p := &Packed{numVertices: h.vertices, numEdges: h.edges}
		if p.outOff, p.out, err = w.packedPair(h, "out"); err != nil {
			return nil, err
		}
		if h.inEdges() {
			if p.inOff, p.in, err = w.packedPair(h, "in"); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	g := &Digraph{numVertices: h.vertices}
	if g.outOff, g.outAdj, err = w.csrPair(h, "out"); err != nil {
		return nil, err
	}
	if h.inEdges() {
		if g.inOff, g.inAdj, err = w.csrPair(h, "in"); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// sectionWalker steps through the sections of an in-place file image.
// align is the section-start alignment the format promises (8 for
// version-2 snapshots, 1 — no padding — for shards); prefix labels errors.
type sectionWalker struct {
	data   []byte
	pos    int64
	align  int64
	prefix string
	verify bool
}

// section returns the next section's payload after checking the zero
// padding, the length prefix against want and, in verify mode, the CRC
// trailer.
func (s *sectionWalker) section(want int64, what string) ([]byte, error) {
	pad := -s.pos & (s.align - 1)
	if want < 0 || want > int64(len(s.data)) {
		return nil, fmt.Errorf("%s: truncated %s section", s.prefix, what)
	}
	end := s.pos + pad + 8 + want + 4
	if end > int64(len(s.data)) {
		return nil, fmt.Errorf("%s: truncated %s section", s.prefix, what)
	}
	for _, b := range s.data[s.pos : s.pos+pad] {
		if b != 0 {
			return nil, fmt.Errorf("%s: nonzero padding before %s section", s.prefix, what)
		}
	}
	s.pos += pad
	if got := binary.LittleEndian.Uint64(s.data[s.pos:]); got != uint64(want) {
		return nil, fmt.Errorf("%s: %s section length %d does not match header counts (want %d)", s.prefix, what, got, want)
	}
	payload := s.data[s.pos+8 : s.pos+8+want : s.pos+8+want]
	if s.verify {
		if got := binary.LittleEndian.Uint32(s.data[s.pos+8+want:]); got != crc32.Checksum(payload, snapshotCRC) {
			return nil, fmt.Errorf("%s: %s section checksum mismatch", s.prefix, what)
		}
	}
	s.pos = end
	return payload, nil
}

// csrPair views one plain adjacency direction: offset and adjacency
// columns, validated per the walker's verify mode.
func (s *sectionWalker) csrPair(h snapshotHeader, what string) ([]int64, []VertexID, error) {
	offB, err := s.section((int64(h.vertices)+1)*8, what+"-offset")
	if err != nil {
		return nil, nil, err
	}
	adjB, err := s.section(h.edges*4, what+"-adjacency")
	if err != nil {
		return nil, nil, err
	}
	off := viewInt64s(offB)
	adj := viewVertexIDs(adjB)
	if s.verify {
		err = validateCSR(h.vertices, off, adj, what)
	} else {
		err = validateOffsets(h.vertices, off, int64(len(adj)), what)
	}
	if err != nil {
		return nil, nil, err
	}
	return off, adj, nil
}

// packedPair views one packed adjacency direction: the byte-offset column
// and the row-block blob (whose length the offset column's endpoint
// defines and the section prefix must corroborate).
func (s *sectionWalker) packedPair(h snapshotHeader, what string) ([]int64, []byte, error) {
	offB, err := s.section((int64(h.vertices)+1)*8, what+"-offset")
	if err != nil {
		return nil, nil, err
	}
	off := viewInt64s(offB)
	blob, err := s.section(off[len(off)-1], what+"-adjacency")
	if err != nil {
		return nil, nil, err
	}
	if err := validateOffsets(h.vertices, off, int64(len(blob)), what); err != nil {
		return nil, nil, err
	}
	if s.verify {
		if err := validatePackedRows(h.vertices, off, blob, h.edges, what); err != nil {
			return nil, nil, err
		}
	}
	return off, blob, nil
}

// MapSnapshot opens a version-2 plain-adjacency .sgr snapshot with its CSR
// columns aliasing a read-only mmap view of the file: zero per-edge work,
// O(1) heap allocation independent of edge count, pages faulted in by the
// OS as queries touch them. On platforms without mmap the file is read
// into one aligned buffer and viewed in place the same way. Only the
// O(vertices) offset checks run here; open through OpenGraphFile with
// ReadOptions.Verify for full row validation.
//
// The mapping lives exactly as long as the returned graph: a runtime
// cleanup unmaps it when the graph becomes unreachable, so callers must
// keep the *Digraph alive while using any slice derived from it.
// Version-1 and packed-adjacency files are rejected; OpenGraphFile handles
// every layout.
func MapSnapshot(path string) (*Digraph, error) {
	v, info, err := OpenGraphFile(path, ReadOptions{})
	if err != nil {
		return nil, err
	}
	if info.Format != FormatSnapshot || info.Version < snapshotVersion {
		return nil, fmt.Errorf("graph: %s: not a format-v%d snapshot; re-pack with `snaple pack`", path, snapshotVersion)
	}
	g, ok := v.(*Digraph)
	if !ok {
		return nil, fmt.Errorf("graph: %s: packed-adjacency snapshot; open it with OpenGraphFile", path)
	}
	return g, nil
}
