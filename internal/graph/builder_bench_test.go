package graph

import (
	"runtime"
	"testing"
)

// benchEdges synthesises a power-law-flavoured edge list: a dense hub core
// (quadratic ID decay via an LCG) over a sparse background, the shape the
// counting-sort builder is optimised for.
func benchEdges(n, m int) []Edge {
	edges := make([]Edge, m)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for i := range edges {
		u := next() % uint64(n)
		v := next() % uint64(n)
		if next()%4 == 0 { // hub bias
			v %= uint64(n/64 + 1)
		}
		edges[i] = Edge{VertexID(u), VertexID(v)}
	}
	return edges
}

// BenchmarkBuildCSR compares CSR construction strategies on the same edge
// list: the legacy global sort.Slice builder, the serial counting sort, and
// the parallel counting sort at GOMAXPROCS. Run with -benchtime=1x in CI as
// a smoke test; on a multicore host the parallel builder should win.
func BenchmarkBuildCSR(b *testing.B) {
	const n, m = 1 << 16, 1 << 19
	edges := benchEdges(n, m)
	mk := func() *Builder {
		bld := NewBuilder(n)
		bld.Grow(len(edges))
		for _, e := range edges {
			bld.AddEdge(e.Src, e.Dst)
		}
		return bld
	}
	b.Run("sortslice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mk().buildSortSlice(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counting-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mk().build(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counting-parallel", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, err := mk().build(workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}
