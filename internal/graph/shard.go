package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
)

// Resident shard snapshots (.sgr.N) and fleet manifests (.sgr.manifest).
//
// `snaple pack -shards N` splits a graph along a vertex cut once, at pack
// time, and writes each partition as its own checksummed file. A resident
// snaple-worker loads exactly one of these at startup and keeps it pinned
// across sessions, so a coordinator attaches to a standing fleet with a
// fingerprint handshake instead of shipping the partition on every run —
// the shape DSSLP and GiGL use for production serving, where graph storage
// is a durable tier and queries only route to it.
//
// Both formats reuse the .sgr section discipline (u64 length prefix,
// streamed CRC-32C payload, u32 trailer) so corruption is caught at load,
// never mid-superstep.
//
// Shard layout (all integers little-endian):
//
//	magic       [8]byte "SNAPLSHD"
//	version     uint32 (currently 1)
//	shard       uint32 — this file's partition index
//	shards      uint32 — fleet width the cut was computed for
//	fingerprint uint64 — fleet fingerprint (graph + cut parameters)
//	vertices    uint64 — the GLOBAL vertex count
//	locals      uint64 — entries in the local vertex table
//	edges       uint64 — edges assigned to this partition
//	headerCRC   uint32 — CRC-32C of the 52 bytes above
//
// followed by sections: Locals (uint32 each), Deg (int32), EdgeSrc (int32),
// EdgeDst (int32), IsMaster (1 byte each), HasRemote (1 byte each).
//
// Manifest layout:
//
//	magic       [8]byte "SNAPLMAN"
//	version     uint32 (currently 1)
//	shards      uint32
//	fingerprint uint64
//	vertices    uint64
//	edges       uint64
//	seed        uint64
//	headerCRC   uint32 — CRC-32C of the 48 bytes above
//
// followed by sections: the strategy name (bytes), the shard file names
// ('\n'-joined, relative to the manifest), then per-shard local, master and
// edge counts (int64 each).
const (
	shardMagic        = "SNAPLSHD"
	shardVersion      = 1
	shardHeaderLen    = 56
	manifestMagic     = "SNAPLMAN"
	manifestVersion   = 1
	manifestHeaderLen = 52
)

// KnownMagic reports whether b begins with one of the package's on-disk
// magics (graph snapshot, resident shard or fleet manifest). `snaple pack`
// uses it as its overwrite guard: clobbering a file this package wrote is a
// re-pack, clobbering anything else is a typo'd -out.
func KnownMagic(b []byte) bool {
	if len(b) < 8 {
		return false
	}
	switch string(b[:8]) {
	case snapshotMagic, shardMagic, manifestMagic:
		return true
	}
	return false
}

// ShardFile is one resident partition: the vertex-cut share a worker pins at
// startup. The columns are exactly what the wire ship payload would carry —
// local vertex table, aligned degree/role columns, edges as local indices —
// plus the fleet identity (fingerprint, shard index, fleet width) that the
// attach handshake verifies in place of the transfer.
type ShardFile struct {
	// Fingerprint identifies the (graph, cut) this shard was packed from; a
	// coordinator attaching with a different fingerprint is rejected.
	Fingerprint uint64
	// Shard is this partition's index in [0, Shards).
	Shard int
	// Shards is the fleet width the vertex cut was computed for.
	Shards int
	// NumVertices is the global vertex count.
	NumVertices int
	// Locals holds the sorted global IDs of the vertices replicated here.
	Locals []VertexID
	// Deg holds the full out-degree of each local vertex, aligned with Locals.
	Deg []int32
	// EdgeSrc/EdgeDst are the partition's edges as indices into Locals.
	EdgeSrc, EdgeDst []int32
	// IsMaster/HasRemote are the full-run roles baked at pack time (scoped
	// attaches override them per query).
	IsMaster, HasRemote []bool
}

// Validate checks the shard's internal consistency — the same invariants a
// worker would otherwise trip over mid-superstep.
func (s *ShardFile) Validate() error {
	switch {
	case s.Shards <= 0 || s.Shard < 0 || s.Shard >= s.Shards:
		return fmt.Errorf("graph: shard: index %d outside fleet of %d", s.Shard, s.Shards)
	case len(s.Deg) != len(s.Locals):
		return fmt.Errorf("graph: shard: %d degrees for %d locals", len(s.Deg), len(s.Locals))
	case len(s.IsMaster) != len(s.Locals):
		return fmt.Errorf("graph: shard: %d master flags for %d locals", len(s.IsMaster), len(s.Locals))
	case len(s.HasRemote) != len(s.Locals):
		return fmt.Errorf("graph: shard: %d remote flags for %d locals", len(s.HasRemote), len(s.Locals))
	case len(s.EdgeSrc) != len(s.EdgeDst):
		return fmt.Errorf("graph: shard: %d edge sources, %d edge targets", len(s.EdgeSrc), len(s.EdgeDst))
	}
	for i, v := range s.Locals {
		if int(v) >= s.NumVertices || (i > 0 && v <= s.Locals[i-1]) {
			return fmt.Errorf("graph: shard: local table not strictly increasing in [0,%d) at row %d", s.NumVertices, i)
		}
	}
	for i := range s.EdgeSrc {
		if s.EdgeSrc[i] < 0 || int(s.EdgeSrc[i]) >= len(s.Locals) ||
			s.EdgeDst[i] < 0 || int(s.EdgeDst[i]) >= len(s.Locals) {
			return fmt.Errorf("graph: shard: edge %d outside the local table", i)
		}
	}
	return nil
}

// WriteShard writes one resident partition as a checksummed shard snapshot.
func WriteShard(w io.Writer, s *ShardFile) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [shardHeaderLen]byte
	copy(hdr[:8], shardMagic)
	binary.LittleEndian.PutUint32(hdr[8:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.Shard))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(s.Shards))
	binary.LittleEndian.PutUint64(hdr[20:], s.Fingerprint)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.NumVertices))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(len(s.Locals)))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(len(s.EdgeSrc)))
	binary.LittleEndian.PutUint32(hdr[52:], crc32.Checksum(hdr[:52], snapshotCRC))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: shard: write header: %w", err)
	}
	buf := make([]byte, snapshotChunk)
	if err := writeAdjSection(bw, s.Locals, buf); err != nil {
		return err
	}
	for _, col := range [][]int32{s.Deg, s.EdgeSrc, s.EdgeDst} {
		if err := writeInt32Section(bw, col, buf); err != nil {
			return err
		}
	}
	for _, col := range [][]bool{s.IsMaster, s.HasRemote} {
		if err := writeBoolSection(bw, col, buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: shard: flush: %w", err)
	}
	return nil
}

// ReadShard loads a resident partition written by WriteShard, verifying its
// checksums and structural invariants.
func ReadShard(r io.Reader) (*ShardFile, error) {
	sr := &sectionReader{r: bufio.NewReaderSize(r, 1<<20), buf: make([]byte, snapshotChunk), limit: sourceLimit(r)}
	var hdr [shardHeaderLen]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: shard: read header: %w", err)
	}
	if sr.limit >= 0 {
		sr.limit -= shardHeaderLen
	}
	if string(hdr[:8]) != shardMagic {
		return nil, fmt.Errorf("graph: shard: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != shardVersion {
		return nil, fmt.Errorf("graph: shard: unsupported version %d (want %d)", v, shardVersion)
	}
	if want, got := crc32.Checksum(hdr[:52], snapshotCRC), binary.LittleEndian.Uint32(hdr[52:]); want != got {
		return nil, fmt.Errorf("graph: shard: header checksum mismatch")
	}
	v64 := binary.LittleEndian.Uint64(hdr[28:])
	l64 := binary.LittleEndian.Uint64(hdr[36:])
	e64 := binary.LittleEndian.Uint64(hdr[44:])
	if v64 > 1<<32 || l64 > v64 {
		return nil, fmt.Errorf("graph: shard: implausible vertex counts (%d locals of %d)", l64, v64)
	}
	if e64 > math.MaxInt64/8 {
		return nil, fmt.Errorf("graph: shard: implausible edge count %d", e64)
	}
	s := &ShardFile{
		Fingerprint: binary.LittleEndian.Uint64(hdr[20:]),
		Shard:       int(binary.LittleEndian.Uint32(hdr[12:])),
		Shards:      int(binary.LittleEndian.Uint32(hdr[16:])),
		NumVertices: int(v64),
	}
	var err error
	if s.Locals, err = sr.vertexIDs(int64(l64)); err != nil {
		return nil, err
	}
	cols := []*[]int32{&s.Deg, &s.EdgeSrc, &s.EdgeDst}
	for i, elems := range []int64{int64(l64), int64(e64), int64(e64)} {
		if *cols[i], err = sr.int32s(elems); err != nil {
			return nil, err
		}
	}
	for _, col := range []*[]bool{&s.IsMaster, &s.HasRemote} {
		if *col, err = sr.bools(int64(l64)); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Manifest describes a packed shard set: the fleet identity every worker and
// coordinator must agree on, plus per-shard bookkeeping for operators.
type Manifest struct {
	// Fingerprint identifies the (graph, cut); it must match every shard's.
	Fingerprint uint64
	// Shards is the fleet width.
	Shards int
	// NumVertices/NumEdges describe the packed graph.
	NumVertices int
	NumEdges    int64
	// Seed and Strategy are the vertex-cut parameters the shards were packed
	// with (the coordinator re-derives routing from them).
	Seed     uint64
	Strategy string
	// Files names the shard files, relative to the manifest's directory.
	Files []string
	// Locals/Masters/Edges are per-shard counts, aligned with Files.
	Locals, Masters, Edges []int64
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	switch {
	case m.Shards <= 0:
		return fmt.Errorf("graph: manifest: non-positive shard count %d", m.Shards)
	case len(m.Files) != m.Shards || len(m.Locals) != m.Shards ||
		len(m.Masters) != m.Shards || len(m.Edges) != m.Shards:
		return fmt.Errorf("graph: manifest: per-shard tables do not all have %d rows", m.Shards)
	case m.Strategy == "":
		return fmt.Errorf("graph: manifest: empty strategy name")
	}
	for i, f := range m.Files {
		if f == "" || strings.ContainsRune(f, '\n') {
			return fmt.Errorf("graph: manifest: bad shard file name %q (row %d)", f, i)
		}
	}
	return nil
}

// WriteManifest writes a fleet manifest.
func WriteManifest(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	var hdr [manifestHeaderLen]byte
	copy(hdr[:8], manifestMagic)
	binary.LittleEndian.PutUint32(hdr[8:], manifestVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.Shards))
	binary.LittleEndian.PutUint64(hdr[16:], m.Fingerprint)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m.NumVertices))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m.NumEdges))
	binary.LittleEndian.PutUint64(hdr[40:], m.Seed)
	binary.LittleEndian.PutUint32(hdr[48:], crc32.Checksum(hdr[:48], snapshotCRC))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: manifest: write header: %w", err)
	}
	buf := make([]byte, snapshotChunk)
	if err := writeBytesSection(bw, []byte(m.Strategy), buf); err != nil {
		return err
	}
	if err := writeBytesSection(bw, []byte(strings.Join(m.Files, "\n")), buf); err != nil {
		return err
	}
	for _, col := range [][]int64{m.Locals, m.Masters, m.Edges} {
		if err := writeOffsetSection(bw, col, buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: manifest: flush: %w", err)
	}
	return nil
}

// ReadManifest loads a fleet manifest written by WriteManifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	sr := &sectionReader{r: bufio.NewReaderSize(r, 64<<10), buf: make([]byte, snapshotChunk), limit: sourceLimit(r)}
	var hdr [manifestHeaderLen]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: manifest: read header: %w", err)
	}
	if sr.limit >= 0 {
		sr.limit -= manifestHeaderLen
	}
	if string(hdr[:8]) != manifestMagic {
		return nil, fmt.Errorf("graph: manifest: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != manifestVersion {
		return nil, fmt.Errorf("graph: manifest: unsupported version %d (want %d)", v, manifestVersion)
	}
	if want, got := crc32.Checksum(hdr[:48], snapshotCRC), binary.LittleEndian.Uint32(hdr[48:]); want != got {
		return nil, fmt.Errorf("graph: manifest: header checksum mismatch")
	}
	m := &Manifest{
		Fingerprint: binary.LittleEndian.Uint64(hdr[16:]),
		Shards:      int(binary.LittleEndian.Uint32(hdr[12:])),
		NumVertices: int(binary.LittleEndian.Uint64(hdr[24:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(hdr[32:])),
		Seed:        binary.LittleEndian.Uint64(hdr[40:]),
	}
	if m.Shards <= 0 || m.Shards > 1<<20 {
		return nil, fmt.Errorf("graph: manifest: implausible shard count %d", m.Shards)
	}
	strat, err := sr.freeBytes(1 << 10)
	if err != nil {
		return nil, err
	}
	m.Strategy = string(strat)
	files, err := sr.freeBytes(64 << 20)
	if err != nil {
		return nil, err
	}
	m.Files = strings.Split(string(files), "\n")
	cols := []*[]int64{&m.Locals, &m.Masters, &m.Edges}
	for _, col := range cols {
		if *col, err = sr.int64s(int64(m.Shards)); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---- section helpers beyond snapshot.go's ----

func writeInt32Section(w io.Writer, col []int32, buf []byte) error {
	return writeSection(w, int64(len(col))*4, func(yield func([]byte) error) error {
		i := 0
		for i < len(col) {
			k := 0
			for i < len(col) && k+4 <= len(buf) {
				binary.LittleEndian.PutUint32(buf[k:], uint32(col[i]))
				k += 4
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeBoolSection(w io.Writer, col []bool, buf []byte) error {
	return writeSection(w, int64(len(col)), func(yield func([]byte) error) error {
		i := 0
		for i < len(col) {
			k := 0
			for i < len(col) && k < len(buf) {
				if col[i] {
					buf[k] = 1
				} else {
					buf[k] = 0
				}
				k++
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeBytesSection(w io.Writer, b, buf []byte) error {
	return writeSection(w, int64(len(b)), func(yield func([]byte) error) error {
		for len(b) > 0 {
			k := min(len(b), len(buf))
			copy(buf, b[:k])
			if err := yield(buf[:k]); err != nil {
				return err
			}
			b = b[k:]
		}
		return nil
	})
}

func (s *sectionReader) int32s(elems int64) ([]int32, error) {
	if err := s.begin(elems * 4); err != nil {
		return nil, err
	}
	out := make([]int32, 0, s.startCap(elems, 4))
	err := s.consume(elems*4, func(chunk []byte) {
		for i := 0; i < len(chunk); i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *sectionReader) bools(elems int64) ([]bool, error) {
	if err := s.begin(elems); err != nil {
		return nil, err
	}
	out := make([]bool, 0, s.startCap(elems, 1))
	err := s.consume(elems, func(chunk []byte) {
		for _, b := range chunk {
			out = append(out, b != 0)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// freeBytes reads a variable-length byte section whose length comes from the
// section's own prefix (unlike begin, which validates against header counts),
// bounded by maxLen against a lying prefix.
func (s *sectionReader) freeBytes(maxLen int64) ([]byte, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(s.r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("graph: manifest: truncated section header: %w", err)
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if int64(n) < 0 || int64(n) > maxLen {
		return nil, fmt.Errorf("graph: manifest: section of %d bytes exceeds the %d-byte bound", n, maxLen)
	}
	if s.limit >= 0 {
		if int64(n)+12 > s.limit {
			return nil, fmt.Errorf("graph: manifest: truncated: section of %d bytes exceeds remaining input", n)
		}
		s.limit -= int64(n) + 12
	}
	out := make([]byte, 0, n)
	err := s.consume(int64(n), func(chunk []byte) { out = append(out, chunk...) })
	if err != nil {
		return nil, err
	}
	return out, nil
}
