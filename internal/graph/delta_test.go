package graph

import (
	"errors"
	"reflect"
	"testing"

	"snaple/internal/randx"
)

// deltaTestBase builds a random base graph with the reverse adjacency
// materialised, so the overlay's in-edge mirror is exercised throughout.
func deltaTestBase(t testing.TB, n int, seed uint64) *Digraph {
	t.Helper()
	b := NewBuilder(n).WithInEdges(true)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && randx.Float64(seed, uint64(u), uint64(v)) < 0.08 {
				b.AddEdge(VertexID(u), VertexID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// collectEdges materialises a view's edge list in visit order.
func collectEdges(v View) []Edge {
	out := make([]Edge, 0, v.NumEdges())
	v.ForEachEdge(func(u, w VertexID) { out = append(out, Edge{Src: u, Dst: w}) })
	return out
}

// checkDeltaAgainstOracle compares d against a CSR rebuilt from the truth
// edge set on every View accessor.
func checkDeltaAgainstOracle(t *testing.T, step int, d *Delta, truth map[Edge]bool) {
	t.Helper()
	n := d.NumVertices()
	b := NewBuilder(n).WithInEdges(true)
	for e := range truth {
		b.AddEdge(e.Src, e.Dst)
	}
	want, err := b.Build()
	if err != nil {
		t.Fatalf("step %d: oracle rebuild: %v", step, err)
	}
	if d.NumEdges() != want.NumEdges() {
		t.Fatalf("step %d: NumEdges = %d, oracle %d", step, d.NumEdges(), want.NumEdges())
	}
	var buf []VertexID
	for u := 0; u < n; u++ {
		uid := VertexID(u)
		if d.OutDegree(uid) != want.OutDegree(uid) {
			t.Fatalf("step %d: OutDegree(%d) = %d, oracle %d", step, u, d.OutDegree(uid), want.OutDegree(uid))
		}
		if got := d.OutNeighbors(uid); !reflect.DeepEqual(append([]VertexID{}, got...), append([]VertexID{}, want.OutNeighbors(uid)...)) {
			t.Fatalf("step %d: OutNeighbors(%d) = %v, oracle %v", step, u, got, want.OutNeighbors(uid))
		}
		buf = d.AppendOutRow(buf[:0], uid)
		if !reflect.DeepEqual(append([]VertexID{}, buf...), append([]VertexID{}, want.OutNeighbors(uid)...)) {
			t.Fatalf("step %d: AppendOutRow(%d) = %v, oracle %v", step, u, buf, want.OutNeighbors(uid))
		}
		if d.InDegree(uid) != want.InDegree(uid) {
			t.Fatalf("step %d: InDegree(%d) = %d, oracle %d", step, u, d.InDegree(uid), want.InDegree(uid))
		}
		buf = d.AppendInRow(buf[:0], uid)
		if !reflect.DeepEqual(append([]VertexID{}, buf...), append([]VertexID{}, want.InNeighbors(uid)...)) {
			t.Fatalf("step %d: AppendInRow(%d) = %v, oracle %v", step, u, buf, want.InNeighbors(uid))
		}
		for v := 0; v < n; v++ {
			if got, exp := d.HasEdge(uid, VertexID(v)), truth[Edge{Src: uid, Dst: VertexID(v)}]; got != exp {
				t.Fatalf("step %d: HasEdge(%d,%d) = %v, oracle %v", step, u, v, got, exp)
			}
		}
	}
	if got, exp := collectEdges(d), collectEdges(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("step %d: ForEachEdge order diverged from oracle", step)
	}
	// Materialize must be bit-identical to the overlay it folds, reverse
	// adjacency included.
	m := d.Materialize()
	if !reflect.DeepEqual(collectEdges(m), collectEdges(d)) {
		t.Fatalf("step %d: Materialize changed the edge set", step)
	}
	if !m.HasInEdges() {
		t.Fatalf("step %d: Materialize dropped the reverse adjacency", step)
	}
	for u := 0; u < n; u++ {
		uid := VertexID(u)
		if !reflect.DeepEqual(append([]VertexID{}, m.InNeighbors(uid)...), append([]VertexID{}, want.InNeighbors(uid)...)) {
			t.Fatalf("step %d: Materialize in-row(%d) = %v, oracle %v", step, u, m.InNeighbors(uid), want.InNeighbors(uid))
		}
	}
}

// TestDeltaPropertyOracle drives a Delta through random mutation batches —
// duplicate adds, removes of absent edges, re-adds of removed base edges,
// self-loops, edges both added and removed in one batch — and holds every
// View accessor to a CSR rebuilt from a plain edge-set oracle after each
// batch. It also pins the persistence contract: applying a batch never
// perturbs the parent view.
func TestDeltaPropertyOracle(t *testing.T) {
	const n, steps = 48, 30
	base := deltaTestBase(t, n, 77)

	truth := make(map[Edge]bool, base.NumEdges())
	base.ForEachEdge(func(u, v VertexID) { truth[Edge{Src: u, Dst: v}] = true })

	d := NewDelta(base)
	checkDeltaAgainstOracle(t, -1, d, truth)

	pick := func(step, i, lane int) VertexID {
		return VertexID(randx.Uint64n(n, 1234, uint64(step), uint64(i), uint64(lane)))
	}
	for step := 0; step < steps; step++ {
		var add, remove []Edge
		nAdd := int(randx.Uint64n(8, 5678, uint64(step), 0))
		nRem := int(randx.Uint64n(8, 5678, uint64(step), 1))
		for i := 0; i < nAdd; i++ {
			add = append(add, Edge{Src: pick(step, i, 0), Dst: pick(step, i, 1)})
			if i%3 == 0 { // duplicate within the batch
				add = append(add, add[len(add)-1])
			}
		}
		if step%4 == 0 { // explicit self-loop: must be a no-op
			add = append(add, Edge{Src: pick(step, 99, 0), Dst: pick(step, 99, 0)})
		}
		for i := 0; i < nRem; i++ {
			remove = append(remove, Edge{Src: pick(step, i, 2), Dst: pick(step, i, 3)})
		}
		if len(add) > 0 && step%3 == 0 { // add-then-remove in one batch: net removed
			remove = append(remove, add[0])
		}

		parent, parentEdges := d, collectEdges(d)
		nd, err := d.Apply(add, remove)
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		if nd.Epoch() != parent.Epoch()+1 {
			t.Fatalf("step %d: epoch %d after %d", step, nd.Epoch(), parent.Epoch())
		}
		// Oracle semantics: adds land first, then removes.
		for _, e := range add {
			if e.Src != e.Dst {
				truth[e] = true
			}
		}
		for _, e := range remove {
			delete(truth, e)
		}
		checkDeltaAgainstOracle(t, step, nd, truth)
		if !reflect.DeepEqual(collectEdges(parent), parentEdges) {
			t.Fatalf("step %d: Apply mutated the parent view", step)
		}
		d = nd
	}

	// The overlay cannot grow the vertex set.
	if _, err := d.Apply([]Edge{{Src: 0, Dst: n}}, nil); !errors.Is(err, errInvalidVertex) {
		t.Fatalf("out-of-range add: err = %v, want errInvalidVertex", err)
	}
	if _, err := d.Apply(nil, []Edge{{Src: n, Dst: 0}}); !errors.Is(err, errInvalidVertex) {
		t.Fatalf("out-of-range remove: err = %v, want errInvalidVertex", err)
	}
}

// TestLiveApplyCompact pins the Live wrapper: Apply publishes fresh views
// with monotone epochs, old views stay readable and unchanged, and Compact
// folds the overlay into a clean CSR view that is bit-identical.
func TestLiveApplyCompact(t *testing.T) {
	base := deltaTestBase(t, 32, 9)
	l := NewLive(base)
	v0 := l.View()
	if v0.Epoch() != 0 || v0.NumEdges() != base.NumEdges() {
		t.Fatalf("initial view: epoch %d edges %d", v0.Epoch(), v0.NumEdges())
	}

	v1, err := l.Apply([]Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, []Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if l.View() != v1 || v1.Epoch() != 1 {
		t.Fatalf("Apply did not publish (epoch %d)", v1.Epoch())
	}
	before := collectEdges(v1)

	v2 := l.Compact()
	if l.View() != v2 || v2.Epoch() != 2 {
		t.Fatalf("Compact did not publish (epoch %d)", v2.Epoch())
	}
	if v2.OverlayRows() != 0 {
		t.Fatalf("compacted view still has %d overlay rows", v2.OverlayRows())
	}
	if csr, ok := AsCSR(v2); !ok || csr != v2.Base() {
		t.Fatal("compacted view is not a clean CSR")
	}
	if !reflect.DeepEqual(collectEdges(v2), before) {
		t.Fatal("compaction changed the edge set")
	}
	// The pre-compaction view is still readable and unchanged.
	if !reflect.DeepEqual(collectEdges(v1), before) {
		t.Fatal("compaction perturbed a held view")
	}
}
