// Package graph_test holds the tests that need the synthetic generators
// (internal/gen imports graph, so they cannot live in the internal test
// package without an import cycle).
package graph_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"snaple/internal/gen"
	"snaple/internal/graph"
)

// genGraphFiles generates an RMAT graph of at least minEdges edges and
// materialises it in both on-disk formats.
func genGraphFiles(tb testing.TB, scale, minEdges int) (g *graph.Digraph, textPath, sgrPath string) {
	tb.Helper()
	g, err := gen.RMAT(scale, 8, 0.57, 0.19, 0.19, 42)
	if err != nil {
		tb.Fatal(err)
	}
	if g.NumEdges() < minEdges {
		tb.Fatalf("generated only %d edges, want >= %d", g.NumEdges(), minEdges)
	}
	dir := tb.TempDir()
	textPath = filepath.Join(dir, "g.txt")
	sgrPath = filepath.Join(dir, "g.sgr")
	writeVia := func(path string, write func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			tb.Fatal(err)
		}
		if err := write(f); err != nil {
			tb.Fatal(err)
		}
		if err := f.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	writeVia(textPath, func(f *os.File) error { return graph.WriteEdgeList(f, g) })
	writeVia(sgrPath, func(f *os.File) error { return graph.WriteSnapshot(f, g) })
	return g, textPath, sgrPath
}

// TestSnapshotLoadSpeedup pins the point of the binary format: loading a
// >=1M-edge snapshot must be at least 5x faster than parsing the same
// graph from text (best of two runs each, to shake off cold caches).
func TestSnapshotLoadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g, textPath, sgrPath := genGraphFiles(t, 18, 1_000_000)

	load := func(path string, opts graph.ReadOptions) (time.Duration, *graph.Digraph) {
		best := time.Duration(1<<62 - 1)
		var out *graph.Digraph
		for i := 0; i < 2; i++ {
			start := time.Now()
			got, err := graph.ReadGraphFile(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			out = got
		}
		return best, out
	}
	textTime, fromText := load(textPath, graph.ReadOptions{PreserveIDs: true})
	snapTime, fromSnap := load(sgrPath, graph.ReadOptions{})
	if fromText.NumVertices() != g.NumVertices() || fromText.NumEdges() != g.NumEdges() ||
		fromSnap.NumVertices() != g.NumVertices() || fromSnap.NumEdges() != g.NumEdges() {
		t.Fatalf("loads disagree with source: text %s, snapshot %s, want %s", fromText, fromSnap, g)
	}
	t.Logf("E=%d: text parse %v, snapshot load %v (%.1fx)",
		g.NumEdges(), textTime, snapTime, float64(textTime)/float64(snapTime))
	if snapTime*5 > textTime {
		t.Errorf("snapshot load %v is not >=5x faster than text parse %v", snapTime, textTime)
	}
}

func BenchmarkIngestText(b *testing.B) {
	g, textPath, _ := genGraphFiles(b, 14, 100_000)
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadGraphFile(textPath, graph.ReadOptions{PreserveIDs: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	g, _, sgrPath := genGraphFiles(b, 14, 100_000)
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadGraphFile(sgrPath, graph.ReadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
