package graph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Delta is an immutable mutation overlay on a CSR base: per-vertex sorted
// add/remove lists merged against the base rows on the fly, so a live graph
// never pays a full CSR rebuild per mutation batch. A Delta is a persistent
// value — Apply returns a new Delta sharing every untouched row with its
// parent (copy-on-write), and the epoch increments on every Apply, so a
// reader holding a *Delta sees one consistent graph for as long as it wants
// while writers keep batching. Overlay rows keep two invariants: add is
// disjoint from the base row, del is a subset of it; both stay sorted, so
// merged rows come out sorted with a single skip-merge pass and no
// post-sort.
//
// The vertex set is fixed at the base's: mutations may only connect
// existing vertices. Compact (or Materialize) folds the overlay back into
// a fresh CSR when it grows past taste.
type Delta struct {
	base *Digraph
	out  map[VertexID]*deltaRow
	in   map[VertexID]*deltaRow // mirror of out, kept iff base has in-edges

	numEdges int
	epoch    uint64
}

// deltaRow is one vertex's overlay: edges added to and deleted from its
// base row. Rows that would become empty are removed from the map, so map
// emptiness means "no pending mutations".
type deltaRow struct {
	add []VertexID // sorted, disjoint from the base row
	del []VertexID // sorted, subset of the base row
}

var (
	_ View = (*Digraph)(nil)
	_ View = (*Delta)(nil)
)

// NewDelta returns an empty overlay over base: a View equal to base with
// epoch 0.
func NewDelta(base *Digraph) *Delta {
	return &Delta{base: base, numEdges: base.NumEdges()}
}

// Base returns the CSR snapshot the overlay applies to.
func (d *Delta) Base() *Digraph { return d.base }

// Epoch returns the view's version: it increments on every Apply and every
// compaction, so two views of the same Live graph compare by freshness.
func (d *Delta) Epoch() uint64 { return d.epoch }

// OverlayRows returns the number of vertices with pending out-row
// mutations — the quantity compaction thresholds watch.
func (d *Delta) OverlayRows() int { return len(d.out) }

// Apply returns a new Delta with the given edges added and then removed,
// leaving d untouched. Adding an existing edge, removing an absent one, and
// self-loop adds are no-ops (matching Builder semantics); duplicates within
// a batch are harmless. Endpoints outside the vertex set are an error —
// the overlay cannot grow the vertex space. The new view's epoch is d's
// plus one.
func (d *Delta) Apply(add, remove []Edge) (*Delta, error) {
	for _, e := range add {
		if err := d.checkEdge(e); err != nil {
			return nil, err
		}
	}
	for _, e := range remove {
		if err := d.checkEdge(e); err != nil {
			return nil, err
		}
	}
	nd := &Delta{
		base:     d.base,
		out:      cloneRowMap(d.out),
		numEdges: d.numEdges,
		epoch:    d.epoch + 1,
	}
	mirror := d.base.HasInEdges()
	if mirror {
		nd.in = cloneRowMap(d.in)
	}
	// cloned tracks rows copied (or created) by this Apply: those may be
	// mutated in place, every other row is shared with d and must be
	// cloned first.
	cloned := make(map[VertexID]bool)
	clonedIn := make(map[VertexID]bool)
	for _, e := range add {
		if e.Src == e.Dst {
			continue
		}
		inBase := d.base.HasEdge(e.Src, e.Dst)
		if rowApply(nd.out, cloned, e.Src, e.Dst, inBase, true) {
			nd.numEdges++
			if mirror {
				rowApply(nd.in, clonedIn, e.Dst, e.Src, inBase, true)
			}
		}
	}
	for _, e := range remove {
		inBase := d.base.HasEdge(e.Src, e.Dst)
		if rowApply(nd.out, cloned, e.Src, e.Dst, inBase, false) {
			nd.numEdges--
			if mirror {
				rowApply(nd.in, clonedIn, e.Dst, e.Src, inBase, false)
			}
		}
	}
	return nd, nil
}

func (d *Delta) checkEdge(e Edge) error {
	if int(e.Src) >= d.base.numVertices || int(e.Dst) >= d.base.numVertices {
		return fmt.Errorf("graph: edge (%d,%d) outside vertex set [0,%d): %w",
			e.Src, e.Dst, d.base.numVertices, errInvalidVertex)
	}
	return nil
}

func cloneRowMap(m map[VertexID]*deltaRow) map[VertexID]*deltaRow {
	out := make(map[VertexID]*deltaRow, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// rowApply transitions one overlay row for the edge value val (a neighbour
// in key's row), given whether the edge exists in the base, and reports
// whether the edge set actually changed. The same transition table serves
// the out overlay and its in-edge mirror.
func rowApply(rows map[VertexID]*deltaRow, cloned map[VertexID]bool, key, val VertexID, inBase, isAdd bool) bool {
	r := rows[key]
	switch {
	case isAdd && inBase: // re-add of a base edge: live only if deleted
		if r == nil || !containsSorted(r.del, val) {
			return false
		}
		r = mutableRow(rows, cloned, key)
		r.del = removeSorted(r.del, val)
	case isAdd: // genuinely new edge
		if r != nil && containsSorted(r.add, val) {
			return false
		}
		r = mutableRow(rows, cloned, key)
		r.add = insertSorted(r.add, val)
	case inBase: // remove a base edge
		if r != nil && containsSorted(r.del, val) {
			return false
		}
		r = mutableRow(rows, cloned, key)
		r.del = insertSorted(r.del, val)
	default: // remove an overlay-added edge (or a fully absent one)
		if r == nil || !containsSorted(r.add, val) {
			return false
		}
		r = mutableRow(rows, cloned, key)
		r.add = removeSorted(r.add, val)
	}
	if len(r.add) == 0 && len(r.del) == 0 {
		delete(rows, key) // keep map emptiness == "clean view"
	}
	return true
}

// mutableRow returns a row of rows that is safe to mutate in place,
// cloning (or creating) it on first touch.
func mutableRow(rows map[VertexID]*deltaRow, cloned map[VertexID]bool, key VertexID) *deltaRow {
	if r, ok := rows[key]; ok {
		if cloned[key] {
			return r
		}
		nr := &deltaRow{add: slices.Clone(r.add), del: slices.Clone(r.del)}
		rows[key] = nr
		cloned[key] = true
		return nr
	}
	r := &deltaRow{}
	rows[key] = r
	cloned[key] = true
	return r
}

func containsSorted(s []VertexID, v VertexID) bool {
	_, ok := slices.BinarySearch(s, v)
	return ok
}

func insertSorted(s []VertexID, v VertexID) []VertexID {
	i, _ := slices.BinarySearch(s, v)
	return slices.Insert(s, i, v)
}

func removeSorted(s []VertexID, v VertexID) []VertexID {
	i, _ := slices.BinarySearch(s, v)
	return slices.Delete(s, i, i+1)
}

// ---- View implementation ----

// NumVertices implements View.
func (d *Delta) NumVertices() int { return d.base.numVertices }

// NumEdges implements View.
func (d *Delta) NumEdges() int { return d.numEdges }

// OutDegree implements View.
func (d *Delta) OutDegree(u VertexID) int {
	deg := d.base.OutDegree(u)
	if r := d.out[u]; r != nil {
		deg += len(r.add) - len(r.del)
	}
	return deg
}

// OutNeighbors implements View. Overlay-dirty rows are materialised fresh;
// clean rows alias the base.
func (d *Delta) OutNeighbors(u VertexID) []VertexID {
	r := d.out[u]
	if r == nil {
		return d.base.OutNeighbors(u)
	}
	return mergeRow(make([]VertexID, 0, d.OutDegree(u)), d.base.OutNeighbors(u), r)
}

// AppendOutRow implements View.
func (d *Delta) AppendOutRow(buf []VertexID, u VertexID) []VertexID {
	r := d.out[u]
	if r == nil {
		return append(buf, d.base.OutNeighbors(u)...)
	}
	return mergeRow(buf, d.base.OutNeighbors(u), r)
}

// HasEdge implements View.
func (d *Delta) HasEdge(u, v VertexID) bool {
	if r := d.out[u]; r != nil {
		if containsSorted(r.add, v) {
			return true
		}
		if containsSorted(r.del, v) {
			return false
		}
	}
	return d.base.HasEdge(u, v)
}

// ForEachEdge implements View, preserving the (src, dst) visit order the
// distribution layer depends on.
func (d *Delta) ForEachEdge(fn func(u, v VertexID)) {
	for u := 0; u < d.base.numVertices; u++ {
		src := VertexID(u)
		r := d.out[src]
		if r == nil {
			for _, v := range d.base.OutNeighbors(src) {
				fn(src, v)
			}
			continue
		}
		ai, di := 0, 0
		for _, v := range d.base.OutNeighbors(src) {
			for ai < len(r.add) && r.add[ai] < v {
				fn(src, r.add[ai])
				ai++
			}
			if di < len(r.del) && r.del[di] == v {
				di++
				continue
			}
			fn(src, v)
		}
		for ; ai < len(r.add); ai++ {
			fn(src, r.add[ai])
		}
	}
}

// HasInEdges implements View.
func (d *Delta) HasInEdges() bool { return d.base.HasInEdges() }

// InDegree implements View. It panics unless the base has in-edges.
func (d *Delta) InDegree(u VertexID) int {
	deg := d.base.InDegree(u)
	if r := d.in[u]; r != nil {
		deg += len(r.add) - len(r.del)
	}
	return deg
}

// InNeighbors implements View. It panics unless the base has in-edges.
func (d *Delta) InNeighbors(u VertexID) []VertexID {
	r := d.in[u]
	if r == nil {
		return d.base.InNeighbors(u)
	}
	return mergeRow(make([]VertexID, 0, d.InDegree(u)), d.base.InNeighbors(u), r)
}

// AppendInRow implements View. It panics unless the base has in-edges.
func (d *Delta) AppendInRow(buf []VertexID, u VertexID) []VertexID {
	r := d.in[u]
	if r == nil {
		return append(buf, d.base.InNeighbors(u)...)
	}
	return mergeRow(buf, d.base.InNeighbors(u), r)
}

// mergeRow appends to dst the skip-merge of base minus r.del plus r.add —
// the single pass that keeps merged rows sorted. del being a sorted subset
// of base means its entries are consumed exactly at their base positions.
func mergeRow(dst, base []VertexID, r *deltaRow) []VertexID {
	ai, di := 0, 0
	for _, v := range base {
		for ai < len(r.add) && r.add[ai] < v {
			dst = append(dst, r.add[ai])
			ai++
		}
		if di < len(r.del) && r.del[di] == v {
			di++
			continue
		}
		dst = append(dst, v)
	}
	return append(dst, r.add[ai:]...)
}

// Materialize folds base+overlay into a fresh immutable CSR, rebuilding
// the reverse adjacency when the base carried one. The result is
// bit-identical, as a View, to d itself.
func (d *Delta) Materialize() *Digraph {
	n := d.base.numVertices
	ng := &Digraph{
		numVertices: n,
		outOff:      make([]int64, n+1),
		outAdj:      make([]VertexID, 0, d.numEdges),
	}
	for u := 0; u < n; u++ {
		ng.outAdj = d.AppendOutRow(ng.outAdj, VertexID(u))
		ng.outOff[u+1] = int64(len(ng.outAdj))
	}
	if d.base.HasInEdges() {
		ng.buildInAdjacency()
	}
	return ng
}

// Live owns a mutating graph: one writer lock serialising Apply/Compact,
// one atomic pointer publishing the current immutable *Delta. Readers call
// View and keep the returned value for a whole computation — consistency
// is free because published views never change.
type Live struct {
	mu  sync.Mutex
	cur atomic.Pointer[Delta]
}

// NewLive starts a live graph at base with an empty overlay (epoch 0).
func NewLive(base *Digraph) *Live {
	l := &Live{}
	l.cur.Store(NewDelta(base))
	return l
}

// View returns the current published view.
func (l *Live) View() *Delta { return l.cur.Load() }

// Apply atomically publishes a new view with the batch applied (adds
// first, then removes) and returns it. On error nothing is published.
func (l *Live) Apply(add, remove []Edge) (*Delta, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	nd, err := l.cur.Load().Apply(add, remove)
	if err != nil {
		return nil, err
	}
	l.cur.Store(nd)
	return nd, nil
}

// Compact rewrites base+overlay into a fresh CSR and publishes it as the
// new base under an epoch bump. Writers stall for the rebuild; readers
// never do (they keep whichever view they hold, and the compacted view is
// bit-identical to the one it replaces). The fresh view is returned so
// callers can persist its Base.
func (l *Live) Compact() *Delta {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.cur.Load()
	nd := &Delta{base: d.Materialize(), numEdges: d.numEdges, epoch: d.epoch + 1}
	l.cur.Store(nd)
	return nd
}
