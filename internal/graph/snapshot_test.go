package graph

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
)

func randomGraph(t *testing.T, rng *rand.Rand, v, e int, withIn bool) *Digraph {
	t.Helper()
	b := NewBuilder(v).WithInEdges(withIn)
	for i := 0; i < e; i++ {
		b.AddEdge(VertexID(rng.Intn(v)), VertexID(rng.Intn(v)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func snapshotBytes(t *testing.T, g *Digraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		name   string
		v, e   int
		withIn bool
	}{
		{"small", 16, 40, false},
		{"small with in-edges", 16, 40, true},
		{"isolated tail", 64, 10, false},
		{"empty", 5, 0, true},
		{"zero vertices", 0, 0, false},
		{"larger", 2000, 30000, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var g *Digraph
			if tc.e == 0 {
				g = MustFromEdges(tc.v, nil)
				if tc.withIn {
					g.buildInAdjacency()
				}
			} else {
				g = randomGraph(t, rng, tc.v, tc.e, tc.withIn)
			}
			data := snapshotBytes(t, g)
			g2, err := ReadSnapshot(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if !graphEqual(g, g2) {
				t.Fatalf("round trip changed the graph: %s -> %s (inEdges %v -> %v)",
					g, g2, g.HasInEdges(), g2.HasInEdges())
			}
		})
	}
}

// TestSnapshotMatchesTextPath: packing and loading a snapshot must produce
// the same Digraph as parsing the text edge list it came from, including
// Symmetrize/WithInEdges/PreserveIDs combinations baked in at pack time.
func TestSnapshotMatchesTextPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := randomEdgeList(rng, 20+rng.Intn(200), false)
		for _, sym := range []bool{false, true} {
			for _, inE := range []bool{false, true} {
				for _, preserve := range []bool{false, true} {
					opts := ReadOptions{Symmetrize: sym, WithInEdges: inE, PreserveIDs: preserve}
					fromText, err := ReadEdgeList(strings.NewReader(in), opts)
					if err != nil {
						t.Fatal(err)
					}
					g2, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, fromText)))
					if err != nil {
						t.Fatal(err)
					}
					if !graphEqual(fromText, g2) {
						t.Fatalf("sym=%v inE=%v preserve=%v: snapshot path diverged from text path",
							sym, inE, preserve)
					}
				}
			}
		}
	}
}

func TestDetectFormat(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}})
	if f := DetectFormat(snapshotBytes(t, g)); f != FormatSnapshot {
		t.Errorf("snapshot detected as %v", f)
	}
	for _, text := range []string{"", "#", "# comment\n", "0 1\n", "SNAPL", "SNAPLSG"} {
		if f := DetectFormat([]byte(text)); f != FormatEdgeList {
			t.Errorf("%q detected as %v, want edge list", text, f)
		}
	}
}

// TestSnapshotCorruptionRejected flips every bit of a valid snapshot and
// truncates it at every length: each mutation must load as an error, never
// as a silently different graph (magic, header CRC, section lengths and
// section CRCs together cover every byte).
func TestSnapshotCorruptionRejected(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(9)), 12, 30, true)
	data := snapshotBytes(t, g)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded without error", i, bit)
			}
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded without error", cut, len(data))
		}
	}
	// Trailing data after the last section is explicitly tolerated.
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), data...), "tail"...))); err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
}

// TestSnapshotRejectsInvalidStructure writes structurally broken graphs
// through the (non-validating) writer and checks the loader's CSR
// validation refuses them even though every checksum is intact.
func TestSnapshotRejectsInvalidStructure(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Digraph
	}{
		{"row not strictly increasing", &Digraph{
			numVertices: 2, outOff: []int64{0, 2, 2}, outAdj: []VertexID{1, 1},
		}},
		{"row unsorted", &Digraph{
			numVertices: 3, outOff: []int64{0, 2, 2, 2}, outAdj: []VertexID{2, 0},
		}},
		{"neighbor out of range", &Digraph{
			numVertices: 2, outOff: []int64{0, 1, 1}, outAdj: []VertexID{5},
		}},
		{"offsets decreasing", &Digraph{
			numVertices: 2, outOff: []int64{0, 2, 1}, outAdj: []VertexID{1},
		}},
		{"offsets negative", &Digraph{
			numVertices: 2, outOff: []int64{0, -1, 1}, outAdj: []VertexID{1},
		}},
		{"in-adjacency bad", &Digraph{
			numVertices: 2, outOff: []int64{0, 1, 1}, outAdj: []VertexID{1},
			inOff: []int64{0, 0, 1}, inAdj: []VertexID{9},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, tc.g))); err == nil {
				t.Fatal("structurally invalid snapshot loaded without error")
			}
		})
	}
}

func TestReadGraphFileAutoDetect(t *testing.T) {
	dir := t.TempDir()
	g := MustFromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 3}})

	textPath := dir + "/g.txt"
	sgrPath := dir + "/g.sgr"
	writeFile := func(path string, write func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(textPath, func(b *bytes.Buffer) error { return WriteEdgeList(b, g) })
	writeFile(sgrPath, func(b *bytes.Buffer) error { return WriteSnapshot(b, g) })

	fromText, err := ReadGraphFile(textPath, ReadOptions{PreserveIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := ReadGraphFile(sgrPath, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graphEqual(fromText, g) || !graphEqual(fromSnap, g) {
		t.Fatalf("auto-detected loads differ: text %s, snapshot %s, want %s", fromText, fromSnap, g)
	}
	// WithInEdges materialises the reverse adjacency on snapshots that
	// lack one; Symmetrize is rejected (it applies at pack time).
	withIn, err := ReadGraphFile(sgrPath, ReadOptions{WithInEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if !withIn.HasInEdges() || withIn.InDegree(1) != 1 {
		t.Error("WithInEdges not materialised on snapshot load")
	}
	if _, err := ReadGraphFile(sgrPath, ReadOptions{Symmetrize: true}); err == nil {
		t.Error("Symmetrize on a snapshot: want error")
	}
}
