package graph

// View is read-only adjacency access over a directed graph. It is
// implemented by the immutable CSR *Digraph and by *Delta, a mutable
// overlay of sorted per-vertex add/remove lists on a CSR base, so every
// consumer layer (step runners, frontiers, partitioners, engines) can run
// unchanged over a frozen snapshot or a live, mutating graph.
//
// Contract shared by all implementations:
//
//   - Vertex IDs are dense in [0, NumVertices); the vertex set is fixed.
//   - Neighbour rows are sorted strictly increasing and never contain
//     self-loops or duplicates.
//   - ForEachEdge visits edges in (src, dst) order — the order the
//     distribution layer relies on when slicing edges into partitions.
//   - In-edge accessors panic unless HasInEdges reports true.
//
// OutNeighbors/InNeighbors may allocate on overlay-dirty rows (the merged
// row has no contiguous backing array); hot paths that iterate rows
// repeatedly should use AppendOutRow/AppendInRow with a reused buffer, or
// unwrap the CSR fast path via AsCSR.
type View interface {
	NumVertices() int
	NumEdges() int

	OutDegree(u VertexID) int
	// OutNeighbors returns the sorted out-neighbour row of u. The result
	// must not be modified; it may alias internal storage or be freshly
	// allocated.
	OutNeighbors(u VertexID) []VertexID
	// AppendOutRow appends u's sorted out-neighbour row to buf and returns
	// the extended slice. It never retains buf and allocates only when buf
	// lacks capacity, so callers can amortise to zero allocations.
	AppendOutRow(buf []VertexID, u VertexID) []VertexID
	HasEdge(u, v VertexID) bool
	ForEachEdge(fn func(u, v VertexID))

	HasInEdges() bool
	InDegree(u VertexID) int
	InNeighbors(u VertexID) []VertexID
	AppendInRow(buf []VertexID, u VertexID) []VertexID
}

// AsCSR unwraps v to its immutable CSR representation when it has one with
// no pending overlay: a *Digraph, or a *Delta whose overlay is empty.
// Callers use it to keep frozen-graph paths monomorphic (direct slice
// access, no per-edge interface dispatch).
func AsCSR(v View) (*Digraph, bool) {
	switch g := v.(type) {
	case *Digraph:
		return g, true
	case *Delta:
		if len(g.out) == 0 {
			return g.base, true
		}
	}
	return nil, false
}

// Without is the View counterpart of Digraph.WithoutEdges: it returns a
// view of v with the given edges hidden behind a (further) remove-only
// overlay. Absent edges and out-of-range endpoints are ignored.
func Without(v View, removed []Edge) View {
	switch g := v.(type) {
	case *Digraph:
		return g.WithoutEdges(removed)
	case *Delta:
		d, err := g.Apply(nil, clampEdges(g.NumVertices(), removed))
		if err != nil {
			panic("graph: Without after filtering: " + err.Error())
		}
		return d
	default:
		panic("graph: Without over an unknown View implementation")
	}
}

// AppendOutRow implements View for the CSR: it appends the stored row.
func (g *Digraph) AppendOutRow(buf []VertexID, u VertexID) []VertexID {
	return append(buf, g.OutNeighbors(u)...)
}

// AppendInRow implements View for the CSR. It panics unless the graph was
// built with in-edges.
func (g *Digraph) AppendInRow(buf []VertexID, u VertexID) []VertexID {
	return append(buf, g.InNeighbors(u)...)
}

// EnsureInEdges materialises the reverse adjacency in place if the graph
// was built without it (Builder.WithInEdges does it at build time). It is
// not safe to call concurrently with readers; call it before sharing g.
func (g *Digraph) EnsureInEdges() {
	if !g.HasInEdges() {
		g.buildInAdjacency()
	}
}
