package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
)

// Binary CSR snapshot format (.sgr).
//
// SNAP ships binary graph snapshots because re-parsing a multi-gigabyte
// text edge list before every run is where large-graph pipelines lose
// their time; this is the same idea for our CSR. The layout mirrors the
// in-memory Digraph exactly, so loading is a sequential read that
// materialises the final slices directly — no per-edge allocation, no
// remap, no edge-list intermediate, no re-sort.
//
// Layout (all integers little-endian):
//
//	magic     [8]byte "SNAPLSGR"
//	version   uint32 (currently 1)
//	flags     uint32 (bit 0: in-adjacency sections present)
//	vertices  uint64
//	edges     uint64
//	headerCRC uint32 — CRC-32C of the 32 bytes above
//
// followed by the sections, in order: outOff (vertices+1 × int64), outAdj
// (edges × uint32) and, when flagged, inOff and inAdj. Each section is
//
//	length  uint64 — payload bytes; must match the header's counts
//	payload
//	crc     uint32 — CRC-32C of the payload
//
// Every load ends with a full structural validation (monotone offsets,
// strictly increasing in-range rows) so a corrupt or hand-made file is
// rejected here rather than poisoning binary searches later. Trailing
// bytes after the last section are ignored.
const (
	snapshotMagic       = "SNAPLSGR"
	snapshotVersion     = 1
	snapshotFlagInEdges = 1 << 0
	snapshotHeaderLen   = 36
	snapshotChunk       = 256 << 10 // multiple of both element sizes
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot writes g as a binary CSR snapshot. The reverse adjacency is
// included when g carries one, so ReadSnapshot reproduces g bit for bit.
func WriteSnapshot(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [snapshotHeaderLen]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersion)
	var flags uint32
	if g.HasInEdges() {
		flags |= snapshotFlagInEdges
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], snapshotCRC))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write header: %w", err)
	}
	buf := make([]byte, snapshotChunk)
	if err := writeOffsetSection(bw, g.outOff, buf); err != nil {
		return err
	}
	if err := writeAdjSection(bw, g.outAdj, buf); err != nil {
		return err
	}
	if g.HasInEdges() {
		if err := writeOffsetSection(bw, g.inOff, buf); err != nil {
			return err
		}
		if err := writeAdjSection(bw, g.inAdj, buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: snapshot: flush: %w", err)
	}
	return nil
}

func writeOffsetSection(w io.Writer, off []int64, buf []byte) error {
	return writeSection(w, int64(len(off))*8, func(yield func([]byte) error) error {
		i := 0
		for i < len(off) {
			k := 0
			for i < len(off) && k+8 <= len(buf) {
				binary.LittleEndian.PutUint64(buf[k:], uint64(off[i]))
				k += 8
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeAdjSection(w io.Writer, adj []VertexID, buf []byte) error {
	return writeSection(w, int64(len(adj))*4, func(yield func([]byte) error) error {
		i := 0
		for i < len(adj) {
			k := 0
			for i < len(adj) && k+4 <= len(buf) {
				binary.LittleEndian.PutUint32(buf[k:], uint32(adj[i]))
				k += 4
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeSection frames one section: length prefix, payload streamed through
// emit's yield (checksummed as it passes), CRC trailer.
func writeSection(w io.Writer, payloadLen int64, emit func(yield func([]byte) error) error) error {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(payloadLen))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	crc := uint32(0)
	err := emit(func(p []byte) error {
		crc = crc32.Update(crc, snapshotCRC, p)
		_, werr := w.Write(p)
		return werr
	})
	if err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	if _, err := w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	return nil
}

// ReadSnapshot loads a binary CSR snapshot written by WriteSnapshot. The
// checksums and the structural invariants of every section are verified;
// any mismatch is an error, never a mangled graph.
func ReadSnapshot(r io.Reader) (*Digraph, error) {
	limit := sourceLimit(r)
	sr := &sectionReader{r: bufio.NewReaderSize(r, 1<<20), buf: make([]byte, snapshotChunk), limit: limit}
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot: read header: %w", err)
	}
	if sr.limit >= 0 {
		sr.limit -= snapshotHeaderLen
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, fmt.Errorf("graph: snapshot: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("graph: snapshot: unsupported version %d (want %d)", v, snapshotVersion)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:])
	if flags&^uint32(snapshotFlagInEdges) != 0 {
		return nil, fmt.Errorf("graph: snapshot: unknown flags %#x", flags)
	}
	if want, got := crc32.Checksum(hdr[:32], snapshotCRC), binary.LittleEndian.Uint32(hdr[32:]); want != got {
		return nil, fmt.Errorf("graph: snapshot: header checksum mismatch")
	}
	v64 := binary.LittleEndian.Uint64(hdr[16:])
	e64 := binary.LittleEndian.Uint64(hdr[24:])
	if v64 > 1<<32 {
		return nil, fmt.Errorf("graph: snapshot: vertex count %d exceeds the 2^32 limit", v64)
	}
	if e64 > math.MaxInt64/8 {
		return nil, fmt.Errorf("graph: snapshot: implausible edge count %d", e64)
	}
	n := int(v64)
	outOff, err := sr.int64s(int64(n) + 1)
	if err != nil {
		return nil, err
	}
	outAdj, err := sr.vertexIDs(int64(e64))
	if err != nil {
		return nil, err
	}
	if err := validateCSR(n, outOff, outAdj, "out"); err != nil {
		return nil, err
	}
	g := &Digraph{numVertices: n, outOff: outOff, outAdj: outAdj}
	if flags&snapshotFlagInEdges != 0 {
		inOff, err := sr.int64s(int64(n) + 1)
		if err != nil {
			return nil, err
		}
		inAdj, err := sr.vertexIDs(int64(e64))
		if err != nil {
			return nil, err
		}
		if err := validateCSR(n, inOff, inAdj, "in"); err != nil {
			return nil, err
		}
		g.inOff, g.inAdj = inOff, inAdj
	}
	return g, nil
}

// sourceLimit reports how many bytes the reader can still produce, when
// knowable (regular files and in-memory readers). A known limit lets the
// section readers allocate exactly; an unknown one (-1) makes them grow
// incrementally so a lying header cannot force a huge allocation.
func sourceLimit(r io.Reader) int64 {
	switch src := r.(type) {
	case *os.File:
		if fi, err := src.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := src.Seek(0, io.SeekCurrent); err == nil {
				return fi.Size() - pos
			}
		}
	case *bytes.Reader:
		return int64(src.Len())
	}
	return -1
}

// sectionReader decodes length-prefixed, CRC-trailed sections.
type sectionReader struct {
	r     io.Reader
	buf   []byte
	limit int64 // bytes remaining in the source; -1 unknown
}

// begin consumes the section's length prefix and validates it against the
// element count implied by the snapshot header and against the source size.
func (s *sectionReader) begin(want int64) error {
	var lenBuf [8]byte
	if _, err := io.ReadFull(s.r, lenBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: truncated section header: %w", err)
	}
	if got := binary.LittleEndian.Uint64(lenBuf[:]); got != uint64(want) {
		return fmt.Errorf("graph: snapshot: section length %d does not match header counts (want %d)", got, want)
	}
	if s.limit >= 0 {
		if want+12 > s.limit {
			return fmt.Errorf("graph: snapshot: truncated: section of %d bytes exceeds remaining input", want)
		}
		s.limit -= want + 12
	}
	return nil
}

// consume streams the payload through decode in chunks, then verifies the
// CRC trailer.
func (s *sectionReader) consume(want int64, decode func(chunk []byte)) error {
	crc := uint32(0)
	for remaining := want; remaining > 0; {
		m := int(min(int64(len(s.buf)), remaining))
		if _, err := io.ReadFull(s.r, s.buf[:m]); err != nil {
			return fmt.Errorf("graph: snapshot: truncated section payload: %w", err)
		}
		crc = crc32.Update(crc, snapshotCRC, s.buf[:m])
		decode(s.buf[:m])
		remaining -= int64(m)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(s.r, crcBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: truncated section checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != crc {
		return fmt.Errorf("graph: snapshot: section checksum mismatch")
	}
	return nil
}

// startCap bounds the initial slice capacity: exact when the source size is
// known (begin already proved the payload fits), else one chunk's worth,
// growing with the data actually read.
func (s *sectionReader) startCap(elems, elemSize int64) int64 {
	if s.limit >= 0 || elems <= snapshotChunk/elemSize {
		return elems
	}
	return snapshotChunk / elemSize
}

func (s *sectionReader) int64s(elems int64) ([]int64, error) {
	if err := s.begin(elems * 8); err != nil {
		return nil, err
	}
	out := make([]int64, 0, s.startCap(elems, 8))
	err := s.consume(elems*8, func(chunk []byte) {
		for i := 0; i < len(chunk); i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *sectionReader) vertexIDs(elems int64) ([]VertexID, error) {
	if err := s.begin(elems * 4); err != nil {
		return nil, err
	}
	out := make([]VertexID, 0, s.startCap(elems, 4))
	err := s.consume(elems*4, func(chunk []byte) {
		for i := 0; i < len(chunk); i += 4 {
			out = append(out, VertexID(binary.LittleEndian.Uint32(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// validateCSR rejects structurally invalid CSR data: offsets must start at
// zero, be monotonically non-decreasing and end at len(adj), and every row
// must be strictly increasing with all values inside [0, n). HasEdge's
// binary search and the merge kernels in internal/core assume sorted
// duplicate-free rows, so a corrupt snapshot must fail here, not there.
func validateCSR(n int, off []int64, adj []VertexID, what string) error {
	if len(off) != n+1 || off[0] != 0 || off[n] != int64(len(adj)) {
		return fmt.Errorf("graph: snapshot: %s-offset endpoints invalid", what)
	}
	var mu sync.Mutex
	var vErr error
	record := func(err error) {
		mu.Lock()
		if vErr == nil {
			vErr = err
		}
		mu.Unlock()
	}
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			s, e := off[u], off[u+1]
			if s > e || e > int64(len(adj)) {
				record(fmt.Errorf("graph: snapshot: %s-offsets not monotonic at vertex %d", what, u))
				return
			}
			for i := s; i < e; i++ {
				if int(adj[i]) >= n {
					record(fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d references vertex %d of %d", what, u, adj[i], n))
					return
				}
				if i > s && adj[i] <= adj[i-1] {
					record(fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d not strictly increasing", what, u))
					return
				}
			}
		}
	})
	return vErr
}
