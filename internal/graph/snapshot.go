package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
)

// Binary CSR snapshot format (.sgr).
//
// SNAP ships binary graph snapshots because re-parsing a multi-gigabyte
// text edge list before every run is where large-graph pipelines lose
// their time; this is the same idea for our CSR. The layout mirrors the
// in-memory Digraph exactly, so loading is a sequential read that
// materialises the final slices directly — no per-edge allocation, no
// remap, no edge-list intermediate, no re-sort.
//
// Layout (all integers little-endian):
//
//	magic     [8]byte "SNAPLSGR"
//	version   uint32 (currently 2; version-1 files remain readable)
//	flags     uint32 (bit 0: in-adjacency sections present,
//	                  bit 1: packed delta-varint adjacency, version ≥ 2)
//	vertices  uint64
//	edges     uint64
//	headerCRC uint32 — CRC-32C of the 32 bytes above
//
// followed by the sections, in order: outOff (vertices+1 × int64), outAdj
// (edges × uint32) and, when flagged, inOff and inAdj. Each section is
//
//	padding — zero bytes aligning the length prefix to 8 (version ≥ 2 only)
//	length  uint64 — payload bytes; must match the header's counts
//	payload
//	crc     uint32 — CRC-32C of the payload
//
// The header is 36 bytes and every version-2 section start is padded to an
// 8-byte boundary, so each payload begins at a file offset that is a
// multiple of 8. That is what makes version-2 snapshots viewable in place:
// mmap the file (or read it into one 8-aligned buffer) and outOff []int64 /
// outAdj []VertexID alias the payload bytes directly, with zero per-edge
// work on load — see MapSnapshot and OpenGraphFile. Version-1 files have no
// padding and always take the streaming decode path below.
//
// With the packed-adjacency flag the adjacency sections hold delta-varint
// row blocks instead of raw uint32 columns and the offset sections index
// bytes rather than elements; such snapshots surface as a *Packed view
// (see packed.go).
//
// Every streamed load ends with a full structural validation (monotone
// offsets, strictly increasing in-range rows) so a corrupt or hand-made
// file is rejected here rather than poisoning binary searches later; the
// mapped load path defers the O(edges) row checks behind ReadOptions.Verify
// but always validates the offset columns, which is what keeps row slicing
// memory-safe. Trailing bytes after the last section are ignored.
const (
	snapshotMagic       = "SNAPLSGR"
	snapshotVersion     = 2
	snapshotVersionV1   = 1
	snapshotFlagInEdges = 1 << 0
	snapshotFlagPacked  = 1 << 1
	snapshotHeaderLen   = 36
	snapshotChunk       = 256 << 10 // multiple of both element sizes
	snapshotAlign       = 8
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// SnapshotOptions configures WriteSnapshotOpts.
type SnapshotOptions struct {
	// Packed stores each adjacency row as a delta-varint block (format
	// flag bit 1): typically 2-4x smaller for graphs with clustered IDs,
	// at the cost of O(row bytes) decode per access. Readers surface such
	// snapshots as a *Packed view (or decode them to a CSR on demand).
	Packed bool
}

// WriteSnapshot writes g as a binary CSR snapshot (format version 2, plain
// adjacency). The reverse adjacency is included when g carries one, so
// ReadSnapshot reproduces g bit for bit.
func WriteSnapshot(w io.Writer, g *Digraph) error {
	return WriteSnapshotOpts(w, g, SnapshotOptions{})
}

// WriteSnapshotOpts is WriteSnapshot with explicit encoding options.
func WriteSnapshotOpts(w io.Writer, g *Digraph, o SnapshotOptions) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}
	var hdr [snapshotHeaderLen]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersion)
	var flags uint32
	if g.HasInEdges() {
		flags |= snapshotFlagInEdges
	}
	if o.Packed {
		flags |= snapshotFlagPacked
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], snapshotCRC))
	if _, err := cw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write header: %w", err)
	}
	buf := make([]byte, snapshotChunk)
	outOff := g.outOff
	if outOff == nil {
		outOff = []int64{0} // zero-value Digraph
	}
	if err := writeSnapshotPair(cw, outOff, g.outAdj, o.Packed, buf); err != nil {
		return err
	}
	if g.HasInEdges() {
		if err := writeSnapshotPair(cw, g.inOff, g.inAdj, o.Packed, buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: snapshot: flush: %w", err)
	}
	return nil
}

// writeSnapshotPair emits one adjacency direction: the offset section and
// the adjacency section, each padded to an 8-aligned start.
func writeSnapshotPair(cw *countingWriter, off []int64, adj []VertexID, packed bool, buf []byte) error {
	if packed {
		poff := packedOffsets(off, adj)
		if err := cw.pad(); err != nil {
			return err
		}
		if err := writeOffsetSection(cw, poff, buf); err != nil {
			return err
		}
		if err := cw.pad(); err != nil {
			return err
		}
		return writePackedAdjSection(cw, off, adj, poff[len(poff)-1], buf)
	}
	if err := cw.pad(); err != nil {
		return err
	}
	if err := writeOffsetSection(cw, off, buf); err != nil {
		return err
	}
	if err := cw.pad(); err != nil {
		return err
	}
	return writeAdjSection(cw, adj, buf)
}

// countingWriter tracks the absolute file offset so section starts can be
// padded to the 8-byte alignment the in-place viewer relies on.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	m, err := c.w.Write(p)
	c.n += int64(m)
	return m, err
}

var snapshotPadding [snapshotAlign]byte

// pad writes the zero bytes that align the next write to an 8-byte file
// offset.
func (c *countingWriter) pad() error {
	if k := int(-c.n & (snapshotAlign - 1)); k > 0 {
		if _, err := c.Write(snapshotPadding[:k]); err != nil {
			return fmt.Errorf("graph: snapshot: write padding: %w", err)
		}
	}
	return nil
}

func writeOffsetSection(w io.Writer, off []int64, buf []byte) error {
	return writeSection(w, int64(len(off))*8, func(yield func([]byte) error) error {
		i := 0
		for i < len(off) {
			k := 0
			for i < len(off) && k+8 <= len(buf) {
				binary.LittleEndian.PutUint64(buf[k:], uint64(off[i]))
				k += 8
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeAdjSection(w io.Writer, adj []VertexID, buf []byte) error {
	return writeSection(w, int64(len(adj))*4, func(yield func([]byte) error) error {
		i := 0
		for i < len(adj) {
			k := 0
			for i < len(adj) && k+4 <= len(buf) {
				binary.LittleEndian.PutUint32(buf[k:], uint32(adj[i]))
				k += 4
				i++
			}
			if err := yield(buf[:k]); err != nil {
				return err
			}
		}
		return nil
	})
}

// writePackedAdjSection streams the delta-varint row blocks of the given
// CSR, re-encoding on the fly (packedOffsets already sized the payload), so
// packing never materialises the whole blob.
func writePackedAdjSection(w io.Writer, off []int64, adj []VertexID, payloadLen int64, buf []byte) error {
	return writeSection(w, payloadLen, func(yield func([]byte) error) error {
		out := buf[:0]
		for u := 0; u+1 < len(off); u++ {
			out = appendPackedRow(out, adj[off[u]:off[u+1]])
			if len(out) >= snapshotChunk/2 {
				if err := yield(out); err != nil {
					return err
				}
				out = out[:0]
			}
		}
		if len(out) > 0 {
			return yield(out)
		}
		return nil
	})
}

// writeSection frames one section: length prefix, payload streamed through
// emit's yield (checksummed as it passes), CRC trailer.
func writeSection(w io.Writer, payloadLen int64, emit func(yield func([]byte) error) error) error {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(payloadLen))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	crc := uint32(0)
	err := emit(func(p []byte) error {
		crc = crc32.Update(crc, snapshotCRC, p)
		_, werr := w.Write(p)
		return werr
	})
	if err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	if _, err := w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write section: %w", err)
	}
	return nil
}

// snapshotHeader is the parsed fixed header of a .sgr file.
type snapshotHeader struct {
	version  uint32
	flags    uint32
	vertices int
	edges    int64
}

func (h snapshotHeader) packed() bool  { return h.flags&snapshotFlagPacked != 0 }
func (h snapshotHeader) inEdges() bool { return h.flags&snapshotFlagInEdges != 0 }

// parseSnapshotHeader validates the 36-byte fixed header: magic, a
// supported version, flags known to that version, the header checksum and
// plausible counts.
func parseSnapshotHeader(hdr []byte) (snapshotHeader, error) {
	var h snapshotHeader
	if len(hdr) < snapshotHeaderLen {
		return h, fmt.Errorf("graph: snapshot: truncated header (%d bytes)", len(hdr))
	}
	if string(hdr[:8]) != snapshotMagic {
		return h, fmt.Errorf("graph: snapshot: bad magic %q", hdr[:8])
	}
	h.version = binary.LittleEndian.Uint32(hdr[8:])
	if h.version != snapshotVersionV1 && h.version != snapshotVersion {
		return h, fmt.Errorf("graph: snapshot: unsupported version %d (want %d or %d)",
			h.version, snapshotVersionV1, snapshotVersion)
	}
	h.flags = binary.LittleEndian.Uint32(hdr[12:])
	known := uint32(snapshotFlagInEdges)
	if h.version >= snapshotVersion {
		known |= snapshotFlagPacked
	}
	if h.flags&^known != 0 {
		return h, fmt.Errorf("graph: snapshot: unknown flags %#x", h.flags)
	}
	if want, got := crc32.Checksum(hdr[:32], snapshotCRC), binary.LittleEndian.Uint32(hdr[32:]); want != got {
		return h, fmt.Errorf("graph: snapshot: header checksum mismatch")
	}
	v64 := binary.LittleEndian.Uint64(hdr[16:])
	e64 := binary.LittleEndian.Uint64(hdr[24:])
	if v64 > 1<<32 {
		return h, fmt.Errorf("graph: snapshot: vertex count %d exceeds the 2^32 limit", v64)
	}
	if e64 > math.MaxInt64/8 {
		return h, fmt.Errorf("graph: snapshot: implausible edge count %d", e64)
	}
	h.vertices = int(v64)
	h.edges = int64(e64)
	return h, nil
}

// ReadSnapshot loads a binary CSR snapshot written by WriteSnapshot, any
// format version. The checksums and the structural invariants of every
// section are verified; any mismatch is an error, never a mangled graph.
// Packed-adjacency snapshots are decoded to a plain CSR here — use
// OpenGraphFile to keep them compressed in memory.
func ReadSnapshot(r io.Reader) (*Digraph, error) {
	v, err := readSnapshotStream(r)
	if err != nil {
		return nil, err
	}
	if p, ok := v.(*Packed); ok {
		return p.Decode()
	}
	return v.(*Digraph), nil
}

// readSnapshotStream reads any snapshot version out of a stream with full
// verification, returning a *Digraph for plain adjacency and a *Packed for
// packed.
func readSnapshotStream(r io.Reader) (View, error) {
	limit := sourceLimit(r)
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot: read header: %w", err)
	}
	h, err := parseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if h.version == snapshotVersionV1 {
		sr := &sectionReader{r: br, buf: make([]byte, snapshotChunk), limit: limit}
		if sr.limit >= 0 {
			sr.limit -= snapshotHeaderLen
		}
		return readSnapshotV1(sr, h)
	}
	// Version 2 is defined by its in-place layout: rebuild the file image
	// in an 8-aligned buffer and run the same viewer the mmap path uses,
	// with every check on.
	var data []byte
	if limit >= 0 {
		data = alignedBytes(limit)
		copy(data, hdr[:])
		if _, err := io.ReadFull(br, data[snapshotHeaderLen:]); err != nil {
			return nil, fmt.Errorf("graph: snapshot: read body: %w", err)
		}
	} else {
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("graph: snapshot: read body: %w", err)
		}
		data = alignedBytes(int64(snapshotHeaderLen) + int64(len(rest)))
		copy(data, hdr[:])
		copy(data[snapshotHeaderLen:], rest)
	}
	return viewSnapshot(data, true)
}

// readSnapshotV1 decodes the unaligned version-1 section layout, streaming
// each payload through the chunked section reader.
func readSnapshotV1(sr *sectionReader, h snapshotHeader) (*Digraph, error) {
	n := h.vertices
	outOff, err := sr.int64s(int64(n) + 1)
	if err != nil {
		return nil, err
	}
	outAdj, err := sr.vertexIDs(h.edges)
	if err != nil {
		return nil, err
	}
	if err := validateCSR(n, outOff, outAdj, "out"); err != nil {
		return nil, err
	}
	g := &Digraph{numVertices: n, outOff: outOff, outAdj: outAdj}
	if h.inEdges() {
		inOff, err := sr.int64s(int64(n) + 1)
		if err != nil {
			return nil, err
		}
		inAdj, err := sr.vertexIDs(h.edges)
		if err != nil {
			return nil, err
		}
		if err := validateCSR(n, inOff, inAdj, "in"); err != nil {
			return nil, err
		}
		g.inOff, g.inAdj = inOff, inAdj
	}
	return g, nil
}

// sourceLimit reports how many bytes the reader can still produce, when
// knowable (regular files and in-memory readers). A known limit lets the
// section readers allocate exactly; an unknown one (-1) makes them grow
// incrementally so a lying header cannot force a huge allocation.
func sourceLimit(r io.Reader) int64 {
	switch src := r.(type) {
	case *os.File:
		if fi, err := src.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := src.Seek(0, io.SeekCurrent); err == nil {
				return fi.Size() - pos
			}
		}
	case *bytes.Reader:
		return int64(src.Len())
	}
	return -1
}

// sectionReader decodes length-prefixed, CRC-trailed sections.
type sectionReader struct {
	r     io.Reader
	buf   []byte
	limit int64 // bytes remaining in the source; -1 unknown
}

// begin consumes the section's length prefix and validates it against the
// element count implied by the snapshot header and against the source size.
func (s *sectionReader) begin(want int64) error {
	var lenBuf [8]byte
	if _, err := io.ReadFull(s.r, lenBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: truncated section header: %w", err)
	}
	if got := binary.LittleEndian.Uint64(lenBuf[:]); got != uint64(want) {
		return fmt.Errorf("graph: snapshot: section length %d does not match header counts (want %d)", got, want)
	}
	if s.limit >= 0 {
		if want+12 > s.limit {
			return fmt.Errorf("graph: snapshot: truncated: section of %d bytes exceeds remaining input", want)
		}
		s.limit -= want + 12
	}
	return nil
}

// consume streams the payload through decode in chunks, then verifies the
// CRC trailer.
func (s *sectionReader) consume(want int64, decode func(chunk []byte)) error {
	crc := uint32(0)
	for remaining := want; remaining > 0; {
		m := int(min(int64(len(s.buf)), remaining))
		if _, err := io.ReadFull(s.r, s.buf[:m]); err != nil {
			return fmt.Errorf("graph: snapshot: truncated section payload: %w", err)
		}
		crc = crc32.Update(crc, snapshotCRC, s.buf[:m])
		decode(s.buf[:m])
		remaining -= int64(m)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(s.r, crcBuf[:]); err != nil {
		return fmt.Errorf("graph: snapshot: truncated section checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != crc {
		return fmt.Errorf("graph: snapshot: section checksum mismatch")
	}
	return nil
}

// startCap bounds the initial slice capacity: exact when the source size is
// known (begin already proved the payload fits), else one chunk's worth,
// growing with the data actually read.
func (s *sectionReader) startCap(elems, elemSize int64) int64 {
	if s.limit >= 0 || elems <= snapshotChunk/elemSize {
		return elems
	}
	return snapshotChunk / elemSize
}

func (s *sectionReader) int64s(elems int64) ([]int64, error) {
	if err := s.begin(elems * 8); err != nil {
		return nil, err
	}
	out := make([]int64, 0, s.startCap(elems, 8))
	err := s.consume(elems*8, func(chunk []byte) {
		for i := 0; i < len(chunk); i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *sectionReader) vertexIDs(elems int64) ([]VertexID, error) {
	if err := s.begin(elems * 4); err != nil {
		return nil, err
	}
	out := make([]VertexID, 0, s.startCap(elems, 4))
	err := s.consume(elems*4, func(chunk []byte) {
		for i := 0; i < len(chunk); i += 4 {
			out = append(out, VertexID(binary.LittleEndian.Uint32(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// validateCSR rejects structurally invalid CSR data: offsets must start at
// zero, be monotonically non-decreasing and end at len(adj), and every row
// must be strictly increasing with all values inside [0, n). HasEdge's
// binary search and the merge kernels in internal/core assume sorted
// duplicate-free rows, so a corrupt snapshot must fail here, not there.
func validateCSR(n int, off []int64, adj []VertexID, what string) error {
	if len(off) != n+1 || off[0] != 0 || off[n] != int64(len(adj)) {
		return fmt.Errorf("graph: snapshot: %s-offset endpoints invalid", what)
	}
	var mu sync.Mutex
	var vErr error
	record := func(err error) {
		mu.Lock()
		if vErr == nil {
			vErr = err
		}
		mu.Unlock()
	}
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			s, e := off[u], off[u+1]
			if s > e || e > int64(len(adj)) {
				record(fmt.Errorf("graph: snapshot: %s-offsets not monotonic at vertex %d", what, u))
				return
			}
			for i := s; i < e; i++ {
				if int(adj[i]) >= n {
					record(fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d references vertex %d of %d", what, u, adj[i], n))
					return
				}
				if i > s && adj[i] <= adj[i-1] {
					record(fmt.Errorf("graph: snapshot: %s-adjacency of vertex %d not strictly increasing", what, u))
					return
				}
			}
		}
	})
	return vErr
}

// validateOffsets checks the offset-column invariants alone: length n+1,
// off[0] == 0, off[n] == limit, monotone non-decreasing. It is the cheap
// O(vertices) half of validateCSR — the part that makes row slicing
// memory-safe — and is what the deferred-verification mapped load path
// always runs.
func validateOffsets(n int, off []int64, limit int64, what string) error {
	if len(off) != n+1 || off[0] != 0 || off[n] != limit {
		return fmt.Errorf("graph: snapshot: %s-offset endpoints invalid", what)
	}
	var mu sync.Mutex
	var vErr error
	parallelRanges(runtime.GOMAXPROCS(0), n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if off[u] > off[u+1] {
				mu.Lock()
				if vErr == nil {
					vErr = fmt.Errorf("graph: snapshot: %s-offsets not monotonic at vertex %d", what, u)
				}
				mu.Unlock()
				return
			}
		}
	})
	return vErr
}
