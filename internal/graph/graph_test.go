package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0->1,1->2,2->0,0->2,3->0
func testGraph(t *testing.T) *Digraph {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := testGraph(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	wantOut := map[VertexID][]VertexID{
		0: {1, 2},
		1: {2},
		2: {0},
		3: {0},
	}
	for u, want := range wantOut {
		got := g.OutNeighbors(u)
		if !reflect.DeepEqual(append([]VertexID{}, got...), want) {
			t.Errorf("OutNeighbors(%d) = %v, want %v", u, got, want)
		}
		if g.OutDegree(u) != len(want) {
			t.Errorf("OutDegree(%d) = %d, want %d", u, g.OutDegree(u), len(want))
		}
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 1) || g.HasEdge(3, 3) {
		t.Error("HasEdge answered incorrectly")
	}
}

func TestBuilderDeduplicatesAndDropsLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // loop
	b.AddEdge(2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + loop drop)", g.NumEdges())
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop survived")
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	g, err := NewBuilder(2).KeepSelfLoops(true).buildWith([]Edge{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) {
		t.Error("KeepSelfLoops dropped the loop")
	}
}

// buildWith is a test helper adding edges then building.
func (b *Builder) buildWith(edges []Edge) (*Digraph, error) {
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

func TestBuilderSymmetrize(t *testing.T) {
	g, err := NewBuilder(3).Symmetrize(true).buildWith([]Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !g.HasEdge(e.Src, e.Dst) {
			t.Errorf("missing symmetrized edge %v", e)
		}
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	_, err := NewBuilder(2).buildWith([]Edge{{0, 5}})
	if err == nil {
		t.Fatal("Build accepted an out-of-range endpoint")
	}
}

func TestInAdjacency(t *testing.T) {
	g, err := NewBuilder(4).WithInEdges(true).buildWith(
		[]Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasInEdges() {
		t.Fatal("HasInEdges = false")
	}
	wantIn := map[VertexID][]VertexID{
		0: {2, 3},
		1: {0},
		2: {0, 1},
		3: {},
	}
	for v, want := range wantIn {
		got := append([]VertexID{}, g.InNeighbors(v)...)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("InNeighbors(%d) = %v, want %v", v, got, want)
		}
		if g.InDegree(v) != len(want) {
			t.Errorf("InDegree(%d) = %d, want %d", v, g.InDegree(v), len(want))
		}
	}
}

// TestInAdjacencyMirrorsOutAdjacency is a property test: for random graphs,
// (u,v) in out-adjacency iff (v,u) in in-adjacency, and both sides sorted.
func TestInAdjacencyMirrorsOutAdjacency(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		m := int(mRaw)
		b := NewBuilder(n).WithInEdges(true)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		fwd := make(map[Edge]bool)
		g.ForEachEdge(func(u, v VertexID) { fwd[Edge{u, v}] = true })
		count := 0
		for v := 0; v < n; v++ {
			in := g.InNeighbors(VertexID(v))
			if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
				return false
			}
			for _, u := range in {
				if !fwd[Edge{u, VertexID(v)}] {
					return false
				}
				count++
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNeighborListsSorted(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		b := NewBuilder(n)
		for i := 0; i < int(mRaw); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			nb := g.OutNeighbors(VertexID(u))
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				return false
			}
			// No duplicates.
			for i := 1; i < len(nb); i++ {
				if nb[i] == nb[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithoutEdges(t *testing.T) {
	g := testGraph(t)
	ng := g.WithoutEdges([]Edge{{0, 1}, {9, 9}}) // second edge absent: ignored
	if ng.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", ng.NumEdges())
	}
	if ng.HasEdge(0, 1) {
		t.Error("removed edge still present")
	}
	if !ng.HasEdge(0, 2) || !ng.HasEdge(3, 0) {
		t.Error("unrelated edges disappeared")
	}
	// Removing nothing yields a clean overlay that unwraps to the receiver.
	if csr, ok := AsCSR(g.WithoutEdges(nil)); !ok || csr != g {
		t.Error("WithoutEdges(nil) should unwrap to the same graph")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	g2, err := FromEdges(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.outAdj, g2.outAdj) || !reflect.DeepEqual(g.outOff, g2.outOff) {
		t.Error("Edges() -> FromEdges() round trip changed the graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph is not empty")
	}
	s := ComputeStats(g)
	if s.Vertices != 0 || s.AvgOutDegree != 0 {
		t.Errorf("stats of empty graph: %+v", s)
	}
}
