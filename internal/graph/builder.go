package graph

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
)

// Builder accumulates edges and assembles an immutable Digraph.
// The zero value is unusable; construct with NewBuilder.
type Builder struct {
	numVertices int
	edges       []Edge
	withInEdges bool
	symmetrize  bool
	keepLoops   bool
}

// NewBuilder returns a builder for a graph with numVertices dense vertex IDs.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices}
}

// WithInEdges makes Build also materialise the reverse adjacency.
func (b *Builder) WithInEdges(on bool) *Builder { b.withInEdges = on; return b }

// Symmetrize makes Build insert the reverse of every edge, turning an
// undirected edge list into the directed form used throughout the paper
// ("we transform them into directed by duplicating edges on both
// directions", Section 5.2). The counting-sort builder handles the reverse
// edges implicitly — they are never materialised.
func (b *Builder) Symmetrize(on bool) *Builder { b.symmetrize = on; return b }

// KeepSelfLoops retains self-loops instead of dropping them (the default).
func (b *Builder) KeepSelfLoops(on bool) *Builder { b.keepLoops = on; return b }

// AddEdge records the directed edge (u,v). Duplicates are removed at Build.
func (b *Builder) AddEdge(u, v VertexID) {
	b.edges = append(b.edges, Edge{u, v})
}

// Grow reserves capacity for n additional edges.
func (b *Builder) Grow(n int) {
	if cap(b.edges)-len(b.edges) < n {
		next := make([]Edge, len(b.edges), len(b.edges)+n)
		copy(next, b.edges)
		b.edges = next
	}
}

// NumPendingEdges returns the number of edges recorded so far (before
// deduplication and symmetrization).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// parallelBuildMin is the edge count below which Build stays single-threaded:
// goroutine fan-out costs more than it saves on tiny inputs.
const parallelBuildMin = 1 << 15

// Build assembles the Digraph with a two-pass counting sort: a parallel
// count pass over the edge list fills a per-source histogram, a prefix sum
// turns it into CSR offsets, and a parallel scatter pass places every
// destination; per-vertex neighbour lists are then sorted and deduplicated
// in parallel and compacted into the final arrays. The result is identical
// to a global comparison sort — sorted, duplicate-free rows — but runs in
// O(E + Σ_u d_u log d_u) and scales with cores instead of O(E log E) on one,
// which is what keeps billion-edge ingest off the critical path. Self-loops
// are dropped unless KeepSelfLoops was set. Build returns an error if any
// endpoint is outside [0, numVertices).
func (b *Builder) Build() (*Digraph, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(b.edges) < parallelBuildMin {
		workers = 1
	}
	return b.build(workers)
}

// histBudgetBytes caps the per-worker histogram block of build: with very
// many vertices the worker count is lowered rather than allocating an
// unbounded workers×n table.
const histBudgetBytes = 1 << 28

// build is Build with an explicit worker bound (tests force the parallel
// path on small inputs through it).
//
// Concurrency model: the edge list is split into one contiguous range per
// worker and every worker owns a private per-source histogram. The prefix
// sum interleaves the histograms (vertex-major, worker-minor) into absolute
// cursors, which hands each worker a reserved sub-range of every row it
// contributes to — both passes are therefore free of atomics and of shared
// counters, so hub vertices cost no cache-line contention.
func (b *Builder) build(workers int) (*Digraph, error) {
	n := b.numVertices
	edges := b.edges
	if workers < 1 {
		workers = 1
	}
	if workers > len(edges) {
		workers = max(len(edges), 1)
	}
	// Histogram work (allocation + serial prefix sum) is O(workers·n): keep
	// it proportional to the O(E) passes it serves, so vertex-heavy sparse
	// graphs don't pay for parallelism they can't use, and bound it in
	// absolute terms.
	if maxW := 4 * len(edges) / (n + 1); workers > maxW {
		workers = max(maxW, 1)
	}
	if maxW := int(histBudgetBytes / (8 * int64(n+1))); workers > maxW {
		workers = max(maxW, 1)
	}

	// Pass 1: validate endpoints and count edges per source into each
	// worker's histogram. Symmetrize counts the reverse direction instead of
	// materialising it; loop handling matches the scatter pass below.
	hist := make([]int64, workers*n)
	firstBad := make([]int, workers)
	forEachWorker(workers, func(w int) {
		h := hist[w*n : (w+1)*n]
		lo, hi := edgeRange(w, workers, len(edges))
		firstBad[w] = len(edges)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if int(e.Src) >= n || int(e.Dst) >= n {
				firstBad[w] = i
				break
			}
			if e.Src == e.Dst && !b.keepLoops {
				continue
			}
			h[e.Src]++
			if b.symmetrize {
				h[e.Dst]++
			}
		}
	})
	bad := len(edges)
	for _, fb := range firstBad {
		bad = min(bad, fb)
	}
	if bad < len(edges) {
		return nil, fmt.Errorf("graph: edge (%d,%d) with %d vertices: %w",
			edges[bad].Src, edges[bad].Dst, n, errInvalidVertex)
	}

	// Prefix sum over (vertex, worker): off[u] is row u's start in the
	// duplicate-inclusive layout and hist[w*n+u] becomes worker w's private
	// write cursor inside that row.
	off := make([]int64, n+1)
	var total int64
	for u := 0; u < n; u++ {
		off[u] = total
		for w := 0; w < workers; w++ {
			c := hist[w*n+u]
			hist[w*n+u] = total
			total += c
		}
	}
	off[n] = total

	// Pass 2: scatter destinations, each worker walking its edge range in
	// order and writing through its own cursors — deterministic layout, no
	// synchronisation.
	adj := make([]VertexID, total)
	forEachWorker(workers, func(w int) {
		h := hist[w*n : (w+1)*n]
		lo, hi := edgeRange(w, workers, len(edges))
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.Src == e.Dst && !b.keepLoops {
				continue
			}
			adj[h[e.Src]] = e.Dst
			h[e.Src]++
			if b.symmetrize {
				adj[h[e.Dst]] = e.Src
				h[e.Dst]++
			}
		}
	})

	// Pass 3: sort, deduplicate and compact the scattered rows.
	return finishCSR(workers, n, off, adj, b.withInEdges), nil
}

// finishCSR is the counting-sort builder's final pass, shared with the
// streaming text ingester: given the duplicate-inclusive scatter layout
// (off is the per-vertex row offsets, adj the scattered destinations), it
// sorts and deduplicates every row in place in parallel and compacts the
// survivors into exact-sized final arrays. The scatter order within a row
// does not matter — rows come out sorted either way — which is what lets
// callers scatter from any sharding without synchronisation.
func finishCSR(workers, n int, off []int64, adj []VertexID, withInEdges bool) *Digraph {
	g := &Digraph{numVertices: n, outOff: make([]int64, n+1)}
	parallelRanges(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := adj[off[u]:off[u+1]]
			slices.Sort(row)
			g.outOff[u+1] = int64(len(slices.Compact(row)))
		}
	})
	for u := 0; u < n; u++ {
		g.outOff[u+1] += g.outOff[u]
	}
	g.outAdj = make([]VertexID, g.outOff[n])
	parallelRanges(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			kept := g.outOff[u+1] - g.outOff[u]
			copy(g.outAdj[g.outOff[u]:g.outOff[u+1]], adj[off[u]:off[u]+kept])
		}
	})
	if withInEdges {
		g.buildInAdjacency()
	}
	return g
}

// edgeRange returns worker w's contiguous share [lo, hi) of m edges.
func edgeRange(w, workers, m int) (lo, hi int) {
	return w * m / workers, (w + 1) * m / workers
}

// forEachWorker runs fn(0..workers-1) concurrently (inline when single).
func forEachWorker(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// parallelRanges splits [0, n) into one contiguous range per worker and runs
// fn on each concurrently (inline when a single range remains).
func parallelRanges(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	step := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildSortSlice is the original builder — materialise, comparison-sort and
// deduplicate the full edge list — kept unexported as the baseline that
// BenchmarkBuildCSR measures the counting-sort builder against.
func (b *Builder) buildSortSlice() (*Digraph, error) {
	n := b.numVertices
	edges := append([]Edge(nil), b.edges...)
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) with %d vertices: %w",
				e.Src, e.Dst, n, errInvalidVertex)
		}
	}
	if b.symmetrize {
		rev := make([]Edge, 0, len(edges))
		for _, e := range edges {
			rev = append(rev, Edge{e.Dst, e.Src})
		}
		edges = append(edges, rev...)
	}
	if !b.keepLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	// Deduplicate in place.
	dedup := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	edges = dedup

	g := &Digraph{
		numVertices: n,
		outOff:      make([]int64, n+1),
		outAdj:      make([]VertexID, len(edges)),
	}
	for _, e := range edges {
		g.outOff[e.Src+1]++
	}
	for u := 0; u < n; u++ {
		g.outOff[u+1] += g.outOff[u]
	}
	for i, e := range edges {
		g.outAdj[i] = e.Dst
	}
	if b.withInEdges {
		g.buildInAdjacency()
	}
	return g, nil
}

// buildInAdjacency fills inOff/inAdj from the out-CSR with a counting sort,
// preserving sorted neighbour lists.
func (g *Digraph) buildInAdjacency() {
	n := g.numVertices
	g.inOff = make([]int64, n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inAdj = make([]VertexID, len(g.outAdj))
	cursor := make([]int64, n)
	copy(cursor, g.inOff[:n])
	// Iterating sources in ascending order keeps each in-list sorted.
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			g.inAdj[cursor[v]] = VertexID(u)
			cursor[v]++
		}
	}
}

// FromEdges builds a Digraph from an edge list with default options
// (self-loops dropped, duplicates removed, no reverse adjacency).
func FromEdges(numVertices int, edges []Edge) (*Digraph, error) {
	b := NewBuilder(numVertices)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// MustFromEdges is FromEdges for tests and examples with known-good input;
// it panics on error.
func MustFromEdges(numVertices int, edges []Edge) *Digraph {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}
