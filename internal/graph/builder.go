package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and assembles an immutable Digraph.
// The zero value is unusable; construct with NewBuilder.
type Builder struct {
	numVertices int
	edges       []Edge
	withInEdges bool
	symmetrize  bool
	keepLoops   bool
}

// NewBuilder returns a builder for a graph with numVertices dense vertex IDs.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices}
}

// WithInEdges makes Build also materialise the reverse adjacency.
func (b *Builder) WithInEdges(on bool) *Builder { b.withInEdges = on; return b }

// Symmetrize makes Build insert the reverse of every edge, turning an
// undirected edge list into the directed form used throughout the paper
// ("we transform them into directed by duplicating edges on both
// directions", Section 5.2).
func (b *Builder) Symmetrize(on bool) *Builder { b.symmetrize = on; return b }

// KeepSelfLoops retains self-loops instead of dropping them (the default).
func (b *Builder) KeepSelfLoops(on bool) *Builder { b.keepLoops = on; return b }

// AddEdge records the directed edge (u,v). Duplicates are removed at Build.
func (b *Builder) AddEdge(u, v VertexID) {
	b.edges = append(b.edges, Edge{u, v})
}

// Grow reserves capacity for n additional edges.
func (b *Builder) Grow(n int) {
	if cap(b.edges)-len(b.edges) < n {
		next := make([]Edge, len(b.edges), len(b.edges)+n)
		copy(next, b.edges)
		b.edges = next
	}
}

// NumPendingEdges returns the number of edges recorded so far (before
// deduplication and symmetrization).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build assembles the Digraph. It sorts, deduplicates, optionally
// symmetrizes, and drops self-loops unless KeepSelfLoops was set. Build
// returns an error if any endpoint is outside [0, numVertices).
func (b *Builder) Build() (*Digraph, error) {
	n := b.numVertices
	edges := b.edges
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) with %d vertices: %w",
				e.Src, e.Dst, n, errInvalidVertex)
		}
	}
	if b.symmetrize {
		rev := make([]Edge, 0, len(edges))
		for _, e := range edges {
			rev = append(rev, Edge{e.Dst, e.Src})
		}
		edges = append(edges, rev...)
	}
	if !b.keepLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	// Deduplicate in place.
	dedup := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	edges = dedup

	g := &Digraph{
		numVertices: n,
		outOff:      make([]int64, n+1),
		outAdj:      make([]VertexID, len(edges)),
	}
	for _, e := range edges {
		g.outOff[e.Src+1]++
	}
	for u := 0; u < n; u++ {
		g.outOff[u+1] += g.outOff[u]
	}
	for i, e := range edges {
		g.outAdj[i] = e.Dst
	}
	if b.withInEdges {
		g.buildInAdjacency()
	}
	return g, nil
}

// buildInAdjacency fills inOff/inAdj from the out-CSR with a counting sort,
// preserving sorted neighbour lists.
func (g *Digraph) buildInAdjacency() {
	n := g.numVertices
	g.inOff = make([]int64, n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inAdj = make([]VertexID, len(g.outAdj))
	cursor := make([]int64, n)
	copy(cursor, g.inOff[:n])
	// Iterating sources in ascending order keeps each in-list sorted.
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			g.inAdj[cursor[v]] = VertexID(u)
			cursor[v]++
		}
	}
}

// FromEdges builds a Digraph from an edge list with default options
// (self-loops dropped, duplicates removed, no reverse adjacency).
func FromEdges(numVertices int, edges []Edge) (*Digraph, error) {
	b := NewBuilder(numVertices)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// MustFromEdges is FromEdges for tests and examples with known-good input;
// it panics on error.
func MustFromEdges(numVertices int, edges []Edge) *Digraph {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}
