package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// readEdgeListReference is the sequential reader the streaming ingester
// replaced (buffer every edge, then Build), kept verbatim as the oracle the
// parallel path must match bit for bit. It predates the "# vertices:"
// header, so oracle comparisons use header-free inputs.
func readEdgeListReference(r io.Reader, opts ReadOptions) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	remap := make(map[uint64]VertexID)
	maxID := uint64(0)
	intern := func(raw uint64) VertexID {
		if opts.PreserveIDs {
			if raw > maxID {
				maxID = raw
			}
			return VertexID(raw)
		}
		if id, ok := remap[raw]; ok {
			return id
		}
		id := VertexID(len(remap))
		remap[raw] = id
		return id
	}

	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		edges = append(edges, Edge{intern(src), intern(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	numVertices := len(remap)
	if opts.PreserveIDs {
		numVertices = 0
		if len(edges) > 0 {
			numVertices = int(maxID) + 1
		}
	}
	b := NewBuilder(numVertices).
		Symmetrize(opts.Symmetrize).
		WithInEdges(opts.WithInEdges)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// graphEqual compares two graphs structurally, including the reverse
// adjacency when either carries one.
func graphEqual(a, b *Digraph) bool {
	return a.numVertices == b.numVertices &&
		slices.Equal(a.outOff, b.outOff) &&
		slices.Equal(a.outAdj, b.outAdj) &&
		slices.Equal(a.inOff, b.inOff) &&
		slices.Equal(a.inAdj, b.inAdj)
}

// randomEdgeList renders a messy but valid edge list: sparse IDs, duplicate
// edges, self-loops, comments, blank lines, stray whitespace and extra
// fields (weighted-SNAP style). No "# vertices:" header — the oracle
// predates it.
func randomEdgeList(rng *rand.Rand, edges int, sparse bool) string {
	var sb strings.Builder
	sb.WriteString("# random test graph\n% alt comment\n\n")
	// The sparse space exercises the remap; dense IDs keep PreserveIDs
	// trials sane (preserve mode allocates O(maxID) by definition).
	idSpace := []uint64{0, 1, 2, 3, 5, 7, 100, 101, 731, 997, 4095}
	if sparse {
		idSpace = append(idSpace, 65536, 1<<20, 1<<32-1)
	}
	sep := []string{" ", "\t", "  ", " \t ", "\t\t"}
	for i := 0; i < edges; i++ {
		u := idSpace[rng.Intn(len(idSpace))]
		v := idSpace[rng.Intn(len(idSpace))]
		if rng.Intn(8) == 0 {
			u = uint64(rng.Intn(50)) // denser region for duplicates
			v = uint64(rng.Intn(50))
		}
		if rng.Intn(4) == 0 {
			sb.WriteString(sep[rng.Intn(len(sep))]) // leading whitespace
		}
		fmt.Fprintf(&sb, "%d%s%d", u, sep[rng.Intn(len(sep))], v)
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, " %.3f", rng.Float64()) // weight field, ignored
		case 1:
			sb.WriteString("\t17 bogus extra") // arbitrary extra fields
		}
		if rng.Intn(6) == 0 {
			sb.WriteString("   ") // trailing whitespace
		}
		sb.WriteString("\n")
		if rng.Intn(10) == 0 {
			sb.WriteString("# interior comment\n\n")
		}
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, "%d %d", rng.Intn(40), rng.Intn(40)) // no trailing \n
	}
	return sb.String()
}

// TestIngestMatchesReference holds the streaming parallel ingester to the
// sequential oracle across option combinations and worker counts,
// including forced multi-shard parses of small inputs.
func TestIngestMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		for _, sym := range []bool{false, true} {
			for _, inE := range []bool{false, true} {
				for _, preserve := range []bool{false, true} {
					in := randomEdgeList(rng, 5+rng.Intn(400), !preserve)
					opts := ReadOptions{Symmetrize: sym, WithInEdges: inE, PreserveIDs: preserve}
					want, err := readEdgeListReference(strings.NewReader(in), opts)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
					for _, workers := range []int{1, 2, 3, 7} {
						opts.Workers = workers
						got, err := ReadEdgeList(strings.NewReader(in), opts)
						if err != nil {
							t.Fatalf("trial %d sym=%v inE=%v preserve=%v workers=%d: %v",
								trial, sym, inE, preserve, workers, err)
						}
						if !graphEqual(got, want) {
							t.Fatalf("trial %d sym=%v inE=%v preserve=%v workers=%d: graphs differ:\n got %s\nwant %s\ninput:\n%s",
								trial, sym, inE, preserve, workers, got, want, in)
						}
					}
				}
			}
		}
	}
}

// TestIngestTinyInputs pins the edge cases the sharding logic must not
// mangle: empty input, missing trailing newline, loops-only, single bytes.
func TestIngestTinyInputs(t *testing.T) {
	for _, in := range []string{
		"", "\n", "#\n", "# c", "0 1", "0 1\n", "7 7\n", "7 7", " \t \n",
		"0 1\n2 3", "%\n0 1\r\n", "\r\n", "0\t1\r\n",
	} {
		for _, preserve := range []bool{false, true} {
			opts := ReadOptions{PreserveIDs: preserve}
			want, err := readEdgeListReference(strings.NewReader(in), opts)
			if err != nil {
				t.Fatalf("reference %q: %v", in, err)
			}
			for _, workers := range []int{1, 4} {
				opts.Workers = workers
				got, err := ReadEdgeList(strings.NewReader(in), opts)
				if err != nil {
					t.Fatalf("%q workers=%d: %v", in, workers, err)
				}
				if !graphEqual(got, want) {
					t.Errorf("%q preserve=%v workers=%d: got %s want %s", in, preserve, workers, got, want)
				}
			}
		}
	}
}

// TestIngestLongLines: the old bufio.Scanner path died at 1 MiB with a bare
// "token too long"; the chunked scanner must parse lines of any length
// (here, a >2 MiB comment and a >2 MiB run of ignored extra fields).
func TestIngestLongLines(t *testing.T) {
	long := strings.Repeat("x", 2<<20)
	in := "# " + long + "\n1 2 " + long + "\n3 4\n"
	g, err := ReadEdgeList(strings.NewReader(in), ReadOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %s, want V=4 E=2", g)
	}
}

// TestIngestErrorLineNumbers: parse failures must carry the 1-based line
// number of the earliest offending line, whatever shard found it.
func TestIngestErrorLineNumbers(t *testing.T) {
	tests := []struct {
		name, in, wantSub string
	}{
		{"bad target line 3", "# c\n0 1\n0 x\n2 3\n", "line 3"},
		{"single field line 4", "0 1\n1 2\n\n42\n", "line 4"},
		{"too large line 1", "99999999999 1\n", "line 1"},
		{"negative line 2", "1 2\n-1 2\n", "line 2"},
		{"earliest wins", "0 x\n1 2\n3 y\n", "line 1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				_, err := ReadEdgeList(strings.NewReader(tt.in), ReadOptions{Workers: workers})
				if err == nil {
					t.Fatalf("workers=%d: want error", workers)
				}
				if !strings.Contains(err.Error(), tt.wantSub) {
					t.Errorf("workers=%d: error %q does not mention %q", workers, err, tt.wantSub)
				}
			}
		})
	}
}

// TestIngestNoEdgeListIntermediate pins the ingester's memory model: total
// bytes allocated while parsing must stay close to the CSR being built
// (scatter layout + final arrays ≈ 8 bytes per edge) — far below what any
// []Edge intermediate (8 more bytes per edge, plus append growth and the
// builder's own copies) would cost. The old reader measured ≥ 24 bytes per
// edge here.
func TestIngestNoEdgeListIntermediate(t *testing.T) {
	const v, e = 4096, 300_000
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	for i := 0; i < e; i++ {
		fmt.Fprintf(&sb, "%d\t%d\n", rng.Intn(v), rng.Intn(v))
	}
	data := []byte(sb.String())
	opts := ReadOptions{PreserveIDs: true, Workers: 2}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g, err := ReadEdgeListAt(bytes.NewReader(data), int64(len(data)), opts)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != v {
		t.Fatalf("V = %d, want %d", g.NumVertices(), v)
	}
	allocated := m1.TotalAlloc - m0.TotalAlloc
	// Scatter layout (4 B/edge) + compacted outAdj (≤ 4 B/edge) + offsets,
	// cursors, counters and chunk buffers. 12 B/edge + fixed slack is well
	// above that and well below any path that still buffers an edge list.
	budget := uint64(12*e + 64*v + 4<<20)
	if allocated > budget {
		t.Errorf("parse allocated %d bytes (budget %d): an O(E) intermediate is back", allocated, budget)
	}
}
