package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// graphsEqual compares the full CSR state of two graphs, including the
// optional reverse adjacency.
func graphsEqual(a, b *Digraph) bool {
	return a.numVertices == b.numVertices &&
		reflect.DeepEqual(a.outOff, b.outOff) &&
		reflect.DeepEqual(a.outAdj, b.outAdj) &&
		reflect.DeepEqual(a.inOff, b.inOff) &&
		reflect.DeepEqual(a.inAdj, b.inAdj)
}

// TestBuildMatchesSortSlice: the parallel counting-sort builder and the
// legacy global-sort builder produce identical CSR state across option
// combinations, arbitrary duplicate/self-loop-laden inputs and worker
// counts (forcing the parallel path on small inputs).
func TestBuildMatchesSortSlice(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, symmetrize, keepLoops, inEdges bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		m := int(mRaw) * 4
		mk := func() *Builder {
			rng := rand.New(rand.NewSource(seed)) // same edge stream per builder
			b := NewBuilder(n).Symmetrize(symmetrize).KeepSelfLoops(keepLoops).WithInEdges(inEdges)
			for i := 0; i < m; i++ {
				b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
			}
			return b
		}
		_ = rng
		want, err := mk().buildSortSlice()
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 4} {
			got, err := mk().build(workers)
			if err != nil || !graphsEqual(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBuildParallelRejectsOutOfRange: both builder paths report the same
// (first) offending edge.
func TestBuildParallelRejectsOutOfRange(t *testing.T) {
	for _, workers := range []int{1, 4} {
		b := NewBuilder(3)
		b.AddEdge(0, 1)
		b.AddEdge(1, 7) // first bad edge
		b.AddEdge(5, 0)
		_, err := b.build(workers)
		if err == nil {
			t.Fatalf("workers=%d: out-of-range edge accepted", workers)
		}
		want, _ := b.buildSortSlice()
		if want != nil {
			t.Fatal("legacy builder accepted out-of-range edge")
		}
		if got := err.Error(); got != "graph: edge (1,7) with 3 vertices: vertex id out of range" {
			t.Errorf("workers=%d: error = %q", workers, got)
		}
	}
}

// TestWithoutEdgesDuplicatesAndInEdges: duplicate removal entries are
// harmless and the reverse adjacency is rebuilt consistently.
func TestWithoutEdgesDuplicatesAndInEdges(t *testing.T) {
	b := NewBuilder(4).WithInEdges(true)
	for _, e := range []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}} {
		b.AddEdge(e.Src, e.Dst)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ng := g.WithoutEdges([]Edge{{0, 2}, {0, 2}, {2, 3}, {2, 3}, {9, 1}})
	if ng.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", ng.NumEdges())
	}
	if ng.HasEdge(0, 2) || ng.HasEdge(2, 3) {
		t.Error("removed edges still present")
	}
	if !ng.HasInEdges() {
		t.Fatal("reverse adjacency not rebuilt")
	}
	if got := ng.InNeighbors(2); !reflect.DeepEqual(got, []VertexID{1}) {
		t.Errorf("InNeighbors(2) = %v, want [1]", got)
	}
}
