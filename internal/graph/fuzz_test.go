package graph

import (
	"bytes"
	"runtime"
	"testing"
)

// FuzzReadEdgeList drives the streaming parallel parser with arbitrary
// bytes and holds it to three properties: worker counts never disagree
// (same graph or same verdict), ASCII inputs match the sequential oracle
// exactly (the byte parser is ASCII-only by design, so non-ASCII inputs
// only assert no-panic), and every parsed graph survives both codec round
// trips (edge list with header, binary snapshot).
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("# c\n0 1\n1 2\n"))
	f.Add([]byte("# vertices: 9\n3 4 0.5\n"))
	f.Add([]byte("5 2\n2 0"))
	f.Add([]byte("7 7\n\n% x\n1 2 3 4\n"))
	f.Add([]byte(" \t1\t2\r\n4294967295 0\n"))
	f.Add([]byte("42\n"))
	f.Add([]byte("1 99999999999999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		g1, err1 := ReadEdgeList(bytes.NewReader(data), ReadOptions{Workers: 1})
		g4, err4 := ReadEdgeList(bytes.NewReader(data), ReadOptions{Workers: 4})
		if (err1 == nil) != (err4 == nil) {
			t.Fatalf("worker counts disagree on validity: %v vs %v", err1, err4)
		}
		if err1 == nil && !graphEqual(g1, g4) {
			t.Fatal("worker counts disagree on the graph")
		}
		ascii := true
		for _, b := range data {
			if b >= 0x80 {
				ascii = false
				break
			}
		}
		if ascii {
			want, werr := readEdgeListReference(bytes.NewReader(data), ReadOptions{})
			if (werr == nil) != (err1 == nil) {
				t.Fatalf("oracle disagrees on validity: oracle %v, ingester %v", werr, err1)
			}
			if werr == nil && !graphEqual(g1, want) {
				t.Fatal("ingester diverged from the sequential oracle")
			}
		}
		if err1 != nil {
			return
		}
		// Codec round trips: text (exact, thanks to the vertices header)...
		var txt bytes.Buffer
		if err := WriteEdgeList(&txt, g1); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadEdgeList(bytes.NewReader(txt.Bytes()), ReadOptions{PreserveIDs: true})
		if err != nil {
			t.Fatalf("re-read of written edge list: %v", err)
		}
		if !graphEqual(g1, rt) {
			t.Fatal("edge-list round trip changed the graph")
		}
		// ...and binary snapshot.
		var snap bytes.Buffer
		if err := WriteSnapshot(&snap, g1); err != nil {
			t.Fatal(err)
		}
		rs, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written snapshot: %v", err)
		}
		if !graphEqual(g1, rs) {
			t.Fatal("snapshot round trip changed the graph")
		}
	})
}

// FuzzReadSnapshot throws arbitrary bytes at the snapshot loader: it must
// never panic, and anything it accepts must satisfy the CSR invariants and
// survive a write/read round trip.
func FuzzReadSnapshot(f *testing.F) {
	for _, g := range []*Digraph{
		MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {3, 0}}),
		MustFromEdges(1, nil),
	} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		g.buildInAdjacency()
		buf.Reset()
		if err := WriteSnapshot(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SNAPLSGR"))
	f.Add([]byte("not a snapshot"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := validateCSR(g.NumVertices(), g.outOff, g.outAdj, "out"); err != nil {
			t.Fatalf("accepted snapshot violates CSR invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-written snapshot: %v", err)
		}
		if !graphEqual(g, g2) {
			t.Fatal("snapshot round trip changed the graph")
		}
	})
}

// FuzzReadPacked hammers the packed-adjacency decode surface: varint
// corruption, truncation, padding abuse and lying headers. Both the
// streaming reader and the in-place view (in cheap and verifying modes)
// must never panic, never let a lying length or degree force a huge
// allocation, agree on the graph when they both accept, and anything
// accepted must satisfy the CSR invariants after decode.
func FuzzReadPacked(f *testing.F) {
	for _, g := range []*Digraph{
		MustFromEdges(5, []Edge{{0, 1}, {0, 4}, {1, 2}, {3, 0}, {4, 3}}),
		MustFromEdges(1, nil),
	} {
		var buf bytes.Buffer
		if err := WriteSnapshotOpts(&buf, g, SnapshotOptions{Packed: true}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		g.buildInAdjacency()
		buf.Reset()
		if err := WriteSnapshotOpts(&buf, g, SnapshotOptions{Packed: true}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SNAPLSGR"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // max-length varints everywhere
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		g, serr := ReadSnapshot(bytes.NewReader(data))
		img := alignedBytes(int64(len(data)))
		copy(img, data)
		v, verr := viewSnapshot(img, false)
		_, vverr := viewSnapshot(img, true)
		runtime.ReadMemStats(&m1)
		// A 64 KiB input must never cost megabytes: lying vertex/edge counts
		// and degree prefixes have to be rejected before allocation, not
		// after. (The slack covers test-harness noise, not graph columns.)
		if grew := int64(m1.TotalAlloc - m0.TotalAlloc); grew > 64<<20 {
			t.Fatalf("decoding %d input bytes allocated %d bytes", len(data), grew)
		}
		// The verifying view must accept a subset of what the cheap view does.
		if vverr == nil && verr != nil {
			t.Fatalf("verify accepted what the cheap view rejected: %v", verr)
		}
		if serr != nil {
			return
		}
		if err := validateCSR(g.NumVertices(), g.outOff, g.outAdj, "out"); err != nil {
			t.Fatalf("accepted snapshot violates CSR invariants: %v", err)
		}
		// When the in-place view also accepts (it only handles v2), a packed
		// view must decode to the same graph the streaming reader produced.
		if verr == nil {
			if p, ok := v.(*Packed); ok {
				dec, err := p.Decode()
				if err != nil {
					t.Fatalf("cheap view accepted rows Decode rejects: %v", err)
				}
				if !graphEqual(g, dec) {
					t.Fatal("in-place packed view disagrees with the streaming reader")
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteSnapshotOpts(&buf, g, SnapshotOptions{Packed: true}); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-packed snapshot: %v", err)
		}
		if !graphEqual(g, g2) {
			t.Fatal("packed round trip changed the graph")
		}
	})
}
