package walk

import (
	"reflect"
	"testing"

	"snaple/internal/gen"
	"snaple/internal/graph"
)

func TestValidation(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	bad := []Config{
		{Walks: 0, Depth: 3},
		{Walks: 5, Depth: 0},
		{Walks: 5, Depth: 3, K: -1},
	}
	for i, cfg := range bad {
		if _, err := Predict(g, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWalksStayOnPaths(t *testing.T) {
	// Path graph 0->1->2->3: from 0 with depth 3, only 1,2,3 are reachable;
	// 1 is a neighbour so predictions can only be 2 and 3.
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	pred, err := Predict(g, Config{Walks: 50, Depth: 3, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := pred[0]
	if len(got) != 2 || got[0].Vertex != 2 || got[1].Vertex != 3 {
		t.Fatalf("predictions from 0: %+v, want vertices 2 then 3", got)
	}
	// Every walk passes through 2 before 3: count(2) >= count(3).
	if got[0].Score < got[1].Score {
		t.Errorf("visit counts inverted: %+v", got)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 300, Communities: 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Predict(g, Config{Walks: 20, Depth: 3, K: 5, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := Predict(g, Config{Walks: 20, Depth: 3, K: 5, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	diff, err := Predict(g, Config{Walks: 20, Depth: 3, K: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(diff, base) {
		t.Error("different seeds gave identical predictions")
	}
}

func TestNoSelfOrNeighbourPredictions(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 400, Communities: 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(g, Config{Walks: 30, Depth: 4, K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for u, ps := range pred {
		for _, p := range ps {
			any = true
			if p.Vertex == graph.VertexID(u) {
				t.Fatalf("vertex %d predicted itself", u)
			}
			if g.HasEdge(graph.VertexID(u), p.Vertex) {
				t.Fatalf("vertex %d predicted existing neighbour %d", u, p.Vertex)
			}
		}
	}
	if !any {
		t.Fatal("no predictions at all")
	}
}

func TestDeadEndVertex(t *testing.T) {
	// Vertex 1 has no out-edges: walks from 0 stop there; vertex 1 itself
	// gets no predictions.
	g := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	pred, err := Predict(g, Config{Walks: 10, Depth: 5, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != nil {
		t.Errorf("vertex 0 should have no non-neighbour candidates, got %+v", pred[0])
	}
	if pred[1] != nil {
		t.Errorf("sink vertex should have no predictions, got %+v", pred[1])
	}
}

func TestMoreWalksVisitMore(t *testing.T) {
	// With more walks, the candidate pool cannot shrink on a fixed graph.
	g, err := gen.Community(gen.CommunityConfig{N: 200, Communities: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	count := func(w int) int {
		pred, err := Predict(g, Config{Walks: w, Depth: 3, K: 50, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ps := range pred {
			n += len(ps)
		}
		return n
	}
	few, many := count(2), count(64)
	if many < few {
		t.Errorf("candidates with 64 walks (%d) below 2 walks (%d)", many, few)
	}
}
