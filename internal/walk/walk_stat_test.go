package walk

import (
	"math"
	"testing"

	"snaple/internal/graph"
)

// TestVisitDistributionUniformity: from the hub of an out-star whose leaves
// loop back, depth-1 visits must be near-uniform across leaves — a
// statistical check that walk randomness is unbiased.
func TestVisitDistributionUniformity(t *testing.T) {
	const leaves = 8
	b := graph.NewBuilder(leaves + 1)
	for l := 1; l <= leaves; l++ {
		b.AddEdge(0, graph.VertexID(l))
		b.AddEdge(graph.VertexID(l), 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	visits := make(map[graph.VertexID]int)
	walkFrom(g, 0, Config{Walks: 8000, Depth: 1, K: 5, Seed: 3}, visits)
	want := 8000.0 / leaves
	for l := 1; l <= leaves; l++ {
		got := float64(visits[graph.VertexID(l)])
		if math.Abs(got-want) > 4*math.Sqrt(want) { // ~4 sigma
			t.Errorf("leaf %d visited %v times, want ~%v", l, got, want)
		}
	}
	if visits[0] != 0 {
		t.Errorf("depth-1 walks cannot revisit the start, got %d", visits[0])
	}
}

// TestDepthReach: a walk of depth d on a directed path visits exactly the d
// next vertices.
func TestDepthReach(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	})
	for d := 1; d <= 5; d++ {
		visits := make(map[graph.VertexID]int)
		walkFrom(g, 0, Config{Walks: 3, Depth: d, K: 5, Seed: 1}, visits)
		if len(visits) != d {
			t.Errorf("depth %d reached %d vertices, want %d", d, len(visits), d)
		}
		for v, c := range visits {
			if int(v) > d || c != 3 {
				t.Errorf("depth %d: vertex %d visited %d times", d, v, c)
			}
		}
	}
}
