// Package walk is the single-machine comparator of Section 5.9: an
// in-memory, multithreaded random-walk engine in the style of Twitter's
// Cassovary library.
//
// For each vertex u it runs w random walks of depth d over the CSR graph,
// counts how often each vertex is visited, and recommends the k most visited
// vertices outside Γ(u) ∪ {u} — the random-walk approximation of
// personalized PageRank the paper tunes against SNAPLE (Figure 11, Table 6).
package walk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/randx"
	"snaple/internal/topk"
)

// Config parameterises a PPR-by-walks prediction run.
type Config struct {
	// Walks is w, the number of walks started per vertex.
	Walks int
	// Depth is d, the number of steps each walk takes; d=2 reaches direct
	// neighbours, d=3 their neighbours, and so on (paper's convention).
	Depth int
	// K is the number of predictions per vertex (default 5).
	K int
	// Seed keys every walk deterministically.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Walks < 1 || c.Depth < 1 {
		return fmt.Errorf("walk: need Walks >= 1 and Depth >= 1, got w=%d d=%d", c.Walks, c.Depth)
	}
	if c.K < 1 {
		return fmt.Errorf("walk: K=%d, need >= 1", c.K)
	}
	return nil
}

// Predict runs the random-walk link prediction over g and returns per-vertex
// predictions (empty for vertices with no out-edges). It is deterministic in
// cfg.Seed regardless of the worker count.
func Predict(g graph.View, cfg Config) (core.Predictions, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	pred := make(core.Predictions, n)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visits := make(map[graph.VertexID]int)
			for {
				u := int(next.Add(1) - 1)
				if u >= n {
					return
				}
				uid := graph.VertexID(u)
				if g.OutDegree(uid) == 0 {
					continue
				}
				clear(visits)
				walkFrom(g, uid, cfg, visits)
				pred[u] = rank(g, uid, visits, cfg.K)
			}
		}()
	}
	wg.Wait()
	return pred, nil
}

// walkFrom accumulates visit counts of w walks of depth d from u. Every
// walk's randomness is keyed by (seed, u, walk index, step), so walks are
// independent of scheduling.
func walkFrom(g graph.View, u graph.VertexID, cfg Config, visits map[graph.VertexID]int) {
	for w := 0; w < cfg.Walks; w++ {
		cur := u
		for step := 0; step < cfg.Depth; step++ {
			nbrs := g.OutNeighbors(cur)
			if len(nbrs) == 0 {
				break // dead end: the walk stops (no teleport, as in [36])
			}
			pick := randx.Uint64n(uint64(len(nbrs)),
				cfg.Seed, uint64(u), uint64(w), uint64(step), uint64(cur))
			cur = nbrs[pick]
			visits[cur]++
		}
	}
}

// rank picks the k most-visited vertices outside Γ(u) ∪ {u}. Ties break by
// ascending vertex ID (the repository-wide convention).
func rank(g graph.View, u graph.VertexID, visits map[graph.VertexID]int, k int) []core.Prediction {
	coll := topk.New(k)
	for v, c := range visits {
		if v == u || g.HasEdge(u, v) {
			continue
		}
		coll.Push(uint32(v), float64(c))
	}
	items := coll.Result()
	if len(items) == 0 {
		return nil
	}
	out := make([]core.Prediction, len(items))
	for i, it := range items {
		out[i] = core.Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
	}
	return out
}
