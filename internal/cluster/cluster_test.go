package cluster

import (
	"errors"
	"sync"
	"testing"
)

func newTestCluster(t *testing.T, nodes, parts int, budget int64) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Spec: TypeI(), MemBudgetBytes: budget}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Spec: TypeI()}, 4); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := New(Config{Nodes: 2, Spec: TypeI()}, 0); err == nil {
		t.Error("accepted zero parts")
	}
	if _, err := New(Config{Nodes: 1, Spec: NodeSpec{Cores: 0}}, 1); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	c := newTestCluster(t, 3, 7, 0)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for p, n := range want {
		if c.NodeOf(p) != n {
			t.Errorf("NodeOf(%d) = %d, want %d", p, c.NodeOf(p), n)
		}
	}
	if c.Parts() != 7 {
		t.Errorf("Parts = %d", c.Parts())
	}
}

func TestTransferAccounting(t *testing.T) {
	c := newTestCluster(t, 2, 4, 0)
	// parts 0,2 on node 0; parts 1,3 on node 1.
	c.Transfer(0, 2, 100) // same node: local
	c.Transfer(0, 1, 40)  // cross
	c.Transfer(3, 0, 60)  // cross
	tr := c.Snapshot()
	if tr.LocalBytes != 100 || tr.LocalMsgs != 1 {
		t.Errorf("local: %d bytes %d msgs", tr.LocalBytes, tr.LocalMsgs)
	}
	if tr.CrossBytes != 100 || tr.CrossMsgs != 2 {
		t.Errorf("cross: %d bytes %d msgs", tr.CrossBytes, tr.CrossMsgs)
	}
	if tr.NodeOut[0] != 40 || tr.NodeIn[1] != 40 || tr.NodeOut[1] != 60 || tr.NodeIn[0] != 60 {
		t.Errorf("per-node: in=%v out=%v", tr.NodeIn, tr.NodeOut)
	}
}

func TestTransferConcurrent(t *testing.T) {
	c := newTestCluster(t, 2, 2, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Transfer(0, 1, 1)
			}
		}()
	}
	wg.Wait()
	if tr := c.Snapshot(); tr.CrossBytes != 8000 {
		t.Errorf("CrossBytes = %d, want 8000", tr.CrossBytes)
	}
}

func TestMemoryBudget(t *testing.T) {
	c := newTestCluster(t, 2, 2, 1000)
	if err := c.StoreMem(0, 900); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := c.StoreMem(0, 200)
	if !errors.Is(err, ErrMemoryExhausted) {
		t.Fatalf("want ErrMemoryExhausted, got %v", err)
	}
	// Other node unaffected.
	if err := c.StoreMem(1, 999); err != nil {
		t.Fatalf("other node: %v", err)
	}
	// Release brings node 0 back under budget.
	if err := c.StoreMem(0, -200); err != nil {
		t.Fatalf("after release: %v", err)
	}
	tr := c.Snapshot()
	if tr.MemPeak[0] != 1100 {
		t.Errorf("peak = %d, want 1100", tr.MemPeak[0])
	}
	if tr.MaxMemPeak() != 1100 {
		t.Errorf("MaxMemPeak = %d", tr.MaxMemPeak())
	}
}

func TestNetSeconds(t *testing.T) {
	spec := NodeSpec{Name: "t", Cores: 4, MemBytes: 1 << 30, NetBytesPerSec: 100}
	c, err := New(Config{Nodes: 2, Spec: spec}, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	c.Transfer(0, 1, 500) // node0 out 500, node1 in 500
	after := c.Snapshot()
	if got := c.NetSeconds(before, after); got != 5 {
		t.Errorf("NetSeconds = %v, want 5", got)
	}
	// No bandwidth -> free network.
	spec.NetBytesPerSec = 0
	c2, err := New(Config{Nodes: 2, Spec: spec}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b2 := c2.Snapshot()
	c2.Transfer(0, 1, 500)
	if got := c2.NetSeconds(b2, c2.Snapshot()); got != 0 {
		t.Errorf("free network: %v", got)
	}
}

func TestComputeSeconds(t *testing.T) {
	c, err := New(Config{Nodes: 2, Spec: NodeSpec{Name: "t", Cores: 2, MemBytes: 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cores total. Work 8s spread -> 2s; longest single task 3s dominates
	// when spread is lower.
	if got := c.ComputeSeconds([]float64{2, 2, 2, 2}); got != 2 {
		t.Errorf("spread bound: %v, want 2", got)
	}
	if got := c.ComputeSeconds([]float64{3, 0.1, 0.1}); got != 3 {
		t.Errorf("longest bound: %v, want 3", got)
	}
	if got := c.ComputeSeconds(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestSpecPresets(t *testing.T) {
	t1, t2 := TypeI(), TypeII()
	if t1.Cores != 8 || t1.MemBytes != 32<<30 {
		t.Errorf("TypeI = %+v", t1)
	}
	if t2.Cores != 20 || t2.MemBytes != 128<<30 {
		t.Errorf("TypeII = %+v", t2)
	}
	cfg := Config{Nodes: 32, Spec: t1}
	if cfg.TotalCores() != 256 {
		t.Errorf("32 type-I nodes = %d cores, want 256 (the paper's largest deployment)", cfg.TotalCores())
	}
	cfg2 := Config{Nodes: 8, Spec: t2}
	if cfg2.TotalCores() != 160 {
		t.Errorf("8 type-II nodes = %d cores, want 160", cfg2.TotalCores())
	}
}
