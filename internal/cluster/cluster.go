// Package cluster models the testbed of the paper's evaluation: a set of
// identical nodes with core counts, memory capacities and network links.
//
// The GAS engine maps its partitions onto cluster nodes and charges every
// cross-node message to an Accountant. Two things come out of that:
//
//   - a simulated cost model (compute makespan over the configured cores
//     plus transfer time over the configured bandwidth), which lets the
//     scalability experiments of Figure 5 vary "cores" far beyond the host
//     machine's;
//   - per-node memory budgets, whose exhaustion reproduces the paper's
//     BASELINE failure ("fails due to resource exhaustion", Section 5.3)
//     as a first-class error instead of an OOM kill.
package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// NodeSpec describes one machine type.
type NodeSpec struct {
	Name           string
	Cores          int
	MemBytes       int64
	NetBytesPerSec float64
}

// TypeI returns the paper's type-I node: 2x Intel Xeon L5420 (8 cores),
// 32 GB RAM, Gigabit Ethernet.
func TypeI() NodeSpec {
	return NodeSpec{Name: "type-I", Cores: 8, MemBytes: 32 << 30, NetBytesPerSec: 125e6}
}

// TypeII returns the paper's type-II node: 2x Intel Xeon E5-2660v2
// (20 cores), 128 GB RAM, 10-Gigabit Ethernet.
func TypeII() NodeSpec {
	return NodeSpec{Name: "type-II", Cores: 20, MemBytes: 128 << 30, NetBytesPerSec: 1.25e9}
}

// Config sizes a homogeneous cluster.
type Config struct {
	Nodes int
	Spec  NodeSpec
	// MemBudgetBytes optionally overrides Spec.MemBytes as the enforced
	// per-node memory budget (useful to provoke exhaustion at small scale).
	// Zero means "use Spec.MemBytes".
	MemBudgetBytes int64
}

// TotalCores returns the number of cores across the cluster.
func (c Config) TotalCores() int { return c.Nodes * c.Spec.Cores }

// budget returns the enforced per-node memory budget.
func (c Config) budget() int64 {
	if c.MemBudgetBytes > 0 {
		return c.MemBudgetBytes
	}
	return c.Spec.MemBytes
}

// String renders the configuration like the paper reports deployments.
func (c Config) String() string {
	return fmt.Sprintf("%d %s nodes (%d cores)", c.Nodes, c.Spec.Name, c.TotalCores())
}

// ErrMemoryExhausted is returned (wrapped) when a node exceeds its memory
// budget, mirroring the resource-exhaustion failures of the paper's naive
// GraphLab implementation.
var ErrMemoryExhausted = errors.New("node memory budget exhausted")

// Cluster maps computation partitions onto nodes and accounts for their
// traffic and memory. Construct with New; methods are safe for concurrent
// use where documented.
type Cluster struct {
	cfg    Config
	nodeOf []int // partition -> node (round-robin)

	mu         sync.Mutex
	memUsed    []int64 // per node, current
	memPeak    []int64 // per node, peak
	nodeIn     []int64 // per node, bytes received (cross-node only)
	nodeOut    []int64 // per node, bytes sent (cross-node only)
	crossBytes int64
	crossMsgs  int64
	localBytes int64
	localMsgs  int64
}

// New builds a cluster for the given number of partitions. Partitions are
// assigned to nodes round-robin, mimicking one engine worker per core group.
func New(cfg Config, parts int) (*Cluster, error) {
	if cfg.Nodes < 1 || cfg.Spec.Cores < 1 {
		return nil, fmt.Errorf("cluster: invalid config %+v", cfg)
	}
	if parts < 1 {
		return nil, fmt.Errorf("cluster: parts=%d, need >= 1", parts)
	}
	c := &Cluster{
		cfg:     cfg,
		nodeOf:  make([]int, parts),
		memUsed: make([]int64, cfg.Nodes),
		memPeak: make([]int64, cfg.Nodes),
		nodeIn:  make([]int64, cfg.Nodes),
		nodeOut: make([]int64, cfg.Nodes),
	}
	for p := 0; p < parts; p++ {
		c.nodeOf[p] = p % cfg.Nodes
	}
	return c, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Parts returns the number of partitions mapped onto the cluster.
func (c *Cluster) Parts() int { return len(c.nodeOf) }

// NodeOf returns the node hosting partition p.
func (c *Cluster) NodeOf(p int) int { return c.nodeOf[p] }

// Transfer charges a message of size bytes from partition from to partition
// to. Messages between partitions of the same node are counted but free of
// network cost. Safe for concurrent use.
func (c *Cluster) Transfer(from, to int, bytes int64) {
	nf, nt := c.nodeOf[from], c.nodeOf[to]
	c.mu.Lock()
	defer c.mu.Unlock()
	if nf == nt {
		c.localBytes += bytes
		c.localMsgs++
		return
	}
	c.crossBytes += bytes
	c.crossMsgs++
	c.nodeOut[nf] += bytes
	c.nodeIn[nt] += bytes
}

// StoreMem adjusts the resident memory of the node hosting partition p by
// delta bytes (negative to release) and enforces the node budget. On
// exhaustion the usage is still recorded and an error wrapping
// ErrMemoryExhausted is returned. Safe for concurrent use.
func (c *Cluster) StoreMem(p int, delta int64) error {
	n := c.nodeOf[p]
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[n] += delta
	if c.memUsed[n] > c.memPeak[n] {
		c.memPeak[n] = c.memUsed[n]
	}
	if budget := c.cfg.budget(); c.memUsed[n] > budget {
		return fmt.Errorf("cluster: node %d uses %d of %d bytes: %w",
			n, c.memUsed[n], budget, ErrMemoryExhausted)
	}
	return nil
}

// Traffic is a point-in-time snapshot of the accounting state.
type Traffic struct {
	CrossBytes, CrossMsgs int64
	LocalBytes, LocalMsgs int64
	NodeIn, NodeOut       []int64
	MemPeak               []int64
}

// Snapshot copies the current accounting state. Safe for concurrent use.
func (c *Cluster) Snapshot() Traffic {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := Traffic{
		CrossBytes: c.crossBytes, CrossMsgs: c.crossMsgs,
		LocalBytes: c.localBytes, LocalMsgs: c.localMsgs,
		NodeIn:  append([]int64(nil), c.nodeIn...),
		NodeOut: append([]int64(nil), c.nodeOut...),
		MemPeak: append([]int64(nil), c.memPeak...),
	}
	return t
}

// MaxMemPeak returns the largest per-node peak memory recorded.
func (t Traffic) MaxMemPeak() int64 {
	var max int64
	for _, m := range t.MemPeak {
		if m > max {
			max = m
		}
	}
	return max
}

// NetSeconds estimates the time to drain the traffic delta between two
// snapshots: each node sends and receives concurrently at the configured
// bandwidth, and supersteps are barriers, so the slowest node bounds the
// step (bulk-synchronous cost model).
func (c *Cluster) NetSeconds(before, after Traffic) float64 {
	bw := c.cfg.Spec.NetBytesPerSec
	if bw <= 0 {
		return 0
	}
	var worst float64
	for n := 0; n < c.cfg.Nodes; n++ {
		in := float64(after.NodeIn[n] - before.NodeIn[n])
		out := float64(after.NodeOut[n] - before.NodeOut[n])
		v := in
		if out > v {
			v = out
		}
		if v/bw > worst {
			worst = v / bw
		}
	}
	return worst
}

// ComputeSeconds estimates the makespan of the given per-partition busy
// times on the cluster's cores: the classic LPT lower bound
// max(longest task, total work / total cores).
func (c *Cluster) ComputeSeconds(taskSeconds []float64) float64 {
	var sum, longest float64
	for _, s := range taskSeconds {
		sum += s
		if s > longest {
			longest = s
		}
	}
	if c.cfg.TotalCores() == 0 {
		return longest
	}
	if spread := sum / float64(c.cfg.TotalCores()); spread > longest {
		return spread
	}
	return longest
}
