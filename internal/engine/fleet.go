package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/randx"
	"snaple/internal/wire"
)

// ErrManifestMismatch re-exports the wire layer's typed rejection: a worker
// whose resident shard was packed from a different (graph, cut) than the
// coordinator's manifest. errors.Is(err, ErrManifestMismatch) detects it
// through any wrapping.
var ErrManifestMismatch = wire.ErrManifestMismatch

// FleetFingerprint identifies a (graph, vertex-cut) pairing: FNV-1a over the
// vertex and edge counts, the full adjacency stream, and the cut parameters
// (fleet width, strategy name, seed). Pack stamps it into every shard and the
// manifest; attach verifies it in place of re-shipping the partition — equal
// fingerprints mean the worker's resident columns are byte-equal to what a
// fresh ship would have produced.
func FleetFingerprint(g *graph.Digraph, shards int, strategy string, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	w64(uint64(g.NumVertices()))
	w64(uint64(g.NumEdges()))
	g.ForEachEdge(func(u, v graph.VertexID) {
		binary.LittleEndian.PutUint32(b[:4], uint32(u))
		binary.LittleEndian.PutUint32(b[4:], uint32(v))
		h.Write(b[:])
	})
	w64(uint64(shards))
	h.Write([]byte(strategy))
	w64(seed)
	return h.Sum64()
}

// PackShards vertex-cuts g into shards resident partitions using the same
// deployment logic (and the same deterministic master election) a full
// distributed run would compute, so a fleet attached to the packed shards is
// bit-identical to one that shipped partitions per run. The manifest's Files
// column is left empty — the packer names the files.
func PackShards(g *graph.Digraph, strat partition.Strategy, seed uint64, shards int) ([]*graph.ShardFile, *graph.Manifest, error) {
	if shards <= 0 {
		return nil, nil, fmt.Errorf("engine: pack: non-positive shard count %d", shards)
	}
	if strat == nil {
		strat = partition.HashEdge{Seed: seed}
	}
	dep, err := Dist{Strategy: strat, Seed: seed}.deploy(g, shards, nil)
	if err != nil {
		return nil, nil, err
	}
	fp := FleetFingerprint(g, shards, strat.Name(), seed)
	files := make([]*graph.ShardFile, shards)
	man := &graph.Manifest{
		Fingerprint: fp,
		Shards:      shards,
		NumVertices: g.NumVertices(),
		NumEdges:    int64(g.NumEdges()),
		Seed:        seed,
		Strategy:    strat.Name(),
		Files:       make([]string, shards),
		Locals:      make([]int64, shards),
		Masters:     make([]int64, shards),
		Edges:       make([]int64, shards),
	}
	for p := range dep.parts {
		wp := &dep.parts[p]
		files[p] = &graph.ShardFile{
			Fingerprint: fp,
			Shard:       p,
			Shards:      shards,
			NumVertices: g.NumVertices(),
			Locals:      wp.Locals,
			Deg:         wp.Deg,
			EdgeSrc:     wp.EdgeSrc,
			EdgeDst:     wp.EdgeDst,
			IsMaster:    wp.IsMaster,
			HasRemote:   wp.HasRemote,
		}
		man.Locals[p] = int64(len(wp.Locals))
		man.Edges[p] = int64(len(wp.EdgeSrc))
		nm := int64(0)
		for _, m := range wp.IsMaster {
			if m {
				nm++
			}
		}
		man.Masters[p] = nm
	}
	return files, man, nil
}

// FleetInfo describes a standing fleet's topology, for operators
// (snaple-serve's /v1/info endpoint).
type FleetInfo struct {
	// Shards is the fleet width of the vertex cut.
	Shards int
	// Replicas is how many workers serve each shard.
	Replicas int
	// Workers is Shards*Replicas, the standing connection count.
	Workers int
	// Fingerprint is the fleet fingerprint every worker was verified against.
	Fingerprint uint64
}

// FleetOptions configures OpenFleet.
type FleetOptions struct {
	// Addrs connects to resident snaple-worker processes, shard-major:
	// Addrs[s*Replicas+r] is replica r of shard s. Its length must be
	// Shards*Replicas for the manifest's (or InProc's) shard count. Empty
	// means an in-process resident fleet (loopback listeners pinned to
	// in-memory shards) — the zero-config path tests and single-machine
	// serving use.
	Addrs []string
	// Manifest pins the fleet identity: shard count, cut strategy and seed,
	// and the fingerprint every worker must present. Nil derives all three
	// from InProc/Strategy/Seed instead (in-process fleets only).
	Manifest *graph.Manifest
	// InProc is the shard count of an in-process fleet when no Manifest is
	// given (0 = 2).
	InProc int
	// Replicas is the per-shard replica count (0 or 1 = no replication).
	Replicas int
	// Strategy/Seed are the cut parameters when no Manifest pins them
	// (nil = partition.HashEdge{Seed}).
	Strategy partition.Strategy
	Seed     uint64
	// StepTimeout/DialAttempts/DialBackoff/Proto/Compress behave exactly as
	// on Dist.
	StepTimeout  time.Duration
	DialAttempts int
	DialBackoff  time.Duration
	Proto        int
	Compress     bool
}

// Fleet is the resident-partition coordinator: workers pinned to packed
// shards, standing connections, and per-query routing that contacts only the
// replica groups whose shards intersect the query's frontier closure. Where
// Dist re-partitions and re-ships the graph on every Predict, a Fleet pays
// for partitioning once at Open and thereafter attaches by fingerprint — the
// per-query "ship" is a fixed-size handshake (plus, on scoped queries, the
// sparse per-closure-vertex roles), never partition bytes.
//
// A Fleet is safe for concurrent use; queries are serialised internally over
// the standing connections. Results are bit-identical to every other backend
// for the same (graph, Config) — the resident cut is just another placement,
// and placement never changes results.
type Fleet struct {
	g           *graph.Digraph
	shards      int
	replicas    int
	fingerprint uint64
	seed        uint64
	timeout     time.Duration
	proto       int
	compress    bool
	dialAtt     int
	dialBack    time.Duration

	// Routing state derived from the cut at Open.
	masterFull []int32   // per vertex: shard mastering it on a full run (-1 = absent)
	mirrorFull [][]int32 // per vertex: non-master host shards, ascending
	hostShards [][]int32 // per vertex: all host shards, ascending
	srcShards  [][]int32 // per vertex: shards holding its out-edges, ascending
	deg        []int32   // per vertex: full out-degree (superstep-skip table)

	addrs     []string // one per connection, shard-major
	listeners []net.Listener
	inproc    bool

	mu          sync.Mutex
	conns       []*wire.Conn // nil: never dialed or swept after death
	closed      bool
	cumDead     int
	cumFailover int
	cumRetries  int
	queries     int64
}

// handshakeJob is a minimal valid job used for the Open-time fingerprint
// verification attach; the session it starts is replaced by the first real
// query's attach.
var handshakeJob = wire.JobSpec{Score: "counter", Alpha: 0.9, K: 1, Paths: 2}

// OpenFleet stands up (or connects to) a resident fleet for g and verifies
// every worker's resident shard against the fleet fingerprint. With a
// Manifest the graph must match it exactly — vertex count, edge count and
// fingerprint — and every worker presenting a different fingerprint is
// rejected with ErrManifestMismatch. The returned Fleet holds standing
// connections until Close.
func OpenFleet(g *graph.Digraph, o FleetOptions) (*Fleet, error) {
	if g == nil {
		return nil, errors.New("engine: fleet: nil graph")
	}
	reps := o.Replicas
	if reps <= 0 {
		reps = 1
	}
	strat := o.Strategy
	seed := o.Seed
	shards := o.InProc
	if o.Manifest != nil {
		m := o.Manifest
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.NumVertices != g.NumVertices() || m.NumEdges != int64(g.NumEdges()) {
			return nil, fmt.Errorf("engine: fleet: %w: manifest describes %d vertices / %d edges, graph has %d / %d",
				ErrManifestMismatch, m.NumVertices, m.NumEdges, g.NumVertices(), g.NumEdges())
		}
		shards = m.Shards
		seed = m.Seed
		var err error
		if strat, err = partition.ByName(m.Strategy, m.Seed); err != nil {
			return nil, fmt.Errorf("engine: fleet: %w", err)
		}
	} else if len(o.Addrs) > 0 {
		if len(o.Addrs)%reps != 0 {
			return nil, fmt.Errorf("engine: fleet: %d addresses do not divide into replica groups of %d", len(o.Addrs), reps)
		}
		shards = len(o.Addrs) / reps
	}
	if shards <= 0 {
		shards = 2
	}
	if strat == nil {
		strat = partition.HashEdge{Seed: seed}
	}
	if len(o.Addrs) > 0 && len(o.Addrs) != shards*reps {
		return nil, fmt.Errorf("engine: fleet: %d addresses for %d shards x %d replicas", len(o.Addrs), shards, reps)
	}

	fp := FleetFingerprint(g, shards, strat.Name(), seed)
	if o.Manifest != nil && fp != o.Manifest.Fingerprint {
		return nil, fmt.Errorf("engine: fleet: %w: manifest fingerprint %016x, graph+cut compute %016x",
			ErrManifestMismatch, o.Manifest.Fingerprint, fp)
	}

	dep, err := Dist{Strategy: strat, Seed: seed}.deploy(g, shards, nil)
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		g: g, shards: shards, replicas: reps, fingerprint: fp, seed: seed,
		timeout: Dist{StepTimeout: o.StepTimeout}.stepTimeout(),
		proto:   o.Proto, compress: o.Compress,
		dialAtt:  o.DialAttempts,
		dialBack: o.DialBackoff,

		masterFull: dep.masterPart,
		mirrorFull: dep.mirrors,
		deg:        make([]int32, g.NumVertices()),
		hostShards: make([][]int32, g.NumVertices()),
		srcShards:  make([][]int32, g.NumVertices()),
		conns:      make([]*wire.Conn, shards*reps),
	}
	for v := range f.deg {
		f.deg[v] = int32(g.OutDegree(graph.VertexID(v)))
	}
	for v, mp := range dep.masterPart {
		if mp < 0 {
			continue
		}
		hosts := append([]int32{mp}, dep.mirrors[v]...)
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		f.hostShards[v] = hosts
	}
	// Which shards hold each vertex's out-edges: the query router's index.
	// The assignment is recomputed from the (deterministic) strategy so
	// deploy's per-shard edge lists don't have to be retained.
	assign, err := strat.Partition(g, shards)
	if err != nil {
		return nil, err
	}
	{
		i := 0
		g.ForEachEdge(func(u, v graph.VertexID) {
			p := assign.EdgeTo[i]
			i++
			row := f.srcShards[u]
			for _, s := range row {
				if s == p {
					return
				}
			}
			f.srcShards[u] = append(row, p)
		})
		for _, row := range f.srcShards {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		}
	}

	if len(o.Addrs) > 0 {
		f.addrs = append([]string(nil), o.Addrs...)
	} else {
		// In-process resident fleet: one loopback listener per worker, each
		// pinned to its shard's columns. Real TCP, real frames — just no
		// separate OS process.
		f.inproc = true
		f.addrs = make([]string, shards*reps)
		for s := 0; s < shards; s++ {
			res := &wire.ResidentShard{Fingerprint: fp, Shards: shards, Part: dep.parts[s]}
			for r := 0; r < reps; r++ {
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					f.Close()
					return nil, err
				}
				f.listeners = append(f.listeners, l)
				go func() { _ = wire.ServeWith(l, nil, wire.ServeOptions{Resident: res}) }()
				f.addrs[s*reps+r] = l.Addr().String()
			}
		}
	}

	// Dial and verify every worker now: a fingerprint mismatch is
	// deterministic and should fail Open, not the first query. With
	// replication an unreachable worker is degraded capacity, not a failed
	// open; without it there is no replica to absorb the loss.
	for i := range f.conns {
		c, retries, err := f.dial(f.addrs[i])
		f.cumRetries += retries
		if err == nil {
			err = f.verify(c, i)
			if err != nil {
				c.Close()
				c = nil
			}
		}
		if err != nil {
			if wire.IsManifestMismatch(err) || wire.IsRemoteError(err) || reps == 1 {
				f.Close()
				if wire.IsManifestMismatch(err) && !errors.Is(err, ErrManifestMismatch) {
					err = fmt.Errorf("%w: %v", ErrManifestMismatch, err)
				}
				return nil, fmt.Errorf("engine: fleet attach %s: %w", f.addrs[i], err)
			}
			f.cumDead++
			continue
		}
		f.conns[i] = c
	}
	return f, nil
}

// dial connects to one worker with the configured bounded retry.
func (f *Fleet) dial(addr string) (*wire.Conn, int, error) {
	d := Dist{DialAttempts: f.dialAtt, DialBackoff: f.dialBack}
	var c *wire.Conn
	retries, err := d.withRetry(false, func() error {
		var derr error
		c, derr = wire.DialWith(addr, wire.DialOptions{Proto: f.proto, Compress: f.compress})
		return derr
	})
	if err != nil {
		return nil, retries, err
	}
	return c, retries, nil
}

// verify runs the Open-time handshake on connection i: an empty scoped
// attach that proves the worker is resident for the right shard of the right
// fleet. The dangling session it starts is replaced by the first query.
func (f *Fleet) verify(c *wire.Conn, i int) error {
	_ = c.SetDeadline(time.Now().Add(shipTimeout))
	defer func() { _ = c.SetDeadline(time.Time{}) }()
	err := c.Send(&wire.Msg{
		Kind: wire.KindAttach, Version: c.Proto(), Job: handshakeJob,
		Attach: wire.AttachSpec{
			Fingerprint: f.fingerprint,
			Shard:       int32(i / f.replicas),
			Shards:      int32(f.shards),
			Scoped:      true,
		},
	})
	if err != nil {
		return err
	}
	_, err = c.Expect(wire.KindReady)
	return err
}

// Name implements Backend.
func (f *Fleet) Name() string { return "fleet" }

// FleetInfo reports the standing topology.
func (f *Fleet) FleetInfo() FleetInfo {
	return FleetInfo{
		Shards:      f.shards,
		Replicas:    f.replicas,
		Workers:     f.shards * f.replicas,
		Fingerprint: f.fingerprint,
	}
}

// Stats reports the fleet's cumulative health across all queries so far.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Engine:      "fleet",
		Workers:     f.shards * f.replicas,
		Replicas:    f.replicas,
		WorkersDead: f.cumDead,
		Failovers:   f.cumFailover,
		DialRetries: f.cumRetries,
	}
}

// Close tears down the standing connections (and, for an in-process fleet,
// its listeners). Idempotent.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	for i, c := range f.conns {
		if c != nil {
			_ = c.Close()
			f.conns[i] = nil
		}
	}
	for _, l := range f.listeners {
		_ = l.Close()
	}
	return nil
}

// Predict implements Backend. The graph must be the one the fleet was opened
// with: the workers' resident shards were cut from it, and the fingerprint
// handshake (not this call) is what proves they still agree.
func (f *Fleet) Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	return f.PredictCtx(context.Background(), g, cfg)
}

// PredictCtx implements ContextBackend. Cancelling ctx closes the query's
// connections; they are redialed lazily on the next query, so a cancelled
// query degrades latency once, never the fleet.
func (f *Fleet) PredictCtx(ctx context.Context, g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := Stats{Engine: "fleet", Workers: f.shards * f.replicas, Replicas: f.replicas}
	if csr, ok := graph.AsCSR(g); !ok {
		return nil, st, errors.New("engine: fleet: predict over a mutated view — the fleet serves a frozen pack; compact first")
	} else if csr != f.g {
		return nil, st, errors.New("engine: fleet: predict over a graph the fleet was not opened with")
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, st, err
	}
	job, err := wire.JobFromConfig(cfg)
	if err != nil {
		return nil, st, err
	}
	frontier, err := core.NewFrontier(g, cfg)
	if err != nil {
		return nil, st, err
	}
	st.FrontierVertices = frontier.Size()
	st.ScoredVertices = g.NumVertices()
	if frontier != nil {
		st.ScoredVertices = frontier.Pred.Len()
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, st, errors.New("engine: fleet: closed")
	}
	f.queries++

	// Route: which shards does the closure touch? Only their replica groups
	// see this query — an untouched shard's workers receive no frame at all.
	touched, dep, entries, err := f.route(frontier)
	if err != nil {
		return nil, st, err
	}
	if len(touched) == 0 {
		// Isolated sources: the closure holds no edge anywhere.
		return make(core.Predictions, g.NumVertices()), st, nil
	}
	st.Workers = len(touched) * f.replicas
	st.ReplicationFactor = dep.replicationFactor()

	// Standing connections for the touched groups, redialing any that a
	// previous query's failure (or cancellation) swept.
	conns := make([]*wire.Conn, len(touched)*f.replicas)
	dialErrs := make([]error, len(conns))
	for gi, s := range touched {
		for r := 0; r < f.replicas; r++ {
			src := int(s)*f.replicas + r
			li := gi*f.replicas + r
			if f.conns[src] == nil {
				c, retries, derr := f.dial(f.addrs[src])
				f.cumRetries += retries
				st.DialRetries += retries
				if derr != nil {
					dialErrs[li] = fmt.Errorf("engine: fleet dial %s: %w", f.addrs[src], derr)
					continue
				}
				f.conns[src] = c
			}
			conns[li] = f.conns[src]
		}
	}

	run := newDistRun(dep, conns, f.replicas, f.timeout)
	for i, derr := range dialErrs {
		if derr != nil {
			run.markDead(i, derr)
		}
	}
	// Sweep: connections the run declared dead are closed already; forget
	// them so the next query redials, and disarm the survivors' deadlines so
	// a standing connection never trips a stale timer between queries.
	defer func() {
		dead := 0
		for gi, s := range touched {
			for r := 0; r < f.replicas; r++ {
				src := int(s)*f.replicas + r
				li := gi*f.replicas + r
				if f.conns[src] == nil {
					continue
				}
				if !run.isAlive(li) {
					f.conns[src] = nil
					dead++
				} else {
					_ = f.conns[src].SetDeadline(time.Time{})
				}
			}
		}
		f.cumDead += dead
		f.cumFailover += run.failoverCount()
	}()

	fail := func(err error) (core.Predictions, Stats, error) {
		st.WorkersDead = run.deadCount()
		st.Failovers = run.failoverCount()
		if ce := ctx.Err(); ce != nil {
			err = ce
		}
		return nil, st, err
	}

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			run.closeAll()
		case <-watchDone:
		}
	}()

	// Attach: the fingerprint handshake that replaces the ship phase. Its
	// traffic is ShipBytes — for an unscoped attach a fixed-size frame, for a
	// scoped one the sparse closure roles; never partition columns.
	base0 := connCounters(conns)
	run.beginAttempt()
	if err := run.lostErr("connect"); err != nil {
		return fail(err)
	}
	if err := f.attach(run, job, touched, entries, frontier != nil); err != nil {
		return fail(err)
	}
	if err := run.lostErr("attach"); err != nil {
		return fail(err)
	}
	base1 := connCounters(conns)
	for i := range conns {
		d := base1[i].Sub(base0[i])
		st.ShipBytes += d.BytesIn + d.BytesOut
	}

	start := time.Now()
	steps := make([]core.DistStep, 0, 4)
	for _, step := range core.DistSteps(cfg.Paths) {
		if frontier.StepHasWork(step, f.deg) {
			steps = append(steps, step)
		}
	}
	for si := 0; si < len(steps); {
		step := steps[si]
		final := si == len(steps)-1
		run.beginAttempt()
		run.runStep(step, final)
		if run.sawDeath() {
			if err := run.lostErr(fmt.Sprintf("%v", step)); err != nil {
				return fail(err)
			}
			continue
		}
		si++
	}

	results, err := run.collect()
	if err != nil {
		return fail(err)
	}
	pred := make(core.Predictions, g.NumVertices())
	for p := range results {
		res := &results[p]
		for _, vp := range res.Preds {
			pred[vp.V] = vp.Preds
		}
		if res.Stats.HeapBytes > st.MemPeakBytes {
			st.MemPeakBytes = res.Stats.HeapBytes
		}
	}
	st.WallSeconds = time.Since(start).Seconds()
	if st.WallSeconds > 0 {
		st.EdgesPerSec = float64(g.NumEdges()) / st.WallSeconds
	}
	final := connCounters(conns)
	for i := range conns {
		d := final[i].Sub(base1[i])
		st.CrossBytes += d.BytesIn + d.BytesOut
		st.CrossMsgs += d.MsgsIn + d.MsgsOut
	}
	st.WorkersDead = run.deadCount()
	st.Failovers = run.failoverCount()
	return pred, st, nil
}

func connCounters(conns []*wire.Conn) []wire.Counters {
	out := make([]wire.Counters, len(conns))
	for i, c := range conns {
		if c != nil {
			out[i] = c.Counters()
		}
	}
	return out
}

// route computes the query's touched shard set and the synthetic deployment
// the superstep router runs over. A full (unscoped) run touches every shard
// and reuses the roles baked at pack time. A scoped run touches exactly the
// shards holding a closure out-edge, then re-elects each closure vertex's
// master among its touched hosts — the pack-time master may sit on an
// untouched shard, and any consistent election yields identical results, so
// the restricted draw is both necessary and safe. The per-shard entries are
// the sparse roles the attach carries.
func (f *Fleet) route(frontier *core.Frontier) ([]int32, *deployment, [][]wire.ScopeEntry, error) {
	if frontier == nil {
		touched := make([]int32, f.shards)
		for s := range touched {
			touched[s] = int32(s)
		}
		dep := &deployment{
			parts:      make([]wire.Partition, f.shards),
			masterPart: f.masterFull,
			mirrors:    f.mirrorFull,
		}
		for v, mp := range f.masterFull {
			if mp >= 0 {
				dep.replicas += len(f.hostShards[v])
				dep.present++
			}
		}
		return touched, dep, make([][]wire.ScopeEntry, f.shards), nil
	}

	touchedSet := make([]bool, f.shards)
	for _, u := range frontier.Trunc.Members() {
		for _, s := range f.srcShards[u] {
			touchedSet[s] = true
		}
	}
	groupOf := make([]int32, f.shards)
	var touched []int32
	for s, t := range touchedSet {
		if t {
			groupOf[s] = int32(len(touched))
			touched = append(touched, int32(s))
		} else {
			groupOf[s] = -1
		}
	}
	if len(touched) == 0 {
		return nil, nil, nil, nil
	}

	dep := &deployment{
		parts:      make([]wire.Partition, len(touched)),
		masterPart: make([]int32, f.g.NumVertices()),
		mirrors:    make([][]int32, f.g.NumVertices()),
		frontier:   frontier,
	}
	for v := range dep.masterPart {
		dep.masterPart[v] = -1
	}
	entries := make([][]wire.ScopeEntry, len(touched))
	hosts := make([]int32, 0, 8)
	for _, v := range frontier.Trunc.Members() {
		hosts = hosts[:0]
		for _, s := range f.hostShards[v] {
			if touchedSet[s] {
				hosts = append(hosts, s)
			}
		}
		if len(hosts) == 0 {
			// No touched shard holds v: no gather can emit a partial for it
			// (a partial for v only arises on a shard holding one of v's
			// edges, and such shards are touched), so v needs no master.
			continue
		}
		// The same keyed draw the shipped deployment uses, restricted to the
		// touched hosts — deterministic, and placement never changes results.
		mp := hosts[randx.Uint64n(uint64(len(hosts)), f.seed, uint64(v), 0xA5)]
		dep.masterPart[v] = groupOf[mp]
		remote := len(hosts) > 1
		mask := frontier.ScopeMask(v)
		for _, s := range hosts {
			var role uint8
			if s == mp {
				role |= wire.RoleMaster
			}
			if remote {
				role |= wire.RoleRemote
			}
			entries[groupOf[s]] = append(entries[groupOf[s]], wire.ScopeEntry{V: v, Mask: mask, Role: role})
		}
		if remote {
			mirrors := make([]int32, 0, len(hosts)-1)
			for _, s := range hosts {
				if s != mp {
					mirrors = append(mirrors, groupOf[s])
				}
			}
			dep.mirrors[v] = mirrors
		}
		dep.replicas += len(hosts)
		dep.present++
	}
	return touched, dep, entries, nil
}

// attach performs the fingerprint handshake on every live connection of the
// run — the resident fleet's whole "ship" phase. A connection failure is a
// liveness verdict absorbed by replication; a worker's typed rejection
// (wrong fingerprint, wrong shard, malformed job) is deterministic across
// replicas and fails the query, with fingerprint mismatches wrapped as
// ErrManifestMismatch.
func (f *Fleet) attach(run *distRun, job wire.JobSpec, touched []int32, entries [][]wire.ScopeEntry, scoped bool) error {
	var mu sync.Mutex
	var fatal error
	run.eachAlive(func(i int, c *wire.Conn) error {
		_ = c.SetDeadline(time.Now().Add(shipTimeout))
		defer func() { _ = c.SetDeadline(time.Time{}) }()
		p := run.partOf[i]
		err := c.Send(&wire.Msg{
			Kind: wire.KindAttach, Version: c.Proto(), Job: job,
			Attach: wire.AttachSpec{
				Fingerprint: f.fingerprint,
				Shard:       touched[p],
				Shards:      int32(f.shards),
				Scoped:      scoped,
				Entries:     entries[p],
			},
		})
		if err != nil {
			return err
		}
		if _, err := c.Expect(wire.KindReady); err != nil {
			if wire.IsRemoteError(err) {
				if wire.IsManifestMismatch(err) {
					err = fmt.Errorf("engine: fleet attach: %w: %v", ErrManifestMismatch, err)
				}
				mu.Lock()
				if fatal == nil {
					fatal = err
				}
				mu.Unlock()
			}
			return err
		}
		return nil
	})
	return fatal
}
