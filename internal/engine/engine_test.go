package engine

import (
	"fmt"
	"reflect"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/randx"
)

// testGraph builds a deterministic directed graph with a skewed degree
// distribution: a few hubs with out-degree near n/4 (so ThrGamma truncation
// actually triggers) plus a sparse random background.
func testGraph(t testing.TB, n int, seed uint64) *graph.Digraph {
	t.Helper()
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := 8.0 / float64(n)
			if u%50 == 0 {
				p = 0.25 // hubs
			}
			if randx.Float64(seed, uint64(u), uint64(v)) < p {
				edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustScore(t testing.TB, name string) core.ScoreSpec {
	t.Helper()
	spec, err := core.ScoreByName(name, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// diffPredictions reports the first vertex where two prediction sets differ.
func diffPredictions(t *testing.T, want, got core.Predictions) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch: want %d, got %d", len(want), len(got))
	}
	for u := range want {
		if !reflect.DeepEqual(want[u], got[u]) {
			t.Fatalf("vertex %d: want %v, got %v", u, want[u], got[u])
		}
	}
	t.Fatal("predictions differ but no vertex mismatch found")
}

// TestLocalMatchesReference is the backend-equivalence table: engine.Local
// must be bit-identical to core.ReferenceSnaple across scores, selection
// policies, truncation thresholds, relay bounds, path lengths, seeds and
// worker counts. Run it under -race to also exercise the sharding.
func TestLocalMatchesReference(t *testing.T) {
	g := testGraph(t, 300, 7)

	type tc struct {
		score  string
		policy core.SelectionPolicy
		thr    int
		klocal int
		paths  int
		seed   uint64
	}
	var cases []tc
	// Full policy/sampling cross for the default score.
	for _, policy := range []core.SelectionPolicy{core.SelectMax, core.SelectMin, core.SelectRnd} {
		for _, thr := range []int{core.Unlimited, 10} {
			for _, klocal := range []int{core.Unlimited, 4} {
				for _, seed := range []uint64{1, 42} {
					cases = append(cases, tc{"linearSum", policy, thr, klocal, 2, seed})
				}
			}
		}
	}
	// Every Table 3 score family at the paper-style operating point.
	for _, score := range []string{"PPR", "counter", "euclSum", "geomSum", "linearMean", "geomMean", "linearGeom", "euclGeom", "geomGeom", "euclMean"} {
		cases = append(cases, tc{score, core.SelectMax, 10, 4, 2, 42})
	}
	// The 3-hop extension (small klocal: candidate space grows cubically).
	for _, policy := range []core.SelectionPolicy{core.SelectMax, core.SelectRnd} {
		cases = append(cases, tc{"linearSum", policy, 10, 3, 3, 42})
	}
	cases = append(cases, tc{"geomSum", core.SelectMax, core.Unlimited, 3, 3, 1})

	for _, c := range cases {
		cfg := core.Config{
			Score:    mustScore(t, c.score),
			K:        5,
			KLocal:   c.klocal,
			ThrGamma: c.thr,
			Policy:   c.policy,
			Paths:    c.paths,
			Seed:     c.seed,
		}
		want, err := core.ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			name := fmt.Sprintf("%s/%s/thr=%d/klocal=%d/paths=%d/seed=%d/workers=%d",
				c.score, c.policy, c.thr, c.klocal, c.paths, c.seed, workers)
			t.Run(name, func(t *testing.T) {
				got, st, err := Local{Workers: workers}.Predict(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if st.Engine != "local" || st.Workers != workers {
					t.Errorf("stats = %+v", st)
				}
				if !reflect.DeepEqual(want, got) {
					diffPredictions(t, want, got)
				}
			})
		}
	}
}

// TestSimMatchesReference pins the Sim adapter to the same oracle and
// checks it reports the simulated costs the other backends cannot.
func TestSimMatchesReference(t *testing.T) {
	g := testGraph(t, 200, 3)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 8, ThrGamma: 10, Seed: 5}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Sim{Nodes: 3, Seed: 9}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.Engine != "sim" {
		t.Errorf("engine = %q", st.Engine)
	}
	if st.ReplicationFactor < 1 || st.CrossBytes == 0 || st.SimSeconds == 0 {
		t.Errorf("sim costs missing: %+v", st)
	}
}

func TestSerialMatchesReference(t *testing.T) {
	g := testGraph(t, 150, 11)
	cfg := core.Config{Score: mustScore(t, "geomMean"), K: 5, KLocal: 6, Seed: 2}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Serial{}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.Engine != "serial" || st.Workers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range append(Names(), "") {
		be, err := New(name, 2, 42)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "local"
		}
		if be.Name() != want {
			t.Errorf("New(%q).Name() = %q", name, be.Name())
		}
	}
	if _, err := New("bogus", 0, 0); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestBackendsRejectInvalidConfig(t *testing.T) {
	g := testGraph(t, 20, 1)
	bad := core.Config{Score: mustScore(t, "linearSum"), K: -1}
	// Dist validates before connecting, so no worker needs to exist.
	for _, be := range []Backend{Serial{}, Local{}, Sim{}, Dist{}} {
		if _, _, err := be.Predict(g, bad); err == nil {
			t.Errorf("%s accepted invalid config", be.Name())
		}
	}
}
