package engine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// mutatedView layers two mutation batches over g — adds, removes, and a
// re-add — returning the live overlay view.
func mutatedView(t testing.TB, g *graph.Digraph) *graph.Delta {
	t.Helper()
	n := graph.VertexID(g.NumVertices())
	var adds, removes []graph.Edge
	for u := graph.VertexID(0); u < 10; u++ {
		adds = append(adds, graph.Edge{Src: u, Dst: (u*37 + 13) % n})
	}
	for u := graph.VertexID(0); u < 8; u++ {
		if row := g.OutNeighbors(u); len(row) > 0 {
			removes = append(removes, graph.Edge{Src: u, Dst: row[0]})
		}
	}
	d, err := graph.NewDelta(g).Apply(adds, removes)
	if err != nil {
		t.Fatal(err)
	}
	// Second batch on top: re-add one removed edge, drop one added edge —
	// the copy-on-write chain the serving path produces.
	d, err = d.Apply(removes[:1], adds[:1])
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMutatedViewMatchesCompactedSnapshot is the live-graph acceptance
// oracle: a scoped predict over base+delta must be bit-identical, on every
// backend, to the same predict over the delta compacted into a fresh CSR,
// round-tripped through the .sgr snapshot codec — the exact state a server
// restart would reload.
func TestMutatedViewMatchesCompactedSnapshot(t *testing.T) {
	g := testGraph(t, 250, 11)
	d := mutatedView(t, g)

	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, d.Materialize()); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != d.NumEdges() {
		t.Fatalf("snapshot edges %d, overlay %d", loaded.NumEdges(), d.NumEdges())
	}

	for _, paths := range []int{2, 3} {
		cfg := core.Config{
			Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10,
			Paths: paths, Seed: 42,
			Sources: []graph.VertexID{0, 3, 7, 50, 120, 249},
		}
		backends := []struct {
			name string
			be   Backend
		}{
			{"serial", Serial{}},
			{"local", Local{Workers: 3}},
			{"sim", Sim{Nodes: 3, Seed: 9}},
			{"dist", Dist{InProc: 2, Seed: 42}},
		}
		var first core.Predictions
		for _, b := range backends {
			overDelta, _, err := b.be.Predict(d, cfg)
			if err != nil {
				t.Fatalf("paths=%d %s over delta: %v", paths, b.name, err)
			}
			overCSR, _, err := b.be.Predict(loaded, cfg)
			if err != nil {
				t.Fatalf("paths=%d %s over snapshot: %v", paths, b.name, err)
			}
			if !reflect.DeepEqual(overDelta, overCSR) {
				t.Fatalf("paths=%d %s: delta view and compacted snapshot disagree", paths, b.name)
			}
			if first == nil {
				first = overDelta
			} else if !reflect.DeepEqual(first, overDelta) {
				t.Fatalf("paths=%d %s disagrees with %s over the mutated view", paths, b.name, backends[0].name)
			}
		}
	}
}

// TestFleetRejectsMutatedView pins the frozen-pack guard: a resident fleet
// serves the CSR it was packed from, so a view with pending mutations must
// be refused (with a hint to compact), while a clean overlay of the same
// CSR unwraps and serves fine.
func TestFleetRejectsMutatedView(t *testing.T) {
	g := testGraph(t, 150, 3)
	f, err := OpenFleet(g, FleetOptions{InProc: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42,
		Sources: []graph.VertexID{1, 2}}

	d := mutatedView(t, g)
	if _, _, err := f.Predict(d, cfg); err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("mutated view: err = %v, want a compact-first rejection", err)
	}

	clean := g.WithoutEdges(nil) // empty overlay: unwraps to g
	want, _, err := f.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Predict(clean, cfg)
	if err != nil {
		t.Fatalf("clean overlay rejected: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("clean overlay served different predictions than its CSR")
	}
}
