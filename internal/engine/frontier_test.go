package engine

import (
	"fmt"
	"reflect"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/randx"
)

// filterToSources is the specification of a query-scoped run: the full
// run's predictions with every non-source row dropped.
func filterToSources(full core.Predictions, sources []graph.VertexID) core.Predictions {
	out := make(core.Predictions, len(full))
	for _, s := range sources {
		out[s] = full[s]
	}
	return out
}

// frontierSourceSets returns the source-set shapes the equivalence table
// exercises on an n-vertex graph: a singleton, a hub, duplicates, a
// deterministic random subset, and every vertex (scoped-but-complete).
func frontierSourceSets(n int) map[string][]graph.VertexID {
	random := make([]graph.VertexID, 0, 25)
	for i := 0; i < 25; i++ {
		random = append(random, graph.VertexID(randx.Uint64n(uint64(n), 99, uint64(i), 0)))
	}
	all := make([]graph.VertexID, n)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	return map[string][]graph.VertexID{
		"single":     {17},
		"hub":        {50},
		"duplicates": {7, 7, 7, 200},
		"random25":   random,
		"all":        all,
	}
}

// TestFrontierEquivalence is the query-scoped equivalence table: on every
// backend, for every policy, path length and worker count, predictions of a
// run scoped to Sources=S must be bit-identical to the full run filtered to
// S. Run under -race to also exercise the scoped sharding.
func TestFrontierEquivalence(t *testing.T) {
	g := testGraph(t, 300, 7)
	n := g.NumVertices()

	type tc struct {
		score  string
		policy core.SelectionPolicy
		paths  int
	}
	var cases []tc
	for _, policy := range []core.SelectionPolicy{core.SelectMax, core.SelectMin, core.SelectRnd} {
		cases = append(cases, tc{"linearSum", policy, 2})
	}
	cases = append(cases,
		tc{"geomSum", core.SelectMax, 2},
		tc{"PPR", core.SelectMax, 2},
		tc{"linearSum", core.SelectMax, 3},
		tc{"linearSum", core.SelectRnd, 3},
	)

	for _, c := range cases {
		base := core.Config{
			Score:    mustScore(t, c.score),
			K:        5,
			KLocal:   4,
			ThrGamma: 10,
			Policy:   c.policy,
			Paths:    c.paths,
			Seed:     42,
		}
		full, err := core.ReferenceSnaple(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for setName, sources := range frontierSourceSets(n) {
			want := filterToSources(full, sources)
			cfg := base
			cfg.Sources = sources

			backends := []struct {
				name string
				be   Backend
			}{
				{"serial", Serial{}},
				{"local/w=1", Local{Workers: 1}},
				{"local/w=3", Local{Workers: 3}},
				{"local/w=8", Local{Workers: 8}},
				{"sim", Sim{Nodes: 3, Seed: 9}},
				{"dist/w=1", Dist{InProc: 1, Seed: 5}},
				{"dist/w=3", Dist{InProc: 3, Seed: 5}},
			}
			for _, b := range backends {
				name := fmt.Sprintf("%s/%s/paths=%d/%s/%s", c.score, c.policy, c.paths, setName, b.name)
				t.Run(name, func(t *testing.T) {
					got, st, err := b.be.Predict(g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						for u := range want {
							if !reflect.DeepEqual(want[u], got[u]) {
								t.Fatalf("vertex %d: want %v, got %v", u, want[u], got[u])
							}
						}
						t.Fatal("predictions differ")
					}
					if st.FrontierVertices <= 0 || st.FrontierVertices > n {
						t.Errorf("FrontierVertices = %d", st.FrontierVertices)
					}
					distinct := map[graph.VertexID]bool{}
					for _, s := range sources {
						distinct[s] = true
					}
					if st.ScoredVertices != len(distinct) {
						t.Errorf("ScoredVertices = %d, want %d", st.ScoredVertices, len(distinct))
					}
				})
			}
		}
	}
}

// TestFrontierIsolatedSources pins the degenerate scoped run: sources with
// no edges at all produce empty predictions on every backend (and the dist
// backend ships nothing).
func TestFrontierIsolatedSources(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, Seed: 1, Sources: []graph.VertexID{4}}
	for _, be := range []Backend{Serial{}, Local{}, Sim{}, Dist{InProc: 2}} {
		preds, st, err := be.Predict(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if len(preds) != 5 {
			t.Fatalf("%s: %d rows, want 5", be.Name(), len(preds))
		}
		for u, ps := range preds {
			if len(ps) != 0 {
				t.Fatalf("%s: vertex %d has predictions %v", be.Name(), u, ps)
			}
		}
		if st.ScoredVertices != 1 {
			t.Errorf("%s: ScoredVertices = %d", be.Name(), st.ScoredVertices)
		}
	}
}

// TestFrontierRejectsBadSources pins the error path: a source outside the
// vertex range fails on every backend before any work happens.
func TestFrontierRejectsBadSources(t *testing.T) {
	g := testGraph(t, 20, 1)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, Sources: []graph.VertexID{20}}
	for _, be := range []Backend{Serial{}, Local{}, Sim{}, Dist{InProc: 2}} {
		if _, _, err := be.Predict(g, cfg); err == nil {
			t.Errorf("%s accepted out-of-range source", be.Name())
		}
	}
}
