package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/wire"
)

// ErrPartitionLost is returned (wrapped) by the dist backend when every
// replica of some partition has died: the run cannot produce that
// partition's masters, so it fails within the phase deadline instead of
// hanging. errors.Is(err, ErrPartitionLost) detects it through the wrapping.
var ErrPartitionLost = errors.New("partition lost: all replicas dead")

// distRun is the live state of one distributed prediction: the connections,
// which of them are still believed alive, and which replica currently
// serves each partition. It is the coordinator's failure domain — a
// connection error or a missed phase deadline marks that worker dead here,
// and the run continues on the survivors.
//
// Replication model: with replica factor R, partition p is shipped to the R
// connections groups[p]. Every replica receives identical traffic — the
// step-begin broadcast, the foreign partials routed to the partition's
// masters, the mirror refreshes — and therefore computes identically (all
// folds canonicalise, so per-chunk arrival order is irrelevant). That makes
// every replica equally authoritative at every superstep barrier: promotion
// is just the coordinator choosing a different connection to read from, and
// the results stay bit-identical to the healthy run.
//
// Failover protocol: workers know nothing about replication or failover.
// When a death is detected mid-superstep the coordinator finishes the
// attempt's full exchange with the survivors (they return to their session
// loop cleanly), then re-issues the same KindStepBegin — a complete re-run
// of the superstep on the survivors. Re-running is safe because each step's
// apply overwrites only its own output field, which its gather never reads;
// the aborted attempt's partial garbage is overwritten wholesale. Each
// restart consumes at least one death, so the retry count is bounded by the
// worker count.
type distRun struct {
	dep     *deployment
	conns   []*wire.Conn // nil entries: workers that never connected
	partOf  []int        // conn index -> partition it serves
	groups  [][]int      // partition -> conn indices (its replicas)
	timeout time.Duration
	rt      *router

	mu         sync.Mutex
	alive      []bool
	deadErr    []error
	primary    []bool // conn currently serving its partition
	primaryOf  []int  // partition -> serving conn index, -1 when lost
	nDead      int
	nFailovers int
	newDead    bool // a death since the last beginAttempt
}

// newDistRun wires the run state for len(dep.parts) partitions served by
// conns, where conns[p*replicas : (p+1)*replicas] are partition p's
// replicas. Nil connections (workers that never dialed) are recorded dead
// by the caller via markDead.
func newDistRun(dep *deployment, conns []*wire.Conn, replicas int, timeout time.Duration) *distRun {
	r := &distRun{
		dep:       dep,
		conns:     conns,
		partOf:    make([]int, len(conns)),
		groups:    make([][]int, len(dep.parts)),
		timeout:   timeout,
		alive:     make([]bool, len(conns)),
		deadErr:   make([]error, len(conns)),
		primary:   make([]bool, len(conns)),
		primaryOf: make([]int, len(dep.parts)),
	}
	for i := range conns {
		p := i / replicas
		r.partOf[i] = p
		r.groups[p] = append(r.groups[p], i)
		r.alive[i] = true
	}
	for p := range r.primaryOf {
		r.primaryOf[p] = -1
	}
	r.rt = newRouter(r)
	return r
}

// markDead records worker i's death and closes its connection, which
// unblocks any goroutine still reading or writing it. Idempotent: only the
// first verdict (and its error) counts.
func (r *distRun) markDead(i int, err error) {
	r.mu.Lock()
	if !r.alive[i] {
		r.mu.Unlock()
		return
	}
	r.alive[i] = false
	r.deadErr[i] = err
	r.nDead++
	r.newDead = true
	r.mu.Unlock()
	if c := r.conns[i]; c != nil {
		_ = c.Close()
	}
}

func (r *distRun) isAlive(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive[i]
}

func (r *distRun) isPrimary(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary[i]
}

// sawDeath reports whether any worker died since the last beginAttempt.
func (r *distRun) sawDeath() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newDead
}

func (r *distRun) deadCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nDead
}

func (r *distRun) failoverCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nFailovers
}

// beginAttempt opens one attempt at a phase: it clears the death flag and
// re-elects each partition's serving replica as the first survivor of its
// group — the master-election-over-survivors step of a failover. A change
// of serving replica for a partition that had one is counted as a failover.
func (r *distRun) beginAttempt() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.newDead = false
	for p, group := range r.groups {
		np := -1
		for _, i := range group {
			if r.alive[i] {
				np = i
				break
			}
		}
		if prev := r.primaryOf[p]; prev >= 0 && np >= 0 && np != prev {
			r.nFailovers++
		}
		r.primaryOf[p] = np
	}
	for i := range r.primary {
		r.primary[i] = false
	}
	for _, i := range r.primaryOf {
		if i >= 0 {
			r.primary[i] = true
		}
	}
}

// armDeadline bounds every exchange of the upcoming phase on the live
// connections; the next phase re-arms, so a healthy long run never trips
// it, while a wedged or blackholed worker turns into a liveness verdict
// instead of a hang.
func (r *distRun) armDeadline() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.conns {
		if c == nil || !r.alive[i] {
			continue
		}
		if r.timeout > 0 {
			_ = c.SetDeadline(time.Now().Add(r.timeout))
		} else {
			_ = c.SetDeadline(time.Time{})
		}
	}
}

// eachAlive runs fn once per live connection on its own goroutine; an error
// is a liveness verdict on that worker, not on the run. Each connection is
// touched by exactly one goroutine per direction (the router's sends to
// destinations are serialised separately, by routeDest.mu).
func (r *distRun) eachAlive(fn func(i int, c *wire.Conn) error) {
	r.mu.Lock()
	idx := make([]int, 0, len(r.conns))
	for i := range r.conns {
		if r.alive[i] {
			idx = append(idx, i)
		}
	}
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, i := range idx {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(i, r.conns[i]); err != nil {
				r.markDead(i, err)
			}
		}()
	}
	wg.Wait()
}

// lostErr reports the first partition with no surviving replica, wrapped
// around ErrPartitionLost with the last per-replica error for diagnosis.
// Nil while every partition still has a live replica.
func (r *distRun) lostErr(phase string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for p, group := range r.groups {
		var last error
		lost := true
		for _, i := range group {
			if r.alive[i] {
				lost = false
				break
			}
			if r.deadErr[i] != nil {
				last = r.deadErr[i]
			}
		}
		if lost {
			return fmt.Errorf("engine: dist %s: %w: partition %d (%d replicas; last error: %v)",
				phase, ErrPartitionLost, p, len(group), last)
		}
	}
	return nil
}

// closeAll force-closes every connection — the cancellation path. It does
// not mark anyone dead; the in-flight exchanges fail on their own and the
// verdicts land through the normal liveness machinery.
func (r *distRun) closeAll() {
	for _, c := range r.conns {
		if c != nil {
			_ = c.Close()
		}
	}
}

// killWorker is the chaos suite's coordinator-side fault hook: it cuts
// worker i's connection without telling the liveness tracker, so the death
// is discovered the way a real one is — by the next exchange failing.
func (r *distRun) killWorker(i int) {
	if c := r.conns[i]; c != nil {
		_ = c.Close()
	}
}

// ship sends each worker its partition and waits for every acknowledgement,
// under the ship deadline. Connection failures are liveness verdicts (a
// replica dead at ship fails over like any other death); a worker's typed
// rejection of the job is deterministic — every replica would refuse the
// same way — so it fails the run instead.
func (r *distRun) ship(job wire.JobSpec) error {
	var mu sync.Mutex
	var fatal error
	r.eachAlive(func(i int, c *wire.Conn) error {
		_ = c.SetDeadline(time.Now().Add(shipTimeout))
		defer func() { _ = c.SetDeadline(time.Time{}) }()
		if err := c.Send(&wire.Msg{Kind: wire.KindShip, Version: c.Proto(), Job: job, Part: r.dep.parts[r.partOf[i]]}); err != nil {
			return err
		}
		if _, err := c.Expect(wire.KindReady); err != nil {
			if wire.IsRemoteError(err) {
				mu.Lock()
				if fatal == nil {
					fatal = err
				}
				mu.Unlock()
			}
			return err
		}
		return nil
	})
	return fatal
}

// runStep drives one attempt of one superstep across the live workers. It
// never returns an error: every failure inside is a liveness verdict on one
// connection, and the caller decides between restart and ErrPartitionLost
// from sawDeath/lostErr.
//
// Every live replica takes part in every phase — the step-begin broadcast,
// the partial drain, the final foreign chunks, the refresh round — so each
// attempt leaves every survivor back in its session loop regardless of who
// died mid-attempt; that is what makes the restart a clean re-issue of
// KindStepBegin. Only the serving replica's upstream records are routed;
// the standbys' identical streams are drained and discarded to keep their
// sessions in step.
func (r *distRun) runStep(step core.DistStep, final bool) {
	rt := r.rt
	rt.reset(step)
	// Each exchange phase re-arms the deadline on the survivors: a stalled
	// worker consumes its own phase's window, not the windows of the phases
	// that finish the attempt after its death.
	r.armDeadline()
	r.eachAlive(func(i int, c *wire.Conn) error {
		return c.Send(&wire.Msg{Kind: wire.KindStepBegin, Step: step, Final: final})
	})
	// Drain every live worker's partial stream, routing the serving
	// replicas' records to the master partitions' replica groups as they
	// arrive. Order across sources is irrelevant: all folds canonicalise.
	r.eachAlive(func(i int, c *wire.Conn) error {
		route := r.isPrimary(i)
		if c.Proto() == wire.ProtocolV3 {
			for {
				f, err := c.RecvRaw()
				if err != nil {
					return err
				}
				if f.Kind != wire.KindPartials || f.Step != step {
					return fmt.Errorf("%s for %v during %v partials", f.Kind, f.Step, step)
				}
				if route {
					if err := wire.ForEachPartialRecord(f.Payload, rt.routePartialRaw); err != nil {
						return err
					}
				}
				if f.Final {
					return nil
				}
			}
		}
		m, err := c.Expect(wire.KindPartials)
		if err != nil {
			return err
		}
		if m.Step != step {
			return fmt.Errorf("partials for %v during %v", m.Step, step)
		}
		if route {
			for _, dp := range m.Partials {
				if err := rt.routePartialDec(dp); err != nil {
					return err
				}
			}
		}
		return nil
	})
	// Every v3 destination gets a final-flagged chunk — possibly empty, the
	// stream terminator its apply phase waits for; v2 destinations get their
	// single legacy message.
	r.armDeadline()
	r.eachAlive(func(i int, c *wire.Conn) error {
		dst := &rt.dests[i]
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if c.Proto() == wire.ProtocolV3 {
			return c.SendRaw(wire.KindForeign, step, true, dst.bb.Payload())
		}
		return c.Send(&wire.Msg{Kind: wire.KindForeign, Step: step, Partials: dst.parts})
	})
	if final {
		return
	}
	// Refresh round: serving replicas push fresh master state up, the
	// coordinator fans each vertex's state out to every replica of every
	// partition holding one of its mirrors.
	rt.reset(step)
	r.armDeadline()
	r.eachAlive(func(i int, c *wire.Conn) error {
		route := r.isPrimary(i)
		if c.Proto() == wire.ProtocolV3 {
			for {
				f, err := c.RecvRaw()
				if err != nil {
					return err
				}
				if f.Kind != wire.KindRefresh || f.Step != step {
					return fmt.Errorf("%s for %v during %v refresh", f.Kind, f.Step, step)
				}
				if route {
					if err := wire.ForEachStateRecord(f.Payload, rt.routeStateRaw); err != nil {
						return err
					}
				}
				if f.Final {
					return nil
				}
			}
		}
		m, err := c.Expect(wire.KindRefresh)
		if err != nil {
			return err
		}
		if m.Step != step {
			return fmt.Errorf("refresh for %v during %v", m.Step, step)
		}
		if route {
			for _, vs := range m.States {
				if err := rt.routeStateDec(vs); err != nil {
					return err
				}
			}
		}
		return nil
	})
	r.armDeadline()
	r.eachAlive(func(i int, c *wire.Conn) error {
		dst := &rt.dests[i]
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if c.Proto() == wire.ProtocolV3 {
			return c.SendRaw(wire.KindMirrors, step, true, dst.bb.Payload())
		}
		return c.Send(&wire.Msg{Kind: wire.KindMirrors, Step: step, States: dst.states})
	})
}

// collect gathers one result per partition, failing over to standbys: any
// replica holds identical master state, so the first that answers serves.
// Partitions never share a connection, so the per-partition goroutines
// touch disjoint conns.
func (r *distRun) collect() ([]wire.WorkerResult, error) {
	results := make([]wire.WorkerResult, len(r.groups))
	got := make([]bool, len(r.groups))
	var wg sync.WaitGroup
	for p := range r.groups {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := r.promote(p)
				if i < 0 {
					return
				}
				c := r.conns[i]
				// Re-arm per attempt: a blackholed primary may have eaten
				// the phase's shared deadline window before the standby
				// gets its turn.
				if r.timeout > 0 {
					_ = c.SetDeadline(time.Now().Add(r.timeout))
				}
				if err := c.Send(&wire.Msg{Kind: wire.KindCollect}); err != nil {
					r.markDead(i, err)
					continue
				}
				m, err := c.Expect(wire.KindResult)
				if err != nil {
					r.markDead(i, err)
					continue
				}
				results[p] = m.Result
				got[p] = true
				return
			}
		}()
	}
	wg.Wait()
	for p := range got {
		if !got[p] {
			return nil, r.lostErr("collect")
		}
	}
	return results, nil
}

// promote returns partition p's serving connection, electing the first
// survivor (and counting the failover) when the previous one died.
func (r *distRun) promote(p int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, i := range r.groups[p] {
		if r.alive[i] {
			if prev := r.primaryOf[p]; prev >= 0 && prev != i {
				r.nFailovers++
			}
			r.primaryOf[p] = i
			return i
		}
	}
	r.primaryOf[p] = -1
	return -1
}

// router is the coordinator's streaming exchange state: one destination per
// connection, each holding the outgoing chunk under construction. v3
// records are routed raw — appended verbatim to the destination's batch and
// flushed in fixed-size chunks as they arrive, so the coordinator never
// decodes what it only forwards. v2 (gob) destinations buffer decoded
// values and get their single legacy message after the barrier, bridging
// mixed fleets. A record for partition p fans out to every live replica in
// groups[p] — identical inbound traffic is what keeps the replicas
// interchangeable. A send failure to a destination is a liveness verdict on
// that destination and never propagates to the source being drained.
type router struct {
	step  core.DistStep
	dests []routeDest
	run   *distRun
}

type routeDest struct {
	mu     sync.Mutex
	c      *wire.Conn
	bb     wire.BatchBuilder
	parts  []core.DistPartial // v2 bridge: decoded partials
	states []wire.VertexState // v2 bridge: decoded states
}

func newRouter(r *distRun) *router {
	rt := &router{dests: make([]routeDest, len(r.conns)), run: r}
	for i := range rt.dests {
		rt.dests[i].c = r.conns[i]
		if r.conns[i] == nil {
			continue
		}
		// Chunks flush at routeChunkBytes, but the record that crosses the
		// threshold still has to fit; the slop covers typical record sizes
		// so steady-state routing never grows the builder.
		rt.dests[i].bb.Reset()
		rt.dests[i].bb.Grow(routeChunkBytes + routeChunkBytes/4)
	}
	return rt
}

// reset readies the router for one routing phase of step, keeping buffers.
func (rt *router) reset(step core.DistStep) {
	rt.step = step
	for i := range rt.dests {
		d := &rt.dests[i]
		d.bb.Reset()
		d.parts = d.parts[:0]
		d.states = d.states[:0]
	}
}

// flushLocked sends the destination's chunk when it reached the threshold.
// Caller holds d.mu.
func (rt *router) flushLocked(d *routeDest, kind wire.Kind) error {
	if d.bb.Len() < routeChunkBytes {
		return nil
	}
	err := d.c.SendRaw(kind, rt.step, false, d.bb.Payload())
	d.bb.Reset()
	return err
}

// appendRaw appends one raw record to destination j's batch, flushing at
// the threshold. A flush failure marks j dead; a decode failure (v2
// bridge) is the source's fault and propagates.
func (rt *router) appendRaw(j int, kind wire.Kind, rec []byte) error {
	if !rt.run.isAlive(j) {
		return nil
	}
	d := &rt.dests[j]
	d.mu.Lock()
	if d.c.Proto() == wire.ProtocolV3 {
		d.bb.AppendRaw(rec)
		if err := rt.flushLocked(d, kind); err != nil {
			d.mu.Unlock()
			rt.run.markDead(j, err)
			return nil
		}
		d.mu.Unlock()
		return nil
	}
	var err error
	if kind == wire.KindForeign {
		var dp core.DistPartial
		if dp, err = wire.DecodePartialRecord(rec); err == nil {
			d.parts = append(d.parts, dp)
		}
	} else {
		var vs wire.VertexState
		if vs, err = wire.DecodeStateRecord(rec); err == nil {
			d.states = append(d.states, vs)
		}
	}
	d.mu.Unlock()
	return err
}

// routePartialRaw routes one encoded partial record (from a v3 worker's
// stream) to every replica of its vertex's master partition.
func (rt *router) routePartialRaw(v graph.VertexID, rec []byte) error {
	mp := rt.dep().masterPart[v]
	if mp < 0 {
		return fmt.Errorf("partial for vertex %d, which no partition hosts", v)
	}
	for _, j := range rt.run.groups[mp] {
		if err := rt.appendRaw(j, wire.KindForeign, rec); err != nil {
			return err
		}
	}
	return nil
}

// routePartialDec routes one decoded partial (from a v2 worker's message).
func (rt *router) routePartialDec(dp core.DistPartial) error {
	mp := rt.dep().masterPart[dp.V]
	if mp < 0 {
		return fmt.Errorf("partial for vertex %d, which no partition hosts", dp.V)
	}
	for _, j := range rt.run.groups[mp] {
		if !rt.run.isAlive(j) {
			continue
		}
		d := &rt.dests[j]
		d.mu.Lock()
		if d.c.Proto() == wire.ProtocolV3 {
			d.bb.AppendPartial(&dp)
			if err := rt.flushLocked(d, wire.KindForeign); err != nil {
				d.mu.Unlock()
				rt.run.markDead(j, err)
				continue
			}
		} else {
			d.parts = append(d.parts, dp)
		}
		d.mu.Unlock()
	}
	return nil
}

// routeStateRaw fans one encoded state record out to every replica of every
// partition holding one of the vertex's mirrors.
func (rt *router) routeStateRaw(v graph.VertexID, rec []byte) error {
	for _, mp := range rt.dep().mirrors[v] {
		for _, j := range rt.run.groups[mp] {
			if err := rt.appendRaw(j, wire.KindMirrors, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeStateDec fans one decoded state out to the vertex's mirror replicas.
func (rt *router) routeStateDec(vs wire.VertexState) error {
	for _, mp := range rt.dep().mirrors[vs.V] {
		for _, j := range rt.run.groups[mp] {
			if !rt.run.isAlive(j) {
				continue
			}
			d := &rt.dests[j]
			d.mu.Lock()
			if d.c.Proto() == wire.ProtocolV3 {
				d.bb.AppendState(vs.V, &vs.Data)
				if err := rt.flushLocked(d, wire.KindMirrors); err != nil {
					d.mu.Unlock()
					rt.run.markDead(j, err)
					continue
				}
			} else {
				d.states = append(d.states, vs)
			}
			d.mu.Unlock()
		}
	}
	return nil
}

func (rt *router) dep() *deployment { return rt.run.dep }
