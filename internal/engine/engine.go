// Package engine is the execution layer of the repository: it decouples
// SNAPLE's scoring algorithm (internal/core) from the substrate that runs
// it, the way SNAP pairs one algorithm API with a tuned single-machine core
// and GiGL layers one API over interchangeable local/distributed backends.
//
// Three Backend implementations exist:
//
//   - Serial — the single-threaded reference loop (core.ReferenceSnaple),
//     the test oracle every other backend must match bit for bit;
//   - Local — a parallel shared-memory backend that runs Algorithm 2's
//     three steps directly over the CSR with goroutine sharding over vertex
//     ranges and per-worker scratch buffers (no replication, no cost
//     accounting): the fastest way to predict on one machine;
//   - Sim — the paper's system: the GAS engine over a simulated cluster
//     with vertex-cut partitioning, master/mirror replication and full cost
//     accounting (internal/gas, internal/partition, internal/cluster).
//
// All backends produce bit-identical Predictions for the same (graph,
// Config): truncation and the Γrnd relay selection are hash-keyed draws and
// aggregation folds path values in sorted order, so results never depend on
// scheduling, partitioning or worker count.
package engine

import (
	"fmt"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Stats reports what a prediction run cost. Wall-clock fields are always
// set; the simulated-cluster fields are zero for the Serial and Local
// backends, which model no deployment.
type Stats struct {
	// Engine is the backend's name ("serial", "local" or "sim").
	Engine string
	// Workers is the backend's resolved concurrency bound (the configured
	// value, or GOMAXPROCS when it was 0). Small inputs may use fewer
	// goroutines than the bound.
	Workers int
	// WallSeconds is host wall-clock time of the prediction steps.
	WallSeconds float64
	// EdgesPerSec is the ingest-style throughput NumEdges / WallSeconds, the
	// paper's headline scale metric normalised to this run's graph.
	EdgesPerSec float64
	// AllocBytes / AllocObjects are the process heap bytes and objects
	// allocated during the run (runtime.MemStats deltas; approximate under
	// concurrent load). Set by the serial and local backends, which are
	// engineered to keep the per-vertex steady state allocation-free.
	AllocBytes, AllocObjects int64
	// SimSeconds is the simulated cluster latency (sim backend only).
	SimSeconds float64
	// CrossBytes / CrossMsgs count cross-node traffic (sim backend only).
	CrossBytes, CrossMsgs int64
	// MemPeakBytes is the highest per-node memory footprint (sim only).
	MemPeakBytes int64
	// ReplicationFactor is the vertex-cut's average replicas per vertex
	// (sim backend only).
	ReplicationFactor float64
}

// Backend executes SNAPLE's Algorithm 2 on some substrate. Implementations
// must be bit-identical to core.ReferenceSnaple for every valid Config.
type Backend interface {
	// Name identifies the backend ("serial", "local", "sim").
	Name() string
	// Predict runs Algorithm 2 over g and returns per-vertex predictions
	// with the run's cost. On error the predictions may be partial or nil.
	Predict(g *graph.Digraph, cfg core.Config) (core.Predictions, Stats, error)
}

// Names lists the built-in backend names accepted by New.
func Names() []string { return []string{"local", "serial", "sim"} }

// New returns a backend by name: "local" (or "") for the parallel
// shared-memory backend with the given worker bound, "serial" for the
// reference loop, "sim" for the GAS engine on a default single-node type-II
// cluster partitioned with the given seed. seed only matters to "sim"; for
// a custom deployment construct a Sim directly.
func New(name string, workers int, seed uint64) (Backend, error) {
	switch name {
	case "", "local":
		return Local{Workers: workers}, nil
	case "serial":
		return Serial{}, nil
	case "sim":
		return Sim{Nodes: 1, Workers: workers, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("engine: unknown backend %q (local|serial|sim)", name)
	}
}
