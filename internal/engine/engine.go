// Package engine is the execution layer of the repository: it decouples
// SNAPLE's scoring algorithm (internal/core) from the substrate that runs
// it, the way SNAP pairs one algorithm API with a tuned single-machine core
// and GiGL layers one API over interchangeable local/distributed backends.
//
// Four Backend implementations exist:
//
//   - Serial — the single-threaded reference loop (core.ReferenceSnaple),
//     the test oracle every other backend must match bit for bit;
//   - Local — a parallel shared-memory backend that runs Algorithm 2's
//     three steps directly over the CSR with goroutine sharding over vertex
//     ranges and per-worker scratch buffers (no replication, no cost
//     accounting): the fastest way to predict on one machine;
//   - Sim — the paper's system: the GAS engine over a simulated cluster
//     with vertex-cut partitioning, master/mirror replication and full cost
//     accounting (internal/gas, internal/partition, internal/cluster);
//   - Dist — the same supersteps across real worker processes over TCP
//     (internal/wire, cmd/snaple-worker), with cross-worker traffic
//     measured on the wire instead of simulated.
//
// All backends produce bit-identical Predictions for the same (graph,
// Config): truncation and the Γrnd relay selection are hash-keyed draws and
// aggregation folds path values in sorted order, so results never depend on
// scheduling, partitioning, placement or worker count.
package engine

import (
	"context"
	"fmt"
	"strings"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Stats reports what a prediction run cost. Wall-clock fields are always
// set; the cluster fields are zero for the Serial and Local backends, which
// model no deployment. For the sim backend the cluster fields are simulated
// from the paper's cost model; for the dist backend CrossBytes/CrossMsgs
// and MemPeakBytes are measured — real bytes through real sockets.
type Stats struct {
	// Engine is the backend's name ("serial", "local", "sim" or "dist").
	Engine string
	// Workers is the backend's resolved concurrency bound (the configured
	// value, or GOMAXPROCS when it was 0). Small inputs may use fewer
	// goroutines than the bound. For dist it is the worker-process count.
	Workers int
	// WallSeconds is host wall-clock time of the prediction steps.
	WallSeconds float64
	// EdgesPerSec is the ingest-style throughput NumEdges / WallSeconds, the
	// paper's headline scale metric normalised to this run's graph.
	EdgesPerSec float64
	// AllocBytes / AllocObjects are heap bytes and objects allocated during
	// the run (runtime.MemStats deltas; approximate under concurrent load).
	// Set by the serial and local backends, which are engineered to keep the
	// per-vertex steady state allocation-free; for dist they sum the
	// worker-reported deltas.
	AllocBytes, AllocObjects int64
	// SimSeconds is the simulated cluster latency (sim backend only).
	SimSeconds float64
	// CrossBytes / CrossMsgs count cross-node traffic: simulated from the
	// paper's cost model for sim, measured on the wire for dist (all
	// coordinator↔worker traffic after the initial partition shipping).
	CrossBytes, CrossMsgs int64
	// ShipBytes is the wire traffic of the setup phase that precedes the
	// supersteps: for a resident fleet, the attach handshake (fingerprint
	// plus, on scoped queries, the sparse closure roles) — never partition
	// columns, which is the measurable point of residency. 0 for backends
	// that fold setup into untimed per-run shipping.
	ShipBytes int64
	// MemPeakBytes is the highest per-node memory footprint: simulated for
	// sim, the largest worker-reported live heap for dist.
	MemPeakBytes int64
	// ReplicationFactor is the vertex-cut's average replicas per vertex
	// (sim and dist backends).
	ReplicationFactor float64
	// FrontierVertices is the query closure's vertex count when the run was
	// scoped to a source frontier (core.Config.Sources non-empty): how many
	// vertices any step had to touch. 0 on a full run.
	FrontierVertices int
	// ScoredVertices is how many vertices the final combine step visited —
	// the deduplicated source count on a scoped run, NumVertices on a full
	// run. Together with FrontierVertices it is the work-done measure that
	// lets callers assert a scoped query did less than a full pass without
	// relying on wall-clock noise.
	ScoredVertices int
	// Replicas is the dist backend's replica factor: how many workers each
	// partition was shipped to (1 = no replication). 0 for other backends.
	Replicas int
	// WorkersDead counts the workers the dist coordinator declared dead
	// during the run — a connection error or a missed phase deadline, each
	// followed by a failover to a surviving replica (or, when a partition
	// has none left, by ErrPartitionLost).
	WorkersDead int
	// Failovers counts mid-run primary promotions: a partition whose
	// serving replica died and a survivor took over.
	Failovers int
	// DialRetries counts redialed connect/spawn attempts during fleet
	// setup (bounded retry with backoff; see Dist.DialAttempts).
	DialRetries int
}

// Backend executes SNAPLE's Algorithm 2 on some substrate. Implementations
// must be bit-identical to core.ReferenceSnaple for every valid Config —
// including query-scoped configs (Config.Sources non-empty), whose
// predictions must equal the full run's filtered to the sources.
type Backend interface {
	// Name identifies the backend: one of engine.Names(), which is the
	// single source of truth for the backend set.
	Name() string
	// Predict runs Algorithm 2 over g and returns per-vertex predictions
	// with the run's cost. When cfg.Sources is non-empty the run is scoped
	// to that frontier: only the sources receive predictions, and the
	// backend restricts its work to the frontier closure. On error the
	// predictions may be partial or nil.
	Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error)
}

// ContextBackend is a Backend whose runs can be abandoned mid-flight. The
// dist backend implements it: cancelling the context closes every worker
// connection, so a blocked superstep exchange fails promptly and the
// resident workers are left reusable for the next job.
type ContextBackend interface {
	Backend
	// PredictCtx is Predict under a context. When ctx is cancelled the run
	// returns ctx.Err() as soon as the in-flight exchange unblocks.
	PredictCtx(ctx context.Context, g graph.View, cfg core.Config) (core.Predictions, Stats, error)
}

// PredictWithContext runs be.PredictCtx when the backend supports
// cancellation and falls back to a plain Predict otherwise — the in-memory
// backends have no remote side to abandon, so a context could only be
// checked between steps they finish in microseconds anyway.
func PredictWithContext(ctx context.Context, be Backend, g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	if cb, ok := be.(ContextBackend); ok {
		return cb.PredictCtx(ctx, g, cfg)
	}
	return be.Predict(g, cfg)
}

// Names lists the built-in backend names accepted by New. It is the single
// source of truth for the backend set: every help text and error message
// that enumerates backends (engine.New, cmd/snaple, cmd/snaple-bench) must
// derive from it, so a new backend can never be silently missing from one
// of the lists.
func Names() []string { return []string{"local", "serial", "sim", "dist"} }

// New returns a backend by name: "local" (or "") for the parallel
// shared-memory backend with the given worker bound, "serial" for the
// reference loop, "sim" for the GAS engine on a default single-node type-II
// cluster partitioned with the given seed, "dist" for the multi-process TCP
// backend with the given number of in-process loopback workers (for real
// worker processes or remote addresses construct a Dist directly). seed
// drives partitioning for "sim" and "dist"; for a custom deployment
// construct a Sim or Dist directly.
func New(name string, workers int, seed uint64) (Backend, error) {
	switch name {
	case "", "local":
		return Local{Workers: workers}, nil
	case "serial":
		return Serial{}, nil
	case "sim":
		return Sim{Nodes: 1, Workers: workers, Seed: seed}, nil
	case "dist":
		return Dist{InProc: workers, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("engine: unknown backend %q (%s)", name, strings.Join(Names(), "|"))
	}
}
