package engine

import (
	"reflect"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
)

func localCfg(t testing.TB) core.Config {
	t.Helper()
	return core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, Seed: 1}
}

func TestLocalEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err := Local{Workers: 4}.Predict(g, localCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 0 {
		t.Fatalf("predictions on empty graph: %v", preds)
	}
}

func TestLocalEdgelessVertices(t *testing.T) {
	g, err := graph.FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err := Local{}.Predict(g, localCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for u, ps := range preds {
		if ps != nil {
			t.Errorf("vertex %d: unexpected predictions %v", u, ps)
		}
	}
}

// TestLocalMoreWorkersThanVertices covers worker counts exceeding both the
// vertex count and the chunking threshold.
func TestLocalMoreWorkersThanVertices(t *testing.T) {
	g := testGraph(t, 40, 5)
	cfg := localCfg(t)
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 64} {
		got, _, err := Local{Workers: workers}.Predict(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d differs from reference", workers)
		}
	}
}

// TestLocalLargerThanChunk forces the parallel path (n > chunkVerts) so the
// chunk-claiming loop's boundary arithmetic is exercised, including the
// final partial chunk.
func TestLocalLargerThanChunk(t *testing.T) {
	n := chunkVerts*2 + 37
	g := testGraph(t, n, 13)
	cfg := localCfg(t)
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Local{Workers: 4}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("chunked parallel run differs from reference")
	}
}
