package engine

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/randx"
	"snaple/internal/wire"
)

// Dist runs Algorithm 2 across real worker processes connected over TCP —
// the scale-out half of the paper, with an actual network where the sim
// backend has a cost model. The coordinator (this type) vertex-cuts the
// graph with internal/partition, ships one partition to each worker
// (cmd/snaple-worker speaking the internal/wire protocol), then drives the
// same GAS supersteps the sim backend runs: workers gather locally, partials
// for remotely-mastered vertices are routed through the coordinator to the
// master's worker, masters apply, and refreshed state is routed back to the
// mirror copies. Per-worker top-k predictions are merged at the end — each
// vertex has exactly one master, and every fold along the way is
// order-independent, so the result is bit-identical to Serial, Local and Sim
// for any worker count.
//
// Stats.CrossBytes and Stats.CrossMsgs are measured on the wire (all
// coordinator↔worker traffic after the initial partition shipping, which —
// like the sim backend's graph load — the paper's timings exclude), not
// simulated.
//
// Three ways to get workers, in priority order:
//
//   - Addrs: connect to already-running snaple-worker processes (a real
//     cluster, or the CI cluster-smoke script's loopback fleet);
//   - Spawn: fork N snaple-worker processes on loopback and tear them down
//     with the run (requires the binary, see WorkerBin);
//   - otherwise InProc in-process loopback workers (still real TCP and real
//     wire frames through the kernel, just not a separate OS process) — the
//     zero-config default used by engine.New, Predict and the equivalence
//     tests.
type Dist struct {
	// Addrs connects to running workers ("host:port" each). Takes priority
	// over Spawn/InProc.
	Addrs []string
	// Spawn forks this many snaple-worker processes on loopback for the
	// duration of the run.
	Spawn int
	// WorkerBin locates the worker binary for Spawn (default: "snaple-worker"
	// resolved through PATH).
	WorkerBin string
	// InProc serves this many in-process loopback workers when neither Addrs
	// nor Spawn is given (0 = 2).
	InProc int
	// Strategy selects the vertex-cut, one partition per worker group
	// (nil = partition.HashEdge{Seed}).
	Strategy partition.Strategy
	// Seed drives partitioning and master election.
	Seed uint64
	// Replicas ships each partition to this many workers (0 or 1 = no
	// replication). With R > 1 the available workers divide into
	// avail/R groups of R replicas each; every replica receives identical
	// traffic and computes identically, so when a worker dies the run fails
	// over to a surviving replica and completes with bit-identical results.
	// Only when all R replicas of a partition are gone does the run fail,
	// with ErrPartitionLost. Values above the worker count are clamped.
	Replicas int
	// StepTimeout bounds each superstep (and the final collect) per run: a
	// wedged worker or a blackholed connection is then declared dead at the
	// deadline — a failover (or, with no replicas left, ErrPartitionLost)
	// instead of a hang. 0 means the 10-minute default; negative disables
	// the bound (for legitimately enormous supersteps).
	StepTimeout time.Duration
	// DialAttempts bounds connection attempts per worker during setup:
	// transient dial and spawn-handshake failures are retried with
	// exponential backoff and jitter up to this many tries (0 = 3).
	DialAttempts int
	// DialBackoff is the initial retry backoff, doubled after each failed
	// attempt with jitter (0 = 150ms).
	DialBackoff time.Duration
	// Proto pins the wire protocol: 0 negotiates (v3 preferred, per-worker
	// gob fallback for legacy binaries), wire.ProtocolV2 forces gob,
	// wire.ProtocolV3 requires v3 and fails on a legacy worker.
	Proto int
	// Compress requests per-frame flate compression on v3 connections
	// (subject to each worker granting it) — a cross-rack bandwidth trade.
	Compress bool

	// hookStep, when set (chaos tests only), runs before each superstep
	// attempt with the step's index and the live run state — the
	// coordinator-side fault hook that kills worker W at superstep S.
	hookStep func(si int, r *distRun)
}

// routeChunkBytes is the coordinator's flush threshold while routing v3
// records: the same fixed chunk size workers stream partials up in.
const routeChunkBytes = 64 << 10

// distMode is the resolved connection mode; mode() is the single source of
// the Addrs > Spawn > InProc priority and the in-proc default, consulted by
// both workerCount and connect so the two can never drift.
type distMode int

const (
	modeAddrs distMode = iota
	modeSpawn
	modeInProc
)

// mode resolves the connection mode and its worker count.
func (d Dist) mode() (distMode, int) {
	switch {
	case len(d.Addrs) > 0:
		return modeAddrs, len(d.Addrs)
	case d.Spawn > 0:
		return modeSpawn, d.Spawn
	default:
		n := d.InProc
		if n <= 0 {
			n = 2
		}
		return modeInProc, n
	}
}

// shipTimeout bounds the ship/ready handshake per worker. Generous — a big
// subgraph legitimately takes a while to encode and load — but finite: a
// worker that is busy with another coordinator's session will never answer
// at all, and that must surface as an error, not a hang.
const shipTimeout = 2 * time.Minute

// Name implements Backend.
func (Dist) Name() string { return "dist" }

// workerCount resolves how many workers the run will use.
func (d Dist) workerCount() int {
	_, n := d.mode()
	return n
}

// stepTimeout resolves the per-superstep bound (0 = unbounded).
func (d Dist) stepTimeout() time.Duration {
	switch {
	case d.StepTimeout < 0:
		return 0
	case d.StepTimeout == 0:
		return 10 * time.Minute
	default:
		return d.StepTimeout
	}
}

// replicaCount resolves the replica factor against the available workers.
func (d Dist) replicaCount(avail int) int {
	r := d.Replicas
	if r <= 0 {
		r = 1
	}
	if r > avail {
		r = avail
	}
	return r
}

// Predict implements Backend.
func (d Dist) Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	return d.PredictCtx(context.Background(), g, cfg)
}

// PredictCtx implements ContextBackend: Predict under a context. Cancelling
// ctx closes every worker connection, so whatever exchange is in flight
// fails promptly and the call returns ctx.Err() — the resident workers see
// their session end and stay reusable for the next job.
func (d Dist) PredictCtx(ctx context.Context, g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	avail := d.workerCount()
	reps := d.replicaCount(avail)
	st := Stats{Engine: "dist", Workers: avail, Replicas: reps}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, st, err
	}
	job, err := wire.JobFromConfig(cfg)
	if err != nil {
		return nil, st, err
	}

	// Query scope: the coordinator computes the frontier closure once, then
	// ships only the partitions that hold at least one closure edge —
	// everything any superstep's gather can touch — plus per-local scope
	// masks so workers gate their gathers without ever seeing the closure.
	frontier, err := core.NewFrontier(g, cfg)
	if err != nil {
		return nil, st, err
	}
	st.FrontierVertices = frontier.Size()
	st.ScoredVertices = g.NumVertices()
	if frontier != nil {
		st.ScoredVertices = frontier.Pred.Len()
	}

	// R replicas per partition means avail/R partitions: capacity pays for
	// availability, the trade named in the paper's scale-out story.
	dep, err := d.deploy(g, avail/reps, frontier)
	if err != nil {
		return nil, st, err
	}
	st.ReplicationFactor = dep.replicationFactor()
	if len(dep.parts) == 0 {
		// Scoped run whose closure touches no edge anywhere (isolated
		// sources): nothing to ship and nothing to compute.
		return make(core.Predictions, g.NumVertices()), st, nil
	}
	need := len(dep.parts) * reps
	st.Workers = need

	// With replication a worker that never connects is a degraded start,
	// not a failed run: it is recorded dead and its group's survivors carry
	// the partition.
	conns, dialErrs, inproc, cleanup, retries, err := d.connect(need, reps > 1)
	st.DialRetries = retries
	if err != nil {
		return nil, st, fmt.Errorf("engine: dist: %w", err)
	}
	defer cleanup()

	// The run state (and its router) exists before the ship so the routing
	// chunk buffers are paid for during setup, not inside the measured
	// supersteps.
	run := newDistRun(dep, conns, reps, d.stepTimeout())
	for i, derr := range dialErrs {
		if derr != nil {
			run.markDead(i, derr)
		}
	}
	fail := func(err error) (core.Predictions, Stats, error) {
		st.WorkersDead = run.deadCount()
		st.Failovers = run.failoverCount()
		if ce := ctx.Err(); ce != nil {
			// The deaths were self-inflicted: cancellation closed the
			// connections. The caller asked for this outcome — report it as
			// theirs, not as a fleet failure.
			err = ce
		}
		return nil, st, err
	}

	// Cancellation watcher: closing every connection makes whatever
	// exchange is in flight fail within one read/write, which drains the
	// run through its normal failure paths.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			run.closeAll()
		case <-watchDone:
		}
	}()

	// Ship the partitions (the distributed graph load, untimed like every
	// other backend's setup) and wait for the acknowledgements. The
	// handshake runs under a deadline: a worker busy with another session
	// never reads the ship, and without the bound that is a silent hang,
	// not an error (workers serve one session at a time).
	run.beginAttempt()
	if err := run.lostErr("connect"); err != nil {
		return fail(err)
	}
	if err := run.ship(job); err != nil {
		return fail(fmt.Errorf("engine: dist ship: %w", err))
	}
	if err := run.lostErr("ship"); err != nil {
		return fail(err)
	}

	// Everything from here on is the prediction itself: timed, and its
	// traffic is the measured cross-worker cost.
	base := make([]wire.Counters, len(conns))
	for i, c := range conns {
		if c != nil {
			base[i] = c.Counters()
		}
	}
	start := time.Now()

	// A scoped superstep with no relevant gather edge on any kept partition
	// is skipped entirely — no messages, no barrier (see
	// deployment.stepHasWork). The final flag moves to the last superstep
	// that actually runs, so its refresh round is elided like a full run's.
	steps := make([]core.DistStep, 0, 4)
	for _, step := range core.DistSteps(cfg.Paths) {
		if dep.stepHasWork(step) {
			steps = append(steps, step)
		}
	}
	// Each iteration is one attempt at one superstep. A death mid-attempt
	// aborts nothing visible: the attempt still completes its full exchange
	// with the survivors, then the same step is re-issued to them from the
	// top (see distRun.runStep for why the re-run is bit-identical). Every
	// restart consumes a death, so the loop is bounded by the worker count.
	for si := 0; si < len(steps); {
		step := steps[si]
		final := si == len(steps)-1
		if d.hookStep != nil {
			d.hookStep(si, run)
		}
		run.beginAttempt()
		run.runStep(step, final)
		if run.sawDeath() {
			if err := run.lostErr(fmt.Sprintf("%v", step)); err != nil {
				return fail(err)
			}
			continue
		}
		si++
	}

	// Collect: each partition's serving replica reports its masters' top-k,
	// failing over to standbys — the merge needs no further folding because
	// masters are disjoint across partitions.
	results, err := run.collect()
	if err != nil {
		return fail(err)
	}
	pred := make(core.Predictions, g.NumVertices())
	for p := range results {
		res := &results[p]
		for _, vp := range res.Preds {
			pred[vp.V] = vp.Preds
		}
		if inproc {
			// Loopback workers share this process, so each worker's MemStats
			// delta already covers everyone (coordinator included): summing
			// would count the same heap N times. The max is the closest
			// honest process-wide figure.
			st.AllocBytes = max(st.AllocBytes, res.Stats.AllocBytes)
			st.AllocObjects = max(st.AllocObjects, res.Stats.AllocObjects)
		} else {
			st.AllocBytes += res.Stats.AllocBytes
			st.AllocObjects += res.Stats.AllocObjects
		}
		if res.Stats.HeapBytes > st.MemPeakBytes {
			st.MemPeakBytes = res.Stats.HeapBytes
		}
	}

	st.WallSeconds = time.Since(start).Seconds()
	if st.WallSeconds > 0 {
		st.EdgesPerSec = float64(g.NumEdges()) / st.WallSeconds
	}
	for i, c := range conns {
		if c == nil {
			continue
		}
		delta := c.Counters().Sub(base[i])
		st.CrossBytes += delta.BytesIn + delta.BytesOut
		st.CrossMsgs += delta.MsgsIn + delta.MsgsOut
	}
	st.WorkersDead = run.deadCount()
	st.Failovers = run.failoverCount()
	return pred, st, nil
}

// deployment is the coordinator's routing state: the shippable partition
// payloads plus, per global vertex, the partition mastering it and the
// partitions holding its mirror copies. On a query-scoped run only the
// partitions intersecting the frontier closure exist here — the rest of the
// vertex-cut is never shipped.
type deployment struct {
	parts      []wire.Partition
	masterPart []int32   // per vertex; -1 when the vertex has no edges
	mirrors    [][]int32 // per vertex: replica partitions excluding the master
	replicas   int       // total replica count
	present    int       // vertices with at least one replica
	frontier   *core.Frontier
	// stepEdges counts, per superstep, the gather edges inside the step's
	// frontier set across all kept partitions (scoped runs only): a step
	// with zero is skipped outright.
	stepEdges map[core.DistStep]int
}

func (d *deployment) replicationFactor() float64 {
	if d.present == 0 {
		return 0
	}
	return float64(d.replicas) / float64(d.present)
}

// stepHasWork reports whether any kept partition gathers anything in step.
// Always true on a full run.
func (d *deployment) stepHasWork(step core.DistStep) bool {
	return d.frontier == nil || d.stepEdges[step] > 0
}

// deploy vertex-cuts g into one partition per worker and elects masters the
// same deterministic way gas.Distribute does. On a query-scoped run
// (frontier non-nil) partitions holding no closure edge are dropped before
// shipping, the survivors renumbered densely, and each kept partition
// carries its locals' scope masks; election then runs over the surviving
// replicas — placement never changes results, so the scoped predictions
// still match the full run's bit for bit.
func (d Dist) deploy(g graph.View, nw int, frontier *core.Frontier) (*deployment, error) {
	strat := d.Strategy
	if strat == nil {
		strat = partition.HashEdge{Seed: d.Seed}
	}
	assign, err := strat.Partition(g, nw)
	if err != nil {
		return nil, err
	}

	type rawEdge struct{ u, v graph.VertexID }
	rawEdges := make([][]rawEdge, nw)
	{
		i := 0
		g.ForEachEdge(func(u, v graph.VertexID) {
			p := assign.EdgeTo[i]
			rawEdges[p] = append(rawEdges[p], rawEdge{u, v})
			i++
		})
	}
	if frontier != nil {
		// An edge matters to some superstep iff its source is in the
		// truncation closure (the largest set); a partition with none can
		// never contribute a byte to the sources' predictions.
		kept := rawEdges[:0]
		for _, edges := range rawEdges {
			for _, e := range edges {
				if frontier.InTrunc(e.u) {
					kept = append(kept, edges)
					break
				}
			}
		}
		rawEdges = kept
		nw = len(rawEdges)
	}

	dep := &deployment{
		parts:      make([]wire.Partition, nw),
		masterPart: make([]int32, g.NumVertices()),
		mirrors:    make([][]int32, g.NumVertices()),
		frontier:   frontier,
		stepEdges:  make(map[core.DistStep]int),
	}
	for v := range dep.masterPart {
		dep.masterPart[v] = -1
	}
	index := make([]map[graph.VertexID]int32, nw)
	for p := 0; p < nw; p++ {
		seen := make(map[graph.VertexID]struct{}, len(rawEdges[p]))
		for _, e := range rawEdges[p] {
			seen[e.u] = struct{}{}
			seen[e.v] = struct{}{}
		}
		locals := make([]graph.VertexID, 0, len(seen))
		for v := range seen {
			locals = append(locals, v)
		}
		sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
		idx := make(map[graph.VertexID]int32, len(locals))
		deg := make([]int32, len(locals))
		for i, v := range locals {
			idx[v] = int32(i)
			deg[i] = int32(g.OutDegree(v))
		}
		edgeSrc := make([]int32, len(rawEdges[p]))
		edgeDst := make([]int32, len(rawEdges[p]))
		for i, e := range rawEdges[p] {
			edgeSrc[i] = idx[e.u]
			edgeDst[i] = idx[e.v]
		}
		index[p] = idx
		dep.parts[p] = wire.Partition{
			Part: p, NumVertices: g.NumVertices(),
			Locals: locals, Deg: deg,
			EdgeSrc: edgeSrc, EdgeDst: edgeDst,
			IsMaster:  make([]bool, len(locals)),
			HasRemote: make([]bool, len(locals)),
		}
		if frontier != nil {
			scope := make([]uint8, len(locals))
			for i, v := range locals {
				scope[i] = frontier.ScopeMask(v)
			}
			dep.parts[p].Scope = scope
			allSteps := []core.DistStep{core.DistTruncate, core.DistRelays,
				core.DistCombine, core.DistTwoHop, core.DistCombine3}
			for _, e := range rawEdges[p] {
				mask := scope[idx[e.u]]
				for _, step := range allSteps {
					if mask&step.ScopeBit() != 0 {
						dep.stepEdges[step]++
					}
				}
			}
		}
	}

	// Master election among each vertex's replicas, in ascending partition
	// order — the same deterministic draw gas.Distribute uses. (Placement
	// never changes results, only where each apply runs.)
	type vp struct {
		v graph.VertexID
		p int32
	}
	var pairs []vp
	for p := 0; p < nw; p++ {
		for _, v := range dep.parts[p].Locals {
			pairs = append(pairs, vp{v, int32(p)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].p < pairs[j].p
	})
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].v == pairs[i].v {
			j++
		}
		v := pairs[i].v
		replicas := pairs[i:j]
		mp := replicas[randx.Uint64n(uint64(len(replicas)), d.Seed, uint64(v), 0xA5)].p
		dep.masterPart[v] = mp
		mi := index[mp][v]
		dep.parts[mp].IsMaster[mi] = true
		dep.parts[mp].HasRemote[mi] = len(replicas) > 1
		if len(replicas) > 1 {
			mirrors := make([]int32, 0, len(replicas)-1)
			for _, r := range replicas {
				if r.p != mp {
					mirrors = append(mirrors, r.p)
				}
			}
			dep.mirrors[v] = mirrors
		}
		dep.replicas += len(replicas)
		dep.present++
		i = j
	}
	return dep, nil
}

// dialAttempts resolves the per-worker connection attempt bound.
func (d Dist) dialAttempts() int {
	if d.DialAttempts > 0 {
		return d.DialAttempts
	}
	return 3
}

// dialBackoffBase resolves the initial retry backoff.
func (d Dist) dialBackoffBase() time.Duration {
	if d.DialBackoff > 0 {
		return d.DialBackoff
	}
	return 150 * time.Millisecond
}

// retryableDial reports whether a connect failure is worth another attempt:
// network-layer trouble (timeouts, refusals, resets) and torn connections
// are transient; a peer's deliberate rejection — a typed error frame, a
// protocol pin against a legacy worker — is deterministic and never is.
func retryableDial(err error) bool {
	if wire.IsRemoteError(err) {
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// withRetry runs attempt up to dialAttempts times with exponential backoff
// and jitter between tries (the jitter keeps a fleet-wide reconnect from
// stampeding one worker). always retries every failure — for spawn, where
// each attempt forks a fresh process and any failure is worth a retry;
// otherwise only retryableDial failures are retried. Returns how many
// retries ran and the final error.
func (d Dist) withRetry(always bool, attempt func() error) (retries int, err error) {
	backoff := d.dialBackoffBase()
	attempts := d.dialAttempts()
	for i := 0; ; i++ {
		err = attempt()
		if err == nil || i+1 >= attempts || (!always && !retryableDial(err)) {
			return retries, err
		}
		retries++
		sleep := backoff
		if j := backoff / 2; j > 0 {
			sleep += rand.N(j)
		}
		time.Sleep(sleep)
		backoff *= 2
	}
}

// connect establishes connections to n workers according to the configured
// mode, returning a cleanup that closes connections and reclaims whatever
// was started. n is at most the mode's worker count — a query-scoped run
// that dropped partitions needs fewer workers (the first n addresses, or n
// spawned/loopback workers). Transient failures are retried with backoff;
// with tolerate set (replicated runs) a worker that stays unreachable comes
// back as a nil connection with its error in dialErrs, for the caller to
// record as dead — without it (no replicas to absorb the loss) any failure
// is fatal. inproc reports that the workers share this process (the
// loopback default), which changes how worker memory reports aggregate.
// cleanup is non-nil even on error.
func (d Dist) connect(n int, tolerate bool) (conns []*wire.Conn, dialErrs []error, inproc bool, cleanup func(), retries int, err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	fail := func(err error) ([]*wire.Conn, []error, bool, func(), int, error) {
		cleanup()
		return nil, nil, false, func() {}, retries, err
	}
	addConn := func(addr string) error {
		var c *wire.Conn
		r, err := d.withRetry(false, func() error {
			var derr error
			c, derr = wire.DialWith(addr, wire.DialOptions{Proto: d.Proto, Compress: d.Compress})
			return derr
		})
		retries += r
		if err != nil {
			if tolerate {
				conns = append(conns, nil)
				dialErrs = append(dialErrs, fmt.Errorf("engine: dist dial %s: %w", addr, err))
				return nil
			}
			return err
		}
		closers = append(closers, func() { c.Close() })
		conns = append(conns, c)
		dialErrs = append(dialErrs, nil)
		return nil
	}

	mode, avail := d.mode()
	if n > avail {
		return fail(fmt.Errorf("need %d workers but the deployment provides %d", n, avail))
	}
	switch mode {
	case modeAddrs:
		// A worker serves one session at a time, so dialing the same worker
		// twice deadlocks the ship handshake (caught late by shipTimeout);
		// reject the footgun up front instead.
		seen := make(map[string]struct{}, len(d.Addrs))
		for _, addr := range d.Addrs[:n] {
			if _, dup := seen[addr]; dup {
				return fail(fmt.Errorf("duplicate worker address %q: each worker serves one session at a time", addr))
			}
			seen[addr] = struct{}{}
			if err := addConn(addr); err != nil {
				return fail(err)
			}
		}
	case modeSpawn:
		bin := d.WorkerBin
		if bin == "" {
			bin = "snaple-worker"
		}
		path, err := exec.LookPath(bin)
		if err != nil {
			return fail(fmt.Errorf("worker binary %q not found (build cmd/snaple-worker or set WorkerBin): %w", bin, err))
		}
		for i := 0; i < n; i++ {
			// One attempt = one fresh process plus its handshake; a failed
			// attempt reaps its process before the retry, so a flaky worker
			// start never leaks an orphan.
			var c *wire.Conn
			var stop func()
			r, err := d.withRetry(true, func() error {
				addr, s, serr := spawnWorker(path)
				if serr != nil {
					return serr
				}
				cc, derr := wire.DialWith(addr, wire.DialOptions{Proto: d.Proto, Compress: d.Compress})
				if derr != nil {
					s()
					return derr
				}
				c, stop = cc, s
				return nil
			})
			retries += r
			if err != nil {
				if tolerate {
					conns = append(conns, nil)
					dialErrs = append(dialErrs, fmt.Errorf("engine: dist spawn: %w", err))
					continue
				}
				return fail(err)
			}
			closers = append(closers, stop, func() { c.Close() })
			conns = append(conns, c)
			dialErrs = append(dialErrs, nil)
		}
	default:
		inproc = true
		for i := 0; i < n; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			go func() { _ = wire.Serve(l, nil) }()
			closers = append(closers, func() { l.Close() })
			if err := addConn(l.Addr().String()); err != nil {
				return fail(err)
			}
		}
	}
	return conns, dialErrs, inproc, cleanup, retries, nil
}

// spawnWorker forks one snaple-worker on an ephemeral loopback port and
// parses the address it announces on stdout ("listening <addr>"). The
// worker's stderr passes through, so a crashed worker leaves its diagnostics
// next to the coordinator's EOF error.
func spawnWorker(bin string) (addr string, stop func(), err error) {
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	stop = func() {
		// Kill first so the stdout scanner (below) hits EOF, then cmd.Wait —
		// not Process.Wait — to release the StdoutPipe.
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		fields := strings.Fields(line)
		if !ok || len(fields) != 2 || fields[0] != "listening" {
			stop()
			return "", nil, fmt.Errorf("spawn %s: unexpected announcement %q", bin, line)
		}
		return fields[1], stop, nil
	case <-time.After(10 * time.Second):
		stop()
		return "", nil, fmt.Errorf("spawn %s: worker never announced its address", bin)
	}
}
