package engine

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/randx"
	"snaple/internal/wire"
)

// Dist runs Algorithm 2 across real worker processes connected over TCP —
// the scale-out half of the paper, with an actual network where the sim
// backend has a cost model. The coordinator (this type) vertex-cuts the
// graph with internal/partition, ships one partition to each worker
// (cmd/snaple-worker speaking the internal/wire protocol), then drives the
// same GAS supersteps the sim backend runs: workers gather locally, partials
// for remotely-mastered vertices are routed through the coordinator to the
// master's worker, masters apply, and refreshed state is routed back to the
// mirror copies. Per-worker top-k predictions are merged at the end — each
// vertex has exactly one master, and every fold along the way is
// order-independent, so the result is bit-identical to Serial, Local and Sim
// for any worker count.
//
// Stats.CrossBytes and Stats.CrossMsgs are measured on the wire (all
// coordinator↔worker traffic after the initial partition shipping, which —
// like the sim backend's graph load — the paper's timings exclude), not
// simulated.
//
// Three ways to get workers, in priority order:
//
//   - Addrs: connect to already-running snaple-worker processes (a real
//     cluster, or the CI cluster-smoke script's loopback fleet);
//   - Spawn: fork N snaple-worker processes on loopback and tear them down
//     with the run (requires the binary, see WorkerBin);
//   - otherwise InProc in-process loopback workers (still real TCP and real
//     wire frames through the kernel, just not a separate OS process) — the
//     zero-config default used by engine.New, Predict and the equivalence
//     tests.
type Dist struct {
	// Addrs connects to running workers ("host:port" each). Takes priority
	// over Spawn/InProc.
	Addrs []string
	// Spawn forks this many snaple-worker processes on loopback for the
	// duration of the run.
	Spawn int
	// WorkerBin locates the worker binary for Spawn (default: "snaple-worker"
	// resolved through PATH).
	WorkerBin string
	// InProc serves this many in-process loopback workers when neither Addrs
	// nor Spawn is given (0 = 2).
	InProc int
	// Strategy selects the vertex-cut, one partition per worker
	// (nil = partition.HashEdge{Seed}).
	Strategy partition.Strategy
	// Seed drives partitioning and master election.
	Seed uint64
	// StepTimeout bounds each superstep (and the final collect) per run: a
	// wedged worker or a blackholed connection then fails the Predict call
	// instead of hanging it forever. 0 means the 10-minute default; negative
	// disables the bound (for legitimately enormous supersteps).
	StepTimeout time.Duration
	// Proto pins the wire protocol: 0 negotiates (v3 preferred, per-worker
	// gob fallback for legacy binaries), wire.ProtocolV2 forces gob,
	// wire.ProtocolV3 requires v3 and fails on a legacy worker.
	Proto int
	// Compress requests per-frame flate compression on v3 connections
	// (subject to each worker granting it) — a cross-rack bandwidth trade.
	Compress bool
}

// routeChunkBytes is the coordinator's flush threshold while routing v3
// records: the same fixed chunk size workers stream partials up in.
const routeChunkBytes = 64 << 10

// distMode is the resolved connection mode; mode() is the single source of
// the Addrs > Spawn > InProc priority and the in-proc default, consulted by
// both workerCount and connect so the two can never drift.
type distMode int

const (
	modeAddrs distMode = iota
	modeSpawn
	modeInProc
)

// mode resolves the connection mode and its worker count.
func (d Dist) mode() (distMode, int) {
	switch {
	case len(d.Addrs) > 0:
		return modeAddrs, len(d.Addrs)
	case d.Spawn > 0:
		return modeSpawn, d.Spawn
	default:
		n := d.InProc
		if n <= 0 {
			n = 2
		}
		return modeInProc, n
	}
}

// shipTimeout bounds the ship/ready handshake per worker. Generous — a big
// subgraph legitimately takes a while to encode and load — but finite: a
// worker that is busy with another coordinator's session will never answer
// at all, and that must surface as an error, not a hang.
const shipTimeout = 2 * time.Minute

// Name implements Backend.
func (Dist) Name() string { return "dist" }

// workerCount resolves how many workers the run will use.
func (d Dist) workerCount() int {
	_, n := d.mode()
	return n
}

// stepTimeout resolves the per-superstep bound (0 = unbounded).
func (d Dist) stepTimeout() time.Duration {
	switch {
	case d.StepTimeout < 0:
		return 0
	case d.StepTimeout == 0:
		return 10 * time.Minute
	default:
		return d.StepTimeout
	}
}

// armDeadline bounds every exchange of the upcoming phase on all
// connections; the next phase re-arms, so a healthy long run never trips it.
func (d Dist) armDeadline(conns []*wire.Conn) {
	t := d.stepTimeout()
	for _, c := range conns {
		if t > 0 {
			_ = c.SetDeadline(time.Now().Add(t))
		} else {
			_ = c.SetDeadline(time.Time{})
		}
	}
}

// Predict implements Backend.
func (d Dist) Predict(g *graph.Digraph, cfg core.Config) (core.Predictions, Stats, error) {
	st := Stats{Engine: "dist", Workers: d.workerCount()}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, st, err
	}
	job, err := wire.JobFromConfig(cfg)
	if err != nil {
		return nil, st, err
	}

	// Query scope: the coordinator computes the frontier closure once, then
	// ships only the partitions that hold at least one closure edge —
	// everything any superstep's gather can touch — plus per-local scope
	// masks so workers gate their gathers without ever seeing the closure.
	frontier, err := core.NewFrontier(g, cfg)
	if err != nil {
		return nil, st, err
	}
	st.FrontierVertices = frontier.Size()
	st.ScoredVertices = g.NumVertices()
	if frontier != nil {
		st.ScoredVertices = frontier.Pred.Len()
	}

	dep, err := d.deploy(g, d.workerCount(), frontier)
	if err != nil {
		return nil, st, err
	}
	st.ReplicationFactor = dep.replicationFactor()
	if len(dep.parts) == 0 {
		// Scoped run whose closure touches no edge anywhere (isolated
		// sources): nothing to ship and nothing to compute.
		return make(core.Predictions, g.NumVertices()), st, nil
	}
	st.Workers = len(dep.parts)

	conns, inproc, cleanup, err := d.connect(len(dep.parts))
	if err != nil {
		return nil, st, fmt.Errorf("engine: dist: %w", err)
	}
	defer cleanup()

	// The router exists before the ship so its chunk buffers are paid for
	// during setup, not inside the measured supersteps.
	rt := newRouter(conns, dep)

	// Ship the partitions (the distributed graph load, untimed like every
	// other backend's setup) and wait for every worker to acknowledge. The
	// handshake runs under a deadline: a worker busy with another session
	// never reads the ship, and without the bound that is a silent hang, not
	// an error (workers serve one session at a time).
	err = eachConn(conns, func(i int, c *wire.Conn) error {
		_ = c.SetDeadline(time.Now().Add(shipTimeout))
		defer func() { _ = c.SetDeadline(time.Time{}) }()
		if err := c.Send(&wire.Msg{Kind: wire.KindShip, Version: c.Proto(), Job: job, Part: dep.parts[i]}); err != nil {
			return err
		}
		_, err := c.Expect(wire.KindReady)
		return err
	})
	if err != nil {
		return nil, st, fmt.Errorf("engine: dist ship: %w", err)
	}

	// Everything from here on is the prediction itself: timed, and its
	// traffic is the measured cross-worker cost.
	base := make([]wire.Counters, len(conns))
	for i, c := range conns {
		base[i] = c.Counters()
	}
	start := time.Now()

	// A scoped superstep with no relevant gather edge on any kept partition
	// is skipped entirely — no messages, no barrier (see
	// deployment.stepHasWork). The final flag moves to the last superstep
	// that actually runs, so its refresh round is elided like a full run's.
	steps := make([]core.DistStep, 0, 4)
	for _, step := range core.DistSteps(cfg.Paths) {
		if dep.stepHasWork(step) {
			steps = append(steps, step)
		}
	}
	for si, step := range steps {
		final := si == len(steps)-1
		d.armDeadline(conns)
		if err := d.runStep(conns, rt, step, final); err != nil {
			return nil, st, fmt.Errorf("engine: dist %v: %w", step, err)
		}
	}

	// Collect: each master's top-k drops into its vertex's slot — the merge
	// needs no further folding because masters are disjoint.
	d.armDeadline(conns)
	results := make([]wire.WorkerResult, len(conns))
	err = eachConn(conns, func(i int, c *wire.Conn) error {
		if err := c.Send(&wire.Msg{Kind: wire.KindCollect}); err != nil {
			return err
		}
		m, err := c.Expect(wire.KindResult)
		if err != nil {
			return err
		}
		results[i] = m.Result
		return nil
	})
	if err != nil {
		return nil, st, fmt.Errorf("engine: dist collect: %w", err)
	}
	pred := make(core.Predictions, g.NumVertices())
	for _, res := range results {
		for _, vp := range res.Preds {
			pred[vp.V] = vp.Preds
		}
		if inproc {
			// Loopback workers share this process, so each worker's MemStats
			// delta already covers everyone (coordinator included): summing
			// would count the same heap N times. The max is the closest
			// honest process-wide figure.
			st.AllocBytes = max(st.AllocBytes, res.Stats.AllocBytes)
			st.AllocObjects = max(st.AllocObjects, res.Stats.AllocObjects)
		} else {
			st.AllocBytes += res.Stats.AllocBytes
			st.AllocObjects += res.Stats.AllocObjects
		}
		if res.Stats.HeapBytes > st.MemPeakBytes {
			st.MemPeakBytes = res.Stats.HeapBytes
		}
	}

	st.WallSeconds = time.Since(start).Seconds()
	if st.WallSeconds > 0 {
		st.EdgesPerSec = float64(g.NumEdges()) / st.WallSeconds
	}
	for i, c := range conns {
		delta := c.Counters().Sub(base[i])
		st.CrossBytes += delta.BytesIn + delta.BytesOut
		st.CrossMsgs += delta.MsgsIn + delta.MsgsOut
	}
	return pred, st, nil
}

// router is the coordinator's streaming exchange state: one destination per
// worker, each holding the outgoing chunk under construction. v3 records are
// routed raw — appended verbatim to the destination's batch and flushed in
// fixed-size chunks as they arrive, so the coordinator never decodes what it
// only forwards. v2 (gob) destinations buffer decoded values and get their
// single legacy message after the barrier, bridging mixed fleets. The
// per-destination mutex serialises the source-drain goroutines; destinations
// never block each other.
type router struct {
	step  core.DistStep
	dests []routeDest
	dep   *deployment
}

type routeDest struct {
	mu     sync.Mutex
	c      *wire.Conn
	bb     wire.BatchBuilder
	parts  []core.DistPartial // v2 bridge: decoded partials
	states []wire.VertexState // v2 bridge: decoded states
}

func newRouter(conns []*wire.Conn, dep *deployment) *router {
	rt := &router{dests: make([]routeDest, len(conns)), dep: dep}
	for i := range rt.dests {
		rt.dests[i].c = conns[i]
		// Chunks flush at routeChunkBytes, but the record that crosses the
		// threshold still has to fit; the slop covers typical record sizes so
		// steady-state routing never grows the builder.
		rt.dests[i].bb.Reset()
		rt.dests[i].bb.Grow(routeChunkBytes + routeChunkBytes/4)
	}
	return rt
}

// reset readies the router for one routing phase of step, keeping buffers.
func (rt *router) reset(step core.DistStep) {
	rt.step = step
	for i := range rt.dests {
		d := &rt.dests[i]
		d.bb.Reset()
		d.parts = d.parts[:0]
		d.states = d.states[:0]
	}
}

// flushLocked sends the destination's chunk when it reached the threshold.
// Caller holds d.mu.
func (rt *router) flushLocked(d *routeDest, kind wire.Kind) error {
	if d.bb.Len() < routeChunkBytes {
		return nil
	}
	err := d.c.SendRaw(kind, rt.step, false, d.bb.Payload())
	d.bb.Reset()
	return err
}

// routePartialRaw routes one encoded partial record (from a v3 worker's
// stream) to its vertex's master partition.
func (rt *router) routePartialRaw(v graph.VertexID, rec []byte) error {
	mp := rt.dep.masterPart[v]
	if mp < 0 {
		return fmt.Errorf("partial for vertex %d, which no partition hosts", v)
	}
	d := &rt.dests[mp]
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c.Proto() == wire.ProtocolV3 {
		d.bb.AppendRaw(rec)
		return rt.flushLocked(d, wire.KindForeign)
	}
	dp, err := wire.DecodePartialRecord(rec)
	if err != nil {
		return err
	}
	d.parts = append(d.parts, dp)
	return nil
}

// routePartialDec routes one decoded partial (from a v2 worker's message).
func (rt *router) routePartialDec(dp core.DistPartial) error {
	mp := rt.dep.masterPart[dp.V]
	if mp < 0 {
		return fmt.Errorf("partial for vertex %d, which no partition hosts", dp.V)
	}
	d := &rt.dests[mp]
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c.Proto() == wire.ProtocolV3 {
		d.bb.AppendPartial(&dp)
		return rt.flushLocked(d, wire.KindForeign)
	}
	d.parts = append(d.parts, dp)
	return nil
}

// routeStateRaw fans one encoded state record out to the partitions holding
// the vertex's mirrors.
func (rt *router) routeStateRaw(v graph.VertexID, rec []byte) error {
	for _, mp := range rt.dep.mirrors[v] {
		d := &rt.dests[mp]
		d.mu.Lock()
		if d.c.Proto() == wire.ProtocolV3 {
			d.bb.AppendRaw(rec)
			if err := rt.flushLocked(d, wire.KindMirrors); err != nil {
				d.mu.Unlock()
				return err
			}
		} else {
			vs, err := wire.DecodeStateRecord(rec)
			if err != nil {
				d.mu.Unlock()
				return err
			}
			d.states = append(d.states, vs)
		}
		d.mu.Unlock()
	}
	return nil
}

// routeStateDec fans one decoded state out to the vertex's mirror partitions.
func (rt *router) routeStateDec(vs wire.VertexState) error {
	for _, mp := range rt.dep.mirrors[vs.V] {
		d := &rt.dests[mp]
		d.mu.Lock()
		if d.c.Proto() == wire.ProtocolV3 {
			d.bb.AppendState(vs.V, &vs.Data)
			if err := rt.flushLocked(d, wire.KindMirrors); err != nil {
				d.mu.Unlock()
				return err
			}
		} else {
			d.states = append(d.states, vs)
		}
		d.mu.Unlock()
	}
	return nil
}

// runStep drives one superstep across the workers. v3 workers stream their
// gather partials in chunks that are routed to masters as they arrive —
// communication overlaps compute on both sides instead of barriering each
// half — and likewise for the refresh/mirror round. v2 workers keep the
// legacy one-message-per-phase exchange; mixed fleets bridge through the
// router's per-destination buffers. The drain barrier before each final
// flush is inherent: a destination's batch is complete only when every
// source has been drained.
func (d Dist) runStep(conns []*wire.Conn, rt *router, step core.DistStep, final bool) error {
	rt.reset(step)
	err := eachConn(conns, func(_ int, c *wire.Conn) error {
		return c.Send(&wire.Msg{Kind: wire.KindStepBegin, Step: step, Final: final})
	})
	if err != nil {
		return err
	}
	// Drain every worker's partial stream, routing as records arrive. Order
	// across sources is irrelevant: all folds canonicalise before reducing.
	err = eachConn(conns, func(i int, c *wire.Conn) error {
		if c.Proto() == wire.ProtocolV3 {
			for {
				f, err := c.RecvRaw()
				if err != nil {
					return err
				}
				if f.Kind != wire.KindPartials || f.Step != step {
					return fmt.Errorf("%s for %v during %v partials", f.Kind, f.Step, step)
				}
				err = wire.ForEachPartialRecord(f.Payload, rt.routePartialRaw)
				if err != nil {
					return err
				}
				if f.Final {
					return nil
				}
			}
		}
		m, err := c.Expect(wire.KindPartials)
		if err != nil {
			return err
		}
		if m.Step != step {
			return fmt.Errorf("partials for %v during %v", m.Step, step)
		}
		for _, dp := range m.Partials {
			if err := rt.routePartialDec(dp); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Every v3 destination gets a final-flagged chunk — possibly empty, the
	// stream terminator its apply phase waits for; v2 destinations get their
	// single legacy message.
	err = eachConn(conns, func(i int, c *wire.Conn) error {
		dst := &rt.dests[i]
		if c.Proto() == wire.ProtocolV3 {
			return c.SendRaw(wire.KindForeign, step, true, dst.bb.Payload())
		}
		return c.Send(&wire.Msg{Kind: wire.KindForeign, Step: step, Partials: dst.parts})
	})
	if err != nil || final {
		return err
	}
	// Refresh round: masters push fresh state up, the coordinator fans each
	// vertex's state out to the partitions holding its mirrors.
	rt.reset(step)
	err = eachConn(conns, func(i int, c *wire.Conn) error {
		if c.Proto() == wire.ProtocolV3 {
			for {
				f, err := c.RecvRaw()
				if err != nil {
					return err
				}
				if f.Kind != wire.KindRefresh || f.Step != step {
					return fmt.Errorf("%s for %v during %v refresh", f.Kind, f.Step, step)
				}
				err = wire.ForEachStateRecord(f.Payload, rt.routeStateRaw)
				if err != nil {
					return err
				}
				if f.Final {
					return nil
				}
			}
		}
		m, err := c.Expect(wire.KindRefresh)
		if err != nil {
			return err
		}
		if m.Step != step {
			return fmt.Errorf("refresh for %v during %v", m.Step, step)
		}
		for _, vs := range m.States {
			if err := rt.routeStateDec(vs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return eachConn(conns, func(i int, c *wire.Conn) error {
		dst := &rt.dests[i]
		if c.Proto() == wire.ProtocolV3 {
			return c.SendRaw(wire.KindMirrors, step, true, dst.bb.Payload())
		}
		return c.Send(&wire.Msg{Kind: wire.KindMirrors, Step: step, States: dst.states})
	})
}

// deployment is the coordinator's routing state: the shippable partition
// payloads plus, per global vertex, the partition mastering it and the
// partitions holding its mirror copies. On a query-scoped run only the
// partitions intersecting the frontier closure exist here — the rest of the
// vertex-cut is never shipped.
type deployment struct {
	parts      []wire.Partition
	masterPart []int32   // per vertex; -1 when the vertex has no edges
	mirrors    [][]int32 // per vertex: replica partitions excluding the master
	replicas   int       // total replica count
	present    int       // vertices with at least one replica
	frontier   *core.Frontier
	// stepEdges counts, per superstep, the gather edges inside the step's
	// frontier set across all kept partitions (scoped runs only): a step
	// with zero is skipped outright.
	stepEdges map[core.DistStep]int
}

func (d *deployment) replicationFactor() float64 {
	if d.present == 0 {
		return 0
	}
	return float64(d.replicas) / float64(d.present)
}

// stepHasWork reports whether any kept partition gathers anything in step.
// Always true on a full run.
func (d *deployment) stepHasWork(step core.DistStep) bool {
	return d.frontier == nil || d.stepEdges[step] > 0
}

// deploy vertex-cuts g into one partition per worker and elects masters the
// same deterministic way gas.Distribute does. On a query-scoped run
// (frontier non-nil) partitions holding no closure edge are dropped before
// shipping, the survivors renumbered densely, and each kept partition
// carries its locals' scope masks; election then runs over the surviving
// replicas — placement never changes results, so the scoped predictions
// still match the full run's bit for bit.
func (d Dist) deploy(g *graph.Digraph, nw int, frontier *core.Frontier) (*deployment, error) {
	strat := d.Strategy
	if strat == nil {
		strat = partition.HashEdge{Seed: d.Seed}
	}
	assign, err := strat.Partition(g, nw)
	if err != nil {
		return nil, err
	}

	type rawEdge struct{ u, v graph.VertexID }
	rawEdges := make([][]rawEdge, nw)
	{
		i := 0
		g.ForEachEdge(func(u, v graph.VertexID) {
			p := assign.EdgeTo[i]
			rawEdges[p] = append(rawEdges[p], rawEdge{u, v})
			i++
		})
	}
	if frontier != nil {
		// An edge matters to some superstep iff its source is in the
		// truncation closure (the largest set); a partition with none can
		// never contribute a byte to the sources' predictions.
		kept := rawEdges[:0]
		for _, edges := range rawEdges {
			for _, e := range edges {
				if frontier.InTrunc(e.u) {
					kept = append(kept, edges)
					break
				}
			}
		}
		rawEdges = kept
		nw = len(rawEdges)
	}

	dep := &deployment{
		parts:      make([]wire.Partition, nw),
		masterPart: make([]int32, g.NumVertices()),
		mirrors:    make([][]int32, g.NumVertices()),
		frontier:   frontier,
		stepEdges:  make(map[core.DistStep]int),
	}
	for v := range dep.masterPart {
		dep.masterPart[v] = -1
	}
	index := make([]map[graph.VertexID]int32, nw)
	for p := 0; p < nw; p++ {
		seen := make(map[graph.VertexID]struct{}, len(rawEdges[p]))
		for _, e := range rawEdges[p] {
			seen[e.u] = struct{}{}
			seen[e.v] = struct{}{}
		}
		locals := make([]graph.VertexID, 0, len(seen))
		for v := range seen {
			locals = append(locals, v)
		}
		sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
		idx := make(map[graph.VertexID]int32, len(locals))
		deg := make([]int32, len(locals))
		for i, v := range locals {
			idx[v] = int32(i)
			deg[i] = int32(g.OutDegree(v))
		}
		edgeSrc := make([]int32, len(rawEdges[p]))
		edgeDst := make([]int32, len(rawEdges[p]))
		for i, e := range rawEdges[p] {
			edgeSrc[i] = idx[e.u]
			edgeDst[i] = idx[e.v]
		}
		index[p] = idx
		dep.parts[p] = wire.Partition{
			Part: p, NumVertices: g.NumVertices(),
			Locals: locals, Deg: deg,
			EdgeSrc: edgeSrc, EdgeDst: edgeDst,
			IsMaster:  make([]bool, len(locals)),
			HasRemote: make([]bool, len(locals)),
		}
		if frontier != nil {
			scope := make([]uint8, len(locals))
			for i, v := range locals {
				scope[i] = frontier.ScopeMask(v)
			}
			dep.parts[p].Scope = scope
			allSteps := []core.DistStep{core.DistTruncate, core.DistRelays,
				core.DistCombine, core.DistTwoHop, core.DistCombine3}
			for _, e := range rawEdges[p] {
				mask := scope[idx[e.u]]
				for _, step := range allSteps {
					if mask&step.ScopeBit() != 0 {
						dep.stepEdges[step]++
					}
				}
			}
		}
	}

	// Master election among each vertex's replicas, in ascending partition
	// order — the same deterministic draw gas.Distribute uses. (Placement
	// never changes results, only where each apply runs.)
	type vp struct {
		v graph.VertexID
		p int32
	}
	var pairs []vp
	for p := 0; p < nw; p++ {
		for _, v := range dep.parts[p].Locals {
			pairs = append(pairs, vp{v, int32(p)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].p < pairs[j].p
	})
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].v == pairs[i].v {
			j++
		}
		v := pairs[i].v
		replicas := pairs[i:j]
		mp := replicas[randx.Uint64n(uint64(len(replicas)), d.Seed, uint64(v), 0xA5)].p
		dep.masterPart[v] = mp
		mi := index[mp][v]
		dep.parts[mp].IsMaster[mi] = true
		dep.parts[mp].HasRemote[mi] = len(replicas) > 1
		if len(replicas) > 1 {
			mirrors := make([]int32, 0, len(replicas)-1)
			for _, r := range replicas {
				if r.p != mp {
					mirrors = append(mirrors, r.p)
				}
			}
			dep.mirrors[v] = mirrors
		}
		dep.replicas += len(replicas)
		dep.present++
		i = j
	}
	return dep, nil
}

// connect establishes connections to n workers according to the configured
// mode, returning a cleanup that closes connections and reclaims whatever
// was started. n is at most the mode's worker count — a query-scoped run
// that dropped partitions needs fewer workers (the first n addresses, or n
// spawned/loopback workers). inproc reports that the workers share this
// process (the loopback default), which changes how worker memory reports
// aggregate. cleanup is non-nil even on error.
func (d Dist) connect(n int) (conns []*wire.Conn, inproc bool, cleanup func(), err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	fail := func(err error) ([]*wire.Conn, bool, func(), error) {
		cleanup()
		return nil, false, func() {}, err
	}
	addConn := func(addr string) error {
		c, err := wire.DialWith(addr, wire.DialOptions{Proto: d.Proto, Compress: d.Compress})
		if err != nil {
			return err
		}
		closers = append(closers, func() { c.Close() })
		conns = append(conns, c)
		return nil
	}

	mode, avail := d.mode()
	if n > avail {
		return fail(fmt.Errorf("need %d workers but the deployment provides %d", n, avail))
	}
	switch mode {
	case modeAddrs:
		// A worker serves one session at a time, so dialing the same worker
		// twice deadlocks the ship handshake (caught late by shipTimeout);
		// reject the footgun up front instead.
		seen := make(map[string]struct{}, len(d.Addrs))
		for _, addr := range d.Addrs[:n] {
			if _, dup := seen[addr]; dup {
				return fail(fmt.Errorf("duplicate worker address %q: each worker serves one session at a time", addr))
			}
			seen[addr] = struct{}{}
			if err := addConn(addr); err != nil {
				return fail(err)
			}
		}
	case modeSpawn:
		bin := d.WorkerBin
		if bin == "" {
			bin = "snaple-worker"
		}
		path, err := exec.LookPath(bin)
		if err != nil {
			return fail(fmt.Errorf("worker binary %q not found (build cmd/snaple-worker or set WorkerBin): %w", bin, err))
		}
		for i := 0; i < n; i++ {
			addr, stop, err := spawnWorker(path)
			if err != nil {
				return fail(err)
			}
			closers = append(closers, stop)
			if err := addConn(addr); err != nil {
				return fail(err)
			}
		}
	default:
		inproc = true
		for i := 0; i < n; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			go func() { _ = wire.Serve(l, nil) }()
			closers = append(closers, func() { l.Close() })
			if err := addConn(l.Addr().String()); err != nil {
				return fail(err)
			}
		}
	}
	return conns, inproc, cleanup, nil
}

// spawnWorker forks one snaple-worker on an ephemeral loopback port and
// parses the address it announces on stdout ("listening <addr>"). The
// worker's stderr passes through, so a crashed worker leaves its diagnostics
// next to the coordinator's EOF error.
func spawnWorker(bin string) (addr string, stop func(), err error) {
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	stop = func() {
		// Kill first so the stdout scanner (below) hits EOF, then cmd.Wait —
		// not Process.Wait — to release the StdoutPipe.
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		fields := strings.Fields(line)
		if !ok || len(fields) != 2 || fields[0] != "listening" {
			stop()
			return "", nil, fmt.Errorf("spawn %s: unexpected announcement %q", bin, line)
		}
		return fields[1], stop, nil
	case <-time.After(10 * time.Second):
		stop()
		return "", nil, fmt.Errorf("spawn %s: worker never announced its address", bin)
	}
}

// eachConn runs fn once per connection on its own goroutine and returns the
// first error. Each connection is touched by exactly one goroutine per
// direction, so the per-conn streams never interleave (the router's sends to
// other destinations are serialised separately, by routeDest.mu).
func eachConn(conns []*wire.Conn, fn func(i int, c *wire.Conn) error) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i, c)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
