package engine

import (
	"runtime"

	"snaple/internal/cluster"
	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// Sim is the paper's system as a Backend: Algorithm 2 on the GAS engine
// over a simulated cluster, with vertex-cut partitioning, master/mirror
// replication and full cost accounting. Use it when the simulated costs
// (SimSeconds, CrossBytes, MemPeakBytes, ReplicationFactor) matter; use
// Local when only the predictions do.
//
// The zero value of every field is a usable default: one type-II node, one
// partition per core, hash-edge vertex-cut keyed by Seed.
type Sim struct {
	// Nodes is the number of cluster nodes (0 = 1).
	Nodes int
	// Spec is the machine class (zero = cluster.TypeII()).
	Spec cluster.NodeSpec
	// Partitions overrides the partition count (0 = one per core).
	Partitions int
	// Strategy selects the vertex-cut (nil = partition.HashEdge{Seed}).
	Strategy partition.Strategy
	// MemBudgetBytes optionally caps per-node memory (0 = the node spec's
	// capacity). Exceeding it aborts with cluster.ErrMemoryExhausted.
	MemBudgetBytes int64
	// Seed drives partitioning and master election.
	Seed uint64
	// Workers bounds the host goroutines processing partitions
	// (0 = GOMAXPROCS). It never affects results or simulated costs.
	Workers int
}

// Name implements Backend.
func (Sim) Name() string { return "sim" }

func (s Sim) withDefaults() Sim {
	if s.Nodes == 0 {
		s.Nodes = 1
	}
	if s.Spec.Cores == 0 {
		s.Spec = cluster.TypeII()
	}
	if s.Partitions == 0 {
		s.Partitions = s.Nodes * s.Spec.Cores
	}
	if s.Strategy == nil {
		s.Strategy = partition.HashEdge{Seed: s.Seed}
	}
	return s
}

// Deploy partitions g across the simulated cluster and returns the
// assignment and cluster, for callers that run their own GAS programs
// (e.g. the BASELINE comparison system).
func (s Sim) Deploy(g graph.View) (partition.Assignment, *cluster.Cluster, error) {
	s = s.withDefaults()
	assign, err := s.Strategy.Partition(g, s.Partitions)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes: s.Nodes, Spec: s.Spec, MemBudgetBytes: s.MemBudgetBytes,
	}, s.Partitions)
	if err != nil {
		return partition.Assignment{}, nil, err
	}
	return assign, cl, nil
}

// Predict implements Backend. On a failure before any superstep ran (bad
// config, deployment error) the returned Stats is the zero value; on a
// mid-run failure (memory exhaustion) it carries the partial costs.
func (s Sim) Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	res, err := s.PredictResult(g, cfg)
	if res == nil {
		return nil, Stats{}, err
	}
	return res.Pred, StatsFromResult(res, s.Workers), err
}

// PredictResult is Predict with the GAS engine's full cost report: the
// per-superstep StepStats breakdown that the flattened Stats cannot carry.
// The result is non-nil whenever at least one superstep started.
func (s Sim) PredictResult(g graph.View, cfg core.Config) (*core.Result, error) {
	if _, err := cfg.Normalized(); err != nil {
		return nil, err // fail before the partitioning pass
	}
	s = s.withDefaults()
	assign, cl, err := s.Deploy(g)
	if err != nil {
		return nil, err
	}
	return core.PredictGASWorkers(g, assign, cl, cfg, s.Workers)
}

// StatsFromResult flattens a GAS engine cost report into Stats. workers is
// the configured host concurrency bound (0 = GOMAXPROCS).
func StatsFromResult(res *core.Result, workers int) Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Stats{
		Engine:            "sim",
		Workers:           workers,
		WallSeconds:       res.Total.WallSeconds,
		SimSeconds:        res.Total.SimSeconds(),
		CrossBytes:        res.Total.CrossBytes,
		CrossMsgs:         res.Total.CrossMsgs,
		MemPeakBytes:      res.Total.MemPeakBytes,
		ReplicationFactor: res.ReplicationFactor,
		FrontierVertices:  res.FrontierVertices,
		ScoredVertices:    res.ScoredVertices,
	}
}
