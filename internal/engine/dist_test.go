package engine

import (
	"fmt"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"

	"snaple/internal/core"
	"snaple/internal/partition"
	"snaple/internal/wire"
)

// workerAddrsEnv lets CI point the equivalence tests at externally spawned
// snaple-worker processes (the cluster-smoke job) instead of the in-process
// loopback fleet. The value is a comma-separated address list.
const workerAddrsEnv = "SNAPLE_WORKER_ADDRS"

// workerPool provides worker addresses for a test: external processes when
// workerAddrsEnv is set, otherwise an in-process loopback fleet (real TCP
// and gob, torn down with the test).
func workerPool(t *testing.T, n int) []string {
	t.Helper()
	if env := os.Getenv(workerAddrsEnv); env != "" {
		addrs := strings.Split(env, ",")
		if len(addrs) < n {
			t.Skipf("%s provides %d workers, test wants %d", workerAddrsEnv, len(addrs), n)
		}
		return addrs[:n]
	}
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() { _ = wire.Serve(l, nil) }()
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestDistMatchesReference is the dist backend's equivalence table: real
// worker processes (or their in-process stand-ins) over TCP must reproduce
// core.ReferenceSnaple bit for bit across scores, policies, sampling
// parameters, path lengths, seeds and 1, 2 and 4 workers. The CI
// cluster-smoke job reruns it under -race against 3 externally spawned
// snaple-worker processes via SNAPLE_WORKER_ADDRS.
func TestDistMatchesReference(t *testing.T) {
	g := testGraph(t, 200, 7)

	type tc struct {
		score  string
		policy core.SelectionPolicy
		thr    int
		klocal int
		paths  int
		seed   uint64
	}
	cases := []tc{
		// Policy × sampling cross for the default score.
		{"linearSum", core.SelectMax, core.Unlimited, core.Unlimited, 2, 1},
		{"linearSum", core.SelectMax, 10, 4, 2, 42},
		{"linearSum", core.SelectMin, 10, 4, 2, 42},
		{"linearSum", core.SelectRnd, 10, 4, 2, 42},
		{"linearSum", core.SelectRnd, core.Unlimited, 4, 2, 1},
		// Every aggregator family and the identity-aware PPR similarity.
		{"PPR", core.SelectMax, 10, 4, 2, 42},
		{"counter", core.SelectMax, 10, 4, 2, 42},
		{"geomMean", core.SelectMax, 10, 4, 2, 42},
		{"euclGeom", core.SelectMax, 10, 4, 2, 42},
		// The 3-hop extension (4 supersteps with a TwoHop refresh).
		{"linearSum", core.SelectMax, 10, 3, 3, 42},
		{"geomSum", core.SelectRnd, core.Unlimited, 3, 3, 1},
	}

	workerCounts := []int{1, 2, 4}
	maxWorkers := 4
	if env := os.Getenv(workerAddrsEnv); env != "" {
		// An external fleet has a fixed size; exercise every prefix of it.
		n := len(strings.Split(env, ","))
		workerCounts = nil
		for _, w := range []int{1, 2, 4} {
			if w <= n {
				workerCounts = append(workerCounts, w)
			}
		}
		if len(workerCounts) == 0 || workerCounts[len(workerCounts)-1] != n {
			workerCounts = append(workerCounts, n)
		}
		maxWorkers = n
	}
	addrs := workerPool(t, maxWorkers)

	for _, c := range cases {
		cfg := core.Config{
			Score:    mustScore(t, c.score),
			K:        5,
			KLocal:   c.klocal,
			ThrGamma: c.thr,
			Policy:   c.policy,
			Paths:    c.paths,
			Seed:     c.seed,
		}
		want, err := core.ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts {
			name := fmt.Sprintf("%s/%s/thr=%d/klocal=%d/paths=%d/seed=%d/workers=%d",
				c.score, c.policy, c.thr, c.klocal, c.paths, c.seed, workers)
			t.Run(name, func(t *testing.T) {
				got, st, err := Dist{Addrs: addrs[:workers], Seed: c.seed}.Predict(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if st.Engine != "dist" || st.Workers != workers {
					t.Errorf("stats = %+v", st)
				}
				if !reflect.DeepEqual(want, got) {
					diffPredictions(t, want, got)
				}
			})
		}
	}
}

// TestDistStrategies pins equivalence across vertex-cut strategies: the cut
// decides replication and traffic, never results.
func TestDistStrategies(t *testing.T) {
	g := testGraph(t, 150, 11)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 8, ThrGamma: 10, Seed: 5}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := workerPool(t, 3)
	for _, strat := range []partition.Strategy{
		partition.HashEdge{Seed: 9}, partition.HashSource{Seed: 9}, partition.Greedy{},
	} {
		t.Run(strat.Name(), func(t *testing.T) {
			got, st, err := Dist{Addrs: addrs, Strategy: strat, Seed: 9}.Predict(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				diffPredictions(t, want, got)
			}
			if st.ReplicationFactor < 1 {
				t.Errorf("replication factor %v", st.ReplicationFactor)
			}
		})
	}
}

// TestDistMeasuredStats checks the wire measurements: a multi-worker run
// must report real traffic, and Predict must never leave the counters zero
// when partials actually crossed partitions.
func TestDistMeasuredStats(t *testing.T) {
	g := testGraph(t, 200, 3)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 8, ThrGamma: 10, Seed: 5}
	addrs := workerPool(t, 3)
	_, st, err := Dist{Addrs: addrs, Seed: 9}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossBytes == 0 || st.CrossMsgs == 0 {
		t.Errorf("measured traffic missing: %+v", st)
	}
	if st.ReplicationFactor < 1 || st.MemPeakBytes == 0 {
		t.Errorf("deployment stats missing: %+v", st)
	}
	if st.WallSeconds <= 0 || st.EdgesPerSec <= 0 {
		t.Errorf("timing missing: %+v", st)
	}
}

// TestDistRejectsCustomScore: a hand-assembled ScoreSpec cannot cross the
// wire and must fail fast, before any connection is made.
func TestDistRejectsCustomScore(t *testing.T) {
	g := testGraph(t, 20, 1)
	cfg := core.Config{Score: core.ScoreSpec{
		Name: "custom", Sim: core.Jaccard{}, Comb: core.SumComb(), Agg: core.AggSum(),
	}, K: 5}
	// No workers exist at this address; reaching the dial would hang/fail
	// differently than the wanted validation error.
	_, _, err := Dist{Addrs: []string{"127.0.0.1:1"}}.Predict(g, cfg)
	if err == nil || !strings.Contains(err.Error(), "not shippable") {
		t.Fatalf("err = %v, want shippability failure", err)
	}
}

// TestDistInProc covers the zero-config mode engine.New returns: the
// backend serves its own loopback workers and still matches the oracle.
func TestDistInProc(t *testing.T) {
	g := testGraph(t, 120, 2)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 6, ThrGamma: 10, Seed: 3}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	be, err := New("dist", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := be.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine != "dist" || st.Workers != 3 {
		t.Errorf("stats = %+v", st)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
}

// TestDistWireOptions pins result equivalence across wire protocol modes:
// per-frame compression, a coordinator pinned to the legacy gob protocol,
// and a mixed fleet where one worker speaks only gob — the coordinator's
// router must bridge between the v3 stream and the legacy exchange without
// changing a bit of the output. Paths=3 keeps the TwoHop refresh in play so
// every record type crosses both codecs.
func TestDistWireOptions(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 3,
		ThrGamma: 10, Policy: core.SelectRnd, Paths: 3, Seed: 42}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, d Dist) Stats {
		t.Helper()
		got, st, err := d.Predict(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			diffPredictions(t, want, got)
		}
		if st.CrossBytes == 0 || st.CrossMsgs == 0 {
			t.Errorf("no measured traffic: %+v", st)
		}
		return st
	}
	t.Run("compressed", func(t *testing.T) {
		plain := check(t, Dist{InProc: 3, Seed: 42})
		zipped := check(t, Dist{InProc: 3, Seed: 42, Compress: true})
		if zipped.CrossBytes >= plain.CrossBytes {
			t.Errorf("compression grew traffic: %d -> %d bytes", plain.CrossBytes, zipped.CrossBytes)
		}
	})
	t.Run("legacy-pinned", func(t *testing.T) {
		check(t, Dist{InProc: 3, Seed: 42, Proto: wire.ProtocolV2})
	})
	t.Run("mixed-fleet", func(t *testing.T) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() { _ = wire.ServeWith(l, nil, wire.ServeOptions{MaxProto: wire.ProtocolV2}) }()
		addrs := append([]string{l.Addr().String()}, workerPool(t, 2)...)
		check(t, Dist{Addrs: addrs, Seed: 42})
	})
}

// TestDistRejectsDuplicateAddrs: dialing the same worker twice would
// deadlock its sequential session loop, so the coordinator refuses up front.
func TestDistRejectsDuplicateAddrs(t *testing.T) {
	g := testGraph(t, 20, 1)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, Seed: 1}
	addrs := workerPool(t, 1)
	_, _, err := Dist{Addrs: []string{addrs[0], addrs[0]}}.Predict(g, cfg)
	if err == nil || !strings.Contains(err.Error(), "duplicate worker address") {
		t.Fatalf("err = %v, want duplicate-address rejection", err)
	}
}

// TestDistWorkerCount pins the resolution order of the connection modes.
func TestDistWorkerCount(t *testing.T) {
	cases := []struct {
		d    Dist
		want int
	}{
		{Dist{}, 2},
		{Dist{InProc: 3}, 3},
		{Dist{Spawn: 5}, 5},
		{Dist{Addrs: []string{"a", "b"}, Spawn: 5, InProc: 9}, 2},
	}
	for _, c := range cases {
		if got := c.d.workerCount(); got != c.want {
			t.Errorf("workerCount(%+v) = %d, want %d", c.d, got, c.want)
		}
	}
}
