package engine

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/wire"
)

// serveResident stands up one resident loopback worker per shard file (times
// replicas), returning their addresses shard-major — the test double for a
// fleet of `snaple-worker -shard` processes.
func serveResident(t *testing.T, files []*graph.ShardFile, replicas int) []string {
	t.Helper()
	addrs := make([]string, 0, len(files)*replicas)
	for _, sf := range files {
		res := wire.ResidentFromShard(sf)
		for r := 0; r < replicas; r++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { l.Close() })
			go func() { _ = wire.ServeWith(l, nil, wire.ServeOptions{Resident: res}) }()
			addrs = append(addrs, l.Addr().String())
		}
	}
	return addrs
}

// packVia round-trips PackShards' output through the on-disk encoding, so
// every fleet test also exercises what a worker actually loads.
func packVia(t *testing.T, g *graph.Digraph, strat partition.Strategy, seed uint64, shards int) ([]*graph.ShardFile, *graph.Manifest) {
	t.Helper()
	files, man, err := PackShards(g, strat, seed, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, sf := range files {
		var buf bytes.Buffer
		if err := graph.WriteShard(&buf, sf); err != nil {
			t.Fatal(err)
		}
		rt, err := graph.ReadShard(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sf, rt) {
			t.Fatalf("shard %d did not survive the disk round trip", i)
		}
		files[i] = rt
		man.Files[i] = fmt.Sprintf("test.sgr.%d", i)
	}
	var mb bytes.Buffer
	if err := graph.WriteManifest(&mb, man); err != nil {
		t.Fatal(err)
	}
	rt, err := graph.ReadManifest(bytes.NewReader(mb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, rt) {
		t.Fatal("manifest did not survive the disk round trip")
	}
	return files, rt
}

// TestFleetMatchesReference is the resident fleet's equivalence table: a
// standing in-process fleet must reproduce core.ReferenceSnaple bit for bit
// across scores, policies, path lengths and fleet shapes — reusing the same
// attached workers for every config, which is exactly the multi-job session
// reuse production serving depends on.
func TestFleetMatchesReference(t *testing.T) {
	g := testGraph(t, 200, 7)

	type tc struct {
		score  string
		policy core.SelectionPolicy
		thr    int
		klocal int
		paths  int
		seed   uint64
	}
	cases := []tc{
		{"linearSum", core.SelectMax, core.Unlimited, core.Unlimited, 2, 1},
		{"linearSum", core.SelectRnd, 10, 4, 2, 42},
		{"PPR", core.SelectMax, 10, 4, 2, 42},
		{"geomMean", core.SelectMax, 10, 4, 2, 42},
		{"linearSum", core.SelectMax, 10, 3, 3, 42},
	}
	fleets := []struct {
		shards, replicas int
	}{
		{1, 1}, {2, 1}, {4, 1}, {3, 2},
	}
	for _, fs := range fleets {
		f, err := OpenFleet(g, FleetOptions{InProc: fs.shards, Replicas: fs.replicas, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		for _, c := range cases {
			cfg := core.Config{
				Score: mustScore(t, c.score), K: 5, KLocal: c.klocal,
				ThrGamma: c.thr, Policy: c.policy, Paths: c.paths, Seed: c.seed,
			}
			want, err := core.ReferenceSnaple(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("shards=%d/reps=%d/%s/%s/paths=%d", fs.shards, fs.replicas, c.score, c.policy, c.paths)
			t.Run(name, func(t *testing.T) {
				got, st, err := f.Predict(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if st.Engine != "fleet" || st.Workers != fs.shards*fs.replicas {
					t.Errorf("stats = %+v", st)
				}
				if !reflect.DeepEqual(want, got) {
					diffPredictions(t, want, got)
				}
			})
		}
	}
}

// TestFleetResidentWorkers runs the packed-shard path end to end: PackShards
// output round-tripped through the on-disk shard and manifest encodings,
// served by resident loopback workers, attached by a manifest-opened fleet —
// and still bit-identical to the oracle, scoped and unscoped.
func TestFleetResidentWorkers(t *testing.T) {
	g := testGraph(t, 300, 7)
	const shards, reps = 3, 2
	files, man := packVia(t, g, nil, 11, shards)
	addrs := serveResident(t, files, reps)

	f, err := OpenFleet(g, FleetOptions{Addrs: addrs, Manifest: man, Replicas: reps})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if info := f.FleetInfo(); info.Shards != shards || info.Replicas != reps || info.Workers != shards*reps || info.Fingerprint != man.Fingerprint {
		t.Fatalf("info = %+v", info)
	}

	base := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	full, err := core.ReferenceSnaple(g, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("full", func(t *testing.T) {
		got, st, err := f.Predict(g, base)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full, got) {
			diffPredictions(t, full, got)
		}
		if st.ShipBytes == 0 || st.CrossBytes == 0 {
			t.Errorf("traffic accounting missing: %+v", st)
		}
	})
	for setName, sources := range frontierSourceSets(g.NumVertices()) {
		t.Run("scoped/"+setName, func(t *testing.T) {
			cfg := base
			cfg.Sources = sources
			want := filterToSources(full, sources)
			got, _, err := f.Predict(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				diffPredictions(t, want, got)
			}
		})
	}
}

// TestFleetRoutingSelectivity pins the routing guarantee: a query whose
// frontier closure holds edges on k of N shards contacts exactly those
// replica groups — the untouched shards' workers receive not a single frame,
// asserted on the wire counters of the standing connections.
func TestFleetRoutingSelectivity(t *testing.T) {
	// Vertex 0→1 is an isolated two-vertex component: the closure of source 0
	// is {0,1} and holds exactly one edge, so exactly one shard is touched.
	// The dense component on [10,60) keeps every shard non-empty.
	var edges []graph.Edge
	edges = append(edges, graph.Edge{Src: 0, Dst: 1})
	for u := 10; u < 60; u++ {
		for d := 1; d <= 5; d++ {
			v := 10 + (u-10+d*7)%50
			if v != u {
				edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	g, err := graph.FromEdges(60, edges)
	if err != nil {
		t.Fatal(err)
	}

	const shards, reps, seed = 4, 2, 9
	f, err := OpenFleet(g, FleetOptions{InProc: shards, Replicas: reps, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, Seed: 3, Sources: []graph.VertexID{0}}

	// The expected touched set, derived independently from the strategy and
	// the closure definition.
	frontier, err := core.NewFrontier(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.HashEdge{Seed: seed}.Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	wantTouched := make([]bool, shards)
	{
		i := 0
		g.ForEachEdge(func(u, v graph.VertexID) {
			if frontier.InTrunc(u) {
				wantTouched[assign.EdgeTo[i]] = true
			}
			i++
		})
	}
	nTouched := 0
	for _, tt := range wantTouched {
		if tt {
			nTouched++
		}
	}
	if nTouched != 1 {
		t.Fatalf("test graph no longer selective: closure touches %d of %d shards", nTouched, shards)
	}

	before := make([]wire.Counters, len(f.conns))
	for i, c := range f.conns {
		before[i] = c.Counters()
	}
	got, st, err := f.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != nTouched*reps {
		t.Errorf("st.Workers = %d, want %d (touched groups only)", st.Workers, nTouched*reps)
	}
	for i, c := range f.conns {
		d := c.Counters().Sub(before[i])
		traffic := d.BytesIn + d.BytesOut + d.MsgsIn + d.MsgsOut
		if wantTouched[i/reps] && traffic == 0 {
			t.Errorf("conn %d (touched shard %d): no traffic", i, i/reps)
		}
		if !wantTouched[i/reps] && traffic != 0 {
			t.Errorf("conn %d (untouched shard %d): %d bytes / %d msgs crossed", i, i/reps, d.BytesIn+d.BytesOut, d.MsgsIn+d.MsgsOut)
		}
	}

	full, err := core.ReferenceSnaple(g, core.Config{Score: mustScore(t, "linearSum"), K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := filterToSources(full, cfg.Sources); !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
}

// TestFleetZeroShipAfterAttach pins the acceptance criterion: once workers
// are resident, a query's pre-superstep traffic is the fingerprint handshake
// (plus sparse closure roles when scoped), never partition bytes — constant
// across repeats, and nowhere near the size of an actual partition transfer.
func TestFleetZeroShipAfterAttach(t *testing.T) {
	g := testGraph(t, 300, 7)
	f, err := OpenFleet(g, FleetOptions{InProc: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// ~12 bytes per packed edge column row is a conservative floor for what
	// re-shipping the partitions would cost.
	shipFloor := int64(g.NumEdges()) * 12

	full := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	_, st1, err := f.Predict(g, full)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := f.Predict(g, full)
	if err != nil {
		t.Fatal(err)
	}
	// An unscoped attach is a fixed-size frame per connection.
	if bound := int64(512 * st1.Workers); st1.ShipBytes == 0 || st1.ShipBytes > bound {
		t.Errorf("full-run attach traffic %d bytes, want (0, %d]", st1.ShipBytes, bound)
	}
	if st1.ShipBytes != st2.ShipBytes {
		t.Errorf("attach traffic not constant across repeats: %d then %d", st1.ShipBytes, st2.ShipBytes)
	}

	scoped := full
	scoped.Sources = []graph.VertexID{17}
	_, st3, err := f.Predict(g, scoped)
	if err != nil {
		t.Fatal(err)
	}
	_, st4, err := f.Predict(g, scoped)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ShipBytes == 0 || st3.ShipBytes >= shipFloor {
		t.Errorf("scoped attach traffic %d bytes, want (0, %d) — partition bytes crossed?", st3.ShipBytes, shipFloor)
	}
	if st3.ShipBytes != st4.ShipBytes {
		t.Errorf("scoped attach traffic not constant across repeats: %d then %d", st3.ShipBytes, st4.ShipBytes)
	}
}

// TestFleetManifestMismatch pins the typed rejection on both layers: a
// manifest that does not describe the graph fails at Open, and resident
// workers packed from a different graph are refused with ErrManifestMismatch
// during the attach handshake.
func TestFleetManifestMismatch(t *testing.T) {
	g1 := testGraph(t, 120, 2)
	g2 := testGraph(t, 120, 3) // same size, different edges

	files, man := packVia(t, g1, nil, 2, 2)

	t.Run("manifest-vs-graph", func(t *testing.T) {
		_, err := OpenFleet(g2, FleetOptions{Manifest: man})
		if !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("err = %v, want ErrManifestMismatch", err)
		}
	})
	t.Run("worker-vs-coordinator", func(t *testing.T) {
		// Workers resident for g1's shards, coordinator opened over g2 with
		// the same cut parameters: the fingerprints differ and every worker
		// must refuse the attach.
		addrs := serveResident(t, files, 1)
		_, err := OpenFleet(g2, FleetOptions{Addrs: addrs, Seed: man.Seed})
		if !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("err = %v, want ErrManifestMismatch", err)
		}
	})
	t.Run("wrong-shard-count", func(t *testing.T) {
		addrs := serveResident(t, files, 1)
		// Three single-replica addresses would mean a 3-shard fleet; the
		// 2-shard residents must refuse. Reuse one worker's address twice is
		// not allowed, so open with a manifest claiming 2 shards against one
		// worker of each — here simply: a fleet of 2 against workers 0,0
		// cannot be built, so instead attach shard files to wrong slots.
		_, err := OpenFleet(g1, FleetOptions{Addrs: []string{addrs[1], addrs[0]}, Manifest: man})
		if err == nil {
			t.Fatal("swapped shard slots accepted")
		}
	})
}

// TestFleetFailover: killing a replica's worker mid-standing leaves the
// fleet serving — the next query fails over to the survivor and the one
// after redials nothing that is not needed.
func TestFleetFailover(t *testing.T) {
	g := testGraph(t, 150, 11)
	f, err := OpenFleet(g, FleetOptions{InProc: 2, Replicas: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 8, ThrGamma: 10, Seed: 5}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := f.Predict(g, cfg); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}

	// Cut shard 0's first replica out from under the fleet.
	f.conns[0].Close()
	got, st, err := f.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.WorkersDead == 0 {
		t.Errorf("expected a death to be recorded: %+v", st)
	}

	// The dead connection was swept; the next query redials it and recovers
	// full strength (the in-process listener is still up).
	got, st, err = f.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.WorkersDead != 0 {
		t.Errorf("death carried into the recovered run: %+v", st)
	}
	if cum := f.Stats(); cum.WorkersDead == 0 {
		t.Errorf("cumulative stats lost the death: %+v", cum)
	}
}
