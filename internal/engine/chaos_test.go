package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
	"snaple/internal/wire"
)

// This file is the failover equivalence suite: the coordinator-side fault
// hook (kill worker W at superstep S) and the wire-level chaos transport
// (internal/wire/chaos.go) drive worker deaths through every phase of a
// replicated run, and every surviving run must be bit-identical to the
// healthy one. The CI cluster-smoke job reruns the SIGKILL variant against
// real worker processes.

// chaosPool serves n in-process loopback workers whose FIRST session runs
// over a fault-injecting transport scripted by events(worker); later
// sessions are served clean, so a test can assert that a worker survives
// its faulted session and serves the next job. Like a real snaple-worker,
// each listener serves sessions sequentially.
func chaosPool(t *testing.T, n int, events func(worker int) []wire.ChaosEvent) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func(w int, l net.Listener) {
			first := true
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				var rwc io.ReadWriteCloser = c
				if first && events != nil {
					if evs := events(w); len(evs) > 0 {
						rwc = wire.NewChaosTransport(c, evs)
					}
				}
				first = false
				_ = wire.ServeConnWith(rwc, wire.ServeOptions{})
			}
		}(i, l)
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestDistChaosKillAtEachStep is the acceptance criterion of the failover
// design: with -replicas 2, killing any single worker at any superstep must
// yield results bit-identical to the healthy run. The kill hook closes the
// connection without telling the liveness tracker, so the death is
// discovered exactly the way a real crash is — by the step's exchange
// failing — and the coordinator must fail over and re-run the step on the
// survivor. Both a serving replica and a standby die here, across a 3-step
// (Paths=2) and a 4-step (Paths=3) schedule.
func TestDistChaosKillAtEachStep(t *testing.T) {
	g := testGraph(t, 200, 7)
	cases := []struct {
		score string
		pol   core.SelectionPolicy
		paths int
		steps int
	}{
		{"linearSum", core.SelectMax, 2, 3},
		{"PPR", core.SelectRnd, 3, 4},
	}
	const workers, replicas = 4, 2
	for _, c := range cases {
		cfg := core.Config{
			Score: mustScore(t, c.score), K: 5, KLocal: 4, ThrGamma: 10,
			Policy: c.pol, Paths: c.paths, Seed: 42,
		}
		want, err := core.ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for kill := 0; kill < workers; kill++ {
			for at := 0; at < c.steps; at++ {
				name := fmt.Sprintf("%s/paths=%d/kill=%d/step=%d", c.score, c.paths, kill, at)
				t.Run(name, func(t *testing.T) {
					addrs := workerPool(t, workers)
					d := Dist{
						Addrs: addrs, Seed: cfg.Seed, Replicas: replicas,
						StepTimeout: 30 * time.Second,
						hookStep: func(si int, r *distRun) {
							if si == at {
								r.killWorker(kill)
							}
						},
					}
					got, st, err := d.Predict(g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						diffPredictions(t, want, got)
					}
					if st.Replicas != replicas || st.Workers != workers {
						t.Errorf("stats = %+v, want %d workers at %d replicas", st, workers, replicas)
					}
					if st.WorkersDead != 1 {
						t.Errorf("WorkersDead = %d, want 1", st.WorkersDead)
					}
					// Killing a serving replica forces a promotion; killing a
					// standby only sheds redundancy.
					if st.Failovers > 1 {
						t.Errorf("Failovers = %d, want 0 or 1", st.Failovers)
					}
				})
			}
		}
	}
}

// TestDistChaosCorruptFrame flips one bit inside a worker's partial stream:
// the frame CRC turns it into a connection-level error, the worker is
// declared dead, and the replicated run still matches the healthy one.
func TestDistChaosCorruptFrame(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offset 4096 of worker 1's write stream is well past its hello reply
	// and Ready (tens of bytes) — inside the first superstep's partials.
	addrs := chaosPool(t, 4, func(w int) []wire.ChaosEvent {
		if w != 1 {
			return nil
		}
		return []wire.ChaosEvent{{Dir: wire.ChaosWrites, Op: wire.ChaosCorrupt, At: 4096}}
	})
	got, st, err := Dist{Addrs: addrs, Seed: 42, Replicas: 2, StepTimeout: 5 * time.Second}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.WorkersDead != 1 {
		t.Errorf("WorkersDead = %d, want 1", st.WorkersDead)
	}
}

// TestDistChaosBlackhole blackholes a worker's upstream mid-step: nothing
// errors, nothing closes — only the phase deadline can notice. The run must
// declare the worker dead at the deadline, fail over and finish with
// bit-identical results, promptly.
func TestDistChaosBlackhole(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := chaosPool(t, 4, func(w int) []wire.ChaosEvent {
		if w != 0 {
			return nil
		}
		return []wire.ChaosEvent{{Dir: wire.ChaosWrites, Op: wire.ChaosDrop, At: 1024}}
	})
	const deadline = 1 * time.Second
	start := time.Now()
	got, st, err := Dist{Addrs: addrs, Seed: 42, Replicas: 2, StepTimeout: deadline}.Predict(g, cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.WorkersDead != 1 {
		t.Errorf("WorkersDead = %d, want 1", st.WorkersDead)
	}
	// One eaten deadline plus the re-run and slack; far below a hang.
	if wall > 6*deadline {
		t.Errorf("run took %v with a %v phase deadline", wall, deadline)
	}
}

// TestDistChaosDelayIsNotDeath pins the false-positive side of failure
// detection: a stall well under the phase deadline is jitter, not a death —
// no worker may be declared dead and the results must match.
func TestDistChaosDelayIsNotDeath(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := chaosPool(t, 4, func(w int) []wire.ChaosEvent {
		if w != 2 {
			return nil
		}
		return []wire.ChaosEvent{{Dir: wire.ChaosWrites, Op: wire.ChaosDelay, At: 2048, Delay: 300 * time.Millisecond}}
	})
	got, st, err := Dist{Addrs: addrs, Seed: 42, Replicas: 2, StepTimeout: 30 * time.Second}.Predict(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
	if st.WorkersDead != 0 || st.Failovers != 0 {
		t.Errorf("stats = %+v, want no deaths", st)
	}
}

// TestDistPartitionLost pins the give-up path: when every replica of a
// partition is gone the run must fail with ErrPartitionLost within the
// phase deadline — never hang, never fabricate a result.
func TestDistPartitionLost(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	cases := []struct {
		name     string
		workers  int
		replicas int
		kills    []int
	}{
		{"unreplicated", 2, 1, []int{0}},
		{"whole-group", 4, 2, []int{2, 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			addrs := workerPool(t, c.workers)
			const deadline = 2 * time.Second
			d := Dist{
				Addrs: addrs, Seed: 42, Replicas: c.replicas, StepTimeout: deadline,
				hookStep: func(si int, r *distRun) {
					if si == 1 {
						for _, w := range c.kills {
							r.killWorker(w)
						}
					}
				},
			}
			start := time.Now()
			_, st, err := d.Predict(g, cfg)
			wall := time.Since(start)
			if !errors.Is(err, ErrPartitionLost) {
				t.Fatalf("err = %v, want ErrPartitionLost", err)
			}
			if wall > 2*deadline {
				t.Errorf("failed after %v, want within the %v phase deadline", wall, deadline)
			}
			if st.WorkersDead != len(c.kills) {
				t.Errorf("WorkersDead = %d, want %d", st.WorkersDead, len(c.kills))
			}
		})
	}
}

// TestDistCancelMidSuperstep pins the cancellation satellite: a context
// cancelled while a superstep is stalled must return promptly (well under
// 2× the phase deadline) with ctx's error, close every worker connection,
// and leave the resident workers reusable for the next job.
func TestDistCancelMidSuperstep(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	// Worker 0 stalls for 1s inside its first partial stream — long enough
	// that the cancel always lands mid-superstep.
	addrs := chaosPool(t, 2, func(w int) []wire.ChaosEvent {
		if w != 0 {
			return nil
		}
		return []wire.ChaosEvent{{Dir: wire.ChaosWrites, Op: wire.ChaosDelay, At: 1024, Delay: time.Second}}
	})
	const deadline = 5 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := Dist{Addrs: addrs, Seed: 42, StepTimeout: deadline}.PredictCtx(ctx, g, cfg)
	wall := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall >= 2*deadline {
		t.Errorf("cancel returned after %v, want < %v", wall, 2*deadline)
	}

	// The workers saw their sessions die, not their processes: the same
	// fleet must serve the next (healthy) job. The pool serves sessions
	// sequentially like a real worker, so this also waits out worker 0's
	// stalled first session ending.
	want, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Dist{Addrs: addrs, Seed: 42, StepTimeout: deadline}.Predict(g, cfg)
	if err != nil {
		t.Fatalf("rerun on the same workers: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		diffPredictions(t, want, got)
	}
}

// TestDistReplicasEquivalence pins the healthy replicated paths: any
// replica factor (including a clamped one and a query-scoped run) must be
// invisible in the results and visible in the stats.
func TestDistReplicasEquivalence(t *testing.T) {
	g := testGraph(t, 200, 7)
	cfg := core.Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 4, ThrGamma: 10, Seed: 42}
	full, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("factors", func(t *testing.T) {
		for _, c := range []struct{ workers, replicas, wantReps, wantWorkers int }{
			{4, 2, 2, 4},
			{6, 3, 3, 6},
			{4, 3, 3, 3}, // 4/3 = one partition group of 3; the 4th worker is unused
			{2, 5, 2, 2}, // clamped to the fleet size
		} {
			addrs := workerPool(t, c.workers)
			got, st, err := Dist{Addrs: addrs, Seed: 42, Replicas: c.replicas}.Predict(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(full, got) {
				diffPredictions(t, full, got)
			}
			if st.Replicas != c.wantReps || st.Workers != c.wantWorkers {
				t.Errorf("workers=%d replicas=%d: stats Workers=%d Replicas=%d, want %d/%d",
					c.workers, c.replicas, st.Workers, st.Replicas, c.wantWorkers, c.wantReps)
			}
		}
	})
	t.Run("scoped", func(t *testing.T) {
		sources := []graph.VertexID{3, 50, 101}
		scfg := cfg
		scfg.Sources = sources
		want := filterToSources(full, sources)
		addrs := workerPool(t, 4)
		got, st, err := Dist{Addrs: addrs, Seed: 42, Replicas: 2}.Predict(g, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			diffPredictions(t, want, got)
		}
		if st.Replicas != 2 {
			t.Errorf("Replicas = %d, want 2", st.Replicas)
		}
	})
}
