package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// TestBackendsStorageEquivalence is the cross-representation oracle: every
// backend must produce bit-identical predictions whether the graph arrives
// as the heap CSR, the mmap-backed zero-copy view or the varint-packed
// adjacency — for full runs and for query-scoped runs. This is what lets
// snaple-serve map a snapshot instead of decoding it without changing a
// single prediction.
func TestBackendsStorageEquivalence(t *testing.T) {
	g := testGraph(t, 250, 13)
	dir := t.TempDir()
	write := func(name string, packed bool) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteSnapshotOpts(f, g, graph.SnapshotOptions{Packed: packed}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	open := func(path string) graph.View {
		v, info, err := graph.OpenGraphFile(path, graph.ReadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if info.Version < 2 {
			t.Fatalf("%s: expected a v2 snapshot, got v%d", path, info.Version)
		}
		return v
	}
	vMap := open(write("plain.sgr", false))
	vPacked := open(write("packed.sgr", true))
	if _, ok := vPacked.(*graph.Packed); !ok {
		t.Fatalf("packed snapshot opened as %T", vPacked)
	}

	sources := []graph.VertexID{0, 3, 50, 51, 120, 249}
	for _, scoped := range []bool{false, true} {
		cfg := core.Config{
			Score: mustScore(t, "linearSum"), K: 5, KLocal: 6, ThrGamma: 12, Seed: 42,
		}
		if scoped {
			cfg.Sources = sources
		}
		for _, be := range []Backend{
			Serial{}, Local{Workers: 3}, Sim{Nodes: 2, Seed: 9}, Dist{InProc: 2, Seed: 42},
		} {
			want, _, err := be.Predict(g, cfg)
			if err != nil {
				t.Fatalf("%s heap (scoped=%v): %v", be.Name(), scoped, err)
			}
			for _, rep := range []struct {
				name string
				v    graph.View
			}{{"mmap", vMap}, {"packed", vPacked}} {
				got, _, err := be.Predict(rep.v, cfg)
				if err != nil {
					t.Fatalf("%s %s (scoped=%v): %v", be.Name(), rep.name, scoped, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s over %s (scoped=%v) diverges from the heap CSR", be.Name(), rep.name, scoped)
					diffPredictions(t, want, got)
				}
			}
		}
	}
}
