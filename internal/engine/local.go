package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Local runs Algorithm 2 directly over the shared-memory CSR with goroutine
// sharding over vertex ranges: no partitioning, no replication, no cost
// accounting — just the three scoring steps at memory speed.
//
// Each step is embarrassingly parallel across vertices (step 2 reads the
// step-1 output of a vertex's neighbours, step 3 the step-2 output), so the
// backend runs one work-stealing pass per step with a barrier in between.
// Workers claim fixed-size vertex ranges off a shared atomic counter —
// cheap enough to balance skewed degree distributions without per-vertex
// contention — and keep per-worker scratch buffers (core.Scratch) so the
// hot loops allocate only the retained results.
//
// Results are bit-identical to core.ReferenceSnaple for every worker count:
// all draws are hash-keyed and all folds order-independent (see steps.go in
// internal/core), and every vertex's output is written by exactly one
// worker.
type Local struct {
	// Workers bounds the goroutines per step; 0 means GOMAXPROCS.
	Workers int
}

// Name implements Backend.
func (Local) Name() string { return "local" }

// chunk is the number of vertices a worker claims at a time. Small enough
// to balance power-law degree skew, large enough to amortise the atomic.
const chunk = 256

// Predict implements Backend.
func (l Local) Predict(g *graph.Digraph, cfg core.Config) (core.Predictions, Stats, error) {
	start := time.Now()
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := Stats{Engine: "local", Workers: workers}

	r, err := core.NewStepRunner(g, cfg)
	if err != nil {
		return nil, st, err
	}
	n := g.NumVertices()

	// Step 1: truncated neighbourhoods Γ̂.
	trunc := make([][]graph.VertexID, n)
	forEachVertex(r, workers, n, func(s *core.Scratch, u graph.VertexID) {
		trunc[u] = r.Truncate(u, s)
	})

	// Step 2: raw similarities and k_local relay selection.
	sims := make([][]core.VertexSim, n)
	forEachVertex(r, workers, n, func(s *core.Scratch, u graph.VertexID) {
		sims[u] = r.Relays(u, trunc, s)
	})

	// Step 3: path combination and top-k aggregation.
	pred := make(core.Predictions, n)
	if r.Config().Paths == 3 {
		twoHop := make([][]core.PathCand, n)
		forEachVertex(r, workers, n, func(s *core.Scratch, v graph.VertexID) {
			twoHop[v] = r.TwoHopPaths(v, sims)
		})
		forEachVertex(r, workers, n, func(s *core.Scratch, u graph.VertexID) {
			pred[u] = r.Combine3(u, trunc, sims, twoHop, s)
		})
	} else {
		forEachVertex(r, workers, n, func(s *core.Scratch, u graph.VertexID) {
			pred[u] = r.Combine(u, trunc, sims, s)
		})
	}

	st.WallSeconds = time.Since(start).Seconds()
	return pred, st, nil
}

// forEachVertex executes fn for every vertex in [0, n), sharding chunked
// vertex ranges over up to workers goroutines with work stealing. Each
// goroutine gets its own Scratch; fn must write only to its vertex's slot.
func forEachVertex(r *core.StepRunner, workers, n int, fn func(*core.Scratch, graph.VertexID)) {
	if workers <= 1 || n <= chunk {
		s := r.NewScratch()
		for u := 0; u < n; u++ {
			fn(s, graph.VertexID(u))
		}
		return
	}
	if chunks := (n + chunk - 1) / chunk; workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := r.NewScratch()
			for {
				hi := next.Add(chunk)
				lo := hi - chunk
				if lo >= int64(n) {
					return
				}
				if hi > int64(n) {
					hi = int64(n)
				}
				for u := lo; u < hi; u++ {
					fn(s, graph.VertexID(u))
				}
			}
		}()
	}
	wg.Wait()
}
