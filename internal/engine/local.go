package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Local runs Algorithm 2 directly over the shared-memory CSR with goroutine
// sharding over vertex ranges: no partitioning, no replication, no cost
// accounting — just the three scoring steps at memory speed.
//
// Each step materialises its per-vertex output in a flat core.Arena — one
// offsets table plus one shared backing array, the same layout as the CSR
// itself — built with a count pass, a serial prefix sum, and a fill pass
// (arena.go documents the protocol). Together with per-worker scratch
// buffers (core.Scratch) this makes the steady-state loop allocation-free
// per vertex: a full prediction run costs two allocations per step instead
// of one per vertex, which on billion-edge graphs is the difference between
// a GC tracking dozens of objects and hundreds of millions.
//
// Workers claim vertex chunks off a shared atomic counter. Chunk boundaries
// are degree-aware: each chunk covers at most chunkVerts vertices and
// roughly chunkEdges out-edges, so one hub vertex cannot serialize a worker
// behind a fixed-width range on power-law graphs.
//
// Results are bit-identical to core.ReferenceSnaple for every worker count:
// all draws are hash-keyed and all folds order-independent (see steps.go in
// internal/core), and every vertex's output is written by exactly one
// worker.
type Local struct {
	// Workers bounds the goroutines per step; 0 means GOMAXPROCS.
	Workers int
}

// Name implements Backend.
func (Local) Name() string { return "local" }

const (
	// chunkVerts caps the vertices per claimed chunk — small enough to
	// balance sparse regions, large enough to amortise the atomic.
	chunkVerts = 256
	// chunkEdges caps (approximately) the adjacency mass per chunk, so a
	// chunk holding a hub is cut short and its neighbours spread over other
	// workers.
	chunkEdges = 4096
)

// Predict implements Backend.
func (l Local) Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	// Both MemStats reads sit outside the timed window so their
	// stop-the-world pauses never inflate WallSeconds/EdgesPerSec.
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := Stats{Engine: "local", Workers: workers}

	r, err := core.NewStepRunner(g, cfg)
	if err != nil {
		return nil, st, err
	}
	n := g.NumVertices()

	// Each pass iterates one step's vertex scope: all n vertices on a full
	// run (verts nil, one shared set of chunk bounds), or the step's
	// frontier member list on a query-scoped run — the vertex loop itself
	// is restricted, not just the per-vertex work.
	f := r.Frontier()
	var full pass
	if f == nil {
		full = pass{bounds: degreeChunks(g, nil)}
	} else {
		st.FrontierVertices = f.Size()
	}
	passFor := func(set *core.VertexSet) pass {
		if f == nil {
			return full
		}
		return pass{verts: set.Members(), bounds: degreeChunks(g, set.Members())}
	}

	// Step 1: truncated neighbourhoods Γ̂ (count pass, prefix sum, fill pass).
	truncPass := passFor(f.StepSet(core.DistTruncate))
	trunc := core.NewArena[graph.VertexID](n)
	forEachVertex(r, workers, truncPass, func(w *worker, u graph.VertexID) {
		trunc.SetCount(u, r.TruncateCount(u, w.s))
	})
	trunc.FinishCounts()
	forEachVertex(r, workers, truncPass, func(w *worker, u graph.VertexID) {
		r.TruncateFill(u, trunc.Row(u), w.s)
	})

	// Step 2: raw similarities and k_local relay selection.
	simsPass := passFor(f.StepSet(core.DistRelays))
	sims := core.NewArena[core.VertexSim](n)
	forEachVertex(r, workers, simsPass, func(w *worker, u graph.VertexID) {
		sims.SetCount(u, r.RelayCount(u))
	})
	sims.FinishCounts()
	forEachVertex(r, workers, simsPass, func(w *worker, u graph.VertexID) {
		r.RelaysFill(u, trunc, sims.Row(u), w.s)
	})

	// Step 3: path combination and top-k aggregation. Final predictions are
	// the run's retained output: each worker appends them to its own buffer
	// and pred[u] aliases the region, so the per-vertex cost is amortised
	// append growth instead of one allocation per vertex.
	pred := make(core.Predictions, n)
	st.ScoredVertices = n
	if f != nil {
		st.ScoredVertices = f.Pred.Len()
	}
	if r.Config().Paths == 3 {
		twoPass := passFor(f.StepSet(core.DistTwoHop))
		twoHop := core.NewArena[core.PathCand](n)
		forEachVertex(r, workers, twoPass, func(w *worker, v graph.VertexID) {
			twoHop.SetCount(v, r.TwoHopCount(v, sims))
		})
		twoHop.FinishCounts()
		forEachVertex(r, workers, twoPass, func(w *worker, v graph.VertexID) {
			r.TwoHopFill(v, sims, twoHop.Row(v))
		})
		forEachVertex(r, workers, passFor(f.StepSet(core.DistCombine3)), func(w *worker, u graph.VertexID) {
			begin := len(w.preds)
			w.preds = r.Combine3Append(u, trunc, sims, twoHop, w.s, w.preds)
			if len(w.preds) > begin {
				pred[u] = w.preds[begin:len(w.preds):len(w.preds)]
			}
		})
	} else {
		forEachVertex(r, workers, passFor(f.StepSet(core.DistCombine)), func(w *worker, u graph.VertexID) {
			begin := len(w.preds)
			w.preds = r.CombineAppend(u, trunc, sims, w.s, w.preds)
			if len(w.preds) > begin {
				pred[u] = w.preds[begin:len(w.preds):len(w.preds)]
			}
		})
	}

	st.WallSeconds = time.Since(start).Seconds()
	if st.WallSeconds > 0 {
		st.EdgesPerSec = float64(g.NumEdges()) / st.WallSeconds
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	st.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	st.AllocObjects = int64(m1.Mallocs - m0.Mallocs)
	return pred, st, nil
}

// worker is the per-goroutine state of a pass: the reusable step scratch
// plus the retained prediction buffer of step 3.
type worker struct {
	s     *core.Scratch
	preds []core.Prediction
}

// pass is one parallel sweep's vertex sequence: the explicit member list of
// a frontier set (query-scoped run), or — when verts is nil — the identity
// sequence 0..n-1 (full run). bounds index positions of the sequence.
type pass struct {
	verts  []graph.VertexID
	bounds []int
}

// vertex maps a sequence position to its vertex.
func (p pass) vertex(i int) graph.VertexID {
	if p.verts == nil {
		return graph.VertexID(i)
	}
	return p.verts[i]
}

// degreeChunks splits a vertex sequence (verts, or [0, n) when verts is
// nil) into contiguous chunks of at most chunkVerts vertices and roughly
// chunkEdges out-edges each. The boundaries are computed once per sequence
// and shared by every pass over it.
func degreeChunks(g graph.View, verts []graph.VertexID) []int {
	n := g.NumVertices()
	if verts != nil {
		n = len(verts)
	}
	bounds := make([]int, 1, n/chunkVerts+2)
	vcount, edges := 0, 0
	for i := 0; i < n; i++ {
		u := graph.VertexID(i)
		if verts != nil {
			u = verts[i]
		}
		vcount++
		edges += g.OutDegree(u)
		if vcount >= chunkVerts || edges >= chunkEdges {
			bounds = append(bounds, i+1)
			vcount, edges = 0, 0
		}
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	return bounds
}

// forEachVertex executes fn for every vertex of the pass's sequence,
// sharding degree-aware chunks over up to workers goroutines with work
// stealing. Each goroutine gets its own worker state; fn must write only to
// its vertex's slot (or arena row).
func forEachVertex(r *core.StepRunner, workers int, p pass, fn func(*worker, graph.VertexID)) {
	n := p.bounds[len(p.bounds)-1]
	chunks := len(p.bounds) - 1
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		w := &worker{s: r.NewScratch()}
		for i := 0; i < n; i++ {
			fn(w, p.vertex(i))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{s: r.NewScratch()}
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				for i := p.bounds[c]; i < p.bounds[c+1]; i++ {
					fn(w, p.vertex(i))
				}
			}
		}()
	}
	wg.Wait()
}
