package engine

import (
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Serial is the single-threaded reference backend: a thin adapter over
// core.ReferenceSnaple. It is the slowest substrate and the semantic anchor
// — the equivalence tests hold every other backend to its exact output.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Predict implements Backend.
func (Serial) Predict(g *graph.Digraph, cfg core.Config) (core.Predictions, Stats, error) {
	start := time.Now()
	pred, err := core.ReferenceSnaple(g, cfg)
	st := Stats{Engine: "serial", Workers: 1, WallSeconds: time.Since(start).Seconds()}
	return pred, st, err
}
