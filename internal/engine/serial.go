package engine

import (
	"runtime"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Serial is the single-threaded reference backend: a thin adapter over
// core.ReferenceSnaple. It is the slowest substrate and the semantic anchor
// — the equivalence tests hold every other backend to its exact output.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Predict implements Backend.
func (Serial) Predict(g graph.View, cfg core.Config) (core.Predictions, Stats, error) {
	// MemStats reads stay outside the timed window (see Local.Predict).
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	pred, err := core.ReferenceSnaple(g, cfg)
	st := Stats{Engine: "serial", Workers: 1, WallSeconds: time.Since(start).Seconds(), ScoredVertices: g.NumVertices()}
	if st.WallSeconds > 0 {
		st.EdgesPerSec = float64(g.NumEdges()) / st.WallSeconds
	}
	if err == nil {
		// The reference computed the same closure internally; recomputing it
		// for the report costs one pass over the closure's adjacency.
		if f, ferr := core.NewFrontier(g, cfg); ferr == nil && f != nil {
			st.FrontierVertices = f.Size()
			st.ScoredVertices = f.Pred.Len()
		}
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	st.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	st.AllocObjects = int64(m1.Mallocs - m0.Mallocs)
	return pred, st, err
}
