package wire

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestChaosTransportScript pins the fault injector itself: offsets are
// exact, faults fire once, and the stream around them is untouched.
func TestChaosTransportScript(t *testing.T) {
	t.Run("corrupt-one-byte", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		ct := NewChaosTransport(b, []ChaosEvent{{Dir: ChaosWrites, Op: ChaosCorrupt, At: 3}})
		go func() {
			_, _ = ct.Write([]byte("abcdefgh"))
			ct.Close()
		}()
		got, err := io.ReadAll(a)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte("abcDefgh") // 'd' ^ 0x20
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q, want %q", got, want)
		}
	})
	t.Run("cut-at-offset", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		ct := NewChaosTransport(b, []ChaosEvent{{Dir: ChaosWrites, Op: ChaosCut, At: 4}})
		res := make(chan error, 1)
		go func() {
			_, err := ct.Write([]byte("abcdefgh"))
			res <- err
		}()
		got, _ := io.ReadAll(a)
		if !bytes.Equal(got, []byte("abcd")) {
			t.Fatalf("read %q before the cut, want %q", got, "abcd")
		}
		if err := <-res; err == nil {
			t.Fatal("cut write reported success")
		}
	})
	t.Run("drop-blackholes-writes", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		ct := NewChaosTransport(b, []ChaosEvent{{Dir: ChaosWrites, Op: ChaosDrop, At: 2}})
		go func() {
			if n, err := ct.Write([]byte("abcdefgh")); n != 8 || err != nil {
				t.Errorf("blackholed write: n=%d err=%v, want full success", n, err)
			}
			ct.Close()
		}()
		got, _ := io.ReadAll(a)
		if !bytes.Equal(got, []byte("ab")) {
			t.Fatalf("read %q, want only the pre-drop %q", got, "ab")
		}
	})
	t.Run("delay-then-continue", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		const pause = 50 * time.Millisecond
		ct := NewChaosTransport(b, []ChaosEvent{{Dir: ChaosWrites, Op: ChaosDelay, At: 4, Delay: pause}})
		start := time.Now()
		go func() {
			_, _ = ct.Write([]byte("abcdefgh"))
			ct.Close()
		}()
		got, _ := io.ReadAll(a)
		if !bytes.Equal(got, []byte("abcdefgh")) {
			t.Fatalf("read %q, want the full untouched stream", got)
		}
		if d := time.Since(start); d < pause {
			t.Fatalf("stream finished in %v, want a %v stall", d, pause)
		}
	})
}

// TestWorkerSurvivesHostileSessions is the resident-worker hardening
// satellite: garbage before the handshake, a corrupt hello, and a corrupt
// frame mid-session must each cost exactly one session — a typed error
// frame where the transport still works, then a close — and the worker must
// serve the next coordinator normally. The healthy mini-session after every
// hostile one is the survival assertion.
func TestWorkerSurvivesHostileSessions(t *testing.T) {
	addr := serveWorkers(t, ServeOptions{})
	healthy := func(t *testing.T) {
		t.Helper()
		c, err := DialWith(addr, DialOptions{})
		if err != nil {
			t.Fatalf("dial after hostile session: %v", err)
		}
		defer c.Close()
		runMiniSession(t, c)
	}

	t.Run("garbage-before-handshake", func(t *testing.T) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// No v3 magic, not valid gob either: the downgrade path's decoder
		// must fail the session, not the process.
		_, _ = raw.Write(bytes.Repeat([]byte{'X'}, 64))
		raw.Close()
		healthy(t)
	})

	t.Run("corrupt-hello", func(t *testing.T) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// v3 magic so the worker commits to the framed protocol, then junk
		// where the hello frame should be.
		_, _ = raw.Write(append([]byte(frameMagic), bytes.Repeat([]byte{0xFF}, 40)...))
		// The worker reports the handshake failure before closing; drain
		// until its close so the write above is known delivered.
		_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, _ = io.Copy(io.Discard, raw)
		raw.Close()
		healthy(t)
	})

	t.Run("corrupt-frame-mid-session", func(t *testing.T) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c := NewConn(raw)
		defer c.Close()
		if err := c.Send(&Msg{Kind: KindHello, Version: ProtocolV3}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Expect(KindHello); err != nil {
			t.Fatal(err)
		}
		job := JobSpec{Score: "linearSum", Alpha: 0.9, K: 5, KLocal: 20, ThrGamma: 200, Paths: 2, Seed: 42}
		if err := c.Send(&Msg{Kind: KindShip, Version: ProtocolV3, Job: job, Part: Partition{Part: 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Expect(KindReady); err != nil {
			t.Fatal(err)
		}
		// Mid-session garbage where a frame header belongs. The worker must
		// answer with a typed error frame, not die silently (and certainly
		// not crash the serve loop).
		if _, err := raw.Write(bytes.Repeat([]byte{0xAB}, 32)); err != nil {
			t.Fatal(err)
		}
		_, err = c.Expect(KindStepBegin)
		if err == nil {
			t.Fatal("worker accepted a garbage frame")
		}
		if !IsRemoteError(err) {
			t.Fatalf("err = %v, want the worker's typed error frame", err)
		}
		healthy(t)
	})
}
