package wire

import (
	"bytes"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// memConn adapts a byte buffer to the transport interface NewConn expects.
type memConn struct{ bytes.Buffer }

func (*memConn) Close() error { return nil }

// frameBytes encodes one message through a real connection and returns the
// raw frame.
func frameBytes(tb testing.TB, m *Msg, compress bool) []byte {
	tb.Helper()
	buf := &memConn{}
	c := NewConn(buf)
	c.SetCompression(compress)
	if err := c.Send(m); err != nil {
		tb.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

// decodeOne decodes the first frame of data through a real connection.
func decodeOne(data []byte) (*Msg, error) {
	src := &memConn{}
	src.Write(data)
	return NewConn(src).Recv()
}

// FuzzWireFrame throws arbitrary bytes at the v3 frame decoder. Truncations,
// bit-flips and lying length prefixes must surface as clean errors — never a
// panic, and never an allocation beyond the bytes that actually arrived
// (readCapped grows in bounded chunks; the per-array count guards check
// declared element counts against the remaining payload). Any input that
// does decode must re-encode canonically: decode → encode → decode → encode
// is byte-stable.
func FuzzWireFrame(f *testing.F) {
	job := JobSpec{Score: "linearSum", Alpha: 0.9, K: 5, KLocal: 20, ThrGamma: 200, Paths: 2, Seed: 42}
	part := Partition{
		Part: 1, NumVertices: 6,
		Locals:    []graph.VertexID{0, 2, 5},
		Deg:       []int32{2, 1, 0},
		EdgeSrc:   []int32{0, 0, 1},
		EdgeDst:   []int32{1, 2, 2},
		IsMaster:  []bool{true, false, true},
		HasRemote: []bool{true, false, false},
		Scope:     []uint8{7, 7, 3},
	}
	partials := []core.DistPartial{
		{V: 0, Nbrs: []graph.VertexID{2, 5}},
		{V: 2, Sims: []core.VertexSim{{V: 5, Sim: 0.25}}},
		{V: 5, Cands: []core.PathCand{{Z: 0, S: 1.5}, {Z: 2, S: -0.5}}},
	}
	states := []VertexState{{V: 2, Data: core.VData{
		Nbrs:   []graph.VertexID{0, 5},
		Sims:   []core.VertexSim{{V: 0, Sim: 0.5}},
		TwoHop: []core.PathCand{{Z: 5, S: 0.125}},
		Pred:   []core.Prediction{{Vertex: 5, Score: 2.5}},
	}}}
	result := WorkerResult{
		Part:  1,
		Preds: []VertexPreds{{V: 0, Preds: []core.Prediction{{Vertex: 5, Score: 1.25}}}},
		Stats: WorkerStats{Verts: 3, Edges: 3, BusySeconds: 0.5, AllocBytes: 4096, AllocObjects: 7, HeapBytes: 1 << 20},
	}
	seeds := []*Msg{
		{Kind: KindHello, Version: ProtocolV3, Features: featCompress},
		{Kind: KindShip, Version: ProtocolV3, Job: job, Part: part},
		{Kind: KindReady},
		{Kind: KindStepBegin, Step: core.DistRelays, Final: true},
		{Kind: KindPartials, Step: core.DistTruncate, Partials: partials},
		{Kind: KindForeign, Step: core.DistCombine, Partials: partials, Final: true},
		{Kind: KindRefresh, Step: core.DistRelays, States: states},
		{Kind: KindMirrors, Step: core.DistTwoHop, States: states, Final: true},
		{Kind: KindCollect},
		{Kind: KindResult, Result: result},
		{Kind: KindError, Err: "injected failure"},
	}
	for _, m := range seeds {
		f.Add(frameBytes(f, m, false))
	}
	// A compressed frame needs a payload big and repetitive enough to shrink.
	big := &Msg{Kind: KindMirrors, Step: core.DistRelays}
	for i := 0; i < 40; i++ {
		vs := VertexState{V: graph.VertexID(i)}
		for j := 0; j < 50; j++ {
			vs.Data.Sims = append(vs.Data.Sims, core.VertexSim{V: graph.VertexID(j), Sim: 0.5})
		}
		big.States = append(big.States, vs)
	}
	f.Add(frameBytes(f, big, true))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeOne(data)
		if err != nil {
			return // rejected cleanly
		}
		if m.Kind == KindError {
			return // surfaces as an error from Recv, never reaches here
		}
		enc1 := frameBytes(t, m, false)
		m2, err := decodeOne(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		enc2 := frameBytes(t, m2, false)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("decode→encode not canonical:\nfirst  %x\nsecond %x", enc1, enc2)
		}
	})
}
