package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// streamChunkBytes is the target payload size of one streamed batch chunk:
// big enough to amortise frame overhead, small enough that routing overlaps
// compute instead of trailing it.
const streamChunkBytes = 64 << 10

// ServeOptions configures a worker's listening side.
type ServeOptions struct {
	// MaxProto caps the protocol the worker negotiates: 0 (or ProtocolV3)
	// accepts v3 hellos and falls back to gob for legacy coordinators;
	// ProtocolV2 serves gob only — a stand-in for an old worker binary in
	// mixed-version fleet tests.
	MaxProto int
	// Resident pins a packed partition for the worker's lifetime. A resident
	// worker accepts KindAttach jobs (a fingerprint handshake instead of a
	// partition transfer) and serves connections concurrently, so several
	// coordinators — e.g. multiple serve front-ends — can share one standing
	// fleet. Each session builds its own compute state over the shared
	// read-only shard columns.
	Resident *ResidentShard
}

// Serve accepts coordinator sessions on l until the listener is closed,
// running them sequentially: a worker owns one partition at a time, so
// serving jobs back to back is the natural unit of isolation. Session
// errors are reported to logf (nil discards them) and do not stop the
// worker — the next coordinator gets a fresh session.
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	return ServeWith(l, logf, ServeOptions{})
}

// ServeWith is Serve with explicit protocol options.
func ServeWith(l net.Listener, logf func(format string, args ...any), o ServeOptions) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		logf("session from %s", c.RemoteAddr())
		if o.Resident != nil {
			// A resident worker is shared infrastructure: several coordinators
			// hold standing connections at once, so sessions run concurrently.
			// Each attach builds its own compute state over the shared
			// read-only shard columns, so sessions never alias mutable state.
			go func(c net.Conn) {
				if err := ServeConnWith(c, o); err != nil {
					logf("session from %s failed: %v", c.RemoteAddr(), err)
				} else {
					logf("session from %s done", c.RemoteAddr())
				}
			}(c)
			continue
		}
		if err := ServeConnWith(c, o); err != nil {
			logf("session from %s failed: %v", c.RemoteAddr(), err)
		} else {
			logf("session from %s done", c.RemoteAddr())
		}
	}
}

// ServeConn executes one coordinator session over rwc and closes it when the
// session ends. Protocol violations and compute errors are reported to the
// coordinator (KindError) and returned.
func ServeConn(rwc io.ReadWriteCloser) error {
	return ServeConnWith(rwc, ServeOptions{})
}

// ServeConnWith is ServeConn with explicit protocol options.
//
// A resident worker serves hostile input: a coordinator may die mid-frame, a
// chaos test may flip bits, a stray client may speak garbage. Every such
// failure must cost exactly one session — the error is reported to the peer
// as a typed KindError frame when the transport still works, the connection
// is closed, and the process stays up for the next coordinator. A panic in
// the session (a decode bug reached by malformed input) is converted to the
// same shape instead of taking the process down.
func ServeConnWith(rwc io.ReadWriteCloser, o ServeOptions) (err error) {
	conn, err := accept(rwc, o)
	if err != nil {
		if conn != nil {
			conn.SendError(err)
			conn.Close()
		} else {
			rwc.Close()
		}
		return err
	}
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("wire: session panic: %v", r)
			conn.SendError(err)
		}
	}()
	// One connection carries a sequence of jobs: each KindShip or KindAttach
	// replaces the current session, and collect leaves the connection open for
	// the next job — a resident worker's coordinators re-attach per query on
	// their standing connections. The measured window (m0) opens at the first
	// post-Ready message of each job, not at Ready: the coordinator barriers
	// on every worker's Ready before the first KindStepBegin, so by then all
	// sessions (in-process ones included) have finished building and the
	// window holds only superstep and collect work — the same boundary the
	// coordinator's own wall-clock and traffic counters use.
	var s *session
	var m0 runtime.MemStats
	m0set := false
	for {
		m, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator done with us
			}
			// A corrupt or malformed frame (CRC failure, truncated header,
			// bad payload) ends this session, not the process. Tell the peer
			// why if the transport still works; echoing a KindError the peer
			// itself sent would be noise.
			if !IsRemoteError(err) {
				conn.SendError(err)
			}
			return err
		}
		if m.Kind == KindShip || m.Kind == KindAttach {
			s, err = startSession(conn, m, o.Resident)
			if err != nil {
				conn.SendError(err)
				return err
			}
			if err := conn.Send(&Msg{Kind: KindReady}); err != nil {
				return err
			}
			m0set = false
			continue
		}
		if s == nil {
			err := fmt.Errorf("wire: expected ship, got %s", m.Kind)
			conn.SendError(err)
			return err
		}
		if !m0set {
			runtime.ReadMemStats(&m0)
			m0set = true
		}
		switch m.Kind {
		case KindStepBegin:
			if conn.Proto() == ProtocolV3 {
				err = s.runStepV3(m.Step, m.Final)
			} else {
				err = s.runStepV2(m.Step, m.Final)
			}
			if err != nil {
				conn.SendError(err)
				return err
			}
		case KindCollect:
			if err := conn.Send(&Msg{Kind: KindResult, Result: s.collect(&m0)}); err != nil {
				return err
			}
		default:
			err := fmt.Errorf("wire: unexpected %s mid-session", m.Kind)
			conn.SendError(err)
			return err
		}
	}
}

// recRef locates one buffered partial record: a local vertex index plus the
// record's extent inside a foreign chunk (or, with chunk == selfChunk, the
// session's own-partials buffer).
type recRef struct {
	li       int32
	chunk    int32
	off, end int32
}

const selfChunk = int32(-1)

// session is a worker's state for one job: the compute partition plus the
// master/mirror roles the coordinator elected, and (on v3) the reusable
// streaming buffers of the pipelined superstep.
type session struct {
	conn      *Conn
	partIdx   int
	part      *core.DistPartition
	isMaster  []bool
	hasRemote []bool
	busyNS    atomic.Int64 // gather/apply/refresh goroutines all contribute

	// v3 per-step state, reused across supersteps.
	sendBB BatchBuilder // outgoing chunk under construction (sender goroutine)
	// regather marks a partition whose masters can recompute their own
	// partial at apply time (core.DistPartition.GatherVertex) — the normal
	// case for deployed partitions. Without it, replicated masters' own
	// partials are kept across the exchange as records in selfBuf.
	regather  bool
	selfBuf   []byte  // own partials for replicated masters, as records
	selfOff   []int64 // per local: offset into selfBuf, -1 = none
	selfEnd   []int64
	applied   []bool   // per local: master applied inline during gather
	chunkBufs [][]byte // received foreign chunk payloads
	chunkN    int
	frefs     []recRef // refs into chunkBufs, built by the receive loop
	applyOne  [1]core.DistPartial
	applySc   core.DistPartial // merged-partial scratch for apply

	collectPreds []VertexPreds // result storage, presized at ship
}

// startSession builds the worker's state for one job. A KindShip message
// carries the whole partition over the wire; a KindAttach references the
// worker's resident shard by fingerprint, carrying only the job config and
// (for scoped queries) the sparse per-vertex roles the coordinator elected.
func startSession(conn *Conn, m *Msg, resident *ResidentShard) (*session, error) {
	if m.Version != conn.Proto() {
		return nil, fmt.Errorf("wire: protocol version %d, worker speaks %d", m.Version, conn.Proto())
	}
	cfg, err := m.Job.Config()
	if err != nil {
		return nil, err
	}
	if m.Kind == KindAttach {
		return attachSession(conn, m, cfg, resident)
	}
	if err := m.Part.Validate(); err != nil {
		return nil, err
	}
	part, err := core.NewDistPartition(cfg, m.Part.NumVertices, m.Part.Locals, m.Part.Deg, m.Part.EdgeSrc, m.Part.EdgeDst)
	if err != nil {
		return nil, err
	}
	if err := part.SetScope(m.Part.Scope); err != nil {
		return nil, err
	}
	s := &session{
		conn:      conn,
		partIdx:   m.Part.Part,
		part:      part,
		isMaster:  m.Part.IsMaster,
		hasRemote: m.Part.HasRemote,
		regather:  part.CanGatherVertex(),
	}
	s.prewarm()
	return s, nil
}

// attachSession builds a job session over the resident shard. The fingerprint
// must match the coordinator's manifest exactly — a mismatched worker would
// compute over a different graph and silently corrupt the fold, so the
// handshake fails with a typed error instead. Scoped attaches carry the
// coordinator's per-query roles for just the closure vertices: everything
// outside the entries keeps a zero scope mask, which the partition's scope
// machinery skips entirely. Unscoped attaches reuse the roles baked at pack
// time (copied, so a session can never mutate the shared resident columns).
func attachSession(conn *Conn, m *Msg, cfg core.Config, resident *ResidentShard) (*session, error) {
	if resident == nil {
		return nil, errors.New("wire: attach to a non-resident worker")
	}
	a := &m.Attach
	if a.Fingerprint != resident.Fingerprint {
		return nil, fmt.Errorf("wire: %s: coordinator has %016x, resident shard has %016x",
			manifestMismatchText, a.Fingerprint, resident.Fingerprint)
	}
	p := &resident.Part
	if int(a.Shard) != p.Part || int(a.Shards) != resident.Shards {
		return nil, fmt.Errorf("wire: attach for shard %d of %d, worker is resident for shard %d of %d",
			a.Shard, a.Shards, p.Part, resident.Shards)
	}
	part, err := core.NewDistPartition(cfg, p.NumVertices, p.Locals, p.Deg, p.EdgeSrc, p.EdgeDst)
	if err != nil {
		return nil, err
	}
	n := len(p.Locals)
	isMaster := make([]bool, n)
	hasRemote := make([]bool, n)
	if a.Scoped {
		scope := make([]uint8, n)
		for _, e := range a.Entries {
			li, ok := part.LocalIndex(e.V)
			if !ok {
				return nil, fmt.Errorf("wire: attach scope entry for vertex %d, which is not local to shard %d", e.V, p.Part)
			}
			scope[li] = e.Mask
			isMaster[li] = e.Role&RoleMaster != 0
			hasRemote[li] = e.Role&RoleRemote != 0
		}
		if err := part.SetScope(scope); err != nil {
			return nil, err
		}
	} else {
		copy(isMaster, p.IsMaster)
		copy(hasRemote, p.HasRemote)
	}
	s := &session{
		conn:      conn,
		partIdx:   p.Part,
		part:      part,
		isMaster:  isMaster,
		hasRemote: hasRemote,
		regather:  part.CanGatherVertex(),
	}
	s.prewarm()
	return s, nil
}

// prewarm pays for the streaming buffers' steady-state capacity during the
// ship handshake, before the coordinator starts timing the supersteps:
// the outgoing chunk builder, one foreign ref per replicated master (each
// remote mirror partition contributes at most one record per step), a pool
// of foreign chunk buffers, the connection's frame scratch, and the collect
// round's result storage (its size is bounded by K predictions per master).
// The pool still grows lazily past the prewarmed count on partitions with
// heavier exchanges.
func (s *session) prewarm() {
	s.sendBB.Reset()
	s.sendBB.Grow(streamChunkBytes + streamChunkBytes/4)
	nMasters, nR := 0, 0
	for li, m := range s.isMaster {
		if !m {
			continue
		}
		nMasters++
		if s.hasRemote[li] {
			nR++
		}
	}
	s.frefs = make([]recRef, 0, 2*nR)
	const prewarmChunks = 24
	s.chunkBufs = make([][]byte, 0, prewarmChunks)
	for range prewarmChunks {
		s.chunkBufs = append(s.chunkBufs, make([]byte, 0, streamChunkBytes+streamChunkBytes/4))
	}
	s.collectPreds = make([]VertexPreds, 0, nMasters)
	const predictionBytes = 12 // u32 vertex + f64 score
	resultBound := 64 + nMasters*(8+s.part.Config().K*predictionBytes)
	s.conn.encBuf = slices.Grow(s.conn.encBuf, resultBound)
	chunk := streamChunkBytes + streamChunkBytes/4
	s.conn.rdBuf = slices.Grow(s.conn.rdBuf, chunk)
	s.conn.rawBuf = slices.Grow(s.conn.rawBuf, chunk)
	s.conn.zwBuf.Grow(chunk)
}

func (s *session) addBusy(d time.Duration) { s.busyNS.Add(int64(d)) }

// resetStep readies the reusable v3 buffers for one superstep.
func (s *session) resetStep() {
	n := len(s.part.Locals())
	if len(s.applied) != n {
		s.applied = make([]bool, n)
	}
	clear(s.applied)
	if !s.regather {
		if len(s.selfOff) != n {
			s.selfOff = make([]int64, n)
			s.selfEnd = make([]int64, n)
		}
		for i := range s.selfOff {
			s.selfOff[i] = -1
		}
		s.selfBuf = s.selfBuf[:0]
	}
	s.frefs = s.frefs[:0]
	s.chunkN = 0
}

// runStepV3 executes one superstep on the pipelined v3 protocol: a sender
// goroutine streams gather partials up in chunks as the gather loop produces
// them, while this goroutine concurrently drains the foreign partials the
// coordinator routes back — communication overlaps compute on both sides of
// the connection. Masters without remote mirrors apply inline during the
// gather (no other partition can contribute to them); the rest apply after
// both streams end. The refresh round pipelines the same way.
func (s *session) runStepV3(step core.DistStep, final bool) error {
	s.resetStep()
	gerr := make(chan error, 1)
	go func() { gerr <- s.gatherAndSend(step) }()
	var ferr error
	for {
		f, err := s.conn.RecvRaw()
		if err != nil {
			ferr = err
			break
		}
		if f.Kind != KindForeign || f.Step != step {
			ferr = fmt.Errorf("wire: %s for %v during %v partials", f.Kind, f.Step, step)
			break
		}
		if err := s.bufferForeign(f.Payload); err != nil {
			ferr = err
			break
		}
		if f.Final {
			break
		}
	}
	// The gather sender always terminates: the coordinator drains partials
	// until our final chunk regardless of the routing outcome.
	if err := <-gerr; err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}

	t0 := time.Now()
	if err := s.applyMasters(step); err != nil {
		return err
	}
	s.addBusy(time.Since(t0))
	if final {
		// The last superstep's output is read back through collect; mirrors
		// never consume it, so the refresh round is skipped entirely.
		return nil
	}

	// Refresh round: stream master states up while applying the mirror
	// refreshes routed back — masters and mirrors are disjoint local
	// indices, so the two sides never touch the same replica.
	rerr := make(chan error, 1)
	go func() { rerr <- s.sendRefresh(step) }()
	ferr = nil
	for {
		f, err := s.conn.RecvRaw()
		if err != nil {
			ferr = err
			break
		}
		if f.Kind != KindMirrors || f.Step != step {
			ferr = fmt.Errorf("wire: %s for %v during %v refresh", f.Kind, f.Step, step)
			break
		}
		t0 := time.Now()
		err = ForEachStateRecord(f.Payload, func(v graph.VertexID, rec []byte) error {
			d, ok := s.part.MutableState(v)
			if !ok {
				return fmt.Errorf("wire: refresh for vertex %d, which is not local", v)
			}
			got, err := DecodeStateRecordInto(rec, d)
			if err != nil {
				return err
			}
			if got != v {
				return fmt.Errorf("wire: refresh record for %d keyed as %d", got, v)
			}
			return nil
		})
		s.addBusy(time.Since(t0))
		if err != nil {
			ferr = err
			break
		}
		if f.Final {
			break
		}
	}
	if err := <-rerr; err != nil {
		return err
	}
	return ferr
}

// gatherAndSend runs the streaming gather, routing each partial as it is
// produced: masters without mirrors apply inline, replicated masters buffer
// their record locally, everything else is chunked up to the coordinator.
// A final (possibly empty) chunk ends the stream; on a compute error the
// coordinator is told directly so the whole run unwinds instead of waiting
// on a final chunk that will never come.
func (s *session) gatherAndSend(step core.DistStep) error {
	t0 := time.Now()
	bb := &s.sendBB
	bb.Reset()
	err := s.part.GatherStream(step, func(li int32, dp *core.DistPartial) error {
		if s.isMaster[li] {
			if !s.hasRemote[li] {
				// No other partition replicates this vertex, so no foreign
				// partial can arrive: fold it down right now, while the
				// payload is still hot scratch.
				s.applied[li] = true
				s.applyOne[0] = *dp
				return s.part.Apply(step, dp.V, s.applyOne[:1])
			}
			if s.regather {
				// applyMasters recomputes this partial on demand — no copy,
				// no growing record buffer across the exchange.
				return nil
			}
			s.selfOff[li] = int64(len(s.selfBuf))
			s.selfBuf = appendPartialRecord(s.selfBuf, dp)
			s.selfEnd[li] = int64(len(s.selfBuf))
			return nil
		}
		bb.AppendPartial(dp)
		if bb.Len() >= streamChunkBytes {
			s.addBusy(time.Since(t0))
			err := s.conn.SendRaw(KindPartials, step, false, bb.Payload())
			bb.Reset()
			t0 = time.Now()
			return err
		}
		return nil
	})
	if err != nil {
		s.conn.SendError(err)
		return err
	}
	s.addBusy(time.Since(t0))
	return s.conn.SendRaw(KindPartials, step, true, bb.Payload())
}

// bufferForeign copies one routed foreign chunk into the session's reusable
// chunk buffers and indexes its records by local vertex.
func (s *session) bufferForeign(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("wire: foreign chunk of %d bytes", len(payload))
	}
	if len(payload) == 4 {
		return nil // empty terminator chunk
	}
	var buf []byte
	if s.chunkN < len(s.chunkBufs) {
		buf = append(s.chunkBufs[s.chunkN][:0], payload...)
		s.chunkBufs[s.chunkN] = buf
	} else {
		buf = append([]byte(nil), payload...)
		s.chunkBufs = append(s.chunkBufs, buf)
	}
	ci := int32(s.chunkN)
	s.chunkN++
	n := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	off := 4
	for i := 0; i < n; i++ {
		v, end, err := partialRecordAt(buf, off)
		if err != nil {
			return err
		}
		li, ok := s.part.LocalIndex(v)
		if !ok || !s.isMaster[li] {
			return fmt.Errorf("wire: routed partial for vertex %d, which is not mastered here", v)
		}
		s.frefs = append(s.frefs, recRef{li: int32(li), chunk: ci, off: int32(off), end: int32(end)})
		off = end
	}
	if off != len(buf) {
		return fmt.Errorf("wire: %d trailing bytes after foreign chunk records", len(buf)-off)
	}
	return nil
}

// applyMasters folds each master's own and foreign partials and applies.
// Every master applies every step — with no contribution anywhere the apply
// still runs and clears the step's output field, exactly like the serial
// engine's empty gather.
func (s *session) applyMasters(step core.DistStep) error {
	sort.Slice(s.frefs, func(i, j int) bool { return s.frefs[i].li < s.frefs[j].li })
	fi := 0
	var rg core.DistPartial
	for li, v := range s.part.Locals() {
		start := fi
		for fi < len(s.frefs) && s.frefs[fi].li == int32(li) {
			fi++
		}
		if !s.isMaster[li] {
			continue // bufferForeign already rejected refs to non-masters
		}
		if s.applied[li] {
			continue
		}
		sc := &s.applySc
		sc.V = v
		sc.Nbrs = sc.Nbrs[:0]
		sc.Sims = sc.Sims[:0]
		sc.Cands = sc.Cands[:0]
		n := 0
		if s.regather {
			ok, err := s.part.GatherVertex(step, int32(li), &rg)
			if err != nil {
				return err
			}
			if ok {
				sc.Nbrs = append(sc.Nbrs, rg.Nbrs...)
				sc.Sims = append(sc.Sims, rg.Sims...)
				sc.Cands = append(sc.Cands, rg.Cands...)
				n++
			}
		} else if s.selfOff[li] >= 0 {
			if err := decodePartialRecordInto(s.selfBuf[s.selfOff[li]:s.selfEnd[li]], sc); err != nil {
				return err
			}
			n++
		}
		for _, r := range s.frefs[start:fi] {
			if err := decodePartialRecordInto(s.chunkBufs[r.chunk][r.off:r.end], sc); err != nil {
				return err
			}
			n++
		}
		var parts []core.DistPartial
		if n > 0 {
			s.applyOne[0] = *sc
			parts = s.applyOne[:1]
		}
		if err := s.part.Apply(step, v, parts); err != nil {
			return err
		}
	}
	return nil
}

// sendRefresh streams the refreshed state of every replicated master up to
// the coordinator in chunks, ending with a final-flagged chunk.
func (s *session) sendRefresh(step core.DistStep) error {
	t0 := time.Now()
	bb := &s.sendBB
	bb.Reset()
	for li, v := range s.part.Locals() {
		if !s.isMaster[li] || !s.hasRemote[li] {
			continue
		}
		d, _ := s.part.State(v)
		bb.AppendState(v, &d)
		if bb.Len() >= streamChunkBytes {
			s.addBusy(time.Since(t0))
			if err := s.conn.SendRaw(KindRefresh, step, false, bb.Payload()); err != nil {
				return err
			}
			bb.Reset()
			t0 = time.Now()
		}
	}
	s.addBusy(time.Since(t0))
	return s.conn.SendRaw(KindRefresh, step, true, bb.Payload())
}

// runStepV2 executes one superstep on the legacy gob protocol, barriered
// exactly as protocol v2 always was: gather, exchange partials through the
// coordinator, apply at the masters and (unless final) broadcast refreshed
// state back through the coordinator to the mirrors.
func (s *session) runStepV2(step core.DistStep, final bool) error {
	t0 := time.Now()
	partials, err := s.part.Gather(step)
	if err != nil {
		return err
	}
	// Split: partials for vertices mastered here wait for the apply phase;
	// the rest go up to the coordinator for routing.
	locals := s.part.Locals()
	mine := make([][]core.DistPartial, len(locals))
	var foreign []core.DistPartial
	for _, dp := range partials {
		li, _ := s.part.LocalIndex(dp.V) // gather only emits local vertices
		if s.isMaster[li] {
			mine[li] = append(mine[li], dp)
		} else {
			foreign = append(foreign, dp)
		}
	}
	s.addBusy(time.Since(t0))

	if err := s.conn.Send(&Msg{Kind: KindPartials, Step: step, Partials: foreign}); err != nil {
		return err
	}
	fm, err := s.conn.Expect(KindForeign)
	if err != nil {
		return err
	}
	if fm.Step != step {
		return fmt.Errorf("wire: foreign partials for %v during %v", fm.Step, step)
	}

	t0 = time.Now()
	for _, dp := range fm.Partials {
		li, ok := s.part.LocalIndex(dp.V)
		if !ok || !s.isMaster[li] {
			return fmt.Errorf("wire: routed partial for vertex %d, which is not mastered here", dp.V)
		}
		mine[li] = append(mine[li], dp)
	}
	for li, v := range locals {
		if !s.isMaster[li] {
			continue
		}
		if err := s.part.Apply(step, v, mine[li]); err != nil {
			return err
		}
	}
	if final {
		// The last superstep's output is read back through collect; mirrors
		// never consume it, so the refresh round is skipped entirely.
		s.addBusy(time.Since(t0))
		return nil
	}
	var states []VertexState
	for li, v := range locals {
		if !s.isMaster[li] || !s.hasRemote[li] {
			continue
		}
		d, _ := s.part.State(v)
		states = append(states, VertexState{V: v, Data: d})
	}
	s.addBusy(time.Since(t0))

	if err := s.conn.Send(&Msg{Kind: KindRefresh, Step: step, States: states}); err != nil {
		return err
	}
	mm, err := s.conn.Expect(KindMirrors)
	if err != nil {
		return err
	}
	if mm.Step != step {
		return fmt.Errorf("wire: mirror refresh for %v during %v", mm.Step, step)
	}
	t0 = time.Now()
	for _, vs := range mm.States {
		if err := s.part.SetState(vs.V, vs.Data); err != nil {
			return err
		}
	}
	s.addBusy(time.Since(t0))
	return nil
}

// collect assembles the partition's master predictions and cost report.
func (s *session) collect(m0 *runtime.MemStats) WorkerResult {
	res := WorkerResult{
		Part: s.partIdx,
		Stats: WorkerStats{
			Verts:       len(s.part.Locals()),
			Edges:       s.part.NumEdges(),
			BusySeconds: time.Duration(s.busyNS.Load()).Seconds(),
		},
	}
	for li, v := range s.part.Locals() {
		if !s.isMaster[li] {
			continue
		}
		d, _ := s.part.State(v)
		if len(d.Pred) > 0 {
			s.collectPreds = append(s.collectPreds, VertexPreds{V: v, Preds: d.Pred})
		}
	}
	res.Preds = s.collectPreds
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	res.Stats.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	res.Stats.AllocObjects = int64(m1.Mallocs - m0.Mallocs)
	res.Stats.HeapBytes = int64(m1.HeapAlloc)
	return res
}
