package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"snaple/internal/core"
)

// Serve accepts coordinator sessions on l until the listener is closed,
// running them sequentially: a worker owns one partition at a time, so
// serving jobs back to back is the natural unit of isolation. Session
// errors are reported to logf (nil discards them) and do not stop the
// worker — the next coordinator gets a fresh session.
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		logf("session from %s", c.RemoteAddr())
		if err := ServeConn(c); err != nil {
			logf("session from %s failed: %v", c.RemoteAddr(), err)
		} else {
			logf("session from %s done", c.RemoteAddr())
		}
	}
}

// ServeConn executes one coordinator session over rwc and closes it when the
// session ends. Protocol violations and compute errors are reported to the
// coordinator (KindError) and returned.
func ServeConn(rwc io.ReadWriteCloser) error {
	conn := NewConn(rwc)
	defer conn.Close()
	s, err := newSession(conn)
	if err != nil {
		conn.SendError(err)
		return err
	}
	if err := conn.Send(&Msg{Kind: KindReady}); err != nil {
		return err
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for {
		m, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator done with us
			}
			return err
		}
		switch m.Kind {
		case KindStepBegin:
			if err := s.runStep(m.Step, m.Final); err != nil {
				conn.SendError(err)
				return err
			}
		case KindCollect:
			if err := conn.Send(&Msg{Kind: KindResult, Result: s.collect(&m0)}); err != nil {
				return err
			}
		default:
			err := fmt.Errorf("wire: unexpected %s mid-session", m.Kind)
			conn.SendError(err)
			return err
		}
	}
}

// session is a worker's state for one job: the compute partition plus the
// master/mirror roles the coordinator elected.
type session struct {
	conn      *Conn
	partIdx   int
	part      *core.DistPartition
	isMaster  []bool
	hasRemote []bool
	busy      time.Duration
}

// newSession performs the ship handshake.
func newSession(conn *Conn) (*session, error) {
	m, err := conn.Expect(KindShip)
	if err != nil {
		return nil, err
	}
	if m.Version != ProtocolVersion {
		return nil, fmt.Errorf("wire: protocol version %d, worker speaks %d", m.Version, ProtocolVersion)
	}
	if err := m.Part.Validate(); err != nil {
		return nil, err
	}
	cfg, err := m.Job.Config()
	if err != nil {
		return nil, err
	}
	part, err := core.NewDistPartition(cfg, m.Part.NumVertices, m.Part.Locals, m.Part.Deg, m.Part.EdgeSrc, m.Part.EdgeDst)
	if err != nil {
		return nil, err
	}
	if err := part.SetScope(m.Part.Scope); err != nil {
		return nil, err
	}
	return &session{
		conn:      conn,
		partIdx:   m.Part.Part,
		part:      part,
		isMaster:  m.Part.IsMaster,
		hasRemote: m.Part.HasRemote,
	}, nil
}

// runStep executes one superstep: gather, exchange partials through the
// coordinator, apply at the masters and (unless final) broadcast refreshed
// state back through the coordinator to the mirrors.
func (s *session) runStep(step core.DistStep, final bool) error {
	t0 := time.Now()
	partials, err := s.part.Gather(step)
	if err != nil {
		return err
	}
	// Split: partials for vertices mastered here wait for the apply phase;
	// the rest go up to the coordinator for routing.
	locals := s.part.Locals()
	mine := make([][]core.DistPartial, len(locals))
	var foreign []core.DistPartial
	for _, dp := range partials {
		li, _ := s.part.LocalIndex(dp.V) // gather only emits local vertices
		if s.isMaster[li] {
			mine[li] = append(mine[li], dp)
		} else {
			foreign = append(foreign, dp)
		}
	}
	s.busy += time.Since(t0)

	if err := s.conn.Send(&Msg{Kind: KindPartials, Step: step, Partials: foreign}); err != nil {
		return err
	}
	fm, err := s.conn.Expect(KindForeign)
	if err != nil {
		return err
	}
	if fm.Step != step {
		return fmt.Errorf("wire: foreign partials for %v during %v", fm.Step, step)
	}

	t0 = time.Now()
	for _, dp := range fm.Partials {
		li, ok := s.part.LocalIndex(dp.V)
		if !ok || !s.isMaster[li] {
			return fmt.Errorf("wire: routed partial for vertex %d, which is not mastered here", dp.V)
		}
		mine[li] = append(mine[li], dp)
	}
	for li, v := range locals {
		if !s.isMaster[li] {
			continue
		}
		if err := s.part.Apply(step, v, mine[li]); err != nil {
			return err
		}
	}
	if final {
		// The last superstep's output is read back through collect; mirrors
		// never consume it, so the refresh round is skipped entirely.
		s.busy += time.Since(t0)
		return nil
	}
	var states []VertexState
	for li, v := range locals {
		if !s.isMaster[li] || !s.hasRemote[li] {
			continue
		}
		d, _ := s.part.State(v)
		states = append(states, VertexState{V: v, Data: d})
	}
	s.busy += time.Since(t0)

	if err := s.conn.Send(&Msg{Kind: KindRefresh, Step: step, States: states}); err != nil {
		return err
	}
	mm, err := s.conn.Expect(KindMirrors)
	if err != nil {
		return err
	}
	if mm.Step != step {
		return fmt.Errorf("wire: mirror refresh for %v during %v", mm.Step, step)
	}
	t0 = time.Now()
	for _, vs := range mm.States {
		if err := s.part.SetState(vs.V, vs.Data); err != nil {
			return err
		}
	}
	s.busy += time.Since(t0)
	return nil
}

// collect assembles the partition's master predictions and cost report.
func (s *session) collect(m0 *runtime.MemStats) WorkerResult {
	res := WorkerResult{
		Part: s.partIdx,
		Stats: WorkerStats{
			Verts:       len(s.part.Locals()),
			Edges:       s.part.NumEdges(),
			BusySeconds: s.busy.Seconds(),
		},
	}
	for li, v := range s.part.Locals() {
		if !s.isMaster[li] {
			continue
		}
		d, _ := s.part.State(v)
		if len(d.Pred) > 0 {
			res.Preds = append(res.Preds, VertexPreds{V: v, Preds: d.Pred})
		}
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	res.Stats.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	res.Stats.AllocObjects = int64(m1.Mallocs - m0.Mallocs)
	res.Stats.HeapBytes = int64(m1.HeapAlloc)
	return res
}
