// Package wire is the network substrate of the dist execution backend: the
// framed binary protocol (v3) that a coordinator (engine.Dist) speaks with
// snaple-worker processes over TCP, plus the worker-side session loop
// (worker.go) shared by cmd/snaple-worker and in-process test workers, and a
// legacy gob protocol (v2) retained for mixed-version fleets.
//
// One TCP connection carries one prediction job. The ship/ready handshake
// and the collect exchange are strictly half-duplex; inside a superstep the
// v3 protocol pipelines — workers stream gather partials up in fixed-size
// chunks while concurrently draining the foreign partials the coordinator
// routes back, and likewise for the refresh/mirror round:
//
//	coordinator                       worker
//	----------- hello ------------->          protocol + feature negotiation
//	<---------- hello --------------          (granted features echoed back)
//	----------- ship -------------->          partition payload + job spec
//	<---------- ready --------------          (or error: bad payload/config)
//	then, per superstep:
//	----------- step-begin -------->
//	<>--------- partials/foreign --<>         chunked both ways concurrently;
//	                                          a final-flagged chunk ends each
//	                                          direction
//	<>--------- refresh/mirrors ---<>         idem (skipped on the final
//	                                          superstep)
//	finally:
//	----------- collect ----------->
//	<---------- result -------------          master predictions + stats
//
// v3 frames are length-prefixed, CRC-32C-checksummed flat sections (see
// frame.go for the exact layout); batch payloads decode as single-copy,
// exact-alloc slices, and the coordinator routes individual records without
// decoding them at all. Optional per-frame flate compression is negotiated
// through the hello feature bits.
//
// A v3 dialer recognises a legacy gob peer (the hello reply is not a v3
// frame) and redials speaking v2, unless pinned to v3; a v3 listener peeks
// the first four bytes and serves gob when they are not the frame magic.
// Old coordinators and workers therefore interoperate with new ones in
// either direction, at the legacy protocol's cost.
//
// Conn counts bytes and messages in both directions: the dist backend's
// Stats.CrossBytes/CrossMsgs are measured on the wire (everything after the
// ship phase), not simulated like the sim backend's.
package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// Protocol versions. A worker rejects a ship whose version differs from the
// one its connection negotiated — version skew must fail loudly, not
// silently change semantics (v2 itself exists because query scoping did).
const (
	// ProtocolV2 is the legacy gob envelope protocol.
	ProtocolV2 = 2
	// ProtocolV3 is the framed binary protocol (frame.go).
	ProtocolV3 = 3
)

// Kind discriminates the Msg envelope and the v3 frame header.
type Kind uint8

const (
	// KindShip carries the job spec and partition payload (coordinator → worker).
	KindShip Kind = iota + 1
	// KindReady acknowledges a ship (worker → coordinator).
	KindReady
	// KindStepBegin starts a superstep (coordinator → worker).
	KindStepBegin
	// KindPartials carries gather partials for vertices mastered elsewhere
	// (worker → coordinator). On v3 a superstep sends any number of chunks,
	// the last one final-flagged.
	KindPartials
	// KindForeign carries partials routed from other partitions for vertices
	// mastered here (coordinator → worker). Chunked like KindPartials on v3.
	KindForeign
	// KindRefresh carries refreshed master state for vertices with remote
	// mirrors (worker → coordinator). Chunked on v3.
	KindRefresh
	// KindMirrors carries refreshed state routed to this partition's mirror
	// copies (coordinator → worker). Chunked on v3.
	KindMirrors
	// KindCollect requests the final results (coordinator → worker).
	KindCollect
	// KindResult carries the partition's master predictions and run stats
	// (worker → coordinator).
	KindResult
	// KindError aborts the session; Err holds the cause (either direction).
	KindError
	// KindHello opens a v3 connection in both directions: the dialer's
	// requested version and feature bits, answered with the granted ones.
	KindHello
	// KindAttach starts a job on a resident worker — one that pinned its
	// partition at startup from a packed shard file. It carries the job spec
	// plus the fleet fingerprint and (for scoped runs) the sparse per-vertex
	// scope/role entries, in place of KindShip's full partition payload.
	KindAttach
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		KindShip: "ship", KindReady: "ready", KindStepBegin: "step-begin",
		KindPartials: "partials", KindForeign: "foreign", KindRefresh: "refresh",
		KindMirrors: "mirrors", KindCollect: "collect", KindResult: "result",
		KindError: "error", KindHello: "hello", KindAttach: "attach",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// JobSpec is a core.Config in shippable form: the Table 3 score is carried
// by (name, alpha) and reassembled remotely, because function values cannot
// cross the wire.
type JobSpec struct {
	Score    string
	Alpha    float64
	K        int
	KLocal   int
	ThrGamma int
	Policy   core.SelectionPolicy
	Paths    int
	Seed     uint64
}

// JobFromConfig converts a validated Config into its wire form. It fails
// when the score is not a named Table 3 configuration (a hand-assembled
// ScoreSpec with custom functions cannot be shipped).
func JobFromConfig(cfg core.Config) (JobSpec, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return JobSpec{}, err
	}
	// Round-trip the score now so a custom spec fails on the coordinator
	// with a clear error instead of on every worker.
	if _, err := core.ScoreByName(cfg.Score.Name, cfg.Score.Alpha); err != nil {
		return JobSpec{}, fmt.Errorf("wire: score %q is not shippable: %w", cfg.Score.Name, err)
	}
	return JobSpec{
		Score: cfg.Score.Name, Alpha: cfg.Score.Alpha,
		K: cfg.K, KLocal: cfg.KLocal, ThrGamma: cfg.ThrGamma,
		Policy: cfg.Policy, Paths: cfg.Paths, Seed: cfg.Seed,
	}, nil
}

// Config reassembles the core.Config a JobSpec describes.
func (j JobSpec) Config() (core.Config, error) {
	spec, err := core.ScoreByName(j.Score, j.Alpha)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Score: spec, K: j.K, KLocal: j.KLocal, ThrGamma: j.ThrGamma,
		Policy: j.Policy, Paths: j.Paths, Seed: j.Seed,
	}
	return cfg.Normalized()
}

// Partition is the serializable description of one worker's share of the
// vertex-cut: its local vertex table, the out-degrees of those vertices, the
// partition's edges as indices into the table, and the master/mirror roles
// the coordinator elected. It is everything core.NewDistPartition needs plus
// the routing roles the worker consults per superstep.
type Partition struct {
	// Part is the partition index in [0, workers).
	Part int
	// NumVertices is the global vertex count.
	NumVertices int
	// Locals holds the sorted global IDs of the vertices replicated here.
	Locals []graph.VertexID
	// Deg holds the full out-degree of each local vertex, aligned with Locals.
	Deg []int32
	// EdgeSrc/EdgeDst are the partition's edges as indices into Locals, in
	// global CSR order.
	EdgeSrc, EdgeDst []int32
	// IsMaster marks the local vertices whose master copy lives here.
	IsMaster []bool
	// HasRemote marks local masters that are replicated on other partitions
	// and therefore must broadcast refreshed state after each apply.
	HasRemote []bool
	// Scope holds each local vertex's frontier scope mask on a query-scoped
	// run (core.Scope* bits, aligned with Locals); nil for a full run. The
	// coordinator derives it from the global closure so workers never need
	// the source list, let alone the graph.
	Scope []uint8
}

// Validate checks the payload's internal consistency (lengths and index
// ranges the worker would otherwise discover mid-run).
func (p *Partition) Validate() error {
	switch {
	case p.Part < 0:
		return fmt.Errorf("wire: negative partition index %d", p.Part)
	case len(p.Deg) != len(p.Locals):
		return fmt.Errorf("wire: %d degrees for %d locals", len(p.Deg), len(p.Locals))
	case len(p.IsMaster) != len(p.Locals):
		return fmt.Errorf("wire: %d master flags for %d locals", len(p.IsMaster), len(p.Locals))
	case len(p.HasRemote) != len(p.Locals):
		return fmt.Errorf("wire: %d remote flags for %d locals", len(p.HasRemote), len(p.Locals))
	case len(p.EdgeSrc) != len(p.EdgeDst):
		return fmt.Errorf("wire: %d edge sources, %d edge targets", len(p.EdgeSrc), len(p.EdgeDst))
	case p.Scope != nil && len(p.Scope) != len(p.Locals):
		return fmt.Errorf("wire: %d scope masks for %d locals", len(p.Scope), len(p.Locals))
	}
	for i := range p.EdgeSrc {
		if p.EdgeSrc[i] < 0 || int(p.EdgeSrc[i]) >= len(p.Locals) ||
			p.EdgeDst[i] < 0 || int(p.EdgeDst[i]) >= len(p.Locals) {
			return fmt.Errorf("wire: edge %d outside the local table", i)
		}
	}
	return nil
}

// Role bits of a ScopeEntry.
const (
	// RoleMaster marks the vertex's master copy for this query.
	RoleMaster uint8 = 1 << 0
	// RoleRemote marks a master whose state is replicated on other touched
	// partitions and must broadcast refreshes after each apply.
	RoleRemote uint8 = 1 << 1
)

// ScopeEntry assigns one local vertex its frontier scope mask and routing
// role for a scoped job on a resident worker. Locals without an entry are
// outside the closure: mask zero, no role.
type ScopeEntry struct {
	V    graph.VertexID
	Mask uint8 // core.Scope* bits
	Role uint8 // Role* bits
}

// AttachSpec is KindAttach's payload: everything a resident worker needs to
// start a job against its pinned partition. The fingerprint stands in for the
// partition bytes — if it matches, coordinator and worker provably hold the
// same (graph, cut), so nothing else needs to cross the wire.
type AttachSpec struct {
	// Fingerprint is the fleet fingerprint the coordinator derived from its
	// graph and cut parameters; it must equal the worker's pinned one.
	Fingerprint uint64
	// Shard/Shards name the partition the coordinator believes this worker
	// pinned; a mismatch means the fleet is mis-wired.
	Shard, Shards int32
	// Scoped selects a query-scoped job: Entries override the shard's baked
	// full-run roles. When false the baked roles apply and Entries is empty.
	Scoped bool
	// Entries are the closure's local vertices (scoped jobs only).
	Entries []ScopeEntry
}

// manifestMismatchText is the wire marker for a fingerprint rejection: it
// crosses the boundary inside a KindError string, and IsManifestMismatch
// recovers the type on the coordinator side.
const manifestMismatchText = "manifest fingerprint mismatch"

// ErrManifestMismatch marks an attach rejected because the worker's pinned
// shard was packed from a different (graph, cut) than the coordinator's.
var ErrManifestMismatch = errors.New("wire: " + manifestMismatchText)

// IsManifestMismatch reports whether err is a fingerprint rejection — local,
// or remote (carried through a KindError frame).
func IsManifestMismatch(err error) bool {
	if errors.Is(err, ErrManifestMismatch) {
		return true
	}
	return err != nil && IsRemoteError(err) && strings.Contains(err.Error(), manifestMismatchText)
}

// ResidentShard is the partition a resident worker pins at startup: the
// payload a KindShip would carry, loaded once from a packed shard file, plus
// the fleet identity the attach handshake verifies.
type ResidentShard struct {
	// Fingerprint identifies the (graph, cut) the shard was packed from.
	Fingerprint uint64
	// Shards is the fleet width of the cut.
	Shards int
	// Part is the pinned partition with its baked full-run roles; Part.Part
	// is this worker's shard index.
	Part Partition
}

// ResidentFromShard adapts a loaded shard snapshot into the worker's pinned
// partition. The columns are shared, not copied: sessions treat them as
// read-only (attach copies the role columns before any per-query override).
func ResidentFromShard(s *graph.ShardFile) *ResidentShard {
	return &ResidentShard{
		Fingerprint: s.Fingerprint,
		Shards:      s.Shards,
		Part: Partition{
			Part:        s.Shard,
			NumVertices: s.NumVertices,
			Locals:      s.Locals,
			Deg:         s.Deg,
			EdgeSrc:     s.EdgeSrc,
			EdgeDst:     s.EdgeDst,
			IsMaster:    s.IsMaster,
			HasRemote:   s.HasRemote,
		},
	}
}

// VertexState pairs a vertex with its full replica state, for master→mirror
// refreshes.
type VertexState struct {
	V    graph.VertexID
	Data core.VData
}

// VertexPreds pairs a vertex with its final predictions — the collect-phase
// payload, slimmer than a full VertexState.
type VertexPreds struct {
	V     graph.VertexID
	Preds []core.Prediction
}

// WorkerStats is the per-worker cost report returned with the results.
type WorkerStats struct {
	// Verts/Edges are the partition's local table and edge counts.
	Verts, Edges int
	// BusySeconds is the worker's compute time (gather + apply + refresh),
	// excluding time blocked on the wire.
	BusySeconds float64
	// AllocBytes/AllocObjects are the worker process's heap deltas across the
	// supersteps (runtime.MemStats).
	AllocBytes, AllocObjects int64
	// HeapBytes is the worker's live heap after the final superstep — the
	// dist analog of the sim backend's per-node memory footprint.
	HeapBytes int64
}

// WorkerResult is the collect-phase payload.
type WorkerResult struct {
	Part  int
	Preds []VertexPreds
	Stats WorkerStats
}

// Msg is the single envelope every wire exchange uses. Kind selects which
// payload fields are meaningful; the rest stay zero and cost nothing on the
// wire (v3 encodes only the kind's payload; gob omits zero-valued fields).
type Msg struct {
	Kind     Kind
	Version  int    // KindShip, KindAttach, KindHello
	Features uint32 // KindHello: requested/granted feature bits
	Job      JobSpec
	Part     Partition  // KindShip
	Attach   AttachSpec // KindAttach
	Step     core.DistStep
	// Final marks the last superstep on KindStepBegin (no refresh/mirror
	// round follows) and the last chunk of a v3 streaming phase on
	// KindPartials/KindForeign/KindRefresh/KindMirrors.
	Final    bool
	Partials []core.DistPartial // KindPartials, KindForeign
	States   []VertexState      // KindRefresh, KindMirrors
	Result   WorkerResult       // KindResult
	Err      string             // KindError
}

// RawFrame is one received v3 frame with its payload left encoded — the
// coordinator's routing input. Payload is a view into the connection's
// scratch, valid only until the next Recv or RecvRaw.
type RawFrame struct {
	Kind    Kind
	Step    core.DistStep
	Final   bool
	Payload []byte
}

// countingRW wraps a transport and counts traffic in both directions. The
// counters are atomics so stats can be read while a session is in flight.
type countingRW struct {
	rw      io.ReadWriter
	in, out atomic.Int64
	msgIn   atomic.Int64
	msgOut  atomic.Int64
}

func (c *countingRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Counters is a point-in-time traffic snapshot of one connection.
type Counters struct {
	BytesIn, BytesOut int64
	MsgsIn, MsgsOut   int64
}

// Sub returns the delta c − base.
func (c Counters) Sub(base Counters) Counters {
	return Counters{
		BytesIn: c.BytesIn - base.BytesIn, BytesOut: c.BytesOut - base.BytesOut,
		MsgsIn: c.MsgsIn - base.MsgsIn, MsgsOut: c.MsgsOut - base.MsgsOut,
	}
}

// errRemote marks an error frame/message received from the peer, so dialers
// can tell a deliberate rejection from line noise.
var errRemote = errors.New("remote error")

// IsRemoteError reports whether err stems from a KindError frame the peer
// sent — a deliberate, well-formed rejection (bad config, version skew,
// compute failure) rather than transport noise. Coordinators use the
// distinction to classify failures: a remote rejection of the ship is
// deterministic and would repeat on every replica, while line noise just
// means the worker is dead.
func IsRemoteError(err error) bool { return errors.Is(err, errRemote) }

// Conn is a message stream over a transport, speaking either the v3 frame
// protocol or the legacy gob protocol, with traffic counting. It is not safe
// for concurrent Sends or concurrent Recvs, but one sender and one receiver
// may run concurrently — the v3 supersteps pipeline exactly that way.
type Conn struct {
	crw    *countingRW
	br     *bufio.Reader
	bw     *bufio.Writer
	closer io.Closer

	proto    int
	compress bool

	// gob machinery (v2 only), built lazily so v3 connections never pay for it.
	genc *gob.Encoder
	gdec *gob.Decoder

	// v3 scratch, reused across frames.
	whdr   [frameHeaderSize]byte
	rhdr   [frameHeaderSize]byte
	rdBuf  []byte // wire payload
	rawBuf []byte // decompressed payload
	encBuf []byte // outgoing payload under construction
	zwBuf  bytes.Buffer
	zrSrc  bytes.Reader
	fw     *flate.Writer
	fr     io.ReadCloser
}

// NewConn wraps a transport (net.Conn in production, net.Pipe in tests) in
// the v3 frame protocol, without a hello exchange — both ends must already
// agree (Dial/Serve negotiate; tests pair NewConn with NewConn).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	crw := &countingRW{rw: rwc}
	return &Conn{
		crw:    crw,
		br:     bufio.NewReader(crw),
		bw:     bufio.NewWriter(crw),
		closer: rwc,
		proto:  ProtocolV3,
	}
}

// NewGobConn wraps a transport in the legacy gob protocol (v2).
func NewGobConn(rwc io.ReadWriteCloser) *Conn {
	c := NewConn(rwc)
	c.downgradeGob()
	return c
}

// downgradeGob switches a fresh connection to the gob protocol. Reads go
// through the existing bufio.Reader, so bytes peeked during negotiation are
// preserved.
func (c *Conn) downgradeGob() *Conn {
	c.proto = ProtocolV2
	return c
}

// Proto returns the connection's protocol version (ProtocolV2 or ProtocolV3).
func (c *Conn) Proto() int { return c.proto }

// SetCompression toggles per-frame flate compression on a v3 connection.
// Production connections negotiate it via the hello feature bits; this is
// for endpoints created with NewConn directly (tests, benches).
func (c *Conn) SetCompression(on bool) {
	c.compress = on && c.proto == ProtocolV3
	if c.compress {
		c.preallocCompression()
	}
}

// DialOptions configures DialWith.
type DialOptions struct {
	// Proto pins the protocol: 0 negotiates (v3 preferred, gob fallback for
	// legacy workers), ProtocolV2 forces gob, ProtocolV3 requires v3 and
	// fails on a legacy peer.
	Proto int
	// Compress requests per-frame flate compression (v3 only, subject to
	// the worker granting it).
	Compress bool
	// HelloTimeout bounds the version handshake (default 2 minutes — a
	// worker busy with another session answers nothing at all, and that must
	// surface as an error, not a hang).
	HelloTimeout time.Duration
}

// Dial connects to a worker address, negotiating the newest protocol both
// ends speak.
func Dial(addr string) (*Conn, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects to a worker address with explicit protocol options.
func DialWith(addr string, o DialOptions) (*Conn, error) {
	switch o.Proto {
	case 0, ProtocolV2, ProtocolV3:
	default:
		return nil, fmt.Errorf("wire: unsupported protocol %d", o.Proto)
	}
	dialGob := func() (*Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
		}
		return NewGobConn(nc), nil
	}
	if o.Proto == ProtocolV2 {
		return dialGob()
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := NewConn(nc)
	if err := c.hello(o); err != nil {
		c.Close()
		var nerr net.Error
		switch {
		case errors.As(err, &nerr) && nerr.Timeout():
			// A busy worker, not an old one: the ship would hang the same way.
			return nil, fmt.Errorf("wire: hello to %s: %w", addr, err)
		case errors.Is(err, errRemote):
			// The peer understood us and said no.
			return nil, err
		case o.Proto == ProtocolV3:
			return nil, fmt.Errorf("wire: %s speaks the legacy gob protocol (v2) or is unreachable, and protocol v3 was required: %v", addr, err)
		}
		// Anything else — bad magic, EOF, a reset from a gob decoder choking
		// on our frame — is the signature of a legacy worker: redial in v2.
		return dialGob()
	}
	return c, nil
}

// hello runs the dialer's half of the v3 negotiation.
func (c *Conn) hello(o DialOptions) error {
	t := o.HelloTimeout
	if t == 0 {
		t = 2 * time.Minute
	}
	_ = c.SetDeadline(time.Now().Add(t))
	defer func() { _ = c.SetDeadline(time.Time{}) }()
	var feat uint32
	if o.Compress {
		feat |= featCompress
	}
	if err := c.Send(&Msg{Kind: KindHello, Version: ProtocolV3, Features: feat}); err != nil {
		return err
	}
	m, err := c.Recv()
	if err != nil {
		return err
	}
	if m.Kind != KindHello {
		return fmt.Errorf("wire: expected hello reply, got %s", m.Kind)
	}
	if m.Version != ProtocolV3 {
		return fmt.Errorf("wire: peer negotiated protocol %d, expected %d", m.Version, ProtocolV3)
	}
	if o.Compress && m.Features&featCompress != 0 {
		c.compress = true
		c.preallocCompression()
	}
	return nil
}

// accept runs the listener's half of the negotiation: peek the first bytes,
// answer a v3 hello with the granted features, or fall back to gob for a
// legacy coordinator (the peeked bytes stay buffered for its decoder).
// On error the partially-negotiated conn is returned alongside it when one
// exists, so the caller can report the failure to the peer before closing.
func accept(rwc io.ReadWriteCloser, o ServeOptions) (*Conn, error) {
	if o.MaxProto == ProtocolV2 {
		return NewGobConn(rwc), nil
	}
	c := NewConn(rwc)
	magic, err := c.br.Peek(len(frameMagic))
	if err != nil {
		return c, fmt.Errorf("wire: handshake peek: %w", err)
	}
	if string(magic) != frameMagic {
		return c.downgradeGob(), nil
	}
	m, err := c.Expect(KindHello)
	if err != nil {
		return c, err
	}
	if m.Version != ProtocolV3 {
		return c, fmt.Errorf("wire: peer requested protocol %d, worker speaks %d", m.Version, ProtocolV3)
	}
	grant := m.Features & featCompress
	if err := c.Send(&Msg{Kind: KindHello, Version: ProtocolV3, Features: grant}); err != nil {
		return c, err
	}
	if grant&featCompress != 0 {
		c.compress = true
		c.preallocCompression()
	}
	return c, nil
}

// Send encodes one message.
func (c *Conn) Send(m *Msg) error {
	if c.proto == ProtocolV2 {
		if c.genc == nil {
			c.genc = gob.NewEncoder(c.bw)
		}
		if err := c.genc.Encode(m); err != nil {
			return fmt.Errorf("wire: send %s: %w", m.Kind, err)
		}
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("wire: send %s: %w", m.Kind, err)
		}
		c.crw.msgOut.Add(1)
		return nil
	}
	payload, flags, err := appendMsgPayload(c.encBuf[:0], m)
	if err != nil {
		return err
	}
	c.encBuf = payload[:0]
	return c.writeFrame(m.Kind, flags, m.Step, payload)
}

// SendRaw sends a pre-encoded batch payload as one v3 frame, final-flagged
// when it ends the phase — the zero-copy path workers and the coordinator
// stream chunks through.
func (c *Conn) SendRaw(kind Kind, step core.DistStep, final bool, payload []byte) error {
	if c.proto != ProtocolV3 {
		return fmt.Errorf("wire: SendRaw on a v%d connection", c.proto)
	}
	var flags byte
	if final {
		flags |= flagFinal
	}
	return c.writeFrame(kind, flags, step, payload)
}

// Recv decodes the next message into a fresh envelope. (Both protocols
// allocate exactly the message's payload; gob additionally merges into
// presized fields, so reusing an envelope would leak state across messages.)
func (c *Conn) Recv() (*Msg, error) {
	if c.proto == ProtocolV2 {
		if c.gdec == nil {
			c.gdec = gob.NewDecoder(c.br)
		}
		m := new(Msg)
		if err := c.gdec.Decode(m); err != nil {
			if err == io.EOF {
				return nil, err
			}
			return nil, fmt.Errorf("wire: recv: %w", err)
		}
		c.crw.msgIn.Add(1)
		if m.Kind == KindError {
			return m, fmt.Errorf("wire: %w: %s", errRemote, m.Err)
		}
		return m, nil
	}
	kind, flags, step, payload, err := c.readFrame()
	if err != nil {
		if err == io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	m, err := decodeMsgPayload(kind, flags, step, payload)
	if err != nil {
		return nil, fmt.Errorf("wire: recv %s: %w", kind, err)
	}
	if m.Kind == KindError {
		return m, fmt.Errorf("wire: %w: %s", errRemote, m.Err)
	}
	return m, nil
}

// RecvRaw reads the next v3 frame without decoding its payload. An error
// frame surfaces as an error, like Recv's.
func (c *Conn) RecvRaw() (RawFrame, error) {
	if c.proto != ProtocolV3 {
		return RawFrame{}, fmt.Errorf("wire: RecvRaw on a v%d connection", c.proto)
	}
	kind, flags, step, payload, err := c.readFrame()
	if err != nil {
		if err == io.EOF {
			return RawFrame{}, err
		}
		return RawFrame{}, fmt.Errorf("wire: recv: %w", err)
	}
	if kind == KindError {
		return RawFrame{}, fmt.Errorf("wire: %w: %s", errRemote, string(payload))
	}
	return RawFrame{Kind: kind, Step: step, Final: flags&flagFinal != 0, Payload: payload}, nil
}

// Expect receives the next message and checks its kind.
func (c *Conn) Expect(kind Kind) (*Msg, error) {
	m, err := c.Recv()
	if err != nil {
		return m, err
	}
	if m.Kind != kind {
		return m, fmt.Errorf("wire: expected %s, got %s", kind, m.Kind)
	}
	return m, nil
}

// SetDeadline bounds every pending and future Send/Recv when the transport
// supports deadlines (net.Conn and net.Pipe do; a transport that does not is
// silently unbounded). The zero time clears the deadline. Coordinators use
// it to keep a handshake against a busy worker — one already serving another
// session never reads the next hello or ship — from hanging forever.
func (c *Conn) SetDeadline(t time.Time) error {
	if d, ok := c.closer.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// SendError best-effort reports an error to the peer before the session
// unwinds.
func (c *Conn) SendError(err error) {
	_ = c.Send(&Msg{Kind: KindError, Err: err.Error()})
}

// Counters snapshots the connection's traffic so far.
func (c *Conn) Counters() Counters {
	return Counters{
		BytesIn: c.crw.in.Load(), BytesOut: c.crw.out.Load(),
		MsgsIn: c.crw.msgIn.Load(), MsgsOut: c.crw.msgOut.Load(),
	}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.closer.Close() }
