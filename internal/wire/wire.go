// Package wire is the network substrate of the dist execution backend: the
// gob-encoded message protocol that a coordinator (engine.Dist) speaks with
// snaple-worker processes over TCP, plus the worker-side session loop
// (worker.go) shared by cmd/snaple-worker and in-process test workers.
//
// One TCP connection carries one prediction job as a strict half-duplex
// conversation — at any moment messages flow in only one direction, so the
// protocol cannot deadlock on full kernel buffers:
//
//	coordinator                       worker
//	----------- ship -------------->          partition payload + job spec
//	<---------- ready --------------          (or error: bad payload/config)
//	then, per superstep:
//	----------- step-begin -------->
//	<---------- partials -----------          gather partials for vertices
//	                                          mastered elsewhere
//	----------- foreign ----------->          partials routed from other
//	                                          partitions; worker applies
//	<---------- refresh ------------          refreshed master state with
//	                                          remote mirrors   (skipped on
//	----------- mirrors ----------->          the final superstep)
//	finally:
//	----------- collect ----------->
//	<---------- result -------------          master predictions + stats
//
// Every exchange uses the single Msg envelope; payload fields are sparse and
// which ones are set depends on Kind. All payload types are concrete, so gob
// needs no interface registration, and both ends can be any mix of
// architectures gob supports.
//
// Conn counts bytes and messages in both directions: the dist backend's
// Stats.CrossBytes/CrossMsgs are measured on the wire (everything after the
// ship phase), not simulated like the sim backend's.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// ProtocolVersion guards against coordinator/worker skew: a worker rejects a
// ship whose version differs from its own. Version 2 added query-scoped
// runs (Partition.Scope) — an old worker would silently run the full graph,
// which is exactly the skew the version check exists to catch.
const ProtocolVersion = 2

// Kind discriminates the Msg envelope.
type Kind uint8

const (
	// KindShip carries the job spec and partition payload (coordinator → worker).
	KindShip Kind = iota + 1
	// KindReady acknowledges a ship (worker → coordinator).
	KindReady
	// KindStepBegin starts a superstep (coordinator → worker).
	KindStepBegin
	// KindPartials carries gather partials for vertices mastered elsewhere
	// (worker → coordinator).
	KindPartials
	// KindForeign carries partials routed from other partitions for vertices
	// mastered here (coordinator → worker).
	KindForeign
	// KindRefresh carries refreshed master state for vertices with remote
	// mirrors (worker → coordinator).
	KindRefresh
	// KindMirrors carries refreshed state routed to this partition's mirror
	// copies (coordinator → worker).
	KindMirrors
	// KindCollect requests the final results (coordinator → worker).
	KindCollect
	// KindResult carries the partition's master predictions and run stats
	// (worker → coordinator).
	KindResult
	// KindError aborts the session; Err holds the cause (either direction).
	KindError
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		KindShip: "ship", KindReady: "ready", KindStepBegin: "step-begin",
		KindPartials: "partials", KindForeign: "foreign", KindRefresh: "refresh",
		KindMirrors: "mirrors", KindCollect: "collect", KindResult: "result",
		KindError: "error",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// JobSpec is a core.Config in shippable form: the Table 3 score is carried
// by (name, alpha) and reassembled remotely, because function values cannot
// cross the wire.
type JobSpec struct {
	Score    string
	Alpha    float64
	K        int
	KLocal   int
	ThrGamma int
	Policy   core.SelectionPolicy
	Paths    int
	Seed     uint64
}

// JobFromConfig converts a validated Config into its wire form. It fails
// when the score is not a named Table 3 configuration (a hand-assembled
// ScoreSpec with custom functions cannot be shipped).
func JobFromConfig(cfg core.Config) (JobSpec, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return JobSpec{}, err
	}
	// Round-trip the score now so a custom spec fails on the coordinator
	// with a clear error instead of on every worker.
	if _, err := core.ScoreByName(cfg.Score.Name, cfg.Score.Alpha); err != nil {
		return JobSpec{}, fmt.Errorf("wire: score %q is not shippable: %w", cfg.Score.Name, err)
	}
	return JobSpec{
		Score: cfg.Score.Name, Alpha: cfg.Score.Alpha,
		K: cfg.K, KLocal: cfg.KLocal, ThrGamma: cfg.ThrGamma,
		Policy: cfg.Policy, Paths: cfg.Paths, Seed: cfg.Seed,
	}, nil
}

// Config reassembles the core.Config a JobSpec describes.
func (j JobSpec) Config() (core.Config, error) {
	spec, err := core.ScoreByName(j.Score, j.Alpha)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Score: spec, K: j.K, KLocal: j.KLocal, ThrGamma: j.ThrGamma,
		Policy: j.Policy, Paths: j.Paths, Seed: j.Seed,
	}
	return cfg.Normalized()
}

// Partition is the serializable description of one worker's share of the
// vertex-cut: its local vertex table, the out-degrees of those vertices, the
// partition's edges as indices into the table, and the master/mirror roles
// the coordinator elected. It is everything core.NewDistPartition needs plus
// the routing roles the worker consults per superstep.
type Partition struct {
	// Part is the partition index in [0, workers).
	Part int
	// NumVertices is the global vertex count.
	NumVertices int
	// Locals holds the sorted global IDs of the vertices replicated here.
	Locals []graph.VertexID
	// Deg holds the full out-degree of each local vertex, aligned with Locals.
	Deg []int32
	// EdgeSrc/EdgeDst are the partition's edges as indices into Locals, in
	// global CSR order.
	EdgeSrc, EdgeDst []int32
	// IsMaster marks the local vertices whose master copy lives here.
	IsMaster []bool
	// HasRemote marks local masters that are replicated on other partitions
	// and therefore must broadcast refreshed state after each apply.
	HasRemote []bool
	// Scope holds each local vertex's frontier scope mask on a query-scoped
	// run (core.Scope* bits, aligned with Locals); nil for a full run. The
	// coordinator derives it from the global closure so workers never need
	// the source list, let alone the graph.
	Scope []uint8
}

// Validate checks the payload's internal consistency (lengths and index
// ranges the worker would otherwise discover mid-run).
func (p *Partition) Validate() error {
	switch {
	case p.Part < 0:
		return fmt.Errorf("wire: negative partition index %d", p.Part)
	case len(p.Deg) != len(p.Locals):
		return fmt.Errorf("wire: %d degrees for %d locals", len(p.Deg), len(p.Locals))
	case len(p.IsMaster) != len(p.Locals):
		return fmt.Errorf("wire: %d master flags for %d locals", len(p.IsMaster), len(p.Locals))
	case len(p.HasRemote) != len(p.Locals):
		return fmt.Errorf("wire: %d remote flags for %d locals", len(p.HasRemote), len(p.Locals))
	case len(p.EdgeSrc) != len(p.EdgeDst):
		return fmt.Errorf("wire: %d edge sources, %d edge targets", len(p.EdgeSrc), len(p.EdgeDst))
	case p.Scope != nil && len(p.Scope) != len(p.Locals):
		return fmt.Errorf("wire: %d scope masks for %d locals", len(p.Scope), len(p.Locals))
	}
	for i := range p.EdgeSrc {
		if p.EdgeSrc[i] < 0 || int(p.EdgeSrc[i]) >= len(p.Locals) ||
			p.EdgeDst[i] < 0 || int(p.EdgeDst[i]) >= len(p.Locals) {
			return fmt.Errorf("wire: edge %d outside the local table", i)
		}
	}
	return nil
}

// VertexState pairs a vertex with its full replica state, for master→mirror
// refreshes.
type VertexState struct {
	V    graph.VertexID
	Data core.VData
}

// VertexPreds pairs a vertex with its final predictions — the collect-phase
// payload, slimmer than a full VertexState.
type VertexPreds struct {
	V     graph.VertexID
	Preds []core.Prediction
}

// WorkerStats is the per-worker cost report returned with the results.
type WorkerStats struct {
	// Verts/Edges are the partition's local table and edge counts.
	Verts, Edges int
	// BusySeconds is the worker's compute time (gather + apply + refresh),
	// excluding time blocked on the wire.
	BusySeconds float64
	// AllocBytes/AllocObjects are the worker process's heap deltas across the
	// supersteps (runtime.MemStats).
	AllocBytes, AllocObjects int64
	// HeapBytes is the worker's live heap after the final superstep — the
	// dist analog of the sim backend's per-node memory footprint.
	HeapBytes int64
}

// WorkerResult is the collect-phase payload.
type WorkerResult struct {
	Part  int
	Preds []VertexPreds
	Stats WorkerStats
}

// Msg is the single envelope every wire exchange uses. Kind selects which
// payload fields are meaningful; the rest stay zero and cost nothing on the
// wire (gob omits zero-valued fields).
type Msg struct {
	Kind     Kind
	Version  int       // KindShip
	Job      JobSpec   // KindShip
	Part     Partition // KindShip
	Step     core.DistStep
	Final    bool               // KindStepBegin: no refresh/mirror round follows
	Partials []core.DistPartial // KindPartials, KindForeign
	States   []VertexState      // KindRefresh, KindMirrors
	Result   WorkerResult       // KindResult
	Err      string             // KindError
}

// countingRW wraps a transport and counts traffic in both directions. The
// counters are atomics so stats can be read while a session is in flight.
type countingRW struct {
	rw      io.ReadWriter
	in, out atomic.Int64
	msgIn   atomic.Int64
	msgOut  atomic.Int64
}

func (c *countingRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Counters is a point-in-time traffic snapshot of one connection.
type Counters struct {
	BytesIn, BytesOut int64
	MsgsIn, MsgsOut   int64
}

// Sub returns the delta c − base.
func (c Counters) Sub(base Counters) Counters {
	return Counters{
		BytesIn: c.BytesIn - base.BytesIn, BytesOut: c.BytesOut - base.BytesOut,
		MsgsIn: c.MsgsIn - base.MsgsIn, MsgsOut: c.MsgsOut - base.MsgsOut,
	}
}

// Conn is a gob message stream over a transport, with traffic counting.
// It is not safe for concurrent Send or concurrent Recv; the protocol is
// half-duplex, so sessions never need either.
type Conn struct {
	crw    *countingRW
	enc    *gob.Encoder
	dec    *gob.Decoder
	closer io.Closer
}

// NewConn wraps a transport (net.Conn in production, net.Pipe in tests) in
// the message protocol.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	crw := &countingRW{rw: rwc}
	return &Conn{
		crw:    crw,
		enc:    gob.NewEncoder(crw),
		dec:    gob.NewDecoder(crw),
		closer: rwc,
	}
}

// Dial connects to a worker address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewConn(c), nil
}

// Send encodes one message.
func (c *Conn) Send(m *Msg) error {
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: send %s: %w", m.Kind, err)
	}
	c.crw.msgOut.Add(1)
	return nil
}

// Recv decodes the next message into a fresh envelope. (gob merges into
// presized fields, so reusing an envelope would leak state across messages.)
func (c *Conn) Recv() (*Msg, error) {
	m := new(Msg)
	if err := c.dec.Decode(m); err != nil {
		if err == io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	c.crw.msgIn.Add(1)
	if m.Kind == KindError {
		return m, fmt.Errorf("wire: remote error: %s", m.Err)
	}
	return m, nil
}

// Expect receives the next message and checks its kind.
func (c *Conn) Expect(kind Kind) (*Msg, error) {
	m, err := c.Recv()
	if err != nil {
		return m, err
	}
	if m.Kind != kind {
		return m, fmt.Errorf("wire: expected %s, got %s", kind, m.Kind)
	}
	return m, nil
}

// SetDeadline bounds every pending and future Send/Recv when the transport
// supports deadlines (net.Conn and net.Pipe do; a transport that does not is
// silently unbounded). The zero time clears the deadline. Coordinators use
// it to keep a handshake against a busy worker — one already serving another
// session never reads the next ship — from hanging forever.
func (c *Conn) SetDeadline(t time.Time) error {
	if d, ok := c.closer.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// SendError best-effort reports an error to the peer before the session
// unwinds.
func (c *Conn) SendError(err error) {
	_ = c.Send(&Msg{Kind: KindError, Err: err.Error()})
}

// Counters snapshots the connection's traffic so far.
func (c *Conn) Counters() Counters {
	return Counters{
		BytesIn: c.crw.in.Load(), BytesOut: c.crw.out.Load(),
		MsgsIn: c.crw.msgIn.Load(), MsgsOut: c.crw.msgOut.Load(),
	}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.closer.Close() }
