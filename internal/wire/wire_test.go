package wire

import (
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// pipePair returns two ends of an in-memory v3 message stream.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// zipPair is pipePair with per-frame compression enabled on both ends.
func zipPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ca, cb := pipePair(t)
	ca.SetCompression(true)
	cb.SetCompression(true)
	return ca, cb
}

// gobPair returns two ends of a legacy (v2) message stream.
func gobPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewGobConn(a), NewGobConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// protoPairs lists the encoder/decoder pairings every lossless-codec test
// runs through: the v3 frame protocol plain and compressed, and the legacy
// gob protocol.
var protoPairs = []struct {
	name string
	pair func(t *testing.T) (*Conn, *Conn)
}{
	{"v3", pipePair},
	{"v3-flate", zipPair},
	{"gob", gobPair},
}

// roundTrip pushes m through a real encoder/decoder pair and returns the
// decoded copy.
func roundTrip(t *testing.T, m *Msg, pair func(t *testing.T) (*Conn, *Conn)) *Msg {
	t.Helper()
	ca, cb := pair(t)
	errc := make(chan error, 1)
	go func() { errc <- ca.Send(m) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	return got
}

// normalize maps empty slices to nil recursively via gob's own convention:
// gob does not distinguish nil from empty, so lossless means "equal after
// normalization".
func normalizeMsg(m *Msg) {
	if len(m.Partials) == 0 {
		m.Partials = nil
	}
	for i := range m.Partials {
		p := &m.Partials[i]
		if len(p.Nbrs) == 0 {
			p.Nbrs = nil
		}
		if len(p.Sims) == 0 {
			p.Sims = nil
		}
		if len(p.Cands) == 0 {
			p.Cands = nil
		}
	}
	if len(m.States) == 0 {
		m.States = nil
	}
	for i := range m.States {
		d := &m.States[i].Data
		if len(d.Nbrs) == 0 {
			d.Nbrs = nil
		}
		if len(d.Sims) == 0 {
			d.Sims = nil
		}
		if len(d.TwoHop) == 0 {
			d.TwoHop = nil
		}
		if len(d.Pred) == 0 {
			d.Pred = nil
		}
	}
	if len(m.Result.Preds) == 0 {
		m.Result.Preds = nil
	}
	for i := range m.Result.Preds {
		if len(m.Result.Preds[i].Preds) == 0 {
			m.Result.Preds[i].Preds = nil
		}
	}
	p := &m.Part
	if len(p.Locals) == 0 {
		p.Locals = nil
	}
	if len(p.Deg) == 0 {
		p.Deg = nil
	}
	if len(p.EdgeSrc) == 0 {
		p.EdgeSrc = nil
	}
	if len(p.EdgeDst) == 0 {
		p.EdgeDst = nil
	}
	if len(p.IsMaster) == 0 {
		p.IsMaster = nil
	}
	if len(p.HasRemote) == 0 {
		p.HasRemote = nil
	}
}

// checkLossless asserts that a message survives the wire bit for bit on
// every protocol pairing (modulo the shared nil/empty unification: neither
// codec distinguishes a nil slice from an empty one).
func checkLossless(t *testing.T, m *Msg) {
	t.Helper()
	want := *m
	normalizeMsg(&want)
	for _, pp := range protoPairs {
		got := roundTrip(t, m, pp.pair)
		normalizeMsg(got)
		if !reflect.DeepEqual(&want, got) {
			t.Fatalf("%s round trip lost data:\nsent %+v\ngot  %+v", pp.name, &want, got)
		}
	}
}

// randPartition generates a partition payload. n=0 produces the empty
// partition; hub makes one local vertex own almost every edge.
func randPartition(r *rand.Rand, n int, hub bool) Partition {
	p := Partition{Part: r.Intn(8), NumVertices: n}
	if n == 0 {
		return p
	}
	// A sorted subset of [0, n) as the local table.
	for v := 0; v < n; v++ {
		if r.Intn(3) > 0 {
			p.Locals = append(p.Locals, graph.VertexID(v))
		}
	}
	if len(p.Locals) == 0 {
		p.Locals = append(p.Locals, graph.VertexID(r.Intn(n)))
	}
	for range p.Locals {
		p.Deg = append(p.Deg, int32(r.Intn(1000)))
		p.IsMaster = append(p.IsMaster, r.Intn(2) == 0)
		p.HasRemote = append(p.HasRemote, r.Intn(2) == 0)
	}
	if r.Intn(2) == 0 {
		// Query-scoped ship: per-local frontier masks ride along.
		p.Scope = make([]uint8, len(p.Locals))
		for i := range p.Scope {
			p.Scope[i] = uint8(r.Intn(16))
		}
	}
	edges := r.Intn(4 * len(p.Locals))
	if hub {
		edges = 5000 // one source fans out to thousands of targets
	}
	for i := 0; i < edges; i++ {
		src := int32(r.Intn(len(p.Locals)))
		if hub {
			src = 0
		}
		p.EdgeSrc = append(p.EdgeSrc, src)
		p.EdgeDst = append(p.EdgeDst, int32(r.Intn(len(p.Locals))))
	}
	return p
}

func randPartials(r *rand.Rand, kind int) []core.DistPartial {
	n := r.Intn(20)
	out := make([]core.DistPartial, 0, n)
	for i := 0; i < n; i++ {
		dp := core.DistPartial{V: graph.VertexID(r.Uint32())}
		m := r.Intn(30) + 1
		switch kind {
		case 0:
			for j := 0; j < m; j++ {
				dp.Nbrs = append(dp.Nbrs, graph.VertexID(r.Uint32()))
			}
		case 1:
			for j := 0; j < m; j++ {
				dp.Sims = append(dp.Sims, core.VertexSim{V: graph.VertexID(r.Uint32()), Sim: r.Float64()})
			}
		default:
			for j := 0; j < m; j++ {
				dp.Cands = append(dp.Cands, core.PathCand{Z: graph.VertexID(r.Uint32()), S: r.NormFloat64()})
			}
		}
		out = append(out, dp)
	}
	return out
}

func randStates(r *rand.Rand) []VertexState {
	n := r.Intn(10)
	out := make([]VertexState, 0, n)
	for i := 0; i < n; i++ {
		vs := VertexState{V: graph.VertexID(r.Uint32())}
		for j := r.Intn(10); j > 0; j-- {
			vs.Data.Nbrs = append(vs.Data.Nbrs, graph.VertexID(r.Uint32()))
		}
		for j := r.Intn(10); j > 0; j-- {
			vs.Data.Sims = append(vs.Data.Sims, core.VertexSim{V: graph.VertexID(r.Uint32()), Sim: r.Float64()})
		}
		for j := r.Intn(10); j > 0; j-- {
			vs.Data.TwoHop = append(vs.Data.TwoHop, core.PathCand{Z: graph.VertexID(r.Uint32()), S: r.Float64()})
		}
		for j := r.Intn(6); j > 0; j-- {
			vs.Data.Pred = append(vs.Data.Pred, core.Prediction{Vertex: graph.VertexID(r.Uint32()), Score: r.Float64()})
		}
		out = append(out, vs)
	}
	return out
}

// TestShipRoundTrip property-tests that subgraph shipping is lossless,
// including the empty partition and hub-vertex skew.
func TestShipRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	job := JobSpec{Score: "linearSum", Alpha: 0.9, K: 5, KLocal: 20, ThrGamma: 200, Paths: 2, Seed: 42}
	cases := []Partition{
		randPartition(r, 0, false),   // empty partition
		randPartition(r, 1, false),   // single vertex
		randPartition(r, 4000, true), // hub vertex with thousands of edges
	}
	for i := 0; i < 20; i++ {
		cases = append(cases, randPartition(r, 1+r.Intn(200), false))
	}
	for _, part := range cases {
		checkLossless(t, &Msg{Kind: KindShip, Version: ProtocolV3, Job: job, Part: part})
	}
}

// TestPartitionValidateScope pins the scope-mask length check: a scoped
// ship whose masks do not align with the local table is rejected before the
// worker builds anything from it.
func TestPartitionValidateScope(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	p := randPartition(r, 50, false)
	p.Scope = nil
	if err := p.Validate(); err != nil {
		t.Fatalf("nil scope rejected: %v", err)
	}
	p.Scope = make([]uint8, len(p.Locals))
	if err := p.Validate(); err != nil {
		t.Fatalf("aligned scope rejected: %v", err)
	}
	p.Scope = append(p.Scope, 0)
	if err := p.Validate(); err == nil {
		t.Fatal("misaligned scope accepted")
	}
}

// TestPartialRoundTrip property-tests score-message exchange for all three
// gather payload types, including the empty batch.
func TestPartialRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	checkLossless(t, &Msg{Kind: KindPartials, Step: core.DistTruncate}) // empty
	for i := 0; i < 30; i++ {
		kind := i % 3
		step := []core.DistStep{core.DistTruncate, core.DistRelays, core.DistCombine}[kind]
		checkLossless(t, &Msg{Kind: KindPartials, Step: step, Partials: randPartials(r, kind)})
		checkLossless(t, &Msg{Kind: KindForeign, Step: step, Partials: randPartials(r, kind)})
	}
}

// TestStateAndResultRoundTrip covers refresh broadcasts and the collect
// payload (predictions + stats).
func TestStateAndResultRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		checkLossless(t, &Msg{Kind: KindRefresh, Step: core.DistRelays, States: randStates(r)})
		res := WorkerResult{
			Part: r.Intn(8),
			Stats: WorkerStats{
				Verts: r.Intn(1000), Edges: r.Intn(100000),
				BusySeconds:  r.Float64(),
				AllocBytes:   r.Int63(),
				AllocObjects: r.Int63(),
				HeapBytes:    r.Int63(),
			},
		}
		for j := r.Intn(20); j > 0; j-- {
			vp := VertexPreds{V: graph.VertexID(r.Uint32())}
			for k := r.Intn(5) + 1; k > 0; k-- {
				vp.Preds = append(vp.Preds, core.Prediction{Vertex: graph.VertexID(r.Uint32()), Score: r.NormFloat64()})
			}
			res.Preds = append(res.Preds, vp)
		}
		checkLossless(t, &Msg{Kind: KindResult, Result: res})
	}
}

// TestJobSpecConfigRoundTrip checks Config → JobSpec → Config for every
// Table 3 score and both path lengths.
func TestJobSpecConfigRoundTrip(t *testing.T) {
	for _, score := range core.ScoreNames() {
		for _, paths := range []int{2, 3} {
			spec, err := core.ScoreByName(score, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{Score: spec, K: 7, KLocal: 4, ThrGamma: 11, Policy: core.SelectRnd, Paths: paths, Seed: 99}
			job, err := JobFromConfig(cfg)
			if err != nil {
				t.Fatalf("%s: %v", score, err)
			}
			back, err := job.Config()
			if err != nil {
				t.Fatalf("%s: %v", score, err)
			}
			if back.Score.Name != score || back.Score.Alpha != 0.7 ||
				back.K != 7 || back.KLocal != 4 || back.ThrGamma != 11 ||
				back.Policy != core.SelectRnd || back.Paths != paths || back.Seed != 99 {
				t.Fatalf("%s: config did not survive the wire: %+v", score, back)
			}
		}
	}
	// A hand-assembled spec with anonymous functions must be rejected.
	bad := core.Config{Score: core.ScoreSpec{
		Name: "custom", Sim: core.Jaccard{}, Comb: core.SumComb(), Agg: core.AggSum(),
	}, K: 5}
	if _, err := JobFromConfig(bad); err == nil {
		t.Fatal("custom score crossed the wire")
	}
}

// TestConnCounters pins the traffic accounting Send/Recv maintain.
func TestConnCounters(t *testing.T) {
	ca, cb := pipePair(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			if _, err := cb.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := ca.Send(&Msg{Kind: KindStepBegin, Step: core.DistTruncate}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	sent, recvd := ca.Counters(), cb.Counters()
	if sent.MsgsOut != 3 || recvd.MsgsIn != 3 {
		t.Fatalf("message counts: sent %+v, received %+v", sent, recvd)
	}
	if sent.BytesOut == 0 || sent.BytesOut != recvd.BytesIn {
		t.Fatalf("byte counts disagree: sent %+v, received %+v", sent, recvd)
	}
	delta := sent.Sub(Counters{MsgsOut: 1})
	if delta.MsgsOut != 2 {
		t.Fatalf("Sub: %+v", delta)
	}
}

// TestExpectRejectsWrongKind pins the protocol guard.
func TestExpectRejectsWrongKind(t *testing.T) {
	ca, cb := pipePair(t)
	go func() { _ = ca.Send(&Msg{Kind: KindCollect}) }()
	if _, err := cb.Expect(KindStepBegin); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

// TestErrorPropagation: a KindError surfaces as an error on Recv.
func TestErrorPropagation(t *testing.T) {
	ca, cb := pipePair(t)
	go func() { ca.SendError(errInjected{}) }()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("remote error swallowed")
	}
}

type errInjected struct{}

func (errInjected) Error() string { return "injected failure" }

// serveWorkers runs a real listening worker fleet for negotiation tests and
// returns its address.
func serveWorkers(t *testing.T, o ServeOptions) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = ServeWith(l, nil, o) }()
	return l.Addr().String()
}

// runMiniSession drives a complete (zero-superstep) session over c: ship an
// empty partition, await ready, collect the result. It proves the negotiated
// protocol actually works end to end, not just that the handshake returned.
func runMiniSession(t *testing.T, c *Conn) {
	t.Helper()
	job := JobSpec{Score: "linearSum", Alpha: 0.9, K: 5, KLocal: 20, ThrGamma: 200, Paths: 2, Seed: 42}
	ship := &Msg{Kind: KindShip, Version: c.Proto(), Job: job, Part: Partition{Part: 3}}
	if err := c.Send(ship); err != nil {
		t.Fatalf("ship: %v", err)
	}
	if _, err := c.Expect(KindReady); err != nil {
		t.Fatalf("ready: %v", err)
	}
	if err := c.Send(&Msg{Kind: KindCollect}); err != nil {
		t.Fatalf("collect: %v", err)
	}
	m, err := c.Expect(KindResult)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if m.Result.Part != 3 {
		t.Fatalf("result for partition %d, shipped partition 3", m.Result.Part)
	}
}

// TestProtocolNegotiation covers the mixed-version handshake matrix: v3
// both ends (with compression granted), a v3 coordinator downgrading to a
// legacy gob worker, a v3-pinned coordinator failing clearly against that
// worker, and a v2-pinned coordinator against a v3-capable worker.
func TestProtocolNegotiation(t *testing.T) {
	t.Run("v3-with-compression", func(t *testing.T) {
		addr := serveWorkers(t, ServeOptions{})
		c, err := DialWith(addr, DialOptions{Compress: true})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Proto() != ProtocolV3 {
			t.Fatalf("negotiated v%d, want v3", c.Proto())
		}
		if !c.compress {
			t.Fatal("compression requested but not granted")
		}
		runMiniSession(t, c)
	})
	t.Run("downgrade-to-legacy-worker", func(t *testing.T) {
		// A MaxProto-2 fleet stands in for old worker binaries: its gob
		// decoder chokes on the v3 hello, the dialer recognises the legacy
		// peer and redials speaking gob.
		addr := serveWorkers(t, ServeOptions{MaxProto: ProtocolV2})
		c, err := DialWith(addr, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Proto() != ProtocolV2 {
			t.Fatalf("negotiated v%d, want v2 fallback", c.Proto())
		}
		runMiniSession(t, c)
	})
	t.Run("v3-required-fails-clearly", func(t *testing.T) {
		addr := serveWorkers(t, ServeOptions{MaxProto: ProtocolV2})
		c, err := DialWith(addr, DialOptions{Proto: ProtocolV3})
		if err == nil {
			c.Close()
			t.Fatal("v3-pinned dial succeeded against a legacy worker")
		}
		if !strings.Contains(err.Error(), "legacy gob protocol") {
			t.Fatalf("unhelpful error for a legacy peer: %v", err)
		}
	})
	t.Run("v2-pinned-against-v3-worker", func(t *testing.T) {
		// The reverse skew: an old coordinator (pinned to gob) against a new
		// worker, which must peek the non-frame bytes and serve gob.
		addr := serveWorkers(t, ServeOptions{})
		c, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Proto() != ProtocolV2 {
			t.Fatalf("negotiated v%d, want v2", c.Proto())
		}
		runMiniSession(t, c)
	})
}

// TestCompressionShrinksWire pins the point of the compression flag: the
// same highly-compressible payload crosses the wire in fewer bytes on a
// compressed connection.
func TestCompressionShrinksWire(t *testing.T) {
	msg := &Msg{Kind: KindMirrors, Step: core.DistRelays}
	for i := 0; i < 50; i++ {
		vs := VertexState{V: graph.VertexID(i)}
		for j := 0; j < 100; j++ {
			vs.Data.Sims = append(vs.Data.Sims, core.VertexSim{V: graph.VertexID(j), Sim: 0.5})
		}
		msg.States = append(msg.States, vs)
	}
	bytesAcross := func(pair func(t *testing.T) (*Conn, *Conn)) int64 {
		ca, cb := pair(t)
		errc := make(chan error, 1)
		go func() { errc <- ca.Send(msg) }()
		if _, err := cb.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		return ca.Counters().BytesOut
	}
	plain := bytesAcross(pipePair)
	zipped := bytesAcross(zipPair)
	if zipped >= plain/2 {
		t.Fatalf("compression saved too little: %d plain, %d compressed", plain, zipped)
	}
}
