package wire

// The v3 frame codec: length-prefixed, CRC-32C-checksummed flat sections in
// the .sgr style of internal/graph/snapshot.go, replacing gob's per-element
// reflection with single-copy, exact-alloc decoding.
//
// Every frame is
//
//	offset  size  field
//	0       4     magic "SWF3"
//	4       1     kind (the Kind enum)
//	5       1     flags (bit 0: payload deflate-compressed; bit 1: final)
//	6       1     step (core.DistStep, 0 when the kind carries none)
//	7       1     reserved, must be 0
//	8       4     rawLen: payload length before compression (LE)
//	12      4     wireLen: payload length on the wire (LE)
//	16      4     CRC-32C of bytes [0,16)
//	20      wireLen  payload
//	20+wireLen  4    CRC-32C of the wire payload
//
// Batch payloads (partials, foreign, refresh, mirrors) are a u32 record
// count followed by self-delimiting records, so a coordinator can route
// individual records by scanning headers and copying raw bytes — no decode,
// no re-encode. All integers are little-endian; floats are IEEE 754 bits.

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"snaple/internal/core"
	"snaple/internal/graph"
)

const (
	frameMagic       = "SWF3"
	frameHeaderSize  = 20
	frameTrailerSize = 4

	// FrameMaxPayload caps a single frame's payload (raw and on-wire): large
	// enough for any ship, small enough that a lying length prefix cannot
	// request an absurd allocation (and reads grow in readChunk steps, so
	// even a maximal lie allocates no more than the bytes that arrive).
	FrameMaxPayload = 1 << 30

	flagCompressed = 1 << 0
	flagFinal      = 1 << 1
	flagsKnown     = flagCompressed | flagFinal

	// readChunk bounds each allocation step while reading a payload, so a
	// truncated stream with a lying length errors out after at most one
	// wasted chunk instead of after a giant up-front make.
	readChunk = 256 << 10

	// compressMin is the smallest payload worth deflating; below it the
	// flate header overhead wins.
	compressMin = 512

	// compressLevel trades deflate CPU for ratio. The wire carries highly
	// regular flat sections (sorted u32 ID columns, f64 score columns), where
	// the default level's longer match search buys a materially smaller
	// stream than BestSpeed for a compute cost the supersteps absorb.
	compressLevel = flate.DefaultCompression

	// featCompress is the hello feature bit requesting per-frame compression.
	featCompress uint32 = 1 << 0

	// helloPadding zero-pads the hello payload so the whole frame exceeds the
	// first message length a legacy gob decoder reads from it (the magic's
	// 'S', 0x53, is a gob uvarint length of 83: with ≥ 84 bytes on the wire
	// the old worker's decoder fails fast and answers/closes, letting the
	// dialer fall back to gob; with fewer it would block for more bytes,
	// indistinguishable from a busy worker until the hello deadline).
	helloPadding = 56
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errNotV3Frame marks bytes that are not a v3 frame (bad magic) — the
// signature of a legacy gob peer, which the dialing side uses to fall back.
var errNotV3Frame = errors.New("wire: not a v3 frame (bad magic)")

// ---- little-endian append/read primitives ----

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// byteReader is a sticky-error cursor over a decoded payload. Every read
// bounds-checks against the remaining bytes, so lying counts fail cleanly
// instead of panicking or over-allocating.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated payload: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *byteReader) u8() byte {
	s := r.bytes(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *byteReader) u32() uint32 {
	s := r.bytes(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *byteReader) u64() uint64 {
	s := r.bytes(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }

// count validates an element count against the remaining bytes (elemSize is
// the minimum encoded size per element) before the caller preallocates.
func (r *byteReader) count(n uint32, elemSize int) int {
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)-r.off) {
		r.fail("count %d (×%d B) exceeds remaining %d bytes", n, elemSize, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

// done checks the sticky error and that the payload was consumed exactly.
func (r *byteReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}

// ---- flat array sections ----

func appendVertexIDs(b []byte, v []graph.VertexID) []byte {
	for _, x := range v {
		b = appendU32(b, uint32(x))
	}
	return b
}

func appendVertexSims(b []byte, v []core.VertexSim) []byte {
	for _, x := range v {
		b = appendU32(b, uint32(x.V))
		b = appendF64(b, x.Sim)
	}
	return b
}

func appendPathCands(b []byte, v []core.PathCand) []byte {
	for _, x := range v {
		b = appendU32(b, uint32(x.Z))
		b = appendF64(b, x.S)
	}
	return b
}

func appendPredictions(b []byte, v []core.Prediction) []byte {
	for _, x := range v {
		b = appendU32(b, uint32(x.Vertex))
		b = appendF64(b, x.Score)
	}
	return b
}

func appendInt32s(b []byte, v []int32) []byte {
	for _, x := range v {
		b = appendU32(b, uint32(x))
	}
	return b
}

func appendBools(b []byte, v []bool) []byte {
	for _, x := range v {
		if x {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func (r *byteReader) vertexIDs(n int) []graph.VertexID {
	raw := r.bytes(n * 4)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func (r *byteReader) vertexSims(n int) []core.VertexSim {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]core.VertexSim, n)
	for i := range out {
		out[i].V = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		out[i].Sim = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return out
}

// vertexIDsInto and vertexSimsInto are the decode-into twins of vertexIDs /
// vertexSims: they reuse dst's capacity so recurring decodes (the per-step
// mirror refresh) stop allocating once the replica has seen its high-water
// size.
func (r *byteReader) vertexIDsInto(dst []graph.VertexID, n int) []graph.VertexID {
	raw := r.bytes(n * 4)
	if raw == nil || n == 0 {
		return dst[:0]
	}
	dst = slices.Grow(dst[:0], n)[:n]
	for i := range dst {
		dst[i] = graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return dst
}

func (r *byteReader) vertexSimsInto(dst []core.VertexSim, n int) []core.VertexSim {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return dst[:0]
	}
	dst = slices.Grow(dst[:0], n)[:n]
	for i := range dst {
		dst[i].V = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		dst[i].Sim = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return dst
}

func (r *byteReader) pathCandsInto(dst []core.PathCand, n int) []core.PathCand {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return dst[:0]
	}
	dst = slices.Grow(dst[:0], n)[:n]
	for i := range dst {
		dst[i].Z = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		dst[i].S = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return dst
}

func (r *byteReader) predictionsInto(dst []core.Prediction, n int) []core.Prediction {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return dst[:0]
	}
	dst = slices.Grow(dst[:0], n)[:n]
	for i := range dst {
		dst[i].Vertex = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		dst[i].Score = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return dst
}

func (r *byteReader) pathCands(n int) []core.PathCand {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]core.PathCand, n)
	for i := range out {
		out[i].Z = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		out[i].S = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return out
}

func (r *byteReader) predictions(n int) []core.Prediction {
	raw := r.bytes(n * 12)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]core.Prediction, n)
	for i := range out {
		out[i].Vertex = graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:]))
		out[i].Score = math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:]))
	}
	return out
}

func (r *byteReader) int32s(n int) []int32 {
	raw := r.bytes(n * 4)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// bools decodes a strict 0/1 byte column (anything else is a protocol
// error, keeping decode→encode canonical for the fuzz round-trip).
func (r *byteReader) bools(n int) []bool {
	raw := r.bytes(n)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i, x := range raw {
		switch x {
		case 0:
		case 1:
			out[i] = true
		default:
			r.fail("bool byte %d at index %d", x, i)
			return nil
		}
	}
	return out
}

func (r *byteReader) uint8s(n int) []uint8 {
	raw := r.bytes(n)
	if raw == nil {
		return nil
	}
	out := make([]uint8, n)
	copy(out, raw)
	return out
}

// ---- partial records ----

const partialRecordHeader = 16 // u32 V | u32 nNbrs | u32 nSims | u32 nCands

// appendPartialRecord appends one DistPartial as a self-delimiting record:
// header, then nNbrs×4B IDs, nSims×12B sims, nCands×12B candidates.
func appendPartialRecord(b []byte, dp *core.DistPartial) []byte {
	b = appendU32(b, uint32(dp.V))
	b = appendU32(b, uint32(len(dp.Nbrs)))
	b = appendU32(b, uint32(len(dp.Sims)))
	b = appendU32(b, uint32(len(dp.Cands)))
	b = appendVertexIDs(b, dp.Nbrs)
	b = appendVertexSims(b, dp.Sims)
	b = appendPathCands(b, dp.Cands)
	return b
}

// partialRecordAt bounds-checks the record starting at off and returns its
// vertex and end offset without decoding the payload.
func partialRecordAt(b []byte, off int) (v graph.VertexID, end int, err error) {
	if len(b)-off < partialRecordHeader {
		return 0, 0, fmt.Errorf("wire: truncated partial record header at offset %d", off)
	}
	v = graph.VertexID(binary.LittleEndian.Uint32(b[off:]))
	nN := binary.LittleEndian.Uint32(b[off+4:])
	nS := binary.LittleEndian.Uint32(b[off+8:])
	nC := binary.LittleEndian.Uint32(b[off+12:])
	size := int64(partialRecordHeader) + 4*int64(nN) + 12*int64(nS) + 12*int64(nC)
	if size > int64(len(b)-off) {
		return 0, 0, fmt.Errorf("wire: partial record at offset %d claims %d bytes, %d remain", off, size, len(b)-off)
	}
	return v, off + int(size), nil
}

// ForEachPartialRecord walks a partial-batch payload (u32 record count, then
// records), handing fn each record's vertex and raw bytes. The coordinator
// routes on v and copies rec verbatim into the master's outgoing batch —
// zero decode on the routing path.
func ForEachPartialRecord(payload []byte, fn func(v graph.VertexID, rec []byte) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("wire: batch payload too short (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	off := 4
	for i := uint32(0); i < n; i++ {
		v, end, err := partialRecordAt(payload, off)
		if err != nil {
			return err
		}
		if err := fn(v, payload[off:end]); err != nil {
			return err
		}
		off = end
	}
	if off != len(payload) {
		return fmt.Errorf("wire: %d trailing bytes after %d batch records", len(payload)-off, n)
	}
	return nil
}

// DecodePartialRecord decodes one record into an exact-alloc DistPartial.
func DecodePartialRecord(rec []byte) (core.DistPartial, error) {
	r := &byteReader{b: rec}
	var dp core.DistPartial
	dp.V = graph.VertexID(r.u32())
	nN, nS, nC := r.u32(), r.u32(), r.u32()
	dp.Nbrs = r.vertexIDs(r.count(nN, 4))
	dp.Sims = r.vertexSims(r.count(nS, 12))
	dp.Cands = r.pathCands(r.count(nC, 12))
	return dp, r.done()
}

// decodePartialRecordInto appends the record's payload into dp's slices
// (shared apply scratch), without touching dp.V.
func decodePartialRecordInto(rec []byte, dp *core.DistPartial) error {
	r := &byteReader{b: rec}
	r.u32() // vertex, already routed
	nN, nS, nC := r.u32(), r.u32(), r.u32()
	n := r.count(nN, 4)
	if raw := r.bytes(n * 4); raw != nil {
		for i := 0; i < n; i++ {
			dp.Nbrs = append(dp.Nbrs, graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:])))
		}
	}
	n = r.count(nS, 12)
	if raw := r.bytes(n * 12); raw != nil {
		for i := 0; i < n; i++ {
			dp.Sims = append(dp.Sims, core.VertexSim{
				V:   graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:])),
				Sim: math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:])),
			})
		}
	}
	n = r.count(nC, 12)
	if raw := r.bytes(n * 12); raw != nil {
		for i := 0; i < n; i++ {
			dp.Cands = append(dp.Cands, core.PathCand{
				Z: graph.VertexID(binary.LittleEndian.Uint32(raw[12*i:])),
				S: math.Float64frombits(binary.LittleEndian.Uint64(raw[12*i+4:])),
			})
		}
	}
	return r.done()
}

// ---- state records ----

const stateRecordHeader = 20 // u32 V | u32 nNbrs | u32 nSims | u32 nTwoHop | u32 nPred

// appendStateRecord appends a full VData replica as a self-delimiting record.
func appendStateRecord(b []byte, v graph.VertexID, d *core.VData) []byte {
	b = appendU32(b, uint32(v))
	b = appendU32(b, uint32(len(d.Nbrs)))
	b = appendU32(b, uint32(len(d.Sims)))
	b = appendU32(b, uint32(len(d.TwoHop)))
	b = appendU32(b, uint32(len(d.Pred)))
	b = appendVertexIDs(b, d.Nbrs)
	b = appendVertexSims(b, d.Sims)
	b = appendPathCands(b, d.TwoHop)
	b = appendPredictions(b, d.Pred)
	return b
}

// stateRecordAt bounds-checks the state record at off; see partialRecordAt.
func stateRecordAt(b []byte, off int) (v graph.VertexID, end int, err error) {
	if len(b)-off < stateRecordHeader {
		return 0, 0, fmt.Errorf("wire: truncated state record header at offset %d", off)
	}
	v = graph.VertexID(binary.LittleEndian.Uint32(b[off:]))
	nN := binary.LittleEndian.Uint32(b[off+4:])
	nS := binary.LittleEndian.Uint32(b[off+8:])
	nT := binary.LittleEndian.Uint32(b[off+12:])
	nP := binary.LittleEndian.Uint32(b[off+16:])
	size := int64(stateRecordHeader) + 4*int64(nN) + 12*(int64(nS)+int64(nT)+int64(nP))
	if size > int64(len(b)-off) {
		return 0, 0, fmt.Errorf("wire: state record at offset %d claims %d bytes, %d remain", off, size, len(b)-off)
	}
	return v, off + int(size), nil
}

// ForEachStateRecord walks a state-batch payload; see ForEachPartialRecord.
func ForEachStateRecord(payload []byte, fn func(v graph.VertexID, rec []byte) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("wire: batch payload too short (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	off := 4
	for i := uint32(0); i < n; i++ {
		v, end, err := stateRecordAt(payload, off)
		if err != nil {
			return err
		}
		if err := fn(v, payload[off:end]); err != nil {
			return err
		}
		off = end
	}
	if off != len(payload) {
		return fmt.Errorf("wire: %d trailing bytes after %d batch records", len(payload)-off, n)
	}
	return nil
}

// DecodeStateRecord decodes one record into an exact-alloc VertexState.
func DecodeStateRecord(rec []byte) (VertexState, error) {
	r := &byteReader{b: rec}
	var vs VertexState
	vs.V = graph.VertexID(r.u32())
	nN, nS, nT, nP := r.u32(), r.u32(), r.u32(), r.u32()
	vs.Data.Nbrs = r.vertexIDs(r.count(nN, 4))
	vs.Data.Sims = r.vertexSims(r.count(nS, 12))
	vs.Data.TwoHop = r.pathCands(r.count(nT, 12))
	vs.Data.Pred = r.predictions(r.count(nP, 12))
	return vs, r.done()
}

// DecodeStateRecordInto decodes one record in place over d, reusing the slice
// capacity left by the previous refresh of the same replica. Callers that need
// an owned copy use DecodeStateRecord instead.
func DecodeStateRecordInto(rec []byte, d *core.VData) (graph.VertexID, error) {
	r := &byteReader{b: rec}
	v := graph.VertexID(r.u32())
	nN, nS, nT, nP := r.u32(), r.u32(), r.u32(), r.u32()
	d.Nbrs = r.vertexIDsInto(d.Nbrs, r.count(nN, 4))
	d.Sims = r.vertexSimsInto(d.Sims, r.count(nS, 12))
	d.TwoHop = r.pathCandsInto(d.TwoHop, r.count(nT, 12))
	d.Pred = r.predictionsInto(d.Pred, r.count(nP, 12))
	return v, r.done()
}

// ---- batch building ----

// BatchBuilder assembles a partial- or state-batch payload incrementally:
// a u32 record count slot followed by records. The buffer is reused across
// Reset calls, so steady-state batches allocate nothing. Call Reset before
// first use.
type BatchBuilder struct {
	buf []byte
	n   uint32
}

// Reset empties the builder, keeping its capacity.
func (bb *BatchBuilder) Reset() {
	if cap(bb.buf) < 4 {
		bb.buf = make([]byte, 4, 4096)
	} else {
		bb.buf = bb.buf[:4]
	}
	bb.n = 0
}

// Grow reserves capacity for n payload bytes, so builders sized for a known
// chunk threshold can be paid for at setup instead of by doubling inside the
// exchange. Call after Reset.
func (bb *BatchBuilder) Grow(n int) {
	bb.buf = slices.Grow(bb.buf, n)
}

// Len returns the payload size built so far (including the count slot).
func (bb *BatchBuilder) Len() int { return len(bb.buf) }

// Count returns the number of records appended since Reset.
func (bb *BatchBuilder) Count() int { return int(bb.n) }

// AppendPartial encodes dp as the next record.
func (bb *BatchBuilder) AppendPartial(dp *core.DistPartial) {
	bb.buf = appendPartialRecord(bb.buf, dp)
	bb.n++
}

// AppendState encodes (v, d) as the next record.
func (bb *BatchBuilder) AppendState(v graph.VertexID, d *core.VData) {
	bb.buf = appendStateRecord(bb.buf, v, d)
	bb.n++
}

// AppendRaw copies an already-encoded record verbatim (the coordinator's
// zero-decode routing path).
func (bb *BatchBuilder) AppendRaw(rec []byte) {
	bb.buf = append(bb.buf, rec...)
	bb.n++
}

// Payload finalises the count slot and returns the payload, valid until the
// next Reset.
func (bb *BatchBuilder) Payload() []byte {
	binary.LittleEndian.PutUint32(bb.buf, bb.n)
	return bb.buf
}

// decodePartialBatch decodes a whole batch payload (Conn.Recv's Msg path).
func decodePartialBatch(payload []byte) ([]core.DistPartial, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: batch payload too short (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if int64(n)*partialRecordHeader > int64(len(payload)-4) {
		return nil, fmt.Errorf("wire: batch count %d exceeds payload", n)
	}
	var out []core.DistPartial
	if n > 0 {
		out = make([]core.DistPartial, 0, n)
	}
	err := ForEachPartialRecord(payload, func(_ graph.VertexID, rec []byte) error {
		dp, err := DecodePartialRecord(rec)
		if err != nil {
			return err
		}
		out = append(out, dp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// decodeStateBatch decodes a whole state batch payload.
func decodeStateBatch(payload []byte) ([]VertexState, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: batch payload too short (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if int64(n)*stateRecordHeader > int64(len(payload)-4) {
		return nil, fmt.Errorf("wire: batch count %d exceeds payload", n)
	}
	var out []VertexState
	if n > 0 {
		out = make([]VertexState, 0, n)
	}
	err := ForEachStateRecord(payload, func(_ graph.VertexID, rec []byte) error {
		vs, err := DecodeStateRecord(rec)
		if err != nil {
			return err
		}
		out = append(out, vs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ---- whole-message payload codecs ----

// appendMsgPayload encodes m's payload for its kind and returns the flag
// bits the frame header should carry.
func appendMsgPayload(b []byte, m *Msg) ([]byte, byte, error) {
	var flags byte
	if m.Final {
		flags |= flagFinal
	}
	switch m.Kind {
	case KindHello:
		b = appendU32(b, uint32(m.Version))
		b = appendU32(b, m.Features)
		for i := 0; i < helloPadding; i++ {
			b = append(b, 0)
		}
	case KindShip:
		b = appendShip(b, m)
	case KindAttach:
		b = appendAttach(b, m)
	case KindReady, KindStepBegin, KindCollect:
		// header-only
	case KindPartials, KindForeign:
		b = appendU32(b, uint32(len(m.Partials)))
		for i := range m.Partials {
			b = appendPartialRecord(b, &m.Partials[i])
		}
	case KindRefresh, KindMirrors:
		b = appendU32(b, uint32(len(m.States)))
		for i := range m.States {
			b = appendStateRecord(b, m.States[i].V, &m.States[i].Data)
		}
	case KindResult:
		b = appendResult(b, &m.Result)
	case KindError:
		b = append(b, m.Err...)
	default:
		return nil, 0, fmt.Errorf("wire: cannot encode %s", m.Kind)
	}
	return b, flags, nil
}

// decodeMsgPayload reconstructs the Msg a frame carries.
func decodeMsgPayload(kind Kind, flags byte, step core.DistStep, payload []byte) (*Msg, error) {
	m := &Msg{Kind: kind, Step: step, Final: flags&flagFinal != 0}
	switch kind {
	case KindHello:
		r := &byteReader{b: payload}
		m.Version = int(r.u32())
		m.Features = r.u32()
		for _, x := range r.bytes(helloPadding) {
			if x != 0 {
				r.fail("nonzero hello padding byte %d", x)
				break
			}
		}
		if err := r.done(); err != nil {
			return nil, err
		}
	case KindShip:
		if err := decodeShip(payload, m); err != nil {
			return nil, err
		}
	case KindAttach:
		if err := decodeAttach(payload, m); err != nil {
			return nil, err
		}
	case KindReady, KindStepBegin, KindCollect:
		if len(payload) != 0 {
			return nil, fmt.Errorf("wire: %s frame with %d payload bytes", kind, len(payload))
		}
	case KindPartials, KindForeign:
		parts, err := decodePartialBatch(payload)
		if err != nil {
			return nil, err
		}
		m.Partials = parts
	case KindRefresh, KindMirrors:
		states, err := decodeStateBatch(payload)
		if err != nil {
			return nil, err
		}
		m.States = states
	case KindResult:
		if err := decodeResult(payload, &m.Result); err != nil {
			return nil, err
		}
	case KindError:
		m.Err = string(payload)
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", uint8(kind))
	}
	return m, nil
}

// appendJob encodes a JobSpec (shared by the ship and attach payloads).
func appendJob(b []byte, j *JobSpec) []byte {
	b = appendU32(b, uint32(len(j.Score)))
	b = append(b, j.Score...)
	b = appendF64(b, j.Alpha)
	b = appendU32(b, uint32(j.K))
	b = appendU32(b, uint32(j.KLocal))
	b = appendU32(b, uint32(j.ThrGamma))
	b = appendU32(b, uint32(j.Policy))
	b = appendU32(b, uint32(j.Paths))
	b = appendU64(b, j.Seed)
	return b
}

func decodeJob(r *byteReader, j *JobSpec) {
	j.Score = string(r.bytes(r.count(r.u32(), 1)))
	j.Alpha = r.f64()
	j.K = int(r.u32())
	j.KLocal = int(r.u32())
	j.ThrGamma = int(r.u32())
	j.Policy = core.SelectionPolicy(r.u32())
	j.Paths = int(r.u32())
	j.Seed = r.u64()
}

// appendAttach encodes the attach handshake: version, job spec, fleet
// identity and the sparse scoped entries — never the partition itself.
func appendAttach(b []byte, m *Msg) []byte {
	b = appendU32(b, uint32(m.Version))
	b = appendJob(b, &m.Job)
	a := &m.Attach
	b = appendU64(b, a.Fingerprint)
	b = appendU32(b, uint32(a.Shard))
	b = appendU32(b, uint32(a.Shards))
	if a.Scoped {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(a.Entries)))
	for i := range a.Entries {
		b = appendU32(b, uint32(a.Entries[i].V))
	}
	for i := range a.Entries {
		b = append(b, a.Entries[i].Mask)
	}
	for i := range a.Entries {
		b = append(b, a.Entries[i].Role)
	}
	return b
}

func decodeAttach(payload []byte, m *Msg) error {
	r := &byteReader{b: payload}
	m.Version = int(r.u32())
	decodeJob(r, &m.Job)
	a := &m.Attach
	a.Fingerprint = r.u64()
	a.Shard = int32(r.u32())
	a.Shards = int32(r.u32())
	switch scoped := r.u8(); scoped {
	case 0:
	case 1:
		a.Scoped = true
	default:
		r.fail("scoped flag byte %d", scoped)
	}
	n := r.count(r.u32(), 6) // 4 (ID) + 1 (mask) + 1 (role) bytes per entry
	if n > 0 {
		a.Entries = make([]ScopeEntry, n)
	}
	ids := r.bytes(n * 4)
	if ids != nil {
		for i := range a.Entries {
			a.Entries[i].V = graph.VertexID(binary.LittleEndian.Uint32(ids[4*i:]))
		}
	}
	for i, x := range r.bytes(n) {
		a.Entries[i].Mask = x
	}
	for i, x := range r.bytes(n) {
		a.Entries[i].Role = x
	}
	return r.done()
}

// appendShip encodes the job spec and partition payload.
func appendShip(b []byte, m *Msg) []byte {
	b = appendU32(b, uint32(m.Version))
	b = appendJob(b, &m.Job)
	p := &m.Part
	b = appendU32(b, uint32(p.Part))
	b = appendU32(b, uint32(p.NumVertices))
	b = appendU32(b, uint32(len(p.Locals)))
	b = appendU32(b, uint32(len(p.EdgeSrc)))
	if p.Scope != nil {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendVertexIDs(b, p.Locals)
	b = appendInt32s(b, p.Deg)
	b = appendInt32s(b, p.EdgeSrc)
	b = appendInt32s(b, p.EdgeDst)
	b = appendBools(b, p.IsMaster)
	b = appendBools(b, p.HasRemote)
	b = append(b, p.Scope...)
	return b
}

func decodeShip(payload []byte, m *Msg) error {
	r := &byteReader{b: payload}
	m.Version = int(r.u32())
	decodeJob(r, &m.Job)
	p := &m.Part
	p.Part = int(r.u32())
	p.NumVertices = int(r.u32())
	nLocals := r.u32()
	nEdges := r.u32()
	hasScope := r.u8()
	if hasScope > 1 {
		r.fail("scope flag byte %d", hasScope)
	}
	// Minimum bytes per local: 4 (ID) + 4 (deg) + 1 (master) + 1 (remote).
	nl := r.count(nLocals, 10)
	ne := r.count(nEdges, 8)
	p.Locals = r.vertexIDs(nl)
	p.Deg = r.int32s(nl)
	p.EdgeSrc = r.int32s(ne)
	p.EdgeDst = r.int32s(ne)
	p.IsMaster = r.bools(nl)
	p.HasRemote = r.bools(nl)
	if hasScope == 1 {
		p.Scope = r.uint8s(nl)
	}
	return r.done()
}

// appendResult encodes the collect-phase payload.
func appendResult(b []byte, res *WorkerResult) []byte {
	b = appendU32(b, uint32(res.Part))
	b = appendU64(b, uint64(res.Stats.Verts))
	b = appendU64(b, uint64(res.Stats.Edges))
	b = appendF64(b, res.Stats.BusySeconds)
	b = appendU64(b, uint64(res.Stats.AllocBytes))
	b = appendU64(b, uint64(res.Stats.AllocObjects))
	b = appendU64(b, uint64(res.Stats.HeapBytes))
	b = appendU32(b, uint32(len(res.Preds)))
	for i := range res.Preds {
		b = appendU32(b, uint32(res.Preds[i].V))
		b = appendU32(b, uint32(len(res.Preds[i].Preds)))
		b = appendPredictions(b, res.Preds[i].Preds)
	}
	return b
}

func decodeResult(payload []byte, res *WorkerResult) error {
	r := &byteReader{b: payload}
	res.Part = int(r.u32())
	res.Stats.Verts = int(r.u64())
	res.Stats.Edges = int(r.u64())
	res.Stats.BusySeconds = r.f64()
	res.Stats.AllocBytes = int64(r.u64())
	res.Stats.AllocObjects = int64(r.u64())
	res.Stats.HeapBytes = int64(r.u64())
	n := r.count(r.u32(), 8) // min bytes per entry: vertex + count
	if n > 0 {
		res.Preds = make([]VertexPreds, 0, n)
	}
	for i := 0; i < n; i++ {
		var vp VertexPreds
		vp.V = graph.VertexID(r.u32())
		vp.Preds = r.predictions(r.count(r.u32(), 12))
		if r.err != nil {
			return r.err
		}
		res.Preds = append(res.Preds, vp)
	}
	return r.done()
}

// ---- frame I/O ----

// writeFrame emits one v3 frame, deflating the payload when compression is
// negotiated, the payload is worth it, and it actually shrinks. Hellos stay
// plain so negotiation never depends on what it negotiates.
func (c *Conn) writeFrame(kind Kind, flags byte, step core.DistStep, payload []byte) error {
	if len(payload) > FrameMaxPayload {
		return fmt.Errorf("wire: %s payload %d bytes exceeds frame cap", kind, len(payload))
	}
	wirePayload := payload
	if c.compress && kind != KindHello && len(payload) >= compressMin {
		if z, ok := c.deflate(payload); ok {
			wirePayload = z
			flags |= flagCompressed
		}
	}
	hdr := c.whdr[:]
	copy(hdr[0:4], frameMagic)
	hdr[4] = byte(kind)
	hdr[5] = flags
	hdr[6] = byte(step)
	hdr[7] = 0
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(wirePayload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
	if _, err := c.bw.Write(hdr); err != nil {
		return fmt.Errorf("wire: send %s: %w", kind, err)
	}
	if _, err := c.bw.Write(wirePayload); err != nil {
		return fmt.Errorf("wire: send %s: %w", kind, err)
	}
	var tr [frameTrailerSize]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(wirePayload, castagnoli))
	if _, err := c.bw.Write(tr[:]); err != nil {
		return fmt.Errorf("wire: send %s: %w", kind, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: send %s: %w", kind, err)
	}
	c.crw.msgOut.Add(1)
	return nil
}

// readFrame reads and verifies one v3 frame. The returned payload is a view
// into the connection's scratch, valid until the next read.
func (c *Conn) readFrame() (kind Kind, flags byte, step core.DistStep, payload []byte, err error) {
	hdr := c.rhdr[:]
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		if err == io.EOF {
			return 0, 0, 0, nil, io.EOF
		}
		return 0, 0, 0, nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	if string(hdr[0:4]) != frameMagic {
		return 0, 0, 0, nil, errNotV3Frame
	}
	if got, want := crc32.Checksum(hdr[:16], castagnoli), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		return 0, 0, 0, nil, fmt.Errorf("wire: frame header CRC mismatch (%08x != %08x)", got, want)
	}
	kind = Kind(hdr[4])
	flags = hdr[5]
	step = core.DistStep(hdr[6])
	if hdr[7] != 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: nonzero reserved byte %d", hdr[7])
	}
	if flags&^byte(flagsKnown) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: unknown frame flags %#02x", flags)
	}
	rawLen := binary.LittleEndian.Uint32(hdr[8:])
	wireLen := binary.LittleEndian.Uint32(hdr[12:])
	if rawLen > FrameMaxPayload || wireLen > FrameMaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("wire: frame payload %d/%d bytes exceeds cap", rawLen, wireLen)
	}
	compressed := flags&flagCompressed != 0
	if !compressed && rawLen != wireLen {
		return 0, 0, 0, nil, fmt.Errorf("wire: uncompressed frame with rawLen %d != wireLen %d", rawLen, wireLen)
	}
	if compressed && wireLen >= rawLen {
		return 0, 0, 0, nil, fmt.Errorf("wire: compressed frame grew (%d -> %d)", rawLen, wireLen)
	}
	c.rdBuf, err = readCapped(c.br, c.rdBuf, int(wireLen))
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("wire: read %s payload: %w", kind, err)
	}
	var tr [frameTrailerSize]byte
	if _, err := io.ReadFull(c.br, tr[:]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("wire: read payload CRC: %w", err)
	}
	if got, want := crc32.Checksum(c.rdBuf, castagnoli), binary.LittleEndian.Uint32(tr[:]); got != want {
		return 0, 0, 0, nil, fmt.Errorf("wire: payload CRC mismatch (%08x != %08x)", got, want)
	}
	payload = c.rdBuf
	if compressed {
		payload, err = c.inflate(c.rdBuf, int(rawLen))
		if err != nil {
			return 0, 0, 0, nil, err
		}
	}
	c.crw.msgIn.Add(1)
	return kind, flags, step, payload, nil
}

// readCapped reads exactly n bytes into buf (reused across calls), growing
// in readChunk steps so a lying length never allocates past the bytes that
// actually arrive (plus at most one chunk).
func readCapped(r io.Reader, buf []byte, n int) ([]byte, error) {
	if cap(buf) >= n {
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return buf[:0], err
		}
		return buf, nil
	}
	buf = buf[:0]
	for len(buf) < n {
		chunk := min(n-len(buf), readChunk)
		buf = slices.Grow(buf, chunk)
		buf = buf[:len(buf)+chunk]
		if _, err := io.ReadFull(r, buf[len(buf)-chunk:]); err != nil {
			return buf[:0], err
		}
	}
	return buf, nil
}

// deflate compresses p into the connection's scratch, reporting whether the
// result is actually smaller.
func (c *Conn) deflate(p []byte) ([]byte, bool) {
	if c.fw == nil {
		c.fw, _ = flate.NewWriter(io.Discard, compressLevel)
	}
	c.zwBuf.Reset()
	c.fw.Reset(&c.zwBuf)
	if _, err := c.fw.Write(p); err != nil {
		return nil, false
	}
	if err := c.fw.Close(); err != nil {
		return nil, false
	}
	if c.zwBuf.Len() >= len(p) {
		return nil, false
	}
	return c.zwBuf.Bytes(), true
}

// inflate decompresses src, requiring exactly rawLen output bytes. Growth is
// capped the same way readCapped's is.
func (c *Conn) inflate(src []byte, rawLen int) ([]byte, error) {
	c.zrSrc.Reset(src)
	if c.fr == nil {
		c.fr = flate.NewReader(&c.zrSrc)
	} else if err := c.fr.(flate.Resetter).Reset(&c.zrSrc, nil); err != nil {
		return nil, fmt.Errorf("wire: inflate reset: %w", err)
	}
	var err error
	c.rawBuf, err = readCapped(c.fr, c.rawBuf, rawLen)
	if err != nil {
		return nil, fmt.Errorf("wire: inflate: %w", err)
	}
	var one [1]byte
	if n, err := c.fr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, fmt.Errorf("wire: compressed payload does not end at its declared %d bytes", rawLen)
	}
	return c.rawBuf, nil
}

// preallocCompression eagerly builds the flate machinery (the writer alone
// is ~600 KB) so it is paid at connection setup, outside the measured
// superstep window, not lazily inside it.
func (c *Conn) preallocCompression() {
	if c.fw == nil {
		c.fw, _ = flate.NewWriter(io.Discard, compressLevel)
	}
	if c.fr == nil {
		c.zrSrc.Reset(nil)
		c.fr = flate.NewReader(&c.zrSrc)
	}
}
