package wire

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// This file is the fault-injection half of the dist backend's chaos
// harness: a transport wrapper that fires scripted faults at exact byte
// offsets of either direction of a connection. Tests wrap a worker's
// accepted net.Conn in a ChaosTransport and hand it to ServeConnWith, so
// every failure mode a real network produces — a stall, a mid-frame
// connection cut, a flipped bit, a silent blackhole — hits the coordinator
// exactly where the script says, deterministically. The equivalence suite
// in internal/engine then asserts that a run surviving these faults is
// bit-identical to the healthy run.

// ChaosDir selects which direction of the wrapped transport a fault
// applies to. Offsets count bytes per direction, from the wrap.
type ChaosDir int

const (
	// ChaosReads faults the wrapped transport's Read stream (bytes arriving
	// from the peer).
	ChaosReads ChaosDir = iota
	// ChaosWrites faults the Write stream (bytes sent to the peer).
	ChaosWrites
)

// ChaosOp is the fault to inject.
type ChaosOp int

const (
	// ChaosDelay stalls the stream once for Delay when the offset is
	// reached, then continues untouched — network jitter, not a failure.
	ChaosDelay ChaosOp = iota
	// ChaosCorrupt flips one bit of the byte at the offset. On a v3
	// connection the frame's CRC-32C catches it and the receiver kills the
	// connection — a clean model of line corruption.
	ChaosCorrupt
	// ChaosCut closes the underlying transport abruptly at the offset,
	// leaving the peer mid-frame — the signature of a SIGKILLed process.
	ChaosCut
	// ChaosDrop blackholes the direction from the offset on: writes report
	// success but deliver nothing, reads consume the peer's bytes but
	// return none. Only a deadline can detect it — exactly the failure the
	// coordinator's per-phase deadlines exist for.
	ChaosDrop
)

// ChaosEvent is one scripted fault: Op fires when byte At of direction Dir
// is reached. Events of one direction must be listed in ascending At order;
// an At at or before the current offset fires on the next operation.
type ChaosEvent struct {
	Dir   ChaosDir
	Op    ChaosOp
	At    int64
	Delay time.Duration // ChaosDelay only
}

// ChaosTransport wraps a transport and injects scripted faults at exact
// byte offsets. It is safe for one concurrent reader and one concurrent
// writer, like the net.Conn it wraps. Deadlines pass through to the
// underlying transport, so Conn.SetDeadline still bounds a blackholed
// stream.
type ChaosTransport struct {
	rwc    io.ReadWriteCloser
	mu     sync.Mutex
	events []ChaosEvent
	rOff   int64
	wOff   int64
	rDrop  bool
	wDrop  bool
}

// NewChaosTransport wraps rwc with the given fault script.
func NewChaosTransport(rwc io.ReadWriteCloser, events []ChaosEvent) *ChaosTransport {
	return &ChaosTransport{rwc: rwc, events: append([]ChaosEvent(nil), events...)}
}

// pendingLocked returns the index of the first queued event for dir, or -1.
func (t *ChaosTransport) pendingLocked(dir ChaosDir) int {
	for i := range t.events {
		if t.events[i].Dir == dir {
			return i
		}
	}
	return -1
}

// Read implements io.Reader with read-direction faults.
func (t *ChaosTransport) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return t.rwc.Read(p)
	}
	for {
		t.mu.Lock()
		if t.rDrop {
			t.mu.Unlock()
			// Blackhole: keep consuming so the peer never blocks on TCP
			// flow control, but deliver nothing. A deadline or a close on
			// the underlying transport is the only way out.
			buf := make([]byte, 4096)
			for {
				if _, err := t.rwc.Read(buf); err != nil {
					return 0, err
				}
			}
		}
		i := t.pendingLocked(ChaosReads)
		if i < 0 {
			t.mu.Unlock()
			return t.readCounted(p)
		}
		ev := t.events[i]
		if ev.At > t.rOff {
			// Stop the read exactly at the event's offset so it fires on
			// its own byte, not somewhere inside a larger read.
			limit := min(int64(len(p)), ev.At-t.rOff)
			t.mu.Unlock()
			return t.readCounted(p[:limit])
		}
		t.events = append(t.events[:i], t.events[i+1:]...)
		switch ev.Op {
		case ChaosDelay:
			t.mu.Unlock()
			time.Sleep(ev.Delay)
		case ChaosCut:
			t.mu.Unlock()
			_ = t.rwc.Close()
			return 0, fmt.Errorf("wire: chaos cut at read offset %d", ev.At)
		case ChaosCorrupt:
			t.mu.Unlock()
			n, err := t.readCounted(p[:1])
			if n > 0 {
				p[0] ^= 0x20
			}
			return n, err
		case ChaosDrop:
			t.rDrop = true
			t.mu.Unlock()
		}
	}
}

func (t *ChaosTransport) readCounted(p []byte) (int, error) {
	n, err := t.rwc.Read(p)
	t.mu.Lock()
	t.rOff += int64(n)
	t.mu.Unlock()
	return n, err
}

// Write implements io.Writer with write-direction faults.
func (t *ChaosTransport) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		t.mu.Lock()
		if t.wDrop {
			t.wOff += int64(len(p))
			t.mu.Unlock()
			return total + len(p), nil
		}
		i := t.pendingLocked(ChaosWrites)
		if i < 0 {
			t.mu.Unlock()
			n, err := t.writeCounted(p)
			return total + n, err
		}
		ev := t.events[i]
		if ev.At > t.wOff {
			limit := min(int64(len(p)), ev.At-t.wOff)
			t.mu.Unlock()
			n, err := t.writeCounted(p[:limit])
			total += n
			if err != nil {
				return total, err
			}
			p = p[n:]
			continue
		}
		t.events = append(t.events[:i], t.events[i+1:]...)
		switch ev.Op {
		case ChaosDelay:
			t.mu.Unlock()
			time.Sleep(ev.Delay)
		case ChaosCut:
			t.mu.Unlock()
			_ = t.rwc.Close()
			return total, fmt.Errorf("wire: chaos cut at write offset %d", ev.At)
		case ChaosCorrupt:
			t.mu.Unlock()
			n, err := t.writeCounted([]byte{p[0] ^ 0x20})
			total += n
			if err != nil {
				return total, err
			}
			p = p[n:]
		case ChaosDrop:
			t.wDrop = true
			t.mu.Unlock()
		}
	}
	return total, nil
}

func (t *ChaosTransport) writeCounted(p []byte) (int, error) {
	n, err := t.rwc.Write(p)
	t.mu.Lock()
	t.wOff += int64(n)
	t.mu.Unlock()
	return n, err
}

// Close closes the underlying transport.
func (t *ChaosTransport) Close() error { return t.rwc.Close() }

// SetDeadline passes deadlines through, so wrapped connections stay
// bounded — the property the blackhole fault exists to exercise.
func (t *ChaosTransport) SetDeadline(tm time.Time) error {
	if d, ok := t.rwc.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(tm)
	}
	return nil
}
