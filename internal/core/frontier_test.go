package core

import (
	"testing"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// frontierTestGraph builds a deterministic sparse digraph with hubs, plus
// two trailing isolated vertices (300, 301).
func frontierTestGraph(t *testing.T) *graph.Digraph {
	t.Helper()
	const n = 300
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := 6.0 / float64(n)
			if u%60 == 0 {
				p = 0.2
			}
			if randx.Float64(11, uint64(u), uint64(v)) < p {
				edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	g, err := graph.FromEdges(n+2, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func frontierCfg(t *testing.T, paths int, sources ...graph.VertexID) Config {
	t.Helper()
	spec, err := ScoreByName("linearSum", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Score: spec, K: 5, KLocal: 4, ThrGamma: 10, Paths: paths, Seed: 42, Sources: sources}
}

// TestNewFrontierClosure verifies the closure sets against a brute-force
// recomputation of the dependency rules documented in frontier.go.
func TestNewFrontierClosure(t *testing.T) {
	g := frontierTestGraph(t)
	for _, paths := range []int{2, 3} {
		for _, sources := range [][]graph.VertexID{
			{0},
			{7, 7, 7}, // duplicates collapse
			{0, 60, 120, 33, 299},
			{300}, // isolated: closure is just the source
		} {
			f, err := NewFrontier(g, frontierCfg(t, paths, sources...))
			if err != nil {
				t.Fatal(err)
			}

			want := func(name string, set *VertexSet, in map[graph.VertexID]bool) {
				if set.Len() != len(in) {
					t.Fatalf("paths=%d sources=%v: %s has %d members, want %d", paths, sources, name, set.Len(), len(in))
				}
				prev := graph.VertexID(0)
				for i, v := range set.Members() {
					if !in[v] {
						t.Fatalf("paths=%d sources=%v: %s contains %d unexpectedly", paths, sources, name, v)
					}
					if !set.Contains(v) {
						t.Fatalf("%s member %d not Contains()", name, v)
					}
					if i > 0 && v <= prev {
						t.Fatalf("%s members not strictly ascending at %d", name, v)
					}
					prev = v
				}
			}
			addOut := func(from, into map[graph.VertexID]bool) {
				for v := range from {
					for _, w := range g.OutNeighbors(v) {
						into[w] = true
					}
				}
			}
			clone := func(m map[graph.VertexID]bool) map[graph.VertexID]bool {
				c := make(map[graph.VertexID]bool, len(m))
				for k := range m {
					c[k] = true
				}
				return c
			}

			pred := map[graph.VertexID]bool{}
			for _, s := range sources {
				pred[s] = true
			}
			want("Pred", f.Pred, pred)

			sims := clone(pred)
			addOut(pred, sims)
			if paths == 3 {
				two := map[graph.VertexID]bool{}
				addOut(pred, two)
				want("TwoHop", f.TwoHop, two)
				addOut(two, sims)
			} else if f.TwoHop != nil {
				t.Fatalf("paths=2 run has a TwoHop set")
			}
			want("Sims", f.Sims, sims)

			trunc := clone(sims)
			addOut(sims, trunc)
			want("Trunc", f.Trunc, trunc)

			if f.Size() != f.Trunc.Len() {
				t.Fatalf("Size() = %d, want %d", f.Size(), f.Trunc.Len())
			}
		}
	}
}

func TestNewFrontierEdgeCases(t *testing.T) {
	g := frontierTestGraph(t)
	if f, err := NewFrontier(g, frontierCfg(t, 2)); err != nil || f != nil {
		t.Fatalf("empty sources: got (%v, %v), want (nil, nil)", f, err)
	}
	if _, err := NewFrontier(g, frontierCfg(t, 2, graph.VertexID(g.NumVertices()))); err == nil {
		t.Fatal("out-of-range source accepted")
	}

	// Nil-receiver helpers treat everything as in scope.
	var f *Frontier
	if !f.InPred(1) || !f.InSims(1) || !f.InTrunc(1) || !f.InTwoHop(1) {
		t.Fatal("nil frontier rejected a vertex")
	}
	if f.Size() != 0 {
		t.Fatalf("nil frontier Size() = %d", f.Size())
	}
	if f.ScopeMask(3) != ScopeTrunc|ScopeSims|ScopeTwoHop|ScopePred {
		t.Fatalf("nil frontier mask = %x", f.ScopeMask(3))
	}
	if f.StepSet(DistCombine) != nil {
		t.Fatal("nil frontier StepSet non-nil")
	}
	deg := []int32{0}
	if !f.StepHasWork(DistCombine, deg) {
		t.Fatal("nil frontier has no work")
	}
}

// TestFrontierScopeMaskMatchesSets pins ScopeMask to the individual sets
// and the step bits to their sets.
func TestFrontierScopeMaskMatchesSets(t *testing.T) {
	g := frontierTestGraph(t)
	f, err := NewFrontier(g, frontierCfg(t, 3, 0, 61))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		v := graph.VertexID(u)
		m := f.ScopeMask(v)
		checks := []struct {
			bit  uint8
			in   bool
			step DistStep
		}{
			{ScopeTrunc, f.InTrunc(v), DistTruncate},
			{ScopeSims, f.InSims(v), DistRelays},
			{ScopeTwoHop, f.InTwoHop(v), DistTwoHop},
			{ScopePred, f.InPred(v), DistCombine},
		}
		for _, c := range checks {
			if got := m&c.bit != 0; got != c.in {
				t.Fatalf("vertex %d: mask bit %x = %v, set membership %v", v, c.bit, got, c.in)
			}
			if c.step.ScopeBit() != c.bit {
				t.Fatalf("step %v scope bit %x, want %x", c.step, c.step.ScopeBit(), c.bit)
			}
		}
		if DistCombine3.ScopeBit() != ScopePred {
			t.Fatal("combine3 not gated on Pred")
		}
	}
}

// TestFrontierStepHasWork exercises the superstep-skip predicate on
// isolated sources.
func TestFrontierStepHasWork(t *testing.T) {
	g := frontierTestGraph(t)
	deg := make([]int32, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		deg[u] = int32(g.OutDegree(graph.VertexID(u)))
	}

	f, err := NewFrontier(g, frontierCfg(t, 2, 300, 301)) // both isolated
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []DistStep{DistTruncate, DistRelays, DistCombine} {
		if f.StepHasWork(step, deg) {
			t.Fatalf("isolated sources: step %v claims work", step)
		}
	}

	f, err = NewFrontier(g, frontierCfg(t, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []DistStep{DistTruncate, DistRelays, DistCombine} {
		if !f.StepHasWork(step, deg) {
			t.Fatalf("hub source: step %v claims no work", step)
		}
	}
}
