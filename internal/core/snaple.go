package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"snaple/internal/cluster"
	"snaple/internal/gas"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/randx"
	"snaple/internal/topk"
)

// VertexSim pairs a neighbour with its raw similarity (one entry of the
// Du.sims dictionary of Algorithm 2).
type VertexSim struct {
	V   graph.VertexID
	Sim float64
}

// VData is the per-vertex GAS state of Algorithm 2: the (truncated)
// neighbourhood Γ̂, the k_local most similar neighbours, and the final
// predictions. TwoHop is only populated by the 3-hop extension (khop.go).
// It is exported (and gob-encodable) because the dist backend ships it
// between worker processes during master→mirror refreshes (internal/wire).
type VData struct {
	Nbrs   []graph.VertexID // Γ̂(u), sorted ascending
	Sims   []VertexSim      // selected relays, sorted by V ascending
	TwoHop []PathCand       // sampled 2-hop paths (3-hop extension only)
	Pred   []Prediction     // final top-k, best first
}

// vdataBytes prices a vertex state for synchronisation and memory
// accounting: 4 B per neighbour ID, 12 B per (id, float64) similarity entry,
// 12 B per path/prediction entry, plus a fixed header.
func vdataBytes(v *VData) int64 {
	return 24 + 4*int64(len(v.Nbrs)) + 12*int64(len(v.Sims)) +
		12*int64(len(v.TwoHop)) + 12*int64(len(v.Pred))
}

// snapleState is shared by the three step programs.
type snapleState struct {
	cfg Config
	deg []int32 // full out-degrees, static topology metadata
	// frontier is the query scope of the run. It is set by
	// PredictGASWorkers for scoped sim runs (the step programs gate their
	// gathers on it) and stays nil on dist workers, whose partitions gate
	// by the shipped per-local scope masks instead (diststep.go) — a worker
	// holds only a partition and cannot compute the global closure.
	frontier *Frontier
}

func newSnapleState(g graph.View, cfg Config) *snapleState {
	deg := make([]int32, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		deg[u] = int32(g.OutDegree(graph.VertexID(u)))
	}
	return &snapleState{cfg: cfg, deg: deg}
}

// ---- Step 1: sample the neighbourhood Du.Γ̂ (Algorithm 2, lines 1-6) ----

type step1 struct{ *snapleState }

// Direction implements gas.Program.
func (step1) Direction() gas.Direction { return gas.Out }

// Gather emits {v}, or nothing when the truncation draw rejects the edge
// (or, on a scoped run, when src's neighbourhood is outside the closure).
func (s step1) Gather(src, dst graph.VertexID, _, _ *VData, _ *struct{}) ([]graph.VertexID, bool) {
	if !s.frontier.InTrunc(src) {
		return nil, false
	}
	if !keepTruncated(s.cfg.Seed, src, dst, int(s.deg[src]), s.cfg.ThrGamma) {
		return nil, false
	}
	return []graph.VertexID{dst}, true
}

// Sum unions neighbour samples (set union over disjoint contributions).
func (step1) Sum(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) }

// Apply stores the sorted sample as Γ̂.
func (step1) Apply(_ graph.VertexID, d *VData, sum []graph.VertexID, has bool) {
	if !has {
		d.Nbrs = nil
		return
	}
	nbrs := append([]graph.VertexID(nil), sum...)
	slices.Sort(nbrs)
	d.Nbrs = nbrs
}

// VertexBytes implements gas.Program.
func (step1) VertexBytes(v *VData) int64 { return vdataBytes(v) }

// GatherBytes implements gas.Program.
func (step1) GatherBytes(g []graph.VertexID) int64 { return 4 * int64(len(g)) }

// ---- Step 2: estimate similarities, keep k_local relays (lines 7-11) ----

type step2 struct{ *snapleState }

// Direction implements gas.Program.
func (step2) Direction() gas.Direction { return gas.Out }

// Gather emits (v, sim(u,v)) computed on the truncated neighbourhoods (and
// vertex attributes, for identity-aware metrics).
func (s step2) Gather(src, dst graph.VertexID, srcD, dstD *VData, _ *struct{}) ([]VertexSim, bool) {
	if !s.frontier.InSims(src) {
		return nil, false
	}
	sim := simScore(s.cfg.Score.Sim, src, dst, srcD.Nbrs, dstD.Nbrs, int(s.deg[src]), int(s.deg[dst]))
	return []VertexSim{{V: dst, Sim: sim}}, true
}

// Sum concatenates similarity entries (keys are distinct neighbours).
func (step2) Sum(a, b []VertexSim) []VertexSim { return append(a, b...) }

// Apply selects the k_local relays under the configured policy and stores
// them sorted by vertex for step 3's binary searches.
func (s step2) Apply(u graph.VertexID, d *VData, sum []VertexSim, has bool) {
	if !has {
		d.Sims = nil
		return
	}
	d.Sims = selectRelays(s.cfg, u, sum)
}

// VertexBytes implements gas.Program.
func (step2) VertexBytes(v *VData) int64 { return vdataBytes(v) }

// GatherBytes implements gas.Program.
func (step2) GatherBytes(g []VertexSim) int64 { return 12 * int64(len(g)) }

// selectRelays applies the selection policy (Γmax/Γmin/Γrnd as of Section
// 5.6) to the (v, sim) candidates and returns them sorted by vertex ID.
func selectRelays(cfg Config, u graph.VertexID, cands []VertexSim) []VertexSim {
	if cfg.KLocal == Unlimited || len(cands) <= cfg.KLocal {
		out := append([]VertexSim(nil), cands...)
		slices.SortFunc(out, func(a, b VertexSim) int { return cmp.Compare(a.V, b.V) })
		return out
	}
	items := make([]topk.Item, len(cands))
	switch cfg.Policy {
	case SelectMin, SelectMax:
		for i, c := range cands {
			items[i] = topk.Item{ID: uint32(c.V), Score: c.Sim}
		}
	case SelectRnd:
		// Rank by a hash keyed by (seed, u, v): a deterministic uniform
		// sample independent of discovery order.
		for i, c := range cands {
			items[i] = topk.Item{
				ID:    uint32(c.V),
				Score: randx.Float64(cfg.Seed^rndSelSalt, uint64(u), uint64(c.V)),
			}
		}
	}
	var sel []topk.Item
	if cfg.Policy == SelectMin {
		sel = topk.Bottom(cfg.KLocal, items)
	} else {
		sel = topk.Select(cfg.KLocal, items)
	}
	// Winners are distinct vertices: membership is a binary search over the
	// sorted ID list instead of a per-vertex map (this runs once per vertex
	// per superstep — the map was the dist workers' top allocation site).
	ids := make([]graph.VertexID, len(sel))
	for i, it := range sel {
		ids[i] = graph.VertexID(it.ID)
	}
	slices.Sort(ids)
	out := make([]VertexSim, 0, len(sel))
	for _, c := range cands {
		if containsVertex(ids, c.V) {
			out = append(out, c)
		}
	}
	slices.SortFunc(out, func(a, b VertexSim) int { return cmp.Compare(a.V, b.V) })
	return out
}

// ---- Step 3: combine and aggregate path similarities (lines 12-20) ----

// Gather lists use the PathCand type of steps.go, kept sorted by Z so that
// Sum is a linear merge and Apply sees per-candidate groups contiguously.

type step3 struct{ *snapleState }

// Direction implements gas.Program.
func (step3) Direction() gas.Direction { return gas.Out }

// Gather walks the relay v's own relays z and emits one path-candidate per
// kept 2-hop path u→v→z (Algorithm 2, lines 13-15).
func (s step3) Gather(src, dst graph.VertexID, srcD, dstD *VData, _ *struct{}) ([]PathCand, bool) {
	if !s.frontier.InPred(src) {
		return nil, false
	}
	suv, ok := lookupSim(srcD.Sims, dst)
	if !ok {
		return nil, false // v ∉ Du.sims.keys (line 13)
	}
	if len(dstD.Sims) == 0 {
		return nil, false
	}
	comb := s.cfg.Score.Comb.Fn
	out := make([]PathCand, 0, len(dstD.Sims))
	for _, zs := range dstD.Sims { // ascending by V: output stays sorted
		z := zs.V
		if z == src || containsVertex(srcD.Nbrs, z) {
			continue // z ∈ Γ̂(u) ∪ {u} (line 15's exclusion)
		}
		out = append(out, PathCand{Z: z, S: comb(suv, zs.Sim)})
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// Sum merges two candidate lists sorted by Z, preserving order. Path values
// for the same candidate stay adjacent; they are folded in Apply (sorted
// first, so the result is independent of merge order — see
// Aggregator.FoldPaths).
func (step3) Sum(a, b []PathCand) []PathCand {
	out := make([]PathCand, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Z <= b[j].Z {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Apply groups path candidates by Z, folds each group with the aggregator
// (⊕pre then ⊕post, line 19) and keeps the top-k scores (line 20). The
// grouping and fold are shared with every other substrate (steps.go).
func (s step3) Apply(_ graph.VertexID, d *VData, sum []PathCand, has bool) {
	if !has {
		d.Pred = nil
		return
	}
	d.Pred = foldSortedPathCands(sum, s.cfg.Score.Agg, s.cfg.K)
}

// VertexBytes implements gas.Program.
func (step3) VertexBytes(v *VData) int64 { return vdataBytes(v) }

// GatherBytes prices a partial sum the way the paper's implementation ships
// it: one (z, σ, n) triplet (16 B) per distinct candidate, since ⊕pre could
// fold each group before transmission. (The in-memory per-path list is a
// determinism device; see Aggregator.FoldPaths.)
func (step3) GatherBytes(g []PathCand) int64 {
	distinct := 0
	for i := range g {
		if i == 0 || g[i].Z != g[i-1].Z {
			distinct++
		}
	}
	return 16 * int64(distinct)
}

// lookupSim binary-searches a V-sorted similarity list.
func lookupSim(sims []VertexSim, v graph.VertexID) (float64, bool) {
	i := sort.Search(len(sims), func(i int) bool { return sims[i].V >= v })
	if i < len(sims) && sims[i].V == v {
		return sims[i].Sim, true
	}
	return 0, false
}

// containsVertex binary-searches a sorted vertex list.
func containsVertex(nbrs []graph.VertexID, v graph.VertexID) bool {
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// ---- Driver ----

// Result carries the predictions of a distributed run plus its costs.
type Result struct {
	Pred Predictions
	// Steps holds the per-superstep engine statistics (one entry per
	// superstep that ran; a scoped run may skip workless supersteps).
	Steps []gas.StepStats
	// Total aggregates Steps.
	Total gas.StepStats
	// ReplicationFactor of the distributed graph.
	ReplicationFactor float64
	// FrontierVertices is the query closure's vertex count on a scoped run
	// (Config.Sources non-empty); 0 on a full run.
	FrontierVertices int
	// ScoredVertices is how many vertices the final combine step visited:
	// the deduplicated source count on a scoped run, NumVertices on a full
	// run.
	ScoredVertices int
}

// PredictGAS runs Algorithm 2 on g distributed over cl according to assign,
// and returns the per-vertex predictions. This is the paper's SNAPLE system.
// It processes partitions on up to GOMAXPROCS goroutines; use
// PredictGASWorkers to bound the concurrency explicitly.
func PredictGAS(g graph.View, assign partition.Assignment, cl *cluster.Cluster, cfg Config) (*Result, error) {
	return PredictGASWorkers(g, assign, cl, cfg, 0)
}

// PredictGASWorkers is PredictGAS with an explicit bound on the number of
// partitions processed concurrently (0 = GOMAXPROCS). The worker count only
// affects host wall-clock time, never the predictions or the simulated
// costs.
func PredictGASWorkers(g graph.View, assign partition.Assignment, cl *cluster.Cluster, cfg Config, workers int) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dg, err := gas.Distribute[VData, struct{}](g, assign, cl, gas.Options{Seed: cfg.Seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	st := newSnapleState(g, cfg)
	st.frontier, err = NewFrontier(g, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ReplicationFactor: dg.ReplicationFactor(),
		FrontierVertices:  st.frontier.Size(),
		ScoredVertices:    g.NumVertices(),
	}
	if st.frontier != nil {
		res.ScoredVertices = st.frontier.Pred.Len()
	}

	// A scoped superstep whose frontier set has no out-edges gathers
	// nothing on any partition and applies nil state everywhere — skipping
	// it produces the same (zero) state for free (see Frontier.StepHasWork).
	skip := func(step DistStep) bool { return !st.frontier.StepHasWork(step, st.deg) }

	if !skip(DistTruncate) {
		s1, err := gas.RunStep[VData, struct{}, []graph.VertexID](dg, step1{st})
		res.record(s1)
		if err != nil {
			return res, fmt.Errorf("snaple step 1: %w", err)
		}
	}
	if !skip(DistRelays) {
		s2, err := gas.RunStep[VData, struct{}, []VertexSim](dg, step2{st})
		res.record(s2)
		if err != nil {
			return res, fmt.Errorf("snaple step 2: %w", err)
		}
	}
	if cfg.Paths == 3 {
		// The footnote-2 extension: materialise 2-hop path lists, then
		// aggregate 2- and 3-hop paths together (khop.go).
		if !skip(DistTwoHop) {
			s3a, err := gas.RunStep[VData, struct{}, []PathCand](dg, step3a{st})
			res.record(s3a)
			if err != nil {
				return res, fmt.Errorf("snaple step 3a: %w", err)
			}
		}
		if !skip(DistCombine3) {
			s3b, err := gas.RunStep[VData, struct{}, []PathCand](dg, step3b{st})
			res.record(s3b)
			if err != nil {
				return res, fmt.Errorf("snaple step 3b: %w", err)
			}
		}
	} else if !skip(DistCombine) {
		s3, err := gas.RunStep[VData, struct{}, []PathCand](dg, step3{st})
		res.record(s3)
		if err != nil {
			return res, fmt.Errorf("snaple step 3: %w", err)
		}
	}

	res.Pred = make(Predictions, g.NumVertices())
	dg.ForEachMaster(func(v graph.VertexID, d *VData) {
		if len(d.Pred) > 0 {
			res.Pred[v] = d.Pred
		}
	})
	return res, nil
}

func (r *Result) record(st gas.StepStats) {
	r.Steps = append(r.Steps, st)
	r.Total.Add(st)
}
