package core

import (
	"fmt"
	"math"

	"snaple/internal/graph"
	"snaple/internal/randx"
	"snaple/internal/topk"
)

// Supervised extension.
//
// The paper's conclusion names the extension of SNAPLE to supervised
// link prediction as its first future-work item ("Supervised approaches
// build upon unsupervised strategies and leverage machine-learning
// algorithms to produce optimized scoring functions", §2.1). This file
// implements that extension in SNAPLE's spirit: the *features* of a
// candidate edge (u,z) are aggregations of the same 2-hop path
// similarities Algorithm 2 already computes — so the feature extraction
// runs in the same three GAS-shaped passes, and only the final scoring
// function is learned (a logistic model trained on an internal
// train/validation split). No information outside the k_local-sampled
// 2-hop structure is used.

// numPathFeatures is the dimensionality of the per-candidate feature
// vector; see pathFeatures.
const numPathFeatures = 6

// pathFeatures turns a candidate's path descriptors into features:
//
//	0: linear-combination Sum  (the paper's linearSum, α=0.9)
//	1: path count              (counter)
//	2: inverse-degree sum      (the PPR-like signal)
//	3: mean path similarity    (linearMean)
//	4: max path similarity
//	5: min path similarity
func pathFeatures(suv, svz []float64, invDeg []float64) [numPathFeatures]float64 {
	var f [numPathFeatures]float64
	n := len(suv)
	if n == 0 {
		return f
	}
	lin := Linear(0.9).Fn
	minS, maxS := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		s := lin(suv[i], svz[i])
		f[0] += s
		f[2] += invDeg[i]
		f[3] += s
		if s > maxS {
			maxS = s
		}
		if s < minS {
			minS = s
		}
	}
	f[1] = float64(n)
	f[3] /= float64(n)
	f[4], f[5] = maxS, minS
	return f
}

// SupervisedConfig parameterises training.
type SupervisedConfig struct {
	// KLocal / ThrGamma bound the candidate structure exactly as in the
	// unsupervised Config (defaults 20 / 200).
	KLocal, ThrGamma int
	// Epochs of full-batch gradient descent (default 200).
	Epochs int
	// LearningRate for the logistic loss (default 0.5).
	LearningRate float64
	// NegativePerPositive bounds the sampled negative examples
	// (default 4).
	NegativePerPositive int
	// Seed drives the internal split, sampling and truncation.
	Seed uint64
}

func (c SupervisedConfig) withDefaults() SupervisedConfig {
	if c.KLocal == 0 {
		c.KLocal = 20
	}
	if c.ThrGamma == 0 {
		c.ThrGamma = 200
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.NegativePerPositive == 0 {
		c.NegativePerPositive = 4
	}
	return c
}

// SupervisedModel is a trained logistic scoring function over SNAPLE path
// features.
type SupervisedModel struct {
	Weights [numPathFeatures]float64
	Bias    float64
	cfg     SupervisedConfig
}

// score applies the model (the sigmoid is monotone, so ranking can use the
// raw logit; we keep the sigmoid for interpretable scores in [0,1]).
func (m *SupervisedModel) score(f [numPathFeatures]float64) float64 {
	z := m.Bias
	for i, w := range m.Weights {
		z += w * f[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// candidateFeatures computes, for every vertex u of g, the feature vector
// of every k_local-sampled 2-hop candidate. It mirrors ReferenceSnaple's
// structure (steps 1-3) with Jaccard relays.
func candidateFeatures(g graph.View, klocal, thr int, seed uint64) []map[graph.VertexID][numPathFeatures]float64 {
	cfg := Config{
		Score:    ScoreSpec{Name: "features", Sim: Jaccard{}, Comb: Linear(0.9), Agg: AggSum()},
		K:        1,
		KLocal:   klocal,
		ThrGamma: thr,
		Seed:     seed,
	}
	st := newSnapleState(g, cfg)
	n := g.NumVertices()

	trunc := make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		all := g.OutNeighbors(uid)
		kept := make([]graph.VertexID, 0, len(all))
		for _, v := range all {
			if keepTruncated(seed, uid, v, int(st.deg[u]), thr) {
				kept = append(kept, v)
			}
		}
		trunc[u] = kept
	}
	sims := make([][]VertexSim, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) == 0 {
			continue
		}
		cands := make([]VertexSim, 0, len(nbrs))
		for _, v := range nbrs {
			cands = append(cands, VertexSim{
				V:   v,
				Sim: simScore(cfg.Score.Sim, uid, v, trunc[u], trunc[v], int(st.deg[u]), int(st.deg[v])),
			})
		}
		sims[u] = selectRelays(cfg, uid, cands)
	}

	type pathSet struct{ suv, svz, inv []float64 }
	out := make([]map[graph.VertexID][numPathFeatures]float64, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		if len(sims[u]) == 0 {
			continue
		}
		paths := make(map[graph.VertexID]*pathSet)
		for _, vs := range sims[u] {
			for _, zs := range sims[vs.V] {
				z := zs.V
				if z == uid || containsVertex(trunc[u], z) {
					continue
				}
				ps := paths[z]
				if ps == nil {
					ps = &pathSet{}
					paths[z] = ps
				}
				ps.suv = append(ps.suv, vs.Sim)
				ps.svz = append(ps.svz, zs.Sim)
				inv := 0.0
				if d := st.deg[vs.V]; d > 0 {
					inv = 1 / float64(d)
				}
				ps.inv = append(ps.inv, inv)
			}
		}
		if len(paths) == 0 {
			continue
		}
		feats := make(map[graph.VertexID][numPathFeatures]float64, len(paths))
		for z, ps := range paths {
			feats[z] = pathFeatures(ps.suv, ps.svz, ps.inv)
		}
		out[u] = feats
	}
	return out
}

// TrainSupervised learns a scoring function on g: it hides one edge per
// eligible vertex (an internal split seeded independently of evaluation
// splits), extracts path features on the remainder, labels the hidden
// edges positive, samples negatives, and fits a logistic model with
// full-batch gradient descent. Deterministic in cfg.Seed.
func TrainSupervised(g graph.View, cfg SupervisedConfig) (*SupervisedModel, error) {
	cfg = cfg.withDefaults()
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("core: supervised training on empty graph")
	}
	// Internal split (mirrors eval.MakeSplit, kept local to avoid an
	// import cycle with the eval package).
	hidden := make(map[graph.VertexID]graph.VertexID)
	var removed []graph.Edge
	for u := 0; u < g.NumVertices(); u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) <= 3 {
			continue
		}
		pick := nbrs[randx.Uint64n(uint64(len(nbrs)), cfg.Seed^0x7EA1, uint64(u))]
		hidden[uid] = pick
		removed = append(removed, graph.Edge{Src: uid, Dst: pick})
	}
	if len(removed) == 0 {
		return nil, fmt.Errorf("core: supervised training needs vertices with degree > 3")
	}
	train := graph.Without(g, removed)
	feats := candidateFeatures(train, cfg.KLocal, cfg.ThrGamma, cfg.Seed)

	// Assemble the labelled set. Only vertices whose hidden edge actually
	// appears among the candidates can teach discrimination; each
	// contributes its positive plus a bounded sample of negatives (ranked
	// by a per-(u,z) hash so the choice is deterministic and unbiased).
	var xs [][numPathFeatures]float64
	var ys []float64
	for u, fm := range feats {
		uid := graph.VertexID(u)
		target, isPos := hidden[uid]
		if !isPos {
			continue
		}
		pos, ok := fm[target]
		if !ok {
			continue // hidden edge outside the sampled candidate set
		}
		xs = append(xs, pos)
		ys = append(ys, 1)
		negRank := topk.New(cfg.NegativePerPositive)
		for z := range fm {
			if z == target {
				continue
			}
			negRank.Push(uint32(z), randx.Float64(cfg.Seed^0x7EA2, uint64(u), uint64(z)))
		}
		for _, it := range negRank.Result() {
			xs = append(xs, fm[graph.VertexID(it.ID)])
			ys = append(ys, 0)
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: supervised training produced no examples")
	}

	// Standardise features (stored implicitly by folding into weights is
	// avoided for clarity: we scale by max-abs instead, keeping score()
	// a plain dot product on raw features).
	var scale [numPathFeatures]float64
	for _, x := range xs {
		for i, v := range x {
			if a := math.Abs(v); a > scale[i] {
				scale[i] = a
			}
		}
	}
	for i := range scale {
		if scale[i] == 0 {
			scale[i] = 1
		}
	}

	m := &SupervisedModel{cfg: cfg}
	var w [numPathFeatures]float64
	var b float64
	lr := cfg.LearningRate
	inv := 1 / float64(len(xs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var gw [numPathFeatures]float64
		var gb float64
		for i, x := range xs {
			z := b
			for j := range w {
				z += w[j] * x[j] / scale[j]
			}
			p := 1 / (1 + math.Exp(-z))
			d := p - ys[i]
			for j := range w {
				gw[j] += d * x[j] / scale[j]
			}
			gb += d
		}
		for j := range w {
			w[j] -= lr * gw[j] * inv
		}
		b -= lr * gb * inv
	}
	for j := range w {
		m.Weights[j] = w[j] / scale[j]
	}
	m.Bias = b
	return m, nil
}

// Predict ranks every vertex's candidates with the learned scoring
// function and returns the top k, under the same exclusion rules as the
// unsupervised predictor.
func (m *SupervisedModel) Predict(g graph.View, k int) (Predictions, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: supervised k=%d, need >= 1", k)
	}
	feats := candidateFeatures(g, m.cfg.KLocal, m.cfg.ThrGamma, m.cfg.Seed)
	pred := make(Predictions, g.NumVertices())
	for u, fm := range feats {
		if len(fm) == 0 {
			continue
		}
		coll := topk.New(k)
		for z, f := range fm {
			coll.Push(uint32(z), m.score(f))
		}
		items := coll.Result()
		out := make([]Prediction, len(items))
		for i, it := range items {
			out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
		}
		pred[u] = out
	}
	return pred, nil
}
