package core

import (
	"math"
	"sort"
)

// Combinator is the binary operator ⊗ of equation (8): it folds the raw
// similarities along a 2-hop path u→v→z into one path-similarity
// sim*_v(u,z) = sim(u,v) ⊗ sim(v,z). Fn must be monotonically non-decreasing
// in both arguments (a property test enforces this for the built-ins).
type Combinator struct {
	Name string
	Fn   func(a, b float64) float64
}

// Linear returns the linear combinator α·a + (1−α)·b of Table 1. The paper
// uses α = 0.9 ("found to return the best predictions", Section 5.2).
func Linear(alpha float64) Combinator {
	return Combinator{
		Name: "linear",
		Fn:   func(a, b float64) float64 { return alpha*a + (1-alpha)*b },
	}
}

// Eucl is the Euclidean combinator sqrt(a² + b²) of Table 1.
func Eucl() Combinator {
	return Combinator{Name: "eucl", Fn: func(a, b float64) float64 { return math.Sqrt(a*a + b*b) }}
}

// GeomComb is the geometric-mean combinator sqrt(a·b) of Table 1.
func GeomComb() Combinator {
	return Combinator{Name: "geom", Fn: func(a, b float64) float64 { return math.Sqrt(a * b) }}
}

// SumComb is the plain-sum combinator a + b of Table 1 (used by PPR).
func SumComb() Combinator {
	return Combinator{Name: "sum", Fn: func(a, b float64) float64 { return a + b }}
}

// CountComb is the degenerate combinator of Table 1 that values every path
// at 1, turning the score into a 2-hop path count.
func CountComb() Combinator {
	return Combinator{Name: "count", Fn: func(_, _ float64) float64 { return 1 }}
}

// Aggregator is the multiary operator ⊕ of equations (9)-(10), decomposed as
// the paper requires into a generalized sum ⊕pre (commutative, associative)
// and a normalisation ⊕post taking the folded value and the number of paths.
type Aggregator struct {
	Name string
	Pre  func(a, b float64) float64
	Post func(sigma float64, n int) float64
}

// AggSum is the Sum aggregator of Table 2: ⊕pre = +, ⊕post(σ,n) = σ.
// It is the only aggregator sensitive to candidate popularity (path count).
func AggSum() Aggregator {
	return Aggregator{
		Name: "Sum",
		Pre:  func(a, b float64) float64 { return a + b },
		Post: func(sigma float64, _ int) float64 { return sigma },
	}
}

// AggMean is the Mean aggregator of Table 2: ⊕pre = +, ⊕post(σ,n) = σ/n.
func AggMean() Aggregator {
	return Aggregator{
		Name: "Mean",
		Pre:  func(a, b float64) float64 { return a + b },
		Post: func(sigma float64, n int) float64 {
			if n == 0 {
				return 0
			}
			return sigma / float64(n)
		},
	}
}

// AggGeom is the Geom aggregator of Table 2: ⊕pre = ×, ⊕post(σ,n) = σ^(1/n).
// A single zero-similarity path zeroes the whole score, the sensitivity the
// paper observes in Figure 3 (vertex e) and Section 5.7.
func AggGeom() Aggregator {
	return Aggregator{
		Name: "Geom",
		Pre:  func(a, b float64) float64 { return a * b },
		Post: func(sigma float64, n int) float64 {
			if n == 0 {
				return 0
			}
			return math.Pow(sigma, 1/float64(n))
		},
	}
}

// FoldPaths applies the aggregator to a set of path-similarities: it sorts a
// copy of the values and folds ⊕pre in ascending order before applying
// ⊕post. The sort makes aggregation bit-deterministic regardless of the
// order paths were discovered in — the distributed engine and the serial
// reference therefore produce identical floats. (⊕pre is commutative, so
// sorting does not change the defined result, only the floating-point
// rounding path.)
func (a Aggregator) FoldPaths(values []float64) float64 {
	return a.FoldPathsInPlace(append([]float64(nil), values...))
}

// FoldPathsInPlace is FoldPaths without the defensive copy: it sorts values
// in place and folds them. Callers that own the buffer (the per-worker
// Scratch of the step functions) use it to keep aggregation allocation-free;
// the result is bit-identical to FoldPaths.
func (a Aggregator) FoldPathsInPlace(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	sigma := values[0]
	for _, v := range values[1:] {
		sigma = a.Pre(sigma, v)
	}
	return a.Post(sigma, len(values))
}
