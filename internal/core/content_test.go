package core

import (
	"math"
	"testing"

	"snaple/internal/gen"
	"snaple/internal/graph"
)

func testAttrs(t *testing.T, n, communities int) gen.AttributeConfig {
	t.Helper()
	return gen.AttributeConfig{N: n, Communities: communities}
}

func TestAttrJaccard(t *testing.T) {
	tests := []struct {
		a, b []uint32
		want float64
	}{
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 0.5},
		{[]uint32{1, 2}, []uint32{1, 2}, 1},
		{[]uint32{1}, []uint32{2}, 0},
		{nil, nil, 0},
		{[]uint32{1}, nil, 0},
	}
	for _, tt := range tests {
		if got := attrJaccard(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("attrJaccard(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestContentSimilarityValidation(t *testing.T) {
	if _, err := NewContentSimilarity(nil, nil, 0.5); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewContentSimilarity(Jaccard{}, nil, 1.5); err == nil {
		t.Error("beta out of range accepted")
	}
	bad := AttributeTable{{3, 1}}
	if _, err := NewContentSimilarity(Jaccard{}, bad, 0.5); err == nil {
		t.Error("unsorted attributes accepted")
	}
	good := AttributeTable{{1, 3}, {2}}
	if _, err := NewContentSimilarity(Jaccard{}, good, 0.5); err != nil {
		t.Errorf("valid content similarity rejected: %v", err)
	}
}

func TestContentSimilarityBlending(t *testing.T) {
	attrs := AttributeTable{
		0: {1, 2, 3},
		1: {2, 3, 4},
	}
	cs, err := NewContentSimilarity(Jaccard{}, attrs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	uNbrs := []graph.VertexID{5, 6}
	vNbrs := []graph.VertexID{6, 7}
	topo := Jaccard{}.Score(uNbrs, vNbrs, 0, 0) // 1/3
	content := 0.5                              // attr overlap of 0 and 1
	want := 0.5*topo + 0.5*content
	if got := cs.ScoreIDs(0, 1, uNbrs, vNbrs, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreIDs = %v, want %v", got, want)
	}
	// beta=1 reduces to the base metric.
	pure, err := NewContentSimilarity(Jaccard{}, attrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pure.ScoreIDs(0, 1, uNbrs, vNbrs, 0, 0); math.Abs(got-topo) > 1e-12 {
		t.Errorf("beta=1 ScoreIDs = %v, want topo %v", got, topo)
	}
	// Out-of-range vertex IDs contribute zero content.
	if got := cs.ScoreIDs(99, 100, uNbrs, vNbrs, 0, 0); math.Abs(got-0.5*topo) > 1e-12 {
		t.Errorf("missing attrs ScoreIDs = %v, want %v", got, 0.5*topo)
	}
}

func TestContentGASMatchesSerial(t *testing.T) {
	const communities = 8
	g := communityGraph(t, 300, 97)
	attrs, err := gen.Attributes(testAttrs(t, g.NumVertices(), communities), 5)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewContentSimilarity(Jaccard{}, attrs, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Score: ScoreSpec{Name: "contentLinearSum", Sim: cs, Comb: Linear(0.9), Agg: AggSum()},
		K:     5, KLocal: 8, Seed: 3,
	}
	want, err := ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 4} {
		res := runGAS(t, g, cfg, parts, 2)
		predictionsEqual(t, res.Pred, want, "content")
	}
}

func TestAttributesGeneratorProperties(t *testing.T) {
	cfg := gen.AttributeConfig{N: 600, Communities: 12}
	attrs, err := gen.Attributes(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 600 {
		t.Fatalf("got %d attribute sets", len(attrs))
	}
	table := AttributeTable(attrs)
	if err := table.Validate(); err != nil {
		t.Fatalf("generated attributes invalid: %v", err)
	}
	// Same community -> higher expected overlap than different community.
	same, diff := 0.0, 0.0
	sameN, diffN := 0, 0
	for u := 0; u < 200; u++ {
		for v := u + 1; v < 200; v++ {
			j := attrJaccard(attrs[u], attrs[v])
			if u%12 == v%12 {
				same += j
				sameN++
			} else {
				diff += j
				diffN++
			}
		}
	}
	if same/float64(sameN) <= diff/float64(diffN) {
		t.Errorf("intra-community attr overlap %.3f not above inter %.3f",
			same/float64(sameN), diff/float64(diffN))
	}
	// Determinism.
	attrs2, err := gen.Attributes(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for u := range attrs {
		for i := range attrs[u] {
			if attrs[u][i] != attrs2[u][i] {
				t.Fatal("attributes not deterministic")
			}
		}
	}
	// Validation.
	if _, err := gen.Attributes(gen.AttributeConfig{N: 0, Communities: 1}, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := gen.Attributes(gen.AttributeConfig{N: 5, Communities: 2, Noise: 2}, 1); err == nil {
		t.Error("noise=2 accepted")
	}
}

func TestContentImprovesRecallWhenTopologyIsSparse(t *testing.T) {
	// With very sparse neighbourhoods the topological signal is weak;
	// attribute overlap (correlated with communities) should help the
	// relay selection. We only require content-aware scoring not to hurt.
	const communities = 10
	g, err := gen.Community(gen.CommunityConfig{
		N: 800, Communities: communities, MinDeg: 2, MaxDeg: 20,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := gen.Attributes(gen.AttributeConfig{N: 800, Communities: communities}, 11)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewContentSimilarity(Jaccard{}, attrs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sim Similarity) int {
		cfg := Config{
			Score: ScoreSpec{Name: "x", Sim: sim, Comb: Linear(0.9), Agg: AggSum()},
			K:     5, KLocal: 10, Seed: 13,
		}
		pred, err := ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ps := range pred {
			n += len(ps)
		}
		return n
	}
	if c, p := run(cs), run(Jaccard{}); c == 0 || p == 0 {
		t.Errorf("content %d / pure %d predictions — one pipeline is broken", c, p)
	}
}
