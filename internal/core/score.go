package core

import (
	"fmt"
	"sort"
)

// ScoreSpec assembles a SNAPLE scoring function: the raw similarity used in
// step 2 (which also drives the k_local neighbour selection), the combinator
// applied along 2-hop paths and the aggregator that reduces per-candidate
// path-similarities (Table 3 of the paper).
type ScoreSpec struct {
	Name string
	// Alpha is the linear-combinator parameter the spec was assembled with
	// (set by ScoreByName for every score, used only by the linear family).
	// Recording it makes a named spec reconstructible from (Name, Alpha)
	// alone, which is how the dist backend ships configurations to remote
	// workers: function values cannot cross the wire.
	Alpha float64
	Sim   Similarity
	Comb  Combinator
	Agg   Aggregator
}

// Validate reports whether the spec is fully assembled.
func (s ScoreSpec) Validate() error {
	switch {
	case s.Sim == nil:
		return fmt.Errorf("core: score %q: nil similarity", s.Name)
	case s.Comb.Fn == nil:
		return fmt.Errorf("core: score %q: nil combinator", s.Name)
	case s.Agg.Pre == nil || s.Agg.Post == nil:
		return fmt.Errorf("core: score %q: incomplete aggregator", s.Name)
	}
	return nil
}

// ScoreByName returns one of the eleven scoring configurations of Table 3.
// alpha parameterises the linear combinator (the paper fixes 0.9).
//
// The names are: linearSum, euclSum, geomSum, PPR, counter, linearMean,
// euclMean, geomMean, linearGeom, euclGeom, geomGeom.
//
// Note on counter: Table 3 leaves its raw similarity unspecified ("–")
// because the count combinator ignores path values; a raw similarity is
// still needed to rank neighbours for the k_local selection, so we use
// Jaccard there, keeping the selection consistent with the other scores.
func ScoreByName(name string, alpha float64) (ScoreSpec, error) {
	if alpha < 0 || alpha > 1 {
		return ScoreSpec{}, fmt.Errorf("core: alpha=%v outside [0,1]", alpha)
	}
	combs := map[string]Combinator{
		"linear": Linear(alpha),
		"eucl":   Eucl(),
		"geom":   GeomComb(),
	}
	aggs := map[string]Aggregator{
		"Sum":  AggSum(),
		"Mean": AggMean(),
		"Geom": AggGeom(),
	}
	switch name {
	case "PPR":
		return ScoreSpec{Name: name, Alpha: alpha, Sim: InverseDegree{}, Comb: SumComb(), Agg: AggSum()}, nil
	case "counter":
		return ScoreSpec{Name: name, Alpha: alpha, Sim: Jaccard{}, Comb: CountComb(), Agg: AggSum()}, nil
	}
	for cname, comb := range combs {
		for aname, agg := range aggs {
			if name == cname+aname {
				return ScoreSpec{Name: name, Alpha: alpha, Sim: Jaccard{}, Comb: comb, Agg: agg}, nil
			}
		}
	}
	return ScoreSpec{}, fmt.Errorf("core: unknown score %q (known: %v)", name, ScoreNames())
}

// ScoreNames lists every scoring configuration of Table 3, in the paper's
// order.
func ScoreNames() []string {
	names := []string{
		"linearSum", "euclSum", "geomSum", "PPR", "counter",
		"linearMean", "euclMean", "geomMean",
		"linearGeom", "euclGeom", "geomGeom",
	}
	return names
}

// SumFamilyScores returns the five Sum-aggregator configurations compared in
// Figures 8a, 9 and 10, sorted as the paper's legends list them.
func SumFamilyScores() []string {
	n := []string{"counter", "euclSum", "geomSum", "linearSum", "PPR"}
	sort.Strings(n)
	return n
}
