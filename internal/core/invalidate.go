package core

import "snaple/internal/graph"

// Frontier-aware cache invalidation.
//
// A cached prediction row for source s was computed from the out-rows (and
// out-degrees) of exactly the vertices in Trunc(s), the frontier closure of
// radius Paths around s (see the dependency derivation at the top of
// frontier.go). A mutation batch changes only the out-rows of the mutated
// edges' *source* endpoints, so the cached row for s can change only if one
// of those endpoints lies inside s's closure — under the pre-mutation view
// (which computed the cached row) or the post-mutation view (which a fresh
// run would use). Everything else is provably untouched and may keep
// serving from cache.
//
// DirtySources inverts that membership test for a whole cache at once:
// instead of recomputing Trunc(s) per cached source, it runs the closure
// walk in reverse — a breadth-first walk over in-edges, seeded at the
// mutated sources, for Paths hops. To cover both the old and the new view
// with one walk it uses their union: the post-mutation view's in-edges plus
// the reversed edges the batch removed (the only edges the old view had and
// the new one lacks; edges the batch added are already in the new view).
// Paths that mix old-only and new-only edges make this a slight
// overapproximation, which only ever invalidates more — never serves stale.

// DirtySources returns the set of vertices whose cached predictions a
// mutation batch may have changed: every vertex within `depth` reverse hops
// (depth = Config.Paths) of a mutated edge's source endpoint, in the union
// of the old and new graphs. g is the post-mutation view and must have
// in-edges; added and removed are the batch as applied (out-of-range
// endpoints are ignored). An empty batch returns an empty set.
func DirtySources(g graph.View, added, removed []graph.Edge, depth int) *VertexSet {
	n := g.NumVertices()
	bits := newBits(n)
	size := 0
	var frontier []graph.VertexID
	seed := func(e graph.Edge) {
		if int(e.Src) < n && int(e.Dst) < n && bitsAdd(bits, e.Src) {
			size++
			frontier = append(frontier, e.Src)
		}
	}
	for _, e := range added {
		seed(e)
	}
	for _, e := range removed {
		seed(e)
	}
	// Reversed removed edges: present in the old view only, so the new
	// view's in-rows no longer carry them.
	var revRemoved map[graph.VertexID][]graph.VertexID
	for _, e := range removed {
		if int(e.Src) < n && int(e.Dst) < n {
			if revRemoved == nil {
				revRemoved = make(map[graph.VertexID][]graph.VertexID, len(removed))
			}
			revRemoved[e.Dst] = append(revRemoved[e.Dst], e.Src)
		}
	}
	var buf []graph.VertexID
	for hop := 0; hop < depth && len(frontier) > 0; hop++ {
		var next []graph.VertexID
		for _, u := range frontier {
			buf = g.AppendInRow(buf[:0], u)
			for _, w := range buf {
				if bitsAdd(bits, w) {
					size++
					next = append(next, w)
				}
			}
			for _, w := range revRemoved[u] {
				if bitsAdd(bits, w) {
					size++
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return finishSet(bits, size)
}
